examples/index_tradeoffs.ml: Array Database Executor Hashtbl List Printf String Sys Tm_datasets Tm_exec Tm_index Tm_query Tm_xml Twigmatch
