(** Cooperative cancellation tokens with optional deadlines.

    A token is shared between a query driver and the {!Pool} tasks it
    fans out: any party can {!cancel} it, and a token created with
    {!with_deadline_ms} trips itself once the monotonic clock passes
    the deadline. Work loops call {!check} at natural yield points
    (between probe chunks, per path) — cancellation is cooperative, so
    latency to stop is bounded by the longest stretch between checks.

    Tokens are domain-safe ([Atomic.t] inside) and cheap to poll: an
    un-tripped {!check} is one atomic load plus, for deadline tokens,
    one clock read. *)

type t

exception Cancelled
(** Raised by {!check} once the token is tripped. Pool futures carry it
    back to the caller like any other task exception. *)

val never : t
(** A token that never trips — the default when no deadline is set. *)

val token : unit -> t
(** A fresh explicit-only token: never trips by time, but {!cancel}
    trips it (unlike the shared {!never}). Used by the executor's
    mid-query replan machinery when no deadline is armed. *)

val with_deadline_ms : float -> t
(** A fresh token that trips once the given number of milliseconds has
    elapsed from now (monotonic clock). Non-positive values trip
    immediately. *)

val cancel : t -> unit
(** Trip the token explicitly. Idempotent; no effect on {!never}. *)

val cancelled : t -> bool
(** Has the token tripped (explicitly or by deadline)? Checking a
    deadline token latches it, so later calls stay [true]. *)

val check : t -> unit
(** @raise Cancelled once the token has tripped. *)

val deadline_ms : t -> float option
(** The deadline this token was created with, if any (for reporting). *)
