exception Cancelled

let () =
  Printexc.register_printer (function Cancelled -> Some "Tm_par.Cancel.Cancelled" | _ -> None)

type t = {
  tripped : bool Atomic.t;
  deadline_ns : int64 option; (* absolute, monotonic; None = explicit-only *)
  budget_ms : float option; (* the relative deadline, kept for reporting *)
}

(* [never] is shared, so [cancel] must not be able to trip it for
   everyone; [cancel] special-cases it below. *)
let never = { tripped = Atomic.make false; deadline_ns = None; budget_ms = None }

let token () = { tripped = Atomic.make false; deadline_ns = None; budget_ms = None }

let with_deadline_ms ms =
  let now = Monotonic_clock.now () in
  let deadline = Int64.add now (Int64.of_float (ms *. 1e6)) in
  { tripped = Atomic.make (ms <= 0.0); deadline_ns = Some deadline; budget_ms = Some ms }

let cancel t = if t != never then Atomic.set t.tripped true

let cancelled t =
  Atomic.get t.tripped
  ||
  match t.deadline_ns with
  | None -> false
  | Some d ->
    (* Latch, so a tripped deadline stays tripped even if the clock
       comparison were to flap. *)
    Int64.compare (Monotonic_clock.now ()) d >= 0
    && begin
         Atomic.set t.tripped true;
         true
       end

let check t = if cancelled t then raise Cancelled
let deadline_ms t = t.budget_ms
