examples/live_updates.ml: Database Executor List Option Printf String Tm_query Tm_xml Twigmatch Updates
