(** Marshal-safe mutexes for stored structures.

    [Mutex.t] is a runtime custom block that {!Marshal} rejects, so a
    structure embedding one directly (pager, buffer-pool stripes,
    B+-tree decode caches) would lose snapshot support
    ({!Twigmatch.Persist}). A [Lock.t] is instead a plain-integer
    ticket into a process-global mutex registry: the ticket itself
    marshals, and a structure loaded from a snapshot lazily re-creates
    its mutex in the registry on first acquisition.

    A loaded ticket can collide with a live one, making two structures
    share a mutex — harmless contention, {e unless} sharing could
    invert a lock order and deadlock. The registry therefore allocates
    tickets from two disjoint classes reflecting the storage layer's
    acquisition discipline, and a collision can only pair locks of the
    same class:

    - [Outer]: buffer-pool stripe and decode-cache locks. A thread
      holds at most one Outer lock at a time.
    - [Inner]: pager locks, acquired while holding at most one Outer
      lock and nothing else; no lock is acquired under an Inner lock.

    Sharing within a class keeps the global Outer -> Inner order
    acyclic, so colliding tickets cannot deadlock. *)

type t

type cls = Outer | Inner

val create : cls -> t

val acquire : t -> unit
val release : t -> unit

val with_lock : t -> (unit -> 'a) -> 'a
(** [acquire], run, [release] (also on exception). *)
