(* Quickstart: index a small XML document and match a twig query.

     dune exec examples/quickstart.exe

   Walks through the whole pipeline on the paper's running example
   (Figure 1): parse XML, build a database with the ROOTPATHS and
   DATAPATHS indices, run an XPath twig query under each strategy, and
   inspect the execution statistics. *)

open Twigmatch

let xml =
  {|<book>
      <title>XML</title>
      <allauthors>
        <author><fn>jane</fn><ln>poe</ln></author>
        <author><fn>john</fn><ln>doe</ln></author>
        <author><fn>jane</fn><ln>doe</ln></author>
      </allauthors>
      <year>2000</year>
      <chapter>
        <title>XML</title>
        <section><head>Origins</head></section>
      </chapter>
    </book>|}

let () =
  (* 1. Parse. The result is a forest under a virtual root; nodes are
     numbered in depth-first order like Figure 1(b). *)
  let doc = Tm_xml.Xml_parser.parse xml in
  Printf.printf "parsed %d element/attribute nodes, depth %d\n"
    (Tm_xml.Xml_tree.element_count doc)
    (Tm_xml.Xml_tree.depth doc);

  (* 2. Build the database. By default every index of the paper's
     evaluation is materialized; restrict ~strategies to build fewer. *)
  let db = Database.create doc in

  (* 3. Run the paper's example twig (Figure 1(c)): authors named
     jane doe somewhere under a book titled XML. *)
  let query = "/book[title = 'XML']//author[fn = 'jane'][ln = 'doe']" in
  let twig = Tm_query.Xpath_parser.parse query in
  Printf.printf "\nquery: %s\n\n" query;

  List.iter
    (fun strategy ->
      let r = Executor.run ~hint:(Tm_plan.Hint.Force strategy) db twig in
      Printf.printf "%-8s -> author ids %s  (%s)\n"
        (Database.strategy_name strategy)
        (String.concat ", " (List.map string_of_int r.Executor.ids))
        (Format.asprintf "%a" Tm_exec.Stats.pp r.Executor.stats))
    Database.all_strategies;

  (* 4. Index space (the Figure 9 accounting). *)
  Printf.printf "\nindex space:\n";
  List.iter
    (fun s ->
      Printf.printf "  %-8s %6d bytes\n" (Database.strategy_name s)
        (Database.strategy_size_bytes db s))
    Database.all_strategies
