(** Incremental subtree insertion and deletion with maintenance of
    every built index — the paper's Section 7 future work. Lookup of
    affected entries uses indexed ancestor climbs (O(depth)), per the
    paper's own suggestion; the per-structure write cost is exactly the
    update overhead the paper warns about (ROOTPATHS: one entry per new
    rooted path prefix; DATAPATHS: one per new subpath). *)

val insert_subtree : Database.t -> parent:int -> Tm_xml.Xml_tree.node -> int
(** Attach a subtree as the last child of node [parent]; assigns fresh
    ids, updates document, Edge table, catalog, statistics and every
    built index; returns the subtree root's new id.
    @raise Invalid_argument for the virtual root, an unknown parent, or
    a value-leaf subtree root. *)

val delete_subtree : Database.t -> int -> int
(** Detach the subtree rooted at a node id, removing its entries from
    every built index; returns the number of element/attribute nodes
    removed.
    @raise Invalid_argument for a document root or an unknown id. *)
