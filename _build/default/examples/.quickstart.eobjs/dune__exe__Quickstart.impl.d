examples/quickstart.ml: Database Executor Format List Printf String Tm_exec Tm_query Tm_xml Twigmatch
