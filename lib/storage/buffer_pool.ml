(** LRU buffer pool over a {!Pager}.

    Mirrors the paper's experimental setup (Section 5.1.1: a fixed-size
    buffer pool with the OS cache disabled): every page access is a
    logical read; accesses that miss the pool cost a simulated I/O
    (a physical {!Pager.read}); dirty pages are written back on eviction
    and on {!flush_all}. Capacity is a number of frames.

    The pool is striped for domain-safety: frames are partitioned over
    [page id mod stripes] sub-pools, each with its own mutex, LRU state
    and slice of the total capacity. Concurrent readers on different
    pages almost always hit different stripes and proceed in parallel;
    readers of the same page serialise briefly on one stripe lock.
    Eviction is per-stripe (each stripe evicts its own LRU victim), so
    replacement is approximately-global LRU — the same behaviour a
    hash-partitioned buffer pool exhibits in a real engine. *)

(* Observability mirrors of the pool's own stats: gated on the global
   sink so per-query spans can attribute cache behaviour to operators. *)
let c_hits = Tm_obs.Obs.counter "buffer_pool.hits"
let c_misses = Tm_obs.Obs.counter "buffer_pool.misses"
let c_evictions = Tm_obs.Obs.counter "buffer_pool.evictions"
let c_retries = Tm_obs.Obs.counter "buffer_pool.retries"

type frame = { mutable data : bytes; mutable dirty : bool }

type stripe = {
  lock : Lock.t;
  s_capacity : int; (* this stripe's share of the frame budget *)
  frames : (int, frame) Hashtbl.t; (* page id -> frame *)
  (* LRU order: we keep a sequence number per page and scan for the
     minimum on eviction, which is O(stripe capacity) but stripes are
     small and eviction infrequent at our scales. A doubly-linked list
     would be the production choice; the simple scheme keeps the
     invariants obvious. *)
  last_used : (int, int) Hashtbl.t;
  mutable clock : int;
  mutable logical_reads : int;
  mutable misses : int;
  mutable evictions : int;
  mutable retries : int;
}

type t = { pager : Pager.t; capacity : int; stripes : stripe array }

let default_stripes = 16

let create ?(capacity = 1024) pager =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  (* Never more stripes than frames, so every stripe can hold a page. *)
  let n = min default_stripes capacity in
  let stripes =
    Array.init n (fun i ->
        let cap = (capacity / n) + if i < capacity mod n then 1 else 0 in
        {
          lock = Lock.create Lock.Outer;
          s_capacity = cap;
          frames = Hashtbl.create (2 * cap);
          last_used = Hashtbl.create (2 * cap);
          clock = 0;
          logical_reads = 0;
          misses = 0;
          evictions = 0;
          retries = 0;
        })
  in
  { pager; capacity; stripes }

let pager t = t.pager
let capacity t = t.capacity
let stripe_of t id = t.stripes.(id mod Array.length t.stripes)

let locked st f = Lock.with_lock st.lock f

let touch st id =
  st.clock <- st.clock + 1;
  Hashtbl.replace st.last_used id st.clock

(* Bounded retry for transient pager faults. An injected failure
   (Io_error from a failpoint, or a Corrupt_page from torn/bit-flipped
   injected bytes) is usually transient — the fault fires on one call
   and the retry sees clean bytes — so retrying with a short exponential
   relax-loop backoff rides it out. Genuine stored corruption fails
   every attempt and the last error propagates, typed, to the executor's
   fallback logic. Called with the stripe lock held; the backoff spins
   rather than sleeps so the stripe is held for microseconds, not
   scheduler quanta. *)
let max_attempts = 4

let with_retry st f =
  let rec go attempt =
    match f () with
    | v -> v
    | exception (Tm_fault.Fault.Io_error _ | Pager.Corrupt_page _) when attempt < max_attempts
      ->
      st.retries <- st.retries + 1;
      Tm_obs.Obs.incr c_retries;
      Tm_obs.Flight.emit Tm_obs.Flight.Pool_retry attempt 0 "";
      for _ = 1 to 1 lsl (4 + attempt) do
        Domain.cpu_relax ()
      done;
      go (attempt + 1)
  in
  go 1

(* Called with the stripe lock held. *)
let evict_one pager st =
  Tm_fault.Fault.guard "buffer_pool.evict";
  (* Find the stripe's least-recently-used resident page and write it
     back if dirty. *)
  let victim = ref (-1) and best = ref max_int in
  Hashtbl.iter
    (fun id seq ->
      if seq < !best then begin
        best := seq;
        victim := id
      end)
    st.last_used;
  let id = !victim in
  assert (id >= 0);
  (match Hashtbl.find_opt st.frames id with
  | Some fr when fr.dirty -> Pager.write pager id fr.data
  | _ -> ());
  Hashtbl.remove st.frames id;
  Hashtbl.remove st.last_used id;
  st.evictions <- st.evictions + 1;
  Tm_obs.Obs.incr c_evictions;
  Tm_obs.Flight.emit Tm_obs.Flight.Pool_evict id 0 ""

(* Called with the stripe lock held. The miss path performs the
   physical read inside the critical section, which also prevents two
   domains racing to fault the same page in twice. Stripe locks never
   nest and the pager's own lock sits strictly below them, so the
   ordering is acyclic. *)
let find_frame pager st id =
  match Hashtbl.find_opt st.frames id with
  | Some fr ->
    touch st id;
    Tm_obs.Obs.incr c_hits;
    fr
  | None ->
    st.misses <- st.misses + 1;
    Tm_obs.Obs.incr c_misses;
    (* Retry covers both the eviction (its failpoint and write-back)
       and the fault-in read. Eviction mutates nothing until its
       write-back succeeds, so re-running it after a partial failure is
       safe: the same victim is picked again. *)
    let data =
      with_retry st (fun () ->
          if Hashtbl.length st.frames >= st.s_capacity then evict_one pager st;
          Pager.read pager id)
    in
    let fr = { data; dirty = false } in
    Hashtbl.replace st.frames id fr;
    touch st id;
    fr

(** Read a page through the pool, reporting whether the bytes came from
    a superseded snapshot version. When the calling domain holds an
    {!Epoch} pin older than the page's current epoch (a writer
    transaction dirtied the page after the pin), the read bypasses the
    frame cache — frames always hold the {e newest} image — and serves
    the pinned version straight from the pager's version chain,
    uncached. The epoch check happens under the stripe lock, the same
    lock a transactional write-through holds, so a reader sees either
    the old epoch with the old frame or the new epoch and takes the
    snapshot path: never a torn mix. The fast path ({!Pager.snapshot_active}
    false, i.e. no transaction and no version chains) costs one atomic
    load. The returned bytes must not be mutated; use {!write} to
    modify a page. *)
let read_versioned t id =
  let st = stripe_of t id in
  locked st (fun () ->
      st.logical_reads <- st.logical_reads + 1;
      let pinned_stale =
        (* The active transaction's writer must always see its own
           writes: its reads serve the newest image even when the domain
           also happens to hold a pin (the pin is for the query scope
           that spawned the transaction, not for the write path). *)
        if (not (Pager.snapshot_active t.pager)) || Pager.in_txn_writer t.pager then None
        else
          match Epoch.pinned_for t.pager with
          | Some e when Pager.epoch_of_page t.pager id > e -> Some e
          | Some _ | None -> None
      in
      match pinned_stale with
      | Some e ->
        (* Snapshot read: uncached (version-chain bytes must never
           alias the newest-image frame cache), counted as a miss. *)
        st.misses <- st.misses + 1;
        Tm_obs.Obs.incr c_misses;
        (with_retry st (fun () -> Pager.read_at t.pager ~epoch:e id), true)
      | None -> ((find_frame t.pager st id).data, false))

(** Read a page through the pool. The returned bytes must not be mutated;
    use {!write} to modify a page. *)
let read t id = fst (read_versioned t id)

(** Replace a page's contents through the pool. Outside a transaction
    this is write-back caching (the frame is marked dirty and reaches
    the pager on eviction or {!flush_all}). When the calling domain is
    the active transaction's writer, the write goes {e through} to the
    pager immediately — {!Pager.write} captures the pre-image for
    pinned readers and tags the page with the reserved epoch — and the
    frame is refreshed clean, so commit needs no separate flush and
    abort can simply drop frames. *)
let write t id data =
  let st = stripe_of t id in
  locked st (fun () ->
      st.logical_reads <- st.logical_reads + 1;
      if Pager.in_txn_writer t.pager then begin
        with_retry st (fun () -> Pager.write t.pager id data);
        match Hashtbl.find_opt st.frames id with
        | Some fr ->
          touch st id;
          fr.data <- data;
          fr.dirty <- false
        | None ->
          with_retry st (fun () ->
              if Hashtbl.length st.frames >= st.s_capacity then evict_one t.pager st);
          Hashtbl.replace st.frames id { data; dirty = false };
          touch st id
      end
      else
        (* Avoid a pointless physical read when overwriting a non-resident
           page. *)
        match Hashtbl.find_opt st.frames id with
        | Some fr ->
          touch st id;
          fr.data <- data;
          fr.dirty <- true
        | None ->
          with_retry st (fun () ->
              if Hashtbl.length st.frames >= st.s_capacity then evict_one t.pager st);
          Hashtbl.replace st.frames id { data; dirty = true };
          touch st id)

(** Allocate a fresh page (through the pager) and cache it as dirty. *)
let alloc t =
  (* No page id yet, so no stripe to charge: book alloc retries to
     stripe 0 — stats are only ever read folded over all stripes. *)
  let st0 = t.stripes.(0) in
  let id = locked st0 (fun () -> with_retry st0 (fun () -> Pager.alloc t.pager)) in
  write t id (Bytes.make (Pager.page_size t.pager) '\x00');
  id

let flush_all t =
  Array.iter
    (fun st ->
      locked st (fun () ->
          Hashtbl.iter
            (fun id fr ->
              if fr.dirty then begin
                with_retry st (fun () -> Pager.write t.pager id fr.data);
                fr.dirty <- false
              end)
            st.frames))
    t.stripes

(** Drop every cached frame (after writing dirty ones back), simulating a
    cold cache for benchmark runs. *)
let clear t =
  flush_all t;
  Array.iter
    (fun st ->
      locked st (fun () ->
          Hashtbl.reset st.frames;
          Hashtbl.reset st.last_used))
    t.stripes

(** Drop the frames caching the given pages without writing them back —
    after a transaction abort restored their pager images, the frames
    hold bytes that were rolled back. *)
let invalidate t ids =
  List.iter
    (fun id ->
      let st = stripe_of t id in
      locked st (fun () ->
          Hashtbl.remove st.frames id;
          Hashtbl.remove st.last_used id))
    ids

(* Transaction passthroughs, so structures built over the pool need not
   reach around it for the pager. *)
let in_txn_writer t = Pager.in_txn_writer t.pager
let add_participant t f = Pager.add_participant t.pager f

type stats = { logical_reads : int; misses : int; evictions : int; retries : int }

let stats (t : t) : stats =
  Array.fold_left
    (fun acc st ->
      locked st (fun () ->
          {
            logical_reads = acc.logical_reads + st.logical_reads;
            misses = acc.misses + st.misses;
            evictions = acc.evictions + st.evictions;
            retries = acc.retries + st.retries;
          }))
    { logical_reads = 0; misses = 0; evictions = 0; retries = 0 }
    t.stripes

let reset_stats (t : t) =
  Array.iter
    (fun st ->
      locked st (fun () ->
          st.logical_reads <- 0;
          st.misses <- 0;
          st.evictions <- 0;
          st.retries <- 0))
    t.stripes
