lib/joins/context.ml: Bptree Codec Dictionary Edge_table List Region Shred Tm_storage Tm_xmldb
