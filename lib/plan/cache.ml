(** Process-global plan cache, keyed by (database generation,
    normalized twig shape). A generation is minted per database build
    and bumped on every incremental index update, so (re)building an
    index invalidates exactly that database's cached plans. Bounded
    FIFO; domain-safe behind one mutex (a hit is one small hash lookup,
    contention is negligible next to query execution). *)

type stats = { hits : int; misses : int; invalidations : int; size : int }

let c_hits = Tm_obs.Obs.counter "plan.cache.hits"
let c_misses = Tm_obs.Obs.counter "plan.cache.misses"
let c_invalidations = Tm_obs.Obs.counter "plan.cache.invalidations"

let lock = Mutex.create ()
let table : (string, Plan.t) Hashtbl.t = Hashtbl.create 64 [@@analyze.guarded_by "lock"]
let order : string Queue.t = Queue.create () [@@analyze.guarded_by "lock"]
let cap = ref 256 [@@analyze.guarded_by "lock"]
let hits = Atomic.make 0
let misses = Atomic.make 0
let invalidations = Atomic.make 0

let key ~generation ~shape = string_of_int generation ^ "#" ^ shape

let locked f = Mutex.protect lock f

let set_capacity n =
  if n < 1 then invalid_arg "Plan cache capacity must be >= 1";
  locked (fun () ->
      cap := n;
      while Queue.length order > n do
        Hashtbl.remove table (Queue.pop order)
      done)

let capacity () = !cap

let find ~generation ~shape =
  let k = key ~generation ~shape in
  let r = locked (fun () -> Hashtbl.find_opt table k) in
  (match r with
  | Some _ ->
    Atomic.incr hits;
    Tm_obs.Obs.incr c_hits
  | None ->
    Atomic.incr misses;
    Tm_obs.Obs.incr c_misses);
  Option.map (fun p -> { p with Plan.cached = true }) r

let store ~generation ~shape plan =
  let k = key ~generation ~shape in
  locked (fun () ->
      if not (Hashtbl.mem table k) then begin
        if Queue.length order >= !cap then Hashtbl.remove table (Queue.pop order);
        Queue.push k order
      end;
      Hashtbl.replace table k { plan with Plan.cached = false })

let invalidate ~generation =
  let prefix = string_of_int generation ^ "#" in
  let pl = String.length prefix in
  locked (fun () ->
      let doomed =
        Hashtbl.fold
          (fun k _ acc ->
            if String.length k >= pl && String.equal (String.sub k 0 pl) prefix then k :: acc
            else acc)
          table []
      in
      List.iter (Hashtbl.remove table) doomed;
      let keep = Queue.create () in
      Queue.iter (fun k -> if Hashtbl.mem table k then Queue.push k keep) order;
      Queue.clear order;
      Queue.transfer keep order;
      let n = List.length doomed in
      if n > 0 then begin
        Atomic.set invalidations (Atomic.get invalidations + n);
        Tm_obs.Obs.add c_invalidations n
      end)

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      Queue.clear order)

let reset_stats () =
  Atomic.set hits 0;
  Atomic.set misses 0;
  Atomic.set invalidations 0

let stats () =
  {
    hits = Atomic.get hits;
    misses = Atomic.get misses;
    invalidations = Atomic.get invalidations;
    size = locked (fun () -> Hashtbl.length table);
  }

let () = Tm_obs.Obs.gauge "plan.cache.size" (fun () -> float_of_int (stats ()).size)
