(** Catalog of the distinct rooted schema paths in a database.

    This is the structural summary the paper calls on repeatedly: the
    DataGuide is an index over exactly these paths; the ASR / Join-Index
    baselines materialize one relation per entry ("902 and 235 tables
    for XMark and DBLP"); and plans for [//] patterns expand the
    recursion by enumerating the catalog entries that end with the
    pattern's tag sequence. In a well-structured database the catalog is
    small (paper Section 4.2), so it lives in memory, as a real system
    would keep it in its catalog cache. *)

type entry = {
  path : Schema_path.t;
  path_id : int;  (** dense id, usable for dictionary-encoding schema paths *)
  mutable instance_count : int;  (** number of data paths with this schema path *)
  mutable value_count : int;  (** how many of those end at a node with a leaf value *)
}

type t = {
  (* Guards [by_encoding]/[next_id] mutation and lookup: a durable
     ingest records new paths while epoch-pinned readers resolve
     existing ones, and a Hashtbl resize under a concurrent find is
     undefined. The [entries] spine is published by prepending — a
     single pointer write — so list readers see a consistent (possibly
     slightly stale) snapshot without the lock; counts are monotone
     estimates. A ticketed Tm_storage.Lock so the catalog stays
     marshal-safe inside snapshots. *)
  lock : Tm_storage.Lock.t;
  by_encoding : (string, entry) Hashtbl.t;
  mutable entries : entry list; (* insertion order, path_id ascending *)
  mutable next_id : int;
}

let create () =
  { lock = Tm_storage.Lock.create Tm_storage.Lock.Inner; by_encoding = Hashtbl.create 256; entries = []; next_id = 0 }

let record t (info : Shred.node_info) =
  let enc = Schema_path.encode info.Shred.path in
  Tm_storage.Lock.with_lock t.lock (fun () ->
      let entry =
        match Hashtbl.find_opt t.by_encoding enc with
        | Some e -> e
        | None ->
          let e =
            { path = info.Shred.path; path_id = t.next_id; instance_count = 0; value_count = 0 }
          in
          t.next_id <- t.next_id + 1;
          Hashtbl.replace t.by_encoding enc e;
          t.entries <- e :: t.entries;
          e
      in
      entry.instance_count <- entry.instance_count + 1;
      if info.Shred.value <> None then entry.value_count <- entry.value_count + 1)

(** Reverse of {!record} for node deletion. The entry survives at zero
    instances (its path id must stay stable for Section 4.2 keys). *)
let unrecord t (info : Shred.node_info) =
  let enc = Schema_path.encode info.Shred.path in
  Tm_storage.Lock.with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.by_encoding enc with
      | Some e ->
        e.instance_count <- max 0 (e.instance_count - 1);
        if info.Shred.value <> None then e.value_count <- max 0 (e.value_count - 1)
      | None -> ())

(** Build the catalog for [doc] (interning tags into [dict]). *)
let build dict doc =
  let t = create () in
  Shred.iter_nodes doc dict (fun info -> record t info);
  t

(** Number of distinct rooted schema paths — the paper's "902 / 235". *)
let path_count t = Tm_storage.Lock.with_lock t.lock (fun () -> t.next_id)

let entries t = List.rev t.entries

let find t path =
  let enc = Schema_path.encode path in
  Tm_storage.Lock.with_lock t.lock (fun () -> Hashtbl.find_opt t.by_encoding enc)

(** All distinct rooted schema paths that end with the tag sequence
    [suffix] — the expansion of a PCsubpath pattern with an initial [//].
    This is how DataGuide/ASR/JI plans handle recursion: one access per
    matching path (the cost Figure 13 measures). *)
let paths_with_suffix t suffix =
  List.filter (fun e -> Schema_path.has_suffix e.path suffix) (entries t)

(** All distinct rooted paths equal to [prefix ^ suffix] for some prefix —
    i.e. paths with given rooted prefix and trailing tags. *)
let paths_with_prefix t prefix =
  List.filter (fun e -> Schema_path.has_prefix e.path prefix) (entries t)
