lib/core/updates.mli: Database Tm_xml
