(* Auction-site analysis: twig queries over the XMark-like dataset.

     dune exec examples/auction_analysis.exe -- [scale]

   The scenario from the paper's introduction: ad hoc, exploratory
   queries over a deep auction-site document, where the query workload
   is not known in advance. Shows how the same twig runs under
   different strategies and why branching + recursion favor
   ROOTPATHS/DATAPATHS. *)

open Twigmatch

let queries =
  [
    ( "auctions with a 75.00 increase posted by a known person",
      "/site[people/person/name = 'Hagen Artosi']/open_auctions/open_auction[@increase = '75.00']"
    );
    ( "times of auctions annotated by person22082",
      "/site/open_auctions/open_auction[annotation/author/@person = 'person22082']/time" );
    ( "items anywhere with quantity 2 located in the United States",
      "/site//item[quantity = '2'][location = 'United States']" );
    ( "mail dates of items in the rare category",
      "/site//item[incategory/category = 'category440']/mailbox/mail/date" );
    ("all namerica item quantities of 1", "/site/regions/namerica/item/quantity[. = '1']");
  ]

let time_ns f =
  let t0 = Monotonic_clock.now () in
  let r = f () in
  (r, Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6)

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.25
  in
  Printf.printf "generating XMark-like data (scale %.2f)...\n%!" scale;
  let doc = Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 42; scale } in
  Printf.printf "document: %d elements, depth %d\n%!"
    (Tm_xml.Xml_tree.element_count doc)
    (Tm_xml.Xml_tree.depth doc);
  let db = Database.create doc in
  List.iter
    (fun (label, xpath) ->
      Printf.printf "\n-- %s\n   %s\n" label xpath;
      let twig = Tm_query.Xpath_parser.parse xpath in
      List.iter
        (fun strategy ->
          let r, ms = time_ns (fun () -> Executor.run ~hint:(Tm_plan.Hint.Force strategy) db twig) in
          Printf.printf "   %-8s %4d results in %7.2f ms  (%d lookups, %d entries, %d joins)\n"
            (Database.strategy_name strategy)
            (List.length r.Executor.ids)
            ms r.Executor.stats.Tm_exec.Stats.index_lookups
            r.Executor.stats.Tm_exec.Stats.entries_scanned
            r.Executor.stats.Tm_exec.Stats.join_steps)
        Database.[ RP; DP; Edge; DG_edge; IF_edge ])
    queries
