(** The typed planning request accepted by [Executor.run]: let the
    cost-based planner decide ([Auto]), force one strategy ([Force]),
    or execute a previously obtained plan verbatim ([Pin]). *)

type t = Auto | Force of Strategy.t | Pin of Plan.t

let to_string = function
  | Auto -> "auto"
  | Force s -> "force:" ^ Strategy.name s
  | Pin p -> "pin:" ^ Strategy.name p.Plan.strategy

let of_string s =
  match s with
  | "auto" | "Auto" | "AUTO" -> Ok Auto
  | _ ->
    let body =
      let prefix = "force:" in
      let pl = String.length prefix in
      if String.length s > pl && String.equal (String.sub s 0 pl) prefix then
        String.sub s pl (String.length s - pl)
      else s
    in
    (match Strategy.of_string body with
    | Ok strat -> Ok (Force strat)
    | Error _ ->
      Error
        (Printf.sprintf
           "unknown hint %S (expected \"auto\", a strategy name among %s, or \"force:<strategy>\")"
           s
           (String.concat ", " (List.map Strategy.name Strategy.all))))

(* The deprecation shim behind legacy [--strategy] / [s=] surfaces:
   parses exactly like {!of_string} but records an [Obs] warning so the
   round-trip through strategy strings shows up in telemetry. *)
let of_string_compat ~site s =
  let r = of_string s in
  (match r with
  | Ok _ ->
    Tm_obs.Obs.warn ~site
      (Printf.sprintf
         "strategy string %S parsed via the deprecated strategy_of_string round-trip; pass a \
          plan hint (\"auto\" or \"force:<strategy>\") instead"
         s)
  | Error _ -> ());
  r
