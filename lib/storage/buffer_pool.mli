(** LRU buffer pool over a {!Pager}: the paper's fixed-size DB2 buffer
    pool analogue. Logical reads, misses (simulated I/O) and evictions
    are counted; dirty pages are written back on eviction and flush.

    Domain-safe via striped locks: frames are partitioned by
    [page id mod stripes], each stripe with its own mutex, LRU order and
    capacity share, so concurrent readers on different pages proceed in
    parallel and replacement is approximately-global LRU. *)

type t

val max_attempts : int
(** Bound on attempts per pager operation: transient faults (an
    injected {!Tm_fault.Fault.Io_error} or a {!Pager.Corrupt_page} from
    torn injected bytes) are retried with exponential relax-loop
    backoff up to this many times; the last error then propagates.
    Retries are counted in {!stats} and as [buffer_pool.retries].
    The [buffer_pool.evict] failpoint fires at the head of each
    eviction and is covered by the same retry. *)

val create : ?capacity:int -> Pager.t -> t
(** [capacity] is a number of frames (default 1024).
    @raise Invalid_argument if capacity < 1. *)

val pager : t -> Pager.t
val capacity : t -> int

val read : t -> int -> bytes
(** Read a page through the pool. The returned bytes must not be
    mutated; use {!write} to modify a page. *)

val write : t -> int -> bytes -> unit
(** Replace a page's contents (write-back caching). *)

val alloc : t -> int
(** Allocate a fresh page via the pager and cache it dirty. *)

val flush_all : t -> unit
(** Write every dirty frame back to the pager. *)

val clear : t -> unit
(** Flush, then drop every frame — simulates a cold cache. *)

type stats = { logical_reads : int; misses : int; evictions : int; retries : int }

val stats : t -> stats
val reset_stats : t -> unit
