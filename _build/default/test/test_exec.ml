(* Tests for the execution primitives: binding relations and joins.
   hash_join and merge_join are checked against a reference nested-loop
   natural join with qcheck-generated inputs. *)

open Tm_exec

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let rel cols rows = Relation.create (Array.of_list cols) (List.map Array.of_list rows)

let rows_sorted r = List.sort compare (List.map Array.to_list r.Relation.rows)

let test_project_distinct () =
  let r = rel [ 1; 2; 3 ] [ [ 10; 20; 30 ]; [ 10; 21; 30 ]; [ 10; 20; 30 ] ] in
  let p = Relation.project r [ 1; 3 ] in
  check Alcotest.(list (list int)) "projection" [ [ 10; 30 ]; [ 10; 30 ]; [ 10; 30 ] ]
    (List.map Array.to_list p.Relation.rows);
  check Alcotest.int "distinct" 1 (Relation.cardinality (Relation.distinct p));
  check Alcotest.(list int) "column values" [ 20; 21 ] (Relation.column_values r 2)

let test_hash_join_basic () =
  let a = rel [ 1; 2 ] [ [ 1; 10 ]; [ 2; 20 ]; [ 3; 30 ] ] in
  let b = rel [ 2; 3 ] [ [ 10; 100 ]; [ 10; 101 ]; [ 30; 300 ] ] in
  let j = Relation.hash_join a b in
  check Alcotest.(list int) "columns" [ 1; 2; 3 ] (Array.to_list (Relation.columns j));
  check
    Alcotest.(list (list int))
    "rows"
    [ [ 1; 10; 100 ]; [ 1; 10; 101 ]; [ 3; 30; 300 ] ]
    (rows_sorted j)

let test_merge_join_equals_hash () =
  let a = rel [ 1; 2 ] [ [ 1; 10 ]; [ 2; 10 ]; [ 3; 30 ] ] in
  let b = rel [ 2 ] [ [ 10 ]; [ 10 ]; [ 40 ] ] in
  check
    Alcotest.(list (list int))
    "same result"
    (rows_sorted (Relation.hash_join a b))
    (rows_sorted (Relation.merge_join a b))

let test_join_on_multiple_columns () =
  let a = rel [ 1; 2 ] [ [ 1; 10 ]; [ 1; 11 ] ] in
  let b = rel [ 1; 2; 3 ] [ [ 1; 10; 7 ]; [ 1; 12; 8 ] ] in
  let j = Relation.hash_join a b in
  check Alcotest.(list (list int)) "joined on both" [ [ 1; 10; 7 ] ] (rows_sorted j)

let test_join_callbacks () =
  let a = rel [ 1 ] [ [ 1 ]; [ 2 ] ] in
  let b = rel [ 1 ] [ [ 1 ]; [ 1 ]; [ 3 ] ] in
  let probes = ref 0 and results = ref 0 in
  ignore
    (Relation.hash_join
       ~on_probe:(fun () -> incr probes)
       ~on_result:(fun () -> incr results)
       a b);
  check Alcotest.int "probes" 3 !probes;
  check Alcotest.int "results" 2 !results

(* Reference natural join. *)
let nested_loop_join a b =
  let shared = Relation.shared_columns a b in
  let a_idx = List.map (fun c -> Option.get (Relation.column_index a c)) shared in
  let b_idx = List.map (fun c -> Option.get (Relation.column_index b c)) shared in
  let b_extra =
    Array.to_list (Relation.columns b) |> List.filter (fun c -> not (List.mem c shared))
  in
  let b_extra_idx = List.map (fun c -> Option.get (Relation.column_index b c)) b_extra in
  List.concat_map
    (fun arow ->
      List.filter_map
        (fun brow ->
          if List.map (fun i -> arow.(i)) a_idx = List.map (fun i -> brow.(i)) b_idx then
            Some (Array.append arow (Array.of_list (List.map (fun i -> brow.(i)) b_extra_idx)))
          else None)
        b.Relation.rows)
    a.Relation.rows
  |> List.map Array.to_list |> List.sort compare

let gen_rel cols =
  QCheck.Gen.(
    map
      (fun rows -> rel cols rows)
      (list_size (int_range 0 20) (flatten_l (List.map (fun _ -> int_bound 4) cols))))

let prop_joins_match_reference =
  let gen =
    QCheck.make
      QCheck.Gen.(pair (gen_rel [ 1; 2 ]) (gen_rel [ 2; 3 ]))
  in
  QCheck.Test.make ~name:"hash and merge join match nested-loop reference" ~count:200 gen
    (fun (a, b) ->
      let reference = nested_loop_join a b in
      rows_sorted (Relation.hash_join a b) = reference
      && rows_sorted (Relation.merge_join a b) = reference)

let prop_join_no_shared_is_cross_product =
  let gen = QCheck.make QCheck.Gen.(pair (gen_rel [ 1 ]) (gen_rel [ 2 ])) in
  QCheck.Test.make ~name:"join without shared columns = cross product" ~count:50 gen
    (fun (a, b) ->
      Relation.cardinality (Relation.hash_join a b)
      = Relation.cardinality a * Relation.cardinality b)

let test_stats () =
  let s = Stats.create () in
  s.Stats.index_lookups <- 3;
  s.Stats.join_steps <- 1;
  let s2 = Stats.add s s in
  check Alcotest.int "add lookups" 6 s2.Stats.index_lookups;
  check Alcotest.int "add joins" 2 s2.Stats.join_steps;
  check Alcotest.bool "pp" true (String.length (Format.asprintf "%a" Stats.pp s2) > 0)

let suite =
  [
    ( "relation",
      [
        Alcotest.test_case "project/distinct/columns" `Quick test_project_distinct;
        Alcotest.test_case "hash join" `Quick test_hash_join_basic;
        Alcotest.test_case "merge = hash" `Quick test_merge_join_equals_hash;
        Alcotest.test_case "multi-column join" `Quick test_join_on_multiple_columns;
        Alcotest.test_case "join callbacks" `Quick test_join_callbacks;
        qtest prop_joins_match_reference;
        qtest prop_join_no_shared_is_cross_product;
      ] );
    ("stats", [ Alcotest.test_case "accumulate" `Quick test_stats ]);
  ]

let () = Alcotest.run "tm_exec" suite
