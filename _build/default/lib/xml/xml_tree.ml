(** XML data model: rooted, ordered, labeled trees (paper Section 2.1).

    Non-leaf nodes are elements and attributes, labeled with tags or
    attribute names; leaf nodes are string values. Per the paper
    (Figure 1(b)), each non-leaf node carries a unique numeric id,
    assigned in depth-first (document) order; value leaves carry no id
    ([no_id]). A {!document} wraps one or more roots under a virtual
    root with id 0 (paper Section 3.3, footnote 4), so a forest of XML
    documents is supported uniformly. *)

type label =
  | Elem of string  (** element, labeled with its tag *)
  | Attr of string  (** attribute, labeled with its name *)
  | Value of string  (** leaf value (element text or attribute value) *)

type node = { mutable id : int; label : label; mutable children : node array }

type document = {
  virtual_root_id : int;  (** always 0 *)
  roots : node array;  (** document roots, children of the virtual root *)
  node_count : int;  (** number of numbered (non-value) nodes, incl. virtual root *)
}

let no_id = -1

(* ------------------------------------------------------------------ *)
(* Constructors (ids are assigned by [document])                       *)
(* ------------------------------------------------------------------ *)

let elem tag children = { id = no_id; label = Elem tag; children = Array.of_list children }

(** An attribute node with its value leaf, e.g. [attr "income" "9876.00"]. *)
let attr name value =
  { id = no_id; label = Attr name; children = [| { id = no_id; label = Value value; children = [||] } |] }

let text value = { id = no_id; label = Value value; children = [||] }

(** An element with a single text leaf, e.g. [elem_text "year" "1998"]. *)
let elem_text tag value = elem tag [ text value ]

let is_value node = match node.label with Value _ -> true | Elem _ | Attr _ -> false

let label_name node =
  match node.label with Elem t -> t | Attr a -> a | Value v -> v

(** Assign depth-first pre-order ids (virtual root = 0, first root = 1, …)
    and return the finished document. Value leaves keep [no_id]. *)
let document roots =
  let counter = ref 0 in
  let rec number node =
    match node.label with
    | Value _ -> node.id <- no_id
    | Elem _ | Attr _ ->
      incr counter;
      node.id <- !counter;
      Array.iter number node.children
  in
  List.iter number roots;
  { virtual_root_id = 0; roots = Array.of_list roots; node_count = !counter + 1 }

(* ------------------------------------------------------------------ *)
(* Traversals and measures                                             *)
(* ------------------------------------------------------------------ *)

(** Pre-order fold over all nodes (value leaves included), with the path
    of ancestors (nearest first) available to the visitor. *)
let fold_with_ancestors doc f acc =
  let rec go ancestors acc node =
    let acc = f acc ~ancestors node in
    Array.fold_left (go (node :: ancestors)) acc node.children
  in
  Array.fold_left (go []) acc doc.roots

let fold doc f acc = fold_with_ancestors doc (fun acc ~ancestors:_ n -> f acc n) acc
let iter doc f = fold doc (fun () n -> f n) ()

(** Number of element/attribute nodes (excluding the virtual root). *)
let element_count doc =
  fold doc (fun acc n -> if is_value n then acc else acc + 1) 0

let value_count doc = fold doc (fun acc n -> if is_value n then acc + 1 else acc) 0

(** Maximum depth of any node, counting a document root as depth 1. *)
let depth doc =
  let rec go d node = Array.fold_left (fun m c -> max m (go (d + 1) c)) d node.children in
  Array.fold_left (fun m r -> max m (go 1 r)) 0 doc.roots

(** The single text value directly under [node], if any. *)
let leaf_value node =
  Array.fold_left
    (fun acc c -> match c.label with Value v -> Some v | Elem _ | Attr _ -> acc)
    None node.children

(** Find the node with a given id (linear; for tests and tools). *)
let find_by_id doc id =
  fold doc (fun acc n -> if n.id = id then Some n else acc) None

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_buffer buf doc =
  let rec go indent node =
    match node.label with
    | Value v ->
      Buffer.add_string buf indent;
      Buffer.add_string buf (escape_text v);
      Buffer.add_char buf '\n'
    | Attr _ -> () (* attributes are printed inline by their element *)
    | Elem tag ->
      Buffer.add_string buf indent;
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      Array.iter
        (fun c ->
          match c.label with
          | Attr name ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf name;
            Buffer.add_string buf "=\"";
            (match leaf_value c with Some v -> Buffer.add_string buf (escape_text v) | None -> ());
            Buffer.add_char buf '"'
          | Elem _ | Value _ -> ())
        node.children;
      let non_attr_children =
        Array.to_list node.children
        |> List.filter (fun c -> match c.label with Attr _ -> false | _ -> true)
      in
      (match non_attr_children with
      | [] -> Buffer.add_string buf "/>\n"
      | [ { label = Value v; _ } ] ->
        Buffer.add_char buf '>';
        Buffer.add_string buf (escape_text v);
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_string buf ">\n"
      | children ->
        Buffer.add_string buf ">\n";
        List.iter (go (indent ^ "  ")) children;
        Buffer.add_string buf indent;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_string buf ">\n")
  in
  Array.iter (go "") doc.roots

let to_string doc =
  let buf = Buffer.create 4096 in
  to_buffer buf doc;
  Buffer.contents buf
