lib/storage/pager.ml: Array Bytes Printf Tm_obs
