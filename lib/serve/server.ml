(** An overload-safe concurrent HTTP/1.1 serving layer over a loaded
    database.

    Request handling is separated from socket handling: {!handle} maps
    a (method, target) pair to a response with no I/O at all, so the
    endpoint surface is unit-testable without binding a port; {!create}
    / {!run} / {!stop} wrap it in a loopback listener that fans
    accepted connections out across a {!Tm_par.Pool} domain pool.

    Overload behaviour (see README "Serving"):

    - {e admission control}: a {!Tm_par.Semaphore} bounds the number of
      connections inside the server (executing plus queued); a full
      queue sheds with a typed 429 + Retry-After instead of queueing
      unboundedly;
    - {e adaptive shedding}: the admission queue shrinks as the
      observed p99 latency climbs past the configured target, so
      queueing stops amplifying latency exactly when it would;
    - {e per-request deadlines}: every accepted connection gets a
      {!Tm_par.Cancel} token armed with the request budget at accept
      time; the deadline covers queue wait and is propagated into
      {!Executor.run}, and a request whose budget died in the queue is
      shed (503) without running;
    - {e circuit breaker}: repeated storage-class failures
      ([Corrupt_page], [Io_error]) trip the /query handler to degraded
      mode (503 + Retry-After) with an exponential half-open schedule
      ({!Breaker});
    - {e graceful drain}: SIGTERM (wired in twigql) or [GET /drain]
      stops accepting, finishes in-flight and queued requests under the
      drain deadline, and {!run} returns {!Drained};
    - {e hardened parsing}: request size caps (413), malformed input
      (400), slowloris read deadlines (408) — never an uncaught
      exception, and the client fd is always closed.

    Accounting invariant (asserted by the chaos suite): every accepted
    connection ends in exactly one of [responses] (a full response was
    written, sheds included), [write_failures] (response write failed —
    logged), or [accept_faults] (the [serve.accept] failpoint fired —
    logged). Nothing is silently dropped. *)

open Twigmatch
module Cancel = Tm_par.Cancel
module Semaphore = Tm_par.Semaphore
module Fault = Tm_fault.Fault

type response = {
  status : int;
  content_type : string;
  body : string;
  retry_after_s : int option;
}

let c_requests = Tm_obs.Obs.counter "serve.requests"
let h_request_ms = Tm_obs.Obs.histogram "serve.request.ms"
let c_accepted = Tm_obs.Obs.counter "serve.accepted"
let c_responses = Tm_obs.Obs.counter "serve.responses"
let c_shed = Tm_obs.Obs.counter "serve.shed"
let c_write_failures = Tm_obs.Obs.counter "serve.write_failures"
let c_accept_faults = Tm_obs.Obs.counter "serve.accept_faults"
let h_queue_wait_ms = Tm_obs.Obs.histogram "serve.queue_wait.ms"

(* ------------------------------------------------------------------ *)
(* Target parsing                                                      *)
(* ------------------------------------------------------------------ *)

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let url_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '+' -> Buffer.add_char buf ' '
      | '%' when i + 2 < n -> (
        match (hex_value s.[i + 1], hex_value s.[i + 2]) with
        | Some h, Some l -> Buffer.add_char buf (Char.chr ((h * 16) + l))
        | _ ->
          Buffer.add_char buf '%';
          Buffer.add_char buf s.[i + 1];
          Buffer.add_char buf s.[i + 2])
      | c -> Buffer.add_char buf c);
      go (i + if s.[i] = '%' && i + 2 < n && Option.is_some (hex_value s.[i + 1]) && Option.is_some (hex_value s.[i + 2]) then 3 else 1)
    end
  in
  go 0;
  Buffer.contents buf

(* "/slow?threshold_ms=5&x=1" -> ("/slow", [("threshold_ms","5"); ("x","1")]) *)
let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some q ->
    let path = String.sub target 0 q in
    let rest = String.sub target (q + 1) (String.length target - q - 1) in
    let params =
      String.split_on_char '&' rest
      |> List.filter_map (fun kv ->
             if String.equal kv "" then None
             else
               match String.index_opt kv '=' with
               | None -> Some (url_decode kv, "")
               | Some e ->
                 Some
                   ( url_decode (String.sub kv 0 e),
                     url_decode (String.sub kv (e + 1) (String.length kv - e - 1)) ))
    in
    (path, params)

(* ------------------------------------------------------------------ *)
(* Endpoint bodies                                                     *)
(* ------------------------------------------------------------------ *)

let json = "application/json"
let text = "text/plain; charset=utf-8"
let respond ?retry_after_s status content_type body = { status; content_type; body; retry_after_s }
let json_string = Tm_obs.Export.json_string
let json_float = Tm_obs.Export.json_float

(* Every catch-all below converts a failure into an HTTP body. Fatal
   runtime conditions must not be laundered into a 500 the client
   retries against a dying process — re-raise them first. *)
let reraise_if_fatal e = match e with Out_of_memory | Stack_overflow -> raise e | _ -> ()

(* A canary twig for /healthz: the root tag of the first catalogued
   rooted path, so the lookup touches the live index structures but
   stays O(document roots). *)
let default_canary (db : Database.t) =
  match Tm_xmldb.Schema_catalog.entries db.Database.catalog with
  | [] -> None
  | e :: _ -> (
    match Tm_xmldb.Schema_path.to_list e.Tm_xmldb.Schema_catalog.path with
    | t :: _ ->
      Some (Tm_query.Xpath_parser.parse ("/" ^ Tm_xmldb.Dictionary.name db.Database.dict t))
    | [] -> None)

let healthz ?canary ?durable (db : Database.t) =
  (* fsck-lite: pager-level page checks only (checksums, bounds,
     decodability) — milliseconds, unlike the full structural fsck *)
  let violations = Tm_check.Check.check_pager db.Database.pager in
  let canary = match canary with Some _ as c -> c | None -> default_canary db in
  let canary_outcome =
    match canary with
    | None -> Ok 0
    | Some twig -> (
      match Executor.run db twig with
      | r -> Ok (List.length r.Executor.ids)
      | exception e ->
        reraise_if_fatal e;
        Error (Printexc.to_string e))
  in
  let wal = Option.map Durable.wal_status durable in
  let wal_field =
    match wal with
    | None -> ""
    | Some w ->
      Printf.sprintf ",\"wal\":{\"log_bytes\":%d,\"last_txn\":%d,\"poisoned\":%s}"
        w.Durable.log_bytes w.Durable.last_txn
        (match w.Durable.poisoned with None -> "false" | Some m -> json_string m)
  in
  let poisoned =
    match wal with Some { Durable.poisoned = Some _; _ } -> true | Some _ | None -> false
  in
  match (violations, canary_outcome) with
  | [], Ok rows when not poisoned ->
    respond 200 json
      (Printf.sprintf "{\"status\":\"ok\",\"canary_rows\":%d,\"pager_violations\":0%s}" rows
         wal_field)
  | [], Ok rows ->
    (* The write path is poisoned but reads still serve: degraded, not
       dead — reopening the durable directory is the recovery. *)
    respond 200 json
      (Printf.sprintf "{\"status\":\"degraded\",\"canary_rows\":%d,\"pager_violations\":0%s}"
         rows wal_field)
  | vs, outcome ->
    let canary_field =
      match outcome with
      | Ok rows -> Printf.sprintf "\"canary_rows\":%d" rows
      | Error msg -> Printf.sprintf "\"canary_error\":%s" (json_string msg)
    in
    respond 500 json
      (Printf.sprintf "{\"status\":\"unhealthy\",%s,\"pager_violations\":%d%s}" canary_field
         (List.length vs) wal_field)

let warnings_json () =
  let one (w : Tm_obs.Obs.warning) =
    Printf.sprintf "{\"time\":%s,\"trace\":%s,\"site\":%s,\"msg\":%s}" (json_float w.Tm_obs.Obs.w_time)
      (match w.Tm_obs.Obs.w_ctx with Some id -> string_of_int id | None -> "null")
      (json_string w.Tm_obs.Obs.w_site) (json_string w.Tm_obs.Obs.w_msg)
  in
  "[" ^ String.concat "," (List.map one (Tm_obs.Obs.warnings ())) ^ "]"

(* Outcome classification for the circuit breaker: only storage-class
   failures (a corrupt page, I/O that outlasted the bounded retries)
   count as breaker failures; parse errors, timeouts and empty results
   resolve the half-open probe as a success. *)
let breaker_ok breaker = match breaker with None -> () | Some b -> Breaker.success b

let breaker_fail ~cls breaker =
  match breaker with None -> () | Some b -> Breaker.failure ~cls b

let run_query ?cancel ?breaker (db : Database.t) params =
  match List.assoc_opt "q" params with
  | None | Some "" -> respond 400 json "{\"error\":\"missing q parameter\"}"
  | Some q -> (
    match Tm_query.Xpath_parser.parse q with
    | exception e ->
      reraise_if_fatal e;
      respond 400 json
        (Printf.sprintf "{\"error\":%s}" (json_string ("parse: " ^ Printexc.to_string e)))
    | twig -> (
      let hint =
        match List.assoc_opt "hint" params with
        | Some h -> Tm_plan.Hint.of_string h
        | None -> (
          match List.assoc_opt "s" params with
          | None -> Ok Tm_plan.Hint.Auto
          | Some s -> Tm_plan.Hint.of_string_compat ~site:"serve./query?s=" s)
      in
      let deadline_ms =
        Option.bind (List.assoc_opt "timeout_ms" params) float_of_string_opt
      in
      match hint with
      | Error msg -> respond 400 json (Printf.sprintf "{\"error\":%s}" (json_string msg))
      | Ok hint -> (
        match
          match breaker with
          | None -> Breaker.Allow
          | Some b -> Breaker.admit b
        with
        | Breaker.Reject { retry_after_ms } ->
          respond
            ~retry_after_s:(max 1 (int_of_float (Float.ceil (retry_after_ms /. 1000.0))))
            503 json
            "{\"error\":\"degraded: circuit breaker open after repeated storage failures\"}"
        | Breaker.Allow -> (
          match Executor.run ~hint ?deadline_ms ?cancel db twig with
          | r ->
            breaker_ok breaker;
            respond 200 json
              (Printf.sprintf
                 "{\"trace_id\":%d,\"strategy\":%s,\"reason\":%s,\"rows\":%d,\"replans\":%d,\"plan\":%s,\"ids\":[%s]}"
                 r.Executor.trace_id
                 (json_string (Database.strategy_name r.Executor.strategy))
                 (json_string r.Executor.reason)
                 (List.length r.Executor.ids)
                 r.Executor.replans
                 (Tm_plan.Plan.to_json r.Executor.plan)
                 (String.concat "," (List.map string_of_int r.Executor.ids)))
          (* The HTTP edge is the sanctioned end of the typed-error chain:
             past here there is no caller left to degrade gracefully. *)
          | exception Executor.Timeout { ms; _ } ->
            ((breaker_ok breaker;
              respond ~retry_after_s:1 503 json
                (Printf.sprintf "{\"error\":\"deadline of %s ms expired\"}" (json_float ms)))
            [@analyze.boundary])
          | exception Tm_storage.Pager.Corrupt_page { page; detail } ->
            ((breaker_fail ~cls:"corrupt-page" breaker;
              respond 500 json
                (Printf.sprintf "{\"error\":%s}"
                   (json_string (Printf.sprintf "corrupt page %d: %s" page detail))))
            [@analyze.boundary])
          | exception Fault.Io_error { site; detail } ->
            (breaker_fail ~cls:"io-error" breaker;
             respond 500 json
               (Printf.sprintf "{\"error\":%s}"
                  (json_string (Printf.sprintf "io error at %s: %s" site detail)))
            [@analyze.boundary])))))

(* /plan?q=XPATH[&hint=...] — the planner's choice as JSON, without
   executing the query. *)
let plan_query (db : Database.t) params =
  match List.assoc_opt "q" params with
  | None | Some "" -> respond 400 json "{\"error\":\"missing q parameter\"}"
  | Some q -> (
    match Tm_query.Xpath_parser.parse q with
    | exception e ->
      reraise_if_fatal e;
      respond 400 json
        (Printf.sprintf "{\"error\":%s}" (json_string ("parse: " ^ Printexc.to_string e)))
    | twig -> (
      let hint =
        match List.assoc_opt "hint" params with
        | Some h -> Tm_plan.Hint.of_string h
        | None -> Ok Tm_plan.Hint.Auto
      in
      match hint with
      | Error msg -> respond 400 json (Printf.sprintf "{\"error\":%s}" (json_string msg))
      | Ok hint -> (
        match Executor.explain ~hint db twig with
        | text ->
          respond 200 json
            (Printf.sprintf "{\"query\":%s,\"explain\":%s}" (json_string q) (json_string text))
        | exception e ->
          reraise_if_fatal e;
          respond 500 json
            (Printf.sprintf "{\"error\":%s}" (json_string (Printexc.to_string e))))))

let index_body =
  String.concat "\n"
    [
      "twigql serve endpoints:";
      "  /metrics              Prometheus text metrics";
      "  /healthz              canary lookup + pager fsck-lite (+ WAL status with --wal)";
      "  /journal              query-lifecycle journal (JSON)";
      "  /slow[?threshold_ms=N]  slow-query log (JSON, slowest first)";
      "  /warnings             structured warnings (JSON)";
      "  /debug/flight[?format=json|chrome|text]  flight-recorder timeline";
      "  /debug/last-dump      metadata of the latest post-mortem dump (JSON)";
      "  /stats                serving/overload counters (JSON)";
      "  /drain                stop accepting, finish in-flight, exit";
      "  /query?q=XPATH[&hint=auto|STRATEGY][&timeout_ms=N]  run a twig query";
      "                        (s=STRATEGY still accepted, deprecated)";
      "  /plan?q=XPATH[&hint=auto|STRATEGY]  explain the chosen plan (JSON)";
      "";
    ]

let handle ?canary ?durable ?cancel ?breaker (db : Database.t) ~meth ~target =
  Tm_obs.Obs.incr c_requests;
  let t0 = if Tm_obs.Obs.enabled () then Unix.gettimeofday () else 0.0 in
  let path, params = split_target target in
  let dispatch () =
    if not (String.equal meth "GET") then
      respond 405 text "method not allowed\n"
    else
      match path with
      | "/" -> respond 200 text index_body
      | "/metrics" -> respond 200 text (Tm_obs.Export.metrics_to_prometheus ())
      | "/healthz" -> healthz ?canary ?durable db
      | "/journal" -> respond 200 json (Tm_obs.Journal.to_json (Tm_obs.Journal.entries ()))
      | "/slow" ->
        let threshold_ms =
          Option.bind (List.assoc_opt "threshold_ms" params) float_of_string_opt
        in
        respond 200 json (Tm_obs.Journal.to_json (Tm_obs.Journal.slow ?threshold_ms ()))
      | "/warnings" -> respond 200 json (warnings_json ())
      | "/debug/flight" ->
        if not (Tm_obs.Flight.enabled ()) then
          respond 503 json
            "{\"error\":\"flight recorder disabled; enable with --flight or TWIGMATCH_FLIGHT=1\"}"
        else begin
          let events = Tm_obs.Flight.snapshot () in
          match List.assoc_opt "format" params with
          | Some "chrome" -> respond 200 json (Tm_obs.Export.flight_to_chrome events)
          | Some "text" ->
            let t0 =
              match events with [] -> 0 | e :: _ -> e.Tm_obs.Flight.e_ts_ns
            in
            respond 200 text
              (String.concat "\n"
                 (List.map (Tm_obs.Flight.event_to_string ~t0) events)
              ^ "\n")
          | Some _ | None -> respond 200 json (Tm_obs.Export.flight_to_json events)
        end
      | "/debug/last-dump" -> (
        match Tm_obs.Flight.last_dump () with
        | None -> respond 404 json "{\"error\":\"no post-mortem dump written yet\"}"
        | Some d ->
          respond 200 json
            (Printf.sprintf
               "{\"path\":%s,\"reason\":%s,\"time\":%s,\"events\":%d,\"domains\":%d}"
               (json_string d.Tm_obs.Flight.ld_path)
               (json_string d.Tm_obs.Flight.ld_reason)
               (json_float d.Tm_obs.Flight.ld_time)
               d.Tm_obs.Flight.ld_events d.Tm_obs.Flight.ld_domains))
      | "/query" -> run_query ?cancel ?breaker db params
      | "/plan" -> plan_query db params
      | _ -> respond 404 text "not found\n"
  in
  let response =
    try dispatch ()
    with e ->
      reraise_if_fatal e;
      respond 500 json (Printf.sprintf "{\"error\":%s}" (json_string (Printexc.to_string e)))
  in
  if t0 > 0.0 then Tm_obs.Obs.observe h_request_ms ((Unix.gettimeofday () -. t0) *. 1e3);
  response

(* ------------------------------------------------------------------ *)
(* Overload policy                                                     *)
(* ------------------------------------------------------------------ *)

type config = {
  max_in_flight : int;
  max_queue : int;
  request_timeout_ms : float;
  read_timeout_ms : float;
  write_timeout_ms : float;
  max_request_bytes : int;
  drain_deadline_ms : float;
  shed_p99_ms : float;
  breaker_failures : int;
  breaker_cooldown_ms : float;
}

let default_config =
  {
    max_in_flight = 8;
    max_queue = 64;
    request_timeout_ms = 10_000.0;
    read_timeout_ms = 5_000.0;
    write_timeout_ms = 5_000.0;
    max_request_bytes = 16_384;
    drain_deadline_ms = 30_000.0;
    shed_p99_ms = 500.0;
    breaker_failures = 5;
    breaker_cooldown_ms = 1_000.0;
  }

(* The adaptive admission-queue bound: the full [max_queue] while the
   observed p99 sits at or under the target, shrinking linearly to zero
   at twice the target. Queueing amplifies latency exactly when the
   server is already slow — so that is when we stop queueing. *)
let shed_queue_limit ~max_queue ~target_ms ~p99_ms =
  match p99_ms with
  | None -> max_queue
  | Some p when p <= target_ms -> max_queue
  | Some p when p >= 2.0 *. target_ms -> 0
  | Some p ->
    int_of_float (Float.ceil (float_of_int max_queue *. (1.0 -. ((p -. target_ms) /. target_ms))))

(* ------------------------------------------------------------------ *)
(* The socket server                                                   *)
(* ------------------------------------------------------------------ *)

type t = {
  db : Database.t;
  canary : Tm_query.Twig.t option;
  durable : Durable.t option;
  config : config;
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  draining : bool Atomic.t;
  listener_closed : bool Atomic.t;
  slots : Semaphore.t;  (** executing + queued connections; the admission bound *)
  breaker : Breaker.t;
  (* accounting: every accepted connection ends in exactly one of
     s_responses / s_write_failures / s_accept_faults *)
  s_accepted : int Atomic.t;
  s_admitted : int Atomic.t;
  s_responses : int Atomic.t;
  s_shed_queue : int Atomic.t;
  s_shed_overload : int Atomic.t;
  s_shed_deadline : int Atomic.t;
  s_shed_breaker : int Atomic.t;
  s_read_timeouts : int Atomic.t;
  s_write_failures : int Atomic.t;
  s_accept_faults : int Atomic.t;
  s_in_flight : int Atomic.t;
  s_queued : int Atomic.t;
  (* sliding window of client-observed latencies (ms) feeding the
     adaptive shed decision and the Retry-After estimate *)
  lat_lock : Mutex.t;
  lat : float array; [@analyze.guarded_by "lat_lock"]
  mutable lat_len : int; [@analyze.guarded_by "lat_lock"]
  mutable lat_pos : int; [@analyze.guarded_by "lat_lock"]
}

type stats = {
  accepted : int;
  admitted : int;
  responses : int;
  shed_queue : int;
  shed_overload : int;
  shed_deadline : int;
  shed_breaker : int;
  read_timeouts : int;
  write_failures : int;
  accept_faults : int;
  in_flight : int;
  queued : int;
}

let stats t =
  {
    accepted = Atomic.get t.s_accepted;
    admitted = Atomic.get t.s_admitted;
    responses = Atomic.get t.s_responses;
    shed_queue = Atomic.get t.s_shed_queue;
    shed_overload = Atomic.get t.s_shed_overload;
    shed_deadline = Atomic.get t.s_shed_deadline;
    shed_breaker = Atomic.get t.s_shed_breaker;
    read_timeouts = Atomic.get t.s_read_timeouts;
    write_failures = Atomic.get t.s_write_failures;
    accept_faults = Atomic.get t.s_accept_faults;
    in_flight = Atomic.get t.s_in_flight;
    queued = Atomic.get t.s_queued;
  }

let shed_total s = s.shed_queue + s.shed_overload + s.shed_deadline + s.shed_breaker

let stats_json t =
  let s = stats t in
  Printf.sprintf
    "{\"accepted\":%d,\"admitted\":%d,\"responses\":%d,\"shed\":{\"queue_full\":%d,\"overload\":%d,\"deadline\":%d,\"breaker\":%d,\"total\":%d},\"read_timeouts\":%d,\"write_failures\":%d,\"accept_faults\":%d,\"in_flight\":%d,\"queued\":%d,\"breaker_state\":%s,\"draining\":%b}"
    s.accepted s.admitted s.responses s.shed_queue s.shed_overload s.shed_deadline
    s.shed_breaker (shed_total s) s.read_timeouts s.write_failures s.accept_faults s.in_flight
    s.queued
    (json_string
       (match Breaker.state t.breaker with
       | `Closed -> "closed"
       | `Open -> "open"
       | `Half_open -> "half-open"))
    (Atomic.get t.draining)

let port t = t.port

(* Gauges read the most recently created server — registered once per
   process (Obs.gauge is first-registration-wins anyway). *)
let current : t option Atomic.t = Atomic.make None

let record_latency t ms =
  Mutex.protect t.lat_lock (fun () ->
      t.lat.(t.lat_pos) <- ms;
      t.lat_pos <- (t.lat_pos + 1) mod Array.length t.lat;
      if t.lat_len < Array.length t.lat then t.lat_len <- t.lat_len + 1)

(* (p99, mean) over the latency window, [None] until a request
   completed. *)
let recent_latency t =
  Mutex.protect t.lat_lock (fun () ->
      if t.lat_len = 0 then None
      else begin
        let a = Array.sub t.lat 0 t.lat_len in
        Array.sort Float.compare a;
        let idx = min (t.lat_len - 1) (int_of_float (Float.ceil (0.99 *. float_of_int t.lat_len)) - 1) in
        let p99 = a.(max 0 idx) in
        let sum = Array.fold_left ( +. ) 0.0 a in
        Some (p99, sum /. float_of_int t.lat_len)
      end)

let recent_p99 t = Option.map fst (recent_latency t)

(* Retry-After for shed responses: roughly how long the backlog ahead
   of this client needs at the recently observed service rate. *)
let retry_after_estimate t =
  let mean_ms = match recent_latency t with Some (_, m) -> m | None -> 50.0 in
  let backlog = Atomic.get t.s_queued + Atomic.get t.s_in_flight + 1 in
  let s =
    Float.ceil (mean_ms *. float_of_int backlog /. float_of_int (max 1 t.config.max_in_flight) /. 1000.0)
  in
  max 1 (min 30 (int_of_float s))

let gauges_registered = Atomic.make false

let register_gauges () =
  if Atomic.compare_and_set gauges_registered false true then begin
    let read f = match Atomic.get current with None -> 0.0 | Some t -> f t in
    Tm_obs.Obs.gauge "serve.in_flight" (fun () -> read (fun t -> float_of_int (Atomic.get t.s_in_flight)));
    Tm_obs.Obs.gauge "serve.queued" (fun () -> read (fun t -> float_of_int (Atomic.get t.s_queued)));
    Tm_obs.Obs.gauge "serve.p99_ms" (fun () ->
        read (fun t -> match recent_p99 t with Some p -> p | None -> 0.0));
    (* Queue depth from the admission semaphore itself (permits held
       beyond the execution slots), not the shadow atomics — the gauge
       and the admission decision can't drift apart. *)
    Tm_obs.Obs.gauge "serve.queue_depth" (fun () ->
        read (fun t ->
            float_of_int (max 0 (Semaphore.in_use t.slots - t.config.max_in_flight))))
  end

let create ?port:(want_port = 0) ?canary ?durable ?(config = default_config) db =
  if config.max_in_flight < 1 then invalid_arg "Server.create: max_in_flight must be >= 1";
  if config.max_queue < 0 then invalid_arg "Server.create: max_queue must be >= 0";
  let canary = match canary with Some c -> Some c | None -> default_canary db in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, want_port));
     Unix.listen sock (config.max_in_flight + config.max_queue + 16)
   with e ->
     Unix.close sock;
     raise e);
  let port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> want_port
  in
  let t =
    {
      db;
      canary;
      durable;
      config;
      sock;
      port;
      stopping = Atomic.make false;
      draining = Atomic.make false;
      listener_closed = Atomic.make false;
      slots = Semaphore.create (config.max_in_flight + config.max_queue);
      breaker =
        Breaker.create ~failure_threshold:config.breaker_failures
          ~cooldown_ms:config.breaker_cooldown_ms ();
      s_accepted = Atomic.make 0;
      s_admitted = Atomic.make 0;
      s_responses = Atomic.make 0;
      s_shed_queue = Atomic.make 0;
      s_shed_overload = Atomic.make 0;
      s_shed_deadline = Atomic.make 0;
      s_shed_breaker = Atomic.make 0;
      s_read_timeouts = Atomic.make 0;
      s_write_failures = Atomic.make 0;
      s_accept_faults = Atomic.make 0;
      s_in_flight = Atomic.make 0;
      s_queued = Atomic.make 0;
      lat_lock = Mutex.create ();
      lat = Array.make 512 0.0;
      lat_len = 0;
      lat_pos = 0;
    }
  in
  Atomic.set current (Some t);
  register_gauges ();
  t

let reason_phrase = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

let close_quiet fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

(* The [serve.write] failpoint guards the whole response write, so a
   chaos run exercises the "response lost on the wire" path; the
   failure is counted and logged by [finish], never silent. *)
let write_response fd (r : response) =
  Fault.guard "serve.write";
  let retry =
    match r.retry_after_s with
    | None -> ""
    | Some s -> Printf.sprintf "Retry-After: %d\r\n" s
  in
  let s =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: close\r\n\r\n%s"
      r.status (reason_phrase r.status) r.content_type (String.length r.body) retry r.body
  in
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

(* Exactly-once accounting for an accepted connection: a full response
   written ([s_responses]) or a logged write failure
   ([s_write_failures]). Returns whether the response reached the
   client. *)
let finish t fd resp =
  (* Close the request's flight window: the ambient context is only
     installed on the admitted path, so shed-at-accept responses (which
     never saw a [Req_begin]) don't produce an orphan end marker. *)
  if Tm_obs.Flight.enabled () then begin
    match Tm_obs.Obs.context () with
    | Some rid -> Tm_obs.Flight.emit_traced rid Tm_obs.Flight.Req_end resp.status 0 ""
    | None -> ()
  end;
  match write_response fd resp with
  | () ->
    Atomic.incr t.s_responses;
    Tm_obs.Obs.incr c_responses;
    true
  | exception e ->
    reraise_if_fatal e;
    Atomic.incr t.s_write_failures;
    Tm_obs.Obs.incr c_write_failures;
    Tm_obs.Obs.warn ~site:"serve.write"
      (Printf.sprintf "response (%d) lost: %s" resp.status (Printexc.to_string e));
    false

type read_outcome =
  | Complete of string
  | Too_large
  | Read_timeout
  | Read_error of string

(* Read until the end of the request headers, under the read deadline
   (SO_RCVTIMEO on the client socket) and the total size cap. EOF
   before the header terminator yields what arrived — the request-line
   parse downstream turns garbage into a 400. *)
let read_request t fd =
  let cap = t.config.max_request_bytes in
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let terminator_seen () =
    let s = Buffer.contents buf in
    let rec find i =
      if i + 3 >= String.length s then false
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then true
      else find (i + 1)
    in
    find 0
  in
  let rec go () =
    if Buffer.length buf > cap then Too_large
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Complete (Buffer.contents buf)
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        if terminator_seen () then Complete (Buffer.contents buf) else go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> Read_timeout
      | exception Unix.Unix_error (e, _, _) -> Read_error (Unix.error_message e)
  in
  go ()

let request_line raw =
  let line =
    match String.index_opt raw '\r' with
    | Some i -> String.sub raw 0 i
    | None -> ( match String.index_opt raw '\n' with Some i -> String.sub raw 0 i | None -> raw)
  in
  match String.split_on_char ' ' line with
  | meth :: target :: _ when not (String.equal meth "") && not (String.equal target "") ->
    Some (meth, target)
  | _ -> None

let now_ns () = Monotonic_clock.now ()
let ms_since t0 = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6

(* Ending the accept loop: [shutdown] (not just [close]) on the
   listening socket — on Linux, closing an fd leaves a concurrently
   blocked [accept] asleep forever; shutting the socket down wakes it
   with EINVAL. *)
let close_listener t =
  if Atomic.compare_and_set t.listener_closed false true then begin
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error (_, _, _) -> ());
    close_quiet t.sock
  end

let drain t =
  if not (Atomic.get t.draining) then begin
    Atomic.set t.draining true;
    close_listener t
  end

let stop t =
  Atomic.set t.stopping true;
  close_listener t

let live t = not (Atomic.get t.stopping) && not (Atomic.get t.draining)

(* The admitted path, running on a pool worker (inline only if the
   caller passed a jobs=1 pool to [run]): burn-down of the per-request
   deadline, hardened read, dispatch, response — with the slot released
   and the fd closed on every path, exceptions included. *)
let serve_admitted t client token t_accept =
  Fun.protect
    ~finally:(fun () ->
      Semaphore.release t.slots;
      close_quiet client)
  @@ fun () ->
  Atomic.decr t.s_queued;
  Atomic.incr t.s_in_flight;
  Fun.protect ~finally:(fun () -> Atomic.decr t.s_in_flight)
  @@ fun () ->
  (* Request-scoped flight window: a fresh process-unique id tags every
     event this request triggers (semaphore, executor, WAL, breaker) so
     a post-mortem can reconstruct each in-flight request's last
     moments. Installed as the ambient context; [finish] closes the
     window with the response status. *)
  let rid = if Tm_obs.Flight.enabled () then Tm_obs.Journal.next_id () else 0 in
  let body () =
    Tm_obs.Obs.observe h_queue_wait_ms (ms_since t_accept);
    if Cancel.cancelled token then begin
      (* The request spent its whole budget waiting: shed it instead of
         running work whose client-visible deadline already expired. *)
      Atomic.incr t.s_shed_deadline;
      Tm_obs.Obs.incr c_shed;
      Tm_obs.Flight.emit Tm_obs.Flight.Shed 2 0 "deadline expired in queue";
      ignore
        (finish t client
           (respond ~retry_after_s:(retry_after_estimate t) 503 json
              "{\"error\":\"deadline expired in the admission queue\"}"))
    end
    else
      match read_request t client with
      | Too_large ->
        ignore (finish t client (respond 413 json "{\"error\":\"request headers too large\"}"))
      | Read_timeout ->
        Atomic.incr t.s_read_timeouts;
        ignore (finish t client (respond 408 json "{\"error\":\"timed out reading request\"}"))
      | Read_error msg ->
        ignore
          (finish t client
             (respond 400 json (Printf.sprintf "{\"error\":%s}" (json_string ("read: " ^ msg)))))
      | Complete raw -> (
        match request_line raw with
        | None -> ignore (finish t client (respond 400 json "{\"error\":\"malformed request line\"}"))
        | Some (meth, target) -> (
          let path, _ = split_target target in
          match path with
          | "/drain" ->
            drain t;
            ignore
              (finish t client
                 (respond 202 json "{\"status\":\"draining\",\"note\":\"listener closed; finishing in-flight requests\"}"))
          | "/stats" -> ignore (finish t client (respond 200 json (stats_json t)))
          | _ ->
            let resp =
              handle ?canary:t.canary ?durable:t.durable ~cancel:token ~breaker:t.breaker t.db
                ~meth ~target
            in
            let delivered = finish t client resp in
            (* Shed decisions watch the client-observed latency of
               requests that actually ran (queue wait included). *)
            if delivered && resp.status <> 429 then record_latency t (ms_since t_accept)))
  in
  if rid = 0 then body ()
  else begin
    Tm_obs.Flight.emit_traced rid Tm_obs.Flight.Req_begin rid
      (Semaphore.in_use t.slots) "";
    Tm_obs.Obs.with_context rid body
  end

(* Shed at the accept edge: a typed 429 with a Retry-After estimate,
   written from the accept domain (bounded by SO_SNDTIMEO). *)
let shed_at_accept t client kind =
  (match kind with
  | `Queue_full -> Atomic.incr t.s_shed_queue
  | `Overload -> Atomic.incr t.s_shed_overload);
  Tm_obs.Obs.incr c_shed;
  let why =
    match kind with
    | `Queue_full -> "admission queue full"
    | `Overload -> "shedding under latency pressure"
  in
  Tm_obs.Flight.emit Tm_obs.Flight.Shed
    (match kind with `Queue_full -> 0 | `Overload -> 1)
    0 why;
  Fun.protect
    ~finally:(fun () -> close_quiet client)
    (fun () ->
      ignore
        (finish t client
           (respond ~retry_after_s:(retry_after_estimate t) 429 json
              (Printf.sprintf "{\"error\":%s}" (json_string why)))))

let on_accept t pool client =
  Atomic.incr t.s_accepted;
  Tm_obs.Obs.incr c_accepted;
  match
    Fault.guard "serve.accept";
    Unix.setsockopt_float client Unix.SO_RCVTIMEO (t.config.read_timeout_ms /. 1000.0);
    Unix.setsockopt_float client Unix.SO_SNDTIMEO (t.config.write_timeout_ms /. 1000.0)
  with
  | exception e ->
    (* A faulted accept is a logged drop, never a silent one: the
       counter and warning are the audit trail the chaos suite sums. *)
    reraise_if_fatal e;
    Atomic.incr t.s_accept_faults;
    Tm_obs.Obs.incr c_accept_faults;
    Tm_obs.Obs.warn ~site:"serve.accept" (Printexc.to_string e);
    close_quiet client
  | () ->
    let t_accept = now_ns () in
    let queued = Atomic.get t.s_queued in
    let occupancy = Atomic.get t.s_in_flight + queued in
    let limit =
      shed_queue_limit ~max_queue:t.config.max_queue ~target_ms:t.config.shed_p99_ms
        ~p99_ms:(recent_p99 t)
    in
    (* The adaptive queue bound only gates connections that would have
       to queue: while execution slots are free, admit regardless. *)
    if occupancy >= t.config.max_in_flight && queued >= limit then
      shed_at_accept t client (if limit < t.config.max_queue then `Overload else `Queue_full)
    else if not (Semaphore.try_acquire t.slots) then shed_at_accept t client `Queue_full
    else begin
      (* Admitted: the request budget starts now and covers queue wait
         and execution; the slot travels with the task. *)
      Atomic.incr t.s_admitted;
      Atomic.incr t.s_queued;
      let token = Cancel.token () in
      Cancel.set_deadline_ms token t.config.request_timeout_ms;
      ignore (Tm_par.Pool.spawn pool (fun () -> serve_admitted t client token t_accept))
    end

type outcome = Drained | Drain_timed_out of int | Stopped

let run ?pool t =
  (* The fallback pool must keep handlers off the accept domain: a
     jobs=1 pool runs [spawn] inline, so one slow (or silent) client
     would stall [Unix.accept] for every connection behind it. One
     worker per execution slot, plus the submitting accept domain. *)
  let with_p f =
    match pool with
    | Some p -> f p
    | None -> Tm_par.Pool.with_pool ~jobs:(t.config.max_in_flight + 1) f
  in
  with_p @@ fun pool ->
  let rec loop () =
    match Unix.accept t.sock with
    | client, _ ->
      (* [on_accept] owns the fd on every internal path; this belt
         covers it raising before ownership transfers. *)
      (try on_accept t pool client
       with e ->
         (try Unix.close client with Unix.Unix_error (_, _, _) -> ());
         raise e);
      if live t then loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> if live t then loop ()
    | exception Unix.Unix_error (_, _, _) when not (live t) -> ()
  in
  loop ();
  if Atomic.get t.draining && not (Atomic.get t.stopping) then
    if Semaphore.await_idle ~timeout_ms:t.config.drain_deadline_ms t.slots then begin
      (* Everything in flight has finished: the accounting invariant
         must balance exactly now. A miss means a connection vanished
         without a response, a logged write failure, or a logged accept
         fault — capture the evidence while it is still in the rings. *)
      let s = stats t in
      let accounted = s.responses + s.write_failures + s.accept_faults in
      if accounted <> s.accepted then begin
        Tm_obs.Obs.warn ~site:"serve.accounting"
          (Printf.sprintf
             "accounting violation after drain: accepted=%d but responses=%d + write_failures=%d + accept_faults=%d"
             s.accepted s.responses s.write_failures s.accept_faults);
        if Tm_obs.Flight.enabled () then
          ignore (Tm_obs.Flight.dump ~reason:"accounting-violation")
      end;
      Drained
    end
    else Drain_timed_out (Semaphore.in_use t.slots)
  else Stopped
