lib/datasets/workload.mli: Tm_query
