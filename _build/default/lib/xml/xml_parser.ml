(** Parser for the XML subset used by this reproduction.

    Supports: elements, attributes, text content, self-closing tags,
    comments ([<!-- -->]), XML declarations ([<?xml ?>]), and the five
    predefined entities. Not supported (not needed for the paper's
    datasets): DTDs, CDATA, processing instructions beyond the
    declaration, namespaces.

    Multiple top-level elements are accepted (the result is a forest
    under the virtual root), so a "document" here can be a concatenation
    of XML documents, matching the paper's data model of a forest. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type lexer = { src : string; mutable pos : int }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx = lx.pos <- lx.pos + 1

let expect lx c =
  match peek lx with
  | Some c' when c' = c -> advance lx
  | Some c' -> fail "expected %C at offset %d, found %C" c lx.pos c'
  | None -> fail "expected %C at offset %d, found end of input" c lx.pos

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces lx =
  let n = String.length lx.src in
  while lx.pos < n && is_space lx.src.[lx.pos] do
    advance lx
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name lx =
  let start = lx.pos in
  let n = String.length lx.src in
  while lx.pos < n && is_name_char lx.src.[lx.pos] do
    advance lx
  done;
  if lx.pos = start then fail "expected a name at offset %d" start;
  String.sub lx.src start (lx.pos - start)

let decode_entities s =
  if not (String.contains s '&') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        let semi =
          match String.index_from_opt s !i ';' with
          | Some j when j - !i <= 6 -> j
          | _ -> fail "unterminated entity at offset %d" !i
        in
        let name = String.sub s (!i + 1) (semi - !i - 1) in
        Buffer.add_string buf
          (match name with
          | "amp" -> "&"
          | "lt" -> "<"
          | "gt" -> ">"
          | "quot" -> "\""
          | "apos" -> "'"
          | _ -> fail "unknown entity &%s;" name);
        i := semi + 1
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let read_until lx stop =
  let start = lx.pos in
  let n = String.length lx.src in
  while lx.pos < n && lx.src.[lx.pos] <> stop do
    advance lx
  done;
  String.sub lx.src start (lx.pos - start)

(* Index of the first occurrence of [needle] in [hay] at or after [from]. *)
let find_substring hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

let skip_comment_or_decl lx =
  (* Called with lx.pos at '<' and the next char '!' or '?'. *)
  let n = String.length lx.src in
  if lx.pos + 3 < n && String.sub lx.src lx.pos 4 = "<!--" then begin
    match find_substring lx.src "-->" (lx.pos + 4) with
    | Some j -> lx.pos <- j + 3
    | None -> fail "unterminated comment at offset %d" lx.pos
  end
  else begin
    (* <?xml ... ?> or other <! ... > : skip to the closing '>' *)
    ignore (read_until lx '>');
    expect lx '>'
  end

let read_attribute lx =
  let name = read_name lx in
  skip_spaces lx;
  expect lx '=';
  skip_spaces lx;
  let quote =
    match peek lx with
    | Some (('"' | '\'') as q) ->
      advance lx;
      q
    | _ -> fail "expected quote at offset %d" lx.pos
  in
  let value = read_until lx quote in
  expect lx quote;
  Xml_tree.attr name (decode_entities value)

let rec read_element lx =
  expect lx '<';
  let tag = read_name lx in
  let attrs = ref [] in
  let rec attr_loop () =
    skip_spaces lx;
    match peek lx with
    | Some '>' | Some '/' -> ()
    | Some _ ->
      attrs := read_attribute lx :: !attrs;
      attr_loop ()
    | None -> fail "unexpected end of input in tag <%s>" tag
  in
  attr_loop ();
  match peek lx with
  | Some '/' ->
    advance lx;
    expect lx '>';
    Xml_tree.elem tag (List.rev !attrs)
  | Some '>' ->
    advance lx;
    let children = read_content lx tag in
    Xml_tree.elem tag (List.rev !attrs @ children)
  | _ -> fail "malformed tag <%s> at offset %d" tag lx.pos

and read_content lx tag =
  (* Children of <tag> until the matching close tag. *)
  let children = ref [] in
  let finished = ref false in
  while not !finished do
    let chunk = read_until lx '<' in
    let trimmed = String.trim chunk in
    if trimmed <> "" then children := Xml_tree.text (decode_entities trimmed) :: !children;
    (match peek lx with
    | None -> fail "unexpected end of input inside <%s>" tag
    | Some '<' ->
      if lx.pos + 1 < String.length lx.src then begin
        match lx.src.[lx.pos + 1] with
        | '/' ->
          advance lx;
          advance lx;
          let close = read_name lx in
          if close <> tag then fail "mismatched close tag </%s> for <%s>" close tag;
          skip_spaces lx;
          expect lx '>';
          finished := true
        | '!' | '?' -> skip_comment_or_decl lx
        | _ -> children := read_element lx :: !children
      end
      else fail "dangling '<' at end of input"
    | Some _ -> assert false)
  done;
  List.rev !children

(** Parse a string into a {!Xml_tree.document} (forest of roots). *)
let parse src =
  let lx = { src; pos = 0 } in
  let roots = ref [] in
  let rec loop () =
    skip_spaces lx;
    match peek lx with
    | None -> ()
    | Some '<' ->
      (if lx.pos + 1 < String.length lx.src then
         match lx.src.[lx.pos + 1] with
         | '!' | '?' -> skip_comment_or_decl lx
         | _ -> roots := read_element lx :: !roots
       else fail "dangling '<' at end of input");
      loop ()
    | Some c -> fail "unexpected character %C at top level (offset %d)" c lx.pos
  in
  loop ();
  if !roots = [] then fail "no root element found";
  Xml_tree.document (List.rev !roots)
