(** Deterministic DBLP-like bibliography generator: a shallow forest of
    mixed record types (inproceedings dominate) whose year histogram
    yields the paper's Q1d-Q3d selectivity classes (one 1950 record,
    ~1.6% 1979, ~10% 1998). *)

type params = { seed : int; scale : float (** 1.0 ~ 8000 records *) }

val default : params
val generate : params -> Tm_xml.Xml_tree.document
