(* Tests for the storage substrate: codecs, pager, buffer pool, B+-tree,
   heap file. The B+-tree is checked against a reference model (sorted
   association list) with qcheck-generated workloads. *)

open Tm_storage

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_varint_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 8 in
      Codec.add_varint buf n;
      let v, pos = Codec.read_varint (Buffer.contents buf) 0 in
      check Alcotest.int "value" n v;
      check Alcotest.int "consumed" (Buffer.length buf) pos)
    [ 0; 1; 127; 128; 300; 16384; 1_000_000; max_int / 2 ]

let test_signed_varint_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 8 in
      Codec.add_signed_varint buf n;
      let v, _ = Codec.read_signed_varint (Buffer.contents buf) 0 in
      check Alcotest.int "value" n v)
    [ 0; 1; -1; 63; -64; 64; -65; 1_000_000; -1_000_000 ]

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(int_bound 1_000_000_000)
    (fun n ->
      let buf = Buffer.create 8 in
      Codec.add_varint buf n;
      fst (Codec.read_varint (Buffer.contents buf) 0) = n)

let prop_signed_varint_roundtrip =
  QCheck.Test.make ~name:"signed varint roundtrip" ~count:500 QCheck.int (fun n ->
      let n = n / 4 (* stay clear of zigzag overflow at min_int *) in
      let buf = Buffer.create 8 in
      Codec.add_signed_varint buf n;
      fst (Codec.read_signed_varint (Buffer.contents buf) 0) = n)

let test_idlist_roundtrip () =
  List.iter
    (fun ids ->
      check
        Alcotest.(list int)
        "delta" ids
        (Codec.idlist_of_string (Codec.idlist_to_string ids));
      check
        Alcotest.(list int)
        "raw" ids
        (Codec.idlist_raw_of_string (Codec.idlist_raw_to_string ids)))
    [ []; [ 1 ]; [ 1; 5; 6; 7 ]; [ 100; 3; 200; 199 ]; List.init 50 (fun i -> i * i) ]

let prop_idlist_roundtrip =
  QCheck.Test.make ~name:"idlist delta roundtrip" ~count:300
    QCheck.(list (int_bound 1_000_000))
    (fun ids -> Codec.idlist_of_string (Codec.idlist_to_string ids) = ids)

let test_idlist_delta_smaller () =
  (* The whole point of differential encoding: parent/child ids are close,
     so the delta form is much smaller than 4 bytes per id. *)
  let ids = List.init 12 (fun i -> 100_000 + i) in
  let delta = String.length (Codec.idlist_to_string ids) in
  let raw = String.length (Codec.idlist_raw_to_string ids) in
  if delta * 2 > raw then
    Alcotest.failf "delta encoding not compact: %d vs raw %d" delta raw

let test_value_encoding () =
  check Alcotest.string "null is empty" "" (Codec.encode_value None);
  List.iter
    (fun v ->
      check
        Alcotest.(option string)
        "roundtrip" (Some v)
        (Codec.decode_value (Codec.encode_value (Some v))))
    [ ""; "XML"; "jane"; "a\x00b"; "a\x01b"; "\x00\x01\x02" ]

let prop_value_encoding_order =
  (* Order-preserving: null sorts before everything; values keep their
     relative order apart from escape expansion of 0x00/0x01 bytes, which
     we avoid in generated values. *)
  QCheck.Test.make ~name:"value encoding preserves order" ~count:300
    QCheck.(pair printable_string printable_string)
    (fun (a, b) ->
      let ea = Codec.encode_value (Some a) and eb = Codec.encode_value (Some b) in
      compare ea eb = compare a b && Codec.encode_value None < ea)

let test_u32_order () =
  let pairs = [ (0, 1); (255, 256); (65535, 65536); (1, 1_000_000) ] in
  List.iter
    (fun (a, b) ->
      if not (Codec.u32_to_string a < Codec.u32_to_string b) then
        Alcotest.failf "u32 order broken for %d < %d" a b)
    pairs

let test_prefix_successor () =
  check Alcotest.(option string) "simple" (Some "ab") (Codec.prefix_successor "aa");
  check Alcotest.(option string) "carry" (Some "b") (Codec.prefix_successor "a\xff");
  check Alcotest.(option string) "all ff" None (Codec.prefix_successor "\xff\xff");
  check Alcotest.(option string) "empty" None (Codec.prefix_successor "")

let prop_prefix_successor_bounds =
  QCheck.Test.make ~name:"prefix successor bounds all extensions" ~count:500
    QCheck.(pair string small_string)
    (fun (p, ext) ->
      match Codec.prefix_successor p with
      | None -> true
      | Some succ -> String.compare (p ^ ext) succ < 0 && String.compare p succ < 0)

(* ------------------------------------------------------------------ *)
(* Pager / buffer pool                                                 *)
(* ------------------------------------------------------------------ *)

let test_pager_roundtrip () =
  let pager = Pager.create ~page_size:256 () in
  let a = Pager.alloc pager and b = Pager.alloc pager in
  Pager.write pager a (Bytes.of_string "hello");
  Pager.write pager b (Bytes.of_string "world");
  check Alcotest.string "page a" "hello" (Bytes.sub_string (Pager.read pager a) 0 5);
  check Alcotest.string "page b" "world" (Bytes.sub_string (Pager.read pager b) 0 5);
  check Alcotest.int "count" 2 (Pager.page_count pager);
  check Alcotest.int "size" 512 (Pager.size_bytes pager)

let test_pager_bad_id () =
  let pager = Pager.create () in
  (* Unallocated ids surface as the typed Corrupt_page, not a bare
     Invalid_argument, so the executor's fallback can classify them. *)
  Alcotest.check_raises "bad id"
    (Pager.Corrupt_page { page = 7; detail = "unallocated page id" })
    (fun () -> ignore (Pager.read pager 7))

let test_buffer_pool_caching () =
  let pager = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:2 pager in
  let a = Buffer_pool.alloc pool in
  Buffer_pool.write pool a (Bytes.of_string "aaa");
  Pager.reset_stats pager;
  Buffer_pool.reset_stats pool;
  (* Two reads of a resident page: no physical I/O. *)
  ignore (Buffer_pool.read pool a);
  ignore (Buffer_pool.read pool a);
  check Alcotest.int "no physical reads" 0 (Pager.physical_reads pager);
  let s = Buffer_pool.stats pool in
  check Alcotest.int "logical reads" 2 s.Buffer_pool.logical_reads;
  check Alcotest.int "misses" 0 s.Buffer_pool.misses

let test_buffer_pool_eviction_writeback () =
  let pager = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:2 pager in
  let a = Buffer_pool.alloc pool in
  let b = Buffer_pool.alloc pool in
  let c = Buffer_pool.alloc pool in
  Buffer_pool.write pool a (Bytes.of_string "AAA");
  Buffer_pool.write pool b (Bytes.of_string "BBB");
  Buffer_pool.write pool c (Bytes.of_string "CCC");
  (* capacity 2: page [a] must have been evicted and written back. *)
  check Alcotest.string "a persisted" "AAA" (Bytes.sub_string (Pager.read pager a) 0 3);
  (* Re-reading [a] is a miss that refetches from the pager. *)
  Buffer_pool.reset_stats pool;
  check Alcotest.string "a content" "AAA" (Bytes.sub_string (Buffer_pool.read pool a) 0 3);
  check Alcotest.int "one miss" 1 (Buffer_pool.stats pool).Buffer_pool.misses

(* The pool is striped for concurrent readers (16 stripes, page id mod
   16), and LRU order is maintained per stripe. Exercise it with three
   pages of the same stripe: ids 0, 16 and 32, in a stripe holding two
   frames (capacity 32 over 16 stripes). *)
let test_buffer_pool_lru_order () =
  let pager = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:32 pager in
  let pages = List.init 33 (fun _ -> Buffer_pool.alloc pool) in
  let page n = List.nth pages n in
  Buffer_pool.write pool (page 0) (Bytes.of_string "A");
  Buffer_pool.write pool (page 16) (Bytes.of_string "B");
  ignore (Buffer_pool.read pool (page 0));
  (* page 0 is now the stripe's MRU; touching page 32 evicts 16, not 0. *)
  ignore (Buffer_pool.read pool (page 32));
  Buffer_pool.reset_stats pool;
  ignore (Buffer_pool.read pool (page 0));
  check Alcotest.int "page 0 still resident" 0 (Buffer_pool.stats pool).Buffer_pool.misses;
  ignore (Buffer_pool.read pool (page 16));
  check Alcotest.int "page 16 was evicted" 1 (Buffer_pool.stats pool).Buffer_pool.misses

let test_buffer_pool_clear () =
  let pager = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:8 pager in
  let a = Buffer_pool.alloc pool in
  Buffer_pool.write pool a (Bytes.of_string "XYZ");
  Buffer_pool.clear pool;
  check Alcotest.string "persisted through clear" "XYZ" (Bytes.sub_string (Pager.read pager a) 0 3);
  Buffer_pool.reset_stats pool;
  ignore (Buffer_pool.read pool a);
  check Alcotest.int "cold after clear" 1 (Buffer_pool.stats pool).Buffer_pool.misses

(* ------------------------------------------------------------------ *)
(* B+-tree                                                             *)
(* ------------------------------------------------------------------ *)

let make_pool ?(page_size = 512) ?(capacity = 4096) () =
  Buffer_pool.create ~capacity (Pager.create ~page_size ())

let test_bptree_empty () =
  let t = Bptree.create ~name:"t" (make_pool ()) in
  check Alcotest.(list string) "lookup on empty" [] (Bptree.lookup_all t "x");
  check Alcotest.int "count" 0 (Bptree.entry_count t);
  check Alcotest.int "invariants" 0 (Bptree.check_invariants t)

let test_bptree_basic () =
  let t = Bptree.create ~name:"t" (make_pool ()) in
  Bptree.insert t "b" "2";
  Bptree.insert t "a" "1";
  Bptree.insert t "c" "3";
  check Alcotest.(list string) "a" [ "1" ] (Bptree.lookup_all t "a");
  check Alcotest.(list string) "b" [ "2" ] (Bptree.lookup_all t "b");
  check Alcotest.(list string) "missing" [] (Bptree.lookup_all t "zz");
  check
    Alcotest.(list (pair string string))
    "scan" [ ("a", "1"); ("b", "2"); ("c", "3") ] (Bptree.to_list t)

let test_bptree_duplicates () =
  let t = Bptree.create ~name:"t" (make_pool ()) in
  Bptree.insert t "k" "3";
  Bptree.insert t "k" "1";
  Bptree.insert t "k" "2";
  Bptree.insert t "j" "0";
  check Alcotest.(list string) "dups in payload order" [ "1"; "2"; "3" ] (Bptree.lookup_all t "k")

let test_bptree_many_inserts_with_splits () =
  let t = Bptree.create ~name:"t" (make_pool ~page_size:256 ()) in
  let n = 2000 in
  for i = 0 to n - 1 do
    (* Shuffled-ish order via multiplication by a unit mod n. *)
    let j = 7 * i mod n in
    Bptree.insert t (Printf.sprintf "key%06d" j) (string_of_int j)
  done;
  check Alcotest.int "entries" n (Bptree.check_invariants t);
  if Bptree.height t < 3 then Alcotest.failf "expected splits, height=%d" (Bptree.height t);
  for i = 0 to n - 1 do
    let got = Bptree.lookup_all t (Printf.sprintf "key%06d" i) in
    check Alcotest.(list string) "lookup" [ string_of_int i ] got
  done

let test_bptree_range_scan () =
  let t = Bptree.create ~name:"t" (make_pool ~page_size:256 ()) in
  for i = 0 to 999 do
    Bptree.insert t (Printf.sprintf "%04d" i) (string_of_int i)
  done;
  let got = Bptree.fold_range t ~lo:"0100" ~hi:(Some "0200") (fun acc k _ -> k :: acc) [] in
  check Alcotest.int "range size" 100 (List.length got);
  check Alcotest.string "first" "0100" (List.nth (List.rev got) 0);
  check Alcotest.string "last" "0199" (List.hd got);
  check Alcotest.int "count_range" 100 (Bptree.count_range t ~lo:"0100" ~hi:(Some "0200"))

let test_bptree_prefix_scan () =
  let t = Bptree.create ~name:"t" (make_pool ()) in
  List.iter
    (fun (k, v) -> Bptree.insert t k v)
    [ ("apple", "1"); ("applet", "2"); ("apply", "3"); ("banana", "4"); ("app", "0") ];
  let got = List.rev (Bptree.fold_prefix t ~prefix:"appl" (fun acc k _ -> k :: acc) []) in
  check Alcotest.(list string) "prefix matches" [ "apple"; "applet"; "apply" ] got;
  check Alcotest.int "count_prefix app" 4 (Bptree.count_prefix t ~prefix:"app")

let test_bptree_bulk_load () =
  let n = 5000 in
  let entries = List.init n (fun i -> (Printf.sprintf "key%06d" i, string_of_int i)) in
  let t = Bptree.bulk_load ~name:"bulk" (make_pool ~page_size:512 ()) entries in
  check Alcotest.int "entries" n (Bptree.check_invariants t);
  check Alcotest.(list string) "lookup mid" [ "2500" ] (Bptree.lookup_all t "key002500");
  check Alcotest.(list string) "lookup first" [ "0" ] (Bptree.lookup_all t "key000000");
  check Alcotest.(list string) "lookup last" [ "4999" ] (Bptree.lookup_all t "key004999");
  check Alcotest.(list (pair string string)) "full scan" entries (Bptree.to_list t)

let test_bptree_bulk_load_unsorted_rejected () =
  let pool = make_pool () in
  match Bptree.bulk_load ~name:"bad" pool [ ("b", "1"); ("a", "2") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on unsorted input"

let test_bptree_prefix_compression_smaller () =
  (* Keys sharing long prefixes (like reverse schema paths) should occupy
     fewer pages with front-coding on. *)
  let entries =
    List.init 4000 (fun i -> (Printf.sprintf "common/long/shared/prefix/%06d" i, "p"))
  in
  let with_pc =
    Bptree.bulk_load ~prefix_compression:true ~name:"pc" (make_pool ~page_size:512 ()) entries
  in
  let without_pc =
    Bptree.bulk_load ~prefix_compression:false ~name:"nopc" (make_pool ~page_size:512 ()) entries
  in
  if Bptree.page_count with_pc >= Bptree.page_count without_pc then
    Alcotest.failf "prefix compression did not shrink tree: %d vs %d pages"
      (Bptree.page_count with_pc) (Bptree.page_count without_pc)

let test_bptree_oversized_entry_rejected () =
  let t = Bptree.create ~name:"t" (make_pool ~page_size:256 ()) in
  match Bptree.insert t (String.make 500 'k') "v" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument for oversized entry"

let test_bptree_delete_basic () =
  let t = Bptree.create ~name:"t" (make_pool ()) in
  Bptree.insert t "a" "1";
  Bptree.insert t "b" "2";
  Bptree.insert t "b" "3";
  check Alcotest.bool "delete existing" true (Bptree.delete t "b" "2");
  check Alcotest.(list string) "one b left" [ "3" ] (Bptree.lookup_all t "b");
  check Alcotest.bool "delete missing payload" false (Bptree.delete t "b" "2");
  check Alcotest.bool "delete missing key" false (Bptree.delete t "zz" "x");
  check Alcotest.int "count" 2 (Bptree.entry_count t);
  check Alcotest.int "invariants" 2 (Bptree.check_invariants t)

let test_bptree_delete_across_leaves () =
  (* duplicates spanning leaf boundaries must all be reachable *)
  let t = Bptree.create ~name:"t" (make_pool ~page_size:256 ()) in
  for i = 0 to 199 do
    Bptree.insert t "dup" (Printf.sprintf "%04d" i)
  done;
  for i = 0 to 199 do
    if not (Bptree.delete t "dup" (Printf.sprintf "%04d" i)) then
      Alcotest.failf "failed to delete dup %04d" i
  done;
  check Alcotest.(list string) "all gone" [] (Bptree.lookup_all t "dup");
  check Alcotest.int "empty" 0 (Bptree.check_invariants t)

let test_bptree_delete_then_insert () =
  let t = Bptree.create ~name:"t" (make_pool ~page_size:256 ()) in
  for i = 0 to 500 do
    Bptree.insert t (Printf.sprintf "k%04d" i) "v"
  done;
  for i = 0 to 500 do
    if i mod 2 = 0 then ignore (Bptree.delete t (Printf.sprintf "k%04d" i) "v")
  done;
  for i = 0 to 500 do
    if i mod 4 = 0 then Bptree.insert t (Printf.sprintf "k%04d" i) "w"
  done;
  ignore (Bptree.check_invariants t);
  check Alcotest.(list string) "odd kept" [ "v" ] (Bptree.lookup_all t "k0001");
  check Alcotest.(list string) "reinserted" [ "w" ] (Bptree.lookup_all t "k0004");
  check Alcotest.(list string) "deleted" [] (Bptree.lookup_all t "k0002")

(* An unpinned reader racing a writer transaction decodes the
   write-through (uncommitted) page bytes and caches the node under the
   already-bumped cache version. The abort participant must bump past
   that version and evict, or the rolled-back node is served from the
   decode cache indefinitely. *)
let test_bptree_abort_evicts_decode_cache () =
  let pool = make_pool () in
  let t = Bptree.create ~name:"t" pool in
  Bptree.insert t "a" "1";
  Bptree.insert t "b" "2";
  Buffer_pool.flush_all pool;
  let pager = Buffer_pool.pager pool in
  ignore (Pager.begin_txn pager);
  Bptree.insert t "c" "3";
  (* Unpinned reader on another domain: sees the write-through frame
     and populates the shared decode cache from uncommitted bytes. *)
  let seen = Domain.join (Domain.spawn (fun () -> Bptree.lookup_all t "c")) in
  check Alcotest.(list string) "unpinned reader sees the uncommitted write" [ "3" ] seen;
  Buffer_pool.invalidate pool (Pager.abort_txn pager);
  check Alcotest.(list string) "rolled-back key not served after abort" []
    (Bptree.lookup_all t "c");
  check Alcotest.(list string) "pre-transaction keys intact" [ "1" ] (Bptree.lookup_all t "a");
  ignore (Bptree.check_invariants t)

(* qcheck: interleaved inserts/deletes vs a multiset model. *)
let prop_bptree_delete_model =
  let gen =
    QCheck.(
      list_of_size
        Gen.(int_range 0 300)
        (pair bool (pair (string_gen_of_size (Gen.return 2) Gen.printable) (string_gen_of_size (Gen.return 1) Gen.printable))))
  in
  QCheck.Test.make ~name:"insert/delete agrees with multiset model" ~count:80 gen (fun ops ->
      let t = Bptree.create ~name:"m" (make_pool ~page_size:256 ()) in
      let model = ref [] in
      List.iter
        (fun (is_delete, (k, v)) ->
          if is_delete then begin
            let found = Bptree.delete t k v in
            let in_model = List.mem (k, v) !model in
            if found <> in_model then failwith "delete disagrees";
            if in_model then begin
              let rec remove_one = function
                | [] -> []
                | x :: rest -> if x = (k, v) then rest else x :: remove_one rest
              in
              model := remove_one !model
            end
          end
          else begin
            Bptree.insert t k v;
            model := (k, v) :: !model
          end)
        ops;
      ignore (Bptree.check_invariants t);
      List.sort compare (Bptree.to_list t) = List.sort compare !model)

(* Model-based qcheck test: B+-tree vs sorted association list. *)
let prop_bptree_model =
  let gen =
    QCheck.(
      list_of_size
        Gen.(int_range 0 400)
        (pair
           (string_gen_of_size (Gen.return 3) Gen.printable)
           (string_gen_of_size Gen.(int_range 0 8) Gen.printable)))
  in
  QCheck.Test.make ~name:"bptree agrees with model" ~count:60 gen (fun ops ->
      let t = Bptree.create ~name:"model" (make_pool ~page_size:256 ()) in
      List.iter (fun (k, v) -> Bptree.insert t k v) ops;
      ignore (Bptree.check_invariants t);
      let model = List.sort compare ops in
      (* duplicate payload order across leaves is unspecified: compare
         as sorted multisets *)
      List.sort compare (Bptree.to_list t) = model
      && List.for_all
           (fun (k, _) ->
             Bptree.lookup_all t k
             = (List.filter (fun (k', _) -> k' = k) model |> List.map snd))
           ops)

let prop_bptree_range_model =
  let gen =
    QCheck.(
      triple
        (list_of_size Gen.(int_range 0 300) (string_gen_of_size (Gen.return 2) Gen.printable))
        (string_gen_of_size (QCheck.Gen.return 2) QCheck.Gen.printable)
        (string_gen_of_size (QCheck.Gen.return 2) QCheck.Gen.printable))
  in
  QCheck.Test.make ~name:"bptree range scan agrees with model" ~count:80 gen
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let t = Bptree.create ~name:"model" (make_pool ~page_size:256 ()) in
      List.iteri (fun i k -> Bptree.insert t k (string_of_int i)) keys;
      let got = List.rev (Bptree.fold_range t ~lo ~hi:(Some hi) (fun acc k _ -> k :: acc) []) in
      let want = List.sort compare (List.filter (fun k -> k >= lo && k < hi) keys) in
      got = want)

let prop_bulk_load_equals_inserts =
  let gen =
    QCheck.(
      list_of_size
        Gen.(int_range 0 300)
        (pair
           (string_gen_of_size (Gen.return 3) Gen.printable)
           (string_gen_of_size Gen.(int_range 0 8) Gen.printable)))
  in
  QCheck.Test.make ~name:"bulk load equals insert-built tree" ~count:40 gen (fun ops ->
      let sorted = List.stable_sort compare ops in
      let bulk = Bptree.bulk_load ~name:"b" (make_pool ~page_size:256 ()) sorted in
      let ins = Bptree.create ~name:"i" (make_pool ~page_size:256 ()) in
      List.iter (fun (k, v) -> Bptree.insert ins k v) ops;
      ignore (Bptree.check_invariants bulk);
      List.sort compare (Bptree.to_list bulk) = List.sort compare (Bptree.to_list ins))

(* ------------------------------------------------------------------ *)
(* Heap file                                                           *)
(* ------------------------------------------------------------------ *)

let test_heap_file_roundtrip () =
  let hf = Heap_file.create ~name:"h" (make_pool ~page_size:128 ()) in
  let records = List.init 50 (fun i -> Printf.sprintf "record-%d" i) in
  let rids = List.map (Heap_file.append hf) records in
  List.iter2
    (fun r rid -> check Alcotest.string "get" r (Heap_file.get hf rid))
    records rids;
  check Alcotest.int "count" 50 (Heap_file.record_count hf);
  check Alcotest.(list string) "fold order" records
    (List.rev (Heap_file.fold hf (fun acc r -> r :: acc) []));
  if Heap_file.page_count hf < 2 then Alcotest.fail "expected multiple pages"

let test_heap_file_large_record_rejected () =
  let hf = Heap_file.create ~name:"h" (make_pool ~page_size:128 ()) in
  match Heap_file.append hf (String.make 200 'x') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let suite =
  [
    ( "codec",
      [
        Alcotest.test_case "varint roundtrip" `Quick test_varint_roundtrip;
        Alcotest.test_case "signed varint roundtrip" `Quick test_signed_varint_roundtrip;
        Alcotest.test_case "idlist roundtrip" `Quick test_idlist_roundtrip;
        Alcotest.test_case "idlist delta is compact" `Quick test_idlist_delta_smaller;
        Alcotest.test_case "value encoding" `Quick test_value_encoding;
        Alcotest.test_case "u32 order preserving" `Quick test_u32_order;
        Alcotest.test_case "prefix successor" `Quick test_prefix_successor;
        qtest prop_varint_roundtrip;
        qtest prop_signed_varint_roundtrip;
        qtest prop_idlist_roundtrip;
        qtest prop_value_encoding_order;
        qtest prop_prefix_successor_bounds;
      ] );
    ( "pager+pool",
      [
        Alcotest.test_case "pager roundtrip" `Quick test_pager_roundtrip;
        Alcotest.test_case "pager bad id" `Quick test_pager_bad_id;
        Alcotest.test_case "pool caching" `Quick test_buffer_pool_caching;
        Alcotest.test_case "pool eviction writes back" `Quick test_buffer_pool_eviction_writeback;
        Alcotest.test_case "pool LRU order" `Quick test_buffer_pool_lru_order;
        Alcotest.test_case "pool clear" `Quick test_buffer_pool_clear;
      ] );
    ( "bptree",
      [
        Alcotest.test_case "empty" `Quick test_bptree_empty;
        Alcotest.test_case "basic" `Quick test_bptree_basic;
        Alcotest.test_case "duplicates" `Quick test_bptree_duplicates;
        Alcotest.test_case "many inserts + splits" `Quick test_bptree_many_inserts_with_splits;
        Alcotest.test_case "range scan" `Quick test_bptree_range_scan;
        Alcotest.test_case "prefix scan" `Quick test_bptree_prefix_scan;
        Alcotest.test_case "bulk load" `Quick test_bptree_bulk_load;
        Alcotest.test_case "bulk load rejects unsorted" `Quick test_bptree_bulk_load_unsorted_rejected;
        Alcotest.test_case "prefix compression shrinks" `Quick test_bptree_prefix_compression_smaller;
        Alcotest.test_case "oversized entry rejected" `Quick test_bptree_oversized_entry_rejected;
        Alcotest.test_case "delete basic" `Quick test_bptree_delete_basic;
        Alcotest.test_case "delete across leaves" `Quick test_bptree_delete_across_leaves;
        Alcotest.test_case "delete then insert" `Quick test_bptree_delete_then_insert;
        Alcotest.test_case "abort evicts decode cache" `Quick
          test_bptree_abort_evicts_decode_cache;
        qtest prop_bptree_delete_model;
        qtest prop_bptree_model;
        qtest prop_bptree_range_model;
        qtest prop_bulk_load_equals_inserts;
      ] );
    ( "heap_file",
      [
        Alcotest.test_case "roundtrip" `Quick test_heap_file_roundtrip;
        Alcotest.test_case "large record rejected" `Quick test_heap_file_large_record_rejected;
      ] );
  ]

let () = Alcotest.run "tm_storage" suite
