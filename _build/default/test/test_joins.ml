(* Tests for the structural-join engines: region encoding, the
   stack-based semi-join against a nested-loop reference, and both
   engines against the naive oracle (fixed cases + randomized). *)

open Tm_xmldb
open Tm_joins
module T = Tm_xml.Xml_tree

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let book_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem_text "title" "XML";
          T.elem "allauthors"
            [
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "poe" ];
              T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "doe" ];
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ];
            ];
          T.elem_text "year" "2000";
          T.elem "chapter" [ T.elem_text "title" "XML"; T.elem "section" [ T.elem_text "head" "Origins" ] ];
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Region encoding                                                     *)
(* ------------------------------------------------------------------ *)

let test_region_basics () =
  let doc = book_doc () in
  let r = Region.build doc in
  (* book=1 spans everything; title=2 is a leaf *)
  check Alcotest.int "book end" (T.element_count doc) (Region.end_of r 1);
  check Alcotest.int "title end" 2 (Region.end_of r 2);
  check Alcotest.int "book level" 1 (Region.level_of r 1);
  check Alcotest.int "title level" 2 (Region.level_of r 2);
  check Alcotest.bool "book anc of fn" true (Region.is_ancestor r ~anc:1 ~desc:5);
  check Alcotest.bool "not self-anc" false (Region.is_ancestor r ~anc:5 ~desc:5);
  check Alcotest.bool "siblings not anc" false (Region.is_ancestor r ~anc:2 ~desc:3);
  check Alcotest.bool "author parent of fn" true (Region.is_parent r ~parent:4 ~child:5);
  check Alcotest.bool "allauthors not parent of fn" false (Region.is_parent r ~parent:3 ~child:5)

let test_region_matches_tree () =
  (* is_ancestor agrees with the tree on every pair *)
  let doc = Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 2; scale = 0.01 } in
  let r = Region.build doc in
  let ancs = Hashtbl.create 256 in
  T.fold_with_ancestors doc
    (fun () ~ancestors n ->
      if not (T.is_value n) then
        List.iter (fun (a : T.node) -> Hashtbl.replace ancs (a.T.id, n.T.id) ()) ancestors)
    ();
  let ids = T.fold doc (fun acc n -> if T.is_value n then acc else n.T.id :: acc) [] in
  List.iter
    (fun a ->
      List.iter
        (fun d ->
          let expected = Hashtbl.mem ancs (a, d) in
          if Region.is_ancestor r ~anc:a ~desc:d <> expected then
            Alcotest.failf "is_ancestor(%d,%d) should be %b" a d expected)
        (List.filteri (fun i _ -> i mod 7 = 0) ids))
    (List.filteri (fun i _ -> i mod 13 = 0) ids)

(* ------------------------------------------------------------------ *)
(* Structural semi-join vs reference                                   *)
(* ------------------------------------------------------------------ *)

let prop_semijoin_matches_reference =
  let doc = lazy (Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 4; scale = 0.01 }) in
  let gen =
    QCheck.Gen.(
      let* axis = oneofl [ Structural_join.Child; Structural_join.Descendant ] in
      let doc = Lazy.force doc in
      let n = doc.T.node_count - 1 in
      let* ancs = list_size (int_range 0 40) (int_range 1 n) in
      let* descs = list_size (int_range 0 40) (int_range 1 n) in
      return (axis, List.sort_uniq compare ancs, List.sort_uniq compare descs))
  in
  QCheck.Test.make ~name:"semijoin agrees with nested-loop join" ~count:200 (QCheck.make gen)
    (fun (axis, ancs, descs) ->
      let region = Region.build (Lazy.force doc) in
      let got_ancs, got_descs = Structural_join.semijoin region ~axis ~ancs ~descs in
      let pairs = Structural_join.join region ~axis ~ancs ~descs in
      let want_ancs = List.sort_uniq compare (List.map fst pairs) in
      let want_descs = List.sort_uniq compare (List.map snd pairs) in
      got_ancs = want_ancs && List.sort compare got_descs = want_descs)

(* ------------------------------------------------------------------ *)
(* Engines vs the oracle                                               *)
(* ------------------------------------------------------------------ *)

let make_ctx doc =
  let pool = Tm_storage.Buffer_pool.create ~capacity:4096 (Tm_storage.Pager.create ()) in
  let dict = Dictionary.create () in
  let edge = Edge_table.build pool dict doc in
  Context.build ~pool ~dict ~edge doc

let check_engines doc ctx xpath =
  let twig = Tm_query.Xpath_parser.parse xpath in
  let expected = Tm_query.Naive.query doc twig in
  check Alcotest.(list int) ("STJ: " ^ xpath) expected (Engine.run_stj ctx twig).Engine.ids;
  check Alcotest.(list int) ("PathStack: " ^ xpath) expected
    (Engine.run_pathstack ctx twig).Engine.ids

let test_engines_on_book () =
  let doc = book_doc () in
  let ctx = make_ctx doc in
  List.iter (check_engines doc ctx)
    [
      "/book";
      "/book/title";
      "//title[. = 'XML']";
      "//author[fn = 'jane']";
      "//author[fn = 'jane'][ln = 'doe']";
      "/book[title = 'XML']//author[fn = 'jane'][ln = 'doe']";
      "/book//title";
      "/book/chapter/section/head";
      "//missing";
      "//author[fn = 'zz']";
    ]

let test_engines_on_workload () =
  let doc = Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 11; scale = 0.05 } in
  let ctx = make_ctx doc in
  List.iter
    (fun (q : Tm_datasets.Workload.query) ->
      if q.Tm_datasets.Workload.dataset = Tm_datasets.Workload.Xmark then
        check_engines doc ctx q.Tm_datasets.Workload.xpath)
    Tm_datasets.Workload.all

(* randomized: same generators as the strategy differential test *)
let gen_doc =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c" ] in
  let value = oneofl [ "u"; "v" ] in
  let rec node depth =
    if depth = 0 then map2 T.elem_text tag value
    else
      frequency
        [
          (2, map2 T.elem_text tag value);
          (3, map2 T.elem tag (list_size (int_range 1 3) (node (depth - 1))));
        ]
  in
  map (fun roots -> T.document roots) (list_size (int_range 1 2) (node 4))

let gen_xpath =
  QCheck.Gen.oneofl
    [
      "//a";
      "/a/b";
      "//a//b";
      "//a[b]";
      "//a[b = 'u']";
      "//b[a][c]";
      "/a[b = 'u']//c";
      "//a[b[c = 'v']]";
      "//c[. = 'u']";
      "//a//a[b]";
      "//*[b = 'u']";
      "/a/*/c";
      "//a[*]";
      "//c[. >= 'u']";
      "//a[b >= 'u'][b <= 'v']";
      "//b[. < 'v']";
    ]

let prop_engines_match_oracle =
  QCheck.Test.make ~name:"join engines = naive oracle on random inputs" ~count:150
    (QCheck.make QCheck.Gen.(pair gen_doc gen_xpath))
    (fun (doc, xpath) ->
      let ctx = make_ctx doc in
      let twig = Tm_query.Xpath_parser.parse xpath in
      let expected = Tm_query.Naive.query doc twig in
      let stj = (Engine.run_stj ctx twig).Engine.ids in
      let ps = (Engine.run_pathstack ctx twig).Engine.ids in
      if stj <> expected then
        QCheck.Test.fail_reportf "STJ on %s:\nexpected [%s]\ngot [%s]\n%s" xpath
          (String.concat ";" (List.map string_of_int expected))
          (String.concat ";" (List.map string_of_int stj))
          (T.to_string doc)
      else if ps <> expected then
        QCheck.Test.fail_reportf "PathStack on %s:\nexpected [%s]\ngot [%s]\n%s" xpath
          (String.concat ";" (List.map string_of_int expected))
          (String.concat ";" (List.map string_of_int ps))
          (T.to_string doc)
      else true)

let () =
  Alcotest.run "tm_joins"
    [
      ( "region",
        [
          Alcotest.test_case "basics" `Quick test_region_basics;
          Alcotest.test_case "agrees with tree" `Quick test_region_matches_tree;
        ] );
      ("semijoin", [ qtest prop_semijoin_matches_reference ]);
      ( "engines",
        [
          Alcotest.test_case "book examples" `Quick test_engines_on_book;
          Alcotest.test_case "xmark workload" `Slow test_engines_on_workload;
          qtest prop_engines_match_oracle;
        ] );
    ]
