(** Fixed domain pool for fanning independent read-only work — per-path
    index lookups, index-nested-loop probe batches, index-build entry
    generation — across OCaml 5 domains.

    Design:

    - a pool of [jobs - 1] worker domains plus the {e submitting} domain
      share one FIFO task queue; the submitter helps drain the queue
      while it waits ({!await}, {!map}), so a pool of [jobs] executes up
      to [jobs] tasks at once and never idles the caller;
    - tasks are plain closures; results travel through {!future}s, which
      capture exceptions (with their backtraces) and re-raise them at
      the {!await} point;
    - [jobs = 1] degrades to inline execution — no domains are spawned
      and {!map} is [List.map] — so sequential call sites pay nothing;
    - pools are cheap but not free (a domain spawn is ~ms): create one
      per process or benchmark run and reuse it ({!with_pool} for
      scoped use).

    The pool makes no attempt to make the {e work} thread-safe: callers
    hand it closures that must only touch concurrency-safe state (the
    striped {!Tm_storage.Buffer_pool}, locked {!Tm_storage.Bptree}
    decode caches, read-only relations). Observability counters
    ([par.tasks], [par.helped]) are recorded through {!Tm_obs.Obs}. *)

let c_tasks = Tm_obs.Obs.counter "par.tasks"
let c_helped = Tm_obs.Obs.counter "par.helped"
let h_task_ms = Tm_obs.Obs.histogram "par.task.ms"

(* ------------------------------------------------------------------ *)
(* Ambient-context propagators                                         *)
(* ------------------------------------------------------------------ *)

(* Libraries above the pool keep per-domain ambient state (the Obs
   trace context below is built in; Tm_storage's epoch pins are wired
   up by the executor) that must follow a task from the submitting
   domain onto whichever worker runs it. A propagator is a capture
   function, run at submit time on the submitter's domain; it returns a
   wrapper that re-installs the captured state around the task body on
   the executing domain. Registration is append-only and expected at
   module-initialization time. *)
type wrap = { wrap : 'a. (unit -> 'a) -> 'a }

let propagators : (unit -> wrap) list Atomic.t = Atomic.make []

let register_propagator capture =
  let rec add () =
    let cur = Atomic.get propagators in
    if not (Atomic.compare_and_set propagators cur (capture :: cur)) then add ()
  in
  add ()

type task = unit -> unit

type t = {
  jobs : int;
  queue : task Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  mutable state : 'a state;
  f_lock : Mutex.t;
  f_done : Condition.t;
}

let jobs t = t.jobs

let rec worker_loop t =
  let task =
    Mutex.protect t.lock (fun () ->
        while Queue.is_empty t.queue && not t.stopping do
          Condition.wait t.work_available t.lock
        done;
        if t.stopping && Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
  in
  match task with
  | None -> ()
  | Some task ->
    task ();
    Tm_obs.Obs.incr c_tasks;
    worker_loop t

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.protect t.lock (fun () ->
      t.stopping <- true;
      Condition.broadcast t.work_available);
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Futures                                                             *)
(* ------------------------------------------------------------------ *)

let fulfil fut outcome =
  Mutex.protect fut.f_lock (fun () ->
      fut.state <- outcome;
      Condition.broadcast fut.f_done)

let spawn t f =
  let fut = { state = Pending; f_lock = Mutex.create (); f_done = Condition.create () } in
  (* Capture the submitter's ambient trace context so events recorded
     inside the task — which may run on any worker domain — are
     attributed to the query that submitted it. *)
  let ctx = Tm_obs.Obs.context () in
  (* Likewise capture every registered ambient propagator (epoch pins,
     etc.) on the submitting domain, to be re-installed around the body
     on the executing domain. *)
  let wraps = List.map (fun capture -> capture ()) (Atomic.get propagators) in
  let body () =
    let base () = match ctx with None -> f () | Some id -> Tm_obs.Obs.with_context id f in
    (List.fold_left (fun k w () -> w.wrap k) base wraps) ()
  in
  let task () =
    let record = Tm_obs.Obs.enabled () in
    let t0 = if record then Monotonic_clock.now () else 0L in
    (* Task begin/end on the executing domain's ring: the post-mortem
       view of which worker was running what when the process died. *)
    (match ctx with
    | Some id -> Tm_obs.Flight.emit_traced id Tm_obs.Flight.Task_begin 0 0 ""
    | None -> Tm_obs.Flight.emit Tm_obs.Flight.Task_begin 0 0 "");
    (match body () with
    | v -> fulfil fut (Done v)
    | exception e -> fulfil fut (Failed (e, Printexc.get_raw_backtrace ())));
    (match ctx with
    | Some id -> Tm_obs.Flight.emit_traced id Tm_obs.Flight.Task_end 0 0 ""
    | None -> Tm_obs.Flight.emit Tm_obs.Flight.Task_end 0 0 "");
    if record then
      Tm_obs.Obs.observe h_task_ms
        (Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6)
  in
  if t.jobs = 1 then task ()
  else
    Mutex.protect t.lock (fun () ->
        Queue.push task t.queue;
        Condition.signal t.work_available);
  fut

(* Pop one queued task if any; used by the submitter to help while it
   waits, so the caller's domain is a full member of the pool. *)
let try_help t =
  let task =
    Mutex.protect t.lock (fun () ->
        if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
  in
  match task with
  | Some task ->
    task ();
    Tm_obs.Obs.incr c_tasks;
    Tm_obs.Obs.incr c_helped;
    true
  | None -> false

let await t fut =
  let rec wait () =
    match fut.state with
    | Done v -> v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending ->
      if try_help t then wait ()
      else begin
        (* Nothing to steal: block until this future is fulfilled. The
           state re-check under the future's lock avoids a lost wakeup
           between the Pending read and the wait. *)
        Mutex.protect fut.f_lock (fun () ->
            while (match fut.state with Pending -> true | Done _ | Failed _ -> false) do
              Condition.wait fut.f_done fut.f_lock
            done);
        wait ()
      end
  in
  wait ()

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when t.jobs = 1 -> List.map f xs
  | xs ->
    let futures = List.map (fun x -> spawn t (fun () -> f x)) xs in
    List.map (await t) futures

(* ------------------------------------------------------------------ *)
(* Chunking helpers (for batch fan-out of many small work items)        *)
(* ------------------------------------------------------------------ *)

let chunk ~pieces xs =
  if pieces < 1 then invalid_arg "Pool.chunk: pieces must be >= 1";
  let n = List.length xs in
  if n = 0 then []
  else begin
    let pieces = min pieces n in
    let base = n / pieces and extra = n mod pieces in
    (* contiguous slices, sizes differing by at most one *)
    let rec take k xs acc = if k = 0 then (List.rev acc, xs) else
      match xs with [] -> (List.rev acc, []) | x :: tl -> take (k - 1) tl (x :: acc)
    in
    let rec go i xs acc =
      if i >= pieces then List.rev acc
      else begin
        let size = base + if i < extra then 1 else 0 in
        let piece, rest = take size xs [] in
        go (i + 1) rest (piece :: acc)
      end
    in
    go 0 xs []
  end

let map_chunked t ?(chunks_per_job = 2) f xs =
  if t.jobs = 1 then [ f xs ]
  else map t f (chunk ~pieces:(t.jobs * chunks_per_job) xs)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

let env_jobs () =
  match Sys.getenv_opt "TWIGMATCH_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_jobs () = match env_jobs () with Some n -> n | None -> 1
