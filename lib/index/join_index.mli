(** Join Indices baseline (paper Section 5.2.6): per distinct subpath
    schema path, a pair of B+-trees — forward (start -> end) and
    backward (end -> start). Two structures per subpath is why JI is
    the most space-hungry strategy (Figure 9); intermediate nodes
    require one extra lookup per position. *)

type t

val build :
  pool:Tm_storage.Buffer_pool.t ->
  dict:Tm_xmldb.Dictionary.t ->
  catalog:Tm_xmldb.Schema_catalog.t ->
  Tm_xml.Xml_tree.document ->
  t

val pair_count : t -> int
(** Subpath relations; structure count is twice this. *)

val trees : t -> Tm_storage.Bptree.t list
(** All forward/backward B+-trees (fsck support). *)

val size_bytes : t -> int

val forward_lookup : t -> path:Tm_xmldb.Schema_path.t -> start:int -> int list
(** Ends reachable from [start] along the subpath. *)

val backward_lookup : t -> path:Tm_xmldb.Schema_path.t -> end_:int -> int list
(** Starts reaching [end_] along the subpath (at most one per end). *)

val all_pairs : t -> path:Tm_xmldb.Schema_path.t -> (int * int) list

val has_subpath : t -> int list -> bool

val fold_paths : t -> ('a -> Tm_xmldb.Schema_path.t -> 'a) -> 'a -> 'a

val subpaths_from :
  t -> head_tag:int -> (Tm_xmldb.Schema_path.t -> bool) -> Tm_xmldb.Schema_path.t list
(** Materialized subpaths starting with [head_tag] and satisfying the
    predicate — the relations a bound [//] probe considers. *)

val insert_node : t -> Tm_xmldb.Shred.node_info -> unit
(** Incremental maintenance: index one new node, creating subpath pairs
    as needed. *)

val remove_node : t -> Tm_xmldb.Shred.node_info -> unit
