(** A twig-indexed XML database: one document, one shared storage
    substrate, and the seven indexing strategies of the paper's
    evaluation (Section 5.1.2) built side by side. *)

open Tm_storage
open Tm_xmldb
open Tm_index

type strategy =
  | RP  (** ROOTPATHS: merge/hash-join plans *)
  | DP  (** DATAPATHS: index-nested-loop-join plans *)
  | Edge  (** Edge table with value / forward / backward link indices *)
  | DG_edge  (** simulated DataGuide + Edge *)
  | IF_edge  (** simulated Index Fabric + Edge *)
  | Asr  (** Access Support Relations *)
  | Ji  (** Join Indices *)

val all_strategies : strategy list
val strategy_name : strategy -> string

val strategy_of_string : string -> strategy
(** @raise Invalid_argument on an unknown name. *)

type t = {
  doc : Tm_xml.Xml_tree.document;
  dict : Dictionary.t;
  catalog : Schema_catalog.t;
  pager : Pager.t;
  pool : Buffer_pool.t;
  edge : Edge_table.t;
  rootpaths : Family.t option;
  datapaths : Family.t option;
  dataguide : Family.t option;
  index_fabric : Family.t option;
  asr_rels : Asr.t option;
  ji : Join_index.t option;
  mutable next_id : int;  (** next fresh node id (see {!Updates}) *)
}

val create :
  ?strategies:strategy list ->
  ?pool_capacity:int ->
  ?page_size:int ->
  ?idlist_codec:[ `Delta | `Raw ] ->
  ?schema_compressed:bool ->
  ?head_filter:(int -> bool) ->
  Tm_xml.Xml_tree.document ->
  t
(** Build a database. [strategies] selects which index sets to
    materialize (default all; the Edge table is always built — it is
    the base storage format and supplies planner statistics).
    [idlist_codec], [schema_compressed] and [head_filter] are the
    Section 4 compression options for ROOTPATHS/DATAPATHS. *)

val rootpaths : t -> Family.t
(** @raise Failure if not built; likewise below. *)

val datapaths : t -> Family.t
val dataguide : t -> Family.t
val index_fabric : t -> Family.t
val asr_rels : t -> Asr.t
val ji : t -> Join_index.t

val strategy_size_bytes : t -> strategy -> int
(** Index space per strategy, with Figure 9's accounting. *)

val drop_caches : t -> unit
(** Simulate a cold cache. *)

val document_stats : t -> int * int * int * int
(** (elements, values, depth, distinct schema paths). *)
