(** Database snapshots: save a built database (document, dictionary,
    catalog, every index's pages and metadata) to a file and reload it
    without re-shredding or re-bulk-loading.

    Format: a magic header, a format version, then the OCaml [Marshal]
    image of the {!Database.t}. This is a {e snapshot}, not a
    write-ahead-logged store: it is only readable by the same library
    version that wrote it (the header encodes a format version checked
    on load), and a crash between [save] calls loses the delta — the
    appropriate scope for a reproduction whose substrate "disk" is
    simulated. Databases built with a [head_filter] or [id_keep]
    closure cannot be snapshotted (closures do not survive
    serialization meaningfully); {!save} rejects them. *)

let magic = "TWIGMATCH-SNAPSHOT"
let version = 1

exception Bad_snapshot of string

let save (db : Database.t) path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      try Marshal.to_channel oc db []
      with Invalid_argument _ ->
        raise
          (Bad_snapshot
             "database contains closures (head_filter / id_keep); pruned databases cannot be \
              snapshotted"))

let load path : Database.t =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then raise (Bad_snapshot "not a twigmatch snapshot");
      let v = input_binary_int ic in
      if v <> version then
        raise (Bad_snapshot (Printf.sprintf "snapshot version %d, expected %d" v version));
      (Marshal.from_channel ic : Database.t))
