(** Checksummed, CRC-framed append-only write-ahead log.

    Frames are ["WF"] + kind byte + u32 length + payload + CRC32 over
    kind and payload. This library stores and recovers frames; it does
    not interpret [Op] payloads — the durable layer above defines them.

    Failpoint sites (see {!Tm_fault.Fault}): [wal.append] (applied to
    the encoded frame bytes before the write; [Fail] retried boundedly,
    [Torn]/[Bitflip] persist a damaged frame), [wal.fsync], and
    [wal.replay] (guarding each frame decoded by {!scan}). *)

type frame =
  | Begin of int  (** transaction id *)
  | Op of int * string  (** transaction id, opaque logical-operation payload *)
  | Page of { txn : int; page : int; crc : int; image : string }
      (** post-image redo record: page id, CRC32 of the image, image *)
  | Commit of int  (** transaction id *)
  | Checkpoint of int  (** last transaction id folded into the snapshot *)

type t
(** An open log handle (append side). *)

exception Damaged of { offset : int; detail : string }
(** Raised by consumers that require an undamaged log; {!scan} itself
    never raises it (damage is reported in {!scanned.damaged}). *)

val create : string -> t
(** Create (or truncate) the log file and open it for appending. *)

val open_append : string -> t
(** Open an existing log (created if missing) for appending. *)

val path : t -> string

val appended : t -> int
(** Frames appended through this handle since open/{!reset}. *)

val size_bytes : t -> int
(** Current file size. *)

val append : t -> frame -> unit
(** Append one frame (not yet durable — call {!sync}).
    @raise Tm_fault.Fault.Io_error if the [wal.append] failpoint's
    [Fail] action outlasts the bounded retry. *)

val sync : t -> unit
(** fsync the log; after return every appended frame is durable.
    @raise Tm_fault.Fault.Io_error if the [wal.fsync] failpoint's
    [Fail] action outlasts the bounded retry. *)

val close : t -> unit

val reset : t -> unit
(** Truncate the log to empty through the open handle (checkpoint). *)

val encode_frame : frame -> string
(** The exact bytes {!append} writes — exposed for frame-boundary crash
    matrices in tests. *)

type scanned = {
  frames : frame list;  (** every frame of the valid prefix, in file order *)
  committed : int list;  (** transaction ids with a [Commit], in commit order *)
  valid_bytes : int;  (** file offset just past the last valid frame *)
  committed_bytes : int;
      (** offset just past the last [Commit]/[Checkpoint] — the
          committed prefix recovery truncates to *)
  damaged : bool;  (** the scan stopped before the end of the file *)
}

val scan : string -> scanned
(** Walk the log from the start, stopping at the first damaged frame
    (bad magic, unknown kind, implausible length, CRC mismatch,
    truncation). Absent files scan as empty. *)

val truncate : string -> int -> unit
(** Truncate the file at [path] to a byte length (discarding a damaged
    tail and partially-logged transactions identified by {!scan}). *)
