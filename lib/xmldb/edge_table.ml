(** The Edge table storage format (Florescu-Kossmann), with the three
    indices the paper uses for the "Edge" baseline (Section 5.1.2):
    the Lore value index, the forward link index, and the backward link
    index.

    Base relation: one record per element/attribute node —
    [(node_id, parent_id, tag, leaf_value?)] in a heap file.

    Indices (all B+-trees):
    - value index:    [tag · value]      -> node_id
    - forward link:   [parent_id · tag]  -> node_id
    - backward link:  [node_id]          -> (parent_id, parent_tag, tag)

    The backward-link payload carries both the parent's id and both tags
    so that bottom-up climbs can check structural predicates without
    extra lookups — the relational plan would get the same from the Edge
    tuple it just joined with. *)

open Tm_storage

type t = {
  heap : Heap_file.t;
  value_index : Bptree.t;
  forward : Bptree.t;
  backward : Bptree.t;
  mutable n_nodes : int;
  stats_lock : Lock.t;
      (** guards [n_nodes] and [value_stats]: incremental maintenance
          during a durable ingest replaces entries while epoch-pinned
          readers fold over the table for selectivity estimates
          (ticketed {!Lock} so the table stays marshal-safe) *)
  value_stats : (string, int) Hashtbl.t;
      (** (tag, value) -> cardinality; the pre-collected statistics of
          paper Section 5.1.1 ("we collected detailed statistics on all
          relations and indices before running our queries"), used by
          the planner's selectivity estimates without touching pages *)
}

let encode_record info =
  let buf = Buffer.create 32 in
  Codec.add_varint buf info.Shred.id;
  Codec.add_varint buf info.Shred.parent_id;
  Codec.add_varint buf info.Shred.tag;
  Codec.add_lstring buf (match info.Shred.value with None -> "" | Some v -> "\x01" ^ v);
  Buffer.contents buf

let value_key tag value = Dictionary.designator tag ^ Codec.encode_value (Some value)
let forward_key parent_id tag = Codec.u32_to_string parent_id ^ Dictionary.designator tag
let backward_key node_id = Codec.u32_to_string node_id

let backward_payload ~parent_id ~parent_tag ~tag ~value =
  let buf = Buffer.create 8 in
  Codec.add_varint buf parent_id;
  Codec.add_signed_varint buf parent_tag;
  Codec.add_varint buf tag;
  Codec.add_lstring buf (match value with None -> "" | Some v -> "\x01" ^ v);
  Buffer.contents buf

let decode_backward s =
  let parent_id, pos = Codec.read_varint s 0 in
  let parent_tag, pos = Codec.read_signed_varint s pos in
  let tag, pos = Codec.read_varint s pos in
  let v, _ = Codec.read_lstring s pos in
  let value = if v = "" then None else Some (String.sub v 1 (String.length v - 1)) in
  (parent_id, parent_tag, tag, value)

(** Shred [doc] into an Edge table, bulk-loading all three indices. *)
let build pool dict doc =
  let heap = Heap_file.create ~name:"edge_heap" pool in
  let rows =
    Shred.fold_nodes doc dict
      (fun acc info ->
        ignore (Heap_file.append heap (encode_record info));
        info :: acc)
      []
  in
  let n_nodes = List.length rows in
  let node_payload id = Codec.u32_to_string id in
  let value_entries =
    List.filter_map
      (fun info ->
        match info.Shred.value with
        | None -> None
        | Some v -> Some (value_key info.Shred.tag v, node_payload info.Shred.id))
      rows
  in
  let forward_entries =
    List.map
      (fun info -> (forward_key info.Shred.parent_id info.Shred.tag, node_payload info.Shred.id))
      rows
  in
  let backward_entries =
    List.map
      (fun info ->
        ( backward_key info.Shred.id,
          backward_payload ~parent_id:info.Shred.parent_id ~parent_tag:info.Shred.parent_tag
            ~tag:info.Shred.tag ~value:info.Shred.value ))
      rows
  in
  let value_stats = Hashtbl.create 4096 in
  List.iter
    (fun (key, _) ->
      Hashtbl.replace value_stats key
        (1 + Option.value ~default:0 (Hashtbl.find_opt value_stats key)))
    value_entries;
  let sorted = List.sort Codec.compare_kv in
  {
    heap;
    value_index = Bptree.bulk_load ~name:"edge_value" pool (sorted value_entries);
    forward = Bptree.bulk_load ~name:"edge_forward" pool (sorted forward_entries);
    backward = Bptree.bulk_load ~name:"edge_backward" pool (sorted backward_entries);
    n_nodes;
    stats_lock = Lock.create Lock.Inner;
    value_stats;
  }

let node_count t = Lock.with_lock t.stats_lock (fun () -> t.n_nodes)

(** Ids of nodes with tag [tag] and leaf value [value] (value index lookup). *)
let lookup_value t ~tag ~value =
  Bptree.lookup_all t.value_index (value_key tag value)
  |> List.map (fun p -> fst (Codec.read_u32 p 0))

(** Number of nodes with tag [tag] and value [value] — the selectivity
    statistic the planner uses. O(1): answered from pre-collected
    statistics, not from the index itself. *)
let value_cardinality t ~tag ~value =
  let key = value_key tag value in
  Lock.with_lock t.stats_lock (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt t.value_stats key))

(** Ids of nodes with tag [tag] whose leaf value lies in the given
    lexicographic range (bounds are (value, inclusive); [None] is
    open). One contiguous value-index range scan plus a bound
    post-filter for prefix-extension false positives. *)
let lookup_value_range t ~tag ~lo ~hi =
  let prefix = Dictionary.designator tag in
  let lo_key =
    match lo with
    | Some (v, _) -> prefix ^ Codec.encode_value (Some v)
    | None -> prefix ^ "\x02"
  in
  let hi_key =
    match hi with
    | Some (v, _) -> Codec.prefix_successor (prefix ^ Codec.encode_value (Some v))
    | None -> Codec.prefix_successor prefix
  in
  let in_bound ~is_lo b v =
    match b with
    | None -> true
    | Some (bv, inc) ->
      let c = String.compare v bv in
      if is_lo then if inc then c >= 0 else c > 0 else if inc then c <= 0 else c < 0
  in
  List.rev
    (Bptree.fold_range t.value_index ~lo:lo_key ~hi:hi_key
       (fun acc key payload ->
         match Codec.decode_value (String.sub key 2 (String.length key - 2)) with
         | Some v when in_bound ~is_lo:true lo v && in_bound ~is_lo:false hi v ->
           fst (Codec.read_u32 payload 0) :: acc
         | Some _ | None -> acc)
       [])

(** Cardinality of a value range for tag [tag], from the pre-collected
    statistics (no page access). *)
let range_cardinality t ~tag ~lo ~hi =
  let prefix = Dictionary.designator tag in
  let in_bound ~is_lo b v =
    match b with
    | None -> true
    | Some (bv, inc) ->
      let c = String.compare v bv in
      if is_lo then if inc then c >= 0 else c > 0 else if inc then c <= 0 else c < 0
  in
  Lock.with_lock t.stats_lock (fun () ->
      Hashtbl.fold
        (fun key n acc ->
          if String.length key >= 2 && String.sub key 0 2 = prefix then
            match Codec.decode_value (String.sub key 2 (String.length key - 2)) with
            | Some v when in_bound ~is_lo:true lo v && in_bound ~is_lo:false hi v -> acc + n
            | Some _ | None -> acc
          else acc)
        t.value_stats 0)

(** Number of nodes with tag [tag] (any value) under any parent. *)
let children_of t ~parent ~tag =
  Bptree.lookup_all t.forward (forward_key parent tag)
  |> List.map (fun p -> fst (Codec.read_u32 p 0))

(** All children of [parent] regardless of tag (forward-index prefix
    scan) — the access path a relational engine would use to expand a
    [//] step downwards. *)
let all_children t ~parent =
  List.rev
    (Bptree.fold_prefix t.forward ~prefix:(Codec.u32_to_string parent)
       (fun acc _ p -> fst (Codec.read_u32 p 0) :: acc)
       [])

(** Parent of [node]: [(parent_id, parent_tag, own_tag)]. *)
let parent_of t node =
  match Bptree.lookup_first t.backward (backward_key node) with
  | None -> None
  | Some p ->
    let parent_id, parent_tag, tag, _ = decode_backward p in
    Some (parent_id, parent_tag, tag)

(** The Edge tuple of [node]: [(parent_id, parent_tag, own_tag,
    leaf_value)] — one backward-link lookup. *)
let node_record t node =
  Option.map decode_backward (Bptree.lookup_first t.backward (backward_key node))

(** Leaf value of [node] (one backward-link lookup). *)
let node_value t node =
  match node_record t node with Some (_, _, _, v) -> v | None -> None

(** Incremental maintenance: index one new node. *)
let insert_node t (info : Shred.node_info) =
  ignore (Heap_file.append t.heap (encode_record info));
  let id_payload = Codec.u32_to_string info.Shred.id in
  (match info.Shred.value with
  | Some v ->
    let key = value_key info.Shred.tag v in
    Bptree.insert t.value_index key id_payload;
    Lock.with_lock t.stats_lock (fun () ->
        Hashtbl.replace t.value_stats key
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.value_stats key)))
  | None -> ());
  Bptree.insert t.forward (forward_key info.Shred.parent_id info.Shred.tag) id_payload;
  Bptree.insert t.backward (backward_key info.Shred.id)
    (backward_payload ~parent_id:info.Shred.parent_id ~parent_tag:info.Shred.parent_tag
       ~tag:info.Shred.tag ~value:info.Shred.value);
  Lock.with_lock t.stats_lock (fun () -> t.n_nodes <- t.n_nodes + 1)

(** Incremental maintenance: un-index a node. The heap record remains
    as a tombstone (heap space is reclaimed on rebuild); all three
    indices and the statistics are updated. *)
let remove_node t (info : Shred.node_info) =
  let id_payload = Codec.u32_to_string info.Shred.id in
  (match info.Shred.value with
  | Some v ->
    let key = value_key info.Shred.tag v in
    ignore (Bptree.delete t.value_index key id_payload);
    Lock.with_lock t.stats_lock (fun () ->
        match Hashtbl.find_opt t.value_stats key with
        | Some n when n > 1 -> Hashtbl.replace t.value_stats key (n - 1)
        | Some _ -> Hashtbl.remove t.value_stats key
        | None -> ())
  | None -> ());
  ignore (Bptree.delete t.forward (forward_key info.Shred.parent_id info.Shred.tag) id_payload);
  ignore
    (Bptree.delete t.backward (backward_key info.Shred.id)
       (backward_payload ~parent_id:info.Shred.parent_id ~parent_tag:info.Shred.parent_tag
          ~tag:info.Shred.tag ~value:info.Shred.value));
  Lock.with_lock t.stats_lock (fun () -> t.n_nodes <- t.n_nodes - 1)

(** The three link/value B+-trees (fsck support). *)
let indices t = [ t.value_index; t.forward; t.backward ]

(** The base heap file (fsck support). *)
let heap t = t.heap

(** Total space of the Edge strategy: heap + the three indices. *)
let size_bytes t =
  Heap_file.size_bytes t.heap + Bptree.size_bytes t.value_index + Bptree.size_bytes t.forward
  + Bptree.size_bytes t.backward

(** Space of the base heap only (shared storage under every strategy). *)
let heap_size_bytes t = Heap_file.size_bytes t.heap
