(** Durable write path: a write-ahead-logged database directory
    (snapshot + redo log) with crash recovery.

    Layout: [<dir>/snapshot.twig] (Persist v2 snapshot) and
    [<dir>/wal.log] ({!Tm_wal.Wal} frames). Each {!insert_subtree} /
    {!delete_subtree} is one logged transaction — logical [Op] frame,
    post-image [Page] frames, [Commit], fsync — wrapped in a pager
    transaction whose commit atomically publishes a new epoch to
    concurrent snapshot readers (see {!Tm_storage.Epoch}).

    {!open_} recovers by re-executing the committed transactions of the
    log's valid prefix against the snapshot, cross-checking logged page
    CRCs, and truncating damaged or uncommitted tails. {!checkpoint}
    folds the log into a fresh snapshot and truncates it.

    Write failures after pages were dirtied poison the handle (the
    in-memory document/dictionary/catalog cannot be rolled back);
    recovery is to {!open_} the directory again. Validation failures
    ([Invalid_argument] before any page write) abort cleanly and the
    handle stays usable. *)

exception Recovery_error of string
(** Recovery found a log that contradicts re-execution (or replay
    itself failed) — the directory needs manual attention. *)

exception Poisoned of string
(** The handle was poisoned by an earlier mid-transaction failure; the
    payload is that failure's rendering. Reopen the directory to
    recover to the last durably committed state. *)

type t
(** A durable handle: open database + open log + writer lock. *)

val snapshot_path : string -> string
(** [<dir>/snapshot.twig]. *)

val wal_path : string -> string
(** [<dir>/wal.log]. *)

val database : t -> Database.t
(** The live database (for queries, fsck, statistics). *)

val dir : t -> string

type wal_status = {
  log_bytes : int;  (** log growth since the last checkpoint truncated it *)
  last_txn : int;  (** highest committed transaction id (0 before any) *)
  poisoned : string option;
      (** [Some reason] when a mid-transaction failure poisoned the
          write path; reads still serve, reopening the directory
          recovers *)
}

val wal_status : t -> wal_status
(** A consistent snapshot of write-path health, as surfaced by the
    serving layer's /healthz ("degraded" when poisoned but readable). *)

val create : ?force:bool -> dir:string -> Database.t -> t
(** Make [db] durable under [dir] (created if missing): write the
    initial snapshot, create the log, stamp it with a [Checkpoint].
    Refuses a directory that already holds a database (a snapshot or a
    non-empty log) — its log may contain committed transactions not yet
    checkpointed; {!open_} recovers those. [~force:true] overwrites.
    @raise Invalid_argument if [dir] already holds a database and
    [force] is false.
    @raise Persist.Bad_snapshot for databases containing pruning
    closures (they cannot be snapshotted). *)

type recovery = {
  replayed : int;  (** committed transactions re-executed *)
  skipped : int;  (** committed transactions already in the snapshot *)
  discarded_bytes : int;  (** damaged / uncommitted tail truncated away *)
}

val open_ : string -> t * recovery
(** Recover the database under a directory: load the snapshot, replay
    the committed prefix of the log (in commit order, skipping
    transactions the snapshot already contains), discard damaged and
    uncommitted tails, and reopen the log for appending.
    @raise Persist.Bad_snapshot if the snapshot is damaged.
    @raise Recovery_error if replay diverges from the logged page
    CRCs. *)

val insert_subtree : t -> parent:int -> Tm_xml.Xml_tree.node -> int
(** {!Updates.insert_subtree} as one logged transaction; returns the
    subtree root's new id. Durable on return unless inside {!batch}.
    @raise Invalid_argument as {!Updates.insert_subtree} (clean abort).
    @raise Poisoned if the handle is poisoned. *)

val delete_subtree : t -> int -> int
(** {!Updates.delete_subtree} as one logged transaction; returns the
    number of nodes removed. Durable on return unless inside {!batch}.
    @raise Invalid_argument as {!Updates.delete_subtree} (clean abort).
    @raise Poisoned if the handle is poisoned. *)

val batch : t -> (unit -> 'a) -> 'a
(** Group commit: transactions inside [f] append and commit as usual
    but the fsync is deferred to the end of the (outermost) batch — one
    durability point for the whole group. A crash inside the batch may
    lose its transactions (never a prefix-violating subset: the log is
    replayed in commit order). The closing fsync runs even when a
    transaction inside the batch poisoned the handle, so transactions
    that already returned success keep their durability (best effort if
    the log itself is what failed — reopen to learn what survived). *)

val checkpoint : t -> unit
(** Fold the log into a fresh snapshot: flush the buffer pool, write
    the snapshot (atomic rename), truncate the log, stamp it with a
    [Checkpoint] frame. The log stays small; recovery stays fast.
    @raise Invalid_argument inside a {!batch} or an active pager
    transaction. *)

val close : t -> unit
(** Sync any deferred commits and close the log. The database itself
    needs no closing (its "disk" is the in-process pager). *)

(** {1 Logical-operation codec} — exposed for log inspection and
    crash-matrix tests. *)

type op =
  | Insert of { parent : int; subtree : Tm_xml.Xml_tree.node }
  | Delete of int

val encode_op : op -> string
(** The [Op]-frame payload for an operation (subtree ids are not
    encoded: replay re-assigns them deterministically). *)

val decode_op : string -> op
(** @raise Invalid_argument on a malformed payload. *)
