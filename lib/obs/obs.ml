(** Observability substrate: a global metrics sink (counters and
    histograms) plus monotonic-clock spans recorded into per-query
    trace trees.

    The sink is {e disabled by default} and every recording entry point
    is gated on one boolean load, so instrumented hot paths cost a
    single predictable branch when observability is off — the property
    the benchmark harness relies on. When enabled, counters accumulate
    globally (exported by {!Export}) and {!trace} additionally captures
    a tree of named spans; each span records its wall-clock time and
    the deltas of every registered counter over its extent, which is
    how EXPLAIN ANALYZE attributes buffer-pool hits or rows produced to
    individual plan operators without the operators knowing about each
    other. *)

let enabled_flag = ref false
let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

let with_enabled on f =
  let saved = !enabled_flag in
  enabled_flag := on;
  Fun.protect ~finally:(fun () -> enabled_flag := saved) f

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; mutable c_value : int }

let counter_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let counter_order : counter list ref = ref [] (* registration order, reversed *)

let counter name =
  match Hashtbl.find_opt counter_tbl name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace counter_tbl name c;
    counter_order := c :: !counter_order;
    c

let add c n = if !enabled_flag then c.c_value <- c.c_value + n
let incr c = add c 1
let value c = c.c_value
let counters () = List.rev_map (fun c -> (c.c_name, c.c_value)) !counter_order

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

type histogram = {
  h_name : string;
  h_bounds : float array;  (** bucket upper bounds, ascending *)
  h_counts : int array;  (** per bucket, plus one overflow slot *)
  mutable h_sum : float;
  mutable h_count : int;
}

(* Latency-flavoured defaults (milliseconds); row-count histograms pass
   their own bounds. *)
let default_buckets = [| 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 50.0; 100.0; 500.0; 1000.0 |]

let histogram_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16
let histogram_order : histogram list ref = ref []

let histogram ?(buckets = default_buckets) name =
  match Hashtbl.find_opt histogram_tbl name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_bounds = buckets;
        h_counts = Array.make (Array.length buckets + 1) 0;
        h_sum = 0.0;
        h_count = 0;
      }
    in
    Hashtbl.replace histogram_tbl name h;
    histogram_order := h :: !histogram_order;
    h

let observe h v =
  if !enabled_flag then begin
    let n = Array.length h.h_bounds in
    let rec slot i = if i >= n || v <= h.h_bounds.(i) then i else slot (i + 1) in
    let i = slot 0 in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_count <- h.h_count + 1
  end

let histograms () = List.rev !histogram_order

let reset () =
  List.iter (fun c -> c.c_value <- 0) !counter_order;
  List.iter
    (fun h ->
      Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
      h.h_sum <- 0.0;
      h.h_count <- 0)
    !histogram_order

(* ------------------------------------------------------------------ *)
(* Spans and traces                                                    *)
(* ------------------------------------------------------------------ *)

type span = {
  s_name : string;
  mutable s_elapsed_ns : int64;
  mutable s_meta : (string * string) list;  (** free-form annotations *)
  mutable s_counts : (string * int) list;  (** counter deltas over the span *)
  mutable s_children : span list;  (** execution order once finished *)
}

(* The active trace is a stack of open spans, innermost first, each
   carrying the counter snapshot taken when it opened. Spans outside a
   {!trace} extent are not recorded (the stack is empty). *)
let trace_stack : (span * (counter * int) list * int64) list ref = ref []

let snapshot () = List.rev_map (fun c -> (c, c.c_value)) !counter_order

let deltas snap =
  List.filter_map
    (fun (c, v0) ->
      let d = c.c_value - v0 in
      if d <> 0 then Some (c.c_name, d) else None)
    snap

let fresh_span ?(meta = []) name =
  { s_name = name; s_elapsed_ns = 0L; s_meta = meta; s_counts = []; s_children = [] }

let in_trace () = !trace_stack <> []

let annotate k v =
  match !trace_stack with
  | (s, _, _) :: _ -> s.s_meta <- s.s_meta @ [ (k, v) ]
  | [] -> ()

let close_span s snap t0 =
  s.s_elapsed_ns <- Int64.sub (Monotonic_clock.now ()) t0;
  s.s_counts <- deltas snap;
  s.s_children <- List.rev s.s_children

let with_span ?meta name f =
  if not !enabled_flag || !trace_stack = [] then f ()
  else begin
    let s = fresh_span ?meta name in
    trace_stack := (s, snapshot (), Monotonic_clock.now ()) :: !trace_stack;
    let finish () =
      match !trace_stack with
      | (s', snap, t0) :: rest when s' == s ->
        close_span s snap t0;
        trace_stack := rest;
        (match rest with
        | (parent, _, _) :: _ -> parent.s_children <- s :: parent.s_children
        | [] -> ())
      | _ -> () (* unbalanced finish; drop the span rather than corrupt the tree *)
    in
    Fun.protect ~finally:finish f
  end

let trace ?meta name f =
  if not !enabled_flag then (f (), None)
  else begin
    let root = fresh_span ?meta name in
    let saved = !trace_stack in
    trace_stack := [ (root, snapshot (), Monotonic_clock.now ()) ];
    let finish () =
      (match !trace_stack with
      | [ (s, snap, t0) ] when s == root -> close_span root snap t0
      | _ -> ());
      trace_stack := saved
    in
    let v = Fun.protect ~finally:finish f in
    (v, Some root)
  end

let elapsed_ms s = Int64.to_float s.s_elapsed_ns /. 1e6

let span_count name s = match List.assoc_opt name s.s_counts with Some n -> n | None -> 0

let pool_hit_rate s =
  let hits = span_count "buffer_pool.hits" s and misses = span_count "buffer_pool.misses" s in
  if hits + misses = 0 then None else Some (float_of_int hits /. float_of_int (hits + misses))
