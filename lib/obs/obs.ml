(** Observability substrate: a global metrics sink (counters and
    histograms) plus monotonic-clock spans recorded into per-query
    trace trees.

    The sink is {e disabled by default} and every recording entry point
    is gated on one boolean load, so instrumented hot paths cost a
    single predictable branch when observability is off — the property
    the benchmark harness relies on. When enabled, counters accumulate
    globally (exported by {!Export}) and {!trace} additionally captures
    a tree of named spans; each span records its wall-clock time and
    the deltas of every registered counter over its extent, which is
    how EXPLAIN ANALYZE attributes buffer-pool hits or rows produced to
    individual plan operators without the operators knowing about each
    other.

    Domain-safety: counters are {!Atomic.t}s, histogram updates are
    guarded by one mutex (both only when the sink is on), and the
    active trace stack is {e domain-local} — each domain records its
    own span tree, and a finished tree can be grafted into another
    domain's open trace with {!adopt} (how the parallel executor shows
    per-domain path spans under one query trace). Counter deltas on a
    span are deltas of the {e global} counters over the span's extent:
    with concurrent domains they include the other domains' traffic,
    so per-operator attribution is exact only where one domain runs. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let with_enabled on f =
  let saved = Atomic.get enabled_flag in
  Atomic.set enabled_flag on;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag saved) f

(* Registration tables are touched from whichever domain first names a
   metric (usually all at module-init time on the main domain, but a
   worker may race); one mutex covers both tables. *)
let registry_lock = Mutex.create ()

let registered lock tbl order name make =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some v -> v
      | None ->
        let v = make () in
        Hashtbl.replace tbl name v;
        order := v :: !order;
        v)

(* ------------------------------------------------------------------ *)
(* Trace context                                                       *)
(* ------------------------------------------------------------------ *)

(* The ambient trace id lives in {!Context}, below both this module and
   {!Flight}, so the flight recorder can tag events with it without a
   dependency cycle. These are thin aliases kept for the existing
   callers. *)
let context = Context.get
let with_context = Context.with_context

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_value : int Atomic.t }

let counter_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
[@@analyze.guarded_by "registry_lock"]

let counter_order : counter list ref = ref [] [@@analyze.guarded_by "registry_lock"]
(* registration order, reversed *)

let counter name =
  registered registry_lock counter_tbl counter_order name (fun () ->
      { c_name = name; c_value = Atomic.make 0 })

let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_value n)
let incr c = add c 1
let value c = Atomic.get c.c_value
let counters () = List.rev_map (fun c -> (c.c_name, Atomic.get c.c_value)) !counter_order

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

type histogram = {
  h_name : string;
  h_bounds : float array;  (** bucket upper bounds, ascending *)
  h_counts : int array;  (** per bucket, plus one overflow slot *)
  mutable h_sum : float;
  mutable h_count : int;
}

(* Latency-flavoured defaults (milliseconds); row-count histograms pass
   their own bounds. *)
let default_buckets = [| 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 50.0; 100.0; 500.0; 1000.0 |]

let histogram_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16
[@@analyze.guarded_by "registry_lock"]

let histogram_order : histogram list ref = ref [] [@@analyze.guarded_by "registry_lock"]

let histogram ?(buckets = default_buckets) name =
  registered registry_lock histogram_tbl histogram_order name (fun () ->
      {
        h_name = name;
        h_bounds = buckets;
        h_counts = Array.make (Array.length buckets + 1) 0;
        h_sum = 0.0;
        h_count = 0;
      })

(* Histogram observations are rare next to counter bumps (one per join
   or per parallel task, not per entry), so a single global mutex is
   enough; it is only ever taken when the sink is on. *)
let histogram_lock = Mutex.create ()

let observe h v =
  if Atomic.get enabled_flag then begin
    let n = Array.length h.h_bounds in
    let rec slot i = if i >= n || v <= h.h_bounds.(i) then i else slot (i + 1) in
    let i = slot 0 in
    Mutex.protect histogram_lock (fun () ->
        h.h_counts.(i) <- h.h_counts.(i) + 1;
        h.h_sum <- h.h_sum +. v;
        h.h_count <- h.h_count + 1)
  end

let histograms () = List.rev !histogram_order

(* ------------------------------------------------------------------ *)
(* Warnings                                                            *)
(* ------------------------------------------------------------------ *)

type warning = { w_time : float; w_ctx : int option; w_site : string; w_msg : string }

(* Warnings are rare and operationally important, so they are recorded
   regardless of the enabled flag into a small bounded ring (oldest
   overwritten) and additionally passed to the handler — stderr by
   default, replaced by [serve] with its own collector. *)
let warn_capacity = 256
let warn_lock = Mutex.create ()
let warn_ring : warning option array = Array.make warn_capacity None [@@analyze.guarded_by "warn_lock"]
let warn_written = ref 0 [@@analyze.guarded_by "warn_lock"]

let warn_handler : (warning -> unit) option ref = ref None
[@@analyze.guarded_by "warn_lock"]

let default_warn_handler w = Printf.eprintf "warning: [%s] %s\n%!" w.w_site w.w_msg
let set_warn_handler h = Mutex.protect warn_lock (fun () -> warn_handler := h)

let warn ~site msg =
  let w = { w_time = Unix.gettimeofday (); w_ctx = context (); w_site = site; w_msg = msg } in
  let h =
    Mutex.protect warn_lock (fun () ->
        warn_ring.(!warn_written mod warn_capacity) <- Some w;
        warn_written := !warn_written + 1;
        !warn_handler)
  in
  match h with None -> default_warn_handler w | Some f -> f w

let warnings () =
  Mutex.protect warn_lock (fun () ->
      let n = !warn_written in
      let first = max 0 (n - warn_capacity) in
      List.filter_map
        (fun i -> warn_ring.(i mod warn_capacity))
        (List.init (n - first) (fun k -> first + k)))

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

(* A gauge is a registered thunk sampled at export time (journal depth,
   pool occupancy, ...): nothing is recorded on the hot path, so gauges
   are not gated on the enabled flag. *)
type gauge = { g_name : string; g_read : unit -> float }

let gauge_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 8
[@@analyze.guarded_by "registry_lock"]

let gauge_order : gauge list ref = ref [] [@@analyze.guarded_by "registry_lock"]

let gauge name read =
  ignore (registered registry_lock gauge_tbl gauge_order name (fun () -> { g_name = name; g_read = read }))

(* A failing gauge thunk must not take down an export scrape, but the
   failure is not silent either: it lands in the warning ring with the
   gauge's name before the sample degrades to NaN. *)
let gauges () =
  List.rev_map
    (fun g ->
      ( g.g_name,
        try g.g_read ()
        with e ->
          warn ~site:"obs.gauge" (Printf.sprintf "%s: %s" g.g_name (Printexc.to_string e));
          Float.nan ))
    !gauge_order

let reset () =
  List.iter (fun c -> Atomic.set c.c_value 0) !counter_order;
  Mutex.protect histogram_lock (fun () ->
      List.iter
        (fun h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_sum <- 0.0;
          h.h_count <- 0)
        !histogram_order)

(* ------------------------------------------------------------------ *)
(* Spans and traces                                                    *)
(* ------------------------------------------------------------------ *)

(* GC activity over a span's extent, from {!Gc.quick_stat} deltas. On
   OCaml 5 the allocation counters are per-domain, which matches the
   domain-local trace stack: a span's numbers describe the domain that
   recorded it. *)
type gc_delta = {
  g_minor_words : float;  (** words allocated in the minor heap *)
  g_major_words : float;  (** words allocated in / promoted to the major heap *)
  g_minor_gcs : int;  (** minor collections *)
  g_major_gcs : int;  (** major collection cycles *)
}

type span = {
  s_name : string;
  mutable s_start_ns : int64;  (** monotonic-clock open time *)
  mutable s_elapsed_ns : int64;
  mutable s_meta : (string * string) list;  (** free-form annotations *)
  mutable s_counts : (string * int) list;  (** counter deltas over the span *)
  mutable s_gc : gc_delta option;  (** GC/allocation deltas over the span *)
  mutable s_children : span list;  (** execution order once finished *)
}

(* [Gc.quick_stat]'s word counters are only refreshed at collection
   boundaries on OCaml 5, which would read as zero across most spans;
   [Gc.minor_words ()] reads the live allocation pointer, so minor
   words are exact. Major words stay quick_stat-grained (promotions
   are counted at the collections that do them). *)
let gc_snapshot () =
  let s = Gc.quick_stat () in
  {
    g_minor_words = Gc.minor_words ();
    g_major_words = s.Gc.major_words;
    g_minor_gcs = s.Gc.minor_collections;
    g_major_gcs = s.Gc.major_collections;
  }

let gc_since g0 =
  let g1 = gc_snapshot () in
  {
    g_minor_words = g1.g_minor_words -. g0.g_minor_words;
    g_major_words = g1.g_major_words -. g0.g_major_words;
    g_minor_gcs = g1.g_minor_gcs - g0.g_minor_gcs;
    g_major_gcs = g1.g_major_gcs - g0.g_major_gcs;
  }

(* The active trace is a stack of open spans, innermost first, each
   carrying the counter snapshot taken when it opened. Spans outside a
   {!trace} extent are not recorded (the stack is empty). The stack is
   domain-local: concurrent domains each build their own tree and never
   see each other's open spans. *)
let trace_stack_key :
    (span * (counter * int) list * int64 * gc_delta) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let trace_stack () = Domain.DLS.get trace_stack_key

let snapshot () = List.rev_map (fun c -> (c, Atomic.get c.c_value)) !counter_order

let deltas snap =
  List.filter_map
    (fun (c, v0) ->
      let d = Atomic.get c.c_value - v0 in
      if d <> 0 then Some (c.c_name, d) else None)
    snap

let fresh_span ?(meta = []) name =
  {
    s_name = name;
    s_start_ns = 0L;
    s_elapsed_ns = 0L;
    s_meta = meta;
    s_counts = [];
    s_gc = None;
    s_children = [];
  }

let in_trace () = match !(trace_stack ()) with [] -> false | _ :: _ -> true

let annotate k v =
  match !(trace_stack ()) with
  | (s, _, _, _) :: _ -> s.s_meta <- s.s_meta @ [ (k, v) ]
  | [] -> ()

let adopt child =
  match !(trace_stack ()) with
  | (s, _, _, _) :: _ -> s.s_children <- child :: s.s_children
  | [] -> ()

let close_span s snap t0 gc0 =
  s.s_elapsed_ns <- Int64.sub (Monotonic_clock.now ()) t0;
  s.s_counts <- deltas snap;
  s.s_gc <- Some (gc_since gc0);
  s.s_children <- List.rev s.s_children

let open_entry s =
  let t0 = Monotonic_clock.now () in
  s.s_start_ns <- t0;
  (s, snapshot (), t0, gc_snapshot ())

let with_span ?meta name f =
  let stack = trace_stack () in
  match !stack with
  | [] -> f ()
  | _ :: _ when not (Atomic.get enabled_flag) -> f ()
  | _ :: _ ->
    (* Nested (operator-level) spans deliberately do NOT reach the
       flight recorder: they already live in the trace tree, and at
       ~14 operator spans per query their two emits apiece would
       dominate the timeline and the recorder's hot-path budget. The
       flight ring gets one span pair per trace root (see {!trace}). *)
    let s = fresh_span ?meta name in
    stack := open_entry s :: !stack;
    let finish () =
      match !stack with
      | (s', snap, t0, gc0) :: rest when s' == s ->
        close_span s snap t0 gc0;
        stack := rest;
        (match rest with
        | (parent, _, _, _) :: _ -> parent.s_children <- s :: parent.s_children
        | [] -> ())
      | _ -> () (* unbalanced finish; drop the span rather than corrupt the tree *)
    in
    Fun.protect ~finally:finish f

let trace ?meta name f =
  if not (Atomic.get enabled_flag) then (f (), None)
  else begin
    let stack = trace_stack () in
    let root = fresh_span ?meta name in
    let saved = !stack in
    stack := [ open_entry root ];
    Flight.emit Flight.Span_begin 0 0 name;
    let finish () =
      (match !stack with
      | [ (s, snap, t0, gc0) ] when s == root ->
        close_span root snap t0 gc0;
        Flight.emit Flight.Span_end (Int64.to_int root.s_elapsed_ns) 0 name
      | _ -> ());
      stack := saved
    in
    let v = Fun.protect ~finally:finish f in
    (v, Some root)
  end

let elapsed_ms s = Int64.to_float s.s_elapsed_ns /. 1e6

let span_count name s = match List.assoc_opt name s.s_counts with Some n -> n | None -> 0

let pool_hit_rate s =
  let hits = span_count "buffer_pool.hits" s and misses = span_count "buffer_pool.misses" s in
  if hits + misses = 0 then None else Some (float_of_int hits /. float_of_int (hits + misses))
