(** Region (interval) encoding of node positions.

    The paper's footnote 3 points out that its simple numeric ids can
    be replaced by containment-enabling identifiers "such as those in
    [34]" (Zhang et al.): each node gets a ([start], [end], [level])
    triple with [start] < [desc.start] <= [end] exactly for
    descendants. Our depth-first pre-order ids {e are} start positions,
    so the region index only adds the end bound and the level, computed
    in one traversal and held in flat arrays (a real system would store
    them in the Edge tuple).

    This module powers the structural-join engines in [Tm_joins] — the
    comparison the paper could not run because no commercial system
    implemented structural joins at the time (Section 5.1.2). *)

module T = Tm_xml.Xml_tree

type t = {
  end_ : int array;  (** [end_.(id)]: largest descendant id (inclusive); own id if leaf *)
  level : int array;  (** [level.(id)]: depth, document roots = 1 *)
  count : int;
}

let build (doc : T.document) =
  (* Ids are dense only until the first subtree insertion: [Updates]
     assigns fresh ids past every existing one, and [node_count] stays
     at the build-time figure. Size by the largest id actually present
     so updated documents index correctly (deleted ids leave holes). *)
  let rec max_id acc (node : T.node) =
    if T.is_value node then acc
    else Array.fold_left max_id (max acc node.T.id) node.T.children
  in
  let n = max doc.T.node_count (1 + Array.fold_left max_id 0 doc.T.roots) in
  let end_ = Array.make n 0 in
  let level = Array.make n 0 in
  let rec go depth (node : T.node) =
    if T.is_value node then 0
    else begin
      let id = node.T.id in
      level.(id) <- depth;
      let last = Array.fold_left (fun acc c -> max acc (go (depth + 1) c)) id node.T.children in
      end_.(id) <- last;
      last
    end
  in
  Array.iter (fun r -> ignore (go 1 r)) doc.T.roots;
  (* the virtual root spans everything *)
  end_.(0) <- n - 1;
  level.(0) <- 0;
  { end_; level; count = n }

let check t id = if id < 0 || id >= t.count then invalid_arg "Region: bad node id"

let end_of t id =
  check t id;
  t.end_.(id)

let level_of t id =
  check t id;
  t.level.(id)

(** Strict ancestorship: [anc] properly contains [desc]. *)
let is_ancestor t ~anc ~desc =
  check t anc;
  check t desc;
  anc < desc && desc <= t.end_.(anc)

(** Parent-child: containment plus adjacent levels. (With pre-order ids
    and levels this is exact: the parent is the nearest enclosing node,
    and no non-parent ancestor can sit one level above.) *)
let is_parent t ~parent ~child =
  is_ancestor t ~anc:parent ~desc:child && t.level.(child) = t.level.(parent) + 1
