(** Deterministic XMark-like dataset generator.

    The paper evaluates on the 100 MB XMark auction-site benchmark
    (Section 5.1.1). We cannot ship that dataset, so this generator
    produces a scaled document with the same element hierarchy the
    workload queries traverse, and with value frequencies engineered to
    reproduce the paper's selectivity classes (Figures 7-8):

    - one item with [quantity = '5'] (highly selective, Q1x), a
      moderate ['2'] class (Q2x) and a large ['1'] class (Q3x);
    - one person with [@income = '46814.17'] and one named
      ['Hagen Artosi'] (selective branches, Q4x/Q5x), a ~20% income
      class ['9876.00'] (unselective, Q6x-Q9x);
    - [@increase = '75.00'] rare vs ['3.00'] common (Q4x vs Q8x);
    - exactly three auctions annotated by ['person22082'] (Q10x/Q11x);
    - a rare item category ['category440'] (Q12x/Q13x);
    - two location spellings: ['united states'] concentrated in
      namerica (Q7x) and ['United States'] across regions (Q14x).

    Everything is driven by one PRNG seed, so a (seed, scale) pair
    identifies a dataset exactly. *)

module T = Tm_xml.Xml_tree

type params = {
  seed : int;
  scale : float;  (** 1.0 ~ 30k element nodes *)
}

let default = { seed = 42; scale = 1.0 }

let n_scaled p base = max 1 (int_of_float (float_of_int base *. p.scale))

let word_pool =
  [|
    "quick"; "auction"; "rare"; "vintage"; "classic"; "mint"; "boxed"; "signed"; "large";
    "small"; "antique"; "modern"; "blue"; "red"; "green"; "heavy"; "light"; "royal"; "grand";
    "plain";
  |]

let first_names = [| "jane"; "john"; "hagen"; "mira"; "olaf"; "petra"; "sven"; "ines"; "takeshi"; "wen" |]
let last_names = [| "doe"; "poe"; "artosi"; "meier"; "smith"; "garcia"; "tanaka"; "olsen"; "kaur"; "li" |]
let countries = [| "germany"; "france"; "japan"; "brazil"; "canada"; "india"; "norway"; "spain" |]

let pick st arr = arr.(Random.State.int st (Array.length arr))

let words st n = String.concat " " (List.init n (fun _ -> pick st word_pool))

let money st = Printf.sprintf "%d.%02d" (1 + Random.State.int st 9999) (Random.State.int st 100)

(* ------------------------------------------------------------------ *)

(* Optional nested description structure (XMark's parlist/listitem
   recursion) — contributes the deep schema-path variety the paper's
   catalog counts (902 distinct paths) come from. *)
let gen_description st =
  if Random.State.float st 1.0 < 0.3 then
    T.elem "description"
      [
        T.elem "parlist"
          (List.init
             (1 + Random.State.int st 2)
             (fun _ ->
               T.elem "listitem"
                 [
                   (if Random.State.float st 1.0 < 0.25 then
                      T.elem "parlist" [ T.elem "listitem" [ T.elem_text "text" (words st 3) ] ]
                    else T.elem_text "text" (words st 3));
                 ]));
      ]
  else T.elem "description" [ T.elem_text "text" (words st 4) ]

let gen_item st ~region ~special_quantity ~special_category =
  let quantity =
    if special_quantity then "5"
    else begin
      let r = Random.State.float st 1.0 in
      if r < 0.51 then "1" else if r < 0.65 then "2" else if r < 0.85 then "3" else "4"
    end
  in
  let location =
    let r = Random.State.float st 1.0 in
    match region with
    | `Namerica -> if r < 0.6 then "united states" else if r < 0.75 then "United States" else pick st countries
    | `Other -> if r < 0.65 then "United States" else pick st countries
  in
  let n_incat = 1 + Random.State.int st 2 in
  let incategories =
    let special = T.elem "incategory" [ T.elem_text "category" "category440" ] in
    let normal () =
      T.elem "incategory" [ T.elem_text "category" (Printf.sprintf "category%d" (Random.State.int st 40)) ]
    in
    if special_category then special :: List.init (n_incat - 1) (fun _ -> normal ())
    else List.init n_incat (fun _ -> normal ())
  in
  let mails =
    List.init
      (1 + Random.State.int st 2)
      (fun i ->
        T.elem "mail"
          [
            T.elem_text "from" (pick st first_names ^ "@" ^ pick st countries ^ ".example");
            T.elem_text "to" (pick st first_names ^ "@" ^ pick st countries ^ ".example");
            T.elem_text "date" (Printf.sprintf "%02d/%02d/2000" (1 + Random.State.int st 12) (1 + (i mod 28)));
          ])
  in
  T.elem "item"
    ([
       T.attr "id" (Printf.sprintf "item%d" (Random.State.int st 1_000_000));
       T.elem_text "location" location;
       T.elem_text "quantity" quantity;
       T.elem_text "name" (words st 2);
       T.elem_text "payment" (if Random.State.bool st then "Creditcard" else "Cash");
       gen_description st;
     ]
    @ incategories
    @ (if Random.State.float st 1.0 < 0.2 then
         [ T.elem "shipping" [ T.elem_text "cost" (money st); T.elem_text "carrier" (pick st countries) ] ]
       else [])
    @ [ T.elem "mailbox" mails ])

let gen_person st ~special_income ~special_name i =
  let income =
    if special_income then "46814.17"
    else if Random.State.float st 1.0 < 0.2 then "9876.00"
    else money st
  in
  let name =
    if special_name then "Hagen Artosi" else pick st first_names ^ " " ^ pick st last_names
  in
  let profile =
    T.elem "profile"
      ([
         T.attr "income" income;
         T.elem_text "interest" (pick st word_pool);
         T.elem_text "education" (if Random.State.bool st then "Graduate School" else "College");
       ]
      @
      if Random.State.float st 1.0 < 0.3 then
        [ T.elem "business" [ T.elem_text "yes_no" (if Random.State.bool st then "Yes" else "No") ] ]
      else [])
  in
  let address =
    if Random.State.float st 1.0 < 0.4 then
      [
        T.elem "address"
          [
            T.elem_text "street" (words st 2);
            T.elem_text "city" (pick st countries);
            T.elem_text "country" (pick st countries);
          ];
      ]
    else []
  in
  let phone = if Random.State.float st 1.0 < 0.25 then [ T.elem_text "phone" (money st) ] else [] in
  let watches =
    if Random.State.float st 1.0 < 0.2 then
      [
        T.elem "watches"
          [ T.elem "watch" [ T.attr "open_auction" (Printf.sprintf "open_auction%d" (Random.State.int st 100)) ] ];
      ]
    else []
  in
  T.elem "person"
    ([
       T.attr "id" (Printf.sprintf "person%d" i);
       T.elem_text "name" name;
       T.elem_text "emailaddress"
         (String.lowercase_ascii (String.map (function ' ' -> '.' | c -> c) name) ^ "@example.org");
       profile;
     ]
    @ address @ phone @ watches)

let gen_open_auction st ~special_annotation ~n_people i =
  let increase =
    let r = Random.State.float st 1.0 in
    if r < 0.012 then "75.00" else if r < 0.45 then "3.00" else money st
  in
  let annot_person =
    if special_annotation then "person22082" else Printf.sprintf "person%d" (Random.State.int st n_people)
  in
  let bidders =
    List.init (Random.State.int st 4) (fun _ ->
        T.elem "bidder"
          [
            T.attr "increase" (if Random.State.float st 1.0 < 0.4 then "3.00" else money st);
            T.elem_text "date" (Printf.sprintf "%02d/%02d/2001" (1 + Random.State.int st 12) (1 + Random.State.int st 28));
          ])
  in
  let optional =
    (if Random.State.float st 1.0 < 0.3 then
       [ T.elem "itemref" [ T.attr "itemid" (Printf.sprintf "item%d" (Random.State.int st 1000)) ] ]
     else [])
    @ (if Random.State.float st 1.0 < 0.3 then
         [ T.elem "seller" [ T.attr "person" (Printf.sprintf "person%d" (Random.State.int st n_people)) ] ]
       else [])
    @ (if Random.State.float st 1.0 < 0.25 then
         [ T.elem "interval" [ T.elem_text "start" "01/01/2001"; T.elem_text "end" "12/31/2001" ] ]
       else [])
    @
    if Random.State.float st 1.0 < 0.2 then [ T.elem_text "privacy" "Yes" ] else []
  in
  T.elem "open_auction"
    ([
       T.attr "id" (Printf.sprintf "open_auction%d" i);
       T.attr "increase" increase;
       T.elem_text "initial" (money st);
       T.elem_text "current" (money st);
       T.elem "annotation" [ T.elem "author" [ T.attr "person" annot_person ] ];
       T.elem_text "time" (Printf.sprintf "%02d:%02d:00" (Random.State.int st 24) (Random.State.int st 60));
     ]
    @ optional @ bidders)

let gen_closed_auction st i =
  T.elem "closed_auction"
    [
      T.attr "id" (Printf.sprintf "closed_auction%d" i);
      T.elem_text "price" (money st);
      T.elem_text "date" (Printf.sprintf "%02d/%02d/1999" (1 + Random.State.int st 12) (1 + Random.State.int st 28));
      T.elem "buyer" [ T.attr "person" (Printf.sprintf "person%d" (Random.State.int st 100)) ];
    ]

(** Generate the document. The special (highly selective) values are
    planted deterministically: item #0 of namerica has quantity 5;
    person #7 has the unique income; person #3 the unique name;
    auctions #1, #2, #3 carry the special annotation; category440 is
    assigned with ~1.5% probability. *)
let generate (p : params) =
  let st = Random.State.make [| p.seed |] in
  let n_na = n_scaled p 550 and n_eu = n_scaled p 400 and n_as = n_scaled p 300 in
  let n_people = n_scaled p 640 in
  (* auctions are the workload's big unselective trunk (Q10x/Q11x pull
     every /time); keeping them numerous is what makes the Figure 12(d)
     merge-join-vs-INLJ tradeoff visible at laptop scale *)
  let n_auctions = max 5 (n_scaled p 1200) in
  let n_closed = n_scaled p 120 in
  let items region n =
    List.init n (fun i ->
        gen_item st ~region
          ~special_quantity:(region = `Namerica && i = 0)
          ~special_category:(Random.State.float st 1.0 < 0.015))
  in
  let region name region n = T.elem name (items region n) in
  let site =
    T.elem "site"
      [
        (* six regions, so a '//item' pattern matches six distinct
           schema paths — the paper's Figure 13 setup ("matches six
           subpaths in the data") *)
        T.elem "regions"
          [
            region "namerica" `Namerica n_na;
            region "europe" `Other n_eu;
            region "asia" `Other n_as;
            region "africa" `Other (n_scaled p 60);
            region "australia" `Other (n_scaled p 40);
            region "samerica" `Other (n_scaled p 80);
          ];
        T.elem "categories"
          (List.init 40 (fun i ->
               T.elem "category" [ T.attr "id" (Printf.sprintf "category%d" i); T.elem_text "name" (words st 1) ]));
        T.elem "people"
          (List.init n_people (fun i ->
               gen_person st ~special_income:(i = 7) ~special_name:(i = 3) i));
        T.elem "open_auctions"
          (List.init n_auctions (fun i ->
               gen_open_auction st ~special_annotation:(i >= 1 && i <= 3) ~n_people i));
        T.elem "closed_auctions" (List.init n_closed (gen_closed_auction st));
      ]
  in
  T.document [ site ]
