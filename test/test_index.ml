(* Tests for the index family and the baselines, including literal
   checks of the paper's Section 2.3 FreeIndex/BoundIndex examples and
   the Section 4 compression variants. *)

open Tm_storage
open Tm_xmldb
open Tm_index
module T = Tm_xml.Xml_tree

let check = Alcotest.check

(* Figure 1 example; ids: book=1 title=2 allauthors=3 author=4 fn=5
   ln=6 author=7 fn=8 ln=9 author=10 fn=11 ln=12 year=13. *)
let figure1_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem_text "title" "XML";
          T.elem "allauthors"
            [
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "poe" ];
              T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "doe" ];
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ];
            ];
          T.elem_text "year" "2000";
        ];
    ]

type ctx = {
  dict : Dictionary.t;
  catalog : Schema_catalog.t;
  pool : Buffer_pool.t;
  doc : T.document;
}

let make_ctx () =
  let doc = figure1_doc () in
  let pool = Buffer_pool.create ~capacity:4096 (Pager.create ()) in
  let dict = Dictionary.create () in
  let catalog = Schema_catalog.build dict doc in
  { dict; catalog; pool; doc }

let build ?idlist_codec ?head_filter ctx config =
  Family.build ?idlist_codec ?head_filter ~pool:ctx.pool ~dict:ctx.dict ~catalog:ctx.catalog
    config ctx.doc

let tags ctx names = Schema_path.of_list (List.map (fun n -> Option.get (Dictionary.find ctx.dict n)) names)


let scan_ids ?head ?value fam ~schema =
  List.sort compare
    (Family.scan fam ?head ?value ~schema (fun acc h -> h.Family.h_ids :: acc) [])

(* ------------------------------------------------------------------ *)
(* ROOTPATHS: the paper's FreeIndex example (Section 2.3)              *)
(* ------------------------------------------------------------------ *)

let test_rootpaths_freeindex_example () =
  (* "A lookup for the PCsubpath /book/allauthors/author[fn = 'jane']
     gives the id lists ([1,5,6,7], [1,5,41,42])" — with our numbering:
     [1;3;4;5] and [1;3;10;11]. *)
  let ctx = make_ctx () in
  let rp = build ctx Family.rootpaths in
  let schema = Family.Exact (tags ctx [ "book"; "allauthors"; "author"; "fn" ]) in
  let got = scan_ids rp ~value:(Some "jane") ~schema in
  check
    Alcotest.(list (list int))
    "jane id lists"
    [ [ 1; 3; 4; 5 ]; [ 1; 3; 10; 11 ] ]
    got;
  (* "[ln = 'doe'] gives ([1,5,21,25],[1,5,41,45])" -> [1;3;7;9],[1;3;10;12] *)
  let schema = Family.Exact (tags ctx [ "book"; "allauthors"; "author"; "ln" ]) in
  let got = scan_ids rp ~value:(Some "doe") ~schema in
  check
    Alcotest.(list (list int))
    "doe id lists"
    [ [ 1; 3; 7; 9 ]; [ 1; 3; 10; 12 ] ]
    got
  (* the author id (penultimate entry) is 4/10 vs 7/10: intersecting on
     it yields author 10, the paper's merge-join step *)

let test_rootpaths_recursive_lookup () =
  (* "//author[fn='jane']" = suffix probe on (jane, reverse FA) *)
  let ctx = make_ctx () in
  let rp = build ctx Family.rootpaths in
  let got =
    scan_ids rp ~value:(Some "jane") ~schema:(Family.Suffix (tags ctx [ "author"; "fn" ]))
  in
  check Alcotest.(list (list int)) "suffix probe" [ [ 1; 3; 4; 5 ]; [ 1; 3; 10; 11 ] ] got;
  (* structural (null) variant: //author/fn without value *)
  let got = scan_ids rp ~value:None ~schema:(Family.Suffix (tags ctx [ "author"; "fn" ])) in
  check Alcotest.int "three fn paths" 3 (List.length got)

let test_rootpaths_stores_prefixes () =
  (* unlike Index Fabric, prefix paths are present: /book alone works *)
  let ctx = make_ctx () in
  let rp = build ctx Family.rootpaths in
  check
    Alcotest.(list (list int))
    "/book" [ [ 1 ] ]
    (scan_ids rp ~value:None ~schema:(Family.Exact (tags ctx [ "book" ])))

(* ------------------------------------------------------------------ *)
(* DATAPATHS: the BoundIndex example (Sections 2.3 and 3.3)            *)
(* ------------------------------------------------------------------ *)

let test_datapaths_boundindex_example () =
  (* Probe for //author[ln = 'doe'] rooted at book id 1. *)
  let ctx = make_ctx () in
  let dp = build ctx Family.datapaths in
  let got =
    scan_ids dp ~head:1 ~value:(Some "doe")
      ~schema:(Family.Suffix (tags ctx [ "author"; "ln" ]))
  in
  (* id lists exclude the head: [3;7;9] and [3;10;12] *)
  check Alcotest.(list (list int)) "bound doe" [ [ 3; 7; 9 ]; [ 3; 10; 12 ] ] got;
  (* bound at the allauthors node (id 3) instead *)
  let got =
    scan_ids dp ~head:3 ~value:(Some "doe")
      ~schema:(Family.Suffix (tags ctx [ "author"; "ln" ]))
  in
  check Alcotest.(list (list int)) "bound at 3" [ [ 7; 9 ]; [ 10; 12 ] ] got;
  (* a different head yields nothing *)
  let got =
    scan_ids dp ~head:4 ~value:(Some "doe")
      ~schema:(Family.Suffix (tags ctx [ "author"; "ln" ]))
  in
  check Alcotest.(list (list int)) "author 4 has no doe" [] got

let test_datapaths_freeindex_via_virtual_root () =
  (* Section 3.3 footnote: head 0 solves FreeIndex *)
  let ctx = make_ctx () in
  let dp = build ctx Family.datapaths in
  let got =
    scan_ids dp ~head:0 ~value:(Some "jane")
      ~schema:(Family.Suffix (tags ctx [ "author"; "fn" ]))
  in
  check Alcotest.(list (list int)) "free via head 0" [ [ 1; 3; 4; 5 ]; [ 1; 3; 10; 11 ] ] got

let test_datapaths_requires_head () =
  let ctx = make_ctx () in
  let dp = build ctx Family.datapaths in
  match scan_ids dp ~value:(Some "jane") ~schema:Family.Any_schema with
  | exception Family.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported without a head"

(* ------------------------------------------------------------------ *)
(* DataGuide and Index Fabric semantics (Figure 3 rows)                *)
(* ------------------------------------------------------------------ *)

let test_dataguide_returns_last_ids () =
  let ctx = make_ctx () in
  let dg = build ctx Family.dataguide in
  let got =
    scan_ids dg ~value:None ~schema:(Family.Exact (tags ctx [ "book"; "allauthors"; "author" ]))
  in
  check Alcotest.(list (list int)) "author last ids" [ [ 4 ]; [ 7 ]; [ 10 ] ] got

let test_dataguide_cannot_suffix () =
  let ctx = make_ctx () in
  let dg = build ctx Family.dataguide in
  match scan_ids dg ~value:None ~schema:(Family.Suffix (tags ctx [ "author" ])) with
  | exception Family.Unsupported _ -> ()
  | _ -> Alcotest.fail "forward keys must reject suffix probes"

let test_index_fabric_path_value_lookup () =
  let ctx = make_ctx () in
  let ifab = build ctx Family.index_fabric in
  let got =
    scan_ids ifab ~value:(Some "jane")
      ~schema:(Family.Exact (tags ctx [ "book"; "allauthors"; "author"; "fn" ]))
  in
  check Alcotest.(list (list int)) "leaf ids only" [ [ 5 ]; [ 11 ] ] got;
  (* root-to-leaf only: no prefix paths stored *)
  let got = scan_ids ifab ~value:None ~schema:(Family.Exact (tags ctx [ "book" ])) in
  check Alcotest.(list (list int)) "no structural prefix" [] got;
  check Alcotest.bool "smaller than rootpaths" true
    (Family.entry_count ifab < Family.entry_count (build ctx Family.rootpaths))

(* ------------------------------------------------------------------ *)
(* Compression variants (Section 4)                                    *)
(* ------------------------------------------------------------------ *)

let test_raw_and_delta_agree () =
  let ctx = make_ctx () in
  let delta = build ~idlist_codec:`Delta ctx Family.rootpaths in
  let raw = build ~idlist_codec:`Raw ctx { Family.rootpaths with Family.cfg_name = "rp_raw" } in
  let probe fam =
    scan_ids fam ~value:(Some "doe") ~schema:(Family.Suffix (tags ctx [ "ln" ]))
  in
  check Alcotest.(list (list int)) "same answers" (probe delta) (probe raw)

let test_schema_compressed_exact_works_suffix_fails () =
  let ctx = make_ctx () in
  let rp = build ctx Family.rootpaths_schema_compressed in
  let exact = tags ctx [ "book"; "allauthors"; "author"; "fn" ] in
  check
    Alcotest.(list (list int))
    "exact ok"
    [ [ 1; 3; 4; 5 ]; [ 1; 3; 10; 11 ] ]
    (scan_ids rp ~value:(Some "jane") ~schema:(Family.Exact exact));
  match scan_ids rp ~value:(Some "jane") ~schema:(Family.Suffix (tags ctx [ "fn" ])) with
  | exception Family.Unsupported _ -> ()
  | _ -> Alcotest.fail "schema-id keys must reject '//'"

let test_head_pruning () =
  let ctx = make_ctx () in
  let full = build ctx Family.datapaths in
  let pruned =
    build
      ~head_filter:(fun h -> h = 1) (* keep only the book as a branch point *)
      ctx
      { Family.datapaths with Family.cfg_name = "dp_pruned" }
  in
  check Alcotest.bool "pruned smaller" true (Family.entry_count pruned < Family.entry_count full);
  (* probes at the retained head still work *)
  let probe fam head =
    scan_ids fam ~head ~value:(Some "doe") ~schema:(Family.Suffix (tags ctx [ "ln" ]))
  in
  check Alcotest.(list (list int)) "head 1 kept" (probe full 1) (probe pruned 1);
  (* probes at pruned heads are refused — a silent empty answer would
     be wrong, and the typed rejection is what triggers executor
     fallback (INLJ disabled there) *)
  (match probe pruned 3 with
  | _ -> Alcotest.fail "probe at a pruned head must raise Unsupported"
  | exception Family.Unsupported _ -> ());
  (* FreeIndex (virtual root) is always preserved *)
  check Alcotest.(list (list int)) "head 0 kept" (probe full 0) (probe pruned 0)

let test_idlist_pruning () =
  let ctx = make_ctx () in
  let full = build ctx Family.rootpaths in
  let keep_last =
    Family.build
      ~id_keep:(fun _ ids ->
        match List.rev ids with [] -> [] | last :: _ -> [ last ])
      ~pool:ctx.pool ~dict:ctx.dict ~catalog:ctx.catalog
      { Family.rootpaths with Family.cfg_name = "rp_lastonly" }
      ctx.doc
  in
  check Alcotest.bool "pruned not larger" true
    (Family.size_bytes keep_last <= Family.size_bytes full);
  let got =
    scan_ids keep_last ~value:(Some "jane") ~schema:(Family.Suffix (tags ctx [ "author"; "fn" ]))
  in
  (* only the leaf ids survive: branch extraction impossible *)
  check Alcotest.(list (list int)) "only leaf ids" [ [ 5 ]; [ 11 ] ] got

(* ------------------------------------------------------------------ *)
(* Value-range scans (Section 7 extension)                             *)
(* ------------------------------------------------------------------ *)

let range_ids ?head fam ctx ~lo ~hi ~suffix =
  List.sort compare
    (Family.scan_value_range fam ?head ~lo ~hi ~schema:(Family.Suffix (tags ctx suffix))
       (fun acc (h : Family.hit) -> h.Family.h_ids :: acc)
       [])

let test_rootpaths_value_range () =
  let ctx = make_ctx () in
  let rp = build ctx Family.rootpaths in
  (* fn values: jane, john, jane; range [jane, jane] hits both janes *)
  check
    Alcotest.(list (list int))
    "point range"
    [ [ 1; 3; 4; 5 ]; [ 1; 3; 10; 11 ] ]
    (range_ids rp ctx ~lo:(Some ("jane", true)) ~hi:(Some ("jane", true)) ~suffix:[ "fn" ]);
  (* exclusive lower bound drops jane, keeps john *)
  check
    Alcotest.(list (list int))
    "exclusive lo"
    [ [ 1; 3; 7; 8 ] ]
    (range_ids rp ctx ~lo:(Some ("jane", false)) ~hi:None ~suffix:[ "fn" ]);
  (* open range over ln: doe, doe, poe *)
  check Alcotest.int "open range" 3
    (List.length (range_ids rp ctx ~lo:None ~hi:None ~suffix:[ "ln" ]));
  (* prefix-extension false positives are filtered: hi = 'jan' must not
     include 'jane' *)
  check
    Alcotest.(list (list int))
    "prefix extension excluded" []
    (range_ids rp ctx ~lo:None ~hi:(Some ("jan", true)) ~suffix:[ "fn" ]
    |> List.filter (fun _ -> true))

let test_datapaths_bound_range () =
  let ctx = make_ctx () in
  let dp = build ctx Family.datapaths in
  (* range probe bound at allauthors(3): both doe rows *)
  check
    Alcotest.(list (list int))
    "bound range"
    [ [ 7; 9 ]; [ 10; 12 ] ]
    (range_ids ~head:3 dp ctx ~lo:(Some ("doe", true)) ~hi:(Some ("doe", true)) ~suffix:[ "ln" ])

let test_dataguide_range_unsupported () =
  let ctx = make_ctx () in
  let dg = build ctx Family.dataguide in
  match range_ids dg ctx ~lo:None ~hi:None ~suffix:[ "fn" ] with
  | exception Family.Unsupported _ -> ()
  | _ -> Alcotest.fail "DataGuide has no value component; range must be rejected"

let test_edge_value_range () =
  let ctx = make_ctx () in
  let edge = Edge_table.build ctx.pool ctx.dict ctx.doc in
  let tag name = Option.get (Dictionary.find ctx.dict name) in
  check Alcotest.(list int) "fn >= jane" [ 5; 8; 11 ]
    (List.sort compare
       (Edge_table.lookup_value_range edge ~tag:(tag "fn") ~lo:(Some ("jane", true)) ~hi:None));
  check Alcotest.(list int) "fn > jane" [ 8 ]
    (Edge_table.lookup_value_range edge ~tag:(tag "fn") ~lo:(Some ("jane", false)) ~hi:None);
  check Alcotest.int "range cardinality" 2
    (Edge_table.range_cardinality edge ~tag:(tag "ln") ~lo:(Some ("doe", true))
       ~hi:(Some ("doe", true)))

(* ------------------------------------------------------------------ *)
(* ASR and Join Indices                                                *)
(* ------------------------------------------------------------------ *)

let test_asr_relations () =
  let ctx = make_ctx () in
  let a = Asr.build ~pool:ctx.pool ~dict:ctx.dict ~catalog:ctx.catalog ctx.doc in
  check Alcotest.int "one relation per rooted path" (Schema_catalog.path_count ctx.catalog)
    (Asr.relation_count a);
  let path = tags ctx [ "book"; "allauthors"; "author"; "fn" ] in
  let tuples = List.sort compare (Asr.scan_relation a ~path ~value:(Some "jane") (fun acc t -> t :: acc) []) in
  check Alcotest.(list (list int)) "jane tuples" [ [ 1; 3; 4; 5 ]; [ 1; 3; 10; 11 ] ] tuples;
  let all = Asr.scan_relation a ~path (fun acc _ -> acc + 1) 0 in
  check Alcotest.int "all instances" 3 all;
  check Alcotest.int "matching // paths" 1
    (List.length (Asr.matching_paths a (tags ctx [ "fn" ])))

let test_join_index_lookups () =
  let ctx = make_ctx () in
  let ji = Join_index.build ~pool:ctx.pool ~dict:ctx.dict ~catalog:ctx.catalog ctx.doc in
  (* forward: from allauthors(3) along allauthors/author -> authors *)
  let p = tags ctx [ "allauthors"; "author" ] in
  check Alcotest.(list int) "forward" [ 4; 7; 10 ]
    (List.sort compare (Join_index.forward_lookup ji ~path:p ~start:3));
  check Alcotest.(list int) "backward" [ 3 ] (Join_index.backward_lookup ji ~path:p ~end_:7);
  (* rooted subpath book->fn *)
  let rooted = tags ctx [ "book"; "allauthors"; "author"; "fn" ] in
  check Alcotest.(list int) "rooted backward" [ 1 ]
    (Join_index.backward_lookup ji ~path:rooted ~end_:11);
  check Alcotest.int "all pairs" 3 (List.length (Join_index.all_pairs ji ~path:p));
  check Alcotest.bool "two trees per subpath" true (Join_index.pair_count ji > 0);
  (* a subpath absent from the data *)
  check Alcotest.(list int) "missing subpath" []
    (Join_index.forward_lookup ji ~path:(tags ctx [ "fn"; "ln" ]) ~start:5)

let suite =
  [
    ( "rootpaths",
      [
        Alcotest.test_case "FreeIndex example (paper 2.3)" `Quick test_rootpaths_freeindex_example;
        Alcotest.test_case "recursive suffix probe" `Quick test_rootpaths_recursive_lookup;
        Alcotest.test_case "stores prefixes" `Quick test_rootpaths_stores_prefixes;
      ] );
    ( "datapaths",
      [
        Alcotest.test_case "BoundIndex example (paper 2.3/3.3)" `Quick
          test_datapaths_boundindex_example;
        Alcotest.test_case "FreeIndex via virtual root" `Quick
          test_datapaths_freeindex_via_virtual_root;
        Alcotest.test_case "probe requires head" `Quick test_datapaths_requires_head;
      ] );
    ( "dataguide+fabric",
      [
        Alcotest.test_case "DataGuide last ids" `Quick test_dataguide_returns_last_ids;
        Alcotest.test_case "DataGuide rejects suffix" `Quick test_dataguide_cannot_suffix;
        Alcotest.test_case "Index Fabric (path,value)" `Quick test_index_fabric_path_value_lookup;
      ] );
    ( "compression",
      [
        Alcotest.test_case "raw = delta answers" `Quick test_raw_and_delta_agree;
        Alcotest.test_case "schema compression loses //" `Quick
          test_schema_compressed_exact_works_suffix_fails;
        Alcotest.test_case "head pruning" `Quick test_head_pruning;
        Alcotest.test_case "idlist pruning" `Quick test_idlist_pruning;
      ] );
    ( "ranges",
      [
        Alcotest.test_case "ROOTPATHS value range" `Quick test_rootpaths_value_range;
        Alcotest.test_case "DATAPATHS bound range" `Quick test_datapaths_bound_range;
        Alcotest.test_case "DataGuide rejects ranges" `Quick test_dataguide_range_unsupported;
        Alcotest.test_case "Edge value range" `Quick test_edge_value_range;
      ] );
    ( "baselines",
      [
        Alcotest.test_case "ASR relations" `Quick test_asr_relations;
        Alcotest.test_case "Join Index lookups" `Quick test_join_index_lookups;
      ] );
  ]

let () = Alcotest.run "tm_index" suite
