lib/xmldb/schema_path.mli: Dictionary
