(* Mutation-sequence differential oracle (paper Section 7): random
   interleaved subtree insertions and deletions applied to a random
   document, then every strategy checked against the naive evaluator on
   the mutated document AND against a database rebuilt from scratch —
   sequentially and on a shared 4-domain pool — with the structural
   checker (fsck) run over the mutated database. Failures shrink to a
   minimal document + op sequence + twig. *)

open Twigmatch
module T = Tm_xml.Xml_tree
module Twig = Tm_query.Twig
module Seed = Tm_testsupport.Seed
module Check = Tm_check.Check

(* Pure ASTs: generated and shrunk as plain data. Mutation ops address
   live nodes by a rank into the current document's pre-order element
   list, so shrinking an earlier op never invalidates a later one. *)

type xast = Node of string * xast list | Text of string * string | Attr of string * string
type mut = Ins of int * xast | Del of int
type tast = { tag : string; eq : string option; kids : (Twig.axis * tast) list }

let tags = [ "a"; "b"; "c" ]
let values = [ "u"; "v"; "w" ]

let rec tree_of = function
  | Node (t, cs) -> T.elem t (List.map tree_of cs)
  | Text (t, v) -> T.elem_text t v
  | Attr (t, v) -> T.elem t [ T.attr "at" v ]

let doc_of roots = T.document (List.map tree_of roots)

let rec spec_of (t : tast) =
  Twig.spec ?value:t.eq t.tag (List.map (fun (ax, c) -> (ax, spec_of c)) t.kids)

let rec mark (s : Twig.spec) =
  match s.Twig.s_branches with
  | [] -> { s with Twig.s_output = true }
  | branches ->
    let rec last_marked acc = function
      | [] -> assert false
      | [ (ax, c) ] -> List.rev ((ax, mark c) :: acc)
      | b :: rest -> last_marked (b :: acc) rest
    in
    { s with Twig.s_branches = last_marked [] branches }

let twig_of (root_axis, t) = Twig.make root_axis (mark (spec_of t))

(* ------------------------------------------------------------------ *)
(* Applying a mutation sequence                                        *)
(* ------------------------------------------------------------------ *)

(* Element nodes of the live document in pre-order: insertion targets. *)
let element_ids (db : Database.t) =
  List.rev
    (T.fold db.Database.doc
       (fun acc n -> match n.T.label with T.Elem _ -> n.T.id :: acc | _ -> acc)
       [])

(* Deletion candidates: element nodes that are not document roots
   (Updates rejects root deletion by design). *)
let deletable (db : Database.t) =
  let roots = Array.to_list (Array.map (fun (r : T.node) -> r.T.id) db.Database.doc.T.roots) in
  List.filter (fun id -> not (List.mem id roots)) (element_ids db)

(* Apply one op; [true] when it mutated the database. Ranks are taken
   modulo the candidate count, so every generated op is valid — an
   escaping [Invalid_argument] is a genuine bug, not a skip. *)
let apply_op db op =
  match op with
  | Ins (k, ast) ->
    let parents = element_ids db in
    let parent = List.nth parents (k mod List.length parents) in
    ignore (Updates.insert_subtree db ~parent (tree_of ast));
    true
  | Del k -> (
    match deletable db with
    | [] -> false
    | cands ->
      ignore (Updates.delete_subtree db (List.nth cands (k mod List.length cands)));
      true)

(* Rebuild-from-scratch reference: re-render the mutated tree as pure
   constructors and renumber through [T.document]. *)
let rec copy (n : T.node) =
  match n.T.label with
  | T.Value v -> T.text v
  | T.Elem t -> T.elem t (List.map copy (Array.to_list n.T.children))
  | T.Attr a -> T.attr a (Option.value ~default:"" (T.leaf_value n))

let rebuilt_doc (db : Database.t) =
  T.document (List.map copy (Array.to_list db.Database.doc.T.roots))

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_doc =
  let open QCheck.Gen in
  let tag = oneofl tags and value = oneofl values in
  let rec node depth =
    if depth = 0 then map2 (fun t v -> Text (t, v)) tag value
    else
      frequency
        [
          (2, map2 (fun t v -> Text (t, v)) tag value);
          (1, map2 (fun t v -> Attr (t, v)) tag value);
          (3, map2 (fun t cs -> Node (t, cs)) tag (list_size (int_range 1 3) (node (depth - 1))));
        ]
  in
  list_size (int_range 1 2) (node 3)

let gen_ops =
  let open QCheck.Gen in
  let tag = oneofl tags and value = oneofl values in
  let rec sub depth =
    if depth = 0 then map2 (fun t v -> Text (t, v)) tag value
    else
      frequency
        [
          (2, map2 (fun t v -> Text (t, v)) tag value);
          (1, map2 (fun t v -> Attr (t, v)) tag value);
          (2, map2 (fun t cs -> Node (t, cs)) tag (list_size (int_range 1 2) (sub (depth - 1))));
        ]
  in
  let rank = int_bound 999 in
  list_size (int_range 1 6)
    (frequency
       [ (3, map2 (fun k s -> Ins (k, s)) rank (sub 2)); (2, map (fun k -> Del k) rank) ])

let gen_twig =
  let open QCheck.Gen in
  let tag = oneofl ("at" :: tags) and value = oneofl values in
  let axis = frequency [ (3, return Twig.Child); (1, return Twig.Descendant) ] in
  let rec node depth =
    let* t = tag in
    let* eq = frequency [ (2, return None); (1, map Option.some value) ] in
    let* kids =
      if depth = 0 then return []
      else
        let* n = int_range 0 2 in
        list_repeat n (pair axis (node (depth - 1)))
    in
    return { tag = t; eq; kids }
  in
  pair axis (node 2)

(* ------------------------------------------------------------------ *)
(* Shrinkers                                                           *)
(* ------------------------------------------------------------------ *)

let rec shrink_xast x yield =
  match x with
  | Node (t, cs) ->
    List.iter yield cs;
    QCheck.Shrink.list ~shrink:shrink_xast cs (fun cs' -> yield (Node (t, cs')))
  | Text _ | Attr _ -> ()

let shrink_doc roots yield =
  QCheck.Shrink.list ~shrink:shrink_xast roots (fun rs -> if rs <> [] then yield rs)

let shrink_mut m yield =
  match m with
  | Ins (k, ast) ->
    if k > 0 then yield (Ins (0, ast));
    shrink_xast ast (fun ast' -> yield (Ins (k, ast')))
  | Del k -> if k > 0 then yield (Del 0)

let shrink_ops ops yield = QCheck.Shrink.list ~shrink:shrink_mut ops yield

let rec shrink_tast t yield =
  (match t.eq with Some _ -> yield { t with eq = None } | None -> ());
  List.iter (fun (_, c) -> yield c) t.kids;
  QCheck.Shrink.list
    ~shrink:(fun (ax, c) yield ->
      (match ax with Twig.Descendant -> yield (Twig.Child, c) | Twig.Child -> ());
      shrink_tast c (fun c' -> yield (ax, c')))
    t.kids
    (fun kids' -> yield { t with kids = kids' })

let shrink_case (roots, ops, (ax, t)) yield =
  shrink_ops ops (fun ops' -> yield (roots, ops', (ax, t)));
  shrink_doc roots (fun rs -> yield (rs, ops, (ax, t)));
  (match ax with Twig.Descendant -> yield (roots, ops, (Twig.Child, t)) | Twig.Child -> ());
  shrink_tast t (fun t' -> yield (roots, ops, (ax, t')))

let rec xast_to_string = function
  | Node (t, cs) ->
    Printf.sprintf "%s(%s)" t (String.concat "," (List.map xast_to_string cs))
  | Text (t, v) -> Printf.sprintf "%s=%s" t v
  | Attr (t, v) -> Printf.sprintf "%s@%s" t v

let mut_to_string = function
  | Ins (k, ast) -> Printf.sprintf "ins@%d %s" k (xast_to_string ast)
  | Del k -> Printf.sprintf "del@%d" k

let print_case (roots, ops, rt) =
  Printf.sprintf "twig: %s\nops:  %s\ndoc:  %s"
    (Twig.to_string (twig_of rt))
    (String.concat "; " (List.map mut_to_string ops))
    (T.to_string (doc_of roots))

let arb_case =
  QCheck.make ~print:print_case ~shrink:shrink_case
    QCheck.Gen.(triple gen_doc gen_ops gen_twig)

(* ------------------------------------------------------------------ *)
(* The property                                                        *)
(* ------------------------------------------------------------------ *)

let jobs = 4
let shared_pool = lazy (Tm_par.Pool.create ~jobs)

let () =
  at_exit (fun () -> if Lazy.is_val shared_pool then Tm_par.Pool.shutdown (Lazy.force shared_pool))

let ids_to_string ids = String.concat ";" (List.map string_of_int ids)

let check_oracle ~what ~pool db twig =
  let expected = Tm_query.Naive.query db.Database.doc twig in
  List.iter
    (fun s ->
      let seq = (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids in
      let par = (Executor.run ~pool ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids in
      if seq <> expected then
        QCheck.Test.fail_reportf "%s: sequential %s diverges on %s:\n  oracle [%s]\n  got    [%s]"
          what (Database.strategy_name s) (Twig.to_string twig) (ids_to_string expected)
          (ids_to_string seq);
      if par <> expected then
        QCheck.Test.fail_reportf "%s: jobs=%d %s diverges on %s:\n  oracle [%s]\n  got    [%s]"
          what jobs (Database.strategy_name s) (Twig.to_string twig) (ids_to_string expected)
          (ids_to_string par))
    Database.all_strategies;
  expected

let prop_mutation_differential =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "random insert/delete sequences = oracle = rebuild, sequential and jobs=%d" jobs)
    ~count:40 arb_case
    (fun (roots, ops, rt) ->
      let doc = doc_of roots in
      let twig = twig_of rt in
      let db = Database.create doc in
      let g0 = Database.generation db in
      let applied = List.fold_left (fun n op -> if apply_op db op then n + 1 else n) 0 ops in
      if applied > 0 && Database.generation db = g0 then
        QCheck.Test.fail_reportf
          "%d mutation(s) applied but the index generation never moved" applied;
      (* Structural invariants of every index survive the sequence. *)
      let report = Check.check_database db in
      if not (Check.is_clean report) then
        QCheck.Test.fail_reportf "fsck after %d op(s):\n%s" applied
          (Check.report_to_string report);
      let pool = Lazy.force shared_pool in
      let incremental = check_oracle ~what:"incremental" ~pool db twig in
      (* Rebuild from scratch over the mutated tree: ids differ (the
         rebuild renumbers), the match multiset must not. *)
      let db2 = Database.create (rebuilt_doc db) in
      let rebuilt = check_oracle ~what:"rebuilt" ~pool db2 twig in
      if List.length incremental <> List.length rebuilt then
        QCheck.Test.fail_reportf
          "incremental database finds %d match(es), rebuilt finds %d on %s"
          (List.length incremental) (List.length rebuilt) (Twig.to_string twig);
      true)

let () =
  Alcotest.run "updates_diff" [ ("mutation oracle", [ Seed.to_alcotest prop_mutation_differential ]) ]
