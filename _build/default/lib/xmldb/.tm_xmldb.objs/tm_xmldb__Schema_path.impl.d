lib/xmldb/schema_path.ml: Array Buffer Dictionary List Stdlib String
