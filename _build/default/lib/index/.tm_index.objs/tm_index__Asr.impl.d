lib/index/asr.ml: Bptree Buffer_pool Codec Hashtbl List Path_relation Schema_catalog Schema_path String Tm_storage Tm_xmldb
