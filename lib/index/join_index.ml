(** Join Indices (Valduriez), adapted to XML paths as in the paper's
    Section 5.2.6 baseline.

    One join-index {e pair} per distinct subpath schema path present in
    the data: a join index stores only the (start, end) node-id pairs of
    a subpath, and to be able to return intermediate nodes (and to
    support both join directions) it must keep {e two} B+-trees per
    subpath — a forward index (start -> end) and a backward index
    (end -> start). This doubling is why the paper measures Join
    Indices as the most space-hungry structure (Figure 9), and the
    one-structure-per-schema-path layout is why [//] patterns touch
    many structures (Figure 13). *)

open Tm_storage
open Tm_xmldb

type pair = { jp_path : Schema_path.t; forward : Bptree.t; backward : Bptree.t }

type t = {
  pairs : (string, pair) Hashtbl.t; (* encoded subpath -> index pair *)
  catalog : Schema_catalog.t;
  pool : Buffer_pool.t; (* kept so updates can materialize new pairs *)
}

let build ~pool ~dict ~catalog doc =
  (* Collect (head, tail) per distinct subpath schema path. Subpaths of
     length 1 (head = tail) and the virtual-root rows are skipped: a
     join index relates two distinct path endpoints. *)
  let groups : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 1024 in
  Path_relation.fold_all_rows doc dict
    (fun () (row : Path_relation.row) ->
      if Option.is_none row.Path_relation.value && row.Path_relation.head <> 0 then begin
        match List.rev row.Path_relation.idlist with
        | [] -> () (* length-1 subpath: the head itself *)
        | tail :: _ ->
          let enc = Schema_path.encode row.Path_relation.schema in
          let bucket =
            match Hashtbl.find_opt groups enc with
            | Some b -> b
            | None ->
              let b = ref [] in
              Hashtbl.replace groups enc b;
              b
          in
          bucket := (row.Path_relation.head, tail) :: !bucket
      end)
    ();
  let pairs = Hashtbl.create (Hashtbl.length groups) in
  Hashtbl.iter
    (fun enc bucket ->
      let jp_path = Schema_path.decode enc in
      let fwd_entries =
        List.map (fun (h, t') -> (Codec.u32_to_string h, Codec.u32_to_string t')) !bucket
      in
      let bwd_entries =
        List.map (fun (h, t') -> (Codec.u32_to_string t', Codec.u32_to_string h)) !bucket
      in
      let forward =
        Bptree.bulk_load ~name:("ji_fwd:" ^ enc) pool (List.sort Codec.compare_kv fwd_entries)
      in
      let backward =
        Bptree.bulk_load ~name:("ji_bwd:" ^ enc) pool (List.sort Codec.compare_kv bwd_entries)
      in
      Hashtbl.replace pairs enc { jp_path; forward; backward })
    groups;
  { pairs; catalog; pool }

(** Number of subpath relations; the structure count is twice this. *)
let pair_count t = Hashtbl.length t.pairs

(** All forward/backward trees (fsck support). *)
let trees t = Hashtbl.fold (fun _ p acc -> p.forward :: p.backward :: acc) t.pairs []

let size_bytes t =
  Hashtbl.fold
    (fun _ p acc -> acc + Bptree.size_bytes p.forward + Bptree.size_bytes p.backward)
    t.pairs 0

let find_pair t path = Hashtbl.find_opt t.pairs (Schema_path.encode path)

(** Ends reachable from [start] along subpath [path] (forward lookup). *)
let forward_lookup t ~path ~start =
  match find_pair t path with
  | None -> []
  | Some p ->
    Bptree.lookup_all p.forward (Codec.u32_to_string start)
    |> List.map (fun s -> fst (Codec.read_u32 s 0))

(** Starts that reach [end_] along subpath [path] (backward lookup). *)
let backward_lookup t ~path ~end_ =
  match find_pair t path with
  | None -> []
  | Some p ->
    Bptree.lookup_all p.backward (Codec.u32_to_string end_)
    |> List.map (fun s -> fst (Codec.read_u32 s 0))

(** All (start, end) pairs of subpath [path] (full forward scan). *)
let all_pairs t ~path =
  match find_pair t path with
  | None -> []
  | Some p ->
    List.rev
      (Bptree.fold_range p.forward ~lo:"" ~hi:None
         (fun acc k v -> (fst (Codec.read_u32 k 0), fst (Codec.read_u32 v 0)) :: acc)
         [])

(** Distinct {e subpath} schema paths equal to the tag sequence [tags]
    (there is at most one — subpaths are identified by their tags), if
    materialized. *)
let has_subpath t tags = Option.is_some (find_pair t (Schema_path.of_list tags))

(** Fold over all materialized subpath schema paths. *)
let fold_paths t f acc = Hashtbl.fold (fun _ p acc -> f acc p.jp_path) t.pairs acc

(** Materialized subpath schemas whose first tag is [head_tag] and that
    match [pred] — the relations a bound [//] probe must consider. *)
(* ------------------------------------------------------------------ *)
(* Incremental maintenance                                             *)
(* ------------------------------------------------------------------ *)

(* The (subpath, head, tail) triples one node contributes: one per
   proper ancestor head (the same rows the bulk build groups). *)
let node_pairs (info : Tm_xmldb.Shred.node_info) =
  Path_relation.node_all_rows info
  |> List.filter_map (fun (row : Path_relation.row) ->
         if Option.is_some row.Path_relation.value || row.Path_relation.head = 0 then None
         else
           match List.rev row.Path_relation.idlist with
           | [] -> None
           | tail :: _ -> Some (row.Path_relation.schema, row.Path_relation.head, tail))

(** Index one new node, creating subpath pairs as needed. *)
let insert_node t info =
  List.iter
    (fun (schema, head, tail) ->
      let enc = Schema_path.encode schema in
      let pair =
        match Hashtbl.find_opt t.pairs enc with
        | Some p -> p
        | None ->
          let p =
            {
              jp_path = schema;
              forward = Bptree.create ~name:("ji_fwd:" ^ enc) t.pool;
              backward = Bptree.create ~name:("ji_bwd:" ^ enc) t.pool;
            }
          in
          Hashtbl.replace t.pairs enc p;
          p
      in
      Bptree.insert pair.forward (Codec.u32_to_string head) (Codec.u32_to_string tail);
      Bptree.insert pair.backward (Codec.u32_to_string tail) (Codec.u32_to_string head))
    (node_pairs info)

(** Un-index a node (empty pairs are kept; harmless). *)
let remove_node t info =
  List.iter
    (fun (schema, head, tail) ->
      match Hashtbl.find_opt t.pairs (Schema_path.encode schema) with
      | Some pair ->
        ignore (Bptree.delete pair.forward (Codec.u32_to_string head) (Codec.u32_to_string tail));
        ignore (Bptree.delete pair.backward (Codec.u32_to_string tail) (Codec.u32_to_string head))
      | None -> ())
    (node_pairs info)

let subpaths_from t ~head_tag pred =
  fold_paths t
    (fun acc p ->
      match Schema_path.to_list p with
      | t0 :: _ when t0 = head_tag && pred p -> p :: acc
      | _ -> acc)
    []
