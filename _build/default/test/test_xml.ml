(* Tests for the XML substrate: tree model, numbering, parser, printer. *)

module T = Tm_xml.Xml_tree
module P = Tm_xml.Xml_parser

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Tree model and numbering                                            *)
(* ------------------------------------------------------------------ *)

let figure1_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem_text "title" "XML";
          T.elem "allauthors"
            [
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "poe" ];
              T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "doe" ];
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ];
            ];
          T.elem_text "year" "2000";
        ];
    ]

let test_preorder_numbering () =
  (* Figure 1(b): book=1, title=2, allauthors=5, first author=6, fn=7 *)
  let doc = figure1_doc () in
  let id_of name =
    T.fold doc (fun acc n -> if T.label_name n = name && acc = None then Some n.T.id else acc) None
  in
  check Alcotest.(option int) "book" (Some 1) (id_of "book");
  check Alcotest.(option int) "title" (Some 2) (id_of "title");
  check Alcotest.(option int) "allauthors" (Some 3) (id_of "allauthors");
  check Alcotest.(option int) "author" (Some 4) (id_of "author");
  check Alcotest.(option int) "fn" (Some 5) (id_of "fn")

let test_ids_unique_and_contiguous () =
  let doc = figure1_doc () in
  let ids = T.fold doc (fun acc n -> if T.is_value n then acc else n.T.id :: acc) [] in
  let sorted = List.sort compare ids in
  check Alcotest.(list int) "contiguous from 1" (List.init (List.length ids) (fun i -> i + 1)) sorted

let test_value_leaves_unnumbered () =
  let doc = figure1_doc () in
  T.iter doc (fun n -> if T.is_value n then check Alcotest.int "no id" T.no_id n.T.id)

let test_counts_and_depth () =
  let doc = figure1_doc () in
  check Alcotest.int "elements" 13 (T.element_count doc);
  check Alcotest.int "values" 8 (T.value_count doc);
  check Alcotest.int "depth" 5 (T.depth doc)

let test_leaf_value () =
  let doc = figure1_doc () in
  let title = Option.get (T.find_by_id doc 2) in
  check Alcotest.(option string) "title value" (Some "XML") (T.leaf_value title)

let test_forest_numbering () =
  let doc = T.document [ T.elem_text "a" "1"; T.elem_text "b" "2" ] in
  check Alcotest.int "two roots" 2 (Array.length doc.T.roots);
  check Alcotest.int "first root id" 1 doc.T.roots.(0).T.id;
  check Alcotest.int "second root id" 2 doc.T.roots.(1).T.id

let test_attr_is_node () =
  let doc = T.document [ T.elem "e" [ T.attr "income" "9876.00" ] ] in
  let attr =
    T.fold doc (fun acc n -> match n.T.label with T.Attr _ -> Some n | _ -> acc) None
  in
  let attr = Option.get attr in
  check Alcotest.string "attr name" "income" (T.label_name attr);
  check Alcotest.(option string) "attr value" (Some "9876.00") (T.leaf_value attr);
  check Alcotest.int "attr id" 2 attr.T.id

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_simple () =
  let doc = P.parse "<a><b>hello</b><c/></a>" in
  check Alcotest.int "elements" 3 (T.element_count doc);
  check Alcotest.int "values" 1 (T.value_count doc)

let test_parse_attributes () =
  let doc = P.parse {|<item id="i1" price='10'><name>x</name></item>|} in
  let attrs =
    T.fold doc (fun acc n -> match n.T.label with T.Attr a -> a :: acc | _ -> acc) []
  in
  check Alcotest.(list string) "attrs" [ "price"; "id" ] attrs

let test_parse_entities () =
  let doc = P.parse "<a>x &amp; y &lt;z&gt; &quot;q&quot; &apos;s&apos;</a>" in
  let v = T.leaf_value doc.T.roots.(0) in
  check Alcotest.(option string) "decoded" (Some "x & y <z> \"q\" 's'") v

let test_parse_comments_and_decl () =
  let doc = P.parse "<?xml version=\"1.0\"?><!-- top --><a><!-- in --><b/></a>" in
  check Alcotest.int "elements" 2 (T.element_count doc)

let test_parse_forest () =
  let doc = P.parse "<a/><b/><c/>" in
  check Alcotest.int "roots" 3 (Array.length doc.T.roots)

let test_parse_whitespace () =
  let doc = P.parse "<a>\n  <b>  spaced text  </b>\n</a>" in
  let b = doc.T.roots.(0).T.children.(0) in
  check Alcotest.(option string) "trimmed" (Some "spaced text") (T.leaf_value b)

let test_parse_errors () =
  let expect_fail s =
    match P.parse s with
    | exception P.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  List.iter expect_fail
    [ "<a>"; "<a></b>"; "text only"; "<a attr></a>"; "<a>&unknown;</a>"; "" ]

let test_roundtrip_figure1 () =
  let doc = figure1_doc () in
  let doc2 = P.parse (T.to_string doc) in
  check Alcotest.int "elements" (T.element_count doc) (T.element_count doc2);
  check Alcotest.int "values" (T.value_count doc) (T.value_count doc2);
  check Alcotest.string "stable print" (T.to_string doc) (T.to_string doc2)

(* qcheck: random trees survive print -> parse. *)
let gen_tree =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "bb"; "ccc"; "item"; "name_x" ] in
  let value = oneofl [ "v"; "hello world"; "x & y"; "<tag>"; "quote\"s" ] in
  let rec node depth =
    if depth = 0 then map T.text value
    else
      frequency
        [
          (2, map T.text value);
          (1, map2 T.attr tag value);
          ( 3,
            map2 (fun t cs -> T.elem t cs) tag (list_size (int_range 0 3) (node (depth - 1))) );
        ]
  in
  map
    (fun roots -> T.document (List.map (fun n -> T.elem "root" [ n ]) roots))
    (list_size (int_range 1 3) (node 3))

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip preserves structure" ~count:100
    (QCheck.make gen_tree) (fun doc ->
      (* attribute/value children may be reordered textually (attributes
         print first); compare structural counts and a second print *)
      let doc2 = P.parse (T.to_string doc) in
      T.element_count doc = T.element_count doc2
      && T.depth doc = T.depth doc2
      && T.to_string doc2 = T.to_string (P.parse (T.to_string doc2)))

let prop_preorder_parent_before_child =
  QCheck.Test.make ~name:"pre-order: parents numbered before children" ~count:100
    (QCheck.make gen_tree) (fun doc ->
      let ok = ref true in
      T.fold_with_ancestors doc
        (fun () ~ancestors n ->
          if not (T.is_value n) then
            List.iter
              (fun (a : T.node) -> if a.T.id >= n.T.id then ok := false)
              ancestors)
        ();
      !ok)

let suite =
  [
    ( "tree",
      [
        Alcotest.test_case "figure 1(b) pre-order ids" `Quick test_preorder_numbering;
        Alcotest.test_case "ids unique and contiguous" `Quick test_ids_unique_and_contiguous;
        Alcotest.test_case "value leaves unnumbered" `Quick test_value_leaves_unnumbered;
        Alcotest.test_case "counts and depth" `Quick test_counts_and_depth;
        Alcotest.test_case "leaf value" `Quick test_leaf_value;
        Alcotest.test_case "forest numbering" `Quick test_forest_numbering;
        Alcotest.test_case "attribute nodes" `Quick test_attr_is_node;
        qtest prop_preorder_parent_before_child;
      ] );
    ( "parser",
      [
        Alcotest.test_case "simple" `Quick test_parse_simple;
        Alcotest.test_case "attributes" `Quick test_parse_attributes;
        Alcotest.test_case "entities" `Quick test_parse_entities;
        Alcotest.test_case "comments and declaration" `Quick test_parse_comments_and_decl;
        Alcotest.test_case "forest" `Quick test_parse_forest;
        Alcotest.test_case "whitespace trimming" `Quick test_parse_whitespace;
        Alcotest.test_case "malformed inputs rejected" `Quick test_parse_errors;
        Alcotest.test_case "figure 1 roundtrip" `Quick test_roundtrip_figure1;
        qtest prop_print_parse_roundtrip;
      ] );
  ]

let () = Alcotest.run "tm_xml" suite
