(* Fixture: raw page-array I/O with no registered failpoint — the
   failpoint-coverage pass must flag the unguarded read. *)

type t = { mutable pages : bytes array }

let read t i = t.pages.(i)
