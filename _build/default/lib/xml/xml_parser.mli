(** Parser for the XML subset used by this reproduction: elements,
    attributes, text, self-closing tags, comments, XML declarations,
    the five predefined entities. Multiple top-level elements parse to
    a forest. *)

exception Parse_error of string

val parse : string -> Xml_tree.document
(** @raise Parse_error on malformed input. *)
