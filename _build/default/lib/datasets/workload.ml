(** The paper's query workload (Figures 7, 8 and 10).

    Queries are stated as XPath strings over the generated datasets;
    literal values are the generators' analogues of the paper's
    (Figure 7/8) constants. [group] ties each query to the figure whose
    experiment uses it. *)

type dataset = Xmark | Dblp

type query = {
  name : string;
  dataset : dataset;
  xpath : string;
  branches : int;  (** the paper's "Num. of Branches" axis *)
  group : string;  (** experiment family, see Figure 10 *)
}

let q name dataset xpath branches group = { name; dataset; xpath; branches; group }

(* Single fully-specified path queries, selectivity sweep (Fig. 11). *)
let q1x = q "Q1x" Xmark "/site/regions/namerica/item/quantity[. = '5']" 1 "single-path"
let q2x = q "Q2x" Xmark "/site/regions/namerica/item/quantity[. = '2']" 1 "single-path"
let q3x = q "Q3x" Xmark "/site/regions/namerica/item/quantity[. = '1']" 1 "single-path"
let q1d = q "Q1d" Dblp "/inproceedings/year[. = '1950']" 1 "single-path"
let q2d = q "Q2d" Dblp "/inproceedings/year[. = '1979']" 1 "single-path"
let q3d = q "Q3d" Dblp "/inproceedings/year[. = '1998']" 1 "single-path"

(* Baselines for the branch sweeps: the shared first branch. *)
let base_selective =
  q "B1" Xmark "/site/people/person/profile[@income = '46814.17']" 1 "twig-selective"

let base_unselective =
  q "B2" Xmark "/site/people/person/profile[@income = '9876.00']" 1 "twig-unselective"

(* Twig queries with high branch points (Fig. 12(a)-(c)). *)
let q4x =
  q "Q4x" Xmark
    "/site[people/person/profile/@income = '46814.17']/open_auctions/open_auction[@increase = '75.00']"
    2 "twig-selective"

let q5x =
  q "Q5x" Xmark
    "/site[people/person/profile/@income = '46814.17'][people/person/name = 'Hagen Artosi']/open_auctions/open_auction[@increase = '75.00']"
    3 "twig-selective"

let q6x =
  q "Q6x" Xmark
    "/site[people/person/profile/@income = '9876.00']/open_auctions/open_auction[@increase = '75.00']"
    2 "twig-mixed"

let q7x =
  q "Q7x" Xmark
    "/site[people/person/profile/@income = '9876.00'][regions/namerica/item/location = 'united states']/open_auctions/open_auction[@increase = '75.00']"
    3 "twig-mixed"

let q8x =
  q "Q8x" Xmark
    "/site[people/person/profile/@income = '9876.00']/open_auctions/open_auction[@increase = '3.00']"
    2 "twig-unselective"

let q9x =
  q "Q9x" Xmark
    "/site[people/person/profile/@income = '9876.00'][regions/namerica/item/location = 'united states']/open_auctions/open_auction[@increase = '3.00']"
    3 "twig-unselective"

(* Twig queries with low branch points (Fig. 12(d)). *)
let q10x =
  q "Q10x" Xmark
    "/site/open_auctions/open_auction[annotation/author/@person = 'person22082']/time" 2
    "twig-low-branch"

let q11x =
  q "Q11x" Xmark
    "/site/open_auctions/open_auction[annotation/author/@person = 'person22082'][bidder/@increase = '3.00']/time"
    3 "twig-low-branch"

(* Branching twigs with one recursion (Fig. 8 / Fig. 13). *)
let q12x =
  q "Q12x" Xmark "/site//item[incategory/category = 'category440']/mailbox/mail/date" 2
    "recursive-mixed"

let q13x =
  q "Q13x" Xmark
    "/site//item[incategory/category = 'category440'][mailbox/mail/to]/mailbox/mail/date" 3
    "recursive-mixed"

let q14x =
  q "Q14x" Xmark "/site//item[quantity = '2'][location = 'United States']" 2
    "recursive-unselective"

let q15x =
  q "Q15x" Xmark
    "/site//item[quantity = '2'][location = 'United States']/mailbox/mail/to" 3
    "recursive-unselective"

let all =
  [
    q1x; q2x; q3x; q1d; q2d; q3d; base_selective; base_unselective; q4x; q5x; q6x; q7x; q8x;
    q9x; q10x; q11x; q12x; q13x; q14x; q15x;
  ]

let find name =
  match List.find_opt (fun query -> String.equal query.name name) all with
  | Some query -> query
  | None -> invalid_arg ("Workload.find: unknown query " ^ name)

let xmark_queries = List.filter (fun query -> query.dataset = Xmark) all
let dblp_queries = List.filter (fun query -> query.dataset = Dblp) all

(** Section 5.2.4: the recursive variants — the same queries with the
    leading [/] turned into [//]. *)
let recursive_variant query = { query with name = query.name ^ "r"; xpath = "/" ^ query.xpath }

let parse query = Tm_query.Xpath_parser.parse query.xpath
