lib/core/database.mli: Asr Buffer_pool Dictionary Edge_table Family Join_index Pager Schema_catalog Tm_index Tm_storage Tm_xml Tm_xmldb
