lib/exec/relation.ml: Array Hashtbl List Option
