lib/xmldb/dictionary.mli:
