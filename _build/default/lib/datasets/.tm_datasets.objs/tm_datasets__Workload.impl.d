lib/datasets/workload.ml: List String Tm_query
