(** Always-on flight recorder: a per-domain ring of typed,
    nanosecond-stamped events capturing the {e sequence} of cross-layer
    activity — span open/close, WAL frames, pager transactions and
    epochs, admission decisions, breaker flips — that aggregate metrics
    cannot explain after the fact.

    Design constraints, in order:

    {ul
    {- {b One atomic load when disabled.} Every [emit] is gated on a
       single [Atomic.get] before anything — no timestamp, no DLS
       lookup, no allocation — the same contract as {!Obs} and
       {!Journal}, so instrumented hot paths are safe to leave wired
       permanently.}
    {- {b Lock-free recording.} Each domain owns its ring
       (domain-local storage), so writers never contend: one slot
       store plus one [Atomic.set] of the ring's write counter per
       event. There is no reader/writer lock anywhere on the emit
       path.}
    {- {b Seqlock-style reads.} A snapshot reads the write counter,
       copies the window, then re-reads the counter and discards any
       slot the writer may have overwritten or been writing in the
       interim. Dumps taken while every domain is still emitting (the
       crash case) are therefore torn-free without ever stalling a
       writer.}}

    The post-mortem dump reuses the WAL's framing discipline — magic,
    kind byte, length, payload, CRC32 — so a dump truncated by the
    dying process is still readable up to the damage, exactly like log
    recovery. *)

(* ------------------------------------------------------------------ *)
(* Event vocabulary                                                    *)
(* ------------------------------------------------------------------ *)

type kind =
  | Span_begin  (** trace-root span opened; [detail] = span name *)
  | Span_end  (** trace-root span closed; [detail] = span name, [a] = elapsed ns *)
  | Query_begin  (** [a] = jobs *)
  | Query_end  (** [a] = rows, [b] = replans *)
  | Replan  (** [a] = replan ordinal, [detail] = planner note *)
  | Fault_hit  (** [detail] = fault site *)
  | Wal_append  (** [a] = frame kind byte, [b] = frame bytes *)
  | Wal_fsync
  | Wal_commit  (** [a] = transaction id *)
  | Wal_truncate  (** [a] = surviving bytes *)
  | Txn_begin  (** [a] = pager transaction epoch *)
  | Txn_commit  (** [a] = published epoch, [b] = dirty pages *)
  | Txn_abort  (** [a] = abandoned epoch, [b] = pages restored *)
  | Epoch_publish  (** [a] = epoch now visible to new pins *)
  | Epoch_pin  (** [a] = pinned epoch *)
  | Epoch_unpin  (** [a] = released epoch *)
  | Epoch_prune  (** [a] = horizon epoch, [b] = versions reclaimed *)
  | Pool_evict  (** [a] = evicted page id *)
  | Pool_retry  (** [a] = attempt number, [detail] = why *)
  | Checkpoint  (** [a] = last transaction folded into the heap *)
  | Poisoned  (** [detail] = the poisoning error *)
  | Task_begin  (** pool task started on a worker domain *)
  | Task_end  (** [a] = elapsed ns *)
  | Sem_acquire  (** [a] = permits in use after the acquire *)
  | Sem_park  (** [a] = waiters at park time *)
  | Sem_timeout  (** [a] = expired budget, ms *)
  | Cancel_deadline  (** [a] = expired budget, ms *)
  | Cancel_explicit  (** [detail] = reason *)
  | Breaker_open  (** [a] = consecutive failures, [detail] = failure class *)
  | Breaker_half_open
  | Breaker_close
  | Breaker_reject
  | Req_begin  (** [a] = request id, [b] = permits in use *)
  | Req_end  (** [a] = HTTP status *)
  | Shed  (** [a] = 0 queue-limit, 1 p99, 2 deadline; [detail] = note *)
  | Dump  (** [detail] = dump reason *)
  | Plan_build  (** [a] = estimated rows, [b] = override count, [detail] = reason *)
  | Unknown  (** decoded from a newer writer; never emitted *)

(* Codes are the on-disk encoding: append-only, never renumber. *)
let kind_code = function
  | Span_begin -> 0
  | Span_end -> 1
  | Query_begin -> 2
  | Query_end -> 3
  | Replan -> 4
  | Fault_hit -> 5
  | Wal_append -> 6
  | Wal_fsync -> 7
  | Wal_commit -> 8
  | Wal_truncate -> 9
  | Txn_begin -> 10
  | Txn_commit -> 11
  | Txn_abort -> 12
  | Epoch_publish -> 13
  | Epoch_pin -> 14
  | Epoch_unpin -> 15
  | Epoch_prune -> 16
  | Pool_evict -> 17
  | Pool_retry -> 18
  | Checkpoint -> 19
  | Poisoned -> 20
  | Task_begin -> 21
  | Task_end -> 22
  | Sem_acquire -> 23
  | Sem_park -> 24
  | Sem_timeout -> 25
  | Cancel_deadline -> 26
  | Cancel_explicit -> 27
  | Breaker_open -> 28
  | Breaker_half_open -> 29
  | Breaker_close -> 30
  | Breaker_reject -> 31
  | Req_begin -> 32
  | Req_end -> 33
  | Shed -> 34
  | Dump -> 35
  | Plan_build -> 36
  | Unknown -> 255

let kinds =
  [|
    Span_begin; Span_end; Query_begin; Query_end; Replan; Fault_hit; Wal_append;
    Wal_fsync; Wal_commit; Wal_truncate; Txn_begin; Txn_commit; Txn_abort;
    Epoch_publish; Epoch_pin; Epoch_unpin; Epoch_prune; Pool_evict; Pool_retry;
    Checkpoint; Poisoned; Task_begin; Task_end; Sem_acquire; Sem_park; Sem_timeout;
    Cancel_deadline; Cancel_explicit; Breaker_open; Breaker_half_open; Breaker_close;
    Breaker_reject; Req_begin; Req_end; Shed; Dump; Plan_build;
  |]

let kind_of_code c = if c >= 0 && c < Array.length kinds then kinds.(c) else Unknown

let kind_name = function
  | Span_begin -> "span.begin"
  | Span_end -> "span.end"
  | Query_begin -> "query.begin"
  | Query_end -> "query.end"
  | Replan -> "plan.replan"
  | Fault_hit -> "fault.hit"
  | Wal_append -> "wal.append"
  | Wal_fsync -> "wal.fsync"
  | Wal_commit -> "wal.commit"
  | Wal_truncate -> "wal.truncate"
  | Txn_begin -> "txn.begin"
  | Txn_commit -> "txn.commit"
  | Txn_abort -> "txn.abort"
  | Epoch_publish -> "epoch.publish"
  | Epoch_pin -> "epoch.pin"
  | Epoch_unpin -> "epoch.unpin"
  | Epoch_prune -> "epoch.prune"
  | Pool_evict -> "pool.evict"
  | Pool_retry -> "pool.retry"
  | Checkpoint -> "durable.checkpoint"
  | Poisoned -> "durable.poisoned"
  | Task_begin -> "task.begin"
  | Task_end -> "task.end"
  | Sem_acquire -> "sem.acquire"
  | Sem_park -> "sem.park"
  | Sem_timeout -> "sem.timeout"
  | Cancel_deadline -> "cancel.deadline"
  | Cancel_explicit -> "cancel.explicit"
  | Breaker_open -> "breaker.open"
  | Breaker_half_open -> "breaker.half_open"
  | Breaker_close -> "breaker.close"
  | Breaker_reject -> "breaker.reject"
  | Req_begin -> "req.begin"
  | Req_end -> "req.end"
  | Shed -> "shed"
  | Dump -> "dump"
  | Plan_build -> "plan.build"
  | Unknown -> "unknown"

type event = {
  e_domain : int;  (** recording domain's id *)
  e_seq : int;  (** per-domain sequence number (dense, ascending) *)
  e_ts_ns : int;  (** monotonic-clock nanoseconds (comparable across domains) *)
  e_trace : int;  (** ambient trace id; 0 = none *)
  e_kind : kind;
  e_a : int;
  e_b : int;
  e_detail : string;
}

(* ------------------------------------------------------------------ *)
(* Per-domain rings                                                    *)
(* ------------------------------------------------------------------ *)

(* Interleaved slots: one unboxed int array holds the five numeric
   fields of a slot contiguously ([slots] stride per event), so a hot
   emit dirties a single cache line rather than five — measured, that
   halves the enabled cost on a cache-cold path. Details go in a
   separate string array (pointer stores need the write barrier
   anyway). A slot at index [i mod capacity] holds event number [i];
   [r_written] counts events ever written and is bumped {e after} the
   slot stores, so a reader that observes [r_written = w] can trust
   every index below [w] that the writer has not since lapped (the
   seqlock discard). *)
let stride = 5 (* ts, kind, trace, a, b *)

type ring = {
  r_domain : int;
  r_capacity : int;
  r_cols : int array;  (** [capacity * stride] interleaved numeric fields *)
  r_detail : string array;
  r_written : int Atomic.t;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let default_capacity = 1024
let capacity_ref = Atomic.make default_capacity

(* Rings of exited domains are kept on purpose: a worker that died
   mid-request is exactly what a post-mortem wants to see. The registry
   is bounded so ephemeral pool domains cannot grow it without limit —
   past the cap the oldest rings (long-dead domains, in practice) are
   dropped. *)
let max_rings = 256
let rings_lock = Mutex.create ()
let rings : ring list ref = ref [] [@@analyze.guarded_by "rings_lock"]

let ring_key : ring option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let make_ring domain capacity =
  {
    r_domain = domain;
    r_capacity = capacity;
    r_cols = Array.make (capacity * stride) 0;
    r_detail = Array.make capacity "";
    r_written = Atomic.make 0;
  }

let rec take n = function
  | [] -> []
  | _ :: _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let my_ring () =
  let slot = Domain.DLS.get ring_key in
  match !slot with
  | Some r -> r
  | None ->
    let r = make_ring (Domain.self () :> int) (max 8 (Atomic.get capacity_ref)) in
    Mutex.protect rings_lock (fun () -> rings := take max_rings (r :: !rings));
    slot := Some r;
    r

let enable ?capacity () =
  (match capacity with
  | None -> ()
  | Some c ->
    if c < 8 then invalid_arg "Flight.enable: capacity must be >= 8";
    Atomic.set capacity_ref c);
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let with_enabled on f =
  let saved = Atomic.get enabled_flag in
  Atomic.set enabled_flag on;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag saved) f

let clear () =
  Mutex.protect rings_lock (fun () -> rings := []);
  Domain.DLS.get ring_key := None

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let record r trace kind a b detail =
  let ts = Int64.to_int (Monotonic_clock.now ()) in
  let w = Atomic.get r.r_written in
  let i = w mod r.r_capacity in
  let base = i * stride in
  r.r_cols.(base) <- ts;
  r.r_cols.(base + 1) <- kind_code kind;
  r.r_cols.(base + 2) <- trace;
  r.r_cols.(base + 3) <- a;
  r.r_cols.(base + 4) <- b;
  r.r_detail.(i) <- detail;
  (* The release store the seqlock read validates against. *)
  Atomic.set r.r_written (w + 1)

(* The two emit entry points do nothing — not even read the clock —
   until the single atomic load passes, so a disabled recorder costs
   one predictable branch per instrumented site. *)
let emit kind a b detail =
  if Atomic.get enabled_flag then
    let trace = match Context.get () with Some id -> id | None -> 0 in
    record (my_ring ()) trace kind a b detail

let emit_traced trace kind a b detail =
  if Atomic.get enabled_flag then record (my_ring ()) trace kind a b detail

(* ------------------------------------------------------------------ *)
(* Seqlock snapshot                                                    *)
(* ------------------------------------------------------------------ *)

(* Copy the window below [w1], then re-read the counter: every event
   the writer wrote or may still be writing after our first read lives
   at index >= w1, aliasing slots of events below [w2 + 1 - capacity]
   — those copies are potentially torn and are discarded. Everything
   kept was fully published before our first counter read. *)
let snapshot_ring r =
  let cap = r.r_capacity in
  let w1 = Atomic.get r.r_written in
  let lo1 = max 0 (w1 - cap) in
  let n = w1 - lo1 in
  if n = 0 then []
  else begin
    let cols = Array.make (n * stride) 0 and d = Array.make n "" in
    for j = 0 to n - 1 do
      let i = (lo1 + j) mod cap in
      Array.blit r.r_cols (i * stride) cols (j * stride) stride;
      d.(j) <- r.r_detail.(i)
    done;
    let w2 = Atomic.get r.r_written in
    let lo = max lo1 (w2 + 1 - cap) in
    let out = ref [] in
    for j = n - 1 downto lo - lo1 do
      let base = j * stride in
      out :=
        {
          e_domain = r.r_domain;
          e_seq = lo1 + j;
          e_ts_ns = cols.(base);
          e_trace = cols.(base + 2);
          e_kind = kind_of_code cols.(base + 1);
          e_a = cols.(base + 3);
          e_b = cols.(base + 4);
          e_detail = d.(j);
        }
        :: !out
    done;
    !out
  end

let all_rings () = Mutex.protect rings_lock (fun () -> !rings)

let by_domain () =
  all_rings ()
  |> List.rev_map (fun r -> (r.r_domain, snapshot_ring r))
  |> List.filter (fun (_, es) -> match es with [] -> false | _ :: _ -> true)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* One merged timeline: per-domain order is preserved (stable sort on
   a globally comparable clock), which is what lets one trace id be
   followed across the accept domain, the workers and the WAL. *)
let snapshot () =
  by_domain ()
  |> List.concat_map snd
  |> List.stable_sort (fun x y ->
         match Int.compare x.e_ts_ns y.e_ts_ns with
         | 0 -> (
           match Int.compare x.e_domain y.e_domain with
           | 0 -> Int.compare x.e_seq y.e_seq
           | c -> c)
         | c -> c)

let total_events () =
  List.fold_left (fun acc r -> acc + Atomic.get r.r_written) 0 (all_rings ())

(* ------------------------------------------------------------------ *)
(* Dump codec                                                          *)
(* ------------------------------------------------------------------ *)

(* Self-contained varint + CRC32 (this library sits below the storage
   codec, so it cannot borrow it). CRC32 is the standard reflected
   polynomial — same one the WAL uses — over kind byte ^ payload.
   Built eagerly: a lazy block would be forced unsynchronized from
   every dumping domain. *)

let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32_string s =
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := crc_table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

let add_varint buf n =
  if n < 0 then invalid_arg "Flight.add_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let add_zigzag buf n = add_varint buf ((n lsl 1) lxor (n asr 62))

let add_lstring buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let read_varint s pos =
  let rec go acc shift pos =
    if pos >= String.length s then failwith "truncated varint";
    let b = Char.code s.[pos] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then (acc, pos + 1) else go acc (shift + 7) (pos + 1)
  in
  go 0 0 pos

let read_zigzag s pos =
  let v, pos = read_varint s pos in
  ((v lsr 1) lxor (-(v land 1)), pos)

let read_lstring s pos =
  let n, pos = read_varint s pos in
  if pos + n > String.length s then failwith "truncated string";
  (String.sub s pos n, pos + n)

let dump_magic = "FB" (* flight black-box frame *)
let dump_version = 1

let add_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let read_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let add_frame buf kind payload =
  Buffer.add_string buf dump_magic;
  Buffer.add_char buf kind;
  add_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  add_u32 buf (crc32_string (String.make 1 kind ^ payload))

let encode_events buf events =
  add_varint buf (List.length events);
  let prev = ref 0 in
  List.iter
    (fun e ->
      (* Timestamps are monotonic per domain, so delta-coding keeps
         frames compact; the first delta is the absolute stamp. *)
      add_varint buf (e.e_ts_ns - !prev);
      prev := e.e_ts_ns;
      add_varint buf (kind_code e.e_kind);
      add_varint buf e.e_trace;
      add_zigzag buf e.e_a;
      add_zigzag buf e.e_b;
      add_lstring buf e.e_detail)
    events

let encode_dump ~reason domains =
  let buf = Buffer.create 4096 in
  let header = Buffer.create 64 in
  add_varint header dump_version;
  add_varint header (Unix.getpid ());
  add_lstring header reason;
  add_lstring header (Printf.sprintf "%.6f" (Unix.gettimeofday ()));
  add_frame buf 'H' (Buffer.contents header);
  let total = ref 0 in
  List.iter
    (fun (domain, events) ->
      match events with
      | [] -> ()
      | first :: _ ->
        let body = Buffer.create 1024 in
        add_varint body domain;
        add_varint body first.e_seq;
        encode_events body events;
        add_frame buf 'D' (Buffer.contents body);
        total := !total + List.length events)
    domains;
  let footer = Buffer.create 8 in
  add_varint footer !total;
  add_frame buf 'E' (Buffer.contents footer);
  Buffer.contents buf

type dump_file = {
  d_version : int;
  d_pid : int;
  d_reason : string;
  d_time : float;
  d_domains : (int * event list) list;
  d_total : int;  (** footer count; -1 when the footer never made it *)
  d_damaged : string option;  (** [Some why] when the scan stopped at damage *)
}

let decode_events ~domain ~start_seq payload pos =
  let count, pos = read_varint payload pos in
  let rec go acc prev_ts seq pos = function
    | 0 -> List.rev acc
    | k ->
      let dts, pos = read_varint payload pos in
      let ts = prev_ts + dts in
      let kc, pos = read_varint payload pos in
      let trace, pos = read_varint payload pos in
      let a, pos = read_zigzag payload pos in
      let b, pos = read_zigzag payload pos in
      let detail, pos = read_lstring payload pos in
      let e =
        {
          e_domain = domain;
          e_seq = seq;
          e_ts_ns = ts;
          e_trace = trace;
          e_kind = kind_of_code kc;
          e_a = a;
          e_b = b;
          e_detail = detail;
        }
      in
      go (e :: acc) ts (seq + 1) pos (k - 1)
  in
  go [] 0 start_seq pos count

let parse_dump s =
  let len = String.length s in
  let header = ref None in
  let domains = ref [] in
  let total = ref (-1) in
  let damaged = ref None in
  let damage pos why = damaged := Some (Printf.sprintf "offset %d: %s" pos why) in
  let rec frames pos =
    if pos < len then
      if pos + 7 > len then damage pos "truncated frame header"
      else if not (String.equal (String.sub s pos 2) dump_magic) then
        damage pos "bad frame magic"
      else begin
        let kind = s.[pos + 2] in
        let plen = read_u32 s (pos + 3) in
        let body_at = pos + 7 in
        if body_at + plen + 4 > len then damage pos "truncated frame body"
        else begin
          let payload = String.sub s body_at plen in
          let crc = read_u32 s (body_at + plen) in
          if crc <> crc32_string (String.make 1 kind ^ payload) then
            damage pos "frame CRC mismatch"
          else begin
            (match kind with
            | 'H' ->
              let version, p = read_varint payload 0 in
              let pid, p = read_varint payload p in
              let reason, p = read_lstring payload p in
              let time, _ = read_lstring payload p in
              header := Some (version, pid, reason, float_of_string time)
            | 'D' ->
              let domain, p = read_varint payload 0 in
              let start_seq, p = read_varint payload p in
              let events = decode_events ~domain ~start_seq payload p in
              domains := (domain, events) :: !domains
            | 'E' ->
              let n, _ = read_varint payload 0 in
              total := n
            | _ -> () (* unknown frame kind: forward-compatible skip *));
            frames (body_at + plen + 4)
          end
        end
      end
  in
  (try frames 0 with Failure why -> damage 0 ("malformed payload: " ^ why));
  match !header with
  | None -> failwith "Flight.parse_dump: no valid header frame"
  | Some (version, pid, reason, time) ->
    {
      d_version = version;
      d_pid = pid;
      d_reason = reason;
      d_time = time;
      d_domains = List.sort (fun (a, _) (b, _) -> Int.compare a b) !domains;
      d_total = !total;
      d_damaged = !damaged;
    }

let load_dump path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_dump (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Dump triggers                                                       *)
(* ------------------------------------------------------------------ *)

type last_dump = {
  ld_path : string;
  ld_reason : string;
  ld_time : float;  (** wall clock, Unix epoch seconds *)
  ld_events : int;
  ld_domains : int;
}

let dump_path_ref : string option Atomic.t = Atomic.make None
let last_dump_ref : last_dump option Atomic.t = Atomic.make None
let set_dump_path p = Atomic.set dump_path_ref p
let dump_path () = Atomic.get dump_path_ref
let last_dump () = Atomic.get last_dump_ref

(* Write-to-temp + rename: a dump interrupted mid-write (the process
   is, after all, dying) never clobbers the previous complete one. *)
let dump_to ~path ~reason =
  let domains = by_domain () in
  let data = encode_dump ~reason domains in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data);
  Sys.rename tmp path;
  Atomic.set last_dump_ref
    (Some
       {
         ld_path = path;
         ld_reason = reason;
         ld_time = Unix.gettimeofday ();
         ld_events = List.fold_left (fun acc (_, es) -> acc + List.length es) 0 domains;
         ld_domains = List.length domains;
       })

(* Automatic trigger: records a [Dump] event (so the dump explains
   itself) and snapshots every ring to the configured path. Errors are
   swallowed — a failing post-mortem must never mask the original
   incident. *)
let dump ~reason =
  if not (Atomic.get enabled_flag) then None
  else
    match Atomic.get dump_path_ref with
    | None -> None
    | Some path -> (
      emit Dump 0 0 reason;
      match dump_to ~path ~reason with
      | () -> Some path
      | exception _ -> None)

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)
(* ------------------------------------------------------------------ *)

let event_to_string ?(t0 = 0) e =
  let buf = Buffer.create 96 in
  Buffer.add_string buf
    (Printf.sprintf "%12.3fus d%-3d #%-6d %-18s" (float_of_int (e.e_ts_ns - t0) /. 1e3)
       e.e_domain e.e_seq (kind_name e.e_kind));
  if e.e_trace <> 0 then Buffer.add_string buf (Printf.sprintf " trace=%d" e.e_trace);
  if e.e_a <> 0 then Buffer.add_string buf (Printf.sprintf " a=%d" e.e_a);
  if e.e_b <> 0 then Buffer.add_string buf (Printf.sprintf " b=%d" e.e_b);
  if not (String.equal e.e_detail "") then
    Buffer.add_string buf (Printf.sprintf " %s" e.e_detail);
  Buffer.contents buf

let merge_events domains =
  List.concat_map snd domains
  |> List.stable_sort (fun x y ->
         match Int.compare x.e_ts_ns y.e_ts_ns with
         | 0 -> (
           match Int.compare x.e_domain y.e_domain with
           | 0 -> Int.compare x.e_seq y.e_seq
           | c -> c)
         | c -> c)

let render_dump d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "flight dump v%d  pid %d  reason %S  %d domain(s), %d event(s)\n"
       d.d_version d.d_pid d.d_reason (List.length d.d_domains)
       (List.fold_left (fun acc (_, es) -> acc + List.length es) 0 d.d_domains));
  (match d.d_damaged with
  | Some why -> Buffer.add_string buf (Printf.sprintf "  DAMAGED: %s\n" why)
  | None -> ());
  let merged = merge_events d.d_domains in
  let t0 = match merged with e :: _ -> e.e_ts_ns | [] -> 0 in
  List.iter
    (fun e ->
      Buffer.add_string buf (event_to_string ~t0 e);
      Buffer.add_char buf '\n')
    merged;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)
(* ------------------------------------------------------------------ *)

let env_var = "TWIGMATCH_FLIGHT"
let env_dump_var = "TWIGMATCH_FLIGHT_DUMP"

(* TWIGMATCH_FLIGHT=1 enables at link time with the default per-domain
   capacity; a larger N is taken as the capacity. TWIGMATCH_FLIGHT_DUMP
   names the post-mortem path (and implies enabling). Mirrors the
   journal's env contract so the CI leg can run the whole suite with
   the recorder live. *)
let install_env () =
  (match Sys.getenv_opt env_var with
  | None -> ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 8 -> enable ~capacity:n ()
    | Some n when n >= 1 -> enable ()
    | Some _ -> ()
    | None ->
      (* Below Obs, so no warning ring: stderr, like the default
         warn handler. *)
      Printf.eprintf "warning: [flight.env] ignoring %s=%S: expected a capacity\n%!"
        env_var s));
  match Sys.getenv_opt env_dump_var with
  | None -> ()
  | Some "" -> ()
  | Some path ->
    set_dump_path (Some path);
    enable ()

let () = install_env ()
