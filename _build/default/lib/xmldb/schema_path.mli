(** Schema paths: tag-id sequences, outermost first (paper Section 3.1).
    The encoded form concatenates 2-byte designators, so byte-prefix
    matching on the reversed encoding is exactly tag-suffix matching on
    the path — the mechanism behind ROOTPATHS/DATAPATHS [//] support. *)

type t = int array

val empty : t
val length : t -> int
val of_list : int list -> t
val to_list : t -> int list
val append : t -> int -> t
val equal : t -> t -> bool
val reverse : t -> t

val suffix : t -> int -> t
(** Last [k] tags. @raise Invalid_argument if [k > length]. *)

val drop_last : t -> int -> t
val has_suffix : t -> t -> bool
val has_prefix : t -> t -> bool

val encode : t -> string
val encode_reversed : t -> string
val decode : string -> t
(** @raise Invalid_argument on odd-length input. *)

val decode_reversed : string -> t

val to_string : Dictionary.t -> t -> string
(** Human-readable, e.g. ["/site/regions/item"]. *)

val compare : t -> t -> int
