(** The durable write path: a write-ahead-logged database directory.

    A durable handle owns a directory holding a Persist v2 snapshot
    ([snapshot.twig]) and a {!Tm_wal.Wal} redo log ([wal.log]). Every
    {!insert_subtree} / {!delete_subtree} is one logged transaction:

    + [Begin txn] and an [Op] frame carrying the logical operation
      (parent id + encoded subtree, or deleted node id) are appended;
    + a pager transaction is opened ({!Tm_storage.Pager.begin_txn}) and
      the update executes through {!Updates} — page writes go through
      the buffer pool's transactional write-through, installing
      copy-on-write versions for epoch-pinned readers;
    + the post-image of every dirtied page is appended as a [Page]
      frame (with its CRC32), then [Commit txn];
    + the log is fsynced ({e before} the transaction is acknowledged —
      unless inside {!batch}, which group-commits with one fsync);
    + the pager transaction commits, atomically publishing the new
      epoch to concurrent readers, and [Database.last_txn] advances.

    Recovery ({!open_}) loads the snapshot, scans the log's valid
    prefix (torn and bad-CRC tails are discarded), and {e re-executes}
    the logical operations of every committed transaction newer than
    the snapshot's [last_txn], in commit order. The update path is
    deterministic (id assignment, dictionary interning, heap append and
    B+-tree insertion depend only on database state), so replay
    reproduces the original pages exactly; the logged [Page] CRCs are
    cross-checked against the recovered pager images after each
    transaction, turning any divergence into {!Recovery_error} instead
    of silent corruption. Partially-logged transactions (a [Begin]
    without its [Commit] in the valid prefix) are never replayed and
    are truncated away.

    {!checkpoint} folds the log into a fresh snapshot: flush the buffer
    pool, write the snapshot (fsync + atomic rename + directory fsync,
    see {!Persist.save}), truncate the log, and stamp it with a
    [Checkpoint] frame. A crash anywhere in that sequence is safe: the
    old snapshot survives until the rename, the new one is durable
    {e before} the truncate can reach the disk (so the log's
    transactions are never lost to a truncated WAL beside a missing
    snapshot), and transactions both in the snapshot and still in the
    log are skipped by the [last_txn] watermark.

    Failure handling is two-tier. A validation failure
    ([Invalid_argument] from {!Updates} before any page was dirtied)
    aborts cleanly: the pager transaction rolls back and the handle
    remains usable — the dangling [Begin]/[Op] frames are harmless
    because recovery ignores uncommitted transactions. Any other
    mid-transaction failure (an I/O fault after pages were dirtied)
    rolls back the pager but {e poisons} the handle: the in-memory
    dictionary, catalog and document cannot be rolled back reliably, so
    every subsequent operation raises {!Poisoned} and the recovery
    path is to {!open_} the directory again — which is exactly the
    guarantee the log exists to provide.

    The handle serializes writers with an internal mutex (single-writer
    discipline); readers never take it — they run against epoch-pinned
    snapshots (see {!Tm_storage.Epoch}). *)

open Tm_storage
module Wal = Tm_wal.Wal
module T = Tm_xml.Xml_tree

let c_txns = Tm_obs.Obs.counter "durable.txns"
let c_replayed_txns = Tm_obs.Obs.counter "durable.replayed_txns"
let c_checkpoints = Tm_obs.Obs.counter "durable.checkpoints"
let c_clean_aborts = Tm_obs.Obs.counter "durable.clean_aborts"
let c_poisoned = Tm_obs.Obs.counter "durable.poisoned"

(* Fired between logging a transaction's frames and its [Commit]
   append: a [Fail] here is the canonical "crash before commit" for
   the CI kill matrix — the logged frames stay uncommitted and
   recovery discards them. *)
let site_commit = "wal.commit"

exception Recovery_error of string
exception Poisoned of string

let () =
  Printexc.register_printer (function
    | Recovery_error s -> Some (Printf.sprintf "Durable.Recovery_error(%s)" s)
    | Poisoned s -> Some (Printf.sprintf "Durable.Poisoned(%s)" s)
    | _ -> None)

let recovery_error fmt = Printf.ksprintf (fun s -> raise (Recovery_error s)) fmt

let snapshot_file = "snapshot.twig"
let wal_file = "wal.log"
let snapshot_path dir = Filename.concat dir snapshot_file
let wal_path dir = Filename.concat dir wal_file

type t = {
  dir : string;
  db : Database.t;
  wal : Wal.t;
  lock : Mutex.t;  (** single-writer discipline over txn state below *)
  mutable next_txn : int;
  mutable batch_depth : int;
  mutable unsynced : bool;  (** committed frames awaiting the batch fsync *)
  mutable poisoned : string option;
}

let database t = t.db
let dir t = t.dir

type wal_status = { log_bytes : int; last_txn : int; poisoned : string option }

(* A consistent read of the write-path health for /healthz: log growth
   since the last checkpoint (checkpoint truncates the log), the last
   committed transaction, and whether a mid-transaction failure
   poisoned the handle. *)
let wal_status t =
  Mutex.protect t.lock (fun () ->
      {
        log_bytes = Wal.size_bytes t.wal;
        last_txn = t.next_txn - 1;
        poisoned = t.poisoned;
      })

(* /metrics mirror of /healthz's wal block, so the two can never
   diverge: the most recently opened handle registers itself and the
   gauges sample {!wal_status} at scrape time. With no live handle the
   gauges read NaN, which the exporters skip. *)
let current : t option Atomic.t = Atomic.make None

let status_gauge f () =
  match Atomic.get current with None -> Float.nan | Some t -> f (wal_status t)

let () =
  Tm_obs.Obs.gauge "wal.log_bytes_since_checkpoint"
    (status_gauge (fun s -> float_of_int s.log_bytes));
  Tm_obs.Obs.gauge "wal.last_txn" (status_gauge (fun s -> float_of_int s.last_txn));
  Tm_obs.Obs.gauge "wal.poisoned"
    (status_gauge (fun s -> if Option.is_some s.poisoned then 1.0 else 0.0))

(* ------------------------------------------------------------------ *)
(* Logical-operation codec (the WAL [Op] payload)                      *)
(* ------------------------------------------------------------------ *)

(* Subtree codec: kind byte ('E'lem | 'A'ttr | 'V'alue) + name/value +
   child count. Node ids are deliberately absent — replay re-executes
   through [Updates.insert_subtree], which assigns the same fresh ids
   the original execution did (from the recovered [next_id]). *)
let rec encode_node buf (n : T.node) =
  match n.T.label with
  | T.Value v ->
    Buffer.add_char buf 'V';
    Codec.add_lstring buf v
  | T.Elem name ->
    Buffer.add_char buf 'E';
    Codec.add_lstring buf name;
    Codec.add_varint buf (Array.length n.T.children);
    Array.iter (encode_node buf) n.T.children
  | T.Attr name ->
    Buffer.add_char buf 'A';
    Codec.add_lstring buf name;
    Codec.add_varint buf (Array.length n.T.children);
    Array.iter (encode_node buf) n.T.children

let rec decode_node s pos =
  if pos >= String.length s then invalid_arg "Durable: truncated op payload";
  let kind = s.[pos] in
  match kind with
  | 'V' ->
    let v, pos = Codec.read_lstring s (pos + 1) in
    ({ T.id = T.no_id; label = T.Value v; children = [||] }, pos)
  | 'E' | 'A' ->
    let name, pos = Codec.read_lstring s (pos + 1) in
    let count, pos = Codec.read_varint s pos in
    if count < 0 || count > String.length s - pos then
      invalid_arg "Durable: implausible child count in op payload";
    let children = Array.make count { T.id = T.no_id; label = T.Value ""; children = [||] } in
    let pos = ref pos in
    for i = 0 to count - 1 do
      let child, p = decode_node s !pos in
      children.(i) <- child;
      pos := p
    done;
    let label = if Char.equal kind 'E' then T.Elem name else T.Attr name in
    ({ T.id = T.no_id; label; children }, !pos)
  | c -> invalid_arg (Printf.sprintf "Durable: bad node kind %C in op payload" c)

type op =
  | Insert of { parent : int; subtree : T.node }
  | Delete of int

let encode_op op =
  let buf = Buffer.create 64 in
  (match op with
  | Insert { parent; subtree } ->
    Buffer.add_char buf 'I';
    Codec.add_varint buf parent;
    encode_node buf subtree
  | Delete id ->
    Buffer.add_char buf 'D';
    Codec.add_varint buf id);
  Buffer.contents buf

let decode_op s =
  if String.length s = 0 then invalid_arg "Durable: empty op payload";
  match s.[0] with
  | 'I' ->
    let parent, pos = Codec.read_varint s 1 in
    let subtree, _ = decode_node s pos in
    Insert { parent; subtree }
  | 'D' ->
    let id, _ = Codec.read_varint s 1 in
    Delete id
  | c -> invalid_arg (Printf.sprintf "Durable: bad op kind %C" c)

(* ------------------------------------------------------------------ *)
(* Creation and recovery                                               *)
(* ------------------------------------------------------------------ *)

let handle_of dir db wal =
  let t =
    {
      dir;
      db;
      wal;
      lock = Mutex.create ();
      next_txn = db.Database.last_txn + 1;
      batch_depth = 0;
      unsynced = false;
      poisoned = None;
    }
  in
  Atomic.set current (Some t);
  t

let create ?(force = false) ~dir db =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (* Never silently destroy an existing database: the directory may
     hold committed transactions that were not yet checkpointed, and
     the [Wal.create]/[Persist.save] below would wipe both the log and
     the snapshot. Recovery is spelled [open_]; overwrite is opt-in. *)
  if not force then begin
    let wal_nonempty =
      Sys.file_exists (wal_path dir) && (Unix.stat (wal_path dir)).Unix.st_size > 0
    in
    if Sys.file_exists (snapshot_path dir) || wal_nonempty then
      invalid_arg
        (Printf.sprintf
           "Durable.create: %s already holds a database (snapshot or non-empty log); use open_ \
            to recover it, or ~force:true to overwrite"
           dir)
  end;
  (* Outside a transaction the buffer pool writes back lazily, so after
     the initial build the pager may still hold the zeroed alloc images
     while the real bytes sit in dirty frames. Flush before the first
     transaction can capture pager images as snapshot pre-images —
     otherwise a reader pinned at the pre-transaction epoch would be
     served zeros. *)
  Buffer_pool.flush_all db.Database.pool;
  Persist.save db (snapshot_path dir);
  let wal = Wal.create (wal_path dir) in
  Wal.append wal (Wal.Checkpoint db.Database.last_txn);
  Wal.sync wal;
  (* [Persist.save] fsynced the directory for the snapshot's rename,
     but [wal.log] was created after that: sync its directory entry
     too, so a crash cannot leave a snapshot with no log file. *)
  Persist.fsync_dir dir;
  handle_of dir db wal

(* The [wal.replay] failpoint's [Fail] action surfaces as [Io_error]
   out of [Wal.scan]; recovery rides out probabilistic legs with the
   same bounded retry the append side uses. *)
let scan_attempts = 4

let rec scan_retry ?(attempt = 1) path =
  match Wal.scan path with
  | s -> s
  | exception Tm_fault.Fault.Io_error _ when attempt < scan_attempts ->
    scan_retry ~attempt:(attempt + 1) path

let apply_op db op =
  match op with
  | Insert { parent; subtree } -> ignore (Updates.insert_subtree db ~parent subtree)
  | Delete id -> ignore (Updates.delete_subtree db id)

(* Re-execute one committed transaction against the recovering
   database and cross-check the recovered page images against the
   logged post-image CRCs. *)
let replay_txn (db : Database.t) txn ops pages =
  let pager = db.Database.pager in
  ignore (Pager.begin_txn pager);
  (try List.iter (fun op -> apply_op db (decode_op op)) ops
   with e ->
     (* Recovery is the end of every typed-error chain: whatever broke
        replay (corrupt page, I/O fault, codec failure), the verdict is
        the same — this directory cannot be recovered automatically. *)
     (ignore (Pager.abort_txn pager);
      recovery_error "replaying txn %d: %s" txn (Printexc.to_string e))
     [@analyze.boundary]);
  List.iter
    (fun (page, crc) ->
      let actual =
        match Pager.image_crc pager page with
        | crc -> crc
        | exception Invalid_argument _ ->
          ignore (Pager.abort_txn pager);
          recovery_error "txn %d logged page %d, which replay never allocated" txn page
      in
      if actual <> crc then begin
        ignore (Pager.abort_txn pager);
        recovery_error
          "txn %d: replayed image of page %d diverges from the logged post-image (crc %d, \
           logged %d)"
          txn page actual crc
      end)
    pages;
  Pager.commit_txn pager;
  db.Database.last_txn <- txn;
  Tm_obs.Obs.incr c_replayed_txns

type recovery = {
  replayed : int;  (** committed transactions re-executed *)
  skipped : int;  (** committed transactions already in the snapshot *)
  discarded_bytes : int;  (** damaged / uncommitted tail truncated away *)
}

let open_ dir =
  let db = Persist.load (snapshot_path dir) in
  let wpath = wal_path dir in
  let scan = scan_retry wpath in
  (* Group the valid prefix's frames per transaction, in file order. *)
  let ops : (int, string list) Hashtbl.t = Hashtbl.create 16 in
  let pages : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun frame ->
      match frame with
      | Wal.Op (txn, op) ->
        Hashtbl.replace ops txn (op :: Option.value ~default:[] (Hashtbl.find_opt ops txn))
      | Wal.Page { txn; page; crc; image = _ } ->
        Hashtbl.replace pages txn
          ((page, crc) :: Option.value ~default:[] (Hashtbl.find_opt pages txn))
      | Wal.Begin _ | Wal.Commit _ | Wal.Checkpoint _ -> ())
    scan.Wal.frames;
  let replayed = ref 0 and skipped = ref 0 in
  List.iter
    (fun txn ->
      if txn <= db.Database.last_txn then incr skipped
      else begin
        let txn_ops = List.rev (Option.value ~default:[] (Hashtbl.find_opt ops txn)) in
        let txn_pages = List.rev (Option.value ~default:[] (Hashtbl.find_opt pages txn)) in
        replay_txn db txn txn_ops txn_pages;
        incr replayed
      end)
    scan.Wal.committed;
  (* Discard the damaged tail and partially-logged transactions: the
     file becomes exactly the committed prefix before we append to it
     again. *)
  let file_len = if Sys.file_exists wpath then (Unix.stat wpath).Unix.st_size else 0 in
  let discarded = max 0 (file_len - scan.Wal.committed_bytes) in
  if discarded > 0 then Wal.truncate wpath scan.Wal.committed_bytes;
  (* Same write-back flush as [create]: replay leaves its writes in the
     pager (transactions write through), but make sure no lazily
     buffered frame can shadow a zeroed pager image once snapshot
     pre-images start being captured. *)
  Buffer_pool.flush_all db.Database.pool;
  let wal = Wal.open_append wpath in
  (handle_of dir db wal, { replayed = !replayed; skipped = !skipped; discarded_bytes = discarded })

(* ------------------------------------------------------------------ *)
(* The write path                                                      *)
(* ------------------------------------------------------------------ *)

let check_ready (t : t) =
  match t.poisoned with
  | Some msg -> raise (Poisoned msg)
  | None -> ()

(* Poisoning is a black-box moment: the handle is dead until reopen,
   so the ring contents leading up to it are exactly what a post-mortem
   wants — record the event and trigger an automatic dump. *)
let poison (t : t) e =
  let msg = Printexc.to_string e in
  t.poisoned <- Some msg;
  Tm_obs.Obs.incr c_poisoned;
  if Tm_obs.Flight.enabled () then begin
    Tm_obs.Flight.emit Tm_obs.Flight.Poisoned 0 0 msg;
    ignore (Tm_obs.Flight.dump ~reason:("durable-poison: " ^ msg))
  end

(* One logged transaction around [exec]. Holds the writer lock. *)
let run_txn t op exec =
  Mutex.protect t.lock (fun () ->
      check_ready t;
      let pager = t.db.Database.pager in
      let txn = t.next_txn in
      match
        Wal.append t.wal (Wal.Begin txn);
        Wal.append t.wal (Wal.Op (txn, encode_op op));
        ignore (Pager.begin_txn pager);
        exec ()
      with
      | result ->
        (try
           List.iter
             (fun (page, image, crc) ->
               Wal.append t.wal (Wal.Page { txn; page; crc; image = Bytes.to_string image }))
             (Pager.txn_dirty pager);
           Tm_fault.Fault.guard site_commit;
           Wal.append t.wal (Wal.Commit txn);
           if t.batch_depth = 0 then Wal.sync t.wal else t.unsynced <- true
         with e ->
           (* Pages are dirty and the commit never reached the log:
              roll the pager back and poison — the in-memory document,
              dictionary and catalog have already advanced. *)
           poison t e;
           Buffer_pool.invalidate t.db.Database.pool (Pager.abort_txn pager);
           raise e);
        Pager.commit_txn pager;
        t.db.Database.last_txn <- txn;
        t.next_txn <- txn + 1;
        Tm_obs.Obs.incr c_txns;
        result
      | exception e ->
        let clean =
          match e with Invalid_argument _ -> Pager.txn_clean pager | _ -> false
        in
        if clean then begin
          (* Validation failed before anything was written: roll back
             and burn the txn id. Its [Begin]/[Op] frames linger in the
             log without a [Commit]; recovery ignores them. *)
          Buffer_pool.invalidate t.db.Database.pool (Pager.abort_txn pager);
          t.next_txn <- txn + 1;
          Tm_obs.Obs.incr c_clean_aborts
        end
        else begin
          poison t e;
          Buffer_pool.invalidate t.db.Database.pool
            (match Pager.abort_txn pager with
            | dirty -> dirty
            | exception Invalid_argument _ -> [])
        end;
        raise e)

let insert_subtree t ~parent subtree =
  run_txn t
    (Insert { parent; subtree })
    (fun () -> Updates.insert_subtree t.db ~parent subtree)

let delete_subtree t id = run_txn t (Delete id) (fun () -> Updates.delete_subtree t.db id)

let batch t f =
  Mutex.protect t.lock (fun () ->
      check_ready t;
      t.batch_depth <- t.batch_depth + 1);
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect t.lock (fun () ->
          t.batch_depth <- t.batch_depth - 1;
          if t.batch_depth = 0 && t.unsynced then begin
            (* Sync even when a later transaction poisoned the handle:
               earlier transactions in the batch already returned
               success to the caller and their [Commit] frames are in
               the log — leaving them unsynced would make their
               durability indeterminate. On a poisoned handle this is
               best effort (the sync itself may be what is broken);
               on a healthy one a failing group fsync poisons, because
               the acknowledged commits now have unknown durability and
               the only safe path forward is a reopen. *)
            (try
               Wal.sync t.wal;
               t.unsynced <- false
             with e ->
               (if Option.is_none t.poisoned then begin
                  poison t e;
                  raise e
                end)
               [@analyze.boundary])
          end))
    f

let checkpoint t =
  Mutex.protect t.lock (fun () ->
      check_ready t;
      if t.batch_depth > 0 then invalid_arg "Durable.checkpoint: inside a batch";
      if Pager.in_txn t.db.Database.pager then
        invalid_arg "Durable.checkpoint: a transaction is active";
      Buffer_pool.flush_all t.db.Database.pool;
      Pager.clear_versions t.db.Database.pager;
      (* [Persist.save] is fsync + atomic rename + directory fsync: a
         crash before it returns leaves the previous snapshot + full
         log; once it returns the new snapshot is durable — only then
         may the truncate below discard the log, since its transactions
         are all <= last_txn and recovery skips them even if the reset
         itself never reaches the disk. *)
      Persist.save t.db (snapshot_path t.dir);
      Wal.reset t.wal;
      Wal.append t.wal (Wal.Checkpoint t.db.Database.last_txn);
      Wal.sync t.wal;
      Tm_obs.Obs.incr c_checkpoints;
      Tm_obs.Flight.emit Tm_obs.Flight.Checkpoint t.db.Database.last_txn 0 "")

let close t =
  Mutex.protect t.lock (fun () ->
      if t.batch_depth = 0 && t.unsynced then begin
        Wal.sync t.wal;
        t.unsynced <- false
      end;
      Wal.close t.wal);
  (* Deregister from the status gauges (but only if a newer handle has
     not already taken over; CAS compares the option physically, so
     match on the stored value instead). *)
  match Atomic.get current with
  | Some t' when t' == t -> Atomic.set current None
  | Some _ | None -> ()
