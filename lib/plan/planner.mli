(** The cost-based planner: journal-calibrated estimates -> cost model
    -> cover + join order + strategy, behind the (generation, shape)
    plan cache. *)

type path_input = {
  i_label : string;  (** rendered path, for plan display *)
  i_est : int;  (** raw estimate from {!Estimate.path_cardinality} *)
  i_len : int;  (** steps in the path *)
}

val plan :
  ?overrides:(int * int) list ->
  generation:int ->
  shape:string ->
  built:Strategy.t list ->
  paths:(unit -> path_input list) ->
  unit ->
  Plan.t
(** Plan a twig. Without [overrides], consults and fills the plan
    cache; [paths] is a thunk so a cache hit never pays for
    estimation. [overrides] maps path index -> observed actual
    cardinality (the mid-query replan input) and bypasses the
    cache. *)

val forced : shape:string -> paths:path_input list -> Strategy.t -> Plan.t
(** The plan for an explicitly forced strategy: cover and join order
    are still computed (for display), costs are not. *)

val calibration_for : string -> float
(** Median actual/estimated row ratio over completed journal entries of
    this shape, clamped to [1/8, 32]; 1.0 when the journal is off or
    has no history. *)

(** {1 Mid-query adaptivity thresholds} *)

val replan_factor : int
(** A path blowing its estimate by more than this factor triggers
    abandonment (the >10x rule). *)

val replan_floor : int
(** Estimates below this are treated as this for the trigger, so tiny
    absolute misses never replan. *)

val max_replans : int
(** Replan attempts per query before the executor commits to whatever
    plan it holds. *)

val should_replan : est:int -> actual:int -> bool
