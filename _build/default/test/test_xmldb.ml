(* Tests for the XML-to-relational layer: dictionary, schema paths,
   shredding, Edge table, schema catalog, and the 4-ary path relation —
   including literal checks of the paper's Figures 2, 4 and 5. *)

open Tm_xmldb
module T = Tm_xml.Xml_tree

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* The paper's Figure 1 example: book(1) title(2) allauthors(3)
   author(4) fn(5) ln(6) author(7) fn(8) ln(9) author(10) fn(11) ln(12)
   year(13) under our numbering. *)
let figure1_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem_text "title" "XML";
          T.elem "allauthors"
            [
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "poe" ];
              T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "doe" ];
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ];
            ];
          T.elem_text "year" "2000";
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Dictionary                                                          *)
(* ------------------------------------------------------------------ *)

let test_dictionary_intern () =
  let d = Dictionary.create () in
  let a = Dictionary.intern d "book" in
  let b = Dictionary.intern d "title" in
  check Alcotest.int "first id" 0 a;
  check Alcotest.int "second id" 1 b;
  check Alcotest.int "re-intern" a (Dictionary.intern d "book");
  check Alcotest.(option int) "find" (Some b) (Dictionary.find d "title");
  check Alcotest.(option int) "find missing" None (Dictionary.find d "nope");
  check Alcotest.string "name" "book" (Dictionary.name d a);
  check Alcotest.int "count" 2 (Dictionary.tag_count d)

let test_dictionary_capacity_guard () =
  (* interning near the designator space works; names round-trip *)
  let d = Dictionary.create () in
  for i = 0 to 999 do
    ignore (Dictionary.intern d (Printf.sprintf "tag%d" i))
  done;
  check Alcotest.int "count" 1000 (Dictionary.tag_count d);
  check Alcotest.string "name 999" "tag999" (Dictionary.name d 999);
  (match Dictionary.name d 1000 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument past the end");
  check Alcotest.bool "space is large" true (Dictionary.max_tags > 60000)

let test_schema_path_to_string () =
  let d = Dictionary.create () in
  let a = Dictionary.intern d "site" and b = Dictionary.intern d "item" in
  check Alcotest.string "pretty" "/site/item"
    (Schema_path.to_string d (Schema_path.of_list [ a; b ]));
  check Alcotest.string "empty" "/" (Schema_path.to_string d Schema_path.empty)

let test_designator_roundtrip () =
  List.iter
    (fun id ->
      let s = Dictionary.designator id in
      check Alcotest.int "width" 2 (String.length s);
      check Alcotest.int "roundtrip" id (Dictionary.of_designator s 0);
      (* no reserved bytes, so designators embed safely in composite keys *)
      String.iter (fun c -> if Char.code c < 0x04 then Alcotest.fail "reserved byte") s)
    [ 0; 1; 246; 247; 1000; 61008 ]

let prop_designator_order =
  QCheck.Test.make ~name:"designators are order-preserving" ~count:200
    QCheck.(pair (int_bound 60000) (int_bound 60000))
    (fun (a, b) -> compare (Dictionary.designator a) (Dictionary.designator b) = compare a b)

(* ------------------------------------------------------------------ *)
(* Schema paths                                                        *)
(* ------------------------------------------------------------------ *)

let test_schema_path_ops () =
  let p = Schema_path.of_list [ 1; 2; 3; 4 ] in
  check Alcotest.(list int) "reverse" [ 4; 3; 2; 1 ] (Schema_path.to_list (Schema_path.reverse p));
  check Alcotest.(list int) "suffix" [ 3; 4 ] (Schema_path.to_list (Schema_path.suffix p 2));
  check Alcotest.(list int) "drop_last" [ 1; 2 ] (Schema_path.to_list (Schema_path.drop_last p 2));
  check Alcotest.bool "has_suffix yes" true (Schema_path.has_suffix p (Schema_path.of_list [ 3; 4 ]));
  check Alcotest.bool "has_suffix no" false (Schema_path.has_suffix p (Schema_path.of_list [ 2; 4 ]));
  check Alcotest.bool "has_prefix yes" true (Schema_path.has_prefix p (Schema_path.of_list [ 1; 2 ]));
  check Alcotest.bool "empty suffix" true (Schema_path.has_suffix p Schema_path.empty)

let prop_schema_path_encode_roundtrip =
  QCheck.Test.make ~name:"schema path encode/decode roundtrip" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 10) (int_bound 5000))
    (fun tags ->
      let p = Schema_path.of_list tags in
      Schema_path.to_list (Schema_path.decode (Schema_path.encode p)) = tags
      && Schema_path.to_list (Schema_path.decode_reversed (Schema_path.encode_reversed p)) = tags)

let prop_reverse_encoding_is_suffix_prefix =
  (* The heart of the ROOTPATHS trick: [p] ends with [s] iff the reverse
     encoding of [p] starts with the reverse encoding of [s]. *)
  QCheck.Test.make ~name:"reverse encoding turns suffix into prefix" ~count:300
    QCheck.(
      pair (list_of_size Gen.(int_range 0 8) (int_bound 50)) (list_of_size Gen.(int_range 0 8) (int_bound 50)))
    (fun (p, s) ->
      let p = Schema_path.of_list p and s = Schema_path.of_list s in
      let prefix_of a b =
        String.length a <= String.length b && String.sub b 0 (String.length a) = a
      in
      Schema_path.has_suffix p s
      = prefix_of (Schema_path.encode_reversed s) (Schema_path.encode_reversed p))

(* ------------------------------------------------------------------ *)
(* Shredding                                                           *)
(* ------------------------------------------------------------------ *)

let test_shred_figure1 () =
  let doc = figure1_doc () in
  let dict = Dictionary.create () in
  let infos = List.rev (Shred.fold_nodes doc dict (fun acc i -> i :: acc) []) in
  check Alcotest.int "one info per element" 13 (List.length infos);
  (* first node: the book *)
  (match infos with
  | book :: title :: _ ->
    check Alcotest.int "book id" 1 book.Shred.id;
    check Alcotest.int "book parent" 0 book.Shred.parent_id;
    check Alcotest.int "title id" 2 title.Shred.id;
    check Alcotest.int "title parent" 1 title.Shred.parent_id;
    check Alcotest.(option string) "title value" (Some "XML") title.Shred.value;
    check Alcotest.(list int) "title rooted ids" [ 1; 2 ] (Array.to_list title.Shred.ids)
  | _ -> Alcotest.fail "missing infos");
  (* every node's ids end with its own id and follow its ancestors *)
  List.iter
    (fun info ->
      let ids = Array.to_list info.Shred.ids in
      check Alcotest.int "last id is own id" info.Shred.id (List.nth ids (List.length ids - 1));
      check Alcotest.int "path and ids same length" (Schema_path.length info.Shred.path)
        (List.length ids))
    infos

(* ------------------------------------------------------------------ *)
(* Path relation: Figures 2, 4 and 5                                   *)
(* ------------------------------------------------------------------ *)

let row_to_string dict (r : Path_relation.row) =
  Printf.sprintf "%d %s %s [%s]" r.Path_relation.head
    (Schema_path.to_string dict r.Path_relation.schema)
    (Option.value ~default:"null" r.Path_relation.value)
    (String.concat "," (List.map string_of_int r.Path_relation.idlist))

let test_figure4_root_rows () =
  (* Figure 4 lists, among others (translated to our ids):
     B null [1]; TB XML [1,2]; fn-jane rows with full id lists. *)
  let doc = figure1_doc () in
  let dict = Dictionary.create () in
  let rows = Path_relation.root_rows doc dict in
  let strings = List.map (row_to_string dict) rows in
  let expect s =
    if not (List.mem s strings) then
      Alcotest.failf "missing root row %S; have:\n%s" s (String.concat "\n" strings)
  in
  expect "0 /book null [1]";
  expect "0 /book/title XML [1,2]";
  expect "0 /book/allauthors null [1,3]";
  expect "0 /book/allauthors/author/fn jane [1,3,4,5]";
  expect "0 /book/allauthors/author/ln poe [1,3,4,6]";
  expect "0 /book/year 2000 [1,13]";
  (* all heads are the virtual root *)
  List.iter (fun (r : Path_relation.row) -> check Alcotest.int "head" 0 r.Path_relation.head) rows

let test_figure5_subpath_rows () =
  (* Figure 5 adds head-anchored rows: e.g. (translated) allauthors
     itself as "3 /allauthors null []" and "3 /allauthors/author/fn jane
     [4,5]". *)
  let doc = figure1_doc () in
  let dict = Dictionary.create () in
  let rows = Path_relation.all_rows doc dict in
  let strings = List.map (row_to_string dict) rows in
  let expect s =
    if not (List.mem s strings) then Alcotest.failf "missing subpath row %S" s
  in
  expect "1 /book null []";
  expect "1 /book/title XML [2]";
  expect "3 /allauthors null []";
  expect "3 /allauthors/author null [4]";
  expect "3 /allauthors/author/fn jane [4,5]";
  expect "4 /author/fn jane [5]";
  expect "5 /fn jane []"

let test_row_counts () =
  (* Root rows: one per node plus one per valued node. Subpath rows:
     one per (node, ancestor-or-self + virtual root), doubled for
     valued nodes. *)
  let doc = figure1_doc () in
  let dict = Dictionary.create () in
  let nodes = T.element_count doc in
  let valued =
    T.fold doc (fun acc n -> if (not (T.is_value n)) && T.leaf_value n <> None then acc + 1 else acc) 0
  in
  check Alcotest.int "root row count" (nodes + valued)
    (List.length (Path_relation.root_rows doc dict));
  let depth_sum =
    Shred.fold_nodes doc (Dictionary.create ()) (fun acc i -> acc + Array.length i.Shred.ids) 0
  in
  let valued_depth_sum =
    Shred.fold_nodes doc (Dictionary.create ())
      (fun acc i -> if i.Shred.value <> None then acc + Array.length i.Shred.ids else acc)
      0
  in
  (* per node: depth+1 heads; per valued node the same again *)
  check Alcotest.int "subpath row count"
    (depth_sum + nodes + (valued_depth_sum + valued))
    (List.length (Path_relation.all_rows doc dict))

(* ------------------------------------------------------------------ *)
(* Edge table                                                          *)
(* ------------------------------------------------------------------ *)

let make_pool () = Tm_storage.Buffer_pool.create ~capacity:4096 (Tm_storage.Pager.create ())

let test_edge_table_lookups () =
  let doc = figure1_doc () in
  let dict = Dictionary.create () in
  let edge = Edge_table.build (make_pool ()) dict doc in
  let tag name = Option.get (Dictionary.find dict name) in
  check Alcotest.int "node count" 13 (Edge_table.node_count edge);
  (* value index: paper Section 3.1 value index semantics *)
  check Alcotest.(list int) "fn=jane" [ 5; 11 ] (Edge_table.lookup_value edge ~tag:(tag "fn") ~value:"jane");
  check Alcotest.int "cardinality" 2 (Edge_table.value_cardinality edge ~tag:(tag "fn") ~value:"jane");
  check Alcotest.int "cardinality missing" 0
    (Edge_table.value_cardinality edge ~tag:(tag "fn") ~value:"nobody");
  (* forward link: children of allauthors(3) tagged author *)
  check Alcotest.(list int) "authors" [ 4; 7; 10 ]
    (List.sort compare (Edge_table.children_of edge ~parent:3 ~tag:(tag "author")));
  check Alcotest.(list int) "all children of book" [ 2; 3; 13 ]
    (List.sort compare (Edge_table.all_children edge ~parent:1));
  (* backward link *)
  (match Edge_table.parent_of edge 5 with
  | Some (p, ptag, tag5) ->
    check Alcotest.int "fn parent" 4 p;
    check Alcotest.string "parent tag" "author" (Dictionary.name dict ptag);
    check Alcotest.string "own tag" "fn" (Dictionary.name dict tag5)
  | None -> Alcotest.fail "no parent");
  (match Edge_table.parent_of edge 1 with
  | Some (p, ptag, _) ->
    check Alcotest.int "root parent is virtual" 0 p;
    check Alcotest.int "virtual tag" (-1) ptag
  | None -> Alcotest.fail "no parent for root")

(* ------------------------------------------------------------------ *)
(* Schema catalog                                                      *)
(* ------------------------------------------------------------------ *)

let test_catalog () =
  let doc = figure1_doc () in
  let dict = Dictionary.create () in
  let catalog = Schema_catalog.build dict doc in
  (* distinct rooted paths: book, book/title, book/allauthors,
     .../author, .../fn, .../ln, book/year = 7 *)
  check Alcotest.int "distinct paths" 7 (Schema_catalog.path_count catalog);
  let tag name = Option.get (Dictionary.find dict name) in
  let author_path = Schema_path.of_list [ tag "book"; tag "allauthors"; tag "author" ] in
  (match Schema_catalog.find catalog author_path with
  | Some e ->
    check Alcotest.int "author instances" 3 e.Schema_catalog.instance_count;
    check Alcotest.int "no values at author" 0 e.Schema_catalog.value_count
  | None -> Alcotest.fail "author path missing");
  let fn_suffix = Schema_path.of_list [ tag "fn" ] in
  check Alcotest.int "paths ending in fn" 1
    (List.length (Schema_catalog.paths_with_suffix catalog fn_suffix));
  check Alcotest.int "paths under book" 7
    (List.length (Schema_catalog.paths_with_prefix catalog (Schema_path.of_list [ tag "book" ])))

let suite =
  [
    ( "dictionary",
      [
        Alcotest.test_case "intern" `Quick test_dictionary_intern;
        Alcotest.test_case "designator roundtrip" `Quick test_designator_roundtrip;
        Alcotest.test_case "capacity and errors" `Quick test_dictionary_capacity_guard;
        qtest prop_designator_order;
      ] );
    ( "schema_path",
      [
        Alcotest.test_case "operations" `Quick test_schema_path_ops;
        Alcotest.test_case "to_string" `Quick test_schema_path_to_string;
        qtest prop_schema_path_encode_roundtrip;
        qtest prop_reverse_encoding_is_suffix_prefix;
      ] );
    ("shred", [ Alcotest.test_case "figure 1 shredding" `Quick test_shred_figure1 ]);
    ( "path_relation",
      [
        Alcotest.test_case "figure 4 root rows" `Quick test_figure4_root_rows;
        Alcotest.test_case "figure 5 subpath rows" `Quick test_figure5_subpath_rows;
        Alcotest.test_case "row counts" `Quick test_row_counts;
      ] );
    ("edge_table", [ Alcotest.test_case "lookups" `Quick test_edge_table_lookups ]);
    ("catalog", [ Alcotest.test_case "catalog" `Quick test_catalog ]);
  ]

let () = Alcotest.run "tm_xmldb" suite
