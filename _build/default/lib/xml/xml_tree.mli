(** XML data model: rooted, ordered, labeled trees (paper Section 2.1).

    Non-leaf nodes are elements and attributes; leaf nodes are string
    values. Element/attribute nodes carry unique ids assigned in
    depth-first pre-order (Figure 1(b)); value leaves carry {!no_id}. A
    {!document} is a forest under a virtual root with id 0. *)

type label =
  | Elem of string  (** element, labeled with its tag *)
  | Attr of string  (** attribute, labeled with its name *)
  | Value of string  (** leaf value (element text or attribute value) *)

type node = { mutable id : int; label : label; mutable children : node array }
(** [children] is mutable to support subtree insertion/deletion
    ({!Twigmatch.Updates}); use the update API rather than mutating
    directly, so indices stay consistent. *)

type document = {
  virtual_root_id : int;  (** always 0 *)
  roots : node array;  (** document roots, children of the virtual root *)
  node_count : int;  (** numbered nodes, including the virtual root *)
}

val no_id : int

(** {1 Constructors} (ids are assigned by {!document}) *)

val elem : string -> node list -> node
val attr : string -> string -> node
(** An attribute with its value leaf. *)

val text : string -> node
val elem_text : string -> string -> node
(** An element with a single text leaf. *)

val document : node list -> document
(** Assign pre-order ids (first root = 1) and wrap the forest. *)

(** {1 Accessors and traversals} *)

val is_value : node -> bool
val label_name : node -> string

val fold_with_ancestors :
  document -> ('a -> ancestors:node list -> node -> 'a) -> 'a -> 'a
(** Pre-order fold with the ancestor chain (nearest first). *)

val fold : document -> ('a -> node -> 'a) -> 'a -> 'a
val iter : document -> (node -> unit) -> unit

val element_count : document -> int
(** Element/attribute nodes, excluding the virtual root. *)

val value_count : document -> int

val depth : document -> int
(** Maximum node depth; a document root has depth 1. *)

val leaf_value : node -> string option
(** The text value directly under a node, if any. *)

val find_by_id : document -> int -> node option
(** Linear scan; for tests and tools. *)

(** {1 Printing} *)

val escape_text : string -> string
val to_buffer : Buffer.t -> document -> unit
val to_string : document -> string
