(** A chosen physical plan: PCsubpath cover with per-path estimates,
    join order, winning strategy and the cost comparison it won. *)

type path_est = {
  p_label : string;  (** rendered path, e.g. [//site/people/person/name] *)
  p_raw_est : int;  (** estimate straight from catalog / Edge statistics *)
  p_est : int;  (** estimate after journal calibration *)
}

type t = {
  shape : string;  (** normalized twig shape — the cache key *)
  strategy : Strategy.t;
  cover : path_est array;  (** one entry per linear path, decomposition order *)
  join_order : int array;  (** indices into [cover], driver (most selective) first *)
  est_rows : int;  (** estimated result cardinality *)
  cost : float;  (** winning cost, in entries-touched units *)
  rivals : (Strategy.t * float) list;  (** every costed strategy, cheapest first *)
  calibration : float;  (** journal correction factor applied to raw estimates *)
  cached : bool;  (** served from the plan cache *)
  reason : string;  (** one-line justification *)
}

val trivial : shape:string -> strategy:Strategy.t -> string -> t
(** A plan with an empty cover (unknown query tags, pinned defaults). *)

val summary : t -> string
(** One line: strategy, estimated rows, cache/calibration markers. *)

val to_string : t -> string
(** Multi-line operator rendering (shape, join order, costs). *)

val to_json : t -> string
