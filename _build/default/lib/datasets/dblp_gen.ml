(** Deterministic DBLP-like dataset generator.

    The paper's second dataset is a 50 MB DBLP snapshot — a {e shallow}
    bibliography, the structural opposite of XMark's deep nesting
    (Section 5.1.1). We generate a forest of [inproceedings] records
    (the paper's Q1d-Q3d address them as document roots:
    [/inproceedings/year[. = '1950']]), with a year histogram giving
    the three selectivity classes:

    - exactly one record from 1950 (Q1d, result 1);
    - ~1.6% from 1979 (Q2d, moderate);
    - ~10% from 1998 (Q3d, large). *)

module T = Tm_xml.Xml_tree

type params = { seed : int; scale : float (** 1.0 ~ 8000 records *) }

let default = { seed = 7; scale = 1.0 }

let first_names = [| "a"; "b"; "c"; "d"; "e"; "j"; "k"; "l"; "m"; "r"; "s"; "t" |]

let last_names =
  [|
    "ullman"; "widom"; "gray"; "codd"; "stonebraker"; "bernstein"; "gehrke"; "srivastava";
    "koudas"; "korn"; "chen"; "shanmugasundaram"; "abiteboul"; "buneman"; "suciu"; "vianu";
  |]

let venues =
  [| "SIGMOD"; "VLDB"; "ICDE"; "PODS"; "EDBT"; "ICDT"; "WebDB"; "CIKM"; "KDD"; "SSDBM" |]

let title_words =
  [|
    "indexing"; "query"; "optimization"; "of"; "for"; "parallel"; "distributed"; "relational";
    "semistructured"; "data"; "xml"; "paths"; "twigs"; "joins"; "storage"; "views"; "mining";
    "streams"; "approximate"; "adaptive";
  |]

let pick st arr = arr.(Random.State.int st (Array.length arr))

let year st i =
  if i = 0 then "1950"
  else begin
    let r = Random.State.float st 1.0 in
    if r < 0.016 then "1979"
    else if r < 0.116 then "1998"
    else string_of_int (1960 + Random.State.int st 43)
  end

let generate (p : params) =
  let st = Random.State.make [| p.seed |] in
  let n = max 10 (int_of_float (8000.0 *. p.scale)) in
  let common i =
    let n_authors = 1 + Random.State.int st 3 in
    let authors =
      List.init n_authors (fun _ ->
          T.elem_text "author" (pick st first_names ^ ". " ^ pick st last_names))
    in
    let title =
      String.concat " " (List.init (3 + Random.State.int st 4) (fun _ -> pick st title_words))
    in
    let optional =
      (if Random.State.float st 1.0 < 0.5 then
         [ T.elem_text "ee" (Printf.sprintf "https://doi.example/%d" i) ]
       else [])
      @ (if Random.State.float st 1.0 < 0.2 then [ T.elem_text "url" (Printf.sprintf "db/conf/%d.html" i) ] else [])
      @
      if Random.State.float st 1.0 < 0.1 then [ T.elem_text "note" (pick st title_words) ] else []
    in
    (authors, title, optional)
  in
  let start_page () = 1 + Random.State.int st 400 in
  let pages () =
    let s = start_page () in
    Printf.sprintf "%d-%d" s (s + 8 + Random.State.int st 12)
  in
  (* Q1d-Q3d target inproceedings; records 0..(0.8n) are inproceedings,
     the tail mixes the other DBLP record types for schema variety
     (real DBLP has 235 distinct paths across its record types). *)
  let record i =
    let authors, title, optional = common i in
    let r = if 5 * i < 4 * n then 0 else Random.State.int st 4 + 1 in
    match r with
    | 0 ->
      T.elem "inproceedings"
        ([ T.attr "key" (Printf.sprintf "conf/x/%d" i) ]
        @ authors
        @ [
            T.elem_text "title" title;
            T.elem_text "booktitle" (pick st venues);
            T.elem_text "year" (year st i);
            T.elem_text "pages" (pages ());
          ]
        @ optional)
    | 1 ->
      T.elem "article"
        ([ T.attr "key" (Printf.sprintf "journals/x/%d" i) ]
        @ authors
        @ [
            T.elem_text "title" title;
            T.elem_text "journal" (pick st venues);
            T.elem_text "volume" (string_of_int (1 + Random.State.int st 40));
            T.elem_text "number" (string_of_int (1 + Random.State.int st 12));
            T.elem_text "year" (year st i);
            T.elem_text "pages" (pages ());
          ]
        @ optional)
    | 2 ->
      T.elem "book"
        ([ T.attr "key" (Printf.sprintf "books/x/%d" i) ]
        @ authors
        @ [
            T.elem_text "title" title;
            T.elem_text "publisher" "Example Press";
            T.elem_text "isbn" (Printf.sprintf "0-000-%05d-%d" i (i mod 10));
            T.elem_text "year" (year st i);
          ]
        @ optional)
    | 3 ->
      T.elem "phdthesis"
        ([ T.attr "key" (Printf.sprintf "phd/x/%d" i) ]
        @ authors
        @ [
            T.elem_text "title" title;
            T.elem_text "school" "Example University";
            T.elem_text "year" (year st i);
          ])
    | _ ->
      T.elem "incollection"
        ([ T.attr "key" (Printf.sprintf "coll/x/%d" i) ]
        @ authors
        @ [
            T.elem_text "title" title;
            T.elem_text "booktitle" (pick st venues);
            T.elem_text "year" (year st i);
            T.elem_text "pages" (pages ());
            T.elem "crossref" [ T.elem_text "ref" (Printf.sprintf "conf/x/%d" (Random.State.int st n)) ];
          ])
  in
  T.document (List.init n record)
