(** Cost model in "entries touched" units (paper Section 6 crossover):
    RP = sum of branch scans, DP = selective scan + INLJ probes, JI =
    DP with doubled probe cost, Edge = estimate x path length. *)

val probe_cost_entries : int
(** Cost of one BoundIndex probe, in contiguous-entry-scan units;
    calibrated against the benchmark harness (raising it biases toward
    merge joins). *)

val costed : Strategy.t list
(** Strategies the Auto planner considers (RP, DP, JI, Edge); the
    simulated comparison points (DG+Edge, IF+Edge, ASR) must be
    forced. *)

type input = {
  ests : int array;  (** calibrated per-path estimates, decomposition order *)
  lens : int array;  (** per-path step counts *)
}

val join_order : int array -> int array
(** Path indices sorted by ascending estimate (driver first), stable. *)

val costs : input -> built:Strategy.t list -> (Strategy.t * float) list
(** Per-strategy cost for every costed, built strategy — cheapest
    first, ties broken by {!Strategy.rank}. *)

val choose :
  input -> built:Strategy.t list -> Strategy.t * float * (Strategy.t * float) list * string
(** Winner, its cost, the full comparison, and a one-line reason. *)
