(** Query-lifecycle journal: a process-global, fixed-capacity,
    lock-striped ring of structured completion events, one per
    executed query. Recording when disabled costs a single atomic
    load; when enabled, entries land in the stripe selected by
    [trace id mod stripes], so concurrent domains rarely contend.
    Oldest entries are overwritten per stripe. *)

(** How the query ended. *)
type outcome =
  | Completed
  | Timed_out of float  (** the expired deadline, ms *)
  | Failed of string  (** printable form of the escaping exception *)

type entry = {
  j_id : int;  (** trace id (process-unique, monotonically increasing) *)
  j_time : float;  (** wall-clock completion time (Unix epoch seconds) *)
  j_query : string;
  j_shape : string;  (** normalized twig shape (the planner's cache/calibration key) *)
  j_requested : string;  (** the planned strategy *)
  j_strategy : string;  (** the strategy that answered (= requested when healthy) *)
  j_reason : string;  (** planner justification *)
  j_fallbacks : (string * string) list;  (** losing plans, oldest first, with why *)
  j_via_naive : bool;
  j_rows : int;
  j_est_rows : int option;  (** the plan's estimated result rows, when planned *)
  j_replans : int;  (** mid-query replans before the answer *)
  j_latency_ms : float;
  j_pool_hit_rate : float option;  (** buffer-pool hit rate over the query *)
  j_jobs : int;
  j_txn : int;
      (** last durably committed transaction folded into the database
          when the query ran (0 = a database never durably updated) *)
  j_outcome : outcome;
  j_gc : Obs.gc_delta;  (** GC/allocation deltas over the query *)
}

val next_id : unit -> int
(** Allocate a fresh trace id. Always cheap (one atomic increment) and
    independent of the enabled flag, so trace ids stay process-unique
    even across enable/disable cycles. *)

(** {1 Journal control} *)

val enabled : unit -> bool
val enable : ?capacity:int -> unit -> unit
(** Enable recording; [capacity] (default 512, spread over the
    stripes) resets the ring when given. Raises [Invalid_argument] on
    a capacity < 1. *)

val disable : unit -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with the journal forced on/off, restoring the previous state. *)

val capacity : unit -> int
(** Total entries the ring can hold (rounded up to a stripe multiple). *)

val clear : unit -> unit
(** Drop every entry (capacity unchanged). *)

val env_var : string
(** ["TWIGMATCH_JOURNAL"]: set to a positive integer at startup to
    enable the journal at link time ([1] keeps the default capacity;
    larger values become the capacity). *)

(** {1 Recording and reading} *)

val record : entry -> unit
(** Append an entry (no-op when disabled). *)

val entries : unit -> entry list
(** Retained entries, oldest first (ordered by trace id). *)

val length : unit -> int

val dropped : unit -> int
(** Entries overwritten by ring wrap-around since the last
    {!enable}/{!clear}. *)

(** {1 Slow-query view} *)

val slow : ?threshold_ms:float -> unit -> entry list
(** Retained entries at or above the latency threshold (default: the
    settable global threshold), slowest first. Timeouts and failures
    always qualify. *)

val slow_threshold_ms : unit -> float
val set_slow_threshold_ms : float -> unit

(** {1 Rendering} *)

val entry_to_string : entry -> string
(** Multi-line operator-facing form: id, latency, outcome, query, the
    winning strategy and each losing plan with its reason. *)

val entry_to_json : entry -> string

val to_json : entry list -> string
(** A JSON array of entries. *)
