lib/core/persist.ml: Database Fun Marshal Printf String
