(* Tests for the twigql serve endpoint surface. [Server.handle] is
   pure request dispatch, so most of the surface is exercised without
   a socket; one test binds a real loopback listener and drives it
   from a second domain. *)

open Twigmatch
module T = Tm_xml.Xml_tree
module Server = Tm_serve.Server

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let book_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem_text "title" "XML";
          T.elem "allauthors"
            [
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "poe" ];
              T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "doe" ];
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ];
            ];
          T.elem_text "year" "2000";
        ];
    ]

(* /healthz and s-less /query plan under `Auto, which needs RP and DP *)
let mk_db () = Database.create ~strategies:[ Database.RP; Database.DP ] (book_doc ())

(* ------------------------------------------------------------------ *)
(* Pure dispatch                                                       *)
(* ------------------------------------------------------------------ *)

let test_url_decode () =
  check Alcotest.string "percent and plus" "a b/c d" (Server.url_decode "a%20b%2Fc+d");
  check Alcotest.string "untouched" "/book//author" (Server.url_decode "/book//author");
  check Alcotest.string "stray percent passes through" "100%" (Server.url_decode "100%")

let test_metrics_endpoint () =
  let db = mk_db () in
  let r = Server.handle db ~meth:"GET" ~target:"/metrics" in
  check Alcotest.int "status" 200 r.Server.status;
  check Alcotest.bool "text content type" true (contains r.Server.content_type "text/plain");
  check Alcotest.bool "prometheus types" true (contains r.Server.body "# TYPE ");
  check Alcotest.bool "request counter present" true
    (contains r.Server.body "twigmatch_serve_requests")

let test_healthz_endpoint () =
  let db = mk_db () in
  let r = Server.handle db ~meth:"GET" ~target:"/healthz" in
  check Alcotest.int "status" 200 r.Server.status;
  check Alcotest.bool "healthy" true (contains r.Server.body "\"status\":\"ok\"");
  check Alcotest.bool "pager checked" true (contains r.Server.body "\"pager_violations\":0");
  check Alcotest.bool "canary ran" true (contains r.Server.body "\"canary_rows\":1")

let test_query_endpoint () =
  let db = mk_db () in
  let r = Server.handle db ~meth:"GET" ~target:"/query?q=%2Fbook%2F%2Fauthor&s=RP" in
  check Alcotest.int "status" 200 r.Server.status;
  check Alcotest.bool "row count" true (contains r.Server.body "\"rows\":3");
  check Alcotest.bool "strategy echoed" true (contains r.Server.body "\"strategy\":\"RP\"");
  check Alcotest.bool "ids listed" true (contains r.Server.body "\"ids\":[");
  check Alcotest.bool "trace id assigned" true (contains r.Server.body "\"trace_id\":")

let test_query_errors () =
  let db = mk_db () in
  let missing = Server.handle db ~meth:"GET" ~target:"/query" in
  check Alcotest.int "missing q" 400 missing.Server.status;
  let bad = Server.handle db ~meth:"GET" ~target:"/query?q=%5B%5Bnot-xpath" in
  check Alcotest.int "unparsable q" 400 bad.Server.status;
  check Alcotest.bool "parse error named" true (contains bad.Server.body "parse");
  let strat = Server.handle db ~meth:"GET" ~target:"/query?q=%2Fbook&s=NOPE" in
  check Alcotest.int "unknown strategy" 400 strat.Server.status

let test_journal_endpoints () =
  let db = mk_db () in
  Tm_obs.Journal.with_enabled true (fun () ->
      Tm_obs.Journal.clear ();
      ignore (Server.handle db ~meth:"GET" ~target:"/query?q=%2Fbook&s=RP");
      let j = Server.handle db ~meth:"GET" ~target:"/journal" in
      check Alcotest.int "journal status" 200 j.Server.status;
      check Alcotest.bool "journal has the query" true (contains j.Server.body "/book");
      let s = Server.handle db ~meth:"GET" ~target:"/slow?threshold_ms=0" in
      check Alcotest.int "slow status" 200 s.Server.status;
      check Alcotest.bool "slow is a JSON array" true
        (String.length s.Server.body >= 2 && s.Server.body.[0] = '[');
      Tm_obs.Journal.clear ())

let test_routing_errors () =
  let db = mk_db () in
  check Alcotest.int "unknown path" 404 (Server.handle db ~meth:"GET" ~target:"/nope").Server.status;
  check Alcotest.int "non-GET" 405 (Server.handle db ~meth:"POST" ~target:"/metrics").Server.status;
  let warnings = Server.handle db ~meth:"GET" ~target:"/warnings" in
  check Alcotest.int "warnings status" 200 warnings.Server.status;
  let index = Server.handle db ~meth:"GET" ~target:"/" in
  check Alcotest.int "index status" 200 index.Server.status;
  check Alcotest.bool "index lists endpoints" true (contains index.Server.body "/metrics")

(* ------------------------------------------------------------------ *)
(* The socket server                                                   *)
(* ------------------------------------------------------------------ *)

let fetch port target =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n" target
      in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec loop () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        end
      in
      loop ();
      Buffer.contents buf)

let test_socket_roundtrip () =
  let db = mk_db () in
  let t = Server.create ~port:0 db in
  check Alcotest.bool "ephemeral port picked" true (Server.port t > 0);
  let d = Domain.spawn (fun () -> Server.run t) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Domain.join d)
    (fun () ->
      let health = fetch (Server.port t) "/healthz" in
      check Alcotest.bool "HTTP 200" true (contains health "HTTP/1.1 200");
      check Alcotest.bool "healthy over the wire" true (contains health "\"status\":\"ok\"");
      let metrics = fetch (Server.port t) "/metrics" in
      check Alcotest.bool "metrics over the wire" true
        (contains metrics "twigmatch_serve_requests"))

let () =
  Alcotest.run "serve"
    [
      ( "dispatch",
        [
          Alcotest.test_case "url decoding" `Quick test_url_decode;
          Alcotest.test_case "/metrics" `Quick test_metrics_endpoint;
          Alcotest.test_case "/healthz" `Quick test_healthz_endpoint;
          Alcotest.test_case "/query" `Quick test_query_endpoint;
          Alcotest.test_case "/query errors" `Quick test_query_errors;
          Alcotest.test_case "/journal and /slow" `Quick test_journal_endpoints;
          Alcotest.test_case "routing errors" `Quick test_routing_errors;
        ] );
      ("socket", [ Alcotest.test_case "loopback round-trip" `Quick test_socket_roundtrip ]);
    ]
