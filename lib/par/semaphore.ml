(* Counting semaphore for admission control: a fixed number of permits,
   domain-safe, with non-blocking, blocking and deadline-bounded
   acquisition plus an idle-wait used by graceful drain.

   Blocking [acquire] parks on a condition variable signalled by
   [release]. The timed variants ([acquire_for], [await_idle]) poll on
   a short sleep instead: stdlib [Condition] has no timed wait, and the
   admission paths that need a bound are shedding decisions where
   millisecond granularity is plenty. *)

type t = {
  lock : Mutex.t;
  released : Condition.t;
  capacity : int;
  mutable in_use : int; [@analyze.guarded_by "lock"]
  mutable waiting : int; [@analyze.guarded_by "lock"]
}

let create capacity =
  if capacity < 0 then invalid_arg "Semaphore.create: capacity must be >= 0";
  {
    lock = Mutex.create ();
    released = Condition.create ();
    capacity;
    in_use = 0;
    waiting = 0;
  }

let capacity t = t.capacity
let in_use t = Mutex.protect t.lock (fun () -> t.in_use)
let waiting t = Mutex.protect t.lock (fun () -> t.waiting)
let available t = Mutex.protect t.lock (fun () -> t.capacity - t.in_use)

let try_acquire t =
  Mutex.protect t.lock (fun () ->
      if t.in_use < t.capacity then begin
        t.in_use <- t.in_use + 1;
        true
      end
      else false)

let acquire t =
  Mutex.protect t.lock (fun () ->
      t.waiting <- t.waiting + 1;
      while t.in_use >= t.capacity do
        Condition.wait t.released t.lock
      done;
      t.waiting <- t.waiting - 1;
      t.in_use <- t.in_use + 1)

(* Sleep quantum for the polling waits: long enough not to burn a core,
   short enough that admission deadlines keep ms granularity. *)
let poll_s = 0.001

let deadline_of ms = Int64.add (Monotonic_clock.now ()) (Int64.of_float (ms *. 1e6))
let past d = Int64.compare (Monotonic_clock.now ()) d >= 0

let acquire_for t ~timeout_ms =
  if try_acquire t then true
  else if timeout_ms <= 0.0 then false
  else begin
    let deadline = deadline_of timeout_ms in
    Mutex.protect t.lock (fun () -> t.waiting <- t.waiting + 1);
    let rec wait () =
      let got =
        Mutex.protect t.lock (fun () ->
            if t.in_use < t.capacity then begin
              t.in_use <- t.in_use + 1;
              true
            end
            else false)
      in
      if got then true
      else if past deadline then false
      else begin
        Unix.sleepf poll_s;
        wait ()
      end
    in
    Fun.protect
      ~finally:(fun () -> Mutex.protect t.lock (fun () -> t.waiting <- t.waiting - 1))
      wait
  end

let release t =
  Mutex.protect t.lock (fun () ->
      if t.in_use <= 0 then invalid_arg "Semaphore.release: no permit held";
      t.in_use <- t.in_use - 1;
      Condition.signal t.released)

let with_permit t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f

let idle t = Mutex.protect t.lock (fun () -> t.in_use = 0 && t.waiting = 0)

let await_idle ?timeout_ms t =
  match timeout_ms with
  | None ->
    while not (idle t) do
      Unix.sleepf poll_s
    done;
    true
  | Some ms ->
    let deadline = deadline_of ms in
    let rec wait () =
      if idle t then true
      else if past deadline then idle t
      else begin
        Unix.sleepf poll_s;
        wait ()
      end
    in
    wait ()
