lib/joins/engine.ml: Array Context Decompose Dictionary Fun Hashtbl List Printf Region Relation Stats String Structural_join Tm_exec Tm_obs Tm_query Tm_xmldb Twig
