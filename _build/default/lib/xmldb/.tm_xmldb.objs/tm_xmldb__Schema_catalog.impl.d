lib/xmldb/schema_catalog.ml: Hashtbl List Schema_path Shred
