lib/query/twig.ml: List Printf String
