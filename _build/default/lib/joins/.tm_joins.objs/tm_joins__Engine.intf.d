lib/joins/engine.mli: Context Tm_exec Tm_query
