(* Epoch-snapshot readers under a concurrent durable writer: queries
   pin an epoch at dispatch, so a result always reflects a single
   committed state — never a torn mix of pre- and post-commit pages.
   Verified deterministically (explicit pins straddling a commit, on
   the caller's domain and across pool workers) and by a 4-reader
   stress loop bracketing every result between the transactions known
   finished before the query and those started after it. *)

open Twigmatch
module T = Tm_xml.Xml_tree
module Epoch = Tm_storage.Epoch
module Check = Tm_check.Check

let check = Alcotest.check

let fresh_dir () =
  let path = Filename.temp_file "twigmvcc" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let seed_doc () = T.document [ T.elem "root" [ T.elem_text "seed" "x" ] ]
let note_twig = Tm_query.Xpath_parser.parse "//note"

let count ?pool db s =
  List.length (Executor.run ?pool ~hint:(Tm_plan.Hint.Force s) db note_twig).Executor.ids

let with_durable f =
  with_dir @@ fun dir ->
  let db = Database.create ~strategies:Database.[ RP; DP ] (seed_doc ()) in
  let d = Durable.create ~dir db in
  Fun.protect ~finally:(fun () -> Durable.close d) (fun () -> f db d)

let insert_note d ~parent = ignore (Durable.insert_subtree d ~parent (T.elem_text "note" "mvcc"))

(* A pinned domain keeps reading the snapshot it pinned, straight
   through a commit on the same domain — and the writer's own reads
   inside the transaction are NOT snapshotted (it must see its writes). *)
let test_pin_straddles_commit () =
  with_durable @@ fun db d ->
  let parent = db.Database.doc.T.roots.(0).T.id in
  insert_note d ~parent;
  Epoch.with_pin db.Database.pager (fun () ->
      check Alcotest.int "pinned: pre-commit count" 1 (count db Database.RP);
      insert_note d ~parent;
      check Alcotest.int "pinned: still the old snapshot" 1 (count db Database.RP);
      check Alcotest.int "pinned: DP agrees" 1 (count db Database.DP));
  check Alcotest.int "unpinned: the commit is visible" 2 (count db Database.RP);
  check Alcotest.int "unpinned: DP agrees" 2 (count db Database.DP)

(* The pin crosses into pool worker domains: Executor.run on a pool
   inherits the submitting domain's pin via the wrap-propagator. *)
let test_pool_workers_inherit_pin () =
  with_durable @@ fun db d ->
  let parent = db.Database.doc.T.roots.(0).T.id in
  insert_note d ~parent;
  let pool = Tm_par.Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Tm_par.Pool.shutdown pool)
    (fun () ->
      Epoch.with_pin db.Database.pager (fun () ->
          check Alcotest.int "pooled pinned: pre-commit count" 1 (count ~pool db Database.RP);
          insert_note d ~parent;
          check Alcotest.int "pooled pinned: workers read the snapshot" 1
            (count ~pool db Database.RP));
      check Alcotest.int "pooled unpinned: commit visible" 2 (count ~pool db Database.RP))

(* Stress: 4 reader domains loop queries while the writer commits.
   Bracket invariant for every result: at least the transactions that
   had finished before the query began, at most those started by the
   time it ended. Any torn read lands outside the bracket (or breaks
   the sorted-strictly-increasing id list). *)
let test_readers_never_torn () =
  with_durable @@ fun db d ->
  let parent = db.Database.doc.T.roots.(0).T.id in
  let txns = 32 in
  let started = Atomic.make 0 and finished = Atomic.make 0 in
  let stop = Atomic.make false in
  let bad = Atomic.make [] in
  let record_bad msg =
    let rec go () =
      let cur = Atomic.get bad in
      if not (Atomic.compare_and_set bad cur (msg :: cur)) then go ()
    in
    go ()
  in
  let rec sorted_strict = function
    | a :: (b :: _ as rest) -> a < b && sorted_strict rest
    | _ -> true
  in
  let reader i () =
    let strategy = if i mod 2 = 0 then Database.RP else Database.DP in
    let iters = ref 0 in
    while not (Atomic.get stop) do
      incr iters;
      let f0 = Atomic.get finished in
      let ids =
        try (Executor.run ~hint:(Tm_plan.Hint.Force strategy) db note_twig).Executor.ids
        with e ->
          let bt = Printexc.get_backtrace () in
          record_bad
            (Printf.sprintf "reader %d (%s) raised %s\n%s" i
               (Database.strategy_name strategy) (Printexc.to_string e) bt);
          Atomic.set stop true;
          []
      in
      let s1 = Atomic.get started in
      let k = List.length ids in
      if k < f0 || k > s1 then
        record_bad
          (Printf.sprintf "reader %d (%s): %d notes outside bracket [%d, %d]" i
             (Database.strategy_name strategy) k f0 s1);
      if not (sorted_strict ids) then
        record_bad (Printf.sprintf "reader %d: ids not strictly increasing" i)
    done;
    !iters
  in
  let readers = List.init 4 (fun i -> Domain.spawn (reader i)) in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      let iters = List.map Domain.join readers in
      check Alcotest.bool "every reader completed queries" true (List.for_all (fun n -> n > 0) iters))
    (fun () ->
      for _ = 1 to txns do
        Atomic.incr started;
        insert_note d ~parent;
        Atomic.incr finished
      done);
  (match Atomic.get bad with
  | [] -> ()
  | msgs -> Alcotest.failf "torn reads:\n%s" (String.concat "\n" msgs));
  check Alcotest.int "all commits landed" txns (count db Database.RP);
  let report = Check.check_database db in
  if not (Check.is_clean report) then
    Alcotest.failf "fsck after concurrent ingest:\n%s" (Check.report_to_string report)

let () =
  Alcotest.run "mvcc"
    [
      ( "epochs",
        [
          Alcotest.test_case "pin straddles a commit" `Quick test_pin_straddles_commit;
          Alcotest.test_case "pool workers inherit the pin" `Quick test_pool_workers_inherit_pin;
          Alcotest.test_case "4 readers never see torn state" `Slow test_readers_never_torn;
        ] );
    ]
