(* Parallel-execution tests: the Tm_par pool itself, four domains
   hammering one shared read-only database, pool-backed execution vs
   sequential, and the parallel DATAPATHS build — each cross-checked
   with the offline verifier (fsck) where stored structures are
   involved. *)

open Twigmatch

(* Small but non-trivial XMark instance shared by the stress tests. *)
let xdoc =
  lazy (Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 42; scale = 0.05 })

let xdb = lazy (Database.create (Lazy.force xdoc))

let xmark_twigs =
  lazy
    (List.filter_map
       (fun (q : Tm_datasets.Workload.query) ->
         if q.Tm_datasets.Workload.dataset = Tm_datasets.Workload.Xmark then
           Some (q.Tm_datasets.Workload.name, Tm_datasets.Workload.parse q)
         else None)
       Tm_datasets.Workload.all)

let mixed_strategies = Database.[ RP; DP; Edge ]

let eval_all db =
  List.concat_map
    (fun s ->
      List.map
        (fun (_, twig) -> (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids)
        (Lazy.force xmark_twigs))
    mixed_strategies

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  Tm_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "map preserves input order" (List.map (fun x -> x * x) xs)
    (Tm_par.Pool.map pool (fun x -> x * x) xs)

let test_map_inline () =
  Tm_par.Pool.with_pool ~jobs:1 @@ fun pool ->
  Alcotest.(check int) "jobs=1 pool reports 1" 1 (Tm_par.Pool.jobs pool);
  Alcotest.(check (list int))
    "jobs=1 is List.map" [ 2; 4; 6 ]
    (Tm_par.Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_exception_propagation () =
  Tm_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  (match Tm_par.Pool.map pool (fun x -> if x = 5 then failwith "boom" else x) (List.init 10 Fun.id) with
  | _ -> Alcotest.fail "expected the task's exception to reach the caller"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg);
  (* the pool survives a failed batch *)
  Alcotest.(check (list int)) "pool usable after failure" [ 2; 4 ]
    (Tm_par.Pool.map pool (fun x -> 2 * x) [ 1; 2 ])

let test_chunk () =
  let xs = List.init 10 Fun.id in
  let cs = Tm_par.Pool.chunk ~pieces:3 xs in
  Alcotest.(check int) "3 pieces" 3 (List.length cs);
  Alcotest.(check (list int)) "concat restores the list" xs (List.concat cs);
  List.iter
    (fun c ->
      let n = List.length c in
      Alcotest.(check bool) "piece sizes differ by at most one" true (n = 3 || n = 4))
    cs;
  Alcotest.(check (list (list int)))
    "never more pieces than elements"
    [ [ 1 ]; [ 2 ] ]
    (Tm_par.Pool.chunk ~pieces:5 [ 1; 2 ]);
  Alcotest.(check (list (list int))) "empty input" [] (Tm_par.Pool.chunk ~pieces:4 [])

(* ------------------------------------------------------------------ *)
(* Shared-database stress                                              *)
(* ------------------------------------------------------------------ *)

(* Four domains run the full mixed workload (3 strategies x every XMark
   twig) for a fixed iteration budget against ONE database; every
   domain must observe exactly the sequential results on every
   iteration, and the stored structures must verify clean afterwards
   (the striped buffer pool and locked decode caches may not tear). *)
let test_hammer_shared_db () =
  let db = Lazy.force xdb in
  let baseline = eval_all db in
  let iterations = 10 in
  let hammer () =
    let ok = ref true in
    for _ = 1 to iterations do
      if eval_all db <> baseline then ok := false
    done;
    !ok
  in
  let domains = List.init 4 (fun _ -> Domain.spawn hammer) in
  let oks = List.map Domain.join domains in
  Alcotest.(check (list bool))
    "every domain observed the sequential results"
    [ true; true; true; true ]
    oks;
  let report = Tm_check.Check.check_database db in
  Alcotest.(check string) "fsck clean after concurrent reads" ""
    (if Tm_check.Check.is_clean report then "" else Tm_check.Check.report_to_string report)

(* Pool-backed execution (per-path fan-out inside the executor) returns
   the same ids as the sequential plan for every strategy and twig. *)
let test_pool_matches_sequential () =
  let db = Lazy.force xdb in
  Tm_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  List.iter
    (fun s ->
      List.iter
        (fun (name, twig) ->
          let seq = (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids in
          let par = (Executor.run ~pool ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids in
          Alcotest.(check (list int))
            (Printf.sprintf "%s under %s, jobs=4" name (Database.strategy_name s))
            seq par)
        (Lazy.force xmark_twigs))
    Database.all_strategies

(* ------------------------------------------------------------------ *)
(* Parallel index build                                                *)
(* ------------------------------------------------------------------ *)

(* Partition-and-merge DATAPATHS/ROOTPATHS construction must be
   indistinguishable from the sequential build: same stored size, same
   query answers, and fsck (which recomputes the expected entry
   multiset from the document) must pass on the parallel product. *)
let test_parallel_build_equals_sequential () =
  let doc = Lazy.force xdoc in
  let strategies = Database.[ RP; DP ] in
  Tm_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  let seq_db = Database.create ~strategies doc in
  let par_db = Database.create ~par:pool ~strategies doc in
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "%s stored size identical" (Database.strategy_name s))
        (Database.strategy_size_bytes seq_db s)
        (Database.strategy_size_bytes par_db s))
    strategies;
  List.iter
    (fun s ->
      List.iter
        (fun (name, twig) ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s under %s: parallel build answers" name (Database.strategy_name s))
            (Executor.run ~hint:(Tm_plan.Hint.Force s) seq_db twig).Executor.ids
            (Executor.run ~hint:(Tm_plan.Hint.Force s) par_db twig).Executor.ids)
        (Lazy.force xmark_twigs))
    strategies;
  let report = Tm_check.Check.check_database par_db in
  Alcotest.(check string) "fsck clean after parallel build" ""
    (if Tm_check.Check.is_clean report then "" else Tm_check.Check.report_to_string report)

(* ------------------------------------------------------------------ *)
(* Cancellation tokens under concurrency                               *)
(* ------------------------------------------------------------------ *)

module Cancel = Tm_par.Cancel

(* N domains race [set_deadline_ms]/[check] against one token: every
   domain must observe the trip (no lost cancellation), and the trip
   must classify exactly once — Deadline here, whatever the
   interleaving. *)
let test_cancel_concurrent_expiry () =
  for _round = 1 to 20 do
    let tok = Cancel.token () in
    let barrier = Atomic.make 0 in
    let domains =
      List.init 4 (fun i ->
          Domain.spawn (fun () ->
              Atomic.incr barrier;
              while Atomic.get barrier < 4 do
                Domain.cpu_relax ()
              done;
              if i = 0 then Cancel.set_deadline_ms tok 0.0;
              (* spin until this domain observes the trip *)
              let rec wait n =
                if Cancel.cancelled tok then n
                else begin
                  Domain.cpu_relax ();
                  wait (n + 1)
                end
              in
              let spins = wait 0 in
              (match Cancel.check tok with
              | () -> Alcotest.fail "check after trip must raise"
              | exception Cancel.Cancelled -> ());
              ignore spins;
              Cancel.reason tok))
    in
    let reasons = List.map Domain.join domains in
    List.iter
      (fun r ->
        match r with
        | Some Cancel.Deadline -> ()
        | Some Cancel.Explicit -> Alcotest.fail "deadline expiry misclassified as Explicit"
        | None -> Alcotest.fail "tripped token lost its classification")
      reasons
  done

(* Explicit cancel racing deadline expiry: both trip, but the reason is
   classified exactly once — it stays whatever won, never flips. *)
let test_cancel_exactly_once_classification () =
  for _round = 1 to 50 do
    let tok = Cancel.with_deadline_ms 0.05 in
    let d = Domain.spawn (fun () -> Cancel.cancel tok) in
    ignore (Cancel.cancelled tok);
    Domain.join d;
    (* settle: force whichever side lost the race to run too *)
    ignore (Cancel.cancelled tok);
    let first = Cancel.reason tok in
    Alcotest.(check bool) "classified" true (first <> None);
    for _ = 1 to 100 do
      ignore (Cancel.cancelled tok);
      Cancel.cancel tok
    done;
    Alcotest.(check bool) "classification is sticky" true (Cancel.reason tok = first)
  done

let test_cancel_parent_chain () =
  let parent = Cancel.token () in
  let child = Cancel.token ~parent () in
  Alcotest.(check bool) "child starts live" false (Cancel.cancelled child);
  Cancel.cancel parent;
  Alcotest.(check bool) "parent trip reaches child" true (Cancel.cancelled child);
  Alcotest.(check bool) "reason inherited" true (Cancel.reason child = Some Cancel.Explicit);
  (* and the other direction must NOT propagate *)
  let parent2 = Cancel.token () in
  let child2 = Cancel.token ~parent:parent2 () in
  Cancel.cancel child2;
  Alcotest.(check bool) "child trip stays below" false (Cancel.cancelled parent2)

(* ------------------------------------------------------------------ *)
(* Semaphore                                                           *)
(* ------------------------------------------------------------------ *)

module Semaphore = Tm_par.Semaphore

let test_semaphore_bounds () =
  let s = Semaphore.create 2 in
  Alcotest.(check bool) "1st" true (Semaphore.try_acquire s);
  Alcotest.(check bool) "2nd" true (Semaphore.try_acquire s);
  Alcotest.(check bool) "3rd refused" false (Semaphore.try_acquire s);
  Semaphore.release s;
  Alcotest.(check bool) "slot returns" true (Semaphore.try_acquire s);
  Semaphore.release s;
  Semaphore.release s;
  (match Semaphore.release s with
  | () -> Alcotest.fail "over-release must be rejected"
  | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "await_idle on idle" true (Semaphore.await_idle ~timeout_ms:50.0 s)

let test_semaphore_concurrent () =
  let s = Semaphore.create 3 in
  let peak = Atomic.make 0 in
  let inside = Atomic.make 0 in
  let rec bump_peak v =
    let p = Atomic.get peak in
    if v > p && not (Atomic.compare_and_set peak p v) then bump_peak v
  in
  let domains =
    List.init 6 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 200 do
              Semaphore.with_permit s (fun () ->
                  let v = Atomic.fetch_and_add inside 1 + 1 in
                  bump_peak v;
                  Domain.cpu_relax ();
                  ignore (Atomic.fetch_and_add inside (-1)))
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check bool) "never above capacity" true (Atomic.get peak <= 3);
  Alcotest.(check int) "all permits home" 0 (Semaphore.in_use s);
  Alcotest.(check bool) "idle after the storm" true (Semaphore.await_idle ~timeout_ms:100.0 s)

let test_semaphore_acquire_for () =
  let s = Semaphore.create 1 in
  Semaphore.acquire s;
  let t0 = Unix.gettimeofday () in
  Alcotest.(check bool) "times out while held" false (Semaphore.acquire_for s ~timeout_ms:30.0);
  Alcotest.(check bool) "waited about that long" true (Unix.gettimeofday () -. t0 >= 0.02);
  Semaphore.release s;
  Alcotest.(check bool) "succeeds once free" true (Semaphore.acquire_for s ~timeout_ms:30.0);
  Semaphore.release s

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_map_order;
          Alcotest.test_case "jobs=1 inline" `Quick test_map_inline;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "chunking" `Quick test_chunk;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "concurrent expiry, exactly-once classification" `Quick
            test_cancel_concurrent_expiry;
          Alcotest.test_case "explicit vs deadline race is sticky" `Quick
            test_cancel_exactly_once_classification;
          Alcotest.test_case "parent chaining" `Quick test_cancel_parent_chain;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "bounds and over-release" `Quick test_semaphore_bounds;
          Alcotest.test_case "6 domains through 3 permits" `Quick test_semaphore_concurrent;
          Alcotest.test_case "acquire_for timeout" `Quick test_semaphore_acquire_for;
        ] );
      ( "stress",
        [
          Alcotest.test_case "4 domains hammer one database" `Quick test_hammer_shared_db;
          Alcotest.test_case "pool execution = sequential" `Quick test_pool_matches_sequential;
        ] );
      ( "build",
        [
          Alcotest.test_case "parallel build = sequential build" `Quick
            test_parallel_build_equals_sequential;
        ] );
    ]
