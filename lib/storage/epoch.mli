(** Per-domain snapshot pins over {!Pager} epochs.

    A pinned domain reads every page of the pinned pager as of the
    pinned epoch: {!Buffer_pool.read} consults {!pinned_for} and
    serves superseded pages from the pager's version chains. Pins are
    domain-local ([Domain.DLS]); {!capture}/{!restore} carry them into
    [Tm_par.Pool] worker domains. *)

type pin
(** A domain's pin state, as captured by {!capture} — opaque; pass it
    to {!restore} on another domain. *)

val capture : unit -> pin
(** The calling domain's current pin state (possibly "none"). *)

val restore : pin -> (unit -> 'a) -> 'a
(** [restore p f] runs [f] with the calling domain's pin state set to
    [p], restoring the previous state afterwards. Does {e not} touch
    the pager's pin registry — the capturing scope holds the count. *)

val pinned_for : Pager.t -> int option
(** The epoch the calling domain is pinned to for this pager, if any
    (pager identity is physical). Lock-free. *)

val with_pin : Pager.t -> (unit -> 'a) -> 'a
(** Run [f] pinned to the pager's current published epoch: registers
    the pin (keeping needed page versions alive), installs it in the
    domain slot, and releases both on exit. A domain already pinned on
    this pager keeps its existing (older) pin — nested scopes inherit
    the outer snapshot rather than observing later commits. *)
