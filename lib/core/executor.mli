(** Query execution: one physical plan template per indexing strategy
    (paper Section 5.1.2). Every plan covers the twig with its linear
    root-to-leaf paths, evaluates each to a binding relation over the
    branch points and the output node, and stitches the relations with
    relational joins — using exactly the access paths and join
    algorithms the paper attributes to each strategy.

    Planning is delegated to {!Tm_plan}: the cost-based planner picks
    cover, join order and strategy (cached per (generation, twig
    shape)), and {!run} adapts mid-query when a path's observed
    cardinality blows its estimate. *)

exception Timeout of { ms : float; stats : Tm_exec.Stats.t }
(** Raised by {!run} when its [deadline_ms] expires: [ms] is the
    deadline that was set, [stats] the work completed before expiry. *)

type result = {
  ids : int list;  (** sorted distinct data-node ids of the output node *)
  stats : Tm_exec.Stats.t;
  strategy : Database.strategy;  (** the strategy actually executed *)
  reason : string;
      (** one-line justification ("as requested" for forced plans, the
          planner's cost comparison under [Auto]; extended with the
          replan and fallback stories when either occurred) *)
  fallbacks : (Database.strategy * string) list;
      (** strategies abandoned before [strategy] answered, oldest
          first, each with why its index was unusable (empty on the
          healthy path) *)
  via_naive : bool;
      (** [true] when every indexed strategy was unusable and the
          answer came from the naive in-memory matcher; [strategy] then
          holds the originally planned strategy *)
  plan : Tm_plan.Plan.t;
      (** the plan in effect when the answer was produced: PCsubpath
          cover with estimates, join order, cost comparison; after a
          mid-query replan this is the {e final} plan *)
  replans : int;
      (** mid-query plan abandonments before the answer (Auto hints
          only; capped at {!Tm_plan.Planner.max_replans}) *)
  trace : Tm_obs.Obs.span option;
      (** the query's span tree, recorded when the {!Tm_obs.Obs} sink
          is enabled ([None] otherwise) *)
  trace_id : int;
      (** process-unique query id, assigned unconditionally; the
          {!Tm_obs.Journal} entry (when journaling is on), the root
          span's [trace] meta, and warnings raised during execution
          all carry it *)
}

val run :
  ?dp_use_inlj:bool ->
  ?hint:Tm_plan.Hint.t ->
  ?strict:bool ->
  ?cancel:Tm_par.Cancel.t ->
  ?deadline_ms:float ->
  ?pool:Tm_par.Pool.t ->
  ?jobs:int ->
  Database.t ->
  Tm_query.Twig.t ->
  result
(** Evaluate a twig under [hint]:
    - {!Tm_plan.Hint.Auto} (default) — the cost-based planner decides,
      consulting the plan cache and the journal calibration, and
      adapting mid-query (below);
    - [Force s] — execute strategy [s]; cover and join order are still
      computed for display, no costing, no adaptivity;
    - [Pin p] — execute a previously obtained {!Tm_plan.Plan.t}
      verbatim (no cache, no adaptivity) — the reproducibility and
      regression-pinning hook.

    Query tags absent from the data yield an empty result.
    [dp_use_inlj:false] (default true) disables index-nested-loop
    joins for the DP strategy — an ablation isolating the Figure 12(d)
    effect.

    {b Mid-query adaptivity} (Auto only): the executor watches each
    path's finished binding relation against the plan's estimate. When
    one blows it past the {!Tm_plan.Planner.should_replan} threshold
    (>10x), the attempt's cancellation token trips (stopping in-flight
    pool tasks), the query is re-planned with the observed cardinality
    as an override, and execution restarts — at most
    {!Tm_plan.Planner.max_replans} times. [replans] counts the
    abandonments; [plan] is the final plan; [reason] narrates each
    trigger.

    {b Graceful degradation} (default, [strict:false]): when the
    planned strategy's index is unusable — not materialized, corrupt
    ({!Tm_storage.Pager.Corrupt_page} from a checksum failure), failing
    I/O after the buffer pool's retries, or a lossy variant rejecting
    the query shape ({!Tm_index.Family.Unsupported}: [//] under Section
    4.2 schema compression, a Section 4.3-pruned head id) — execution
    falls back through DP, RP and JI to the naive in-memory matcher.
    Abandoned attempts are listed in [fallbacks] and narrated in
    [reason]; answers remain oracle-identical. With [strict:true] the
    first such failure propagates typed instead.

    [deadline_ms] arms a per-query deadline, checked between per-path
    evaluations and INLJ probe chunks (including inside pool tasks);
    expiry raises {!Timeout} with partial stats. Timeouts are never
    absorbed by fallback or replanning. [cancel] is an ambient
    {!Tm_par.Cancel.t} (e.g. a serving layer's per-request token): it
    parents every attempt-scoped token, so the caller tripping it —
    explicitly or by deadline — raises {!Timeout} here, while internal
    replan cancellations never leak into the caller's token. With both
    [cancel] and [deadline_ms], whichever expires first wins.

    [pool] fans the independent per-path index lookups (and DP's INLJ
    probe batches) out across a domain pool, joining the binding
    relations as they complete; results are identical to a sequential
    run. [jobs] (only consulted when [pool] is absent) creates an
    ephemeral pool for this one query — for repeated queries, create a
    {!Tm_par.Pool.t} once and pass [pool]. JI plans run sequentially.
    @raise Timeout when [deadline_ms] expires.
    @raise Tm_index.Family.Unsupported ([strict] only) when the
    strategy's index cannot answer the query shape.
    @raise Database.Index_not_built ([strict] only) when the strategy's
    index set was not materialized at {!Database.create} time.
    @raise Tm_storage.Pager.Corrupt_page ([strict] only) when an index
    page fails its checksum. *)

val path_cardinalities : Database.t -> Tm_query.Twig.t -> int list
(** Per-branch result sizes (the "Result Size Per Branch" column of
    Figures 7-8), one per linear path. *)

val choose_plan : Database.t -> Tm_query.Twig.t -> Database.strategy * string
(** Cost-based strategy choice from the pre-collected selectivity
    statistics — the Lore-style optimizer integration of paper Section
    6. Returns the strategy and a one-line justification (the
    [(strategy, reason)] projection of the {!Tm_plan.Plan.t} the
    planner builds; consults and fills the plan cache). *)

val run_auto : Database.t -> Tm_query.Twig.t -> result * Database.strategy * string
(** Compatibility alias for [run ~hint:Tm_plan.Hint.Auto]; the strategy
    and reason are duplicated from the {!result}. *)

val explain : ?analyze:bool -> ?hint:Tm_plan.Hint.t -> Database.t -> Tm_query.Twig.t -> string
(** Human-readable plan: the {!Tm_plan.Plan.t} rendering (shape, join
    order with per-path estimates, cost comparison, cache/calibration
    markers) followed by the strategy's physical plan shape. [hint]
    defaults to [Auto] (the planner's choice — consulting and filling
    the plan cache). With [analyze:true] the query is also executed
    with the obs sink enabled, and the recorded span tree (per-path and
    per-join timings, buffer-pool hit rates, row counts) plus the
    executor statistics are appended — EXPLAIN ANALYZE. *)
