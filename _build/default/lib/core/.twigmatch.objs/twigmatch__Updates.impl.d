lib/core/updates.ml: Array Asr Database Dictionary Edge_table Family Join_index List Option Printf Schema_catalog Schema_path Shred Tm_index Tm_xml Tm_xmldb
