(** The planner's cost model, in "entries touched" units — the paper's
    Section 6 crossover, generalized from the executor's original
    RP-vs-DP comparison to every costed strategy.

    - {b RP} scans and materializes every branch: cost = sum of branch
      estimates. Wins when branches are equally (un)selective — the
      Figure 12(a)/(c) regime where INLJ cannot be exploited.
    - {b DP} scans the most selective branch and probes the BoundIndex
      once per binding and remaining branch; each probe costs about one
      root-to-leaf descent ({!probe_cost_entries}). Wins when one branch
      is far more selective than the rest (Figure 12(b)/(d)).
    - {b JI} drives like DP but resolves interior positions with extra
      backward join-index lookups, so probes cost roughly twice as much;
      it only wins when DP is unavailable (the paper's "under reuse"
      niche).
    - {b Edge} climbs one backward link per step per instance: cost =
      sum of estimate x path length. Competitive only for short, highly
      selective paths. *)

let probe_cost_entries = 6

(* Strategies the Auto planner will consider; DG+Edge / IF+Edge / ASR
   are simulated comparison points and must be forced explicitly. *)
let costed = [ Strategy.RP; Strategy.DP; Strategy.Ji; Strategy.Edge ]

type input = {
  ests : int array;  (** calibrated per-path estimates, decomposition order *)
  lens : int array;  (** per-path step counts *)
}

let join_order ests =
  let idx = Array.init (Array.length ests) Fun.id in
  Array.stable_sort (fun a b -> Int.compare ests.(a) ests.(b)) idx;
  idx

let costs { ests; lens } ~built =
  let k = Array.length ests in
  let total = Array.fold_left ( + ) 0 ests in
  let emin = Array.fold_left min max_int ests in
  let fl = float_of_int in
  let edge_cost =
    let acc = ref 0.0 in
    Array.iteri (fun i e -> acc := !acc +. (fl e *. fl lens.(i))) ests;
    !acc
  in
  let cost_of = function
    | Strategy.RP -> Some (fl total)
    | Strategy.DP -> Some (fl emin +. (fl emin *. fl (k - 1) *. fl probe_cost_entries))
    | Strategy.Ji ->
      Some ((2.0 *. fl emin) +. (fl emin *. fl (k - 1) *. fl probe_cost_entries *. 2.0))
    | Strategy.Edge -> Some edge_cost
    | Strategy.DG_edge | Strategy.IF_edge | Strategy.Asr -> None
  in
  costed
  |> List.filter (fun s -> Strategy.mem s built)
  |> List.filter_map (fun s -> Option.map (fun c -> (s, c)) (cost_of s))
  |> List.sort (fun (sa, ca) (sb, cb) ->
         match Float.compare ca cb with 0 -> Strategy.compare sa sb | c -> c)

let describe = function
  | Strategy.RP -> "merge join over branch scans"
  | Strategy.DP -> "INLJ from the selective branch"
  | Strategy.Ji -> "join-index probes from the selective branch"
  | Strategy.Edge -> "per-step edge joins"
  | (Strategy.DG_edge | Strategy.IF_edge | Strategy.Asr) as s -> Strategy.name s ^ " plan"

let choose input ~built =
  match costs input ~built with
  | [] -> (Strategy.Edge, 0.0, [], "no costed strategy built: Edge table fallback")
  | ((winner, cost) :: _) as rivals ->
    let ests_s =
      Array.to_list input.ests |> List.map string_of_int |> String.concat ";"
    in
    let costs_s =
      List.map (fun (s, c) -> Printf.sprintf "%s~%.0f" (Strategy.name s) c) rivals
      |> String.concat " "
    in
    let reason =
      if Int.equal (Array.length input.ests) 1 then
        Printf.sprintf "single path: one %s lookup" (Strategy.name winner)
      else
        Printf.sprintf "%s: branch estimates [%s]; %s entries" (describe winner) ests_s
          costs_s
    in
    (winner, cost, rivals, reason)
