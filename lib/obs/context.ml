(** The ambient trace id: set by the executor for the extent of one
    query (and by the server for one request) and carried across domain
    boundaries by {!Tm_par.Pool} (tasks inherit the submitter's
    context), so events recorded on a worker domain — warnings, journal
    entries, flight-recorder events — can be attributed to the query
    that caused them. Independent of any enabled flag: context is
    identification, not measurement.

    This lives below both {!Obs} and {!Flight} so each can read the
    ambient id without depending on the other. *)

let key : int option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let get () = !(Domain.DLS.get key)

let with_context id f =
  let r = Domain.DLS.get key in
  let saved = !r in
  r := Some id;
  Fun.protect ~finally:(fun () -> r := saved) f
