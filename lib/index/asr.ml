(** Access Support Relations (Kemper-Moerkotte), adapted to XML as the
    paper does in Section 5.2.6: one relation per distinct rooted schema
    path present in the data (the ad-hoc-query configuration — "902 and
    235 tables for XMark and DBLP"), each holding the full tuple of node
    ids along the path.

    Differences from DATAPATHS that the paper calls out, and that this
    implementation preserves:
    - schema is encoded as the {e relation name} (here: which tree you
      open), so a [//] pattern must visit one structure per matching
      schema path, and the number of structures accessed is linear in
      the number of matching paths;
    - id columns are separate relational columns, so IdLists cannot be
      differentially encoded: payloads use the raw fixed-width codec.

    Each relation is a single B+-tree keyed on the leaf value (null
    sorts first), payload = the raw id tuple. *)

open Tm_storage
open Tm_xmldb

type relation = { rel_path : Schema_path.t; rel_tree : Bptree.t }

type t = {
  relations : (string, relation) Hashtbl.t; (* encoded rooted path -> relation *)
  catalog : Schema_catalog.t;
  pool : Buffer_pool.t; (* kept so updates can materialize new relations *)
}

let build ~pool ~dict ~catalog doc =
  (* Group root rows by schema path, then bulk load one tree per path. *)
  let groups : (string, (string * string) list ref) Hashtbl.t = Hashtbl.create 256 in
  Path_relation.fold_root_rows doc dict
    (fun () (row : Path_relation.row) ->
      let enc = Schema_path.encode row.Path_relation.schema in
      let bucket =
        match Hashtbl.find_opt groups enc with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.replace groups enc b;
          b
      in
      let key = Codec.encode_value row.Path_relation.value in
      let payload = Codec.idlist_raw_to_string row.Path_relation.idlist in
      bucket := (key, payload) :: !bucket)
    ();
  let relations = Hashtbl.create (Hashtbl.length groups) in
  Hashtbl.iter
    (fun enc bucket ->
      let rel_path = Schema_path.decode enc in
      let name = "asr:" ^ enc in
      let rel_tree = Bptree.bulk_load ~name pool (List.sort Codec.compare_kv !bucket) in
      Hashtbl.replace relations enc { rel_path; rel_tree })
    groups;
  { relations; catalog; pool }

(** Number of materialized relations (the paper's table count). *)
let relation_count t = Hashtbl.length t.relations

(** All relation trees (fsck support). *)
let trees t = Hashtbl.fold (fun _ r acc -> r.rel_tree :: acc) t.relations []

let size_bytes t =
  Hashtbl.fold (fun _ r acc -> acc + Bptree.size_bytes r.rel_tree) t.relations 0

let find_relation t path = Hashtbl.find_opt t.relations (Schema_path.encode path)

(** Fold over the id tuples of relation [path] whose leaf value matches
    [value] ([Some None] = structural rows, [None] = all rows — a full
    relation scan). Each tuple is the rooted id list [i1..ik]. *)
let scan_relation t ~path ?value f acc =
  match find_relation t path with
  | None -> acc
  | Some rel ->
    let fold_f acc _key payload = f acc (Codec.idlist_raw_of_string payload) in
    (match value with
    | None ->
      (* all rows; structural (null) rows duplicate value rows' tuples,
         so restrict to null rows to see each instance once *)
      Bptree.fold_range rel.rel_tree ~lo:"" ~hi:(Some "\x01") fold_f acc
    | Some v ->
      let key = Codec.encode_value v in
      Bptree.fold_range rel.rel_tree ~lo:key ~hi:(Some (key ^ "\x00")) fold_f acc)

(** Fold over the id tuples of relation [path] whose leaf value lies in
    the lexicographic range (bounds are (value, inclusive); [None] is
    open) — one contiguous scan of the value-ordered relation. *)
let scan_relation_range t ~path ~lo ~hi f acc =
  match find_relation t path with
  | None -> acc
  | Some rel ->
    let lo_key =
      match lo with Some (v, _) -> Codec.encode_value (Some v) | None -> "\x02"
    in
    let hi_key =
      match hi with
      | Some (v, _) -> Codec.prefix_successor (Codec.encode_value (Some v))
      | None -> None
    in
    let in_bound ~is_lo b v =
      match b with
      | None -> true
      | Some (bv, inc) ->
        let c = String.compare v bv in
        if is_lo then if inc then c >= 0 else c > 0 else if inc then c <= 0 else c < 0
    in
    Bptree.fold_range rel.rel_tree ~lo:lo_key ~hi:hi_key
      (fun acc key payload ->
        match Codec.decode_value key with
        | Some v when in_bound ~is_lo:true lo v && in_bound ~is_lo:false hi v ->
          f acc (Codec.idlist_raw_of_string payload)
        | Some _ | None -> acc)
      acc

(** Rooted schema paths (catalog entries) ending in [suffix] — the
    relations a [//]-headed pattern must visit. *)
let matching_paths t suffix = Schema_catalog.paths_with_suffix t.catalog suffix

(* ------------------------------------------------------------------ *)
(* Incremental maintenance                                             *)
(* ------------------------------------------------------------------ *)

let rows_of_node (info : Tm_xmldb.Shred.node_info) = Path_relation.node_root_rows info

(** Index one new node, creating its relation if the rooted schema path
    is new. *)
let insert_node t info =
  List.iter
    (fun (row : Path_relation.row) ->
      let enc = Schema_path.encode row.Path_relation.schema in
      let rel =
        match Hashtbl.find_opt t.relations enc with
        | Some r -> r
        | None ->
          let r =
            { rel_path = row.Path_relation.schema; rel_tree = Bptree.create ~name:("asr:" ^ enc) t.pool }
          in
          Hashtbl.replace t.relations enc r;
          r
      in
      Bptree.insert rel.rel_tree
        (Codec.encode_value row.Path_relation.value)
        (Codec.idlist_raw_to_string row.Path_relation.idlist))
    (rows_of_node info)

(** Un-index a node (empty relations are kept; harmless). *)
let remove_node t info =
  List.iter
    (fun (row : Path_relation.row) ->
      match Hashtbl.find_opt t.relations (Schema_path.encode row.Path_relation.schema) with
      | Some rel ->
        ignore
          (Bptree.delete rel.rel_tree
             (Codec.encode_value row.Path_relation.value)
             (Codec.idlist_raw_to_string row.Path_relation.idlist))
      | None -> ())
    (rows_of_node info)
