(** An overload-safe concurrent HTTP/1.1 endpoint over a loaded
    database, built on stdlib [Unix] sockets only.

    Endpoints (all GET): [/metrics] (Prometheus text), [/healthz]
    (canary lookup + pager fsck-lite + WAL status when a durable handle
    is attached), [/journal] and [/slow?threshold_ms=N] (query-lifecycle
    journal, JSON), [/warnings] (structured warnings, JSON), [/stats]
    (serving/overload counters, JSON), [/drain] (graceful drain), and
    [/query?q=XPATH&hint=...&timeout_ms=N].

    {!handle} is pure request dispatch (no sockets), so the endpoint
    surface is unit-testable; {!create}/{!run}/{!stop}/{!drain} wrap it
    in a loopback listener that admits connections onto a
    {!Tm_par.Pool} behind a bounded admission queue, sheds load with
    typed 429/503 + Retry-After when the queue fills or the observed
    p99 climbs past target, propagates per-request deadlines through
    {!Tm_par.Cancel} into {!Twigmatch.Executor.run}, trips a
    {!Breaker} to degraded mode on repeated storage failures, and
    hardens request parsing (413 size caps, 400 malformed, 408
    slowloris read deadlines).

    Accounting invariant: every accepted connection ends in exactly one
    of {!stats}[.responses], [.write_failures], or [.accept_faults] —
    nothing is silently dropped, even under [serve.accept]/[serve.write]
    failpoints. *)

type response = {
  status : int;
  content_type : string;
  body : string;
  retry_after_s : int option;  (** rendered as a [Retry-After] header *)
}

val handle :
  ?canary:Tm_query.Twig.t ->
  ?durable:Twigmatch.Durable.t ->
  ?cancel:Tm_par.Cancel.t ->
  ?breaker:Breaker.t ->
  Twigmatch.Database.t ->
  meth:string ->
  target:string ->
  response
(** Dispatch one request. [target] is the raw request target, e.g.
    ["/slow?threshold_ms=5"]; parameters are percent-decoded. [canary]
    overrides the /healthz lookup (default: the root tag of the first
    catalogued path). [durable] adds WAL status to /healthz — a
    poisoned write path with healthy reads reports 200 ["degraded"],
    not 500. [cancel] is the request deadline token, propagated into
    {!Twigmatch.Executor.run} as the parent of its attempt tokens.
    [breaker] guards /query: storage-class failures count toward
    tripping it, and an open breaker answers 503 + Retry-After without
    running the query. Never raises: errors become 4xx/5xx
    responses. *)

val url_decode : string -> string
(** Percent-decoding (plus [+] for space), as applied to query
    parameters. *)

(** {1 Overload policy} *)

type config = {
  max_in_flight : int;  (** connections executing concurrently *)
  max_queue : int;  (** admitted-but-waiting bound (queue depth) *)
  request_timeout_ms : float;
      (** per-request budget, armed at accept; covers queue wait *)
  read_timeout_ms : float;  (** slowloris guard: max wall time per read *)
  write_timeout_ms : float;  (** max wall time per response write *)
  max_request_bytes : int;  (** request-header size cap (413 beyond) *)
  drain_deadline_ms : float;  (** graceful-drain budget for in-flight work *)
  shed_p99_ms : float;
      (** latency target: at p99 <= target the full queue is usable,
          shrinking linearly to zero at 2x target *)
  breaker_failures : int;  (** consecutive storage failures that trip *)
  breaker_cooldown_ms : float;  (** initial breaker cooldown (doubles) *)
}

val default_config : config
(** 8 in flight, 64 queued, 10 s budget, 5 s read/write deadlines,
    16 KiB header cap, 30 s drain, 500 ms p99 target, breaker 5/1 s. *)

val shed_queue_limit : max_queue:int -> target_ms:float -> p99_ms:float option -> int
(** The adaptive admission-queue bound (exposed for tests): [max_queue]
    while the observed p99 is at or under [target_ms], 0 at
    [2 * target_ms], linear in between; [max_queue] when no latency has
    been observed yet. *)

(** {1 The socket server} *)

type t

val create :
  ?port:int ->
  ?canary:Tm_query.Twig.t ->
  ?durable:Twigmatch.Durable.t ->
  ?config:config ->
  Twigmatch.Database.t ->
  t
(** Bind a loopback listener. [port] 0 (the default) picks an ephemeral
    port — read it back with {!port}.
    @raise Invalid_argument on a non-positive [max_in_flight] or a
    negative [max_queue]. *)

val port : t -> int

type outcome =
  | Drained  (** drain requested; all in-flight work completed *)
  | Drain_timed_out of int
      (** drain requested but that many requests were still inside the
          server when the drain deadline expired *)
  | Stopped  (** {!stop} was called: listener closed immediately *)

val run : ?pool:Tm_par.Pool.t -> t -> outcome
(** Accept connections on the calling domain and serve each admitted
    one as a task on [pool] (default: an internal pool with one worker
    per execution slot, so handlers never run inline on the accept
    domain — a jobs=1 [pool] would let one slow client stall every
    accept behind it). Returns when {!stop} or {!drain} ends the accept
    loop; on drain, waits for in-flight and queued requests under
    [drain_deadline_ms] first. *)

val drain : t -> unit
(** Graceful drain: stop accepting (closes the listener, unblocking
    {!run}'s accept) but let admitted requests finish. Also triggered
    by [GET /drain]. Idempotent; async-signal-safe enough for a
    [Sys.signal] handler (an atomic flag and a [close]). *)

val stop : t -> unit
(** Hard stop: closes the listening socket, unblocking the accept loop;
    {!run} returns {!Stopped} without waiting for in-flight work (their
    tasks still run to completion on the pool). Idempotent. *)

(** {1 Introspection} *)

type stats = {
  accepted : int;  (** connections returned by [accept] *)
  admitted : int;  (** granted a slot and spawned *)
  responses : int;  (** full responses written (sheds included) *)
  shed_queue : int;  (** 429: admission queue full *)
  shed_overload : int;  (** 429: adaptive limit under latency pressure *)
  shed_deadline : int;  (** 503: budget expired while queued *)
  shed_breaker : int;  (** 503: circuit breaker open *)
  read_timeouts : int;  (** 408: slowloris read deadline hit *)
  write_failures : int;  (** response write failed (logged, counted) *)
  accept_faults : int;  (** [serve.accept] failpoint fired (logged) *)
  in_flight : int;  (** currently executing *)
  queued : int;  (** admitted, waiting for a worker *)
}

val stats : t -> stats
(** A snapshot of the serving counters. The accounting invariant holds
    at quiescence: [accepted = responses + write_failures +
    accept_faults]. *)

val shed_total : stats -> int
(** [shed_queue + shed_overload + shed_deadline + shed_breaker]. *)
