examples/auction_analysis.mli:
