(* Counting semaphore for admission control: a fixed number of permits,
   domain-safe, with non-blocking, blocking and deadline-bounded
   acquisition plus an idle-wait used by graceful drain.

   Blocking [acquire] parks on a condition variable signalled by
   [release]. The timed variants ([acquire_for], [await_idle]) poll on
   a short sleep instead: stdlib [Condition] has no timed wait, and the
   admission paths that need a bound are shedding decisions where
   millisecond granularity is plenty. *)

(* Park/timeout visibility: admission stalls are exactly the moments an
   overload post-mortem needs, so both land in the metrics sink and the
   flight recorder. *)
let c_parked = Tm_obs.Obs.counter "semaphore.parked"
let c_timeouts = Tm_obs.Obs.counter "semaphore.timeouts"

type t = {
  lock : Mutex.t;
  released : Condition.t;
  capacity : int;
  mutable in_use : int; [@analyze.guarded_by "lock"]
  mutable waiting : int; [@analyze.guarded_by "lock"]
}

let create capacity =
  if capacity < 0 then invalid_arg "Semaphore.create: capacity must be >= 0";
  {
    lock = Mutex.create ();
    released = Condition.create ();
    capacity;
    in_use = 0;
    waiting = 0;
  }

let capacity t = t.capacity
let in_use t = Mutex.protect t.lock (fun () -> t.in_use)
let waiting t = Mutex.protect t.lock (fun () -> t.waiting)
let available t = Mutex.protect t.lock (fun () -> t.capacity - t.in_use)

let try_acquire t =
  let got =
    Mutex.protect t.lock (fun () ->
        if t.in_use < t.capacity then begin
          t.in_use <- t.in_use + 1;
          Some t.in_use
        end
        else None)
  in
  match got with
  | Some n ->
    Tm_obs.Flight.emit Tm_obs.Flight.Sem_acquire n 0 "";
    true
  | None -> false

let acquire t =
  let n =
    Mutex.protect t.lock (fun () ->
        t.waiting <- t.waiting + 1;
        if t.in_use >= t.capacity then begin
          Tm_obs.Obs.incr c_parked;
          Tm_obs.Flight.emit Tm_obs.Flight.Sem_park t.waiting 0 ""
        end;
        while t.in_use >= t.capacity do
          Condition.wait t.released t.lock
        done;
        t.waiting <- t.waiting - 1;
        t.in_use <- t.in_use + 1;
        t.in_use)
  in
  Tm_obs.Flight.emit Tm_obs.Flight.Sem_acquire n 0 ""

(* Sleep quantum for the polling waits: long enough not to burn a core,
   short enough that admission deadlines keep ms granularity. *)
let poll_s = 0.001

let deadline_of ms = Int64.add (Monotonic_clock.now ()) (Int64.of_float (ms *. 1e6))
let past d = Int64.compare (Monotonic_clock.now ()) d >= 0

let acquire_for t ~timeout_ms =
  if try_acquire t then true
  else if timeout_ms <= 0.0 then begin
    Tm_obs.Obs.incr c_timeouts;
    Tm_obs.Flight.emit Tm_obs.Flight.Sem_timeout 0 0 "";
    false
  end
  else begin
    let deadline = deadline_of timeout_ms in
    Mutex.protect t.lock (fun () -> t.waiting <- t.waiting + 1);
    Tm_obs.Obs.incr c_parked;
    Tm_obs.Flight.emit Tm_obs.Flight.Sem_park (waiting t) 0 "";
    let rec wait () =
      let got =
        Mutex.protect t.lock (fun () ->
            if t.in_use < t.capacity then begin
              t.in_use <- t.in_use + 1;
              Some t.in_use
            end
            else None)
      in
      match got with
      | Some n ->
        Tm_obs.Flight.emit Tm_obs.Flight.Sem_acquire n 0 "";
        true
      | None ->
        if past deadline then begin
          Tm_obs.Obs.incr c_timeouts;
          Tm_obs.Flight.emit Tm_obs.Flight.Sem_timeout (int_of_float timeout_ms) 0 "";
          false
        end
        else begin
          Unix.sleepf poll_s;
          wait ()
        end
    in
    Fun.protect
      ~finally:(fun () -> Mutex.protect t.lock (fun () -> t.waiting <- t.waiting - 1))
      wait
  end

let release t =
  Mutex.protect t.lock (fun () ->
      if t.in_use <= 0 then invalid_arg "Semaphore.release: no permit held";
      t.in_use <- t.in_use - 1;
      Condition.signal t.released)

let with_permit t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f

let idle t = Mutex.protect t.lock (fun () -> t.in_use = 0 && t.waiting = 0)

let await_idle ?timeout_ms t =
  match timeout_ms with
  | None ->
    while not (idle t) do
      Unix.sleepf poll_s
    done;
    true
  | Some ms ->
    let deadline = deadline_of ms in
    let rec wait () =
      if idle t then true
      else if past deadline then idle t
      else begin
        Unix.sleepf poll_s;
        wait ()
      end
    in
    wait ()
