(* Tests for the twigql serve endpoint surface. [Server.handle] is
   pure request dispatch, so most of the surface is exercised without
   a socket; the socket tests bind real loopback listeners and drive
   them from other domains — including the overload behaviours:
   admission-queue 429s, hardened parsing (400/408/413), graceful
   drain, the circuit breaker, and WAL-aware /healthz. *)

open Twigmatch
module T = Tm_xml.Xml_tree
module Server = Tm_serve.Server
module Breaker = Tm_serve.Breaker
module Fault = Tm_fault.Fault

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let book_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem_text "title" "XML";
          T.elem "allauthors"
            [
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "poe" ];
              T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "doe" ];
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ];
            ];
          T.elem_text "year" "2000";
        ];
    ]

(* /healthz and s-less /query plan under `Auto, which needs RP and DP *)
let mk_db () = Database.create ~strategies:[ Database.RP; Database.DP ] (book_doc ())

(* ------------------------------------------------------------------ *)
(* Pure dispatch                                                       *)
(* ------------------------------------------------------------------ *)

let test_url_decode () =
  check Alcotest.string "percent and plus" "a b/c d" (Server.url_decode "a%20b%2Fc+d");
  check Alcotest.string "untouched" "/book//author" (Server.url_decode "/book//author");
  check Alcotest.string "stray percent passes through" "100%" (Server.url_decode "100%")

let test_metrics_endpoint () =
  let db = mk_db () in
  let r = Server.handle db ~meth:"GET" ~target:"/metrics" in
  check Alcotest.int "status" 200 r.Server.status;
  check Alcotest.bool "text content type" true (contains r.Server.content_type "text/plain");
  check Alcotest.bool "prometheus types" true (contains r.Server.body "# TYPE ");
  check Alcotest.bool "request counter present" true
    (contains r.Server.body "twigmatch_serve_requests")

let test_healthz_endpoint () =
  let db = mk_db () in
  let r = Server.handle db ~meth:"GET" ~target:"/healthz" in
  check Alcotest.int "status" 200 r.Server.status;
  check Alcotest.bool "healthy" true (contains r.Server.body "\"status\":\"ok\"");
  check Alcotest.bool "pager checked" true (contains r.Server.body "\"pager_violations\":0");
  check Alcotest.bool "canary ran" true (contains r.Server.body "\"canary_rows\":1")

let test_query_endpoint () =
  let db = mk_db () in
  let r = Server.handle db ~meth:"GET" ~target:"/query?q=%2Fbook%2F%2Fauthor&s=RP" in
  check Alcotest.int "status" 200 r.Server.status;
  check Alcotest.bool "row count" true (contains r.Server.body "\"rows\":3");
  check Alcotest.bool "strategy echoed" true (contains r.Server.body "\"strategy\":\"RP\"");
  check Alcotest.bool "ids listed" true (contains r.Server.body "\"ids\":[");
  check Alcotest.bool "trace id assigned" true (contains r.Server.body "\"trace_id\":")

let test_query_errors () =
  let db = mk_db () in
  let missing = Server.handle db ~meth:"GET" ~target:"/query" in
  check Alcotest.int "missing q" 400 missing.Server.status;
  let bad = Server.handle db ~meth:"GET" ~target:"/query?q=%5B%5Bnot-xpath" in
  check Alcotest.int "unparsable q" 400 bad.Server.status;
  check Alcotest.bool "parse error named" true (contains bad.Server.body "parse");
  let strat = Server.handle db ~meth:"GET" ~target:"/query?q=%2Fbook&s=NOPE" in
  check Alcotest.int "unknown strategy" 400 strat.Server.status

let test_journal_endpoints () =
  let db = mk_db () in
  Tm_obs.Journal.with_enabled true (fun () ->
      Tm_obs.Journal.clear ();
      ignore (Server.handle db ~meth:"GET" ~target:"/query?q=%2Fbook&s=RP");
      let j = Server.handle db ~meth:"GET" ~target:"/journal" in
      check Alcotest.int "journal status" 200 j.Server.status;
      check Alcotest.bool "journal has the query" true (contains j.Server.body "/book");
      let s = Server.handle db ~meth:"GET" ~target:"/slow?threshold_ms=0" in
      check Alcotest.int "slow status" 200 s.Server.status;
      check Alcotest.bool "slow is a JSON array" true
        (String.length s.Server.body >= 2 && s.Server.body.[0] = '[');
      Tm_obs.Journal.clear ())

let test_routing_errors () =
  let db = mk_db () in
  check Alcotest.int "unknown path" 404 (Server.handle db ~meth:"GET" ~target:"/nope").Server.status;
  check Alcotest.int "non-GET" 405 (Server.handle db ~meth:"POST" ~target:"/metrics").Server.status;
  let warnings = Server.handle db ~meth:"GET" ~target:"/warnings" in
  check Alcotest.int "warnings status" 200 warnings.Server.status;
  let index = Server.handle db ~meth:"GET" ~target:"/" in
  check Alcotest.int "index status" 200 index.Server.status;
  check Alcotest.bool "index lists endpoints" true (contains index.Server.body "/metrics")

(* ------------------------------------------------------------------ *)
(* The socket server                                                   *)
(* ------------------------------------------------------------------ *)

let fetch port target =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n" target
      in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec loop () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        end
      in
      loop ();
      Buffer.contents buf)

let test_socket_roundtrip () =
  let db = mk_db () in
  let t = Server.create ~port:0 db in
  check Alcotest.bool "ephemeral port picked" true (Server.port t > 0);
  let d = Domain.spawn (fun () -> Server.run t) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      ignore (Domain.join d))
    (fun () ->
      let health = fetch (Server.port t) "/healthz" in
      check Alcotest.bool "HTTP 200" true (contains health "HTTP/1.1 200");
      check Alcotest.bool "healthy over the wire" true (contains health "\"status\":\"ok\"");
      let metrics = fetch (Server.port t) "/metrics" in
      check Alcotest.bool "metrics over the wire" true
        (contains metrics "twigmatch_serve_requests");
      (* the admission semaphore's queue-depth gauge registers with the
         first server and exports alongside the shadow gauges *)
      check Alcotest.bool "queue depth gauge exported" true
        (contains metrics "# TYPE twigmatch_serve_queue_depth gauge\ntwigmatch_serve_queue_depth 0\n"))

(* Open a raw connection, send [send] verbatim, and read whatever the
   server answers until it closes — the hardened-parsing harness. *)
let raw_roundtrip port send =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      (try ignore (Unix.write_substring sock send 0 (String.length send))
       with Unix.Unix_error (Unix.EPIPE, _, _) -> () (* server already answered and closed *));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec loop () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
      in
      loop ();
      Buffer.contents buf)

let with_server ?config ?durable ~jobs f =
  let db = mk_db () in
  let t = Server.create ~port:0 ?config ?durable db in
  Tm_par.Pool.with_pool ~jobs @@ fun pool ->
  let d = Domain.spawn (fun () -> Server.run ~pool t) in
  let result = ref None in
  let join_once () =
    match !result with
    | Some o -> o
    | None ->
      let o = Domain.join d in
      result := Some o;
      o
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      ignore (join_once ()))
    (fun () ->
      f t (fun () ->
          Server.drain t;
          join_once ()))

let test_hardened_parsing () =
  let config = { Server.default_config with Server.read_timeout_ms = 200.0; max_request_bytes = 256 } in
  with_server ~config ~jobs:2 @@ fun t _drain ->
  let port = Server.port t in
  let malformed = raw_roundtrip port "GARBAGE\r\n\r\n" in
  check Alcotest.bool "malformed request line is a 400" true (contains malformed "HTTP/1.1 400");
  let huge = raw_roundtrip port ("GET / HTTP/1.1\r\nX-Pad: " ^ String.make 2048 'a' ^ "\r\n\r\n") in
  check Alcotest.bool "oversized headers are a 413" true (contains huge "HTTP/1.1 413");
  (* slowloris: a partial request line and then silence — the read
     deadline must answer 408 rather than hold the worker hostage *)
  let slow = raw_roundtrip port "GET /heal" in
  check Alcotest.bool "stalled request is a 408" true (contains slow "HTTP/1.1 408");
  let s = Server.stats t in
  check Alcotest.int "read timeout counted" 1 s.Server.read_timeouts;
  check Alcotest.int "all three accounted as responses" 3 s.Server.responses

let test_shed_429 () =
  let config =
    { Server.default_config with Server.max_in_flight = 1; max_queue = 0; read_timeout_ms = 1_000.0 }
  in
  with_server ~config ~jobs:2 @@ fun t _drain ->
  let port = Server.port t in
  (* Occupy the only slot: connect and say nothing; the admitted task
     blocks in read until its 1 s deadline. *)
  let blocker = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close blocker with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Unix.connect blocker (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      (* wait until the server has actually admitted it *)
      let rec settle n =
        if n = 0 then Alcotest.fail "blocker was never admitted"
        else if (Server.stats t).Server.in_flight < 1 then begin
          Unix.sleepf 0.01;
          settle (n - 1)
        end
      in
      settle 200;
      let shed = fetch port "/healthz" in
      check Alcotest.bool "second connection shed with 429" true (contains shed "HTTP/1.1 429");
      check Alcotest.bool "shed carries Retry-After" true (contains shed "Retry-After:");
      let s = Server.stats t in
      check Alcotest.bool "shed counted" true (s.Server.shed_queue >= 1))

let test_graceful_drain () =
  with_server ~jobs:2 @@ fun t drain ->
  let port = Server.port t in
  let ok = fetch port "/healthz" in
  check Alcotest.bool "served before drain" true (contains ok "HTTP/1.1 200");
  let resp = fetch port "/drain" in
  check Alcotest.bool "/drain acknowledged with 202" true (contains resp "HTTP/1.1 202");
  (match drain () with
  | Server.Drained -> ()
  | Server.Drain_timed_out n -> Alcotest.fail (Printf.sprintf "drain timed out with %d inside" n)
  | Server.Stopped -> Alcotest.fail "drain reported a hard stop");
  let s = Server.stats t in
  check Alcotest.int "every accepted connection answered" s.Server.accepted
    (s.Server.responses + s.Server.write_failures + s.Server.accept_faults)

let test_adaptive_shed_limit () =
  let f = Server.shed_queue_limit ~max_queue:64 ~target_ms:100.0 in
  check Alcotest.int "no signal: full queue" 64 (f ~p99_ms:None);
  check Alcotest.int "under target: full queue" 64 (f ~p99_ms:(Some 80.0));
  check Alcotest.int "at target: full queue" 64 (f ~p99_ms:(Some 100.0));
  check Alcotest.int "midway: half queue" 32 (f ~p99_ms:(Some 150.0));
  check Alcotest.int "at 2x target: no queue" 0 (f ~p99_ms:(Some 200.0));
  check Alcotest.int "beyond 2x: still none" 0 (f ~p99_ms:(Some 500.0))

let test_breaker_state_machine () =
  let b = Breaker.create ~failure_threshold:2 ~cooldown_ms:60.0 ~max_cooldown_ms:1_000.0 () in
  check Alcotest.bool "closed admits" true (Breaker.admit b = Breaker.Allow);
  Breaker.failure b;
  check Alcotest.bool "one failure stays closed" true (Breaker.state b = `Closed);
  Breaker.failure b;
  check Alcotest.bool "threshold trips open" true (Breaker.state b = `Open);
  (match Breaker.admit b with
  | Breaker.Reject { retry_after_ms } ->
    check Alcotest.bool "retry hint within cooldown" true
      (retry_after_ms > 0.0 && retry_after_ms <= 60.0)
  | Breaker.Allow -> Alcotest.fail "open breaker must reject");
  Unix.sleepf 0.09;
  check Alcotest.bool "cooled breaker admits the probe" true (Breaker.admit b = Breaker.Allow);
  check Alcotest.bool "second caller is rejected during the probe" true
    (match Breaker.admit b with Breaker.Reject _ -> true | Breaker.Allow -> false);
  Breaker.failure b;
  check Alcotest.bool "failed probe re-opens" true (Breaker.state b = `Open);
  Unix.sleepf 0.15 (* doubled cooldown: 120 ms *);
  check Alcotest.bool "re-cooled admits again" true (Breaker.admit b = Breaker.Allow);
  Breaker.success b;
  check Alcotest.bool "successful probe closes" true (Breaker.state b = `Closed);
  check Alcotest.int "two trips recorded" 2 (Breaker.trips b)

(* A success/failure burst from several domains must leave the breaker
   in a legal state and never raise. *)
let test_breaker_concurrent () =
  let b = Breaker.create ~failure_threshold:3 ~cooldown_ms:5.0 () in
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            for j = 1 to 500 do
              (match Breaker.admit b with
              | Breaker.Allow -> if (i + j) mod 3 = 0 then Breaker.failure b else Breaker.success b
              | Breaker.Reject _ -> ())
            done))
  in
  List.iter Domain.join domains;
  let s = Breaker.state b in
  check Alcotest.bool "legal terminal state" true
    (s = `Closed || s = `Open || s = `Half_open)

let test_healthz_wal_degraded () =
  let dir = Filename.temp_file "twigserve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let db = mk_db () in
  let d = Durable.create ~dir db in
  Fun.protect ~finally:(fun () -> Fault.clear ()) @@ fun () ->
  let healthy = Server.handle ~durable:d db ~meth:"GET" ~target:"/healthz" in
  check Alcotest.int "healthy status" 200 healthy.Server.status;
  check Alcotest.bool "wal section present" true (contains healthy.Server.body "\"wal\":");
  check Alcotest.bool "not poisoned yet" true (contains healthy.Server.body "\"poisoned\":false");
  (* Poison the write path: the armed commit failpoint crashes the
     transaction after pages were dirtied. *)
  let root = db.Database.doc.T.roots.(0).T.id in
  Fault.inject ~site:"wal.commit" (Fault.Every 1);
  (match Durable.insert_subtree d ~parent:root (T.elem_text "note" "x") with
  | exception Fault.Io_error _ -> ()
  | _ -> Alcotest.fail "armed wal.commit should fail the insert");
  Fault.clear ();
  let degraded = Server.handle ~durable:d db ~meth:"GET" ~target:"/healthz" in
  check Alcotest.int "degraded is still 200 (reads serve)" 200 degraded.Server.status;
  check Alcotest.bool "status says degraded" true
    (contains degraded.Server.body "\"status\":\"degraded\"");
  check Alcotest.bool "poison reason surfaced" true
    (contains degraded.Server.body "\"poisoned\":\"")

(* ------------------------------------------------------------------ *)
(* Breaker counters and the open-warning                               *)
(* ------------------------------------------------------------------ *)

let test_breaker_counters_and_warn () =
  let module Obs = Tm_obs.Obs in
  let opened = Obs.counter "breaker.opened"
  and closed = Obs.counter "breaker.closed"
  and rejections = Obs.counter "breaker.rejections" in
  let captured = ref [] in
  Obs.with_enabled true @@ fun () ->
  Obs.set_warn_handler (Some (fun w -> captured := w :: !captured));
  Fun.protect ~finally:(fun () -> Obs.set_warn_handler None) @@ fun () ->
  let o0 = Obs.value opened and c0 = Obs.value closed and r0 = Obs.value rejections in
  let b = Breaker.create ~failure_threshold:2 ~cooldown_ms:60.0 () in
  Breaker.failure ~cls:"io-error" b;
  check Alcotest.int "below threshold: no open counted" o0 (Obs.value opened);
  check Alcotest.int "below threshold: no warning" 0 (List.length !captured);
  Breaker.failure ~cls:"io-error" b;
  check Alcotest.int "threshold trip counted once" (o0 + 1) (Obs.value opened);
  (match Breaker.admit b with
  | Breaker.Reject _ -> ()
  | Breaker.Allow -> Alcotest.fail "open breaker must reject");
  ignore (Breaker.admit b);
  check Alcotest.int "every rejection counted" (r0 + 2) (Obs.value rejections);
  Unix.sleepf 0.09;
  check Alcotest.bool "cooled probe admitted" true (Breaker.admit b = Breaker.Allow);
  Breaker.success b;
  check Alcotest.int "close counted on the transition" (c0 + 1) (Obs.value closed);
  Breaker.success b;
  check Alcotest.int "steady-state success not re-counted" (c0 + 1) (Obs.value closed);
  match List.rev !captured with
  | [] -> Alcotest.fail "breaker open produced no warning"
  | w :: _ ->
    check Alcotest.string "warn site" "serve.breaker" w.Obs.w_site;
    check Alcotest.bool "warn names the failure class" true (contains w.Obs.w_msg "io-error");
    check Alcotest.bool "warn counts the failures" true
      (contains w.Obs.w_msg "2 consecutive failures")

(* ------------------------------------------------------------------ *)
(* /debug endpoints                                                    *)
(* ------------------------------------------------------------------ *)

let test_debug_flight_endpoint () =
  let module Flight = Tm_obs.Flight in
  let db = mk_db () in
  Flight.with_enabled false (fun () ->
      let r = Server.handle db ~meth:"GET" ~target:"/debug/flight" in
      check Alcotest.int "disabled recorder: 503" 503 r.Server.status;
      check Alcotest.bool "disabled body says how to enable" true
        (contains r.Server.body "TWIGMATCH_FLIGHT"));
  Flight.with_enabled true (fun () ->
      Flight.clear ();
      Flight.emit Flight.Wal_fsync 0 0 "";
      Flight.emit_traced 9 Flight.Req_begin 9 1 "";
      let r = Server.handle db ~meth:"GET" ~target:"/debug/flight" in
      check Alcotest.int "json timeline: 200" 200 r.Server.status;
      check Alcotest.bool "json content type" true (contains r.Server.content_type "json");
      check Alcotest.bool "kinds in the timeline" true
        (contains r.Server.body "\"wal.fsync\"" && contains r.Server.body "\"req.begin\"");
      check Alcotest.bool "trace id rides along" true (contains r.Server.body "\"trace\":9");
      let chrome = Server.handle db ~meth:"GET" ~target:"/debug/flight?format=chrome" in
      check Alcotest.bool "chrome format is a bare array" true
        (String.length chrome.Server.body >= 2
        && chrome.Server.body.[0] = '['
        && chrome.Server.body.[String.length chrome.Server.body - 1] = ']');
      let text = Server.handle db ~meth:"GET" ~target:"/debug/flight?format=text" in
      check Alcotest.bool "text content type" true (contains text.Server.content_type "text/plain");
      check Alcotest.bool "text timeline renders kinds" true
        (contains text.Server.body "wal.fsync"));
  Flight.clear ()

let test_debug_last_dump_endpoint () =
  let module Flight = Tm_obs.Flight in
  let db = mk_db () in
  let r = Server.handle db ~meth:"GET" ~target:"/debug/last-dump" in
  check Alcotest.int "no dump yet: 404" 404 r.Server.status;
  let path = Filename.temp_file "twigserve" ".dump" in
  Fun.protect
    ~finally:(fun () ->
      Flight.set_dump_path None;
      Flight.clear ();
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Flight.with_enabled true (fun () ->
      Flight.clear ();
      Flight.emit Flight.Wal_fsync 0 0 "";
      Flight.set_dump_path (Some path);
      match Flight.dump ~reason:"test-trigger" with
      | None -> Alcotest.fail "configured dump path should produce a dump"
      | Some p -> check Alcotest.string "dump landed on the configured path" path p);
  let r = Server.handle db ~meth:"GET" ~target:"/debug/last-dump" in
  check Alcotest.int "dump metadata: 200" 200 r.Server.status;
  check Alcotest.bool "names the path" true (contains r.Server.body path);
  check Alcotest.bool "names the reason" true (contains r.Server.body "test-trigger");
  check Alcotest.bool "counts events" true (contains r.Server.body "\"events\":")

let () =
  Alcotest.run "serve"
    [
      ( "dispatch",
        [
          Alcotest.test_case "url decoding" `Quick test_url_decode;
          Alcotest.test_case "/metrics" `Quick test_metrics_endpoint;
          Alcotest.test_case "/healthz" `Quick test_healthz_endpoint;
          Alcotest.test_case "/query" `Quick test_query_endpoint;
          Alcotest.test_case "/query errors" `Quick test_query_errors;
          Alcotest.test_case "/journal and /slow" `Quick test_journal_endpoints;
          Alcotest.test_case "routing errors" `Quick test_routing_errors;
          Alcotest.test_case "/healthz reports WAL, degrades when poisoned" `Quick
            test_healthz_wal_degraded;
          Alcotest.test_case "/debug/flight formats and 503" `Quick test_debug_flight_endpoint;
          Alcotest.test_case "/debug/last-dump metadata" `Quick test_debug_last_dump_endpoint;
        ] );
      ( "overload",
        [
          Alcotest.test_case "adaptive shed limit" `Quick test_adaptive_shed_limit;
          Alcotest.test_case "breaker state machine" `Quick test_breaker_state_machine;
          Alcotest.test_case "breaker under concurrent callers" `Quick test_breaker_concurrent;
          Alcotest.test_case "breaker counters and open warning" `Quick
            test_breaker_counters_and_warn;
          Alcotest.test_case "hardened parsing: 400/408/413" `Quick test_hardened_parsing;
          Alcotest.test_case "admission full sheds 429 + Retry-After" `Quick test_shed_429;
          Alcotest.test_case "graceful drain" `Quick test_graceful_drain;
        ] );
      ("socket", [ Alcotest.test_case "loopback round-trip" `Quick test_socket_roundtrip ]);
    ]
