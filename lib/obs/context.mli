(** The ambient trace id: set by the executor for the extent of one
    query (and by the server for one request) and carried across domain
    boundaries by {!Tm_par.Pool} (tasks inherit the submitter's
    context), so events recorded on a worker domain — warnings, journal
    entries, flight-recorder events — can be attributed to the query
    that caused them. Independent of any enabled flag: context is
    identification, not measurement.

    This lives below both {!Obs} and {!Flight} so each can read the
    ambient id without depending on the other. *)

val get : unit -> int option
(** The calling domain's ambient trace id, if one is installed. *)

val with_context : int -> (unit -> 'a) -> 'a
(** [with_context id f] runs [f] with [id] as the ambient trace id on
    this domain, restoring the previous context afterwards (nesting and
    exceptions included). *)
