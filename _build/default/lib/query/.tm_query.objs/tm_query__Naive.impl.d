lib/query/naive.ml: Array Decompose List String Tm_xml Twig
