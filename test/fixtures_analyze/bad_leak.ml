(* Fixture: manual lock/unlock around a call that may raise — the
   resource-safety pass must flag both halves of the leaky pair. *)

let lock = Mutex.create ()

let run f =
  Mutex.lock lock;
  let v = f () in
  Mutex.unlock lock;
  v
