(** Naive in-memory twig matcher — the golden oracle.

    Evaluates a twig directly on the {!Tm_xml.Xml_tree} by recursive
    descent, with none of the indexing machinery. Every index-based
    strategy must return exactly this answer; the integration tests
    enforce it. Complexity is O(|data| * |twig|) per node in the worst
    case, fine for test-sized documents and still usable (seconds) on
    the benchmark datasets for validation runs. *)

module T = Tm_xml.Xml_tree

let name_matches (n : T.node) name =
  match n.T.label with
  | T.Elem t | T.Attr t -> String.equal name "*" || String.equal t name
  | T.Value _ -> false

let value_matches (n : T.node) = function
  | None -> true
  | Some v -> (match T.leaf_value n with Some v' -> String.equal v v' | None -> false)

let range_matches_node (n : T.node) = function
  | None -> true
  | Some r -> (
    match T.leaf_value n with Some v -> Twig.range_matches r v | None -> false)

(* Does some node in [nodes] (for Child) or some descendant (for
   Descendant) satisfy twig node [tn]? *)
let rec sat (n : T.node) (tn : Twig.node) =
  name_matches n tn.Twig.name
  && value_matches n tn.Twig.value
  && range_matches_node n tn.Twig.range
  && List.for_all (fun (ax, c) -> branch_sat n ax c) tn.Twig.branches

and branch_sat (n : T.node) axis c =
  match axis with
  | Twig.Child -> Array.exists (fun ch -> sat ch c) n.T.children
  | Twig.Descendant ->
    let rec any_desc (m : T.node) =
      Array.exists (fun ch -> sat ch c || any_desc ch) m.T.children
    in
    any_desc n

(* Ids of data nodes bound to the output twig node, over all matches of
   [tn] rooted at [n]. *)
let rec outputs (n : T.node) (tn : Twig.node) acc =
  if
    not
      (name_matches n tn.Twig.name
      && value_matches n tn.Twig.value
      && range_matches_node n tn.Twig.range)
  then acc
  else if not (List.for_all (fun (ax, c) -> branch_sat n ax c) tn.Twig.branches) then acc
  else if tn.Twig.output then n.T.id :: acc
  else
    (* exactly one branch leads to the output node *)
    List.fold_left
      (fun acc (ax, c) ->
        if contains_output c then branch_outputs n ax c acc else acc)
      acc tn.Twig.branches

and contains_output (tn : Twig.node) =
  tn.Twig.output || List.exists (fun (_, c) -> contains_output c) tn.Twig.branches

and branch_outputs (n : T.node) axis c acc =
  match axis with
  | Twig.Child -> Array.fold_left (fun acc ch -> outputs ch c acc) acc n.T.children
  | Twig.Descendant ->
    let rec go acc (m : T.node) =
      Array.fold_left (fun acc ch -> go (outputs ch c acc) ch) acc m.T.children
    in
    go acc n

(** Sorted, de-duplicated ids of data nodes matching the twig's output
    node. *)
let query (doc : T.document) (t : Twig.t) =
  let start_nodes =
    match t.Twig.root_axis with
    | Twig.Child -> Array.to_list doc.T.roots
    | Twig.Descendant ->
      let all = ref [] in
      T.iter doc (fun n -> if not (T.is_value n) then all := n :: !all);
      List.rev !all
  in
  List.fold_left (fun acc n -> outputs n t.Twig.root acc) [] start_nodes
  |> List.sort_uniq compare

(** Number of data nodes matching a single linear path's leaf — the
    paper's per-branch result size (Figures 7 and 8). *)
let branch_cardinality (doc : T.document) (l : Decompose.linear) =
  (* Build a one-path twig whose output is the leaf and count. *)
  let rec to_spec = function
    | [] -> assert false
    | [ (s : Decompose.step) ] -> Twig.spec ?value:None ~output:true s.Decompose.name []
    | s :: rest -> Twig.spec s.Decompose.name [ ((List.hd rest).Decompose.axis, to_spec rest) ]
  in
  match l.Decompose.steps with
  | [] -> 0
  | first :: _ ->
    let spec = to_spec l.Decompose.steps in
    (* attach the value predicate to the leaf *)
    let rec with_value (s : Twig.spec) =
      match s.Twig.s_branches with
      | [] -> { s with Twig.s_value = l.Decompose.value; Twig.s_range = l.Decompose.range }
      | [ (ax, c) ] -> { s with Twig.s_branches = [ (ax, with_value c) ] }
      | _ -> assert false
    in
    let t = Twig.make first.Decompose.axis (with_value spec) in
    List.length (query doc t)
