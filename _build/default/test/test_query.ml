(* Tests for the query layer: twig AST, XPath parser, decomposition,
   pattern matching, naive matcher. *)

open Tm_query
module T = Tm_xml.Xml_tree

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* XPath parser                                                        *)
(* ------------------------------------------------------------------ *)

let test_parse_single_path () =
  let t = Xpath_parser.parse "/site/regions/namerica/item/quantity[. = '5']" in
  check Alcotest.int "5 nodes" 5 (Twig.node_count t);
  check Alcotest.bool "no //" false (Twig.has_descendant_edge t);
  check Alcotest.int "1 leaf" 1 (Twig.leaf_count t);
  let out = Twig.output_node t in
  check Alcotest.string "output is quantity" "quantity" out.Twig.name;
  check Alcotest.(option string) "value pred" (Some "5") out.Twig.value

let test_parse_twig () =
  let t =
    Xpath_parser.parse
      "/site[people/person/profile/@income = '9876.00']/open_auctions/open_auction[@increase = '75.00']"
  in
  check Alcotest.int "nodes" 8 (Twig.node_count t);
  check Alcotest.int "leaves" 2 (Twig.leaf_count t);
  let out = Twig.output_node t in
  check Alcotest.string "output" "open_auction" out.Twig.name;
  check Alcotest.(option string) "no value on output" None out.Twig.value;
  (* branch nodes: site (predicate + trunk) *)
  let branches = Twig.branch_nodes t in
  check Alcotest.(list string) "branch points" [ "site" ]
    (List.map (fun n -> n.Twig.name) branches)

let test_parse_descendant () =
  let t = Xpath_parser.parse "/site//item[quantity = '2'][location = 'United States']" in
  check Alcotest.bool "has //" true (Twig.has_descendant_edge t);
  let out = Twig.output_node t in
  check Alcotest.string "output is item" "item" out.Twig.name;
  check Alcotest.int "item branches" 2 (List.length out.Twig.branches)

let test_parse_leading_descendant () =
  let t = Xpath_parser.parse "//author[fn = 'jane']" in
  check Alcotest.bool "root axis" true (t.Twig.root_axis = Twig.Descendant)

let test_parse_attribute_step () =
  let t = Xpath_parser.parse "/a/@b" in
  check Alcotest.string "attr name stripped" "b" (Twig.output_node t).Twig.name

let test_parse_bare_literal () =
  let t = Xpath_parser.parse "/site[people/person/profile/@income = 46814.17]/x" in
  let rec find n =
    if n.Twig.name = "income" then Some n
    else List.fold_left (fun acc (_, c) -> if acc = None then find c else acc) None n.Twig.branches
  in
  match find t.Twig.root with
  | Some n -> check Alcotest.(option string) "bare literal" (Some "46814.17") n.Twig.value
  | None -> Alcotest.fail "income step missing"

let test_parse_nested_predicate_path () =
  let t = Xpath_parser.parse "/a[.//b/c = 'v']/d" in
  let branches = t.Twig.root.Twig.branches in
  check Alcotest.int "two branches" 2 (List.length branches);
  match branches with
  | (ax, b) :: _ ->
    check Alcotest.bool "descendant pred" true (ax = Twig.Descendant);
    check Alcotest.string "pred head" "b" b.Twig.name
  | [] -> Alcotest.fail "no branches"

let test_parse_ranges () =
  let t = Xpath_parser.parse "/a/b[. >= '10'][. < '20']" in
  let out = Twig.output_node t in
  check Alcotest.(option string) "no equality" None out.Twig.value;
  (match out.Twig.range with
  | Some { Twig.rlo = Some { bval = "10"; binc = true }; rhi = Some { bval = "20"; binc = false } }
    -> ()
  | _ -> Alcotest.fail "range bounds wrong");
  let t2 = Xpath_parser.parse "/a[b > 'x']" in
  (match t2.Twig.root.Twig.branches with
  | [ (_, b) ] -> (
    match b.Twig.range with
    | Some { Twig.rlo = Some { bval = "x"; binc = false }; rhi = None } -> ()
    | _ -> Alcotest.fail "predicate range wrong")
  | _ -> Alcotest.fail "expected one branch");
  check Alcotest.bool "range_matches inclusive" true
    (Twig.range_matches { Twig.rlo = Some { bval = "a"; binc = true }; rhi = None } "a");
  check Alcotest.bool "range_matches exclusive" false
    (Twig.range_matches { Twig.rlo = Some { bval = "a"; binc = false }; rhi = None } "a");
  (* mixing = with a bound on one step is rejected *)
  match Xpath_parser.parse "/a/b[. = 'x'][. > 'a']" with
  | exception Xpath_parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected rejection of mixed predicates"

let test_parse_wildcard () =
  let t = Xpath_parser.parse "/a/*/c" in
  let names = ref [] in
  ignore (Twig.fold_nodes (fun () n -> names := n.Twig.name :: !names) () t.Twig.root);
  check Alcotest.(list string) "names" [ "c"; "*"; "a" ] !names

let test_parse_errors () =
  let expect_fail s =
    match Xpath_parser.parse s with
    | exception Xpath_parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  List.iter expect_fail [ ""; "site"; "/"; "/a["; "/a[]"; "/a[b = ]"; "/a]"; "/a[b = 'x]" ]

let test_workload_parses () =
  List.iter
    (fun (q : Tm_datasets.Workload.query) ->
      match Xpath_parser.parse q.Tm_datasets.Workload.xpath with
      | t ->
        if Twig.leaf_count t < 1 then
          Alcotest.failf "%s: no leaves" q.Tm_datasets.Workload.name
      | exception Xpath_parser.Parse_error m ->
        Alcotest.failf "%s failed to parse: %s" q.Tm_datasets.Workload.name m)
    Tm_datasets.Workload.all

let test_twig_requires_one_output () =
  match Twig.make Twig.Child (Twig.spec "a" []) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for zero outputs"

(* ------------------------------------------------------------------ *)
(* Decomposition                                                       *)
(* ------------------------------------------------------------------ *)

let test_linear_paths_cover () =
  let t =
    Xpath_parser.parse
      "/site[people/person/name = 'x'][regions/namerica/item/location = 'y']/open_auctions/open_auction"
  in
  let paths = Decompose.linear_paths t in
  check Alcotest.int "three paths" 3 (List.length paths);
  (* every path starts at the twig root *)
  List.iter
    (fun (l : Decompose.linear) ->
      match l.Decompose.steps with
      | s :: _ -> check Alcotest.string "starts at site" "site" s.Decompose.name
      | [] -> Alcotest.fail "empty path")
    paths;
  (* the union of path uids covers all twig nodes *)
  let all_uids =
    List.concat_map Decompose.step_uids paths |> List.sort_uniq compare
  in
  check Alcotest.int "covers twig" (Twig.node_count t) (List.length all_uids)

let test_internal_value_node_gets_path () =
  (* a value predicate on an internal node contributes its own linear
     path ending there *)
  let t = Xpath_parser.parse "/a/b[. = 'v']/c" in
  let paths = Decompose.linear_paths t in
  check Alcotest.int "two paths" 2 (List.length paths);
  let values = List.map (fun (l : Decompose.linear) -> l.Decompose.value) paths in
  check Alcotest.(list (option string)) "value path first" [ Some "v"; None ] values

let test_deepest_shared_uid () =
  let t = Xpath_parser.parse "/a/b[c = 'x']/d" in
  match Decompose.linear_paths t with
  | [ p1; p2 ] ->
    let uid = Decompose.deepest_shared_uid p1 p2 in
    (* shared prefix of a/b/c and a/b/d is a/b; b is the branch *)
    let b_uid = (List.nth p1.Decompose.steps 1).Decompose.uid in
    check Alcotest.int "shared at b" b_uid uid
  | _ -> Alcotest.fail "expected two paths"

(* ------------------------------------------------------------------ *)
(* Pattern matching (match_all)                                        *)
(* ------------------------------------------------------------------ *)

let pat l = Array.of_list l
let c t = (Twig.Child, t)
let d t = (Twig.Descendant, t)

let test_match_exact () =
  check
    Alcotest.(list (list int))
    "exact"
    [ [ 0; 1; 2 ] ]
    (List.map Array.to_list (Decompose.match_all (pat [ c 1; c 2; c 3 ]) [| 1; 2; 3 |]))

let test_match_requires_both_anchors () =
  check Alcotest.(list (list int)) "leaf not at end" []
    (List.map Array.to_list (Decompose.match_all (pat [ c 1; c 2 ]) [| 1; 2; 3 |]));
  check Alcotest.(list (list int)) "root not at start" []
    (List.map Array.to_list (Decompose.match_all (pat [ c 2; c 3 ]) [| 1; 2; 3 |]))

let test_match_descendant () =
  check
    Alcotest.(list (list int))
    "skips levels"
    [ [ 0; 3 ] ]
    (List.map Array.to_list (Decompose.match_all (pat [ c 1; d 9 ]) [| 1; 2; 3; 9 |]));
  check
    Alcotest.(list (list int))
    "leading descendant"
    [ [ 2 ] ]
    (List.map Array.to_list (Decompose.match_all (pat [ d 3 ]) [| 1; 2; 3 |]))

let test_match_multiple_bindings () =
  (* //a//a over a path a/a: only one full anchoring (0,1); over a/a/a:
     the leaf must land at the end, the first step may bind 0 or 1 *)
  check
    Alcotest.(list (list int))
    "two bindings"
    [ [ 0; 2 ]; [ 1; 2 ] ]
    (List.map Array.to_list (Decompose.match_all (pat [ d 5; d 5 ]) [| 5; 5; 5 |]))

let test_child_suffix () =
  check Alcotest.(list int) "all-child pattern" [ 1; 2; 3 ]
    (Array.to_list (Decompose.child_suffix (pat [ c 1; c 2; c 3 ])));
  check Alcotest.(list int) "after last //" [ 7; 8 ]
    (Array.to_list (Decompose.child_suffix (pat [ c 1; d 7; c 8 ])));
  check Alcotest.(list int) "leading // only" [ 7; 8; 9 ]
    (Array.to_list (Decompose.child_suffix (pat [ d 7; c 8; c 9 ])))

let test_is_pcsubpath () =
  check Alcotest.bool "all child" true (Decompose.is_pcsubpath (pat [ c 1; c 2 ]));
  check Alcotest.bool "leading // ok" true (Decompose.is_pcsubpath (pat [ d 1; c 2 ]));
  check Alcotest.bool "internal // not" false (Decompose.is_pcsubpath (pat [ c 1; d 2 ]))

let prop_match_all_sound =
  (* every returned position vector is monotone, tag-correct, and
     respects the axes *)
  let gen =
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 4) (pair bool (int_bound 3)))
        (list_of_size Gen.(int_range 1 8) (int_bound 3)))
  in
  QCheck.Test.make ~name:"match_all positions are sound" ~count:500 gen (fun (spec, path) ->
      let pattern =
        Array.of_list
          (List.map (fun (desc, t) -> ((if desc then Twig.Descendant else Twig.Child), t)) spec)
      in
      let path = Array.of_list path in
      List.for_all
        (fun positions ->
          let n = Array.length positions in
          n = Array.length pattern
          && positions.(n - 1) = Array.length path - 1
          && (fst pattern.(0) = Twig.Descendant || positions.(0) = 0)
          && Array.for_all (fun p -> path.(p) = snd pattern.(0) || true) positions
          && List.for_all
               (fun i ->
                 path.(positions.(i)) = snd pattern.(i)
                 &&
                 if i = 0 then true
                 else
                   match fst pattern.(i) with
                   | Twig.Child -> positions.(i) = positions.(i - 1) + 1
                   | Twig.Descendant -> positions.(i) > positions.(i - 1))
               (List.init n Fun.id))
        (Decompose.match_all pattern path))

(* ------------------------------------------------------------------ *)
(* Naive matcher                                                       *)
(* ------------------------------------------------------------------ *)

let doc () =
  T.document
    [
      T.elem "a"
        [
          T.elem "b" [ T.elem_text "c" "1" ];
          T.elem "b" [ T.elem_text "c" "2"; T.elem "b" [ T.elem_text "c" "1" ] ];
        ];
    ]

let q s = Xpath_parser.parse s

let test_naive_basics () =
  let doc = doc () in
  check Alcotest.(list int) "root" [ 1 ] (Naive.query doc (q "/a"));
  check Alcotest.(list int) "all b" [ 2; 4; 6 ] (Naive.query doc (q "//b"));
  check Alcotest.(list int) "nested b" [ 6 ] (Naive.query doc (q "/a/b/b"));
  check Alcotest.(list int) "c=1" [ 3; 7 ] (Naive.query doc (q "//c[. = '1']"));
  check Alcotest.(list int) "b with c=1" [ 2; 6 ] (Naive.query doc (q "//b[c = '1']"));
  check Alcotest.(list int) "b with c=1 under b" [ 6 ] (Naive.query doc (q "/a/b//b[c = '1']"));
  check Alcotest.(list int) "no match" [] (Naive.query doc (q "//b[c = '9']"));
  check Alcotest.(list int) "missing tag" [] (Naive.query doc (q "//zzz"))

let test_naive_twig_semantics () =
  (* existential branch semantics: both predicates must hold at the
     same b node *)
  let doc = doc () in
  check Alcotest.(list int) "b[c='2'][b/c='1']" [ 4 ]
    (Naive.query doc (q "//b[c = '2'][b/c = '1']"));
  check Alcotest.(list int) "b[c='1'][b]" [] (Naive.query doc (q "//b[c = '1'][b/c = '2']"))

let suite =
  [
    ( "xpath",
      [
        Alcotest.test_case "single path" `Quick test_parse_single_path;
        Alcotest.test_case "twig with predicates" `Quick test_parse_twig;
        Alcotest.test_case "descendant axis" `Quick test_parse_descendant;
        Alcotest.test_case "leading //" `Quick test_parse_leading_descendant;
        Alcotest.test_case "attribute step" `Quick test_parse_attribute_step;
        Alcotest.test_case "bare literal" `Quick test_parse_bare_literal;
        Alcotest.test_case "nested predicate path" `Quick test_parse_nested_predicate_path;
        Alcotest.test_case "range predicates" `Quick test_parse_ranges;
        Alcotest.test_case "wildcard step" `Quick test_parse_wildcard;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "whole workload parses" `Quick test_workload_parses;
        Alcotest.test_case "twig needs one output" `Quick test_twig_requires_one_output;
      ] );
    ( "decompose",
      [
        Alcotest.test_case "linear paths cover" `Quick test_linear_paths_cover;
        Alcotest.test_case "internal value path" `Quick test_internal_value_node_gets_path;
        Alcotest.test_case "deepest shared uid" `Quick test_deepest_shared_uid;
      ] );
    ( "match_all",
      [
        Alcotest.test_case "exact" `Quick test_match_exact;
        Alcotest.test_case "both ends anchored" `Quick test_match_requires_both_anchors;
        Alcotest.test_case "descendant" `Quick test_match_descendant;
        Alcotest.test_case "multiple bindings" `Quick test_match_multiple_bindings;
        Alcotest.test_case "child suffix" `Quick test_child_suffix;
        Alcotest.test_case "is_pcsubpath" `Quick test_is_pcsubpath;
        qtest prop_match_all_sound;
      ] );
    ( "naive",
      [
        Alcotest.test_case "basics" `Quick test_naive_basics;
        Alcotest.test_case "twig semantics" `Quick test_naive_twig_semantics;
      ] );
  ]

let () = Alcotest.run "tm_query" suite
