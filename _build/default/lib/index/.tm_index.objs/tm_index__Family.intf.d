lib/index/family.mli: Tm_storage Tm_xml Tm_xmldb
