examples/quickstart.mli:
