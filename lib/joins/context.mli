(** Shared context for the structural-join engines: region index, tag
    index (start-sorted node streams) and the Edge table's value index.
    A context is a snapshot of the document at {!build} time; rebuild it
    after structural updates. *)

type t = {
  region : Tm_xmldb.Region.t;
  edge : Tm_xmldb.Edge_table.t;
  dict : Tm_xmldb.Dictionary.t;
  tag_index : Tm_storage.Bptree.t;  (** designator -> u32 node id, start-sorted per tag *)
}

val build :
  pool:Tm_storage.Buffer_pool.t ->
  dict:Tm_xmldb.Dictionary.t ->
  edge:Tm_xmldb.Edge_table.t ->
  Tm_xml.Xml_tree.document ->
  t

val size_bytes : t -> int
(** Space of the tag index (region index and Edge table are accounted
    by their owners). *)

val tag_stream : t -> int -> int list
(** Start-sorted stream of all nodes with the given tag. *)

val value_stream : t -> int -> string -> int list
(** Start-sorted stream of nodes with the tag and leaf value. *)

val all_stream : t -> int list
(** Start-sorted stream of every element/attribute node (wildcards). *)

val node_value : t -> int -> string option
(** Leaf value of a node (one backward-link lookup). *)
