(** Generator for the 4-ary relation [(HeadId, SchemaPath, LeafValue,
    IdList)] of paper Section 3.1: root-path rows (Figure 4, feeding
    ROOTPATHS) and all-subpath rows (Figure 5, feeding DATAPATHS). Every
    path yields a null-value row plus a value row when it ends at a node
    with a leaf value. *)

type row = {
  head : int;  (** 0 = virtual root; otherwise the subpath's start node *)
  schema : Schema_path.t;  (** includes the head's own tag (Figure 2) *)
  value : string option;
  idlist : int list;  (** ids below the head; excludes the head itself *)
}

val node_root_rows : Shred.node_info -> row list
(** Root-path rows of a single node (incremental maintenance). *)

val node_all_rows : Shred.node_info -> row list
(** All-subpath rows of a single node (incremental maintenance). *)

val fold_root_rows :
  Tm_xml.Xml_tree.document -> Dictionary.t -> ('a -> row -> 'a) -> 'a -> 'a

val fold_all_rows :
  Tm_xml.Xml_tree.document -> Dictionary.t -> ('a -> row -> 'a) -> 'a -> 'a
(** Theta(nodes x depth) rows — the paper's space-time tradeoff. *)

val root_rows : Tm_xml.Xml_tree.document -> Dictionary.t -> row list
val all_rows : Tm_xml.Xml_tree.document -> Dictionary.t -> row list
