lib/xmldb/region.ml: Array Tm_xml
