(** LRU buffer pool over a {!Pager}: the paper's fixed-size DB2 buffer
    pool analogue. Logical reads, misses (simulated I/O) and evictions
    are counted; dirty pages are written back on eviction and flush.

    Domain-safe via striped locks: frames are partitioned by
    [page id mod stripes], each stripe with its own mutex, LRU order and
    capacity share, so concurrent readers on different pages proceed in
    parallel and replacement is approximately-global LRU. *)

type t

val max_attempts : int
(** Bound on attempts per pager operation: transient faults (an
    injected {!Tm_fault.Fault.Io_error} or a {!Pager.Corrupt_page} from
    torn injected bytes) are retried with exponential relax-loop
    backoff up to this many times; the last error then propagates.
    Retries are counted in {!stats} and as [buffer_pool.retries].
    The [buffer_pool.evict] failpoint fires at the head of each
    eviction and is covered by the same retry. *)

val create : ?capacity:int -> Pager.t -> t
(** [capacity] is a number of frames (default 1024).
    @raise Invalid_argument if capacity < 1. *)

val pager : t -> Pager.t
val capacity : t -> int

val read : t -> int -> bytes
(** Read a page through the pool. The returned bytes must not be
    mutated; use {!write} to modify a page. When the calling domain
    holds an {!Epoch} pin older than the page's current epoch, the
    pinned snapshot version is served uncached from the pager's
    version chain (counted as a miss). *)

val read_versioned : t -> int -> bytes * bool
(** Like {!read}, also reporting whether the bytes came from a
    superseded snapshot version ([true] = stale: do not cache decoded
    forms under the page's current version). *)

val write : t -> int -> bytes -> unit
(** Replace a page's contents. Write-back caching normally; when the
    calling domain is the active {!Pager} transaction's writer, the
    write goes through to the pager immediately (capturing the
    pre-image for pinned readers) and the frame is refreshed clean. *)

val invalidate : t -> int list -> unit
(** Drop the frames caching the given pages without write-back — used
    after {!Pager.abort_txn} rolled their images back. *)

val in_txn_writer : t -> bool
(** Passthrough for {!Pager.in_txn_writer} on the underlying pager. *)

val add_participant : t -> (committed:bool -> unit) -> unit
(** Passthrough for {!Pager.add_participant} on the underlying pager. *)

val alloc : t -> int
(** Allocate a fresh page via the pager and cache it dirty. *)

val flush_all : t -> unit
(** Write every dirty frame back to the pager. *)

val clear : t -> unit
(** Flush, then drop every frame — simulates a cold cache. *)

type stats = { logical_reads : int; misses : int; evictions : int; retries : int }

val stats : t -> stats
val reset_stats : t -> unit
