let value =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some n -> n
  | None -> 42

let announced = ref false

let rand () =
  if not !announced then begin
    announced := true;
    Printf.eprintf "[tm_testsupport] qcheck seed = %d (replay with QCHECK_SEED=%d)\n%!" value value
  end;
  Random.State.make [| value |]

let to_alcotest ?verbose ?long t = QCheck_alcotest.to_alcotest ?verbose ?long ~rand:(rand ()) t
