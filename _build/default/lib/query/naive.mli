(** Naive in-memory twig matcher — the golden oracle every index-based
    strategy is tested against. *)

val query : Tm_xml.Xml_tree.document -> Twig.t -> int list
(** Sorted, de-duplicated ids of data nodes bound to the twig's output
    node over all matches. *)

val branch_cardinality : Tm_xml.Xml_tree.document -> Decompose.linear -> int
(** Number of matches of one linear path (the paper's per-branch result
    size). *)
