exception Cancelled

let () =
  Printexc.register_printer (function Cancelled -> Some "Tm_par.Cancel.Cancelled" | _ -> None)

type reason = Explicit | Deadline

type t = {
  tripped : bool Atomic.t;
  reason : reason option Atomic.t;
      (* classified exactly once, by compare-and-set: with N domains
         racing deadline expiry against an explicit [cancel], exactly
         one classification wins and it never changes afterwards *)
  deadline_ns : int64 option Atomic.t; (* absolute, monotonic; None = explicit-only *)
  budget_ms : float option Atomic.t; (* the relative deadline, kept for reporting *)
  parent : t option; (* tripping the parent trips this token too *)
}

(* [never] is shared, so [cancel]/[set_deadline_ms] must not be able to
   trip it for everyone; both special-case it below. *)
let never =
  {
    tripped = Atomic.make false;
    reason = Atomic.make None;
    deadline_ns = Atomic.make None;
    budget_ms = Atomic.make None;
    parent = None;
  }

let token ?parent () =
  {
    tripped = Atomic.make false;
    reason = Atomic.make None;
    deadline_ns = Atomic.make None;
    budget_ms = Atomic.make None;
    parent;
  }

(* The exactly-once classification point: only the first caller's
   reason sticks. *)
let classify t r = ignore (Atomic.compare_and_set t.reason None (Some r))

let set_deadline_ms t ms =
  if t != never then begin
    let now = Monotonic_clock.now () in
    Atomic.set t.budget_ms (Some ms);
    Atomic.set t.deadline_ns (Some (Int64.add now (Int64.of_float (ms *. 1e6))));
    if ms <= 0.0 then begin
      classify t Deadline;
      if not (Atomic.exchange t.tripped true) then
        Tm_obs.Flight.emit Tm_obs.Flight.Cancel_deadline (int_of_float ms) 0 ""
    end
  end

let with_deadline_ms ?parent ms =
  let t = token ?parent () in
  set_deadline_ms t ms;
  t

let cancel t =
  if t != never then begin
    classify t Explicit;
    if not (Atomic.exchange t.tripped true) then
      Tm_obs.Flight.emit Tm_obs.Flight.Cancel_explicit 0 0 ""
  end

let rec cancelled t =
  Atomic.get t.tripped
  || (match Atomic.get t.deadline_ns with
     | None -> false
     | Some d ->
       (* Latch, so a tripped deadline stays tripped even if the clock
          comparison were to flap. *)
       Int64.compare (Monotonic_clock.now ()) d >= 0
       && begin
            classify t Deadline;
            (* Exchange so racing domains record one trip, not N. *)
            if not (Atomic.exchange t.tripped true) then
              Tm_obs.Flight.emit Tm_obs.Flight.Cancel_deadline
                (match Atomic.get t.budget_ms with
                | Some ms -> int_of_float ms
                | None -> 0)
                0 "";
            true
          end)
  || (match t.parent with None -> false | Some p -> cancelled p)

let rec reason t =
  match Atomic.get t.reason with
  | Some _ as r -> r
  | None -> ( match t.parent with None -> None | Some p -> reason p)

let check t = if cancelled t then raise Cancelled

let deadline_ms t = Atomic.get t.budget_ms
