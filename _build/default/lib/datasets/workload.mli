(** The paper's query workload (Figures 7, 8, 10), stated as XPath
    strings over the generated datasets. *)

type dataset = Xmark | Dblp

type query = {
  name : string;
  dataset : dataset;
  xpath : string;
  branches : int;  (** the "Num. of Branches" axis *)
  group : string;  (** experiment family *)
}

val all : query list

val find : string -> query
(** @raise Invalid_argument on an unknown name. *)

val xmark_queries : query list
val dblp_queries : query list

val recursive_variant : query -> query
(** Section 5.2.4: the same query with a leading [//]. *)

val parse : query -> Tm_query.Twig.t
