(* Index space/functionality tradeoffs (paper Section 4).

     dune exec examples/index_tradeoffs.exe -- [scale]

   Builds ROOTPATHS/DATAPATHS under each compression regime and shows
   what each one costs and what it can still answer:

   - differential IdList encoding (lossless, Section 4.1);
   - schema-path dictionary encoding (Section 4.2 - smaller, but a
     query with '//' is rejected);
   - HeadId pruning (Section 4.3 - much smaller DATAPATHS, but
     index-nested-loop probes only work at retained branch points). *)

open Twigmatch

let check_recursive db =
  let twig = Tm_query.Xpath_parser.parse "//item[quantity = '2']" in
  match Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig with
  | r -> Printf.sprintf "'//' ok (%d results)" (List.length r.Executor.ids)
  | exception Tm_index.Family.Unsupported _ -> "'//' REJECTED"

let () =
  let scale = if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.25 in
  Printf.printf "generating XMark-like data (scale %.2f)...\n%!" scale;
  let doc = Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 42; scale } in
  let strategies = Database.[ RP; DP ] in

  let branch_ids =
    (* heads the workload can use for INLJ probes: site, item, auction *)
    let set = Hashtbl.create 1024 in
    Tm_xml.Xml_tree.iter doc (fun n ->
        match n.Tm_xml.Xml_tree.label with
        | Tm_xml.Xml_tree.Elem ("site" | "item" | "open_auction") ->
          Hashtbl.replace set n.Tm_xml.Xml_tree.id ()
        | _ -> ());
    set
  in

  let variants =
    [
      ("raw idlists (no 4.1)", fun () -> Database.create ~strategies ~idlist_codec:`Raw doc);
      ("delta idlists (default)", fun () -> Database.create ~strategies doc);
      ( "schema-compressed (4.2)",
        fun () -> Database.create ~strategies ~schema_compressed:true doc );
      ( "headid-pruned (4.3)",
        fun () -> Database.create ~strategies ~head_filter:(Hashtbl.mem branch_ids) doc );
    ]
  in
  Printf.printf "%-26s | %10s | %10s | %s\n" "variant" "RP bytes" "DP bytes" "functionality";
  Printf.printf "%s\n" (String.make 78 '-');
  List.iter
    (fun (name, build) ->
      let db = build () in
      Printf.printf "%-26s | %10d | %10d | %s\n" name
        (Database.strategy_size_bytes db Database.RP)
        (Database.strategy_size_bytes db Database.DP)
        (check_recursive db))
    variants;

  (* The pruned DATAPATHS still answers everything through IdLists; a
     twig whose branch point was retained keeps its INLJ plan. *)
  let db = Database.create ~strategies ~head_filter:(Hashtbl.mem branch_ids) doc in
  let twig =
    Tm_query.Xpath_parser.parse
      "/site/open_auctions/open_auction[annotation/author/@person = 'person22082']/time"
  in
  let r = Executor.run ~hint:(Tm_plan.Hint.Force Database.DP) db twig in
  Printf.printf
    "\npruned DATAPATHS, Q10x-style query: %d results, %d INLJ probes (branch point retained)\n"
    (List.length r.Executor.ids)
    r.Executor.stats.Tm_exec.Stats.inlj_probes
