lib/storage/bptree.ml: Array Buffer Buffer_pool Bytes Codec Hashtbl List Option Pager Printf String Tm_obs
