(** Simulated disk: a growable array of fixed-size pages.

    The pager is the bottom of the storage stack. It hands out page ids,
    stores raw page images, and counts {e physical} reads and writes.
    All structured access should go through {!Buffer_pool}, which adds
    caching and counts {e logical} accesses; the gap between the two is
    the simulated I/O that the benchmark harness reports.

    A single mutex serialises every operation, making the pager safe to
    share across domains. The lock covers little work (an array slot
    swap plus a [Bytes.copy]), and the buffer pool absorbs most traffic
    before it reaches the pager, so contention here is not the
    bottleneck it would be on a real disk. *)

(* Observability mirrors of the physical I/O counters, plus byte
   volumes (every transfer moves exactly one page image). *)
let c_reads = Tm_obs.Obs.counter "pager.physical_reads"
let c_writes = Tm_obs.Obs.counter "pager.physical_writes"
let c_read_bytes = Tm_obs.Obs.counter "pager.read_bytes"
let c_write_bytes = Tm_obs.Obs.counter "pager.write_bytes"

type t = {
  page_size : int;
  lock : Lock.t;
  mutable pages : bytes array; (* backing store, grown geometrically *)
  mutable n_pages : int;
  mutable physical_reads : int;
  mutable physical_writes : int;
}

let default_page_size = 8192

let create ?(page_size = default_page_size) () =
  {
    page_size;
    lock = Lock.create Lock.Inner;
    pages = Array.make 64 Bytes.empty;
    n_pages = 0;
    physical_reads = 0;
    physical_writes = 0;
  }

let locked t f = Lock.with_lock t.lock f

let page_size t = t.page_size
let page_count t = locked t (fun () -> t.n_pages)

(** Total bytes occupied on the simulated disk. *)
let size_bytes t = page_count t * t.page_size

let grow t needed =
  if needed > Array.length t.pages then begin
    let cap = max needed (2 * Array.length t.pages) in
    let pages = Array.make cap Bytes.empty in
    Array.blit t.pages 0 pages 0 t.n_pages;
    t.pages <- pages
  end

(** Allocate a fresh zeroed page; returns its id. *)
let alloc t =
  locked t (fun () ->
      grow t (t.n_pages + 1);
      let id = t.n_pages in
      t.pages.(id) <- Bytes.make t.page_size '\x00';
      t.n_pages <- id + 1;
      id)

let check_id t id =
  if id < 0 || id >= t.n_pages then invalid_arg (Printf.sprintf "Pager: bad page id %d" id)

(** Physical read: returns a copy of the page image. *)
let read t id =
  let data =
    locked t (fun () ->
        check_id t id;
        t.physical_reads <- t.physical_reads + 1;
        Bytes.copy t.pages.(id))
  in
  Tm_obs.Obs.incr c_reads;
  Tm_obs.Obs.add c_read_bytes t.page_size;
  data

(** Physical write: stores a copy of [data] (padded/truncated to page size). *)
let write t id data =
  let page = Bytes.make t.page_size '\x00' in
  let len = min (Bytes.length data) t.page_size in
  Bytes.blit data 0 page 0 len;
  locked t (fun () ->
      check_id t id;
      t.physical_writes <- t.physical_writes + 1;
      t.pages.(id) <- page);
  Tm_obs.Obs.incr c_writes;
  Tm_obs.Obs.add c_write_bytes t.page_size

let reset_stats t =
  locked t (fun () ->
      t.physical_reads <- 0;
      t.physical_writes <- 0)

let physical_reads t = locked t (fun () -> t.physical_reads)
let physical_writes t = locked t (fun () -> t.physical_writes)
