lib/storage/buffer_pool.ml: Bytes Hashtbl Pager Tm_obs
