lib/xmldb/edge_table.mli: Dictionary Shred Tm_storage Tm_xml
