type cls = Outer | Inner
type t = int (* even = Outer, odd = Inner *)

(* The registry maps ticket -> mutex. Cells are [Atomic.t] so the
   lock-free fast path of [mutex_of] can read them from any domain;
   growth copies the cells themselves (not their contents) into a
   larger array, so a cell filled concurrently with a resize is never
   lost. [registry_lock] serializes allocation, growth and fills. *)
let registry : Mutex.t option Atomic.t array Atomic.t = Atomic.make [||]
let registry_lock = Mutex.create ()
let next_outer = ref 0 [@@analyze.guarded_by "registry_lock"]
let next_inner = ref 1 [@@analyze.guarded_by "registry_lock"]

(* Caller holds [registry_lock]. *)
let ensure_capacity id =
  let arr = Atomic.get registry in
  if id >= Array.length arr then begin
    let cap = max 64 (max (id + 1) (2 * Array.length arr)) in
    let bigger =
      Array.init cap (fun i -> if i < Array.length arr then arr.(i) else Atomic.make None)
    in
    Atomic.set registry bigger
  end

(* Caller holds [registry_lock]. *)
let fill_slot id =
  let cell = (Atomic.get registry).(id) in
  (match Atomic.get cell with
  | None -> Atomic.set cell (Some (Mutex.create ()))
  | Some _ -> ());
  cell

let rec mutex_of id =
  let arr = Atomic.get registry in
  let cell = if id < Array.length arr then Some arr.(id) else None in
  match Option.map Atomic.get cell with
  | Some (Some m) -> m
  | Some None | None ->
    (* Unregistered ticket (loaded from a snapshot) or a stale read:
       materialize the slot under the registry lock and retry. *)
    Mutex.protect registry_lock (fun () ->
        ensure_capacity id;
        ignore (fill_slot id));
    mutex_of id

let create cls =
  Mutex.protect registry_lock (fun () ->
      let counter = match cls with Outer -> next_outer | Inner -> next_inner in
      let id = !counter in
      counter := id + 2;
      ensure_capacity id;
      ignore (fill_slot id);
      id)

let acquire t = Mutex.lock (mutex_of t)
[@@analyze.manual_lock "split acquire/release primitive; callers pair it or use with_lock"]

let release t = Mutex.unlock (mutex_of t)
[@@analyze.manual_lock "split acquire/release primitive; callers pair it or use with_lock"]

let with_lock t f = Mutex.protect (mutex_of t) f
