(** Append-only heap file of variable-length records over pages.

    Used for base relations (the Edge table and ASR relations). Records
    are byte strings identified by a {!rid} (page id, slot). Page layout:
    ['H'], u16 record count, then length-prefixed records back to back.
    A record never spans pages; records larger than a page are refused. *)

type rid = { page : int; slot : int }

type t = {
  pool : Buffer_pool.t;
  page_size : int;
  mutable pages : int list; (* all pages, newest first *)
  mutable current : int; (* page being filled, -1 if none *)
  mutable current_used : int;
  mutable current_count : int;
  mutable n_records : int;
  mutable n_pages : int;
  name : string;
}

let create ~name pool =
  {
    pool;
    page_size = Pager.page_size (Buffer_pool.pager pool);
    pages = [];
    current = -1;
    current_used = 0;
    current_count = 0;
    n_records = 0;
    n_pages = 0;
    name;
  }

let name t = t.name
let record_count t = t.n_records
let page_count t = t.n_pages
let size_bytes t = t.n_pages * t.page_size

let header_size = 3 (* tag + u16 count *)

let decode_page bytes =
  let s = Bytes.to_string bytes in
  if String.length s = 0 || s.[0] <> 'H' then [||]
  else begin
    let count, pos = Codec.read_u16 s 1 in
    let records = Array.make count "" in
    let pos = ref pos in
    for i = 0 to count - 1 do
      let r, p = Codec.read_lstring s !pos in
      records.(i) <- r;
      pos := p
    done;
    records
  end

let encode_page records =
  let buf = Buffer.create 256 in
  Buffer.add_char buf 'H';
  Codec.add_u16 buf (List.length records);
  List.iter (Codec.add_lstring buf) records;
  Buffer.contents buf

(** Append a record; returns its rid. *)
let append t record =
  let rsize = String.length record + 5 in
  if rsize + header_size > t.page_size then
    invalid_arg (Printf.sprintf "Heap_file.append(%s): record too large (%d bytes)" t.name rsize);
  if t.current = -1 || t.current_used + rsize > t.page_size then begin
    let page = Buffer_pool.alloc t.pool in
    t.current <- page;
    t.current_used <- header_size;
    t.current_count <- 0;
    t.pages <- page :: t.pages;
    t.n_pages <- t.n_pages + 1
  end;
  let existing = Array.to_list (decode_page (Buffer_pool.read t.pool t.current)) in
  let records = existing @ [ record ] in
  Buffer_pool.write t.pool t.current (Bytes.of_string (encode_page records));
  let slot = t.current_count in
  t.current_used <- t.current_used + rsize;
  t.current_count <- t.current_count + 1;
  t.n_records <- t.n_records + 1;
  { page = t.current; slot }

(** Fetch the record at [rid]. *)
let get t rid =
  let records = decode_page (Buffer_pool.read t.pool rid.page) in
  if rid.slot >= Array.length records then
    invalid_arg (Printf.sprintf "Heap_file.get(%s): bad rid" t.name);
  records.(rid.slot)

(** Pages in allocation order (fsck support). *)
let pages t = List.rev t.pages

(** Decode one page afresh, refusing rather than masking a bad image:
    [decode_page] treats a bad header as empty (tolerable for reads
    after a crash), but an offline checker must report it. *)
let records_of_page t page =
  match Buffer_pool.read t.pool page with
  | exception Invalid_argument m -> Error m
  | bytes ->
    let s = Bytes.to_string bytes in
    if String.length s = 0 || s.[0] <> 'H' then
      Error (Printf.sprintf "bad heap page header (%s)" t.name)
    else (
      match decode_page bytes with
      | records -> Ok records
      | exception Invalid_argument m -> Error m
      | exception Failure m -> Error m)

(** Fold over all records in insertion order. *)
let fold t f acc =
  List.fold_left
    (fun acc page ->
      Array.fold_left (fun acc r -> f acc r) acc (decode_page (Buffer_pool.read t.pool page)))
    acc (List.rev t.pages)

let iter t f = fold t (fun () r -> f r) ()
