(** Access Support Relations baseline (paper Section 5.2.6): one
    relation per distinct rooted schema path, holding raw
    (uncompressed) id tuples; [//] patterns must visit one structure
    per matching path. *)

type t

val build :
  pool:Tm_storage.Buffer_pool.t ->
  dict:Tm_xmldb.Dictionary.t ->
  catalog:Tm_xmldb.Schema_catalog.t ->
  Tm_xml.Xml_tree.document ->
  t

val relation_count : t -> int
(** The paper's "tables" count (902 / 235). *)

val trees : t -> Tm_storage.Bptree.t list
(** All relation B+-trees (fsck support). *)

val size_bytes : t -> int

val scan_relation :
  t ->
  path:Tm_xmldb.Schema_path.t ->
  ?value:string option ->
  ('a -> int list -> 'a) ->
  'a ->
  'a
(** Fold over the rooted id tuples of one relation. [~value:(Some v)]
    selects tuples whose leaf value is [v]; [~value:None] the
    structural rows; omitting scans every instance once. *)

val matching_paths : t -> Tm_xmldb.Schema_path.t -> Tm_xmldb.Schema_catalog.entry list
(** Rooted paths ending in the suffix — the relations a [//] pattern
    visits. *)

val insert_node : t -> Tm_xmldb.Shred.node_info -> unit
(** Incremental maintenance: index one new node, creating its relation
    if the rooted schema path is new. *)

val remove_node : t -> Tm_xmldb.Shred.node_info -> unit

val scan_relation_range :
  t ->
  path:Tm_xmldb.Schema_path.t ->
  lo:(string * bool) option ->
  hi:(string * bool) option ->
  ('a -> int list -> 'a) ->
  'a ->
  'a
(** Fold over the tuples of one relation whose leaf value lies in the
    lexicographic range — one contiguous scan. *)
