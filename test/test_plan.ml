(* Unit and integration tests for the cost-based planner (Tm_plan):
   hint parsing, shape normalization, the cost model's crossover, the
   plan cache (hit / miss / generation invalidation / FIFO eviction),
   and the >10x mid-query replan trigger — provoked deterministically
   through the "plan.estimate" failpoint, with the answers checked
   against the naive oracle throughout. *)

open Twigmatch
module T = Tm_xml.Xml_tree
module Twig = Tm_query.Twig
module Hint = Tm_plan.Hint
module Plan = Tm_plan.Plan
module Planner = Tm_plan.Planner
module Cost = Tm_plan.Cost
module Cache = Tm_plan.Cache
module Fault = Tm_fault.Fault

let check = Alcotest.(check)

(* ------------------------------------------------------------------ *)
(* Hint parsing                                                        *)
(* ------------------------------------------------------------------ *)

let test_hint_of_string () =
  (match Hint.of_string "auto" with
  | Ok Hint.Auto -> ()
  | _ -> Alcotest.fail "\"auto\" must parse as Auto");
  (match Hint.of_string "RP" with
  | Ok (Hint.Force Database.RP) -> ()
  | _ -> Alcotest.fail "bare strategy name must parse as Force");
  (match Hint.of_string "force:DP" with
  | Ok (Hint.Force Database.DP) -> ()
  | _ -> Alcotest.fail "\"force:DP\" must parse as Force DP");
  (match Hint.of_string "force:JI" with
  | Ok (Hint.Force Database.Ji) -> ()
  | _ -> Alcotest.fail "\"force:JI\" must parse as Force Ji");
  (match Hint.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown hint must be rejected");
  (* the compat shim parses identically (and warns through Obs) *)
  match Hint.of_string_compat ~site:"test" "Edge" with
  | Ok (Hint.Force Database.Edge) -> ()
  | _ -> Alcotest.fail "compat shim must parse like of_string"

let test_hint_round_trip () =
  List.iter
    (fun h ->
      match Hint.of_string (Hint.to_string h) with
      | Ok h' when h = h' -> ()
      | _ -> Alcotest.failf "hint %s does not round-trip" (Hint.to_string h))
    (Hint.Auto :: List.map (fun s -> Hint.Force s) Database.all_strategies)

(* ------------------------------------------------------------------ *)
(* Shape normalization                                                 *)
(* ------------------------------------------------------------------ *)

let spec = Twig.spec

let test_shape_normalization () =
  (* constants are erased: same shape for different predicate values *)
  let valued v =
    Twig.make Twig.Descendant (spec "a" [ (Twig.Child, spec ~value:v ~output:true "b" []) ])
  in
  check Alcotest.string "value literals erased" (Twig.shape (valued "u")) (Twig.shape (valued "w"));
  (* sibling branch order is canonicalized *)
  let b = (Twig.Child, spec ~output:true "b" []) and c = (Twig.Child, spec "c" []) in
  let bc = Twig.make Twig.Child (spec "a" [ b; c ]) in
  let cb = Twig.make Twig.Child (spec "a" [ c; b ]) in
  check Alcotest.string "branch order canonical" (Twig.shape bc) (Twig.shape cb);
  (* but the axis, the predicate's existence and the output marker matter *)
  let ad = Twig.make Twig.Child (spec "a" [ (Twig.Descendant, spec ~output:true "b" []) ]) in
  let pc = Twig.make Twig.Child (spec "a" [ b ]) in
  check Alcotest.bool "axis distinguishes shapes" false (Twig.shape ad = Twig.shape pc);
  let pred =
    Twig.make Twig.Child (spec "a" [ (Twig.Child, spec ~value:"u" ~output:true "b" []) ])
  in
  check Alcotest.bool "predicate kind distinguishes shapes" false
    (Twig.shape pred = Twig.shape pc)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_cost_crossover () =
  let built = [ Database.RP; Database.DP ] in
  (* uniform branches: RP's merge scan is cheaper than DP's probes *)
  let s, _, _, _ = Cost.choose { Cost.ests = [| 100; 100 |]; lens = [| 2; 2 |] } ~built in
  check Alcotest.string "uniform -> RP" "RP" (Database.strategy_name s);
  (* one highly selective branch: DP drives from it and INLJ wins *)
  let s, _, _, _ = Cost.choose { Cost.ests = [| 1000; 2 |]; lens = [| 2; 2 |] } ~built in
  check Alcotest.string "skewed -> DP" "DP" (Database.strategy_name s);
  (* ties break by rank: RP before DP *)
  let s, _, _, _ = Cost.choose { Cost.ests = [| 1 |]; lens = [| 1 |] } ~built in
  check Alcotest.string "single path -> RP by rank" "RP" (Database.strategy_name s)

let test_join_order () =
  let order = Cost.join_order [| 50; 3; 17 |] in
  check Alcotest.(list int) "driver first, ascending estimates" [ 1; 2; 0 ]
    (Array.to_list order)

let test_should_replan_threshold () =
  (* floor: tiny estimates never trigger on small absolute misses *)
  check Alcotest.bool "1 -> 30 stays" false (Planner.should_replan ~est:1 ~actual:30);
  check Alcotest.bool "1 -> 161 replans" true (Planner.should_replan ~est:1 ~actual:161);
  (* factor: strictly more than 10x above the floor *)
  check Alcotest.bool "100 -> 1000 stays" false (Planner.should_replan ~est:100 ~actual:1000);
  check Alcotest.bool "100 -> 1001 replans" true (Planner.should_replan ~est:100 ~actual:1001)

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

let book_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem "allauthors"
            [ T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ] ];
          T.elem_text "year" "2000";
        ];
    ]

let author_twig () =
  Twig.make Twig.Descendant
    (spec "author" [ (Twig.Child, spec "fn" []); (Twig.Child, spec ~output:true "ln" []) ])

let test_cache_hit_miss () =
  Cache.clear ();
  Cache.reset_stats ();
  let db = Database.create (book_doc ()) in
  let twig = author_twig () in
  let r1 = Executor.run ~hint:Hint.Auto db twig in
  check Alcotest.bool "first plan is fresh" false r1.Executor.plan.Plan.cached;
  let r2 = Executor.run ~hint:Hint.Auto db twig in
  check Alcotest.bool "second plan served from cache" true r2.Executor.plan.Plan.cached;
  check Alcotest.string "same strategy both times"
    (Database.strategy_name r1.Executor.strategy)
    (Database.strategy_name r2.Executor.strategy);
  let s = Cache.stats () in
  check Alcotest.bool "a hit was counted" true (s.Cache.hits >= 1);
  check Alcotest.bool "a miss was counted" true (s.Cache.misses >= 1)

let test_cache_invalidation_on_update () =
  Cache.clear ();
  let db = Database.create (book_doc ()) in
  let twig = author_twig () in
  let g0 = Database.generation db in
  let r1 = Executor.run ~hint:Hint.Auto db twig in
  let allauthors =
    match (Executor.run ~hint:(Hint.Force Database.RP) db
             (Twig.make Twig.Descendant (spec ~output:true "allauthors" [])))
            .Executor.ids
    with
    | id :: _ -> id
    | [] -> Alcotest.fail "no allauthors node"
  in
  ignore
    (Updates.insert_subtree db ~parent:allauthors
       (T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "poe" ]));
  check Alcotest.bool "update mints a fresh generation" true (Database.generation db <> g0);
  let r2 = Executor.run ~hint:Hint.Auto db twig in
  check Alcotest.bool "post-update plan is fresh, not cached" false
    r2.Executor.plan.Plan.cached;
  (* and the new plan sees the new data: two authors now *)
  check Alcotest.int "replanned query answers over updated data" 2
    (List.length r2.Executor.ids);
  check Alcotest.int "pre-update plan saw one author" 1 (List.length r1.Executor.ids)

let test_cache_fifo_eviction () =
  Cache.clear ();
  let cap = Cache.capacity () in
  Cache.set_capacity 2;
  Fun.protect
    ~finally:(fun () -> Cache.set_capacity cap)
    (fun () ->
      let p shape = Plan.trivial ~shape ~strategy:Database.RP "test" in
      Cache.store ~generation:1 ~shape:"s1" (p "s1");
      Cache.store ~generation:1 ~shape:"s2" (p "s2");
      Cache.store ~generation:1 ~shape:"s3" (p "s3");
      check Alcotest.bool "oldest evicted" true (Cache.find ~generation:1 ~shape:"s1" = None);
      check Alcotest.bool "newest kept" true (Cache.find ~generation:1 ~shape:"s3" <> None);
      Cache.invalidate ~generation:1;
      check Alcotest.bool "invalidate drops the generation" true
        (Cache.find ~generation:1 ~shape:"s3" = None))

(* ------------------------------------------------------------------ *)
(* Mid-query replan trigger (via the plan.estimate failpoint)          *)
(* ------------------------------------------------------------------ *)

(* 200 'a' elements, each with a 'b' and a 'c' child: every linear path
   of a[b][c] yields 200 rows, while the armed failpoint makes the
   planner estimate ~1 — far past the >10x trigger. *)
let wide_doc () =
  T.document
    [
      T.elem "r"
        (List.init 200 (fun i ->
             T.elem "a" [ T.elem_text "b" (string_of_int i); T.elem_text "c" "v" ]));
    ]

let wide_twig () =
  Twig.make Twig.Descendant
    (spec "a" [ (Twig.Child, spec "b" []); (Twig.Child, spec ~output:true "c" []) ])

let with_skewed_estimates f =
  Fault.inject ~site:Tm_plan.Estimate.failpoint (Fault.Every 1);
  Fun.protect ~finally:(fun () -> Fault.clear ~site:Tm_plan.Estimate.failpoint ()) f

let test_replan_triggers_and_stays_correct () =
  Cache.clear ();
  let doc = wide_doc () in
  let db = Database.create doc in
  let twig = wide_twig () in
  let expected = Tm_query.Naive.query doc twig in
  check Alcotest.int "oracle sees every c" 200 (List.length expected);
  with_skewed_estimates (fun () ->
      let r = Executor.run ~hint:Hint.Auto db twig in
      check Alcotest.bool "blown estimate triggered a replan" true (r.Executor.replans >= 1);
      check Alcotest.bool "replans are capped" true
        (r.Executor.replans <= Planner.max_replans);
      check Alcotest.(list int) "ids identical to the oracle" expected r.Executor.ids;
      check Alcotest.int "stats count the abandonments" r.Executor.replans
        r.Executor.stats.Tm_exec.Stats.replans;
      (* the final plan carries the observed cardinality, not the
         skewed estimate *)
      check Alcotest.bool "final plan estimate was corrected" true
        (r.Executor.plan.Plan.est_rows >= 100))

let test_replan_recorded_in_journal () =
  Cache.clear ();
  let doc = wide_doc () in
  let db = Database.create doc in
  let twig = wide_twig () in
  Tm_obs.Journal.with_enabled true (fun () ->
      Tm_obs.Journal.clear ();
      with_skewed_estimates (fun () -> ignore (Executor.run ~hint:Hint.Auto db twig));
      match Tm_obs.Journal.entries () with
      | [ e ] ->
        check Alcotest.bool "journal records the replans" true (e.Tm_obs.Journal.j_replans >= 1);
        (match e.Tm_obs.Journal.j_est_rows with
        | Some _ -> ()
        | None -> Alcotest.fail "journal completion carries the estimate");
        check Alcotest.int "journal rows" 200 e.Tm_obs.Journal.j_rows
      | es -> Alcotest.failf "expected one journal entry, got %d" (List.length es))

let test_forced_hint_never_replans () =
  Cache.clear ();
  let doc = wide_doc () in
  let db = Database.create doc in
  let twig = wide_twig () in
  let expected = Tm_query.Naive.query doc twig in
  with_skewed_estimates (fun () ->
      List.iter
        (fun s ->
          let r = Executor.run ~hint:(Hint.Force s) db twig in
          check Alcotest.int "forced plans never adapt" 0 r.Executor.replans;
          check Alcotest.(list int) "forced ids = oracle" expected r.Executor.ids)
        [ Database.RP; Database.DP; Database.Ji ])

let test_pinned_plan_runs_verbatim () =
  Cache.clear ();
  let doc = wide_doc () in
  let db = Database.create doc in
  let twig = wide_twig () in
  let expected = Tm_query.Naive.query doc twig in
  (* obtain a plan under skewed estimates, then pin it: it must run
     as-is — same strategy, no adaptivity — even though its estimates
     are absurd *)
  with_skewed_estimates (fun () ->
      let planned = Executor.run ~hint:Hint.Auto db twig in
      let pin = planned.Executor.plan in
      let r = Executor.run ~hint:(Hint.Pin pin) db twig in
      check Alcotest.int "pinned plans never adapt" 0 r.Executor.replans;
      check Alcotest.string "pinned strategy honoured"
        (Database.strategy_name pin.Plan.strategy)
        (Database.strategy_name r.Executor.strategy);
      check Alcotest.(list int) "pinned ids = oracle" expected r.Executor.ids)

let () =
  Alcotest.run "plan"
    [
      ( "hint",
        [
          Alcotest.test_case "of_string" `Quick test_hint_of_string;
          Alcotest.test_case "round trip" `Quick test_hint_round_trip;
        ] );
      ( "shape",
        [ Alcotest.test_case "normalization" `Quick test_shape_normalization ] );
      ( "cost",
        [
          Alcotest.test_case "crossover" `Quick test_cost_crossover;
          Alcotest.test_case "join order" `Quick test_join_order;
          Alcotest.test_case "replan threshold" `Quick test_should_replan_threshold;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit and miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "invalidation on update" `Quick test_cache_invalidation_on_update;
          Alcotest.test_case "fifo eviction" `Quick test_cache_fifo_eviction;
        ] );
      ( "replan",
        [
          Alcotest.test_case "triggers and stays correct" `Quick
            test_replan_triggers_and_stays_correct;
          Alcotest.test_case "recorded in journal" `Quick test_replan_recorded_in_journal;
          Alcotest.test_case "forced never replans" `Quick test_forced_hint_never_replans;
          Alcotest.test_case "pinned runs verbatim" `Quick test_pinned_plan_runs_verbatim;
        ] );
    ]
