lib/query/decompose.ml: Array List Twig
