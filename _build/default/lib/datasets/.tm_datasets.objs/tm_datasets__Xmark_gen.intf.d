lib/datasets/xmark_gen.mli: Tm_xml
