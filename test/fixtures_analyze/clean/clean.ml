(* Fixture: the same shapes as the bad_* modules, written with the safe
   idioms — every pass must come back empty here. *)

let lock = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 8 [@@analyze.guarded_by "lock"]
let get k = Mutex.protect lock (fun () -> Hashtbl.find_opt table k)
let put k v = Mutex.protect lock (fun () -> Hashtbl.replace table k v)

exception Timeout of float

let guard f = try Some (f ()) with Timeout ms -> raise (Timeout ms)
