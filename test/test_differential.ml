(* Differential-testing oracle for parallel twig execution: random
   documents and random twigs (PC and AD edges, value predicates,
   '//'-heads), every buildable strategy checked against the naive
   in-memory evaluator — sequentially AND on a shared 4-domain pool,
   which must return the same sorted id set. Failures shrink to a
   minimal document + twig via a structural shrinker (drop branches,
   promote subtrees, weaken '//' to '/', drop predicates). *)

open Twigmatch
module T = Tm_xml.Xml_tree
module Twig = Tm_query.Twig
module Seed = Tm_testsupport.Seed

(* Pure ASTs: generated and shrunk as plain data, converted to the
   real document / twig representations inside the property. *)

type xast = Node of string * xast list | Text of string * string | Attr of string * string
type tast = { tag : string; eq : string option; kids : (Twig.axis * tast) list }

let tags = [ "a"; "b"; "c" ]
let values = [ "u"; "v"; "w" ]

let rec tree_of = function
  | Node (t, cs) -> T.elem t (List.map tree_of cs)
  | Text (t, v) -> T.elem_text t v
  | Attr (t, v) -> T.elem t [ T.attr "at" v ]

let doc_of roots = T.document (List.map tree_of roots)

let rec spec_of (t : tast) =
  Twig.spec ?value:t.eq t.tag (List.map (fun (ax, c) -> (ax, spec_of c)) t.kids)

(* The output node: the leaf ending the last-branch chain (same
   convention as test_random). *)
let rec mark (s : Twig.spec) =
  match s.Twig.s_branches with
  | [] -> { s with Twig.s_output = true }
  | branches ->
    let rec last_marked acc = function
      | [] -> assert false
      | [ (ax, c) ] -> List.rev ((ax, mark c) :: acc)
      | b :: rest -> last_marked (b :: acc) rest
    in
    { s with Twig.s_branches = last_marked [] branches }

let twig_of (root_axis, t) = Twig.make root_axis (mark (spec_of t))

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_doc =
  let open QCheck.Gen in
  let tag = oneofl tags and value = oneofl values in
  let rec node depth =
    if depth = 0 then map2 (fun t v -> Text (t, v)) tag value
    else
      frequency
        [
          (2, map2 (fun t v -> Text (t, v)) tag value);
          (1, map2 (fun t v -> Attr (t, v)) tag value);
          (3, map2 (fun t cs -> Node (t, cs)) tag (list_size (int_range 1 3) (node (depth - 1))));
        ]
  in
  list_size (int_range 1 2) (node 3)

let gen_twig =
  let open QCheck.Gen in
  let tag = oneofl ("at" :: tags) and value = oneofl values in
  let axis = frequency [ (3, return Twig.Child); (1, return Twig.Descendant) ] in
  let rec node depth =
    let* t = tag in
    let* eq = frequency [ (2, return None); (1, map Option.some value) ] in
    let* kids =
      if depth = 0 then return []
      else
        let* n = int_range 0 2 in
        list_repeat n (pair axis (node (depth - 1)))
    in
    return { tag = t; eq; kids }
  in
  pair axis (node 2)

(* ------------------------------------------------------------------ *)
(* Shrinkers                                                           *)
(* ------------------------------------------------------------------ *)

let rec shrink_xast x yield =
  match x with
  | Node (t, cs) ->
    List.iter yield cs;
    QCheck.Shrink.list ~shrink:shrink_xast cs (fun cs' -> yield (Node (t, cs')))
  | Text _ | Attr _ -> ()

let shrink_doc roots yield =
  QCheck.Shrink.list ~shrink:shrink_xast roots (fun rs -> if rs <> [] then yield rs)

let rec shrink_tast t yield =
  (match t.eq with Some _ -> yield { t with eq = None } | None -> ());
  List.iter (fun (_, c) -> yield c) t.kids;
  QCheck.Shrink.list
    ~shrink:(fun (ax, c) yield ->
      (match ax with Twig.Descendant -> yield (Twig.Child, c) | Twig.Child -> ());
      shrink_tast c (fun c' -> yield (ax, c')))
    t.kids
    (fun kids' -> yield { t with kids = kids' })

let shrink_case (roots, (ax, t)) yield =
  shrink_doc roots (fun rs -> yield (rs, (ax, t)));
  (match ax with Twig.Descendant -> yield (roots, (Twig.Child, t)) | Twig.Child -> ());
  shrink_tast t (fun t' -> yield (roots, (ax, t')))

let print_case (roots, rt) =
  Printf.sprintf "twig: %s\ndoc:  %s"
    (Twig.to_string (twig_of rt))
    (T.to_string (doc_of roots))

let arb_case =
  QCheck.make ~print:print_case ~shrink:shrink_case QCheck.Gen.(pair gen_doc gen_twig)

(* ------------------------------------------------------------------ *)
(* The property                                                        *)
(* ------------------------------------------------------------------ *)

let jobs = 4
let shared_pool = lazy (Tm_par.Pool.create ~jobs)

let () =
  at_exit (fun () -> if Lazy.is_val shared_pool then Tm_par.Pool.shutdown (Lazy.force shared_pool))

let ids_to_string ids = String.concat ";" (List.map string_of_int ids)

let prop_differential =
  QCheck.Test.make
    ~name:(Printf.sprintf "all strategies = naive oracle, sequential and jobs=%d" jobs)
    ~count:80 arb_case
    (fun (roots, rt) ->
      let doc = doc_of roots in
      let twig = twig_of rt in
      let db = Database.create doc in
      let expected = Tm_query.Naive.query doc twig in
      let pool = Lazy.force shared_pool in
      List.for_all
        (fun s ->
          let seq = (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids in
          let par = (Executor.run ~pool ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids in
          if seq <> expected then
            QCheck.Test.fail_reportf "sequential %s diverges from oracle on %s:\n  oracle [%s]\n  got    [%s]"
              (Database.strategy_name s) (Twig.to_string twig) (ids_to_string expected)
              (ids_to_string seq)
          else if par <> expected then
            QCheck.Test.fail_reportf "jobs=%d %s diverges from oracle on %s:\n  oracle [%s]\n  got    [%s]"
              jobs (Database.strategy_name s) (Twig.to_string twig) (ids_to_string expected)
              (ids_to_string par)
          else true)
        Database.all_strategies)

(* The cost-based planner must be invisible to correctness: whatever
   strategy, join order and mid-query replans [Hint.Auto] settles on,
   the ids must match the oracle — sequentially and on the shared
   pool. This is the planner's end-to-end safety net. *)
let prop_auto_hint =
  QCheck.Test.make
    ~name:(Printf.sprintf "Hint.Auto = naive oracle, sequential and jobs=%d" jobs)
    ~count:80 arb_case
    (fun (roots, rt) ->
      let doc = doc_of roots in
      let twig = twig_of rt in
      let db = Database.create doc in
      let expected = Tm_query.Naive.query doc twig in
      let pool = Lazy.force shared_pool in
      let seq = Executor.run ~hint:Tm_plan.Hint.Auto db twig in
      let par = Executor.run ~pool ~hint:Tm_plan.Hint.Auto db twig in
      if seq.Executor.ids <> expected then
        QCheck.Test.fail_reportf
          "auto (chose %s) diverges from oracle on %s:\n  oracle [%s]\n  got    [%s]"
          (Database.strategy_name seq.Executor.strategy)
          (Twig.to_string twig) (ids_to_string expected)
          (ids_to_string seq.Executor.ids)
      else if par.Executor.ids <> expected then
        QCheck.Test.fail_reportf
          "auto jobs=%d (chose %s) diverges from oracle on %s:\n  oracle [%s]\n  got    [%s]"
          jobs
          (Database.strategy_name par.Executor.strategy)
          (Twig.to_string twig) (ids_to_string expected)
          (ids_to_string par.Executor.ids)
      else true)

(* The per-query ephemeral-pool path (?jobs) must agree too: it is the
   CLI's fallback when no persistent pool exists. One case per run is
   enough — the pool spawn dominates the runtime. *)
let prop_ephemeral_jobs =
  QCheck.Test.make ~name:"?jobs ephemeral pool = oracle" ~count:8 arb_case
    (fun (roots, rt) ->
      let doc = doc_of roots in
      let twig = twig_of rt in
      let db = Database.create ~strategies:Database.[ RP; DP ] doc in
      let expected = Tm_query.Naive.query doc twig in
      (Executor.run ~jobs ~hint:(Tm_plan.Hint.Force Database.RP) db twig).Executor.ids = expected
      && (Executor.run ~jobs ~hint:(Tm_plan.Hint.Force Database.DP) db twig).Executor.ids
         = expected)

let () =
  Alcotest.run "differential"
    [
      ( "oracle",
        [
          Seed.to_alcotest prop_differential;
          Seed.to_alcotest prop_auto_hint;
          Seed.to_alcotest prop_ephemeral_jobs;
        ] );
    ]
