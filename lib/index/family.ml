(** The unified family of path indices (paper Section 3, Figure 3).

    A family member is determined by three choices over the 4-ary
    relation [(HeadId, SchemaPath, LeafValue, IdList)]:

    + which subset of schema paths is stored ({!path_subset});
    + which sublist of the IdList is stored ({!id_sublist});
    + which columns are indexed, and in what order, including whether
      the schema path is stored forward, reversed, or
      dictionary-encoded as an opaque path id ({!component}).

    Instances provided as ready-made configurations:

    - {!dataguide}:    root prefixes,  last id,  key = SchemaPath
    - {!index_fabric}: root-to-leaf,   last id,  key = SchemaPath · LeafValue
    - {!rootpaths}:    root prefixes,  full,     key = LeafValue · reverse(SchemaPath)
    - {!datapaths}:    all subpaths,   full,     key = HeadId · LeafValue · reverse(SchemaPath)

    (The Lore value / forward-link / backward-link indices — length-one
    paths — are realized by {!Tm_xmldb.Edge_table}, whose indices are
    the degenerate members of the family.)

    Lossless and lossy compressions of Section 4 are build options:
    differential IdList encoding (on by default, [`Raw] for the
    ablation), [Schema_id] keys (the Section 4.2 dictionary encoding
    that forfeits [//] support), a [head_filter] (Section 4.3 HeadId
    pruning), and an [id_keep] filter (Section 4.1 IdList pruning). *)

open Tm_storage
open Tm_xmldb

type path_subset =
  | Root_prefixes  (** prefixes of root-to-leaf paths (HeadId = virtual root) *)
  | Root_to_leaf_only  (** only paths reaching a leaf value *)
  | All_subpaths  (** every (ancestor-or-self head, descendant) subpath *)

type id_sublist = Last_id | First_id | Full_idlist

type component =
  | Head  (** fixed-width big-endian head id *)
  | Value  (** escaped leaf value; null encodes as the empty component *)
  | Schema_fwd  (** designator string, root-to-leaf order *)
  | Schema_rev  (** designator string, leaf-to-root order (suffix matching) *)
  | Schema_id  (** catalog path id — Section 4.2 compression; no [//] *)

type config = {
  cfg_name : string;
  paths : path_subset;
  ids : id_sublist;
  key : component list;
}

let dataguide = { cfg_name = "dataguide"; paths = Root_prefixes; ids = Last_id; key = [ Schema_fwd ] }

let index_fabric =
  { cfg_name = "index_fabric"; paths = Root_to_leaf_only; ids = Last_id; key = [ Schema_fwd; Value ] }

let rootpaths =
  { cfg_name = "rootpaths"; paths = Root_prefixes; ids = Full_idlist; key = [ Value; Schema_rev ] }

let datapaths =
  {
    cfg_name = "datapaths";
    paths = All_subpaths;
    ids = Full_idlist;
    key = [ Head; Value; Schema_rev ];
  }

(** Section 4.2 variants: schema paths dictionary-encoded to opaque ids. *)
let rootpaths_schema_compressed =
  { rootpaths with cfg_name = "rootpaths_sc"; key = [ Value; Schema_id ] }

let datapaths_schema_compressed =
  { datapaths with cfg_name = "datapaths_sc"; key = [ Head; Value; Schema_id ] }

type t = {
  config : config;
  tree : Bptree.t;
  catalog : Schema_catalog.t;  (** for [Schema_id] resolution and [//] expansion *)
  raw_idlists : bool;
  head_filter : (int -> bool) option;  (** Section 4.3 pruning, kept for updates *)
  id_keep : (Path_relation.row -> int list -> int list) option;  (** Section 4.1 pruning *)
}

let tree t = t.tree
let config t = t.config
let size_bytes t = Bptree.size_bytes t.tree
let entry_count t = Bptree.entry_count t.tree

(* ------------------------------------------------------------------ *)
(* Key building                                                        *)
(* ------------------------------------------------------------------ *)

let sep = String.make 1 Codec.key_sep

let component_string t (row : Path_relation.row) = function
  | Head -> Codec.u32_to_string row.Path_relation.head
  | Value -> Codec.encode_value row.Path_relation.value
  | Schema_fwd -> Schema_path.encode row.Path_relation.schema
  | Schema_rev -> Schema_path.encode_reversed row.Path_relation.schema
  | Schema_id -> (
    (* marker byte disambiguates catalog ids from literal encodings of
       non-rooted subpaths (which have no catalog id) *)
    match Schema_catalog.find t.catalog row.Path_relation.schema with
    | Some e -> "\x01" ^ Codec.u32_to_string e.Schema_catalog.path_id
    | None -> "\x03" ^ Schema_path.encode row.Path_relation.schema)

let key_of_row t row = String.concat sep (List.map (component_string t row) t.config.key)

let stored_ids config (row : Path_relation.row) =
  match (config.ids, row.Path_relation.idlist) with
  | Full_idlist, ids -> ids
  | Last_id, [] | First_id, [] -> []
  | Last_id, ids -> [ List.nth ids (List.length ids - 1) ]
  | First_id, id :: _ -> [ id ]

(* ------------------------------------------------------------------ *)
(* Build                                                               *)
(* ------------------------------------------------------------------ *)

(** Build a family member over [doc].

    @param idlist_codec [`Delta] (default, Section 4.1 lossless
      compression) or [`Raw] for the ablation.
    @param head_filter keep only rows whose head satisfies the
      predicate (Section 4.3 HeadId pruning; the virtual root is always
      kept so FreeIndex still works).
    @param id_keep per-row IdList pruning (Section 4.1): receives the
      row, returns the ids to keep. Default keeps all. *)
(* The (key, payload) a row stores under this member's layout, or [None]
   when the member's path subset / pruning filters exclude it. *)
let entry_of_row t (row : Path_relation.row) =
  let keep_head =
    match t.head_filter with None -> true | Some f -> row.Path_relation.head = 0 || f row.Path_relation.head
  in
  let keep_row =
    match t.config.paths with
    | Root_to_leaf_only -> Option.is_some row.Path_relation.value
    | Root_prefixes | All_subpaths -> true
  in
  if not (keep_head && keep_row) then None
  else begin
    let ids = stored_ids t.config row in
    let ids = match t.id_keep with None -> ids | Some f -> f row ids in
    let payload =
      if t.raw_idlists then Codec.idlist_raw_to_string ids else Codec.idlist_to_string ids
    in
    Some (key_of_row t row, payload)
  end

(* Rows a single node contributes under this member's path subset. *)
let rows_of_node t info =
  match t.config.paths with
  | Root_prefixes | Root_to_leaf_only -> Path_relation.node_root_rows info
  | All_subpaths -> Path_relation.node_all_rows info

(** Incremental maintenance: add / remove the entries of one node (used
    by {!Twigmatch.Updates}; the bulk path is {!build}). *)
let insert_node t info =
  List.iter
    (fun row ->
      match entry_of_row t row with
      | Some (key, payload) -> Bptree.insert t.tree key payload
      | None -> ())
    (rows_of_node t info)

let remove_node t info =
  List.iter
    (fun row ->
      match entry_of_row t row with
      | Some (key, payload) -> ignore (Bptree.delete t.tree key payload)
      | None -> ())
    (rows_of_node t info)

(** The sorted (key, payload) multiset this member must hold for [doc]
    under its layout and pruning options — [build]'s bulk-load input,
    recomputable after the fact as the fsck ground truth. *)
let expected_entries t ~dict doc =
  let add acc row = match entry_of_row t row with Some entry -> entry :: acc | None -> acc in
  let entries =
    match t.config.paths with
    | Root_prefixes | Root_to_leaf_only -> Path_relation.fold_root_rows doc dict add []
    | All_subpaths -> Path_relation.fold_all_rows doc dict add []
  in
  List.sort Codec.compare_kv entries

(* Merge two runs sorted by [Codec.compare_kv]. Hand-rolled because
   stdlib [List.merge] is not tail-recursive and DATAPATHS runs reach
   hundreds of thousands of entries. *)
let merge_kv a b =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: a', y :: b' ->
      if Codec.compare_kv x y <= 0 then go a' b (x :: acc) else go a b' (y :: acc)
  in
  go a b []

(* Balanced pairwise rounds: O(n log k) for k runs. *)
let rec merge_runs = function
  | [] -> []
  | [ r ] -> r
  | runs ->
    let rec pair acc = function
      | a :: b :: rest -> pair (merge_kv a b :: acc) rest
      | [ a ] -> a :: acc
      | [] -> acc
    in
    merge_runs (pair [] runs)

(* Parallel variant of {!expected_entries}: partition the document's
   nodes (each carrying its root-to-leaf id path) across the pool, have
   every chunk generate and sort its own entries, then merge the sorted
   runs. [Codec.compare_kv] is a total order on (key, payload), so the
   merged result is exactly the sequential sort — bulk-load input and
   fsck ground truth stay byte-identical. The shred pass itself remains
   sequential because it interns tags into the dictionary. *)
let par_entries par t ~dict doc =
  let nodes = List.rev (Shred.fold_nodes doc dict (fun acc info -> info :: acc) []) in
  let entries_of_chunk chunk =
    let add acc row = match entry_of_row t row with Some e -> e :: acc | None -> acc in
    let entries =
      List.fold_left (fun acc info -> List.fold_left add acc (rows_of_node t info)) [] chunk
    in
    List.sort Codec.compare_kv entries
  in
  merge_runs (Tm_par.Pool.map_chunked par entries_of_chunk nodes)

let build ?(idlist_codec = `Delta) ?(prefix_compression = true) ?head_filter ?id_keep ?par ~pool
    ~dict ~catalog config doc =
  let t =
    {
      config;
      tree = Bptree.create ~name:config.cfg_name pool;
      catalog;
      raw_idlists = (match idlist_codec with `Raw -> true | `Delta -> false);
      head_filter;
      id_keep;
    }
  in
  let entries =
    match par with
    | Some p when Tm_par.Pool.jobs p > 1 -> par_entries p t ~dict doc
    | Some _ | None -> expected_entries t ~dict doc
  in
  let tree = Bptree.bulk_load ~prefix_compression ~name:config.cfg_name pool entries in
  { t with tree }

(* ------------------------------------------------------------------ *)
(* Probing                                                             *)
(* ------------------------------------------------------------------ *)

type schema_probe =
  | Exact of Schema_path.t  (** the full (head-anchored) schema path *)
  | Suffix of Schema_path.t  (** paths ending with these tags ([//] head) *)
  | Any_schema

type hit = {
  h_schema : Schema_path.t;  (** decoded schema path of the matching row *)
  h_value : string option;
  h_ids : int list;  (** the stored id sublist *)
}

exception Unsupported of string

let decode_ids t payload =
  if t.raw_idlists then Codec.idlist_raw_of_string payload else Codec.idlist_of_string payload

(* Decode a key back into (head, value, schema) following the layout.
   The decode is positional — [Head] and [Schema_id] are fixed-width and
   may contain 0x00 bytes, so keys cannot simply be split on the
   separator; variable-width components ([Value], designator strings)
   are 0x00-free by construction and end at the next separator. *)
let decode_key t key =
  let n = String.length key in
  let until_sep pos =
    let rec go i = if i < n && key.[i] <> Codec.key_sep then go (i + 1) else i in
    let stop = go pos in
    (String.sub key pos (stop - pos), stop)
  in
  let skip_sep pos = if pos < n && key.[pos] = Codec.key_sep then pos + 1 else pos in
  let rec go comps pos (head, value, schema) =
    match comps with
    | [] -> (head, value, schema)
    | Head :: cs ->
      if pos + 4 > n then invalid_arg "Family.decode_key: truncated head";
      let h = fst (Codec.read_u32 key pos) in
      go cs (skip_sep (pos + 4)) (Some h, value, schema)
    | Value :: cs ->
      let p, stop = until_sep pos in
      go cs (skip_sep stop) (head, Codec.decode_value p, schema)
    | Schema_fwd :: cs ->
      let p, stop = until_sep pos in
      go cs (skip_sep stop) (head, value, Schema_path.decode p)
    | Schema_rev :: cs ->
      let p, stop = until_sep pos in
      go cs (skip_sep stop) (head, value, Schema_path.decode_reversed p)
    | Schema_id :: cs ->
      let schema =
        match key.[pos] with
        | '\x01' ->
          let pid = fst (Codec.read_u32 key (pos + 1)) in
          (match
             List.find_opt
               (fun e -> e.Schema_catalog.path_id = pid)
               (Schema_catalog.entries t.catalog)
           with
          | Some e -> e.Schema_catalog.path
          | None -> Schema_path.empty)
        | '\x03' -> Schema_path.decode (String.sub key (pos + 1) (n - pos - 1))
        | _ -> invalid_arg "Family.decode_key: bad schema-id marker"
      in
      go cs n (head, value, schema)
  in
  go t.config.key 0 (None, None, Schema_path.empty)

let decode_entry_key = decode_key
let decode_idlist = decode_ids

let encode_idlist t ids =
  if t.raw_idlists then Codec.idlist_raw_to_string ids else Codec.idlist_to_string ids

(* Build the scan bounds for a probe. Components before the schema
   component must be fully specified; the schema component itself may be
   a prefix (Suffix probes on Schema_rev). *)
let scan_prefix t ?head ?(value : string option option) schema =
  (* A member built with HeadId pruning (Section 4.3) silently dropped
     every row whose head the filter rejected: probing it with such a
     head would return an empty — and wrong — answer. Refuse instead,
     so the executor can fall back to a complete member. Head 0 (the
     virtual root) is never pruned at build time. *)
  (match (head, t.head_filter) with
  | Some h, Some f when h <> 0 && not (f h) ->
    raise
      (Unsupported
         (t.config.cfg_name ^ ": head id pruned at build time (Section 4.3), index is lossy here"))
  | _ -> ());
  let comp_prefix = Buffer.create 32 in
  let exact = ref true in
  let emit s = if !exact then Buffer.add_string comp_prefix s in
  let stop () = exact := false in
  List.iteri
    (fun i comp ->
      if !exact then begin
        if i > 0 then Buffer.add_string comp_prefix sep;
        match comp with
        | Head -> (
          match head with
          | Some h -> emit (Codec.u32_to_string h)
          | None -> raise (Unsupported (t.config.cfg_name ^ ": probe requires a head id")))
        | Value -> (
          match value with
          | Some v -> emit (Codec.encode_value v)
          | None -> stop ())
        | Schema_fwd -> (
          match schema with
          | Exact p -> emit (Schema_path.encode p)
          | Suffix _ ->
            raise (Unsupported (t.config.cfg_name ^ ": forward schema keys cannot match suffixes"))
          | Any_schema -> stop ())
        | Schema_rev -> (
          match schema with
          | Exact p -> emit (Schema_path.encode_reversed p)
          | Suffix p ->
            emit (Schema_path.encode_reversed p);
            stop () (* prefix of the reversed path: anything may follow *)
          | Any_schema -> stop ())
        | Schema_id -> (
          match schema with
          | Exact p -> (
            match Schema_catalog.find t.catalog p with
            | Some e -> emit ("\x01" ^ Codec.u32_to_string e.Schema_catalog.path_id)
            | None -> emit ("\x03" ^ Schema_path.encode p))
          | Suffix _ ->
            raise (Unsupported (t.config.cfg_name ^ ": schema-id keys cannot match suffixes (no //)"))
          | Any_schema -> stop ())
      end)
    t.config.key;
  (Buffer.contents comp_prefix, !exact)

(* Scan the index for rows matching the probe, folding [f] over hits.
   One call = one index lookup in the paper's accounting; see the .mli
   for the probe parameter semantics. *)
(** One bound of a value-range probe: (value, inclusive). *)
type vbound = string * bool

let bound_ok ~is_lo (b : vbound option) v =
  match b with
  | None -> true
  | Some (bv, inc) ->
    let c = String.compare v bv in
    if is_lo then if inc then c >= 0 else c > 0 else if inc then c <= 0 else c < 0

(** Range scan over the [Value] component: rows whose (non-null) value
    lies within the bounds and whose schema matches the probe. The
    member's key must contain [Value] (ROOTPATHS, DATAPATHS, Index
    Fabric); value-first key order makes the scan contiguous up to the
    prefix-extension false positives the post-filter removes.
    @raise Unsupported when the key layout lacks a [Value] component. *)
(* Observability: one counter increment per probe and per entry
   touched, and a span per probe so EXPLAIN ANALYZE can attribute
   B+-tree and buffer-pool work to the index that caused it. *)
let c_probes = Tm_obs.Obs.counter "family.probes"
let c_entries = Tm_obs.Obs.counter "family.entries_scanned"

let probed t f =
  Tm_obs.Obs.incr c_probes;
  Tm_obs.Obs.with_span ("probe:" ^ t.config.cfg_name) f

let scan_value_range t ?head ~lo ~hi ~schema f acc =
  if not (List.exists (function Value -> true | _ -> false) t.config.key) then
    raise (Unsupported (t.config.cfg_name ^ ": no value component to range-scan"));
  (* the prefix up to (excluding) the value component: probe with an
     unconstrained value, which stops emission there *)
  let prefix, _ = scan_prefix t ?head schema in
  let lo_key =
    match lo with
    | Some (v, _) -> prefix ^ Codec.encode_value (Some v)
    | None -> prefix ^ "\x02" (* smallest non-null value component *)
  in
  let hi_key =
    match hi with
    | Some (v, _) -> Codec.prefix_successor (prefix ^ Codec.encode_value (Some v))
    | None -> Codec.prefix_successor prefix
  in
  let fold_f acc key payload =
    Tm_obs.Obs.incr c_entries;
    let _, v, s = decode_key t key in
    let value_ok =
      match v with
      | None -> false
      | Some v -> bound_ok ~is_lo:true lo v && bound_ok ~is_lo:false hi v
    in
    let schema_ok =
      match schema with
      | Exact p -> Schema_path.equal s p
      | Suffix p -> Schema_path.has_suffix s p
      | Any_schema -> true
    in
    if value_ok && schema_ok then f acc { h_schema = s; h_value = v; h_ids = decode_ids t payload }
    else acc
  in
  probed t (fun () -> Bptree.fold_range t.tree ~lo:lo_key ~hi:hi_key fold_f acc)

let scan t ?head ?value ?exact_len ~schema f acc =
  let prefix, was_exact = scan_prefix t ?head ?value schema in
  let fold_f acc key payload =
    Tm_obs.Obs.incr c_entries;
    let _, v, s = decode_key t key in
    let len_ok = match exact_len with None -> true | Some n -> Schema_path.length s = n in
    let value_ok =
      (* When the scan prefix stopped before the Value component, enforce
         the value constraint on decoded hits. *)
      match value with None -> true | Some v' -> Option.equal String.equal v v'
    in
    let schema_ok =
      (* Scans whose prefix was cut short of the schema component still
         return only matching rows thanks to this filter. *)
      match schema with
      | Exact p -> Schema_path.equal s p
      | Suffix p -> Schema_path.has_suffix s p
      | Any_schema -> true
    in
    if len_ok && value_ok && schema_ok then
      f acc { h_schema = s; h_value = v; h_ids = decode_ids t payload }
    else acc
  in
  probed t (fun () ->
      if was_exact then
        (* fully-specified key: equality scan (keys have a fixed component
           count, so nothing real lies in [key, key ^ sep)) *)
        Bptree.fold_range t.tree ~lo:prefix ~hi:(Some (prefix ^ sep)) fold_f acc
      else Bptree.fold_prefix t.tree ~prefix fold_f acc)

(** Entries a probe would touch (selectivity estimation / accounting). *)
let probe_cost t ?head ?value ~schema () =
  scan t ?head ?value ~schema (fun acc _ -> acc + 1) 0
