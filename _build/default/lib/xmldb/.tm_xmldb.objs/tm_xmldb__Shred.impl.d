lib/xmldb/shred.ml: Array Dictionary List Schema_path Tm_xml
