(** The cost-based planner: turns per-path estimates into a {!Plan.t}
    by calibrating against journal history for the same twig shape,
    costing every built strategy, and picking cover + join order +
    strategy — with a {!Cache} lookup in front keyed by (generation,
    shape).

    Mid-query adaptivity contract: the executor watches each path's
    actual binding-relation cardinality against [cover.(i).p_est] and
    abandons the plan once {!should_replan} fires; it then calls
    {!plan} again with [overrides] carrying the observed cardinalities,
    which bypasses the cache (observed numbers are query-specific, not
    shape-general). *)

module Journal = Tm_obs.Journal

type path_input = {
  i_label : string;  (** rendered path, for plan display *)
  i_est : int;  (** raw estimate from {!Estimate.path_cardinality} *)
  i_len : int;  (** steps in the path *)
}

(* ------------------------------------------------------------------ *)
(* Replan trigger                                                      *)
(* ------------------------------------------------------------------ *)

let replan_factor = 10

(* Estimates below the floor are treated as the floor: a path estimated
   at 1 row that produces 30 is a huge relative miss but a cheap
   absolute one; replanning costs more than finishing. *)
let replan_floor = 16

let max_replans = 2

let should_replan ~est ~actual = actual > replan_factor * max est replan_floor

(* ------------------------------------------------------------------ *)
(* Journal calibration                                                 *)
(* ------------------------------------------------------------------ *)

(* Median actual/estimated result-row ratio over completed journal
   entries of the same shape, clamped to [1/8, 32]. Applied uniformly
   to the per-path estimates: a uniform factor cannot flip the RP/DP
   cost comparison (both scale linearly), but it re-anchors the replan
   thresholds and the reported expectations for shapes the estimator
   historically got wrong. *)
let calibration_for shape =
  if not (Journal.enabled ()) then 1.0
  else
    let ratios =
      Journal.entries ()
      |> List.filter_map (fun (e : Journal.entry) ->
             match (e.Journal.j_outcome, e.Journal.j_est_rows) with
             | Journal.Completed, Some est
               when String.equal e.Journal.j_shape shape && est > 0 && e.Journal.j_rows > 0
               ->
               Some (float_of_int e.Journal.j_rows /. float_of_int est)
             | _ -> None)
      |> List.sort Float.compare
    in
    match ratios with
    | [] -> 1.0
    | _ ->
      let median = List.nth ratios (List.length ratios / 2) in
      Float.min 32.0 (Float.max 0.125 median)

(* ------------------------------------------------------------------ *)
(* Plan construction                                                   *)
(* ------------------------------------------------------------------ *)

let cover_of ~calibration ~overrides paths =
  Array.of_list
    (List.mapi
       (fun i p ->
         let est =
           match List.assoc_opt i overrides with
           | Some actual -> actual
           | None ->
             if Float.equal calibration 1.0 then p.i_est
             else max 1 (int_of_float (ceil (float_of_int p.i_est *. calibration)))
         in
         { Plan.p_label = p.i_label; p_raw_est = p.i_est; p_est = est })
       paths)

let est_rows_of cover =
  if Int.equal (Array.length cover) 0 then 0
  else Array.fold_left (fun acc (pe : Plan.path_est) -> min acc pe.Plan.p_est) max_int cover

let fresh ~overrides ~shape ~built ~paths =
  let calibration = match overrides with [] -> calibration_for shape | _ -> 1.0 in
  let cover = cover_of ~calibration ~overrides paths in
  let ests = Array.map (fun (pe : Plan.path_est) -> pe.Plan.p_est) cover in
  let lens = Array.of_list (List.map (fun p -> p.i_len) paths) in
  let strategy, cost, rivals, reason = Cost.choose { Cost.ests; lens } ~built in
  let reason =
    match overrides with [] -> reason | _ -> "replanned on observed cardinalities; " ^ reason
  in
  let p =
    {
      Plan.shape;
      strategy;
      cover;
      join_order = Cost.join_order ests;
      est_rows = est_rows_of cover;
      cost;
      rivals;
      calibration;
      cached = false;
      reason;
    }
  in
  (* Fresh builds only — cache hits are the common, uninteresting case.
     [b] > 0 marks a mid-query rebuild on observed cardinalities. *)
  Tm_obs.Flight.emit Tm_obs.Flight.Plan_build p.Plan.est_rows (List.length overrides)
    p.Plan.reason;
  p

(* [paths] is a thunk so a cache hit never pays for estimation: the
   catalog and Edge-table statistics are only consulted on a miss (or
   under overrides, which bypass the cache). *)
let plan ?(overrides = []) ~generation ~shape ~built ~paths () =
  match overrides with
  | _ :: _ -> fresh ~overrides ~shape ~built ~paths:(paths ())
  | [] -> (
    match Cache.find ~generation ~shape with
    | Some p -> p
    | None ->
      let p = fresh ~overrides:[] ~shape ~built ~paths:(paths ()) in
      Cache.store ~generation ~shape p;
      p)

let forced ~shape ~paths strategy =
  let cover = cover_of ~calibration:1.0 ~overrides:[] paths in
  let ests = Array.map (fun (pe : Plan.path_est) -> pe.Plan.p_est) cover in
  {
    Plan.shape;
    strategy;
    cover;
    join_order = Cost.join_order ests;
    est_rows = est_rows_of cover;
    cost = 0.0;
    rivals = [];
    calibration = 1.0;
    cached = false;
    reason = "as requested";
  }
