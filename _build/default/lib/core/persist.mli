(** Database snapshots: save/load a built database (document,
    dictionary, catalog, and every index) without re-shredding or
    re-bulk-loading. Snapshots are version-checked and same-library
    only; databases built with pruning closures ([head_filter] /
    [id_keep]) are rejected. *)

exception Bad_snapshot of string

val save : Database.t -> string -> unit
(** @raise Bad_snapshot for databases containing pruning closures. *)

val load : string -> Database.t
(** @raise Bad_snapshot on a wrong magic header or format version. *)
