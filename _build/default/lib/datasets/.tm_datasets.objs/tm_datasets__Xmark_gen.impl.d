lib/datasets/xmark_gen.ml: Array List Printf Random String Tm_xml
