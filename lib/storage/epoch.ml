(** Per-domain snapshot pins.

    {!Pager} keeps the version chains and the pin {e counts}; this
    module answers the question the buffer pool has to ask on every
    read — "is the current domain pinned to an epoch of this pager,
    and which one?" — without taking any lock. The pinned epoch lives
    in domain-local storage, so a query pins once in [Executor.run]
    and every page read it performs (on any structure of the same
    database) sees the pin for free.

    Pins cross domain boundaries by value: [Tm_par.Pool] captures the
    submitting domain's pin with {!capture} and re-installs it around
    each task with {!restore} (wired up via the pool's wrap-propagator
    registry, so this library stays independent of [tm_par]). The
    registered pin count in the pager is held by the pinning scope
    ({!with_pin}), which outlives the tasks it spawns — workers only
    mirror the slot, they never pin or unpin themselves. *)

(* One slot per domain: the (pager, epoch) the domain currently reads
   at, if any. A ref inside DLS so restore can be O(1) and exception
   safe. *)
let slot : (Pager.t * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

type pin = (Pager.t * int) option

let capture () : pin = !(Domain.DLS.get slot)

let restore (p : pin) f =
  let r = Domain.DLS.get slot in
  let saved = !r in
  r := p;
  Fun.protect ~finally:(fun () -> r := saved) f

(** The epoch the calling domain is pinned to for {e this} pager, if
    any. Physical identity on the pager: a domain serving one database
    is never confused by pins on another. *)
let pinned_for pager =
  match !(Domain.DLS.get slot) with
  | Some (p, e) when p == pager -> Some e
  | Some _ | None -> None

(** Run [f] with the calling domain pinned to the pager's current
    published epoch. Registers the pin with the pager (keeping the
    version chains it needs alive) and releases it when [f] returns or
    raises. When the domain already holds a pin on this pager, the
    inner scope inherits it unchanged: re-pinning at the (possibly
    newer) current epoch would silently break the outer scope's
    snapshot. *)
let with_pin pager f =
  match pinned_for pager with
  | Some _ -> f ()
  | None ->
    let e = Pager.pin pager in
    Fun.protect
      ~finally:(fun () -> Pager.unpin pager e)
      (fun () -> restore (Some (pager, e)) f)
