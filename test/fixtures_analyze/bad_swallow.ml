(* Fixture: a handler that absorbs a typed control exception (matched
   by constructor name) without re-raising — the typed-error pass must
   flag it. *)

exception Timeout of float

let guard f = try Some (f ()) with Timeout _ -> None
