(** Parser for the XPath fragment used in the paper's workload:
    absolute paths with [/] and [//] axes, attribute steps ([@name]),
    and predicates that are relative paths with an optional equality
    comparison to a literal, e.g.

    {[ /site[people/person/profile/@income = '9876.00']
         /open_auctions/open_auction[@increase = '75.00']/time ]}

    Literals may be single-quoted or bare (numbers). [.] refers to the
    current node ([ [. = 'XML'] ] is a value predicate on the step
    itself). The last step of the trunk is the output node. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type lexer = { src : string; mutable pos : int }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None
let peek2 lx = if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None
let advance lx = lx.pos <- lx.pos + 1

let skip_spaces lx =
  let n = String.length lx.src in
  while lx.pos < n && (lx.src.[lx.pos] = ' ' || lx.src.[lx.pos] = '\t' || lx.src.[lx.pos] = '\n') do
    advance lx
  done

let expect lx c =
  skip_spaces lx;
  match peek lx with
  | Some c' when c' = c -> advance lx
  | Some c' -> fail "expected %C at offset %d, found %C" c lx.pos c'
  | None -> fail "expected %C, found end of query" c

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
  | _ -> false

let read_name lx =
  skip_spaces lx;
  (* '@' marks an attribute step; attributes and elements share the
     label namespace in the data model (paper Section 2.1). *)
  (match peek lx with Some '@' -> advance lx | _ -> ());
  match peek lx with
  | Some '*' ->
    (* the wildcard step *)
    advance lx;
    "*"
  | _ ->
    let start = lx.pos in
    let n = String.length lx.src in
    while lx.pos < n && is_name_char lx.src.[lx.pos] do
      advance lx
    done;
    if lx.pos = start then fail "expected a name at offset %d" lx.pos;
    String.sub lx.src start (lx.pos - start)

(* A literal: '...' or a bare token of name-ish characters. *)
let read_literal lx =
  skip_spaces lx;
  match peek lx with
  | Some '\'' ->
    advance lx;
    let start = lx.pos in
    let n = String.length lx.src in
    while lx.pos < n && lx.src.[lx.pos] <> '\'' do
      advance lx
    done;
    if lx.pos >= n then fail "unterminated string literal";
    let s = String.sub lx.src start (lx.pos - start) in
    advance lx;
    s
  | Some _ ->
    let start = lx.pos in
    let n = String.length lx.src in
    while lx.pos < n && (is_name_char lx.src.[lx.pos] || lx.src.[lx.pos] = '.') do
      advance lx
    done;
    if lx.pos = start then fail "expected a literal at offset %d" lx.pos;
    String.trim (String.sub lx.src start (lx.pos - start))
  | None -> fail "expected a literal, found end of query"

let read_axis lx =
  skip_spaces lx;
  match (peek lx, peek2 lx) with
  | Some '/', Some '/' ->
    advance lx;
    advance lx;
    Some Twig.Descendant
  | Some '/', _ ->
    advance lx;
    Some Twig.Child
  | _ -> None

(* steps: (axis, name, predicates) list; predicates attach to their step. *)
type cmp = Ceq | Cge | Cgt | Cle | Clt

type raw_pred =
  | Value_cmp of cmp * string  (** [. <op> 'v'] on the owning step *)
  | Path of (Twig.axis * string * raw_pred list) list * (cmp * string) option

(* Parse a comparison operator if present: =, >=, >, <=, <. *)
let read_cmp lx =
  skip_spaces lx;
  match (peek lx, peek2 lx) with
  | Some '=', _ ->
    advance lx;
    Some Ceq
  | Some '>', Some '=' ->
    advance lx;
    advance lx;
    Some Cge
  | Some '>', _ ->
    advance lx;
    Some Cgt
  | Some '<', Some '=' ->
    advance lx;
    advance lx;
    Some Cle
  | Some '<', _ ->
    advance lx;
    Some Clt
  | _ -> None

let rec read_steps lx ~first_axis =
  let rec go acc axis =
    let name = read_name lx in
    let preds = read_predicates lx in
    let acc = (axis, name, preds) :: acc in
    match read_axis lx with None -> List.rev acc | Some ax -> go acc ax
  in
  go [] first_axis

and read_predicates lx =
  skip_spaces lx;
  match peek lx with
  | Some '[' ->
    advance lx;
    skip_spaces lx;
    let pred =
      match (peek lx, peek2 lx) with
      | Some '.', Some '/' ->
        (* [.//a/b ...] : descendant-axis relative path *)
        advance lx;
        ignore (read_axis lx);
        read_pred_path lx ~first_axis:Twig.Descendant
      | Some '.', _ -> (
        (* [. <op> 'v'] : value/range predicate on the current step *)
        advance lx;
        match read_cmp lx with
        | Some op -> Value_cmp (op, read_literal lx)
        | None -> fail "expected a comparison operator after '.' at offset %d" lx.pos)
      | Some '/', Some '/' ->
        ignore (read_axis lx);
        read_pred_path lx ~first_axis:Twig.Descendant
      | _ -> read_pred_path lx ~first_axis:Twig.Child
    in
    expect lx ']';
    pred :: read_predicates lx
  | _ -> []

and read_pred_path lx ~first_axis =
  let steps = read_steps lx ~first_axis in
  match read_cmp lx with
  | Some op -> Path (steps, Some (op, read_literal lx))
  | None -> Path (steps, None)

(* ------------------------------------------------------------------ *)
(* Raw steps -> twig spec                                              *)
(* ------------------------------------------------------------------ *)

(* Combine the comparison predicates attached to one step into an
   equality value and/or a range (one lower and one upper bound). *)
let combine_cmps name cmps =
  let value = ref None and lo = ref None and hi = ref None in
  List.iter
    (fun (op, v) ->
      match op with
      | Ceq ->
        if !value <> None then fail "conflicting equality predicates on step %s" name;
        value := Some v
      | Cge | Cgt ->
        if !lo <> None then fail "conflicting lower bounds on step %s" name;
        lo := Some { Twig.bval = v; binc = op = Cge }
      | Cle | Clt ->
        if !hi <> None then fail "conflicting upper bounds on step %s" name;
        hi := Some { Twig.bval = v; binc = op = Cle })
    cmps;
  let range =
    match (!lo, !hi) with
    | None, None -> None
    | rlo, rhi -> Some { Twig.rlo; rhi }
  in
  if !value <> None && range <> None then
    fail "step %s mixes equality and range predicates" name;
  (!value, range)

let rec pred_to_branch = function
  | Value_cmp _ -> assert false (* handled by the owning step *)
  | Path (steps, cmp) -> steps_to_spec steps ~cmp ~output_last:false

(* Builds the (axis, spec) for a step chain; returns the axis of the
   first step paired with the nested spec. [cmp] is an optional trailing
   comparison applying to the chain's last step. *)
and steps_to_spec steps ~cmp ~output_last =
  match steps with
  | [] -> assert false
  | [ (axis, name, preds) ] ->
    let value_preds, path_preds =
      List.partition (function Value_cmp _ -> true | Path _ -> false) preds
    in
    let cmps =
      List.filter_map (function Value_cmp (op, v) -> Some (op, v) | Path _ -> None) value_preds
      @ (match cmp with Some c -> [ c ] | None -> [])
    in
    let own_value, own_range = combine_cmps name cmps in
    let branches = List.map pred_to_branch path_preds in
    (axis, Twig.spec ?value:own_value ?range:own_range ~output:output_last name branches)
  | (axis, name, preds) :: rest ->
    let value_preds, path_preds =
      List.partition (function Value_cmp _ -> true | Path _ -> false) preds
    in
    let cmps =
      List.filter_map (function Value_cmp (op, v) -> Some (op, v) | Path _ -> None) value_preds
    in
    let own_value, own_range = combine_cmps name cmps in
    let branches = List.map pred_to_branch path_preds in
    let rest_branch = steps_to_spec rest ~cmp ~output_last in
    (axis, Twig.spec ?value:own_value ?range:own_range name (branches @ [ rest_branch ]))

(** Parse an absolute XPath expression into a twig. *)
let parse src =
  let lx = { src; pos = 0 } in
  let first_axis =
    match read_axis lx with
    | Some ax -> ax
    | None -> fail "query must start with / or //"
  in
  let steps = read_steps lx ~first_axis in
  skip_spaces lx;
  (match peek lx with
  | None -> ()
  | Some c -> fail "trailing garbage %C at offset %d" c lx.pos);
  let root_axis, spec = steps_to_spec steps ~cmp:None ~output_last:true in
  Twig.make root_axis spec
