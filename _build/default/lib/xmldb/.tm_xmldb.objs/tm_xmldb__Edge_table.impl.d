lib/xmldb/edge_table.ml: Bptree Buffer Codec Dictionary Hashtbl Heap_file List Option Shred String Tm_storage
