(* Fixture: toplevel mutable state with no guard annotation — the
   domain-safety pass must flag the table (and the type annotation must
   not hide it). *)

let table : (string, int) Hashtbl.t = Hashtbl.create 8
let lookup k = Hashtbl.find_opt table k
