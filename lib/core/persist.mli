(** Database snapshots: save/load a built database (document,
    dictionary, catalog, and every index) without re-shredding or
    re-bulk-loading.

    Format v2 frames the file — magic, version, per-section length +
    CRC32, and a checksummed footer — and [save] writes via a temp file
    plus atomic rename. A truncated, torn or bit-flipped snapshot
    raises {!Bad_snapshot} naming the damaged section; the [Marshal]
    payload is only unmarshalled after its checksum verifies, so a bad
    file can never abort the process or yield a garbage database.

    Snapshots are same-library-version only; databases built with
    pruning closures ([head_filter] / [id_keep]) are rejected. *)

exception Bad_snapshot of string

val version : int
(** Current snapshot format version (2). *)

val save : Database.t -> string -> unit
(** Write atomically and durably: temp file, fsync, rename, fsync of
    the containing directory. The target path always holds either the
    previous snapshot or the complete new one, and on return the new
    snapshot survives a power loss — callers may destroy whatever
    backed the old state (e.g. truncate a WAL) immediately.
    @raise Bad_snapshot for databases containing pruning closures. *)

val fsync_dir : string -> unit
(** Fsync a directory: make its entries (renames, newly created files)
    durable. A no-op on filesystems that refuse directory fsync. *)

val load : string -> Database.t
(** @raise Bad_snapshot on a wrong magic header or format version, a
    truncated file, or any section whose payload fails its checksum —
    checked before unmarshalling. *)

type section = { name : string; length : int; crc : int }
type summary = { sections : section list }

val verify : string -> summary
(** Run the frame checks of {!load} — magic, version, every section's
    length and checksum, footer — without unmarshalling or retaining
    payloads (constant memory). Returns the section table.
    @raise Bad_snapshot with the failing section on any damage. *)
