lib/xml/xml_tree.ml: Array Buffer List String
