(* Randomized differential testing: every strategy vs the naive oracle
   on random documents and random twigs. This is the widest net for
   planner/executor bugs — recursive elements, repeated tags along a
   path, empty results, deep twigs, multiple bindings per data path. *)

open Twigmatch
module T = Tm_xml.Xml_tree
module Twig = Tm_query.Twig

let tags = [| "a"; "b"; "c"; "d" |]
let values = [| "u"; "v"; "w" |]

(* random document: recursive tags on purpose (a under a etc.) *)
let gen_doc =
  let open QCheck.Gen in
  let tag = oneofl (Array.to_list tags) in
  let value = oneofl (Array.to_list values) in
  let rec node depth =
    if depth = 0 then map2 T.elem_text tag value
    else
      frequency
        [
          (2, map2 T.elem_text tag value);
          (1, map2 (fun t v -> T.elem t [ T.attr "at" v ]) tag value);
          (3, map2 T.elem tag (list_size (int_range 1 3) (node (depth - 1))));
        ]
  in
  map (fun roots -> T.document roots) (list_size (int_range 1 2) (node 4))

(* random twig over the same alphabet *)
let gen_twig =
  let open QCheck.Gen in
  let tag = oneofl ("at" :: "*" :: Array.to_list tags) in
  let value = oneofl (Array.to_list values) in
  let axis = frequency [ (3, return Twig.Child); (1, return Twig.Descendant) ] in
  let range_gen =
    let bound = map2 (fun v inc -> { Twig.bval = v; binc = inc }) value bool in
    frequency
      [
        (1, map (fun b -> { Twig.rlo = Some b; rhi = None }) bound);
        (1, map (fun b -> { Twig.rlo = None; rhi = Some b }) bound);
        (1, map2 (fun a b -> { Twig.rlo = Some a; rhi = Some b }) bound bound);
      ]
  in
  let rec spec depth ~allow_branch =
    let* t = tag in
    let* v = opt value in
    let* r = frequency [ (4, return None); (1, map Option.some range_gen) ] in
    let v = if r <> None then None else v in
    let* branches =
      if depth = 0 then return []
      else
        let* n = if allow_branch then int_range 0 2 else int_range 0 1 in
        list_repeat n
          (let* ax = axis in
           let* c = spec (depth - 1) ~allow_branch:false in
           return (ax, c))
    in
    (* value predicates only make sense at leaves of the data, but the
       engine must also handle them on internal twig nodes *)
    let* keep_internal_value = bool in
    let v = if branches = [] || keep_internal_value then v else None in
    let r = if branches = [] || v = None then r else None in
    return (Twig.spec ?value:v ?range:r t branches)
  in
  let* root_axis = axis in
  let* s = spec 3 ~allow_branch:true in
  (* mark the output: the trunk leaf = last branch chain; Twig.spec has
     no output, so rebuild with output on a leaf via a traversal *)
  let rec mark (s : Twig.spec) =
    match s.Twig.s_branches with
    | [] -> { s with Twig.s_output = true }
    | branches ->
      let rec last_marked acc = function
        | [] -> assert false
        | [ (ax, c) ] -> List.rev ((ax, mark c) :: acc)
        | b :: rest -> last_marked (b :: acc) rest
      in
      { s with Twig.s_branches = last_marked [] branches }
  in
  return (Twig.make root_axis (mark s))

let prop_all_strategies_match_oracle =
  QCheck.Test.make ~name:"all strategies = naive oracle on random inputs" ~count:60
    (QCheck.make QCheck.Gen.(pair gen_doc (list_size (int_range 1 4) gen_twig)))
    (fun (doc, twigs) ->
      let db = Database.create doc in
      List.for_all
        (fun twig ->
          let expected = Tm_query.Naive.query doc twig in
          List.for_all
            (fun s ->
              let got = (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids in
              if got <> expected then
                QCheck.Test.fail_reportf "strategy %s on %s:\n  expected [%s]\n  got      [%s]\n%s"
                  (Database.strategy_name s) (Twig.to_string twig)
                  (String.concat ";" (List.map string_of_int expected))
                  (String.concat ";" (List.map string_of_int got))
                  (T.to_string doc)
              else true)
            Database.all_strategies)
        twigs)

(* The compression variants must also agree with the oracle (for the
   query shapes they support). *)
let prop_compressed_variants_match_oracle =
  QCheck.Test.make ~name:"schema-compressed + pruned DP = oracle (supported queries)" ~count:30
    (QCheck.make QCheck.Gen.(pair gen_doc gen_twig))
    (fun (doc, twig) ->
      let expected = Tm_query.Naive.query doc twig in
      let strategies = Database.[ RP; DP ] in
      let sc = Database.create ~strategies ~schema_compressed:true doc in
      let raw = Database.create ~strategies ~idlist_codec:`Raw doc in
      let has_wildcard =
        Twig.fold_nodes (fun acc n -> acc || String.equal n.Twig.name "*") false twig.Twig.root
      in
      let ok db s =
        match Executor.run ~hint:(Tm_plan.Hint.Force s) db twig with
        | r -> r.Executor.ids = expected
        | exception Tm_index.Family.Unsupported _ ->
          (* schema-id keys legitimately reject '//' and wildcards *)
          Twig.has_descendant_edge twig || has_wildcard
      in
      ok raw Database.RP && ok raw Database.DP && ok sc Database.RP && ok sc Database.DP)

let () =
  Alcotest.run "random-differential"
    [
      ( "differential",
        [
          Tm_testsupport.Seed.to_alcotest ~long:true prop_all_strategies_match_oracle;
          Tm_testsupport.Seed.to_alcotest ~long:true prop_compressed_variants_match_oracle;
        ] );
    ]
