(** Per-PCsubpath cardinality estimation from the schema catalog and
    Edge-table statistics (paper Section 5.1.1). *)

val failpoint : string
(** ["plan.estimate"]: when armed via [Tm_fault], every estimate is
    deterministically skewed three orders of magnitude low — the switch
    tests use to provoke the mid-query replan trigger. *)

val catalog_matches :
  Tm_xmldb.Schema_catalog.t ->
  Tm_query.Decompose.tag_pattern ->
  (Tm_xmldb.Schema_catalog.entry * int array list) list
(** Catalog entries whose rooted schema path matches the pattern, each
    with every anchored match's pattern-index -> path-position map. *)

val vbounds :
  Tm_query.Twig.range -> (string * bool) option * (string * bool) option
(** Twig range bounds as the [(value, inclusive)] pairs the Edge table
    and index family take. *)

val path_cardinality :
  catalog:Tm_xmldb.Schema_catalog.t ->
  edge:Tm_xmldb.Edge_table.t ->
  pattern:Tm_query.Decompose.tag_pattern ->
  value:string option ->
  range:Tm_query.Twig.range option ->
  int
(** Estimated instances of one linear path: O(1) value/range statistics
    when the leaf carries a predicate on a concrete tag, else the sum of
    matching catalog instance counts. *)
