(** Byte-level codecs: order-preserving key encodings and compact
    payload encodings (varints, zigzag, differential id lists). *)

(** {1 Varints (unsigned LEB128)} *)

val add_varint : Buffer.t -> int -> unit
(** Append an unsigned varint. The value must be non-negative. *)

val read_varint : string -> int -> int * int
(** [read_varint s pos] is [(value, next_pos)]. *)

(** {1 Zigzag-coded signed varints} *)

val zigzag : int -> int
val unzigzag : int -> int
val add_signed_varint : Buffer.t -> int -> unit
val read_signed_varint : string -> int -> int * int

(** {1 Length-prefixed strings} *)

val add_lstring : Buffer.t -> string -> unit
val read_lstring : string -> int -> string * int

(** {1 Fixed-width big-endian integers}

    Encodings compare bytewise in numeric order, so they embed directly
    in composite B+-tree keys. *)

val add_u16 : Buffer.t -> int -> unit
val read_u16 : string -> int -> int * int
val add_u32 : Buffer.t -> int -> unit
val read_u32 : string -> int -> int * int
val u32_to_string : int -> string

(** {1 Id lists}

    [idlist] is the differential (delta + zigzag varint) encoding of
    paper Section 4.1; [idlist_raw] stores 4 bytes per id and exists
    for the compression ablation and for ASR relations. *)

val add_idlist : Buffer.t -> int list -> unit
val read_idlist : string -> int -> int list * int
val idlist_to_string : int list -> string
val idlist_of_string : string -> int list
val add_idlist_raw : Buffer.t -> int list -> unit
val read_idlist_raw : string -> int -> int list * int
val idlist_raw_to_string : int list -> string
val idlist_raw_of_string : string -> int list

(** {1 CRC32}

    IEEE 802.3 CRC (polynomial 0xEDB88320, reflected, table-driven),
    the checksum behind per-page verification in {!Pager} and the
    snapshot frame format. Results fit in 32 bits (always
    non-negative). *)

val crc32 : bytes -> int
(** Checksum of the whole buffer. Does not mutate it. *)

val crc32_string : string -> int

val crc32_update : int -> bytes -> int -> int -> int
(** [crc32_update crc data pos len] extends [crc] with
    [data[pos..pos+len-1]], so checksums can be computed incrementally:
    [crc32 b = crc32_update 0 b 0 (Bytes.length b)]. *)

(** {1 Composite keys} *)

val key_sep : char
(** Component separator (0x00). *)

val encode_value : string option -> string
(** Escape a leaf value into a 0x00/0x01-free component; [None] (the
    SQL-null of the 4-ary relation) encodes as the empty string and
    sorts before every present value. Order-preserving. *)

val decode_value : string -> string option

val concat_key : string list -> string
(** Join components with {!key_sep}. *)

val compare_kv : string * string -> string * string -> int
(** Entry order of the B+-tree: key, then payload (typed comparison —
    the repo lint bans polymorphic [compare] in the storage layer). *)

val split_key : string -> string list
(** Split on {!key_sep}. Only valid when every component is
    0x00-free (not true of fixed-width integer components). *)

val prefix_successor : string -> string option
(** Smallest string greater than every string prefixed by the argument,
    or [None] when no such string exists. Turns a prefix scan into a
    half-open range scan. *)
