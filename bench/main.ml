(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) on the generated datasets.

     dune exec bench/main.exe                 # all figures
     dune exec bench/main.exe -- --figure 12a # one figure
     dune exec bench/main.exe -- --bechamel   # Bechamel micro-suite

   Timing follows the paper's protocol: queries run with a warm cache
   and we report the total time of N runs (default 10, like the
   paper's "Time of 10 runs"), in milliseconds. Absolute numbers are
   not comparable to the paper's DB2-on-2001-hardware seconds; the
   claims under reproduction are relative (who wins, by what factor,
   where the crossovers are). *)

open Twigmatch

let runs = ref 10
let xmark_scale = ref 0.5
let dblp_scale = ref 0.5
let figures = ref []
let run_bechamel = ref false
let metrics_out : string option ref = ref None
let seed = ref 42
let gate_regret : float option ref = ref None

let jobs =
  ref
    (match Tm_par.Pool.env_jobs () with
    | Some j -> j
    | None -> 4)

let say fmt = Printf.printf (fmt ^^ "\n%!")
let progress fmt = Printf.eprintf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* Datasets and databases                                              *)
(* ------------------------------------------------------------------ *)

let xmark_doc =
  lazy
    (progress "[bench] generating XMark-like dataset (scale %.2f)..." !xmark_scale;
     Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = !seed; scale = !xmark_scale })

let dblp_doc =
  lazy
    (progress "[bench] generating DBLP-like dataset (scale %.2f)..." !dblp_scale;
     Tm_datasets.Dblp_gen.generate { Tm_datasets.Dblp_gen.seed = !seed; scale = !dblp_scale })

let build_db name doc =
  progress "[bench] building all indices over %s..." name;
  let t0 = Monotonic_clock.now () in
  let db = Database.create (Lazy.force doc) in
  let t1 = Monotonic_clock.now () in
  progress "[bench] %s ready in %.1fs" name (Int64.to_float (Int64.sub t1 t0) /. 1e9);
  db

let xmark_db = lazy (build_db "XMark" xmark_doc)
let dblp_db = lazy (build_db "DBLP" dblp_doc)

let db_of = function
  | Tm_datasets.Workload.Xmark -> Lazy.force xmark_db
  | Tm_datasets.Workload.Dblp -> Lazy.force dblp_db

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

(* Total wall-clock of [!runs] warm executions, in ms; also returns the
   result cardinality and last-run stats. *)
let time_query db strategy twig =
  ignore (Executor.run ~hint:(Tm_plan.Hint.Force strategy) db twig);
  (* warm-up *)
  let t0 = Monotonic_clock.now () in
  for _ = 2 to !runs do
    ignore (Executor.run ~hint:(Tm_plan.Hint.Force strategy) db twig)
  done;
  let r = Executor.run ~hint:(Tm_plan.Hint.Force strategy) db twig in
  let t1 = Monotonic_clock.now () in
  let ms = Int64.to_float (Int64.sub t1 t0) /. 1e6 in
  (ms, List.length r.Executor.ids, r.Executor.stats)

let mb bytes = float_of_int bytes /. 1e6

(* Table printing helpers. *)
let print_header title columns =
  say "";
  say "== %s ==" title;
  say "%s" (String.concat " | " (List.map (Printf.sprintf "%12s") columns));
  say "%s" (String.make ((List.length columns * 15) - 3) '-')

let fmt_cell = Printf.sprintf "%12s"

(* ------------------------------------------------------------------ *)
(* Figure 9: index space                                               *)
(* ------------------------------------------------------------------ *)

let figure_9 () =
  print_header "Figure 9: space (MB) for different indices"
    [ "dataset"; "RP"; "DP"; "Edge"; "DG+Edge"; "IF+Edge"; "ASR"; "JI" ];
  let row name db paper =
    let cells =
      List.map
        (fun s -> fmt_cell (Printf.sprintf "%.2f" (mb (Database.strategy_size_bytes db s))))
        Database.all_strategies
    in
    say "%s | %s" (fmt_cell name) (String.concat " | " cells);
    say "%s   (%s)" (fmt_cell "") paper
  in
  row "XMark" (Lazy.force xmark_db) "paper: 119 | 431 | 127 | 169 | 167 | 464 | 822";
  row "DBLP" (Lazy.force dblp_db) "paper:  80 |  83 | 106 | 133 | 151 |  93 | 318";
  let xdb = Lazy.force xmark_db in
  let els, vals, depth, paths = Database.document_stats xdb in
  say "XMark: %d elements, %d values, depth %d, %d distinct schema paths (paper: 902)" els vals
    depth paths;
  let ddb = Lazy.force dblp_db in
  let els, vals, depth, paths = Database.document_stats ddb in
  say "DBLP:  %d elements, %d values, depth %d, %d distinct schema paths (paper: 235)" els vals
    depth paths

(* ------------------------------------------------------------------ *)
(* Figure 10 / Figures 7-8: workload and per-branch result sizes       *)
(* ------------------------------------------------------------------ *)

let figure_10 () =
  print_header "Figures 7-8/10: workload queries and per-branch result sizes"
    [ "query"; "dataset"; "branches"; "result sizes per branch" ];
  List.iter
    (fun (q : Tm_datasets.Workload.query) ->
      let db = db_of q.Tm_datasets.Workload.dataset in
      let twig = Tm_datasets.Workload.parse q in
      let cards = Executor.path_cardinalities db twig in
      say "%s | %s | %s | %s"
        (fmt_cell q.Tm_datasets.Workload.name)
        (fmt_cell
           (match q.Tm_datasets.Workload.dataset with
           | Tm_datasets.Workload.Xmark -> "XMark"
           | Tm_datasets.Workload.Dblp -> "DBLP"))
        (fmt_cell (string_of_int q.Tm_datasets.Workload.branches))
        (String.concat ", " (List.map string_of_int cards)))
    Tm_datasets.Workload.all

(* ------------------------------------------------------------------ *)
(* Figure 11: single-path selectivity sweep                            *)
(* ------------------------------------------------------------------ *)

let xml_strategies = Database.[ RP; DP; Edge; DG_edge; IF_edge ]

let run_query_row ~strategies db (q : Tm_datasets.Workload.query) =
  let twig = Tm_datasets.Workload.parse q in
  let card = ref 0 in
  let cells =
    List.map
      (fun s ->
        let ms, n, _ = time_query db s twig in
        card := n;
        fmt_cell (Printf.sprintf "%.2f" ms))
      strategies
  in
  say "%s | %s | %s" (fmt_cell q.Tm_datasets.Workload.name) (fmt_cell (string_of_int !card))
    (String.concat " | " cells)

let figure_11 () =
  let cols = "query" :: "result" :: List.map Database.strategy_name xml_strategies in
  print_header
    (Printf.sprintf "Figure 11(a): XMark single-path, increasing result size (ms, %d runs)" !runs)
    cols;
  let xdb = Lazy.force xmark_db in
  List.iter
    (fun n -> run_query_row ~strategies:xml_strategies xdb (Tm_datasets.Workload.find n))
    [ "Q1x"; "Q2x"; "Q3x" ];
  print_header
    (Printf.sprintf "Figure 11(b): DBLP single-path, increasing result size (ms, %d runs)" !runs)
    cols;
  let ddb = Lazy.force dblp_db in
  List.iter
    (fun n -> run_query_row ~strategies:xml_strategies ddb (Tm_datasets.Workload.find n))
    [ "Q1d"; "Q2d"; "Q3d" ]

(* ------------------------------------------------------------------ *)
(* Figure 12: twig queries, varying branches and selectivity           *)
(* ------------------------------------------------------------------ *)

let figure_12 sub =
  let xdb = Lazy.force xmark_db in
  let cols = "query" :: "result" :: List.map Database.strategy_name xml_strategies in
  let table title queries =
    print_header (title ^ Printf.sprintf " (ms, %d runs)" !runs) cols;
    List.iter
      (fun n -> run_query_row ~strategies:xml_strategies xdb (Tm_datasets.Workload.find n))
      queries
  in
  (match sub with
  | `A | `All ->
    table "Figure 12(a): twigs with selective branches (1-3 branches)" [ "B1"; "Q4x"; "Q5x" ]
  | _ -> ());
  (match sub with
  | `B | `All -> table "Figure 12(b): selective + unselective branches" [ "B2"; "Q6x"; "Q7x" ]
  | _ -> ());
  (match sub with
  | `C | `All -> table "Figure 12(c): unselective branches" [ "B2"; "Q8x"; "Q9x" ]
  | _ -> ());
  match sub with
  | `D | `All ->
    (* the 1-branch baseline for (d): the selective low branch alone *)
    let base =
      {
        Tm_datasets.Workload.name = "B3";
        dataset = Tm_datasets.Workload.Xmark;
        xpath = "/site/open_auctions/open_auction[annotation/author/@person = 'person22082']";
        branches = 1;
        group = "twig-low-branch";
      }
    in
    print_header
      (Printf.sprintf "Figure 12(d): twigs with low branch points (ms, %d runs)" !runs)
      cols;
    run_query_row ~strategies:xml_strategies xdb base;
    List.iter
      (fun n -> run_query_row ~strategies:xml_strategies xdb (Tm_datasets.Workload.find n))
      [ "Q10x"; "Q11x" ]
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Section 5.2.4: recursive query overhead for RP / DP                 *)
(* ------------------------------------------------------------------ *)

let figure_recursion () =
  (* sub-millisecond queries need more repetitions for a stable ratio *)
  let saved_runs = !runs in
  runs := !runs * 10;
  print_header
    (Printf.sprintf
       "Section 5.2.4: '//'-variant overhead for RP and DP (ms, %d runs; paper: < 5%%)" !runs)
    [ "query"; "RP"; "RP(//)"; "overhead"; "DP"; "DP(//)"; "overhead" ];
  let xdb = Lazy.force xmark_db in
  List.iter
    (fun name ->
      let q = Tm_datasets.Workload.find name in
      let twig = Tm_datasets.Workload.parse q in
      let rtwig = Tm_datasets.Workload.parse (Tm_datasets.Workload.recursive_variant q) in
      let rp, _, _ = time_query xdb Database.RP twig in
      let rp', _, _ = time_query xdb Database.RP rtwig in
      let dp, _, _ = time_query xdb Database.DP twig in
      let dp', _, _ = time_query xdb Database.DP rtwig in
      let pct a b = Printf.sprintf "%+.1f%%" ((b -. a) /. a *. 100.0) in
      say "%s | %s | %s | %s | %s | %s | %s" (fmt_cell name)
        (fmt_cell (Printf.sprintf "%.2f" rp))
        (fmt_cell (Printf.sprintf "%.2f" rp'))
        (fmt_cell (pct rp rp'))
        (fmt_cell (Printf.sprintf "%.2f" dp))
        (fmt_cell (Printf.sprintf "%.2f" dp'))
        (fmt_cell (pct dp dp')))
    [ "Q4x"; "Q5x"; "Q6x"; "Q7x"; "Q8x"; "Q9x" ];
  runs := saved_runs

(* ------------------------------------------------------------------ *)
(* Section 5.2.5: space optimizations                                  *)
(* ------------------------------------------------------------------ *)

(* Branch-point node ids for the paper's workload: every node whose tag
   can be a twig branch point in Figures 7-8 (site, item,
   open_auction). Used for HeadId pruning. *)
let workload_branch_ids doc =
  let module T = Tm_xml.Xml_tree in
  let branch_tags = [ "site"; "item"; "open_auction" ] in
  let set = Hashtbl.create 4096 in
  T.iter doc (fun n ->
      match n.T.label with
      | T.Elem tag when List.mem tag branch_tags -> Hashtbl.replace set n.T.id ()
      | _ -> ());
  set

let figure_compression () =
  print_header "Section 5.2.5: space optimizations (MB)"
    [ "dataset"; "variant"; "RP"; "DP"; "notes" ];
  let strategies = Database.[ RP; DP ] in
  let variant name ~dataset ~notes build =
    let db = build () in
    say "%s | %s | %s | %s | %s" (fmt_cell dataset) (fmt_cell name)
      (fmt_cell (Printf.sprintf "%.2f" (mb (Database.strategy_size_bytes db Database.RP))))
      (fmt_cell (Printf.sprintf "%.2f" (mb (Database.strategy_size_bytes db Database.DP))))
      notes
  in
  let xdoc = Lazy.force xmark_doc and ddoc = Lazy.force dblp_doc in
  variant "raw idlists" ~dataset:"XMark" ~notes:"no Section 4.1 encoding" (fun () ->
      Database.create ~strategies ~idlist_codec:`Raw xdoc);
  variant "delta idlists" ~dataset:"XMark" ~notes:"default (lossless, ~30% in paper)" (fun () ->
      Database.create ~strategies xdoc);
  variant "schema-compressed" ~dataset:"XMark" ~notes:"Section 4.2; '//' unsupported" (fun () ->
      Database.create ~strategies ~schema_compressed:true xdoc);
  (let branch_ids = workload_branch_ids xdoc in
   variant "headid-pruned" ~dataset:"XMark" ~notes:"Section 4.3; workload branch points only"
     (fun () -> Database.create ~strategies ~head_filter:(Hashtbl.mem branch_ids) xdoc));
  variant "raw idlists" ~dataset:"DBLP" ~notes:"" (fun () ->
      Database.create ~strategies ~idlist_codec:`Raw ddoc);
  variant "delta idlists" ~dataset:"DBLP" ~notes:"default" (fun () ->
      Database.create ~strategies ddoc);
  variant "schema-compressed" ~dataset:"DBLP" ~notes:"" (fun () ->
      Database.create ~strategies ~schema_compressed:true ddoc);
  (* Demonstrate the functionality loss of Section 4.2: a '//' query on
     the schema-compressed index must be rejected. *)
  let db = Database.create ~strategies ~schema_compressed:true xdoc in
  let twig = Tm_query.Xpath_parser.parse "//item[quantity = '2']" in
  match Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig with
  | exception Tm_index.Family.Unsupported msg ->
    say "schema-compressed RP correctly rejects '//' queries: %s" msg
  | _ -> say "WARNING: schema-compressed RP unexpectedly answered a '//' query"

(* ------------------------------------------------------------------ *)
(* Figure 13: '//' branch points vs ASR and Join Indices               *)
(* ------------------------------------------------------------------ *)

let fig13_strategies = Database.[ RP; DP; Asr; Ji ]

let figure_13 () =
  let xdb = Lazy.force xmark_db in
  let cols = "query" :: "result" :: List.map Database.strategy_name fig13_strategies in
  let baseline name xpath =
    {
      Tm_datasets.Workload.name;
      dataset = Tm_datasets.Workload.Xmark;
      xpath;
      branches = 1;
      group = "recursive";
    }
  in
  print_header
    (Printf.sprintf "Figure 13(a): '//' branch point, selective+unselective (ms, %d runs)" !runs)
    cols;
  run_query_row ~strategies:fig13_strategies xdb
    (baseline "B4" "/site//item[incategory/category = 'category440']");
  List.iter
    (fun n -> run_query_row ~strategies:fig13_strategies xdb (Tm_datasets.Workload.find n))
    [ "Q12x"; "Q13x" ];
  print_header
    (Printf.sprintf "Figure 13(b): '//' branch point, unselective branches (ms, %d runs)" !runs)
    cols;
  run_query_row ~strategies:fig13_strategies xdb (baseline "B5" "/site//item[quantity = '2']");
  List.iter
    (fun n -> run_query_row ~strategies:fig13_strategies xdb (Tm_datasets.Workload.find n))
    [ "Q14x"; "Q15x" ];
  (* the structures-accessed effect the paper attributes the gap to *)
  let twig = Tm_datasets.Workload.parse (Tm_datasets.Workload.find "Q12x") in
  List.iter
    (fun s ->
      let r = Executor.run ~hint:(Tm_plan.Hint.Force s) xdb twig in
      say "%s on Q12x: %d structures accessed, %d index lookups" (Database.strategy_name s)
        r.Executor.stats.Tm_exec.Stats.structures_accessed
        r.Executor.stats.Tm_exec.Stats.index_lookups)
    fig13_strategies

(* ------------------------------------------------------------------ *)
(* Ablations (design choices called out in DESIGN.md)                  *)
(* ------------------------------------------------------------------ *)

(* How much of Figure 12(d) is the index-nested-loop join itself?
   DP(noINLJ) evaluates every branch as a FreeIndex lookup and hash
   joins — DATAPATHS data layout with ROOTPATHS-style planning. *)
let ablation_inlj () =
  print_header
    (Printf.sprintf "Ablation: INLJ contribution on low-branch twigs (ms, %d runs)" !runs)
    [ "query"; "RP"; "DP"; "DP(noINLJ)" ];
  let xdb = Lazy.force xmark_db in
  let time ?dp_use_inlj strategy twig =
    ignore (Executor.run ?dp_use_inlj ~hint:(Tm_plan.Hint.Force strategy) xdb twig);
    let t0 = Monotonic_clock.now () in
    for _ = 1 to !runs do
      ignore (Executor.run ?dp_use_inlj ~hint:(Tm_plan.Hint.Force strategy) xdb twig)
    done;
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6
  in
  List.iter
    (fun name ->
      let twig = Tm_datasets.Workload.parse (Tm_datasets.Workload.find name) in
      say "%s | %s | %s | %s" (fmt_cell name)
        (fmt_cell (Printf.sprintf "%.2f" (time Database.RP twig)))
        (fmt_cell (Printf.sprintf "%.2f" (time Database.DP twig)))
        (fmt_cell (Printf.sprintf "%.2f" (time ~dp_use_inlj:false Database.DP twig))))
    [ "Q10x"; "Q11x"; "Q12x"; "Q15x" ]

(* B+-tree leaf front-coding: the paper leans on DB2's prefix
   compression to make path keys affordable; measure it. *)
let ablation_prefix_compression () =
  print_header "Ablation: B+-tree leaf prefix compression (MB)"
    [ "index"; "front-coded"; "raw keys"; "saving" ];
  let doc = Lazy.force xmark_doc in
  let dict = Tm_xmldb.Dictionary.create () in
  let catalog = Tm_xmldb.Schema_catalog.build dict doc in
  let build pc config =
    let pool =
      Tm_storage.Buffer_pool.create ~capacity:4096 (Tm_storage.Pager.create ~page_size:8192 ())
    in
    Tm_index.Family.build ~prefix_compression:pc ~pool ~dict ~catalog config doc
  in
  List.iter
    (fun (label, config) ->
      let with_pc = mb (Tm_index.Family.size_bytes (build true config)) in
      let without = mb (Tm_index.Family.size_bytes (build false config)) in
      say "%s | %s | %s | %s" (fmt_cell label)
        (fmt_cell (Printf.sprintf "%.2f" with_pc))
        (fmt_cell (Printf.sprintf "%.2f" without))
        (fmt_cell (Printf.sprintf "%.0f%%" ((without -. with_pc) /. without *. 100.0))))
    [
      ("ROOTPATHS", Tm_index.Family.rootpaths);
      ("DATAPATHS", Tm_index.Family.datapaths);
      ("DataGuide", Tm_index.Family.dataguide);
    ]

(* Update cost (paper Section 7): maintaining ROOTPATHS means one entry
   per new rooted-path prefix, DATAPATHS one per new subpath; the Edge
   table only one per node. *)
let ablation_update_cost () =
  print_header
    (Printf.sprintf "Ablation: subtree insert+delete cost (ms per cycle, %d cycles)" !runs)
    [ "indices built"; "ms/cycle" ];
  let subtree () =
    Tm_xml.Xml_tree.(
      elem "author" [ elem_text "fn" "temp"; elem_text "ln" "author"; elem_text "note" "inserted" ])
  in
  List.iter
    (fun (label, strategies) ->
      let doc = Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = !seed; scale = 0.1 } in
      let db = Database.create ~strategies doc in
      let parent =
        Tm_xml.Xml_tree.fold doc
          (fun acc n ->
            if acc = None && Tm_xml.Xml_tree.label_name n = "person" then Some n.Tm_xml.Xml_tree.id
            else acc)
          None
        |> Option.get
      in
      let t0 = Monotonic_clock.now () in
      for _ = 1 to !runs do
        let id = Updates.insert_subtree db ~parent (subtree ()) in
        ignore (Updates.delete_subtree db id)
      done;
      let ms = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6 in
      say "%s | %s" (fmt_cell label) (fmt_cell (Printf.sprintf "%.3f" (ms /. float_of_int !runs))))
    [
      ("Edge only", []);
      ("RP", Database.[ RP ]);
      ("DP", Database.[ DP ]);
      ("all 7 sets", Database.all_strategies);
    ]

(* Durability cost (extension): the same subtree-insert transaction
   through the WAL, per-txn fsync vs group commit, against the unlogged
   baseline — then crash recovery: reopen from the snapshot and replay
   the whole un-checkpointed log. *)
let figure_durability () =
  let txns = max 64 !runs in
  print_header
    (Printf.sprintf "Extension: durable write path (%d subtree-insert txns)" txns)
    [ "mode"; "txn/s"; "ms/txn" ];
  let subtree i =
    Tm_xml.Xml_tree.(elem "person" [ elem_text "name" (Printf.sprintf "p%06d" i) ])
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  let with_dir f =
    let dir = Filename.temp_file "twigbench" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)
  in
  let small_db () =
    let doc = Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = !seed; scale = 0.05 } in
    let db = Database.create ~strategies:Database.[ RP; DP ] doc in
    let parent = db.Database.doc.Tm_xml.Xml_tree.roots.(0).Tm_xml.Xml_tree.id in
    (db, parent)
  in
  let report label ms =
    say "%s | %s | %s" (fmt_cell label)
      (fmt_cell (Printf.sprintf "%.0f" (float_of_int txns /. (ms /. 1e3))))
      (fmt_cell (Printf.sprintf "%.3f" (ms /. float_of_int txns)))
  in
  let timed f =
    let t0 = Monotonic_clock.now () in
    f ();
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6
  in
  (* Unlogged baseline: in-place updates, no transaction, no fsync. *)
  let db, parent = small_db () in
  report "no WAL"
    (timed (fun () ->
         for i = 1 to txns do
           ignore (Updates.insert_subtree db ~parent (subtree i))
         done));
  (* One logged, fsynced transaction per insert. *)
  with_dir (fun dir ->
      let db, parent = small_db () in
      let d = Durable.create ~dir db in
      report "WAL, fsync per txn"
        (timed (fun () ->
             for i = 1 to txns do
               ignore (Durable.insert_subtree d ~parent (subtree i))
             done));
      Durable.close d);
  (* Group commit: batches of 16 transactions share one fsync. *)
  with_dir (fun dir ->
      let db, parent = small_db () in
      let d = Durable.create ~dir db in
      report "WAL, group commit x16"
        (timed (fun () ->
             let i = ref 0 in
             while !i < txns do
               Durable.batch d (fun () ->
                   for _ = 1 to min 16 (txns - !i) do
                     incr i;
                     ignore (Durable.insert_subtree d ~parent (subtree !i))
                   done)
             done));
      Durable.close d);
  (* Crash recovery: drop the handle without a checkpoint and reopen —
     the whole run replays from the log against the initial snapshot. *)
  with_dir (fun dir ->
      let db, parent = small_db () in
      let d = Durable.create ~dir db in
      for i = 1 to txns do
        ignore (Durable.insert_subtree d ~parent (subtree i))
      done;
      Durable.close d;
      let recovered = ref None in
      let ms = timed (fun () -> recovered := Some (Durable.open_ dir)) in
      let d2, r = Option.get !recovered in
      Durable.close d2;
      say "";
      say "Recovery: replayed %d txns in %.1f ms (%.3f ms/txn, %d bytes of log discarded)"
        r.Durable.replayed ms
        (ms /. float_of_int (max 1 r.Durable.replayed))
        r.Durable.discarded_bytes)

(* Page-access locality under a cold buffer pool: RP's value-clustered
   scans touch a handful of contiguous pages; Edge's per-step probes
   scatter across the backward-link index. This is the I/O asymmetry
   underlying Figure 11's wall-clock gap (the paper ran with the OS
   cache off for the same reason). *)
let ablation_pool () =
  print_header "Ablation: cold-cache page behaviour on Q9x (per run)"
    [ "strategy"; "cold ms"; "misses"; "logical reads" ];
  let twig = Tm_datasets.Workload.parse (Tm_datasets.Workload.find "Q9x") in
  let doc = Lazy.force xmark_doc in
  List.iter
    (fun strategy ->
      let db = Database.create ~strategies:[ strategy ] ~pool_capacity:4096 doc in
      ignore (Executor.run ~hint:(Tm_plan.Hint.Force strategy) db twig);
      Database.drop_caches db;
      Tm_storage.Buffer_pool.reset_stats db.Database.pool;
      let t0 = Monotonic_clock.now () in
      ignore (Executor.run ~hint:(Tm_plan.Hint.Force strategy) db twig);
      let cold = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6 in
      let s = Tm_storage.Buffer_pool.stats db.Database.pool in
      say "%s | %s | %s | %s"
        (fmt_cell (Database.strategy_name strategy))
        (fmt_cell (Printf.sprintf "%.2f" cold))
        (fmt_cell (string_of_int s.Tm_storage.Buffer_pool.misses))
        (fmt_cell (string_of_int s.Tm_storage.Buffer_pool.logical_reads)))
    Database.[ RP; DP; Edge; DG_edge ]

(* ------------------------------------------------------------------ *)
(* Robustness: integrity and degradation cost                          *)
(* ------------------------------------------------------------------ *)

(* What the robustness features cost when nothing is wrong, and what
   degradation costs when something is. (a) per-page CRC32 verification
   on cold-cache reads (checksums on vs off); (b) latency of answering
   a DP-planned query through the RP fallback when DP is unusable — a
   Section 4.3 head-pruned build whose DATAPATHS rejects branch probes
   — against running RP directly; (c) bounded buffer-pool retries
   under injected probabilistic read faults. The obs counters these
   paths bump (fault.*.hits, buffer_pool.retries, executor.fallbacks)
   land in --metrics-out. *)
let figure_robustness () =
  let doc = Lazy.force xmark_doc in
  let twig = Tm_datasets.Workload.parse (Tm_datasets.Workload.find "Q9x") in
  let cold_run db strategy twig =
    ignore (Executor.run ~hint:(Tm_plan.Hint.Force strategy) db twig);
    Database.drop_caches db;
    Tm_storage.Buffer_pool.reset_stats db.Database.pool;
    let t0 = Monotonic_clock.now () in
    ignore (Executor.run ~hint:(Tm_plan.Hint.Force strategy) db twig);
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6
  in
  (* (a) checksum overhead: every cold read re-hashes the page *)
  print_header "Robustness (a): page-checksum overhead, cold cache on Q9x (per run)"
    [ "strategy"; "crc on ms"; "crc off ms"; "overhead" ];
  List.iter
    (fun strategy ->
      let cold checksums =
        let db = Database.create ~checksums ~strategies:[ strategy ] ~pool_capacity:4096 doc in
        cold_run db strategy twig
      in
      let on = cold true and off = cold false in
      say "%s | %s | %s | %s"
        (fmt_cell (Database.strategy_name strategy))
        (fmt_cell (Printf.sprintf "%.2f" on))
        (fmt_cell (Printf.sprintf "%.2f" off))
        (fmt_cell (Printf.sprintf "%+.1f%%" ((on -. off) /. off *. 100.0))))
    Database.[ RP; DP; Edge ];
  (* (b) fallback latency: head-pruning keeps ROOTPATHS intact (its rows
     all head at the root) but makes DATAPATHS reject nonzero-head
     branch probes, so requesting DP degrades to RP every time. *)
  print_header
    (Printf.sprintf "Robustness (b): DP->RP fallback latency, head-pruned DP (ms, %d runs)" !runs)
    [ "query"; "RP direct"; "DP degraded"; "penalty" ];
  let pruned = Database.create ~strategies:Database.[ RP; DP ] ~head_filter:(fun _ -> false) doc in
  List.iter
    (fun name ->
      let twig = Tm_datasets.Workload.parse (Tm_datasets.Workload.find name) in
      let direct, n, _ = time_query pruned Database.RP twig in
      let r = Executor.run ~hint:(Tm_plan.Hint.Force Database.DP) pruned twig in
      if r.Executor.fallbacks = [] || r.Executor.strategy <> Database.RP then
        failwith (name ^ ": expected a DP->RP fallback on the pruned build");
      if List.length r.Executor.ids <> n then failwith (name ^ ": degraded ids differ from RP");
      let degraded, _, _ = time_query pruned Database.DP twig in
      say "%s | %s | %s | %s" (fmt_cell name)
        (fmt_cell (Printf.sprintf "%.2f" direct))
        (fmt_cell (Printf.sprintf "%.2f" degraded))
        (fmt_cell (Printf.sprintf "%+.1f%%" ((degraded -. direct) /. direct *. 100.0))))
    [ "Q10x"; "Q11x" ];
  (* (c) retry cost: cold runs so reads reach the pager (a warm pool
     never calls Pager.read), injected read failures absorbed by the
     buffer pool's bounded retries *)
  print_header
    (Printf.sprintf "Robustness (c): bounded retries under pager.read=prob:0.1 (%d cold runs)"
       !runs)
    [ "condition"; "total ms"; "faults"; "retries" ];
  let db = Database.create ~strategies:Database.[ RP ] ~pool_capacity:4096 doc in
  (* cold_run resets pool stats before its timed run, so reading them
     after it returns yields that run's retries alone *)
  let cold_total () =
    let t = ref 0.0 and retries = ref 0 in
    for _ = 1 to !runs do
      t := !t +. cold_run db Database.RP twig;
      retries := !retries + (Tm_storage.Buffer_pool.stats db.Database.pool).Tm_storage.Buffer_pool.retries
    done;
    (!t, !retries)
  in
  let clean_ms, _ = cold_total () in
  Tm_fault.Fault.inject ~site:"pager.read" (Tm_fault.Fault.Prob 0.1);
  let faulty_ms, retries = cold_total () in
  let hits = Tm_fault.Fault.hits "pager.read" in
  Tm_fault.Fault.clear ();
  say "%s | %s | %s | %s" (fmt_cell "clean")
    (fmt_cell (Printf.sprintf "%.2f" clean_ms))
    (fmt_cell "0") (fmt_cell "0");
  say "%s | %s | %s | %s" (fmt_cell "10% faults")
    (fmt_cell (Printf.sprintf "%.2f" faulty_ms))
    (fmt_cell (string_of_int hits))
    (fmt_cell (string_of_int retries))

(* ------------------------------------------------------------------ *)
(* Extension: cost-based plan choice                                   *)
(* ------------------------------------------------------------------ *)

(* The Lore-style optimizer (paper Section 6): choose between RP's
   merge-join plan and DP's INLJ plan from selectivity statistics. A
   correct chooser must track the winner across Figures 12(c) and
   12(d), whose best strategies differ. *)
let extension_auto () =
  print_header
    (Printf.sprintf "Extension: cost-based RP/DP choice (ms, %d runs)" !runs)
    [ "query"; "RP"; "DP"; "auto"; "chose" ];
  let xdb = Lazy.force xmark_db in
  List.iter
    (fun name ->
      let twig = Tm_datasets.Workload.parse (Tm_datasets.Workload.find name) in
      let rp, _, _ = time_query xdb Database.RP twig in
      let dp, _, _ = time_query xdb Database.DP twig in
      let chosen, _ = Executor.choose_plan xdb twig in
      let auto, _, _ = time_query xdb chosen twig in
      say "%s | %s | %s | %s | %s" (fmt_cell name)
        (fmt_cell (Printf.sprintf "%.2f" rp))
        (fmt_cell (Printf.sprintf "%.2f" dp))
        (fmt_cell (Printf.sprintf "%.2f" auto))
        (fmt_cell (Database.strategy_name chosen)))
    [ "Q3x"; "Q5x"; "Q8x"; "Q9x"; "Q10x"; "Q11x"; "Q12x"; "Q15x" ]

(* ------------------------------------------------------------------ *)
(* Planner: regret vs the best-of-all-strategies oracle                *)
(* ------------------------------------------------------------------ *)

(* The full planner (Tm_plan behind Hint.Auto): every workload query is
   timed under each costed strategy (the exhaustive oracle keeps the
   best) and end-to-end under Auto — planning, cache and adaptivity
   included. The aggregate regret (total auto time vs total oracle
   time) is the CI gate (--gate-regret): per-query percentages are
   noisy at smoke scales, the workload total is not.

   Closes with the mid-query replan demonstration: the plan.estimate
   failpoint skews every estimate three orders of magnitude low, the
   blind executor runs the resulting mis-plan to completion, and the
   adaptive executor must abandon it once a path blows the >10x
   trigger and recover toward the oracle. *)

let planner_regret : float option ref = ref None

let time_hint db hint twig =
  ignore (Executor.run ~hint db twig);
  let t0 = Monotonic_clock.now () in
  for _ = 2 to !runs do
    ignore (Executor.run ~hint db twig)
  done;
  let r = Executor.run ~hint db twig in
  let t1 = Monotonic_clock.now () in
  (Int64.to_float (Int64.sub t1 t0) /. 1e6, r)

let figure_planner () =
  print_header
    (Printf.sprintf "Planner: auto vs best-of-all-strategies oracle (ms, %d runs)" !runs)
    [ "query"; "dataset"; "oracle"; "best"; "auto"; "chose"; "regret%" ];
  let total_best = ref 0.0 and total_auto = ref 0.0 in
  let within = ref 0 and n = ref 0 in
  List.iter
    (fun (q : Tm_datasets.Workload.query) ->
      let db = db_of q.Tm_datasets.Workload.dataset in
      let twig = Tm_datasets.Workload.parse q in
      let timed =
        List.map (fun s -> (s, (fun (ms, _, _) -> ms) (time_query db s twig))) Tm_plan.Cost.costed
      in
      let best_s, best_ms =
        List.fold_left
          (fun (bs, bm) (s, m) -> if m < bm then (s, m) else (bs, bm))
          (List.hd timed) (List.tl timed)
      in
      let auto_ms, r = time_hint db Tm_plan.Hint.Auto twig in
      (* the +0.05 ms absolute slack keeps sub-millisecond smoke runs
         from flagging timer noise as regret *)
      let regret = (auto_ms -. best_ms) /. Float.max best_ms 0.01 *. 100.0 in
      total_best := !total_best +. best_ms;
      total_auto := !total_auto +. auto_ms;
      incr n;
      if auto_ms <= (best_ms *. 1.10) +. 0.05 then incr within;
      say "%s | %s | %s | %s | %s | %s | %s" (fmt_cell q.Tm_datasets.Workload.name)
        (fmt_cell
           (match q.Tm_datasets.Workload.dataset with
           | Tm_datasets.Workload.Xmark -> "XMark"
           | Tm_datasets.Workload.Dblp -> "DBLP"))
        (fmt_cell (Database.strategy_name best_s))
        (fmt_cell (Printf.sprintf "%.2f" best_ms))
        (fmt_cell (Printf.sprintf "%.2f" auto_ms))
        (fmt_cell (Database.strategy_name r.Executor.strategy))
        (fmt_cell (Printf.sprintf "%+.1f" regret)))
    Tm_datasets.Workload.all;
  let aggregate = (!total_auto -. !total_best) /. Float.max !total_best 0.01 *. 100.0 in
  planner_regret := Some aggregate;
  say "";
  say "aggregate regret: %+.1f%% (auto %.1f ms vs oracle %.1f ms); within 10%% on %d/%d queries"
    aggregate !total_auto !total_best !within !n;
  (* -- mid-query replan demonstration ------------------------------ *)
  say "";
  say "-- mid-query replan (plan.estimate failpoint: every estimate /1024) --";
  say "%s"
    (String.concat " | "
       (List.map fmt_cell [ "query"; "blind"; "blind ms"; "adaptive"; "replans"; "final" ]));
  let xdb = Lazy.force xmark_db in
  (* the queries where a mis-planned driver hurts most: highest
     path-cardinality skew among the multi-path XMark workload *)
  (* the skewed estimate bottoms out at the replan floor, so a path can
     only blow the >10x trigger when its true cardinality clears
     factor * floor rows; rank the eligible queries by driver skew,
     where a mis-planned driver hurts most *)
  let trigger_rows = Tm_plan.Planner.replan_factor * Tm_plan.Planner.replan_floor in
  let skew q =
    match Executor.path_cardinalities xdb (Tm_datasets.Workload.parse q) with
    | [] | [ _ ] -> 0.0
    | cards ->
      let mx = List.fold_left max 1 cards and mn = List.fold_left min max_int cards in
      if mx <= trigger_rows then 0.0 else float_of_int mx /. float_of_int (max 1 mn)
  in
  let candidates =
    Tm_datasets.Workload.xmark_queries
    |> List.filter_map (fun q -> match skew q with 0.0 -> None | s -> Some (s, q))
    |> List.sort (fun (a, _) (b, _) -> Float.compare b a)
    |> List.filteri (fun i _ -> i < 3)
    |> List.map snd
  in
  if candidates = [] then
    say "(no workload query clears the %d-row trigger at this scale; raise --xmark-scale)"
      trigger_rows;
  let best_recovery = ref None in
  List.iter
    (fun (q : Tm_datasets.Workload.query) ->
      let twig = Tm_datasets.Workload.parse q in
      Tm_fault.Fault.inject ~site:Tm_plan.Estimate.failpoint (Tm_fault.Fault.Every 1);
      Fun.protect
        ~finally:(fun () ->
          Tm_fault.Fault.clear ~site:Tm_plan.Estimate.failpoint ();
          Tm_plan.Cache.clear ())
        (fun () ->
          Tm_plan.Cache.clear ();
          (* what the skewed statistics make the planner pick, executed
             without adaptivity (forced plans never replan) *)
          let blind_s, _ = Executor.choose_plan xdb twig in
          let blind_ms, r_blind = time_hint xdb (Tm_plan.Hint.Force blind_s) twig in
          let auto_ms, r = time_hint xdb Tm_plan.Hint.Auto twig in
          assert (r.Executor.ids = r_blind.Executor.ids);
          if r.Executor.replans > 0 && auto_ms < blind_ms then begin
            let gain = (blind_ms -. auto_ms) /. blind_ms *. 100.0 in
            match !best_recovery with
            | Some (g, _) when g >= gain -> ()
            | _ -> best_recovery := Some (gain, q.Tm_datasets.Workload.name)
          end;
          say "%s | %s | %s | %s | %s | %s" (fmt_cell q.Tm_datasets.Workload.name)
            (fmt_cell (Database.strategy_name blind_s))
            (fmt_cell (Printf.sprintf "%.2f" blind_ms))
            (fmt_cell (Printf.sprintf "%.2f" auto_ms))
            (fmt_cell (string_of_int r.Executor.replans))
            (fmt_cell (Database.strategy_name r.Executor.strategy))))
    candidates;
  match !best_recovery with
  | Some (gain, name) ->
    say "beneficial replan: %s recovered %.1f%% of the mis-planned time by abandoning mid-query"
      name gain
  | None -> say "no recovery on this workload/scale (replans fired, but the mis-plan was benign)"

(* ------------------------------------------------------------------ *)
(* Extension: range predicates                                         *)
(* ------------------------------------------------------------------ *)

(* Section 7 names "complex conditions on values" as future work; with
   value-first key order the equality machinery generalizes to
   contiguous range scans. Compare the strategies on range twigs. *)
let extension_ranges () =
  print_header
    (Printf.sprintf "Extension: range predicates (ms, %d runs)" !runs)
    [ "query"; "result"; "RP"; "DP"; "Edge"; "DG+Edge" ];
  let xdb = Lazy.force xmark_db in
  let strategies = Database.[ RP; DP; Edge; DG_edge ] in
  List.iter
    (fun (name, xpath) ->
      let twig = Tm_query.Xpath_parser.parse xpath in
      let card = ref 0 in
      let cells =
        List.map
          (fun s ->
            let ms, n, _ = time_query xdb s twig in
            card := n;
            fmt_cell (Printf.sprintf "%.2f" ms))
          strategies
      in
      say "%s | %s | %s" (fmt_cell name) (fmt_cell (string_of_int !card))
        (String.concat " | " cells))
    [
      ("R1", "/site/regions/namerica/item/quantity[. >= '3']");
      ("R2", "/site/people/person/profile[@income >= '2000'][@income < '5000']");
      ("R3", "/site/people/person/profile/@income[. >= '9876.00'][. <= '9876.50']");
      ("R4", "//item[quantity >= '4']/mailbox/mail/date");
    ]

(* ------------------------------------------------------------------ *)
(* Extension: structural-join engines                                  *)
(* ------------------------------------------------------------------ *)

(* The comparison the paper could not run (Section 5.1.2: "We could not
   use the structural join algorithms of [34, 1, 3] since none of these
   algorithms has been implemented in commercial database systems"):
   Stack-Tree binary semi-joins and holistic PathStack+merge vs the
   paper's index strategies, over the same substrate. *)
let extension_joins () =
  print_header
    (Printf.sprintf "Extension: structural joins vs path indices (ms, %d runs)" !runs)
    [ "query"; "result"; "RP"; "DP"; "STJ"; "PathStack" ];
  let xdb = Lazy.force xmark_db in
  let ctx =
    Tm_joins.Context.build ~pool:xdb.Database.pool ~dict:xdb.Database.dict
      ~edge:xdb.Database.edge xdb.Database.doc
  in
  let time f =
    ignore (f ());
    let t0 = Monotonic_clock.now () in
    for _ = 1 to !runs do
      ignore (f ())
    done;
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6
  in
  List.iter
    (fun name ->
      let twig = Tm_datasets.Workload.parse (Tm_datasets.Workload.find name) in
      let card =
        List.length (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) xdb twig).Executor.ids
      in
      say "%s | %s | %s | %s | %s | %s" (fmt_cell name)
        (fmt_cell (string_of_int card))
        (fmt_cell
           (Printf.sprintf "%.2f"
              (time (fun () -> Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) xdb twig))))
        (fmt_cell
           (Printf.sprintf "%.2f"
              (time (fun () -> Executor.run ~hint:(Tm_plan.Hint.Force Database.DP) xdb twig))))
        (fmt_cell (Printf.sprintf "%.2f" (time (fun () -> Tm_joins.Engine.run_stj ctx twig))))
        (fmt_cell
           (Printf.sprintf "%.2f" (time (fun () -> Tm_joins.Engine.run_pathstack ctx twig)))))
    [ "Q1x"; "Q3x"; "Q6x"; "Q9x"; "Q10x"; "Q12x"; "Q14x" ];
  say "tag-stream index: %.2f MB extra" (mb (Tm_joins.Context.size_bytes ctx))

(* ------------------------------------------------------------------ *)
(* Parallel execution (lib/par)                                        *)
(* ------------------------------------------------------------------ *)

(* Three views of the domain-pool work. (a) Intra-query speedup from
   fanning one twig's root-to-leaf paths across domains — bounded by
   the path count and per-path skew, so expect modest gains on 2-3
   branch twigs. (b) Workload throughput: independent twig queries of
   the multi-path XMark workload dispatched concurrently against the
   shared read-only database — the scaling headline, and the ids are
   verified against the sequential run. (c) Parallel DATAPATHS
   subpath-closure build vs the sequential build. *)
let figure_parallel () =
  let jobs = max 2 !jobs in
  let cores = Domain.recommended_domain_count () in
  if cores < jobs then
    say
      "NOTE: only %d core(s) available for %d jobs — wall-clock speedup is bounded by the core \
       count; on >= %d cores this workload scales near-linearly. Identity of results is still \
       verified."
      cores jobs jobs;
  let xdb = Lazy.force xmark_db in
  let multi_path =
    List.filter
      (fun (q : Tm_datasets.Workload.query) ->
        q.Tm_datasets.Workload.dataset = Tm_datasets.Workload.Xmark
        && q.Tm_datasets.Workload.branches >= 2)
      Tm_datasets.Workload.all
  in
  Tm_par.Pool.with_pool ~jobs @@ fun pool ->
  (* (a) per-path fan-out inside one query *)
  print_header
    (Printf.sprintf "Parallel (a): per-path fan-out under RP, jobs=1 vs jobs=%d (ms, %d runs)" jobs
       !runs)
    [ "query"; "result"; "seq"; "par"; "speedup" ];
  List.iter
    (fun (q : Tm_datasets.Workload.query) ->
      let twig = Tm_datasets.Workload.parse q in
      let time ?pool () =
        ignore (Executor.run ?pool ~hint:(Tm_plan.Hint.Force Database.RP) xdb twig);
        let t0 = Monotonic_clock.now () in
        for _ = 1 to !runs do
          ignore (Executor.run ?pool ~hint:(Tm_plan.Hint.Force Database.RP) xdb twig)
        done;
        Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6
      in
      let seq = time () in
      let par = time ~pool () in
      let ids_seq = (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) xdb twig).Executor.ids in
      let ids_par =
        (Executor.run ~pool ~hint:(Tm_plan.Hint.Force Database.RP) xdb twig).Executor.ids
      in
      if ids_seq <> ids_par then
        failwith ("parallel ids differ on " ^ q.Tm_datasets.Workload.name);
      say "%s | %s | %s | %s | %s"
        (fmt_cell q.Tm_datasets.Workload.name)
        (fmt_cell (string_of_int (List.length ids_seq)))
        (fmt_cell (Printf.sprintf "%.2f" seq))
        (fmt_cell (Printf.sprintf "%.2f" par))
        (fmt_cell (Printf.sprintf "%.2fx" (seq /. par))))
    multi_path;
  (* (b) workload throughput: whole queries as pool tasks *)
  let workload =
    List.concat_map
      (fun (q : Tm_datasets.Workload.query) ->
        let twig = Tm_datasets.Workload.parse q in
        [ (Database.RP, twig); (Database.DP, twig) ])
      multi_path
  in
  let tasks = List.concat (List.init (max 1 !runs) (fun _ -> workload)) in
  let eval (s, twig) = (Executor.run ~hint:(Tm_plan.Hint.Force s) xdb twig).Executor.ids in
  List.iter (fun t -> ignore (eval t)) workload;
  (* warm *)
  let t0 = Monotonic_clock.now () in
  let seq_ids = List.map eval tasks in
  let t_seq = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6 in
  let t0 = Monotonic_clock.now () in
  let par_ids = Tm_par.Pool.map pool eval tasks in
  let t_par = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6 in
  if seq_ids <> par_ids then failwith "parallel workload ids differ from sequential";
  say "";
  say "Parallel (b): multi-path XMark twig workload, %d queries (RP+DP over %d twigs x %d reps)"
    (List.length tasks) (List.length multi_path) (max 1 !runs);
  say "  jobs=1: %.1f ms   jobs=%d: %.1f ms   speedup: %.2fx   (identical result ids)" t_seq jobs
    t_par (t_seq /. t_par);
  (* (c) parallel DATAPATHS subpath-closure build *)
  let doc = Lazy.force xmark_doc in
  let time_build ?par () =
    let t0 = Monotonic_clock.now () in
    let db = Database.create ?par ~strategies:Database.[ DP ] doc in
    let ms = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6 in
    (ms, db)
  in
  let seq_ms, seq_db = time_build () in
  let par_ms, par_db = time_build ~par:pool () in
  let seq_sz = Database.strategy_size_bytes seq_db Database.DP in
  let par_sz = Database.strategy_size_bytes par_db Database.DP in
  if seq_sz <> par_sz then failwith "parallel DATAPATHS build differs from sequential";
  say "";
  say "Parallel (c): DATAPATHS build — seq %.0f ms, jobs=%d %.0f ms (%.2fx); identical index \
       (%d bytes)"
    seq_ms jobs par_ms (seq_ms /. par_ms) seq_sz

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite                                                *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let xdb = Lazy.force xmark_db in
  let bench_query name strategy qname =
    let twig = Tm_datasets.Workload.parse (Tm_datasets.Workload.find qname) in
    Test.make ~name
      (Staged.stage (fun () -> ignore (Executor.run ~hint:(Tm_plan.Hint.Force strategy) xdb twig)))
  in
  let test =
    Test.make_grouped ~name:"twig-queries"
      [
        (* Figure 11 representative (single path, moderate selectivity) *)
        bench_query "fig11/Q2x/RP" Database.RP "Q2x";
        bench_query "fig11/Q2x/DP" Database.DP "Q2x";
        bench_query "fig11/Q2x/Edge" Database.Edge "Q2x";
        (* Figure 12 representative (2-branch twig) *)
        bench_query "fig12/Q6x/RP" Database.RP "Q6x";
        bench_query "fig12/Q6x/DP" Database.DP "Q6x";
        (* Figure 12(d) representative (low branch point: INLJ wins) *)
        bench_query "fig12d/Q10x/RP" Database.RP "Q10x";
        bench_query "fig12d/Q10x/DP" Database.DP "Q10x";
        (* Figure 13 representative ('//' branch point) *)
        bench_query "fig13/Q12x/DP" Database.DP "Q12x";
        bench_query "fig13/Q12x/ASR" Database.Asr "Q12x";
        bench_query "fig13/Q12x/JI" Database.Ji "Q12x";
      ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      say "-- %s --" measure;
      Hashtbl.iter
        (fun name o ->
          match Analyze.OLS.estimates o with
          | Some [ est ] -> say "%-28s %14.0f ns/run" name est
          | _ -> say "%-28s (no estimate)" name)
        tbl)
    results

(* ------------------------------------------------------------------ *)
(* Overload: goodput and tail latency vs offered load                  *)
(* ------------------------------------------------------------------ *)

(* Serving-layer stress bench: a live loopback server over the XMark
   database, driven open-loop (arrivals on a fixed schedule regardless
   of completions, the overload-honest protocol) at multiples of the
   measured saturation rate. Reported per offered load: goodput
   (complete 200s/s), shed counts, and p50/p99/p999 of the {e accepted}
   requests — the claim under test is that admission control and
   adaptive shedding keep the accepted-request p99 bounded (within 3x
   the unloaded p99 at 2x saturation) instead of letting the queue
   amplify it without bound. *)

let overload_gate : (float * float * float * float) option ref = ref None
(* (p99 at 2x, 3 * p99 at 0.5x, goodput at 2x, saturation/2) *)

let gate_overload = ref false

let url_encode s =
  let buf = Buffer.create (String.length s * 3) in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' | '~' -> Buffer.add_char buf c
      | _ -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

(* One HTTP exchange; returns the status code, or 0 when the connection
   died without a complete status line. *)
let http_get port target =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      match Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
      | exception Unix.Unix_error (_, _, _) -> 0
      | () -> (
        let req =
          Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
            target
        in
        match Unix.write_substring sock req 0 (String.length req) with
        | exception Unix.Unix_error (_, _, _) -> 0
        | _ ->
          let buf = Buffer.create 256 in
          let chunk = Bytes.create 4096 in
          let rec loop () =
            match Unix.read sock chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              loop ()
            | exception Unix.Unix_error (_, _, _) -> ()
          in
          loop ();
          let s = Buffer.contents buf in
          if String.length s >= 12 && String.sub s 0 9 = "HTTP/1.1 " then
            match int_of_string_opt (String.sub s 9 3) with Some c -> c | None -> 0
          else 0))

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(max 0 (min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))

(* Open-loop driver: [n_total] arrivals on a fixed [rate] schedule,
   pulled by a small domain pool. Latency is measured from the
   {e scheduled} arrival, so time spent waiting for admission — or for
   a free client — counts against the server, as it would for real
   clients. *)
let open_loop ~port ~target ~rate ~n_total ~clients =
  let interval_ns = 1e9 /. rate in
  let next = Atomic.make 0 in
  let results = Array.make n_total (0, 0.0) in
  let t0 = Monotonic_clock.now () in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n_total then begin
        let sched = Int64.add t0 (Int64.of_float (float_of_int i *. interval_ns)) in
        let rec pace () =
          let dt = Int64.to_float (Int64.sub sched (Monotonic_clock.now ())) /. 1e9 in
          if dt > 0.0 then begin
            Unix.sleepf (Float.min dt 0.005);
            pace ()
          end
        in
        pace ();
        let status = http_get port target in
        let ms = Int64.to_float (Int64.sub (Monotonic_clock.now ()) sched) /. 1e6 in
        results.(i) <- (status, ms);
        go ()
      end
    in
    go ()
  in
  let ds = List.init clients (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  let dt_s = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9 in
  (results, dt_s)

let figure_overload () =
  let db = Lazy.force xmark_db in
  (* Q13x pinned to root-paths: a branching recursive twig whose RP
     evaluation costs milliseconds at scale >= 0.5 — per-request work
     must dominate loopback connection overhead, or saturation belongs
     to the load generator instead of the server and shedding never
     engages. Run this figure at the default XMark scale. *)
  let twig_src = (Tm_datasets.Workload.find "Q13x").Tm_datasets.Workload.xpath in
  let target = "/query?q=" ^ url_encode twig_src ^ "&hint=rp" in
  (* Two execution slots and a short queue: admission must bind well
     below the client pool's concurrency for overload to reach the
     server rather than pile up inside the load generator. *)
  let max_in_flight = 2 in
  let module Server = Tm_serve.Server in
  (* Phase 1: unloaded latency and saturation throughput, on a plain
     server (no shedding pressure at these loads). *)
  let unloaded_p50, unloaded_p99, saturation =
    let t = Server.create ~port:0 db in
    Tm_par.Pool.with_pool ~jobs:(max_in_flight + 1) @@ fun pool ->
    let d = Domain.spawn (fun () -> Server.run ~pool t) in
    Fun.protect
      ~finally:(fun () ->
        Server.stop t;
        ignore (Domain.join d))
      (fun () ->
        let port = Server.port t in
        for _ = 1 to 10 do
          ignore (http_get port target) (* warm-up: page cache, JIT-ish paths, GC *)
        done;
        let lats =
          Array.init 40 (fun _ ->
              let a = Monotonic_clock.now () in
              ignore (http_get port target);
              Int64.to_float (Int64.sub (Monotonic_clock.now ()) a) /. 1e6)
        in
        Array.sort Float.compare lats;
        (* saturation: closed-loop, one client per execution slot *)
        let stop_at = Int64.add (Monotonic_clock.now ()) 1_500_000_000L in
        let done_ = Atomic.make 0 in
        let ds =
          List.init max_in_flight (fun _ ->
              Domain.spawn (fun () ->
                  while Int64.compare (Monotonic_clock.now ()) stop_at < 0 do
                    if http_get port target = 200 then Atomic.incr done_
                  done))
        in
        List.iter Domain.join ds;
        (percentile lats 0.5, percentile lats 0.99, float_of_int (Atomic.get done_) /. 1.5))
  in
  progress "[bench] overload: unloaded p50 %.2f ms, p99 %.2f ms, saturation %.0f req/s"
    unloaded_p50 unloaded_p99 saturation;
  (* Phase 2: open-loop sweep over offered-load multiples, against a
     server with the adaptive shed target tied to the unloaded p99. *)
  let light_p99 = ref Float.infinity in
  let config =
    {
      Server.default_config with
      Server.max_in_flight;
      (* short queue: with ~p50-sized service times, 4 waiters already
         put the accepted tail near the 3x-unloaded budget *)
      max_queue = 4;
      request_timeout_ms = 10_000.0;
      shed_p99_ms = Float.max 5.0 unloaded_p99;
    }
  in
  let t = Server.create ~port:0 ~config db in
  Tm_par.Pool.with_pool ~jobs:(max_in_flight + 1) @@ fun pool ->
  let d = Domain.spawn (fun () -> Server.run ~pool t) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      ignore (Domain.join d))
    (fun () ->
      let port = Server.port t in
      print_header
        "Overload: goodput and accepted-request steady-state latency vs offered load \
         (open-loop)"
        [ "offered"; "req/s"; "ok"; "shed"; "died"; "goodput"; "p50ms"; "p99ms"; "p999ms" ];
      List.iter
        (fun mult ->
          let rate = Float.max 10.0 (saturation *. mult) in
          let n_total = min 800 (max 100 (int_of_float (rate *. 2.5))) in
          let results, dt_s = open_loop ~port ~target ~rate ~n_total ~clients:16 in
          let ok =
            Array.to_list results |> List.filter (fun (s, _) -> s = 200) |> Array.of_list
          in
          let shed =
            Array.fold_left (fun a (s, _) -> if s = 429 || s = 503 then a + 1 else a) 0 results
          in
          let died = Array.fold_left (fun a (s, _) -> if s = 0 then a + 1 else a) 0 results in
          (* Latency percentiles over the steady-state tail of the
             window: the first quarter is the adaptive shedder's ramp
             (its p99 ring must observe congestion before the queue
             limit tightens) and would otherwise dominate the p99 of a
             few-hundred-sample window. Counts and goodput still cover
             the whole window. *)
          let warm = Array.length results / 4 in
          let lats =
            Array.to_list results
            |> List.filteri (fun i (s, _) -> i >= warm && s = 200)
            |> List.map snd |> Array.of_list
          in
          Array.sort Float.compare lats;
          let goodput = float_of_int (Array.length ok) /. dt_s in
          let p99 = percentile lats 0.99 in
          say "%s | %s | %s | %s | %s | %s | %s | %s | %s"
            (fmt_cell (Printf.sprintf "%.1fx" mult))
            (fmt_cell (Printf.sprintf "%.0f" rate))
            (fmt_cell (string_of_int (Array.length ok)))
            (fmt_cell (string_of_int shed))
            (fmt_cell (string_of_int died))
            (fmt_cell (Printf.sprintf "%.0f/s" goodput))
            (fmt_cell (Printf.sprintf "%.1f" (percentile lats 0.5)))
            (fmt_cell (Printf.sprintf "%.1f" p99))
            (fmt_cell (Printf.sprintf "%.1f" (percentile lats 0.999)));
          (* The latency reference for the gate is the 0.5x row: below
             saturation, no queueing, but measured through the same
             16-domain harness — the sequential probe above understates
             the generator's own scheduling overhead, which is not the
             server's to answer for. *)
          if mult = 0.5 then light_p99 := p99
          else if mult = 2.0 then
            overload_gate := Some (p99, 3.0 *. !light_p99, goodput, saturation /. 2.0))
        [ 0.5; 1.0; 2.0; 4.0 ];
      let s = Server.stats t in
      say "";
      say "accounting: accepted %d = responses %d + write_failures %d + accept_faults %d"
        s.Server.accepted s.Server.responses s.Server.write_failures s.Server.accept_faults;
      say "claim: at 2x saturation the accepted-request p99 stays within 3x the lightly";
      say "       loaded (0.5x) p99, and goodput holds at >= half the saturation rate";
      say "       (shedding, not collapse)")

(* ------------------------------------------------------------------ *)
(* Flight-recorder overhead                                            *)
(* ------------------------------------------------------------------ *)

let flight_overhead : float option ref = ref None
let gate_flight : float option ref = ref None

(* The recorder's contract is "cheap enough to leave on in production":
   both legs run in the serving posture (metrics sink and journal
   enabled, auto planner), so the measured delta is the marginal cost
   of flight-event emission alone. Two disabled legs bracket the
   enabled one and the faster is the baseline, which biases the
   comparison against the recorder, not for it. *)
let figure_flight () =
  let db = Lazy.force xmark_db in
  let twigs = List.map Tm_datasets.Workload.parse Tm_datasets.Workload.xmark_queries in
  let sweep () =
    List.iter (fun twig -> ignore (Executor.run ~hint:Tm_plan.Hint.Auto db twig)) twigs
  in
  let leg () =
    let t0 = Monotonic_clock.now () in
    for _ = 1 to !runs do
      sweep ()
    done;
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6
  in
  Tm_obs.Obs.with_enabled true @@ fun () ->
  Tm_obs.Journal.with_enabled true @@ fun () ->
  sweep ();
  (* warm caches and plan cache *)
  (* Interleaved off/on pairs, best-of-each: back-to-back legs share
     whatever GC and cache state drifts across the run, so comparing
     minima isolates the recorder's cost from the drift. *)
  let pairs = 5 in
  let off = ref Float.infinity and on_best = ref Float.infinity in
  for _ = 1 to pairs do
    off := Float.min !off (Tm_obs.Flight.with_enabled false leg);
    on_best := Float.min !on_best (Tm_obs.Flight.with_enabled true leg)
  done;
  let off = !off and on_ = !on_best in
  let overhead = (on_ -. off) /. Float.max off 0.01 *. 100.0 in
  flight_overhead := Some overhead;
  print_header
    (Printf.sprintf
       "Flight recorder: enabled overhead, XMark workload x%d runs (claim: < 3%%)" !runs)
    [ "recorder"; "total ms" ];
  say "%s | %s" (fmt_cell "off") (fmt_cell (Printf.sprintf "%.1f" off));
  say "%s | %s" (fmt_cell "on") (fmt_cell (Printf.sprintf "%.1f" on_));
  say "overhead: %+.2f%% (events recorded so far: %d)" overhead
    (Tm_obs.Flight.total_events ())

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let all_figures =
  [
    "9"; "10"; "11"; "12a"; "12b"; "12c"; "12d"; "recursion"; "compression"; "13";
    "ablation-inlj"; "ablation-pc"; "ablation-update"; "ablation-pool"; "durability";
    "robustness";
    "extension-joins"; "extension-auto"; "planner"; "extension-ranges"; "parallel";
    "overload"; "flight";
  ]

(* Per-figure tail latency for --metrics-out: bucket counts of every
   registered histogram are snapshotted before each figure, and
   p50/p95/p99 are estimated from the deltas — so BENCH_*.json tracks
   the tail of each figure's join/query/task latencies, not just the
   whole-run means. *)
let figure_percentiles : (string * (string * (string * float) list) list) list ref = ref []

let histogram_counts () =
  Tm_obs.Obs.histograms ()
  |> List.map (fun (h : Tm_obs.Obs.histogram) ->
         (h.Tm_obs.Obs.h_name, Array.copy h.Tm_obs.Obs.h_counts))

let record_figure_percentiles fig before =
  let deltas =
    Tm_obs.Obs.histograms ()
    |> List.filter_map (fun (h : Tm_obs.Obs.histogram) ->
           let counts =
             match List.assoc_opt h.Tm_obs.Obs.h_name before with
             | Some old when Array.length old = Array.length h.Tm_obs.Obs.h_counts ->
               Array.mapi (fun i n -> n - old.(i)) h.Tm_obs.Obs.h_counts
             | Some _ | None -> Array.copy h.Tm_obs.Obs.h_counts
           in
           let quantiles =
             List.filter_map
               (fun (q, label) ->
                 Option.map
                   (fun v -> (label, v))
                   (Tm_obs.Export.quantile_of_counts ~bounds:h.Tm_obs.Obs.h_bounds ~counts q))
               [ (0.5, "p50"); (0.95, "p95"); (0.99, "p99") ]
           in
           if quantiles = [] then None else Some (h.Tm_obs.Obs.h_name, quantiles))
  in
  if deltas <> [] then figure_percentiles := (fig, deltas) :: !figure_percentiles

let figures_percentiles_json () =
  let quantile (l, v) = Tm_obs.Export.json_string l ^ ":" ^ Tm_obs.Export.json_float v in
  let histogram (name, qs) =
    Tm_obs.Export.json_string name ^ ":{" ^ String.concat "," (List.map quantile qs) ^ "}"
  in
  let figure (fig, hs) =
    Tm_obs.Export.json_string fig ^ ":{" ^ String.concat "," (List.map histogram hs) ^ "}"
  in
  (* prepended during the run, so rev_map restores figure order *)
  "{" ^ String.concat "," (List.rev_map figure !figure_percentiles) ^ "}"

let run_figure = function
  | "9" -> figure_9 ()
  | "10" -> figure_10 ()
  | "11" -> figure_11 ()
  | "12" -> figure_12 `All
  | "12a" -> figure_12 `A
  | "12b" -> figure_12 `B
  | "12c" -> figure_12 `C
  | "12d" -> figure_12 `D
  | "recursion" -> figure_recursion ()
  | "compression" -> figure_compression ()
  | "13" -> figure_13 ()
  | "ablation-inlj" -> ablation_inlj ()
  | "ablation-pc" -> ablation_prefix_compression ()
  | "ablation-update" -> ablation_update_cost ()
  | "ablation-pool" -> ablation_pool ()
  | "durability" -> figure_durability ()
  | "robustness" -> figure_robustness ()
  | "extension-joins" -> extension_joins ()
  | "extension-auto" -> extension_auto ()
  | "planner" -> figure_planner ()
  | "extension-ranges" -> extension_ranges ()
  | "parallel" -> figure_parallel ()
  | "overload" -> figure_overload ()
  | "flight" -> figure_flight ()
  | f -> failwith ("unknown figure: " ^ f)

let () =
  let spec =
    [
      ( "--figure",
        Arg.String (fun f -> figures := f :: !figures),
        "FIG run one figure (9, 10, 11, 12a-d, recursion, compression, 13)" );
      ("--runs", Arg.Set_int runs, "N timed runs per query (default 10)");
      ("--xmark-scale", Arg.Set_float xmark_scale, "F XMark scale factor (default 0.5)");
      ("--dblp-scale", Arg.Set_float dblp_scale, "F DBLP scale factor (default 0.5)");
      ("--seed", Arg.Set_int seed, "N dataset PRNG seed (default 42)");
      ( "--jobs",
        Arg.Set_int jobs,
        "N domain-pool size for the 'parallel' figure (default TWIGMATCH_JOBS or 4)" );
      ("--bechamel", Arg.Set run_bechamel, " run the Bechamel micro-suite");
      ( "--metrics-out",
        Arg.String (fun f -> metrics_out := Some f),
        "FILE record observability counters/histograms over the whole run and write them as \
         JSON to FILE" );
      ( "--gate-regret",
        Arg.Float (fun p -> gate_regret := Some p),
        "PCT exit 1 when the 'planner' figure's aggregate regret against the strategy oracle \
         exceeds PCT percent (the CI gate)" );
      ( "--gate-flight",
        Arg.Float (fun p -> gate_flight := Some p),
        "PCT exit 1 when the 'flight' figure's enabled-recorder overhead exceeds PCT percent \
         (the CI gate; the design target is 3)" );
      ( "--gate-overload",
        Arg.Set gate_overload,
        " exit 1 unless, at 2x saturation, the 'overload' figure's accepted-request p99 stays \
         within 3x the lightly loaded (0.5x) p99 and goodput holds at >= half the saturation \
         rate" );
    ]
  in
  Arg.parse spec (fun a -> failwith ("unexpected argument " ^ a)) "twig index benchmarks";
  say "twig-index benchmark harness (Chen et al., ICDE 2005 reproduction)";
  say "datasets: XMark-like scale %.2f, DBLP-like scale %.2f; %d runs per query" !xmark_scale
    !dblp_scale !runs;
  if !metrics_out <> None then Tm_obs.Obs.enable ();
  if !run_bechamel then bechamel_suite ()
  else begin
    let figs = if !figures = [] then all_figures else List.rev !figures in
    List.iter
      (fun fig ->
        if !metrics_out = None then run_figure fig
        else begin
          let before = histogram_counts () in
          run_figure fig;
          record_figure_percentiles fig before
        end)
      figs;
    say "";
    say "done. See EXPERIMENTS.md for paper-vs-measured discussion."
  end;
  (match !gate_regret with
  | None -> ()
  | Some limit -> (
    match !planner_regret with
    | None ->
      prerr_endline "bench: --gate-regret set but the 'planner' figure did not run";
      exit 1
    | Some r when r > limit ->
      Printf.eprintf "bench: planner aggregate regret %.1f%% exceeds the %.1f%% gate\n" r limit;
      exit 1
    | Some r -> progress "[bench] planner regret gate passed: %.1f%% <= %.1f%%" r limit));
  (if !gate_overload then
     match !overload_gate with
     | None ->
       prerr_endline "bench: --gate-overload set but the 'overload' figure did not run";
       exit 1
     | Some (p99, p99_limit, goodput, goodput_floor) ->
       if p99 > p99_limit then begin
         Printf.eprintf
           "bench: overload p99 gate failed: %.1f ms at 2x saturation exceeds %.1f ms (3x \
            the lightly loaded p99)\n"
           p99 p99_limit;
         exit 1
       end
       else if goodput < goodput_floor then begin
         Printf.eprintf
           "bench: overload goodput gate failed: %.0f/s at 2x saturation is below the %.0f/s \
            floor (half of saturation)\n"
           goodput goodput_floor;
         exit 1
       end
       else
         progress "[bench] overload gate passed: p99 %.1f <= %.1f ms, goodput %.0f >= %.0f/s"
           p99 p99_limit goodput goodput_floor);
  (match !gate_flight with
  | None -> ()
  | Some limit -> (
    match !flight_overhead with
    | None ->
      prerr_endline "bench: --gate-flight set but the 'flight' figure did not run";
      exit 1
    | Some o when o > limit ->
      Printf.eprintf "bench: flight-recorder overhead %.2f%% exceeds the %.2f%% gate\n" o limit;
      exit 1
    | Some o -> progress "[bench] flight overhead gate passed: %.2f%% <= %.2f%%" o limit));
  match !metrics_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc
      (Tm_obs.Export.metrics_to_json ~extra:[ ("figures", figures_percentiles_json ()) ] ());
    output_char oc '\n';
    close_out oc;
    say "observability metrics written to %s" path
