(* Tests for the observability substrate (Tm_obs) and its wiring
   through the storage and execution layers: span nesting, buffer-pool
   counter fidelity against drop_caches, EXPLAIN ANALYZE / Stats
   reconciliation, the disabled sink recording nothing, the exporters
   (Prometheus text, quantiles, Chrome trace events), the
   query-lifecycle journal, and warning routing. *)

open Twigmatch

module T = Tm_xml.Xml_tree
module Obs = Tm_obs.Obs
module Export = Tm_obs.Export
module Journal = Tm_obs.Journal

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let count_occ hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  if nn = 0 then 0 else go 0 0

(* The paper's running example (Figure 1). *)
let book_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem_text "title" "XML";
          T.elem "allauthors"
            [
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "poe" ];
              T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "doe" ];
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ];
            ];
          T.elem_text "year" "2000";
          T.elem "chapter"
            [
              T.elem_text "title" "XML";
              T.elem "section" [ T.elem_text "head" "Origins" ];
            ];
        ];
    ]

let query = "/book[year = '2000']//author[fn = 'jane']"

(* ------------------------------------------------------------------ *)
(* Span trees                                                          *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let (), tr =
    Obs.with_enabled true (fun () ->
        Obs.trace "root" (fun () ->
            Obs.with_span "a" (fun () ->
                Obs.with_span "a1" ignore;
                Obs.with_span "a2" ignore);
            Obs.with_span "b" ignore))
  in
  let tr = Option.get tr in
  check Alcotest.string "root name" "root" tr.Obs.s_name;
  check
    Alcotest.(list string)
    "children in execution order" [ "a"; "b" ]
    (List.map (fun (s : Obs.span) -> s.Obs.s_name) tr.Obs.s_children);
  let a = List.hd tr.Obs.s_children in
  check
    Alcotest.(list string)
    "grandchildren nested under a" [ "a1"; "a2" ]
    (List.map (fun (s : Obs.span) -> s.Obs.s_name) a.Obs.s_children);
  let b = List.nth tr.Obs.s_children 1 in
  check Alcotest.int "b has no children" 0 (List.length b.Obs.s_children)

let test_span_outside_trace () =
  (* with_span outside a trace is a transparent no-op *)
  Obs.with_enabled true (fun () ->
      check Alcotest.int "value passes through" 7 (Obs.with_span "orphan" (fun () -> 7));
      check Alcotest.bool "not in a trace" false (Obs.in_trace ()))

let test_query_trace_shape () =
  let db = Database.create ~strategies:[ Database.RP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  let r =
    Obs.with_enabled true (fun () -> Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig)
  in
  let tr = Option.get r.Executor.trace in
  check Alcotest.string "root span is the query" "query:RP" tr.Obs.s_name;
  (* two linear paths plus one merge join, in execution order *)
  check
    Alcotest.(list string)
    "plan children" [ "path:1"; "path:2"; "join:merge" ]
    (List.map (fun (s : Obs.span) -> s.Obs.s_name) tr.Obs.s_children);
  (* the rendering contains every operator *)
  let rendered = Export.trace_to_string tr in
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " rendered") true
        (let nh = String.length rendered and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub rendered i nn = needle || go (i + 1)) in
         go 0))
    [ "query:RP"; "path:1"; "join:merge"; "ms" ]

(* ------------------------------------------------------------------ *)
(* Buffer-pool counters vs. drop_caches                                *)
(* ------------------------------------------------------------------ *)

let test_pool_counters_cold_vs_warm () =
  let db = Database.create ~strategies:[ Database.RP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  let hits = Obs.counter "buffer_pool.hits" in
  let misses = Obs.counter "buffer_pool.misses" in
  (* the pool's own stats count from creation (sink on or off), so all
     comparisons are deltas over each run *)
  let pool () =
    let s = Tm_storage.Buffer_pool.stats db.Database.pool in
    (s.Tm_storage.Buffer_pool.logical_reads - s.Tm_storage.Buffer_pool.misses,
     s.Tm_storage.Buffer_pool.misses)
  in
  Obs.with_enabled true (fun () ->
      (* cold: every page the query touches must miss *)
      Database.drop_caches db;
      let h0 = Obs.value hits and m0 = Obs.value misses in
      let ph0, pm0 = pool () in
      ignore (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig);
      let ph1, pm1 = pool () in
      (* first touch of every page must miss (later touches of the same
         page within the run may hit) *)
      check Alcotest.bool "cold run misses at least once" true (Obs.value misses > m0);
      check Alcotest.int "cold obs misses = pool misses" (pm1 - pm0) (Obs.value misses - m0);
      check Alcotest.int "cold obs hits = pool hits" (ph1 - ph0) (Obs.value hits - h0);
      (* warm: the same query touches the same pages, now resident *)
      let h1 = Obs.value hits and m1 = Obs.value misses in
      ignore (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig);
      let ph2, pm2 = pool () in
      check Alcotest.int "warm run never misses" m1 (Obs.value misses);
      check Alcotest.bool "warm run hits at least once" true (Obs.value hits > h1);
      check Alcotest.int "warm obs hits = pool hits" (ph2 - ph1) (Obs.value hits - h1);
      check Alcotest.int "warm obs misses = pool misses" (pm2 - pm1) (Obs.value misses - m1))

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE vs. Stats                                           *)
(* ------------------------------------------------------------------ *)

let test_trace_reconciles_with_stats () =
  let db = Database.create ~strategies:[ Database.RP; Database.DP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  List.iter
    (fun s ->
      let r = Obs.with_enabled true (fun () -> Executor.run ~hint:(Tm_plan.Hint.Force s) db twig) in
      let tr = Option.get r.Executor.trace in
      check Alcotest.int
        (Database.strategy_name s ^ ": trace rows = Stats.rows_produced")
        r.Executor.stats.Tm_exec.Stats.rows_produced
        (Obs.span_count "exec.rows_produced" tr);
      check Alcotest.int
        (Database.strategy_name s ^ ": trace joins = Stats.join_steps")
        r.Executor.stats.Tm_exec.Stats.join_steps
        (Obs.span_count "exec.join_steps" tr))
    [ Database.RP; Database.DP ]

let test_explain_analyze_output () =
  let db = Database.create ~strategies:[ Database.RP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  let out = Executor.explain ~analyze:true ~hint:(Tm_plan.Hint.Force Database.RP) db twig in
  let contains needle =
    let nh = String.length out and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub out i nn = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "has analyze section" true (contains "EXPLAIN ANALYZE: 2 results");
  check Alcotest.bool "has span tree" true (contains "query:RP");
  check Alcotest.bool "has stats line" true (contains "stats:");
  (* analyze must not leave the global sink enabled *)
  check Alcotest.bool "sink restored" false (Obs.enabled ())

(* ------------------------------------------------------------------ *)
(* Disabled sink records nothing                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_sink_is_silent () =
  let db = Database.create ~strategies:[ Database.RP; Database.DP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  Obs.with_enabled true (fun () -> Obs.reset ());
  let before = Obs.with_enabled true (fun () -> Obs.counters ()) in
  Obs.with_enabled false (fun () ->
      List.iter
        (fun s ->
          let r = Executor.run ~hint:(Tm_plan.Hint.Force s) db twig in
          check Alcotest.(option reject) (Database.strategy_name s ^ ": no trace") None
            (Option.map (fun _ -> ()) r.Executor.trace))
        [ Database.RP; Database.DP ]);
  let after = Obs.with_enabled true (fun () -> Obs.counters ()) in
  check
    Alcotest.(list (pair string int))
    "no counter moved while disabled" before after;
  List.iter
    (fun (h : Obs.histogram) ->
      check Alcotest.int (h.Obs.h_name ^ " untouched") 0 h.Obs.h_count)
    (Obs.histograms ())

(* ------------------------------------------------------------------ *)
(* Prometheus exporter                                                 *)
(* ------------------------------------------------------------------ *)

let test_prometheus_name_mangling () =
  check Alcotest.string "dots become underscores" "twigmatch_buffer_pool_hits"
    (Export.prometheus_name "buffer_pool.hits");
  check Alcotest.string "arbitrary punctuation" "twigmatch_a_b_c_d"
    (Export.prometheus_name "a-b/c d")

let test_prometheus_label_escape () =
  check Alcotest.string "backslash, quote, newline" "a\\\\b\\\"c\\nd"
    (Export.prometheus_label_escape "a\\b\"c\nd");
  check Alcotest.string "clean value untouched" "plain" (Export.prometheus_label_escape "plain")

let test_prometheus_output () =
  Obs.with_enabled true (fun () ->
      Obs.reset ();
      Obs.add (Obs.counter "test.prom.counter") 5;
      (* make the derived pool-wide hit-rate gauge well-defined *)
      Obs.add (Obs.counter "buffer_pool.hits") 3;
      Obs.add (Obs.counter "buffer_pool.misses") 1;
      let h = Obs.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "test.prom.ms" in
      List.iter (Obs.observe h) [ 0.5; 1.5; 3.0; 9.0 ]);
  let out = Export.metrics_to_prometheus () in
  check Alcotest.bool "typed counter with value" true
    (contains out "# TYPE twigmatch_test_prom_counter counter\ntwigmatch_test_prom_counter 5\n");
  check Alcotest.bool "derived hit-rate gauge" true
    (contains out "# TYPE twigmatch_buffer_pool_hit_rate gauge\ntwigmatch_buffer_pool_hit_rate 0.75\n");
  (* buckets are cumulative and end at le="+Inf" = the total count *)
  check Alcotest.bool "cumulative buckets" true
    (contains out
       ("twigmatch_test_prom_ms_bucket{le=\"1\"} 1\n"
      ^ "twigmatch_test_prom_ms_bucket{le=\"2\"} 2\n"
      ^ "twigmatch_test_prom_ms_bucket{le=\"4\"} 3\n"
      ^ "twigmatch_test_prom_ms_bucket{le=\"+Inf\"} 4\n"
      ^ "twigmatch_test_prom_ms_sum 14\n" ^ "twigmatch_test_prom_ms_count 4\n"));
  (* registration order is stable, so back-to-back exports are
     byte-identical (nothing recorded in between) *)
  check Alcotest.string "stable across exports" out (Export.metrics_to_prometheus ())

(* ------------------------------------------------------------------ *)
(* Histogram quantiles                                                 *)
(* ------------------------------------------------------------------ *)

let test_quantile_estimation () =
  let bounds = [| 1.0; 2.0; 4.0 |] in
  let near label expected got =
    match got with
    | None -> Alcotest.fail (label ^ ": expected a quantile")
    | Some v -> check (Alcotest.float 1e-9) label expected v
  in
  (* all mass in the (1,2] bucket: the median interpolates to its middle *)
  near "p50 interpolates" 1.5 (Export.quantile_of_counts ~bounds ~counts:[| 0; 10; 0; 0 |] 0.5);
  (* the overflow bucket clamps to the largest finite bound *)
  near "overflow clamps" 4.0 (Export.quantile_of_counts ~bounds ~counts:[| 0; 0; 0; 5 |] 0.5);
  check Alcotest.bool "empty counts yield None" true
    (Export.quantile_of_counts ~bounds ~counts:[| 0; 0; 0; 0 |] 0.5 = None);
  (match Export.quantile_of_counts ~bounds ~counts:[| 1; 0; 0; 0 |] 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q outside [0,1] accepted")

let test_summary_labels () =
  let h = Obs.histogram ~buckets:[| 1.0; 10.0; 100.0 |] "test.summary.ms" in
  check Alcotest.(list (pair string (float 1.0))) "no observations, no summary" []
    (Export.summary h);
  Obs.with_enabled true (fun () -> List.iter (Obs.observe h) [ 0.5; 0.6; 0.7; 50.0 ]);
  check
    Alcotest.(list string)
    "p50/p95/p99 in order" [ "p50"; "p95"; "p99" ]
    (List.map fst (Export.summary h))

(* ------------------------------------------------------------------ *)
(* Chrome trace events                                                 *)
(* ------------------------------------------------------------------ *)

let test_chrome_trace_shape () =
  let db = Database.create ~strategies:[ Database.RP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  let r =
    Obs.with_enabled true (fun () -> Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig)
  in
  let tr = Option.get r.Executor.trace in
  let out = Export.trace_to_chrome tr in
  check Alcotest.bool "JSON array" true
    (String.length out > 2 && out.[0] = '[' && out.[String.length out - 1] = ']');
  let rec spans (s : Obs.span) =
    1 + List.fold_left (fun acc c -> acc + spans c) 0 s.Obs.s_children
  in
  check Alcotest.int "one complete event per span" (spans tr) (count_occ out "\"ph\":\"X\"");
  check Alcotest.bool "microsecond timestamps" true
    (contains out "\"ts\":" && contains out "\"dur\":");
  check Alcotest.bool "trace id rides in args" true
    (contains out (Printf.sprintf "\"trace\":\"%d\"" r.Executor.trace_id))

(* ------------------------------------------------------------------ *)
(* GC attribution                                                      *)
(* ------------------------------------------------------------------ *)

let test_span_gc_delta () =
  let (), tr =
    Obs.with_enabled true (fun () ->
        Obs.trace "root" (fun () ->
            Obs.with_span "alloc" (fun () ->
                ignore (Sys.opaque_identity (List.init 10_000 (fun i -> i + 1))))))
  in
  let tr = Option.get tr in
  let alloc = List.hd tr.Obs.s_children in
  match alloc.Obs.s_gc with
  | None -> Alcotest.fail "no GC delta on span"
  | Some g ->
    (* 10k 3-word cons cells: the per-domain minor counter must see them *)
    check Alcotest.bool "minor allocation attributed" true (g.Obs.g_minor_words >= 10_000.0)

(* ------------------------------------------------------------------ *)
(* Query-lifecycle journal                                             *)
(* ------------------------------------------------------------------ *)

let zero_gc = { Obs.g_minor_words = 0.0; g_major_words = 0.0; g_minor_gcs = 0; g_major_gcs = 0 }

let mk_entry ?(latency = 1.0) ?(outcome = Journal.Completed) ?(fallbacks = []) () =
  {
    Journal.j_id = Journal.next_id ();
    j_time = 0.0;
    j_query = "//synthetic";
    j_shape = "//synthetic";
    j_requested = "RP";
    j_strategy = "RP";
    j_reason = "test";
    j_fallbacks = fallbacks;
    j_via_naive = false;
    j_rows = 0;
    j_est_rows = None;
    j_replans = 0;
    j_latency_ms = latency;
    j_pool_hit_rate = None;
    j_jobs = 0;
    j_txn = 0;
    j_outcome = outcome;
    j_gc = zero_gc;
  }

(* The acceptance property: with the journal off, Executor.run leaves
   no trace in it (the recording path is a single atomic load). Forced
   off explicitly so the test also holds under TWIGMATCH_JOURNAL=N. *)
let test_journal_disabled_stays_empty () =
  let db = Database.create ~strategies:[ Database.RP; Database.DP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  Journal.with_enabled false (fun () ->
      Journal.clear ();
      check Alcotest.bool "journal off" false (Journal.enabled ());
      List.iter
        (fun s -> ignore (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig))
        [ Database.RP; Database.DP ];
      check Alcotest.int "no entries" 0 (Journal.length ());
      check Alcotest.int "entries list empty" 0 (List.length (Journal.entries ())))

let test_journal_records_completion () =
  let db = Database.create ~strategies:[ Database.RP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  Journal.with_enabled true (fun () ->
      Journal.clear ();
      let r = Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig in
      check Alcotest.int "one entry" 1 (Journal.length ());
      match Journal.entries () with
      | [ e ] ->
        check Alcotest.int "entry id is the trace id" r.Executor.trace_id e.Journal.j_id;
        check Alcotest.string "strategy" (Database.strategy_name Database.RP) e.Journal.j_strategy;
        check Alcotest.int "rows" (List.length r.Executor.ids) e.Journal.j_rows;
        check Alcotest.bool "completed" true (e.Journal.j_outcome = Journal.Completed);
        check Alcotest.bool "latency non-negative" true (e.Journal.j_latency_ms >= 0.0);
        check Alcotest.bool "not via naive" false e.Journal.j_via_naive
      | es -> Alcotest.failf "expected exactly one entry, got %d" (List.length es))

let test_journal_wraps_and_orders () =
  Journal.with_enabled true (fun () ->
      let saved = Journal.capacity () in
      (match Journal.enable ~capacity:0 () with
      | () -> Alcotest.fail "capacity 0 accepted"
      | exception Invalid_argument _ -> ());
      Journal.enable ~capacity:8 ();
      for _ = 1 to 100 do
        Journal.record (mk_entry ())
      done;
      check Alcotest.int "full ring" (Journal.capacity ()) (Journal.length ());
      check Alcotest.int "overwrites counted" (100 - Journal.capacity ()) (Journal.dropped ());
      let ids = List.map (fun e -> e.Journal.j_id) (Journal.entries ()) in
      check Alcotest.bool "entries ordered by id" true (List.sort compare ids = ids);
      Journal.enable ~capacity:saved ())

let test_journal_slow_view () =
  Journal.with_enabled true (fun () ->
      Journal.clear ();
      Journal.record (mk_entry ~latency:1.0 ());
      Journal.record (mk_entry ~latency:25.0 ());
      Journal.record (mk_entry ~latency:0.5 ~outcome:(Journal.Timed_out 50.0) ());
      Journal.record (mk_entry ~latency:12.0 ());
      let s = Journal.slow ~threshold_ms:10.0 () in
      check Alcotest.int "two slow + the timeout" 3 (List.length s);
      check Alcotest.bool "timeout qualifies despite low latency" true
        (List.exists
           (fun e -> match e.Journal.j_outcome with Journal.Timed_out _ -> true | _ -> false)
           s);
      (match s with
      | a :: b :: _ ->
        check Alcotest.bool "slowest first" true (a.Journal.j_latency_ms >= b.Journal.j_latency_ms)
      | _ -> ());
      Journal.clear ())

let test_journal_rendering () =
  let e = mk_entry ~latency:3.25 ~fallbacks:[ ("DP", "index corrupt") ] () in
  let s = Journal.entry_to_string e in
  check Alcotest.bool "query shown" true (contains s "//synthetic");
  check Alcotest.bool "losing plan narrated" true (contains s "DP");
  check Alcotest.bool "losing reason narrated" true (contains s "index corrupt");
  let j = Journal.entry_to_json e in
  check Alcotest.bool "json query field" true (contains j "\"query\":\"//synthetic\"");
  check Alcotest.string "empty journal is an empty array" "[]" (Journal.to_json [])

(* ------------------------------------------------------------------ *)
(* Warning routing                                                     *)
(* ------------------------------------------------------------------ *)
(* Registered gauges: the wal.* health mirror and the flight pair      *)
(* ------------------------------------------------------------------ *)

let fresh_dir () =
  let path = Filename.temp_file "twigobs" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let find_id doc name =
  T.fold doc (fun acc n -> if T.label_name n = name && acc = None then Some n.T.id else acc) None
  |> Option.get

let wal_gauge_names = [ "wal.log_bytes_since_checkpoint"; "wal.last_txn"; "wal.poisoned" ]

let test_wal_gauges () =
  (* with no live Durable handle the gauges read NaN: registered but
     sampling nothing, skipped by Prometheus, null in JSON *)
  let g = Export.all_gauges () in
  List.iter
    (fun name ->
      match List.assoc_opt name g with
      | None -> Alcotest.fail (name ^ " not registered")
      | Some v -> check Alcotest.bool (name ^ " reads NaN without a handle") true (Float.is_nan v))
    wal_gauge_names;
  check Alcotest.bool "NaN gauge absent from Prometheus" false
    (contains (Export.metrics_to_prometheus ()) "twigmatch_wal_last_txn");
  check Alcotest.bool "NaN gauge null in JSON" true
    (contains (Export.metrics_to_json ()) "\"wal.last_txn\":null");
  (* the most recently opened handle becomes the gauges' source *)
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let db = Database.create ~strategies:[ Database.RP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  Fun.protect ~finally:(fun () -> Durable.close d) @@ fun () ->
  let sample name = List.assoc name (Export.all_gauges ()) in
  (* a fresh log is just the WAL header *)
  let base = sample "wal.log_bytes_since_checkpoint" in
  check Alcotest.bool "fresh log: header only" true (base > 0.0 && base < 64.0);
  check (Alcotest.float 0.0) "fresh log: no transactions" 0.0 (sample "wal.last_txn");
  check (Alcotest.float 0.0) "healthy handle: not poisoned" 0.0 (sample "wal.poisoned");
  check Alcotest.bool "live gauge exported to Prometheus" true
    (contains (Export.metrics_to_prometheus ())
       "# TYPE twigmatch_wal_poisoned gauge\ntwigmatch_wal_poisoned 0\n");
  (* a committed transaction moves both the log-growth and txn gauges,
     and the gauges must agree with the handle's own wal_status *)
  let book = find_id db.Database.doc "book" in
  ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" "g"));
  let s = Durable.wal_status d in
  check (Alcotest.float 0.0) "gauge mirrors wal_status" (float_of_int s.Durable.log_bytes)
    (sample "wal.log_bytes_since_checkpoint");
  check Alcotest.bool "log grew past the header" true (float_of_int s.Durable.log_bytes > base);
  check (Alcotest.float 0.0) "one transaction committed" 1.0 (sample "wal.last_txn");
  (* checkpoint truncates the log back to its header *)
  Durable.checkpoint d;
  check (Alcotest.float 0.0) "checkpoint resets log growth" base
    (sample "wal.log_bytes_since_checkpoint")

let test_wal_gauges_deregister () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let db = Database.create ~strategies:[ Database.RP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  check Alcotest.bool "live handle: gauge is a number" false
    (Float.is_nan (List.assoc "wal.last_txn" (Export.all_gauges ())));
  Durable.close d;
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " NaN again after close") true
        (Float.is_nan (List.assoc name (Export.all_gauges ()))))
    wal_gauge_names

let test_flight_gauges () =
  let module Flight = Tm_obs.Flight in
  Flight.with_enabled false (fun () ->
      check (Alcotest.float 0.0) "recorder off" 0.0
        (List.assoc "flight.enabled" (Export.all_gauges ())));
  Flight.with_enabled true (fun () ->
      Flight.clear ();
      check (Alcotest.float 0.0) "recorder on" 1.0
        (List.assoc "flight.enabled" (Export.all_gauges ()));
      let before = List.assoc "flight.events" (Export.all_gauges ()) in
      Flight.emit Flight.Wal_fsync 0 0 "";
      Flight.emit Flight.Wal_fsync 0 0 "";
      let after = List.assoc "flight.events" (Export.all_gauges ()) in
      check (Alcotest.float 0.0) "event gauge counts emits" 2.0 (after -. before);
      check Alcotest.bool "exported to Prometheus" true
        (contains (Export.metrics_to_prometheus ())
           "# TYPE twigmatch_flight_enabled gauge\ntwigmatch_flight_enabled 1\n"));
  Flight.clear ()

(* ------------------------------------------------------------------ *)

let test_warn_routing_from_fault_env () =
  let captured = ref [] in
  Obs.set_warn_handler (Some (fun w -> captured := w :: !captured));
  Fun.protect
    ~finally:(fun () ->
      Obs.set_warn_handler None;
      Unix.putenv Tm_fault.Fault.env_var "";
      Tm_fault.Fault.install_env ())
    (fun () ->
      Unix.putenv Tm_fault.Fault.env_var "definitely not a failpoint spec";
      Tm_fault.Fault.install_env ());
  match !captured with
  | [] -> Alcotest.fail "malformed failpoint spec produced no warning"
  | w :: _ ->
    check Alcotest.string "site" "fault.env" w.Obs.w_site;
    check Alcotest.bool "names the env var" true (contains w.Obs.w_msg Tm_fault.Fault.env_var);
    check Alcotest.bool "ring retains it" true
      (List.exists (fun (r : Obs.warning) -> r.Obs.w_site = "fault.env") (Obs.warnings ()))

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "outside trace" `Quick test_span_outside_trace;
          Alcotest.test_case "query trace shape" `Quick test_query_trace_shape;
        ] );
      ( "counters",
        [ Alcotest.test_case "pool cold/warm vs drop_caches" `Quick test_pool_counters_cold_vs_warm ]
      );
      ( "analyze",
        [
          Alcotest.test_case "trace reconciles with Stats" `Quick test_trace_reconciles_with_stats;
          Alcotest.test_case "explain ~analyze output" `Quick test_explain_analyze_output;
        ] );
      ( "disabled",
        [ Alcotest.test_case "sink off records nothing" `Quick test_disabled_sink_is_silent ] );
      ( "prometheus",
        [
          Alcotest.test_case "name mangling" `Quick test_prometheus_name_mangling;
          Alcotest.test_case "label escaping" `Quick test_prometheus_label_escape;
          Alcotest.test_case "text exposition" `Quick test_prometheus_output;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "estimation" `Quick test_quantile_estimation;
          Alcotest.test_case "summary labels" `Quick test_summary_labels;
        ] );
      ( "chrome",
        [ Alcotest.test_case "trace event shape" `Quick test_chrome_trace_shape ] );
      ("gc", [ Alcotest.test_case "span allocation delta" `Quick test_span_gc_delta ]);
      ( "journal",
        [
          Alcotest.test_case "disabled stays empty" `Quick test_journal_disabled_stays_empty;
          Alcotest.test_case "records completions" `Quick test_journal_records_completion;
          Alcotest.test_case "ring wraps in id order" `Quick test_journal_wraps_and_orders;
          Alcotest.test_case "slow view" `Quick test_journal_slow_view;
          Alcotest.test_case "rendering" `Quick test_journal_rendering;
        ] );
      ( "gauges",
        [
          Alcotest.test_case "wal health mirror" `Quick test_wal_gauges;
          Alcotest.test_case "deregister on close" `Quick test_wal_gauges_deregister;
          Alcotest.test_case "flight pair" `Quick test_flight_gauges;
        ] );
      ( "warnings",
        [ Alcotest.test_case "fault env routes through warn" `Quick test_warn_routing_from_fault_env ]
      );
    ]
