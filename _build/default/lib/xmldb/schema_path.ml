(** Schema paths: sequences of tag ids (paper Section 3.1).

    A schema path is the structural part of a data path — tags and
    attribute names only, no values. Encoded form is the concatenation
    of 2-byte designators; because designators are fixed width, the
    byte-wise reverse used by ROOTPATHS/DATAPATHS is a unit-wise reverse
    here, and byte-prefix matching on the encoded form is exactly
    unit-prefix matching on the path. *)

type t = int array (* tag ids, outermost first *)

let empty : t = [||]
let length (p : t) = Array.length p
let of_list = Array.of_list
let to_list = Array.to_list

let append (p : t) tag : t = Array.append p [| tag |]

let equal (a : t) (b : t) = a = b

(** Tags from the leaf end upward: [reverse [|b;u;a;f|] = [|f;a;u;b|]]. *)
let reverse (p : t) : t =
  let n = Array.length p in
  Array.init n (fun i -> p.(n - 1 - i))

(** [suffix p k] is the last [k] tags of [p]. *)
let suffix (p : t) k : t =
  let n = Array.length p in
  if k > n then invalid_arg "Schema_path.suffix";
  Array.sub p (n - k) k

(** [drop_last p k] removes the last [k] tags. *)
let drop_last (p : t) k : t =
  let n = Array.length p in
  if k > n then invalid_arg "Schema_path.drop_last";
  Array.sub p 0 (n - k)

(** [has_suffix p s] holds when [p] ends with the tag sequence [s]. *)
let has_suffix (p : t) (s : t) =
  let np = Array.length p and ns = Array.length s in
  np >= ns
  &&
  let rec go i = i >= ns || (p.(np - ns + i) = s.(i) && go (i + 1)) in
  go 0

let has_prefix (p : t) (s : t) =
  let np = Array.length p and ns = Array.length s in
  np >= ns
  &&
  let rec go i = i >= ns || (p.(i) = s.(i) && go (i + 1)) in
  go 0

(** Encoded designator string (2 bytes per tag, order-preserving). *)
let encode (p : t) =
  let buf = Buffer.create (2 * Array.length p) in
  Array.iter (fun tag -> Buffer.add_string buf (Dictionary.designator tag)) p;
  Buffer.contents buf

let encode_reversed (p : t) = encode (reverse p)

let decode s : t =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Schema_path.decode: odd length";
  Array.init (n / 2) (fun i -> Dictionary.of_designator s (2 * i))

let decode_reversed s = reverse (decode s)

(** Human-readable form, e.g. ["/site/regions/item"]. *)
let to_string dict (p : t) =
  if Array.length p = 0 then "/"
  else
    Array.to_list p |> List.map (Dictionary.name dict) |> String.concat "/" |> ( ^ ) "/"

let compare (a : t) (b : t) = Stdlib.compare (encode a) (encode b)
