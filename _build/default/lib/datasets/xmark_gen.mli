(** Deterministic XMark-like auction-site dataset generator, with value
    frequencies engineered to reproduce the paper's selectivity classes
    (see the implementation header for the full inventory). A
    (seed, scale) pair identifies a dataset exactly. *)

type params = { seed : int; scale : float (** 1.0 ~ 55k element nodes *) }

val default : params
val generate : params -> Tm_xml.Xml_tree.document
