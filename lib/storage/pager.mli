(** Simulated disk: a growable array of fixed-size pages with physical
    I/O accounting and per-page CRC32 checksums. Structured access
    should go through {!Buffer_pool}. A single internal mutex makes
    every operation domain-safe.

    Failpoint sites (see {!Tm_fault.Fault}): [pager.read],
    [pager.write], [pager.alloc]. Hooks fire before the physical
    counters move, so failed calls are not counted transfers. *)

exception Corrupt_page of { page : int; detail : string }
(** Raised when a page image fails its checksum on read, or when a read
    or write names an unallocated page id. *)

type t

val default_page_size : int
(** 8 KiB. *)

val create : ?page_size:int -> ?checksums:bool -> unit -> t
(** [checksums] (default [true]) controls per-page CRC32 maintenance
    and verification; disable it only to measure its overhead. *)

val page_size : t -> int

val checksums : t -> bool
(** Whether this pager maintains per-page checksums. *)

val page_count : t -> int

val size_bytes : t -> int
(** Total bytes occupied on the simulated disk. *)

val alloc : t -> int
(** Allocate a fresh zeroed page; returns its id. *)

val read : t -> int -> bytes
(** Physical read (counted on success); returns a copy of the page
    image, verified against the stored checksum.
    @raise Corrupt_page on an unallocated page id or checksum mismatch.
    @raise Tm_fault.Fault.Io_error when the [pager.read] failpoint
    fires with the [Fail] action. *)

val write : t -> int -> bytes -> unit
(** Physical write (counted); pads or truncates to the page size and
    records the checksum of the intended image (so an injected torn
    write is detected on the next read).
    @raise Corrupt_page on an unallocated page id. *)

val verify_page : t -> int -> bool
(** Offline integrity check: does the stored image match its checksum?
    Bypasses failpoints and I/O accounting. [true] when checksums are
    disabled; [false] for unallocated ids. *)

val unsafe_flip_bit : t -> page:int -> bit:int -> unit
(** Test hook: flip one bit of the stored page image in place, leaving
    the sidecar checksum stale — the corruption reads and fsck must
    detect. *)

val unsafe_flip_crc_bit : t -> page:int -> bit:int -> unit
(** Test hook: flip one bit of the stored checksum itself. *)

val reset_stats : t -> unit
val physical_reads : t -> int
val physical_writes : t -> int

(** {1 Epochs, snapshot reads and page-level transactions}

    A single writer may bracket a batch of page writes in a
    transaction: {!begin_txn} reserves epoch [e+1]; every write by the
    writer domain pushes the committed pre-image onto the page's
    version chain and tags the page with the reserved epoch;
    {!commit_txn} publishes the epoch in one atomic step. Readers that
    registered a {!pin} at epoch [e] keep reading the pre-images via
    {!read_at}, so in-flight transactions are invisible to them. *)

val current_epoch : t -> int
(** The last published commit epoch (0 for a fresh pager). *)

val snapshot_active : t -> bool
(** Lock-free hint: [true] iff a transaction is active or some page
    has a non-empty version chain. When [false], {!epoch_of_page}
    checks can be skipped entirely — the read fast path. *)

val epoch_of_page : t -> int -> int
(** Epoch that wrote the current image of the page.
    @raise Corrupt_page on an unallocated page id. *)

val read_at : t -> epoch:int -> int -> bytes
(** Snapshot read: the newest image whose epoch is [<= epoch]. Counted
    and failpointed like {!read}. The caller must hold a {!pin} at
    that epoch or the needed version may have been pruned.
    @raise Corrupt_page if no version covers the requested epoch. *)

val pin : t -> int
(** Register a snapshot pin at the current published epoch and return
    it. Keeps version chains reachable from that epoch alive. *)

val unpin : t -> int -> unit
(** Release one pin at the given epoch; unreachable versions are
    pruned (all of them, once no pins remain). *)

val clear_versions : t -> unit
(** Drop every version chain (checkpoint/recovery quiescence). With
    pins still registered this degrades to a prune. *)

val in_txn : t -> bool
val in_txn_writer : t -> bool
(** [in_txn_writer t] is [true] iff a transaction is active {e and}
    the calling domain is its writer. *)

val begin_txn : t -> int
(** Start a transaction owned by the calling domain; returns the
    reserved epoch.
    @raise Invalid_argument if a transaction is already active. *)

val add_participant : t -> (committed:bool -> unit) -> unit
(** Register a commit/abort callback on the active transaction; runs
    outside the pager lock after the epoch flips (commit) or the
    pre-images are restored (abort).
    @raise Invalid_argument outside a transaction or from a non-writer
    domain. *)

val txn_clean : t -> bool
(** [true] while the active transaction has written no page — aborting
    at this point fully restores state. Registered participants do not
    disqualify: their staging is dropped by the abort, and read-only
    probes may register one (writer-private decode caches). *)

val txn_dirty : t -> (int * bytes * int) list
(** Pages written by the active transaction as
    [(page, image, crc32 of image)], sorted by page id — the redo
    records to log before commit. *)

val commit_txn : t -> unit
(** Publish the reserved epoch, prune version chains against live
    pins, then run participants with [~committed:true]. *)

val abort_txn : t -> int list
(** Restore every touched page to its pre-transaction image (pages
    allocated inside the transaction are re-zeroed), run participants
    with [~committed:false], and return the touched page ids so caches
    above can invalidate. *)

val image_crc : t -> int -> int
(** CRC32 of the current page image (computed from the bytes, sidecar
    ignored) — the recovery cross-check against logged page CRCs. *)
