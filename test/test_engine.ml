(* End-to-end integration tests: every indexing strategy must return
   exactly the naive matcher's answer, for every workload query, on
   both generated datasets, including the recursive ([//]) variants.
   This is the repository's main correctness gate. *)

open Twigmatch

module T = Tm_xml.Xml_tree

let strategies = Database.all_strategies

module Astring_contains = struct
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
end

(* The paper's running example (Figure 1). *)
let book_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem_text "title" "XML";
          T.elem "allauthors"
            [
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "poe" ];
              T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "doe" ];
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ];
            ];
          T.elem_text "year" "2000";
          T.elem "chapter"
            [
              T.elem_text "title" "XML";
              T.elem "section" [ T.elem_text "head" "Origins" ];
            ];
        ];
    ]

let check_all_strategies db doc xpath =
  let twig = Tm_query.Xpath_parser.parse xpath in
  let expected = Tm_query.Naive.query doc twig in
  List.iter
    (fun s ->
      let got = (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids in
      Alcotest.(check (list int))
        (Printf.sprintf "%s on %s" (Database.strategy_name s) xpath)
        expected got)
    strategies

let test_book_example () =
  let doc = book_doc () in
  let db = Database.create doc in
  List.iter (check_all_strategies db doc)
    [
      "/book";
      "/book/title";
      "/book/title[. = 'XML']";
      "//author";
      "//author[fn = 'jane']";
      "//author[fn = 'jane'][ln = 'doe']";
      "/book[title = 'XML']//author[fn = 'jane'][ln = 'doe']";
      "//title[. = 'XML']";
      "/book//title[. = 'XML']";
      "/book/chapter/section/head";
      "//section[head = 'Origins']";
      "/book[year = '2000']/allauthors/author[fn = 'john']";
      "/book[year = '1999']/allauthors/author";
      "//missing_tag";
      "//author[fn = 'nobody']";
    ]

let test_wildcards () =
  let doc = book_doc () in
  let db = Database.create doc in
  List.iter (check_all_strategies db doc)
    [
      "/book/*";
      "//*[fn = 'jane']";
      "/book/*/author";
      "/book/*/author[ln = 'doe']";
      "//author/*[. = 'jane']";
      "/*/allauthors";
      "//*[. = 'XML']";
      "/book[*/author/fn = 'john']/title";
      "//*";
      "/book//*[head = 'Origins']";
    ]

let test_ranges () =
  let doc = book_doc () in
  let db = Database.create doc in
  List.iter (check_all_strategies db doc)
    [
      "/book/allauthors/author/fn[. >= 'jane']";
      "/book/allauthors/author/fn[. > 'jane']";
      "//fn[. < 'john']";
      "//fn[. <= 'jane']";
      "//author[fn >= 'j'][fn < 'k']";
      "//author[ln >= 'd'][ln <= 'e']";
      "/book[year >= '1990']//author[fn = 'jane']";
      "//fn[. >= 'a'][. <= 'zzz']";
      "//fn[. >= 'zzz']";
      "//*[. >= 'jane'][. <= 'jane']";
    ]

(* Figure 1(c): the paper's example twig; author ids under the book. *)
let test_paper_twig_result () =
  let doc = book_doc () in
  let db = Database.create doc in
  let twig = Tm_query.Xpath_parser.parse "/book[title = 'XML']//author[fn = 'jane'][ln = 'doe']" in
  let expected = Tm_query.Naive.query doc twig in
  Alcotest.(check int) "exactly one matching author" 1 (List.length expected);
  List.iter
    (fun s ->
      Alcotest.(check (list int))
        (Database.strategy_name s) expected
        (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids)
    strategies

let xmark_doc = lazy (Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 11; scale = 0.05 })
let dblp_doc = lazy (Tm_datasets.Dblp_gen.generate { Tm_datasets.Dblp_gen.seed = 11; scale = 0.02 })
let xmark_db = lazy (Database.create (Lazy.force xmark_doc))
let dblp_db = lazy (Database.create (Lazy.force dblp_doc))

let doc_and_db = function
  | Tm_datasets.Workload.Xmark -> (Lazy.force xmark_doc, Lazy.force xmark_db)
  | Tm_datasets.Workload.Dblp -> (Lazy.force dblp_doc, Lazy.force dblp_db)

let test_workload_query (q : Tm_datasets.Workload.query) () =
  let doc, db = doc_and_db q.Tm_datasets.Workload.dataset in
  check_all_strategies db doc q.Tm_datasets.Workload.xpath

let test_recursive_variant (q : Tm_datasets.Workload.query) () =
  let doc, db = doc_and_db q.Tm_datasets.Workload.dataset in
  let rq = Tm_datasets.Workload.recursive_variant q in
  check_all_strategies db doc rq.Tm_datasets.Workload.xpath;
  (* Sanity: the recursive variant returns the same answer as the
     original (the leading element is a document root). *)
  let twig = Tm_datasets.Workload.parse q in
  let rtwig = Tm_datasets.Workload.parse rq in
  Alcotest.(check (list int))
    (q.Tm_datasets.Workload.name ^ " recursive-equals-plain")
    (Tm_query.Naive.query doc twig)
    (Tm_query.Naive.query doc rtwig)

let test_optimizer_choices () =
  (* a larger dataset so the selectivity classes are unambiguous *)
  let doc = Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 42; scale = 0.25 } in
  let db = Database.create ~strategies:Database.[ RP; DP ] doc in
  let choice name =
    fst (Executor.choose_plan db (Tm_datasets.Workload.parse (Tm_datasets.Workload.find name)))
  in
  (* single path -> RP *)
  Alcotest.(check string) "Q2x" "RP" (Database.strategy_name (choice "Q2x"));
  (* one rare branch + big trunk -> INLJ *)
  Alcotest.(check string) "Q10x" "DP" (Database.strategy_name (choice "Q10x"));
  Alcotest.(check string) "Q12x" "DP" (Database.strategy_name (choice "Q12x"));
  (* equally (un)selective branches -> merge join; the paper's
     Figure 12(a)/(c) observation that INLJ cannot be exploited there.
     (Q9x itself is borderline - its cheapest branch is several times
     smaller than the others - so we assert the clear-cut case.) *)
  let equal_branches =
    Tm_query.Xpath_parser.parse
      "/site[people/person/profile/@income = '9876.00'][people/person/profile/education = 'College']"
  in
  Alcotest.(check string) "equal branches" "RP"
    (Database.strategy_name (fst (Executor.choose_plan db equal_branches)))

let test_run_auto_correct () =
  let doc, db = doc_and_db Tm_datasets.Workload.Xmark in
  List.iter
    (fun name ->
      let twig = Tm_datasets.Workload.parse (Tm_datasets.Workload.find name) in
      let r, _, _ = Executor.run_auto db twig in
      Alcotest.(check (list int)) ("auto " ^ name) (Tm_query.Naive.query doc twig) r.Executor.ids)
    [ "Q2x"; "Q5x"; "Q9x"; "Q10x"; "Q12x"; "Q14x" ]

let test_explain () =
  let _, db = doc_and_db Tm_datasets.Workload.Xmark in
  let twig = Tm_datasets.Workload.parse (Tm_datasets.Workload.find "Q10x") in
  let text = Executor.explain ~hint:(Tm_plan.Hint.Force Database.DP) db twig in
  List.iter
    (fun needle ->
      if not (Astring_contains.contains text needle) then
        Alcotest.failf "explain output missing %S:\n%s" needle text)
    [ "strategy: DP"; "path 1"; "est." ]

let test_tiny_buffer_pool () =
  (* correctness must survive heavy page eviction: build and query with
     a pool of 8 frames (64 KiB) — every index build and scan thrashes *)
  let doc = Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 11; scale = 0.03 } in
  let db = Database.create ~pool_capacity:8 doc in
  List.iter
    (fun xpath ->
      let twig = Tm_query.Xpath_parser.parse xpath in
      let expected = Tm_query.Naive.query doc twig in
      List.iter
        (fun s ->
          Alcotest.(check (list int))
            (Printf.sprintf "tiny pool: %s under %s" xpath (Database.strategy_name s))
            expected
            (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids)
        strategies)
    [
      "/site/regions/namerica/item/quantity[. = '1']";
      "//item[quantity = '2'][location = 'United States']";
      "/site/open_auctions/open_auction[annotation/author/@person = 'person22082']/time";
    ];
  (* evictions actually happened *)
  let s = Tm_storage.Buffer_pool.stats db.Database.pool in
  if s.Tm_storage.Buffer_pool.evictions = 0 then Alcotest.fail "expected evictions"

let test_results_nonempty () =
  (* Guard against vacuous green tests: the headline queries must
     actually select something in the scaled datasets. *)
  let doc, _ = doc_and_db Tm_datasets.Workload.Xmark in
  List.iter
    (fun name ->
      let q = Tm_datasets.Workload.find name in
      let n = List.length (Tm_query.Naive.query doc (Tm_datasets.Workload.parse q)) in
      if n = 0 then Alcotest.failf "%s returned no results on the test dataset" name)
    [ "Q1x"; "Q3x"; "Q8x"; "Q10x"; "Q14x" ]

let workload_cases =
  List.map
    (fun (q : Tm_datasets.Workload.query) ->
      Alcotest.test_case q.Tm_datasets.Workload.name `Slow (test_workload_query q))
    Tm_datasets.Workload.all

let recursive_cases =
  List.map
    (fun (q : Tm_datasets.Workload.query) ->
      Alcotest.test_case (q.Tm_datasets.Workload.name ^ "r") `Slow (test_recursive_variant q))
    (List.filter
       (fun (q : Tm_datasets.Workload.query) ->
         (* leading-// variants of the branch-sweep queries, Section 5.2.4 *)
         List.mem q.Tm_datasets.Workload.name [ "Q4x"; "Q5x"; "Q6x"; "Q7x"; "Q8x"; "Q9x" ])
       Tm_datasets.Workload.all)

let () =
  Alcotest.run "engine"
    [
      ( "paper-example",
        [
          Alcotest.test_case "book twig queries, all strategies" `Quick test_book_example;
          Alcotest.test_case "wildcard steps, all strategies" `Quick test_wildcards;
          Alcotest.test_case "range predicates, all strategies" `Quick test_ranges;
          Alcotest.test_case "figure 1(c) twig" `Quick test_paper_twig_result;
        ] );
      ("workload", workload_cases);
      ("recursive", recursive_cases);
      ( "optimizer",
        [
          Alcotest.test_case "choose_plan picks the paper's winners" `Slow test_optimizer_choices;
          Alcotest.test_case "run_auto matches oracle" `Slow test_run_auto_correct;
          Alcotest.test_case "explain" `Slow test_explain;
        ] );
      ( "sanity",
        [
          Alcotest.test_case "headline results nonempty" `Quick test_results_nonempty;
          Alcotest.test_case "tiny buffer pool (eviction stress)" `Slow test_tiny_buffer_pool;
        ] );
    ]
