(** In-memory catalog of the distinct rooted schema paths: the
    DataGuide's path set, ASR/JI's relation-per-path inventory, and the
    expansion table for [//] patterns. *)

type entry = {
  path : Schema_path.t;
  path_id : int;  (** dense id, used by Section 4.2 schema compression *)
  mutable instance_count : int;
  mutable value_count : int;
}

type t

val create : unit -> t
val record : t -> Shred.node_info -> unit

val unrecord : t -> Shred.node_info -> unit
(** Reverse of {!record}; entries survive at zero instances so path ids
    stay stable. *)

val build : Dictionary.t -> Tm_xml.Xml_tree.document -> t

val path_count : t -> int
(** Distinct rooted schema paths — the paper's "902 / 235". *)

val entries : t -> entry list
(** In [path_id] order. *)

val find : t -> Schema_path.t -> entry option

val paths_with_suffix : t -> Schema_path.t -> entry list
(** Rooted paths ending with the given tags — the structures a
    [//]-headed pattern must visit (Figure 13's cost driver). *)

val paths_with_prefix : t -> Schema_path.t -> entry list
