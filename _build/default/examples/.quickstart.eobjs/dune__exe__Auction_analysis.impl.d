examples/auction_analysis.ml: Array Database Executor Int64 List Monotonic_clock Printf Sys Tm_datasets Tm_exec Tm_query Tm_xml Twigmatch
