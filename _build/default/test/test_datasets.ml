(* Tests for the dataset generators and the workload: determinism,
   planted special values, and the selectivity classes the paper's
   experiments depend on. *)

module T = Tm_xml.Xml_tree
module X = Tm_datasets.Xmark_gen
module D = Tm_datasets.Dblp_gen
module W = Tm_datasets.Workload

let check = Alcotest.check

let xmark = lazy (X.generate { X.seed = 5; scale = 0.2 })
let dblp = lazy (D.generate { D.seed = 5; scale = 0.05 })

(* count nodes with tag [tag] and leaf value [v] *)
let count_value doc tag v =
  T.fold doc
    (fun acc n ->
      if (not (T.is_value n)) && T.label_name n = tag && T.leaf_value n = Some v then acc + 1
      else acc)
    0

let test_xmark_deterministic () =
  let a = X.generate { X.seed = 5; scale = 0.05 } in
  let b = X.generate { X.seed = 5; scale = 0.05 } in
  check Alcotest.string "same document" (T.to_string a) (T.to_string b);
  let c = X.generate { X.seed = 6; scale = 0.05 } in
  if T.to_string a = T.to_string c then Alcotest.fail "different seeds produced identical data"

let test_xmark_special_values () =
  let doc = Lazy.force xmark in
  check Alcotest.int "one quantity=5" 1 (count_value doc "quantity" "5");
  check Alcotest.int "one unique income" 1 (count_value doc "income" "46814.17");
  check Alcotest.int "one Hagen Artosi" 1 (count_value doc "name" "Hagen Artosi");
  check Alcotest.int "three special annotations" 3 (count_value doc "person" "person22082")

let test_xmark_selectivity_classes () =
  let doc = Lazy.force xmark in
  let q v = count_value doc "quantity" v in
  if not (q "5" < q "2" && q "2" < q "1") then
    Alcotest.failf "quantity classes broken: 5->%d 2->%d 1->%d" (q "5") (q "2") (q "1");
  let inc v = count_value doc "increase" v in
  if not (inc "75.00" * 5 < inc "3.00") then
    Alcotest.failf "increase classes broken: 75.00->%d 3.00->%d" (inc "75.00") (inc "3.00");
  let income v = count_value doc "income" v in
  if not (income "46814.17" * 10 < income "9876.00") then
    Alcotest.failf "income classes broken: %d vs %d" (income "46814.17") (income "9876.00")

let test_xmark_six_item_paths () =
  (* Figure 13 setup: '//item' must match six distinct schema paths *)
  let doc = Lazy.force xmark in
  let dict = Tm_xmldb.Dictionary.create () in
  let catalog = Tm_xmldb.Schema_catalog.build dict doc in
  let item = Option.get (Tm_xmldb.Dictionary.find dict "item") in
  let matching =
    Tm_xmldb.Schema_catalog.paths_with_suffix catalog (Tm_xmldb.Schema_path.of_list [ item ])
  in
  check Alcotest.int "six //item paths" 6 (List.length matching)

let test_xmark_scaling () =
  let small = X.generate { X.seed = 5; scale = 0.05 } in
  let large = X.generate { X.seed = 5; scale = 0.2 } in
  if T.element_count large <= T.element_count small then
    Alcotest.fail "scale factor does not grow the document"

let test_dblp_deterministic () =
  let a = D.generate { D.seed = 9; scale = 0.02 } in
  let b = D.generate { D.seed = 9; scale = 0.02 } in
  check Alcotest.string "same document" (T.to_string a) (T.to_string b)

let test_dblp_shape () =
  let doc = Lazy.force dblp in
  (* forest of records, shallow *)
  if Array.length doc.T.roots < 100 then Alcotest.fail "too few records";
  if T.depth doc > 5 then Alcotest.failf "DBLP should be shallow, depth=%d" (T.depth doc);
  check Alcotest.int "exactly one 1950" 1 (count_value doc "year" "1950");
  let y v = count_value doc "year" v in
  if not (y "1950" < y "1979" && y "1979" < y "1998") then
    Alcotest.failf "year classes broken: %d %d %d" (y "1950") (y "1979") (y "1998")

let test_dblp_record_variety () =
  let doc = Lazy.force dblp in
  let kinds =
    Array.to_list doc.T.roots |> List.map T.label_name |> List.sort_uniq compare
  in
  if List.length kinds < 4 then
    Alcotest.failf "expected several record types, got %s" (String.concat "," kinds);
  check Alcotest.bool "inproceedings dominate" true
    (Array.length doc.T.roots * 3 / 4
    <= (Array.to_list doc.T.roots |> List.filter (fun r -> T.label_name r = "inproceedings") |> List.length))

let test_workload_lookup () =
  check Alcotest.int "20 queries" 20 (List.length W.all);
  let q = W.find "Q12x" in
  check Alcotest.int "branches" 2 q.W.branches;
  check Alcotest.bool "xmark" true (q.W.dataset = W.Xmark);
  (match W.find "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  let r = W.recursive_variant q in
  check Alcotest.string "recursive name" "Q12xr" r.W.name;
  check Alcotest.bool "leading //" true (String.length r.W.xpath > 1 && String.sub r.W.xpath 0 2 = "//")

let test_workload_queries_have_results () =
  let xdoc = Lazy.force xmark and ddoc = Lazy.force dblp in
  List.iter
    (fun (q : W.query) ->
      let doc = match q.W.dataset with W.Xmark -> xdoc | W.Dblp -> ddoc in
      let n = List.length (Tm_query.Naive.query doc (W.parse q)) in
      if n = 0 then Alcotest.failf "%s has no results at test scale" q.W.name)
    W.all

let suite =
  [
    ( "xmark",
      [
        Alcotest.test_case "deterministic" `Quick test_xmark_deterministic;
        Alcotest.test_case "planted special values" `Quick test_xmark_special_values;
        Alcotest.test_case "selectivity classes" `Quick test_xmark_selectivity_classes;
        Alcotest.test_case "six //item paths" `Quick test_xmark_six_item_paths;
        Alcotest.test_case "scale grows data" `Quick test_xmark_scaling;
      ] );
    ( "dblp",
      [
        Alcotest.test_case "deterministic" `Quick test_dblp_deterministic;
        Alcotest.test_case "shape and year classes" `Quick test_dblp_shape;
        Alcotest.test_case "record variety" `Quick test_dblp_record_variety;
      ] );
    ( "workload",
      [
        Alcotest.test_case "lookup and variants" `Quick test_workload_lookup;
        Alcotest.test_case "all queries nonempty" `Slow test_workload_queries_have_results;
      ] );
  ]

let () = Alcotest.run "tm_datasets" suite
