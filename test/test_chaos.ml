(* Chaos suite for the serving layer: four client domains drive >= 1000
   requests through a live loopback server while failpoints fire on the
   storage read path ([pager.read]), the accept edge ([serve.accept])
   and the response write ([serve.write]).

   The property under test is the accounting invariant: every accepted
   connection ends in exactly one of [responses] (a full response was
   written — 2xx/4xx/5xx sheds included), [write_failures] (the
   response was lost to an injected write fault — counted and logged),
   or [accept_faults] (the connection died at the accept edge — counted
   and logged). Nothing is silently dropped. The client side
   cross-checks: every connection either yielded a complete response or
   observably died; none hung.

   The suite ends with a graceful drain under the same faults: drain
   must finish all in-flight work and report [Drained]. *)

open Twigmatch
module T = Tm_xml.Xml_tree
module Server = Tm_serve.Server
module Fault = Tm_fault.Fault

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let book_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem_text "title" "XML";
          T.elem "allauthors"
            [
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "poe" ];
              T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "doe" ];
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ];
            ];
          T.elem_text "year" "2000";
        ];
    ]

let mk_db () = Database.create ~strategies:[ Database.RP; Database.DP ] (book_doc ())

(* One full client exchange. Distinguishes the three observable ends of
   a connection: a complete HTTP response, a connection that died
   without one (accept fault / write fault — the server logs those), or
   a refused connect. *)
type exchange = Response of string | Died | Refused

let exchange port target =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      match Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
      | exception Unix.Unix_error (_, _, _) -> Refused
      | () -> (
        let req =
          Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
            target
        in
        match Unix.write_substring sock req 0 (String.length req) with
        | exception Unix.Unix_error (_, _, _) -> Died
        | _ -> (
          let buf = Buffer.create 512 in
          let chunk = Bytes.create 4096 in
          let rec loop () =
            match Unix.read sock chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              loop ()
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
          in
          loop ();
          match Buffer.contents buf with
          | "" -> Died
          | body when contains body "HTTP/1.1 " -> Response body
          | _ -> Died)))

let targets =
  [|
    "/query?q=%2Fbook%2F%2Fauthor";
    "/query?q=%2Fbook%2Fallauthors%2Fauthor%2Ffn";
    "/healthz";
    "/metrics";
    "/stats";
  |]

let quiesce t =
  let rec go n =
    let s = Server.stats t in
    if s.Server.in_flight = 0 && s.Server.queued = 0 then ()
    else if n = 0 then Alcotest.fail "server never quiesced after the client storm"
    else begin
      Unix.sleepf 0.02;
      go (n - 1)
    end
  in
  go 500

let test_chaos_no_silent_drops () =
  (* the storm is noisy by design; keep the warning ring but mute stderr *)
  Tm_obs.Obs.set_warn_handler (Some (fun _ -> ()));
  let db = mk_db () in
  let config =
    {
      Server.default_config with
      Server.max_in_flight = 4;
      max_queue = 8;
      request_timeout_ms = 5_000.0;
      read_timeout_ms = 2_000.0;
      drain_deadline_ms = 10_000.0;
    }
  in
  let t = Server.create ~port:0 ~config db in
  Tm_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  let d = Domain.spawn (fun () -> Server.run ~pool t) in
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Tm_obs.Obs.set_warn_handler None;
      Server.stop t)
    (fun () ->
      Fault.inject ~site:"pager.read" (Fault.Prob 0.01);
      Fault.inject ~site:"serve.accept" (Fault.Prob 0.02);
      Fault.inject ~site:"serve.write" (Fault.Prob 0.02);
      let per_client = 260 in
      let clients = 4 in
      let port = Server.port t in
      let domains =
        List.init clients (fun ci ->
            Domain.spawn (fun () ->
                let responses = ref 0 and died = ref 0 and refused = ref 0 in
                for i = 1 to per_client do
                  match exchange port targets.((ci + i) mod Array.length targets) with
                  | Response _ -> incr responses
                  | Died -> incr died
                  | Refused -> incr refused
                done;
                (!responses, !died, !refused)))
      in
      let results = List.map Domain.join domains in
      let total_responses = List.fold_left (fun a (r, _, _) -> a + r) 0 results in
      let total_died = List.fold_left (fun a (_, d, _) -> a + d) 0 results in
      let total_refused = List.fold_left (fun a (_, _, r) -> a + r) 0 results in
      check Alcotest.int "every client exchange terminated"
        (clients * per_client)
        (total_responses + total_died + total_refused);
      check Alcotest.int "loopback connects never refused" 0 total_refused;
      quiesce t;
      let s = Server.stats t in
      check Alcotest.bool "the storm was big enough" true (s.Server.accepted >= 1000);
      check Alcotest.bool "faults actually fired" true
        (s.Server.accept_faults > 0 && s.Server.write_failures > 0);
      (* The invariant: accepted connections are exhaustively accounted
         for — answered, or counted+logged as lost. Zero silent drops. *)
      check Alcotest.int "accepted = responses + write_failures + accept_faults"
        s.Server.accepted
        (s.Server.responses + s.Server.write_failures + s.Server.accept_faults);
      (* Client and server agree about every lost connection. *)
      check Alcotest.int "client-observed deaths match server-logged losses" total_died
        (s.Server.write_failures + s.Server.accept_faults);
      check Alcotest.int "client-observed responses match server-written ones" total_responses
        s.Server.responses;
      (* Drain under the same faults: everything in flight completes. *)
      Server.drain t;
      match Domain.join d with
      | Server.Drained -> ()
      | Server.Drain_timed_out n ->
        Alcotest.fail (Printf.sprintf "drain timed out with %d request(s) inside" n)
      | Server.Stopped -> Alcotest.fail "drain reported a hard stop")

(* Deadline chaos: a tight request budget plus injected storage delays
   force requests to die in the queue; they must still be answered
   (503) and counted — the invariant holds under timeout pressure. *)
let test_chaos_deadline_sheds_are_answered () =
  Tm_obs.Obs.set_warn_handler (Some (fun _ -> ()));
  let db = mk_db () in
  let config =
    {
      Server.default_config with
      Server.max_in_flight = 1;
      max_queue = 8;
      request_timeout_ms = 30.0;
      read_timeout_ms = 500.0;
      drain_deadline_ms = 10_000.0;
    }
  in
  let t = Server.create ~port:0 ~config db in
  Tm_par.Pool.with_pool ~jobs:2 @@ fun pool ->
  let d = Domain.spawn (fun () -> Server.run ~pool t) in
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Tm_obs.Obs.set_warn_handler None;
      Server.stop t;
      ignore (Domain.join d))
    (fun () ->
      (* every query sits ~50 ms in the single execution slot, so a
         30 ms budget dies while queued behind it *)
      Fault.inject ~site:"serve.write" ~action:(Fault.Delay_ms 50) (Fault.Every 1);
      let port = Server.port t in
      let domains =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                let shed = ref 0 in
                for _ = 1 to 10 do
                  match exchange port "/healthz" with
                  | Response body when contains body "HTTP/1.1 503" -> incr shed
                  | Response _ | Died | Refused -> ()
                done;
                !shed))
      in
      let sheds = List.fold_left (fun a s -> a + Domain.join s) 0 domains in
      quiesce t;
      let s = Server.stats t in
      check Alcotest.bool "some requests died in the queue" true
        (s.Server.shed_deadline > 0 && sheds > 0);
      check Alcotest.int "still exhaustively accounted" s.Server.accepted
        (s.Server.responses + s.Server.write_failures + s.Server.accept_faults))

(* Flight-recorder post-mortem under load: with the recorder on, hold
   both execution slots mid-query (cold caches + delayed page reads),
   then dump the rings — exactly what the SIGQUIT handler does to a
   killed server. The post-mortem must parse with every CRC frame
   intact, keep each domain's window dense and time-ordered, and
   reconstruct each in-flight request as a [req.begin] (with its
   [query.begin]) that never reached [req.end]. *)
let test_chaos_flight_dump_reconstructs_in_flight () =
  let module Flight = Tm_obs.Flight in
  Tm_obs.Obs.set_warn_handler (Some (fun _ -> ()));
  let db = mk_db () in
  let config =
    {
      Server.default_config with
      Server.max_in_flight = 2;
      max_queue = 4;
      request_timeout_ms = 30_000.0;
      read_timeout_ms = 2_000.0;
      drain_deadline_ms = 10_000.0;
    }
  in
  let dump_file = Filename.temp_file "twigchaos" ".dump" in
  Flight.with_enabled true @@ fun () ->
  Flight.clear ();
  Flight.set_dump_path (Some dump_file);
  let t = Server.create ~port:0 ~config db in
  (* roomy pool: the two admitted handlers and their executors' scan
     subtasks must all run concurrently for the overlap to be held *)
  Tm_par.Pool.with_pool ~jobs:6 @@ fun pool ->
  let d = Domain.spawn (fun () -> Server.run ~pool t) in
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Flight.set_dump_path None;
      Flight.clear ();
      Tm_obs.Obs.set_warn_handler None;
      (try Sys.remove dump_file with Sys_error _ -> ());
      Server.stop t;
      ignore (Domain.join d))
    (fun () ->
      (* cold caches so the queries must visit the pager, where every
         read stalls long enough to straddle the dump *)
      Database.drop_caches db;
      Fault.inject ~site:"pager.read" ~action:(Fault.Delay_ms 150) (Fault.Every 1);
      let port = Server.port t in
      let clients =
        List.init 2 (fun _ ->
            Domain.spawn (fun () -> exchange port "/query?q=%2Fbook%2F%2Fauthor"))
      in
      (* wait until both requests opened their flight windows and began
         executing — from there each sits >= 150 ms in a page read.
         Requests and queries are separate windows: [req.begin] is keyed
         by the request id, the executor installs its own query trace. *)
      let open_windows bkind ekind events =
        let ended id =
          List.exists
            (fun (e : Flight.event) -> e.Flight.e_kind == ekind && e.Flight.e_trace = id)
            events
        in
        List.filter_map
          (fun (e : Flight.event) ->
            if e.Flight.e_kind == bkind && e.Flight.e_trace <> 0 && not (ended e.Flight.e_trace)
            then Some e.Flight.e_trace
            else None)
          events
        |> List.sort_uniq compare
      in
      let rec wait n =
        if n = 0 then Alcotest.fail "requests never reached mid-query execution";
        let live = Flight.snapshot () in
        if
          List.length (open_windows Flight.Req_begin Flight.Req_end live) < 2
          || List.length (open_windows Flight.Query_begin Flight.Query_end live) < 2
        then begin
          Unix.sleepf 0.002;
          wait (n - 1)
        end
      in
      wait 5_000;
      let live = Flight.snapshot () in
      let held_reqs = open_windows Flight.Req_begin Flight.Req_end live in
      let held_queries = open_windows Flight.Query_begin Flight.Query_end live in
      (match Flight.dump ~reason:"chaos-kill" with
      | None -> Alcotest.fail "enabled recorder with a configured path must dump"
      | Some p -> check Alcotest.string "dump path honoured" dump_file p);
      (* the storm keeps running; the post-mortem is already on disk *)
      List.iter (fun c -> ignore (Domain.join c)) clients;
      let dump = Flight.load_dump dump_file in
      check Alcotest.bool "every CRC frame intact" true (dump.Flight.d_damaged = None);
      check Alcotest.string "dump reason recorded" "chaos-kill" dump.Flight.d_reason;
      check Alcotest.int "footer count matches the frames" dump.Flight.d_total
        (List.fold_left (fun a (_, es) -> a + List.length es) 0 dump.Flight.d_domains);
      (* per-domain ordering: dense sequence numbers, monotone clock *)
      List.iter
        (fun (_, es) ->
          ignore
            (List.fold_left
               (fun prev (e : Flight.event) ->
                 (match prev with
                 | None -> ()
                 | Some (pseq, pts) ->
                   check Alcotest.int "dense per-domain seq" (pseq + 1) e.Flight.e_seq;
                   check Alcotest.bool "monotone per-domain clock" true
                     (e.Flight.e_ts_ns >= pts));
                 Some (e.Flight.e_seq, e.Flight.e_ts_ns))
               None es))
        dump.Flight.d_domains;
      (* reconstruction: every window held open at dump time appears in
         the post-mortem with its begin marker and no end *)
      let events = Flight.merge_events dump.Flight.d_domains in
      let has kind id =
        List.exists
          (fun (e : Flight.event) -> e.Flight.e_kind == kind && e.Flight.e_trace = id)
          events
      in
      check Alcotest.int "both held requests seen live" 2 (List.length held_reqs);
      check Alcotest.int "both held queries seen live" 2 (List.length held_queries);
      List.iter
        (fun rid ->
          check Alcotest.bool "req.begin survived" true (has Flight.Req_begin rid);
          check Alcotest.bool "no req.end: still in flight" false (has Flight.Req_end rid))
        held_reqs;
      List.iter
        (fun qid ->
          check Alcotest.bool "query.begin survived" true (has Flight.Query_begin qid);
          check Alcotest.bool "no query.end: still executing" false (has Flight.Query_end qid))
        held_queries)

let () =
  Alcotest.run "chaos"
    [
      ( "serve",
        [
          Alcotest.test_case "1000+ faulted requests, zero silent drops" `Quick
            test_chaos_no_silent_drops;
          Alcotest.test_case "queue-expired budgets still answered" `Quick
            test_chaos_deadline_sheds_are_answered;
          Alcotest.test_case "mid-storm dump reconstructs in-flight requests" `Quick
            test_chaos_flight_dump_reconstructs_in_flight;
        ] );
    ]
