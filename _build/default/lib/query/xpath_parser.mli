(** Parser for the paper's XPath fragment: absolute paths with [/] and
    [//], attribute steps ([@name]), and predicates that are relative
    paths with an optional equality to a (quoted or bare) literal;
    [. = 'v'] is a value predicate on the current step. The last trunk
    step becomes the output node. *)

exception Parse_error of string

val parse : string -> Twig.t
(** @raise Parse_error on malformed input. *)
