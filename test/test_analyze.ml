(* Tests for Tm_analyze (the typedtree analyzer): each fixture module
   under fixtures_analyze/ seeds one violation class, and every pass
   must detect its class with file/line provenance; the clean fixture
   tree must come back with zero findings — mirroring test_check.ml's
   injected-corruption style, with source-level violations in place of
   page-level ones.

   The fixture libraries are linked into this executable, so dune has
   built their .cmt files (the analyzer's input) before the test runs;
   the analyzer is then invoked in-process over those build artifacts.
   [~scope_all:true] lifts the lib/-rooted scope restrictions so the
   passes apply to the fixture tree. *)

module Analyze = Tm_analyze.Analyze

let check = Alcotest.check

(* Keep the linker honest: reference the fixture libraries so their
   .cmt files are certainly produced. *)
let _ = Bad_global.lookup
let _ = Clean.get

(* The test runs with cwd = _build/default/test; the fixture objects
   live under the library's .objs directory. Probe the candidates so a
   dune layout change fails with a readable message. *)
let cmt_root candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> Alcotest.failf "no fixture .cmt directory found (tried: %s)" (String.concat ", " candidates)

let bad_root () =
  cmt_root
    [
      "fixtures_analyze/.tm_analyze_fixtures.objs/byte";
      "test/fixtures_analyze/.tm_analyze_fixtures.objs/byte";
      "_build/default/test/fixtures_analyze/.tm_analyze_fixtures.objs/byte";
    ]

let clean_root () =
  cmt_root
    [
      "fixtures_analyze/clean/.tm_analyze_fixtures_clean.objs/byte";
      "test/fixtures_analyze/clean/.tm_analyze_fixtures_clean.objs/byte";
      "_build/default/test/fixtures_analyze/clean/.tm_analyze_fixtures_clean.objs/byte";
    ]

let base f = Filename.basename f.Analyze.file

let in_pass pass fs = List.filter (fun f -> String.equal f.Analyze.pass pass) fs

let show fs =
  String.concat "; "
    (List.map
       (fun f -> Printf.sprintf "%s:%d [%s] %s" (base f) f.Analyze.line f.Analyze.pass f.Analyze.message)
       fs)

(* One analyzer run over the violation fixtures, shared by the per-pass
   assertions below. *)
let bad_findings = lazy (fst (Analyze.run ~scope_all:true [ bad_root () ]))

let assert_detects ~pass ~file ~lines () =
  let fs = in_pass pass (Lazy.force bad_findings) in
  let hits = List.filter (fun f -> String.equal (base f) file) fs in
  (match hits with
  | [] ->
    Alcotest.failf "pass %s reported nothing for %s (pass findings: %s)" pass file (show fs)
  | _ :: _ -> ());
  List.iter
    (fun (f : Analyze.finding) ->
      if not (List.mem f.Analyze.line lines) then
        Alcotest.failf "pass %s flagged %s:%d, expected line(s) %s" pass file f.Analyze.line
          (String.concat "/" (List.map string_of_int lines)))
    hits;
  (* Provenance also means nothing cross-attributed: the pass must not
     blame a different fixture for this class. *)
  List.iter
    (fun (f : Analyze.finding) ->
      if not (String.equal (base f) file) then
        Alcotest.failf "pass %s also flagged %s:%d (%s); expected only %s" pass (base f)
          f.Analyze.line f.Analyze.message file)
    fs

let test_lock_order () =
  (* The a<->b cycle is witnessed at one of the two inner acquisitions. *)
  assert_detects ~pass:"lock-order" ~file:"bad_lock_order.ml" ~lines:[ 6; 7 ] ()

let test_domain_safety () =
  assert_detects ~pass:"domain-safety" ~file:"bad_global.ml" ~lines:[ 5 ] ()

let test_resource_safety () =
  assert_detects ~pass:"resource-safety" ~file:"bad_leak.ml" ~lines:[ 7; 9 ] ();
  (* Both halves of the pair carry their own location. *)
  let fs = in_pass "resource-safety" (Lazy.force bad_findings) in
  check Alcotest.int "lock and unlock are reported separately" 2 (List.length fs)

let test_typed_error () =
  assert_detects ~pass:"typed-error" ~file:"bad_swallow.ml" ~lines:[ 7 ] ()

let test_failpoint () =
  assert_detects ~pass:"failpoint" ~file:"bad_io.ml" ~lines:[ 6 ] ()

let test_all_passes_fire () =
  let fs = Lazy.force bad_findings in
  List.iter
    (fun pass ->
      match in_pass pass fs with
      | [] -> Alcotest.failf "pass %s produced no findings on the fixture tree" pass
      | _ :: _ -> ())
    Analyze.pass_ids

let test_clean_tree () =
  let fs, nmodules = Analyze.run ~scope_all:true [ clean_root () ] in
  check Alcotest.int "clean fixture tree analyzed" 1 nmodules;
  match fs with
  | [] -> ()
  | _ :: _ -> Alcotest.failf "clean tree produced findings: %s" (show fs)

let suite =
  [
    ( "analyze",
      [
        Alcotest.test_case "lock-order detects the seeded cycle" `Quick test_lock_order;
        Alcotest.test_case "domain-safety detects the unguarded global" `Quick test_domain_safety;
        Alcotest.test_case "resource-safety detects the leaky pair" `Quick test_resource_safety;
        Alcotest.test_case "typed-error detects the swallowed Timeout" `Quick test_typed_error;
        Alcotest.test_case "failpoint detects the unregistered I/O" `Quick test_failpoint;
        Alcotest.test_case "all five passes fire on the fixture tree" `Quick test_all_passes_fire;
        Alcotest.test_case "clean tree yields zero findings" `Quick test_clean_tree;
      ] );
  ]

let () = Alcotest.run "tm_analyze" suite
