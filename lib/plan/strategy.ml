(** The seven indexing strategies of the paper's evaluation (Section
    5.1.2), as a planner-level enum. [Database.strategy] re-exports this
    type transparently, so the constructors are interchangeable across
    the core and planner layers. *)

type t = RP | DP | Edge | DG_edge | IF_edge | Asr | Ji

let all = [ RP; DP; Edge; DG_edge; IF_edge; Asr; Ji ]

let name = function
  | RP -> "RP"
  | DP -> "DP"
  | Edge -> "Edge"
  | DG_edge -> "DG+Edge"
  | IF_edge -> "IF+Edge"
  | Asr -> "ASR"
  | Ji -> "JI"

(* Dense rank, doubling as the planner's tie-break preference: RP and
   DP (the paper's two primary plans) come first. *)
let rank = function
  | RP -> 0
  | DP -> 1
  | Ji -> 2
  | Edge -> 3
  | Asr -> 4
  | DG_edge -> 5
  | IF_edge -> 6

let equal a b = Int.equal (rank a) (rank b)
let compare a b = Int.compare (rank a) (rank b)
let mem s l = List.exists (equal s) l

let of_string = function
  | "RP" | "rp" | "rootpaths" -> Ok RP
  | "DP" | "dp" | "datapaths" -> Ok DP
  | "Edge" | "edge" -> Ok Edge
  | "DG+Edge" | "dg" | "dataguide" -> Ok DG_edge
  | "IF+Edge" | "if" | "index-fabric" -> Ok IF_edge
  | "ASR" | "asr" -> Ok Asr
  | "JI" | "ji" -> Ok Ji
  | s ->
    Error
      (Printf.sprintf "unknown strategy %S (expected one of %s)" s
         (String.concat ", " (List.map name all)))
