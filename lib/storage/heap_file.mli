(** Append-only heap file of variable-length records over pages, for
    base relations (the Edge table, ASR relations). *)

type rid = { page : int; slot : int }
(** Record identifier. *)

type t

val create : name:string -> Buffer_pool.t -> t
val name : t -> string
val record_count : t -> int
val page_count : t -> int
val size_bytes : t -> int

val append : t -> string -> rid
(** Append a record. @raise Invalid_argument if it cannot fit in one
    page. *)

val get : t -> rid -> string
(** @raise Invalid_argument on a bad rid. *)

val fold : t -> ('a -> string -> 'a) -> 'a -> 'a
(** Fold over all records in insertion order. *)

val iter : t -> (string -> unit) -> unit

(** {1 Raw page access (fsck support)} *)

val pages : t -> int list
(** Page ids in allocation order. *)

val records_of_page : t -> int -> (string array, string) result
(** Decode one page afresh; [Error] (rather than an empty page, as the
    read path tolerates) for a missing/corrupt header or truncated
    record. *)
