(** Exporters over the {!Obs} sink: human-readable trace trees, JSON
    (traces and metrics), and Prometheus-style text metrics. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (no
    surrounding quotes). *)

val trace_to_string : Obs.span -> string
(** Render a span tree with per-operator elapsed time, annotations,
    buffer-pool hit rates and counter deltas. *)

val pp_trace : Format.formatter -> Obs.span -> unit

val trace_to_json : Obs.span -> string

val metrics_to_json : unit -> string
(** All registered counters and histograms as one JSON object. *)

val metrics_to_prometheus : unit -> string
(** Prometheus text exposition format ([# TYPE] lines, cumulative
    histogram buckets). *)
