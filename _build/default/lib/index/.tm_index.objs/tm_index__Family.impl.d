lib/index/family.ml: Bptree Buffer Codec List Path_relation Schema_catalog Schema_path String Tm_obs Tm_storage Tm_xmldb
