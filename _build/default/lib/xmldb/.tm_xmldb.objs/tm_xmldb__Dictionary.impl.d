lib/xmldb/dictionary.ml: Array Bytes Char Hashtbl String
