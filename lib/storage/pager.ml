(** Simulated disk: a growable array of fixed-size pages.

    The pager is the bottom of the storage stack. It hands out page ids,
    stores raw page images, and counts {e physical} reads and writes.
    All structured access should go through {!Buffer_pool}, which adds
    caching and counts {e logical} accesses; the gap between the two is
    the simulated I/O that the benchmark harness reports.

    Every page carries a CRC32 (unless checksums are disabled at
    creation), recomputed on write and verified on read, so corruption —
    whether injected through a [pager.read]/[pager.write] failpoint or
    planted by a test — surfaces as a typed {!Corrupt_page} naming the
    page rather than as garbage decoded downstream. The checksum lives
    in a sidecar array, not inside the page image, mirroring the
    out-of-band page headers real engines use; page payloads keep the
    full page to themselves.

    A single mutex serialises every operation, making the pager safe to
    share across domains. The lock covers little work (an array slot
    swap plus a [Bytes.copy]), and the buffer pool absorbs most traffic
    before it reaches the pager, so contention here is not the
    bottleneck it would be on a real disk. *)

exception Corrupt_page of { page : int; detail : string }

let () =
  Printexc.register_printer (function
    | Corrupt_page { page; detail } ->
      Some (Printf.sprintf "Corrupt_page(page %d: %s)" page detail)
    | _ -> None)

(* Observability mirrors of the physical I/O counters, plus byte
   volumes (every transfer moves exactly one page image). *)
let c_reads = Tm_obs.Obs.counter "pager.physical_reads"
let c_writes = Tm_obs.Obs.counter "pager.physical_writes"
let c_read_bytes = Tm_obs.Obs.counter "pager.read_bytes"
let c_write_bytes = Tm_obs.Obs.counter "pager.write_bytes"

(* Failpoint sites (see {!Tm_fault.Fault}). Hooks fire before the
   physical counters move, so a failed call is not a counted transfer
   and a retried success counts exactly once — tests asserting exact
   physical-read counts stay deterministic under an injected fault leg. *)
let site_read = "pager.read"
let site_write = "pager.write"
let site_alloc = "pager.alloc"

type t = {
  page_size : int;
  checksums : bool;
  lock : Lock.t;
  mutable pages : bytes array; (* backing store, grown geometrically *)
  mutable crcs : int array; (* sidecar CRC32 per page (unused when checksums off) *)
  mutable n_pages : int;
  mutable physical_reads : int;
  mutable physical_writes : int;
}

let default_page_size = 8192

let create ?(page_size = default_page_size) ?(checksums = true) () =
  {
    page_size;
    checksums;
    lock = Lock.create Lock.Inner;
    pages = Array.make 64 Bytes.empty;
    crcs = Array.make 64 0;
    n_pages = 0;
    physical_reads = 0;
    physical_writes = 0;
  }

let locked t f = Lock.with_lock t.lock f

let page_size t = t.page_size
let checksums t = t.checksums
let page_count t = locked t (fun () -> t.n_pages)

(** Total bytes occupied on the simulated disk. *)
let size_bytes t = page_count t * t.page_size

let grow t needed =
  if needed > Array.length t.pages then begin
    let cap = max needed (2 * Array.length t.pages) in
    let pages = Array.make cap Bytes.empty in
    let crcs = Array.make cap 0 in
    Array.blit t.pages 0 pages 0 t.n_pages;
    Array.blit t.crcs 0 crcs 0 t.n_pages;
    t.pages <- pages;
    t.crcs <- crcs
  end

(* Computed eagerly at module init: a [lazy] here would be forced from
   whichever domain allocates first, and unsynchronized forcing races. *)
let crc_of_zero_page = Codec.crc32 (Bytes.make default_page_size '\x00')

(** Allocate a fresh zeroed page; returns its id. *)
let alloc t =
  Tm_fault.Fault.guard site_alloc;
  locked t (fun () ->
      grow t (t.n_pages + 1);
      let id = t.n_pages in
      t.pages.(id) <- Bytes.make t.page_size '\x00';
      if t.checksums then
        t.crcs.(id) <-
          (if t.page_size = default_page_size then crc_of_zero_page else Codec.crc32 t.pages.(id));
      t.n_pages <- id + 1;
      id)

let check_id t id =
  if id < 0 || id >= t.n_pages then
    raise (Corrupt_page { page = id; detail = "unallocated page id" })

(** Physical read: returns a copy of the page image, verified against the
    stored checksum. Only successful reads are counted. *)
let read t id =
  let data, crc =
    locked t (fun () ->
        check_id t id;
        (Bytes.copy t.pages.(id), t.crcs.(id)))
  in
  (* The failpoint may raise (Fail) or corrupt the copy (Torn/Bitflip);
     a corrupted copy then fails the checksum below, exactly as a bad
     sector would. *)
  let data = Tm_fault.Fault.apply ~site:site_read data in
  if t.checksums && Codec.crc32 data <> crc then
    raise (Corrupt_page { page = id; detail = "checksum mismatch on read" });
  locked t (fun () -> t.physical_reads <- t.physical_reads + 1);
  Tm_obs.Obs.incr c_reads;
  Tm_obs.Obs.add c_read_bytes t.page_size;
  data

(** Physical write: stores a copy of [data] (padded/truncated to page
    size). The stored checksum is always that of the {e intended} image:
    a torn/bit-flipped injected write therefore persists bytes that no
    longer match their CRC, and the damage is detected on the next
    read — the torn-write crash model. *)
let write t id data =
  let page = Bytes.make t.page_size '\x00' in
  let len = min (Bytes.length data) t.page_size in
  Bytes.blit data 0 page 0 len;
  let crc = if t.checksums then Codec.crc32 page else 0 in
  let page = Tm_fault.Fault.apply ~site:site_write page in
  locked t (fun () ->
      check_id t id;
      t.physical_writes <- t.physical_writes + 1;
      t.pages.(id) <- page;
      t.crcs.(id) <- crc);
  Tm_obs.Obs.incr c_writes;
  Tm_obs.Obs.add c_write_bytes t.page_size

(** Offline integrity check: does the stored image still match its
    checksum? Bypasses failpoints and I/O accounting (it is the fsck
    path, not a query path). Always true when checksums are disabled;
    false for unallocated ids. *)
let verify_page t id =
  locked t (fun () ->
      if id < 0 || id >= t.n_pages then false
      else if not t.checksums then true
      else Codec.crc32 t.pages.(id) = t.crcs.(id))
[@@analyze.no_failpoint "fsck path: integrity checks must see the store as it is, not as injected"]

(** Test hooks: plant corruption directly in the backing store, without
    touching the sidecar checksum — the states fsck and the read path
    must detect. *)
let unsafe_flip_bit t ~page ~bit =
  locked t (fun () ->
      check_id t page;
      let img = t.pages.(page) in
      let byte = bit / 8 mod Bytes.length img in
      Bytes.set img byte (Char.chr (Char.code (Bytes.get img byte) lxor (1 lsl (bit mod 8)))))
[@@analyze.no_failpoint "test hook: plants the corruption failpoints are meant to simulate"]

let unsafe_flip_crc_bit t ~page ~bit =
  locked t (fun () ->
      check_id t page;
      t.crcs.(page) <- t.crcs.(page) lxor (1 lsl (bit mod 32)))
[@@analyze.no_failpoint "test hook: plants the corruption failpoints are meant to simulate"]

let reset_stats t =
  locked t (fun () ->
      t.physical_reads <- 0;
      t.physical_writes <- 0)

let physical_reads t = locked t (fun () -> t.physical_reads)
let physical_writes t = locked t (fun () -> t.physical_writes)
