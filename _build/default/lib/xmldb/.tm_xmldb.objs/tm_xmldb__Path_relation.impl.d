lib/xmldb/path_relation.ml: Array List Schema_path Shred
