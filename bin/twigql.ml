(* twigql — command-line twig query processor.

     twigql query   [SOURCE] [--hint auto|force:RP] [--analyze] [--jobs N]
                    [--timeout-ms MS] [--strict] 'XPATH'   run a query
     twigql explain [SOURCE] [--hint H] [--analyze] 'XPATH'   plan (+ EXPLAIN ANALYZE)
     twigql plan    [SOURCE] [--hint H] 'XPATH'   cost-based plan, no execution
     twigql compare [SOURCE] 'XPATH'           run under every strategy + oracle
     twigql metrics [SOURCE] [--format json] 'XPATH'   counters and histograms
     twigql trace   [SOURCE] [-s RP] [--chrome] [-o F] 'XPATH'   span tree / Chrome JSON
     twigql slow    [SOURCE] [--threshold-ms N] 'XPATH'...   run queries, print slow log
     twigql serve   [SOURCE] [--port N]        HTTP metrics/health/query endpoint
     twigql blackbox render FILE               human-readable post-mortem timeline
     twigql blackbox dump FILE [-o OUT]        post-mortem -> Chrome trace JSON
     twigql blackbox tail FILE [-n N]          last N events of a post-mortem
     twigql info    [SOURCE]                   document / catalog / index stats
     twigql generate (--xmark F | --dblp F) -o FILE   write a dataset as XML
     twigql snapshot [save] [SOURCE] -o FILE   build a database, save atomically
     twigql snapshot verify FILE               frame + checksum check, no unmarshal
     twigql fsck    [SOURCE] [--jobs N] [--format json]   verify index structure invariants
     twigql wal init DIR [SOURCE]              make a database durable (snapshot + log)
     twigql wal ingest DIR [-n N] [--batch]    recover, insert N logged subtrees
     twigql wal status DIR                     scan snapshot framing + log frames
     twigql wal checkpoint DIR                 recover, fold log into a fresh snapshot
     twigql wal fsck DIR [--format json]       recover, then full structure verify

   SOURCE is one of: --file doc.xml, --xmark SCALE, --dblp SCALE,
   --snapshot FILE (default: --xmark 0.1).

   Exit codes: 0 ok, 1 fsck violations, 2 corruption detected
   (checksum mismatch or bad snapshot), 3 query deadline expired. *)

open Twigmatch
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Source selection                                                    *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"FILE" ~doc:"Load an XML file.")

let xmark_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "xmark" ] ~docv:"SCALE" ~doc:"Generate an XMark-like dataset at SCALE.")

let dblp_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "dblp" ] ~docv:"SCALE" ~doc:"Generate a DBLP-like dataset at SCALE.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Dataset generator seed.")

let snap_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE" ~doc:"Load a database snapshot (see the snapshot command).")

let load_doc file xmark dblp seed =
  match (file, xmark, dblp) with
  | Some f, _, _ ->
    let ic = open_in_bin f in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Tm_xml.Xml_parser.parse s
  | None, Some scale, _ -> Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed; scale }
  | None, None, Some scale -> Tm_datasets.Dblp_gen.generate { Tm_datasets.Dblp_gen.seed; scale }
  | None, None, None ->
    Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed; scale = 0.1 }

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

let strategy_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Database.strategy_of_string s) in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Database.strategy_name s))

let hint_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Tm_plan.Hint.of_string s) in
  Arg.conv (parse, fun ppf h -> Format.pp_print_string ppf (Tm_plan.Hint.to_string h))

let hint_arg =
  Arg.(
    value
    & opt (some hint_conv) None
    & info [ "hint" ] ~docv:"HINT"
        ~doc:
          "Plan hint: $(b,auto) lets the cost-based planner choose (and adapt mid-query); \
           $(b,force:STRATEGY) (or a bare strategy name) pins one of RP, DP, Edge, DG+Edge, \
           IF+Edge, ASR, JI.")

(* Legacy surface, kept as a shim: parsed through
   [Tm_plan.Hint.of_string_compat], which warns that the
   strategy-string round-trip is deprecated. *)
let strategy_compat_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "strategy"; "s" ] ~docv:"STRATEGY"
        ~doc:"Deprecated alias for $(b,--hint force:STRATEGY).")

let auto_arg =
  Arg.(
    value & flag
    & info [ "auto" ] ~doc:"Deprecated alias for $(b,--hint auto): let the planner choose.")

(* --hint wins; --auto and -s fall through the compat shim so their
   deprecation shows up in telemetry; the historical default is a
   forced RP plan. *)
let resolve_hint ~site hint strategy auto =
  match (hint, auto, strategy) with
  | Some h, _, _ -> h
  | None, true, _ -> Tm_plan.Hint.Auto
  | None, false, Some s -> (
    match Tm_plan.Hint.of_string_compat ~site s with
    | Ok h -> h
    | Error m ->
      Printf.eprintf "twigql: %s\n" m;
      exit 124)
  | None, false, None -> Tm_plan.Hint.Force Database.RP

let xpath_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"XPATH")

let load_db ?par snap file xmark dblp seed =
  match snap with
  | Some path -> Persist.load path
  | None -> Database.create ?par (load_doc file xmark dblp seed)

(* Scope a domain pool around [f] when more than one job is requested;
   [None] keeps everything on the calling domain. *)
let with_par jobs f =
  if jobs > 1 then Tm_par.Pool.with_pool ~jobs (fun p -> f (Some p)) else f None

let jobs_arg =
  Arg.(
    value
    & opt int (Tm_par.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains for parallel index construction and query execution (default: \
           $(b,TWIGMATCH_JOBS) or 1).")

let run_query snap file xmark dblp seed hint strategy auto analyze strict timeout_ms jobs xpath =
  with_par jobs @@ fun par ->
  let db = load_db ?par snap file xmark dblp seed in
  let twig = Tm_query.Xpath_parser.parse xpath in
  let hint = resolve_hint ~site:"twigql query -s" hint strategy auto in
  let t0 = Monotonic_clock.now () in
  let r =
    Tm_obs.Obs.with_enabled analyze (fun () ->
        Executor.run ~hint ~strict ?deadline_ms:timeout_ms ?pool:par db twig)
  in
  let ms = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6 in
  Printf.printf "%d results in %.2f ms under %s (%s) [trace #%d]\n"
    (List.length r.Executor.ids) ms
    (Database.strategy_name r.Executor.strategy) r.Executor.reason r.Executor.trace_id;
  if r.Executor.replans > 0 then
    Printf.printf "replans: %d (estimates blown mid-query; final plan shown above)\n"
      r.Executor.replans;
  List.iter
    (fun (s, why) ->
      Printf.printf "fallback: %s was unusable: %s\n" (Database.strategy_name s) why)
    r.Executor.fallbacks;
  if r.Executor.via_naive then print_endline "degraded to the naive in-memory matcher";
  Printf.printf "node ids: %s\n"
    (String.concat ", " (List.map string_of_int r.Executor.ids));
  Format.printf "stats: %a@." Tm_exec.Stats.pp r.Executor.stats;
  match r.Executor.trace with
  | Some tr when analyze -> print_string (Tm_obs.Export.trace_to_string tr)
  | _ -> ()

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Disable graceful degradation: an unusable index (missing, corrupt, lossy) aborts the \
           query instead of falling back to the next strategy.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:"Per-query deadline in milliseconds. Expiry exits with code 3.")

let analyze_arg =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Record the execution under the observability sink and print the span tree \
           (per-path and per-join timings, buffer-pool hit rates, row counts).")

let query_cmd =
  Cmd.v
    (Cmd.info "query" ~doc:"Run a twig query under a plan hint (--hint auto|force:STRATEGY)")
    Term.(
      const run_query $ snap_arg $ file_arg $ xmark_arg $ dblp_arg $ seed_arg $ hint_arg
      $ strategy_compat_arg $ auto_arg $ analyze_arg $ strict_arg $ timeout_arg $ jobs_arg
      $ xpath_arg)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

(* Materialize only the index sets this explain can touch (the Edge
   table is always built and carries the planner statistics) instead of
   all seven; under [Auto] that is the planner's candidate set. *)
let explain_db snap file xmark dblp seed hint =
  match snap with
  | Some path -> Persist.load path
  | None ->
    let strategies =
      match hint with
      | Tm_plan.Hint.Auto -> [ Database.RP; Database.DP; Database.Ji ]
      | Tm_plan.Hint.Force s -> [ s ]
      | Tm_plan.Hint.Pin p -> [ p.Tm_plan.Plan.strategy ]
    in
    Database.create ~strategies (load_doc file xmark dblp seed)

let run_explain snap file xmark dblp seed hint strategy auto analyze xpath =
  let hint = resolve_hint ~site:"twigql explain -s" hint strategy auto in
  let db = explain_db snap file xmark dblp seed hint in
  let twig = Tm_query.Xpath_parser.parse xpath in
  print_string (Executor.explain ~analyze ~hint db twig)

let explain_cmd =
  Cmd.v
    (Cmd.info "explain" ~doc:"Describe the physical plan for a query (EXPLAIN ANALYZE with --analyze)")
    Term.(
      const run_explain $ snap_arg $ file_arg $ xmark_arg $ dblp_arg $ seed_arg $ hint_arg
      $ strategy_compat_arg $ auto_arg $ analyze_arg $ xpath_arg)

(* ------------------------------------------------------------------ *)
(* plan                                                                *)
(* ------------------------------------------------------------------ *)

let run_plan snap file xmark dblp seed hint xpath =
  let hint = match hint with Some h -> h | None -> Tm_plan.Hint.Auto in
  let db = explain_db snap file xmark dblp seed hint in
  let twig = Tm_query.Xpath_parser.parse xpath in
  print_string (Executor.explain ~hint db twig)

let plan_cmd =
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Show the cost-based planner's choice for a query without executing it: PCsubpath \
          cover, per-path estimates, join order, cost comparison (--hint defaults to auto)")
    Term.(
      const run_plan $ snap_arg $ file_arg $ xmark_arg $ dblp_arg $ seed_arg $ hint_arg
      $ xpath_arg)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let run_compare snap file xmark dblp seed xpath =
  let db = load_db snap file xmark dblp seed in
  let doc = db.Database.doc in
  let twig = Tm_query.Xpath_parser.parse xpath in
  let expected = Tm_query.Naive.query doc twig in
  Printf.printf "oracle (naive matcher): %d results\n" (List.length expected);
  List.iter
    (fun strategy ->
      let t0 = Monotonic_clock.now () in
      match Executor.run ~hint:(Tm_plan.Hint.Force strategy) db twig with
      | r ->
        let ms = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6 in
        let ok = if r.Executor.ids = expected then "ok" else "MISMATCH" in
        Printf.printf "%-8s %4d results  %8.2f ms  %s\n" (Database.strategy_name strategy)
          (List.length r.Executor.ids) ms ok
      | exception Tm_index.Family.Unsupported m ->
        Printf.printf "%-8s unsupported: %s\n" (Database.strategy_name strategy) m)
    Database.all_strategies

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~doc:"Run a twig query under every strategy and check the answers")
    Term.(const run_compare $ snap_arg $ file_arg $ xmark_arg $ dblp_arg $ seed_arg $ xpath_arg)

(* ------------------------------------------------------------------ *)
(* metrics                                                             *)
(* ------------------------------------------------------------------ *)

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("prometheus", `Prometheus) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: $(b,text), $(b,json) or $(b,prometheus).")

let run_metrics snap file xmark dblp seed hint strategy auto fmt xpath =
  let db = load_db snap file xmark dblp seed in
  let twig = Tm_query.Xpath_parser.parse xpath in
  let hint = resolve_hint ~site:"twigql metrics -s" hint strategy auto in
  ignore (Tm_obs.Obs.with_enabled true (fun () -> Executor.run ~hint db twig));
  match fmt with
  | `Json -> print_endline (Tm_obs.Export.metrics_to_json ())
  | `Prometheus -> print_string (Tm_obs.Export.metrics_to_prometheus ())
  | `Text ->
    List.iter
      (fun (name, v) -> if v <> 0 then Printf.printf "%-28s %d\n" name v)
      (Tm_obs.Obs.counters ());
    List.iter
      (fun (h : Tm_obs.Obs.histogram) ->
        if h.Tm_obs.Obs.h_count > 0 then
          Printf.printf "%-28s count=%d sum=%.2f\n" h.Tm_obs.Obs.h_name h.Tm_obs.Obs.h_count
            h.Tm_obs.Obs.h_sum)
      (Tm_obs.Obs.histograms ())

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a query with the observability sink enabled and dump the accumulated counters and \
          histograms (buffer-pool traffic, B+-tree node visits, pager I/O, join latencies)")
    Term.(
      const run_metrics $ snap_arg $ file_arg $ xmark_arg $ dblp_arg $ seed_arg $ hint_arg
      $ strategy_compat_arg $ auto_arg $ format_arg $ xpath_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let chrome_arg =
  Arg.(
    value & flag
    & info [ "chrome" ]
        ~doc:
          "Emit Chrome trace-event JSON (an array of complete events with microsecond \
           timestamps) instead of the text tree; open it in chrome://tracing or Perfetto.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the trace to FILE instead of stdout.")

let run_trace snap file xmark dblp seed hint strategy auto jobs chrome out xpath =
  with_par jobs @@ fun par ->
  let db = load_db ?par snap file xmark dblp seed in
  let twig = Tm_query.Xpath_parser.parse xpath in
  let hint = resolve_hint ~site:"twigql trace -s" hint strategy auto in
  let r = Tm_obs.Obs.with_enabled true (fun () -> Executor.run ~hint ?pool:par db twig) in
  match r.Executor.trace with
  | None -> prerr_endline "twigql: no trace was recorded"
  | Some tr ->
    let rendered =
      if chrome then Tm_obs.Export.trace_to_chrome tr ^ "\n"
      else Tm_obs.Export.trace_to_string tr
    in
    (match out with
    | None -> print_string rendered
    | Some f ->
      let oc = open_out_bin f in
      output_string oc rendered;
      close_out oc);
    Printf.eprintf "trace #%d: %d results under %s\n" r.Executor.trace_id
      (List.length r.Executor.ids)
      (Database.strategy_name r.Executor.strategy)

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a query with the observability sink enabled and export its span tree (text, or \
          Chrome trace-event JSON with --chrome)")
    Term.(
      const run_trace $ snap_arg $ file_arg $ xmark_arg $ dblp_arg $ seed_arg $ hint_arg
      $ strategy_compat_arg $ auto_arg $ jobs_arg $ chrome_arg $ trace_out_arg $ xpath_arg)

(* ------------------------------------------------------------------ *)
(* slow                                                                *)
(* ------------------------------------------------------------------ *)

let threshold_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "threshold-ms" ] ~docv:"MS"
        ~doc:"Latency threshold for the slow log (default 10; timeouts always qualify).")

let slow_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Report format: $(b,text) or $(b,json).")

let xpaths_arg = Arg.(non_empty & pos_all string [] & info [] ~docv:"XPATH")

let run_slow snap file xmark dblp seed jobs threshold fmt xpaths =
  with_par jobs @@ fun par ->
  let db = load_db ?par snap file xmark dblp seed in
  Tm_obs.Journal.with_enabled true @@ fun () ->
  List.iter
    (fun x ->
      let twig = Tm_query.Xpath_parser.parse x in
      match Executor.run ~hint:Tm_plan.Hint.Auto ?pool:par db twig with
      | _ -> ()
      | exception Executor.Timeout _ -> () (* journaled as a timeout; keep going *))
    xpaths;
  let slow = Tm_obs.Journal.slow ?threshold_ms:threshold () in
  match fmt with
  | `Json -> print_endline (Tm_obs.Journal.to_json slow)
  | `Text ->
    if slow = [] then
      Printf.printf "no queries at or above %.0f ms (of %d journaled)\n"
        (match threshold with Some t -> t | None -> Tm_obs.Journal.slow_threshold_ms ())
        (Tm_obs.Journal.length ())
    else List.iter (fun e -> print_endline (Tm_obs.Journal.entry_to_string e)) slow

let slow_cmd =
  Cmd.v
    (Cmd.info "slow"
       ~doc:
         "Run queries with the journal enabled and print the slow-query log (latency, winning \
          and losing plans, fallback chain)")
    Term.(
      const run_slow $ snap_arg $ file_arg $ xmark_arg $ dblp_arg $ seed_arg $ jobs_arg
      $ threshold_arg $ slow_format_arg $ xpaths_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let port_arg =
  Arg.(value & opt int 8080 & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Listening port (0 = ephemeral).")

let journal_cap_arg =
  Arg.(
    value
    & opt int 512
    & info [ "journal-capacity" ] ~docv:"N" ~doc:"Query journal ring capacity.")

let slow_ms_arg =
  Arg.(
    value
    & opt float 10.0
    & info [ "slow-ms" ] ~docv:"MS" ~doc:"Slow-query threshold for the /slow endpoint.")

let serve_wal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"DIR"
        ~doc:
          "Serve the write-ahead-logged database under $(docv) (recovers first); /healthz then \
           reports WAL status and degrades — not dies — when the write path is poisoned.")

let max_in_flight_arg =
  Arg.(
    value
    & opt int Tm_serve.Server.default_config.Tm_serve.Server.max_in_flight
    & info [ "max-in-flight" ] ~docv:"N" ~doc:"Connections executing concurrently.")

let max_queue_arg =
  Arg.(
    value
    & opt int Tm_serve.Server.default_config.Tm_serve.Server.max_queue
    & info [ "max-queue" ] ~docv:"N"
        ~doc:"Admission queue bound; beyond it connections are shed with 429.")

let request_timeout_arg =
  Arg.(
    value
    & opt float Tm_serve.Server.default_config.Tm_serve.Server.request_timeout_ms
    & info [ "request-timeout-ms" ] ~docv:"MS"
        ~doc:"Per-request budget (queue wait included), propagated into the executor.")

let drain_deadline_arg =
  Arg.(
    value
    & opt float Tm_serve.Server.default_config.Tm_serve.Server.drain_deadline_ms
    & info [ "drain-deadline-ms" ] ~docv:"MS"
        ~doc:"On SIGTERM or /drain, how long to wait for in-flight requests before exiting 1.")

let no_flight_arg =
  Arg.(
    value & flag
    & info [ "no-flight" ]
        ~doc:
          "Disable the flight recorder (on by default under serve: a per-domain in-memory ring \
           of cross-layer events, dumped to a post-mortem file on SIGQUIT, breaker-open or a \
           poisoned write path).")

let flight_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dump" ] ~docv:"FILE"
        ~doc:
          "Where automatic post-mortem dumps land (default: $(b,flight.dump) inside --wal DIR, \
           else $(b,twigql-flight.dump)). Inspect with $(b,twigql blackbox).")

let run_serve snap file xmark dblp seed jobs port journal_cap slow_ms wal_dir max_in_flight
    max_queue request_timeout_ms drain_deadline_ms no_flight flight_dump =
  with_par jobs @@ fun par ->
  let durable, db =
    match wal_dir with
    | Some dir ->
      let d, r = Durable.open_ dir in
      Printf.printf "recovery: replayed %d txn(s), skipped %d already in snapshot, discarded %d \
                     tail byte(s)\n"
        r.Durable.replayed r.Durable.skipped r.Durable.discarded_bytes;
      (Some d, Durable.database d)
    | None -> (None, load_db ?par snap file xmark dblp seed)
  in
  (* A long-running process is what the telemetry exists for: metrics
     sink, journal and flight recorder are on for the server's
     lifetime. *)
  Tm_obs.Obs.enable ();
  Tm_obs.Journal.enable ~capacity:journal_cap ();
  Tm_obs.Journal.set_slow_threshold_ms slow_ms;
  if not no_flight then begin
    let dump_path =
      match flight_dump with
      | Some p -> p
      | None -> (
        match wal_dir with
        | Some dir -> Filename.concat dir "flight.dump"
        | None -> "twigql-flight.dump")
    in
    Tm_obs.Flight.enable ();
    Tm_obs.Flight.set_dump_path (Some dump_path)
  end;
  let config =
    {
      Tm_serve.Server.default_config with
      Tm_serve.Server.max_in_flight;
      max_queue;
      request_timeout_ms;
      drain_deadline_ms;
    }
  in
  let server = Tm_serve.Server.create ~port ?durable ~config db in
  (* SIGTERM and Ctrl-C drain gracefully: stop accepting, finish
     in-flight requests under the drain deadline, exit 0. *)
  let on_signal = Sys.Signal_handle (fun _ -> Tm_serve.Server.drain server) in
  ignore (Sys.signal Sys.sigterm on_signal);
  ignore (Sys.signal Sys.sigint on_signal);
  (* SIGQUIT is the post-mortem trigger: dump the flight rings and die
     with the conventional 128+SIGQUIT status. OCaml handlers run at
     safepoints in normal code, not inside the faulting instruction, so
     this is safe for SIGQUIT; a genuine SIGSEGV kills the runtime
     before any OCaml handler could run, which is why the recorder
     offers no SIGSEGV hook. *)
  ignore
    (Sys.signal Sys.sigquit
       (Sys.Signal_handle
          (fun _ ->
            (match Tm_obs.Flight.dump ~reason:"SIGQUIT" with
            | Some p -> Printf.eprintf "twigql serve: flight recorder dumped to %s\n%!" p
            | None -> ());
            exit 131)));
  Printf.printf
    "twigql serve: listening on http://127.0.0.1:%d (/metrics /healthz /journal /slow /query \
     /stats /debug/flight /drain; %d in flight, queue %d)\n%!"
    (Tm_serve.Server.port server)
    max_in_flight max_queue;
  let outcome = Tm_serve.Server.run ?pool:par server in
  (try Option.iter Durable.close durable
   with Durable.Poisoned _ -> () (* poisoned write path: nothing left to sync *));
  match outcome with
  | Tm_serve.Server.Drained ->
    Printf.printf "drained: all in-flight requests completed\n%!";
    exit 0
  | Tm_serve.Server.Stopped -> exit 0
  | Tm_serve.Server.Drain_timed_out n ->
    Printf.eprintf "drain deadline expired with %d request(s) still inside the server\n%!" n;
    exit 1

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve /metrics (Prometheus), /healthz, /journal, /slow, /query, /stats and /drain over \
          HTTP from a loaded database — bounded admission, adaptive load shedding, graceful \
          drain on SIGTERM/Ctrl-C")
    Term.(
      const run_serve $ snap_arg $ file_arg $ xmark_arg $ dblp_arg $ seed_arg $ jobs_arg
      $ port_arg $ journal_cap_arg $ slow_ms_arg $ serve_wal_arg $ max_in_flight_arg
      $ max_queue_arg $ request_timeout_arg $ drain_deadline_arg $ no_flight_arg
      $ flight_dump_arg)

(* ------------------------------------------------------------------ *)
(* blackbox — flight-recorder post-mortems                             *)
(* ------------------------------------------------------------------ *)

let blackbox_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Post-mortem dump file (written on SIGQUIT, breaker-open, ...).")

(* Damage in a post-mortem is expected — the process was dying — but a
   missing header means the file is not a dump at all: exit 2 like any
   other corrupt input. *)
let load_blackbox path =
  match Tm_obs.Flight.load_dump path with
  | d -> d
  | exception Failure msg ->
    Printf.eprintf "twigql blackbox: %s: %s\n" path msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "twigql blackbox: %s\n" msg;
    exit 124

let describe_dump (d : Tm_obs.Flight.dump_file) =
  let events =
    List.fold_left (fun acc (_, es) -> acc + List.length es) 0 d.Tm_obs.Flight.d_domains
  in
  let tm = Unix.localtime d.Tm_obs.Flight.d_time in
  Printf.eprintf "post-mortem v%d from pid %d at %04d-%02d-%02d %02d:%02d:%02d: %s\n"
    d.Tm_obs.Flight.d_version d.Tm_obs.Flight.d_pid (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
    d.Tm_obs.Flight.d_reason;
  Printf.eprintf "%d domain ring(s), %d event(s)%s\n"
    (List.length d.Tm_obs.Flight.d_domains)
    events
    (match d.Tm_obs.Flight.d_damaged with
    | None -> ""
    | Some why -> Printf.sprintf " — truncated by the dying process (%s)" why)

let run_blackbox_render file =
  let d = load_blackbox file in
  describe_dump d;
  print_string (Tm_obs.Flight.render_dump d)

let run_blackbox_dump file out =
  let d = load_blackbox file in
  describe_dump d;
  let chrome =
    Tm_obs.Export.flight_to_chrome (Tm_obs.Flight.merge_events d.Tm_obs.Flight.d_domains)
  in
  match out with
  | None -> print_endline chrome
  | Some f ->
    let oc = open_out_bin f in
    output_string oc chrome;
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "wrote %s (open in chrome://tracing or Perfetto)\n" f

let run_blackbox_tail file n =
  let d = load_blackbox file in
  describe_dump d;
  let events = Tm_obs.Flight.merge_events d.Tm_obs.Flight.d_domains in
  let len = List.length events in
  let t0 = match events with [] -> 0 | e :: _ -> e.Tm_obs.Flight.e_ts_ns in
  List.iteri
    (fun i e ->
      if i >= len - n then print_endline (Tm_obs.Flight.event_to_string ~t0 e))
    events

let blackbox_tail_arg =
  Arg.(value & opt int 40 & info [ "n"; "lines" ] ~docv:"N" ~doc:"Events to show (default 40).")

let blackbox_cmd =
  Cmd.group
    (Cmd.info "blackbox"
       ~doc:
         "Inspect flight-recorder post-mortem dumps: the merged cross-domain event timeline a \
          dying server wrote on SIGQUIT, breaker-open or write-path poisoning")
    [
      Cmd.v
        (Cmd.info "render" ~doc:"Print a dump as a human-readable merged timeline")
        Term.(const run_blackbox_render $ blackbox_file_arg);
      Cmd.v
        (Cmd.info "dump"
           ~doc:"Decode a dump into Chrome trace-event JSON for chrome://tracing / Perfetto")
        Term.(const run_blackbox_dump $ blackbox_file_arg $ trace_out_arg);
      Cmd.v
        (Cmd.info "tail" ~doc:"Show the final N events of a dump's merged timeline")
        Term.(const run_blackbox_tail $ blackbox_file_arg $ blackbox_tail_arg);
    ]

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let run_info snap file xmark dblp seed =
  let db = load_db snap file xmark dblp seed in
  let els, vals, depth, paths = Database.document_stats db in
  Printf.printf "elements/attributes: %d\nvalues: %d\ndepth: %d\ndistinct schema paths: %d\n" els
    vals depth paths;
  Printf.printf "\nindex space (bytes):\n";
  List.iter
    (fun s ->
      Printf.printf "  %-8s %10d\n" (Database.strategy_name s)
        (Database.strategy_size_bytes db s))
    Database.all_strategies

let info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Show document, catalog and index statistics")
    Term.(const run_info $ snap_arg $ file_arg $ xmark_arg $ dblp_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let out_arg =
  Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")

let run_generate xmark dblp seed out =
  let doc = load_doc None xmark dblp seed in
  let oc = open_out_bin out in
  output_string oc (Tm_xml.Xml_tree.to_string doc);
  close_out oc;
  Printf.printf "wrote %s (%d element nodes)\n" out (Tm_xml.Xml_tree.element_count doc)

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a dataset and write it as XML")
    Term.(const run_generate $ xmark_arg $ dblp_arg $ seed_arg $ out_arg)

let run_snapshot file xmark dblp seed out =
  let doc = load_doc file xmark dblp seed in
  let db = Database.create doc in
  Persist.save db out;
  Printf.printf "snapshot written to %s\n" out

(* Frame-level verification: magic, section lengths, CRCs, footer —
   without unmarshalling. Damage raises Bad_snapshot -> exit 2. *)
let run_snapshot_verify path =
  let { Persist.sections } = Persist.verify path in
  Printf.printf "%s: snapshot format v%d, %d sections, frame and checksums ok\n" path
    Persist.version (List.length sections);
  List.iter
    (fun { Persist.name; length; crc } ->
      Printf.printf "  %-10s %10d bytes  crc32 0x%08x\n" name length crc)
    sections

let snapshot_save_term =
  Term.(const run_snapshot $ file_arg $ xmark_arg $ dblp_arg $ seed_arg $ out_arg)

let snapshot_save_cmd =
  Cmd.v (Cmd.info "save" ~doc:"Build a database and save it as a snapshot (atomic rename)")
    snapshot_save_term

let snapshot_verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"Check a snapshot's framing and checksums without loading it")
    Term.(
      const run_snapshot_verify
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"))

let snapshot_cmd =
  Cmd.group ~default:snapshot_save_term
    (Cmd.info "snapshot" ~doc:"Save or verify database snapshots")
    [ snapshot_save_cmd; snapshot_verify_cmd ]

(* ------------------------------------------------------------------ *)
(* wal — the durable write path                                        *)
(* ------------------------------------------------------------------ *)

let dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Database directory.")

let run_wal_init dir file xmark dblp seed force =
  let doc = load_doc file xmark dblp seed in
  let db = Database.create doc in
  match Durable.create ~force ~dir db with
  | d ->
    Printf.printf "initialized %s (snapshot + empty log, %d element nodes)\n" dir
      (Tm_xml.Xml_tree.element_count doc);
    Durable.close d
  | exception Invalid_argument _ ->
    Printf.eprintf
      "twigql wal init: %s already holds a database (its log may carry un-checkpointed \
       transactions); recover it with `wal fsck` or `wal ingest`, or pass --force to overwrite\n"
      dir;
    exit 124

let run_wal_status dir =
  let wpath = Durable.wal_path dir in
  let spath = Durable.snapshot_path dir in
  (match Persist.verify spath with
  | { Persist.sections } ->
    let bytes = List.fold_left (fun acc s -> acc + s.Persist.length) 0 sections in
    Printf.printf "snapshot: %s (%d sections, %d bytes, checksums ok)\n" spath
      (List.length sections) bytes
  | exception Persist.Bad_snapshot msg -> Printf.printf "snapshot: DAMAGED (%s)\n" msg);
  let scan = Tm_wal.Wal.scan wpath in
  let size = if Sys.file_exists wpath then (Unix.stat wpath).Unix.st_size else 0 in
  Printf.printf "log: %s (%d bytes, %d valid frames%s)\n" wpath size
    (List.length scan.Tm_wal.Wal.frames)
    (if scan.Tm_wal.Wal.damaged then
       Printf.sprintf ", DAMAGED tail after byte %d" scan.Tm_wal.Wal.valid_bytes
     else "");
  Printf.printf "committed transactions in log: %d%s\n"
    (List.length scan.Tm_wal.Wal.committed)
    (match List.rev scan.Tm_wal.Wal.committed with
    | last :: _ -> Printf.sprintf " (last txn %d)" last
    | [] -> "");
  Printf.printf "committed prefix: %d bytes; uncommitted/damaged tail: %d bytes\n"
    scan.Tm_wal.Wal.committed_bytes
    (max 0 (size - scan.Tm_wal.Wal.committed_bytes))

let report_recovery (r : Durable.recovery) =
  Printf.printf "recovery: replayed %d txn(s), skipped %d already in snapshot, discarded %d \
                 tail byte(s)\n"
    r.Durable.replayed r.Durable.skipped r.Durable.discarded_bytes

let run_wal_checkpoint dir =
  let d, r = Durable.open_ dir in
  report_recovery r;
  Durable.checkpoint d;
  Printf.printf "checkpoint complete: snapshot at txn %d, log truncated\n"
    (Durable.database d).Database.last_txn;
  Durable.close d

let run_wal_ingest dir count batch seed =
  let d, r = Durable.open_ dir in
  report_recovery r;
  let db = Durable.database d in
  let roots = db.Database.doc.Tm_xml.Xml_tree.roots in
  if Array.length roots = 0 then begin
    Printf.eprintf "twigql wal ingest: empty document\n";
    exit 124
  end;
  let parent = roots.(0).Tm_xml.Xml_tree.id in
  let subtree i =
    Tm_xml.Xml_tree.elem "ingest"
      [ Tm_xml.Xml_tree.elem_text "note" (Printf.sprintf "seed%d-%d" seed i) ]
  in
  let insert i = ignore (Durable.insert_subtree d ~parent (subtree i)) in
  let t0 = Unix.gettimeofday () in
  if batch then Durable.batch d (fun () -> for i = 1 to count do insert i done)
  else for i = 1 to count do insert i done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "ingested %d subtree(s)%s in %.1f ms (last txn %d)\n" count
    (if batch then " (group commit)" else "")
    (1000.0 *. dt) db.Database.last_txn;
  Durable.close d

(* Recover, then run the full offline checker over the recovered
   database: the crash-matrix smoke's final verdict. *)
let run_wal_fsck dir fmt =
  let d, r = Durable.open_ dir in
  report_recovery r;
  let report = Tm_check.Check.check_database (Durable.database d) in
  (match fmt with
  | `Text -> print_endline (Tm_check.Check.report_to_string report)
  | `Json -> print_endline (Tm_check.Check.report_to_json report));
  Durable.close d;
  if not (Tm_check.Check.is_clean report) then exit 1

let wal_force_arg =
  Arg.(
    value & flag
    & info [ "force" ]
        ~doc:
          "Overwrite an existing database in DIR. Without it, init refuses a directory that \
           already holds a snapshot or a non-empty log (its un-checkpointed transactions would \
           be destroyed).")

let wal_count_arg =
  Arg.(value & opt int 100 & info [ "count"; "n" ] ~docv:"N" ~doc:"Subtrees to insert.")

let wal_batch_arg =
  Arg.(value & flag & info [ "batch" ] ~doc:"Group-commit the whole ingest with one fsync.")

let wal_fsck_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Report format: $(b,text) or $(b,json).")

let wal_cmd =
  Cmd.group
    (Cmd.info "wal"
       ~doc:
         "Durable write path: initialize, inspect, checkpoint, ingest into and verify a \
          write-ahead-logged database directory")
    [
      Cmd.v
        (Cmd.info "init" ~doc:"Build a database and make it durable under DIR (snapshot + log)")
        Term.(
          const run_wal_init $ dir_arg $ file_arg $ xmark_arg $ dblp_arg $ seed_arg
          $ wal_force_arg);
      Cmd.v
        (Cmd.info "status" ~doc:"Scan DIR's snapshot framing and log frames without recovering")
        Term.(const run_wal_status $ dir_arg);
      Cmd.v
        (Cmd.info "checkpoint" ~doc:"Recover DIR and fold its log into a fresh snapshot")
        Term.(const run_wal_checkpoint $ dir_arg);
      Cmd.v
        (Cmd.info "ingest" ~doc:"Recover DIR and insert N logged subtrees (optionally batched)")
        Term.(const run_wal_ingest $ dir_arg $ wal_count_arg $ wal_batch_arg $ seed_arg);
      Cmd.v
        (Cmd.info "fsck" ~doc:"Recover DIR and verify every index structure invariant")
        Term.(const run_wal_fsck $ dir_arg $ wal_fsck_format_arg);
    ]

(* ------------------------------------------------------------------ *)
(* fsck                                                                *)
(* ------------------------------------------------------------------ *)

(* Exit codes: 0 = clean, 1 = violations found; cmdliner's usual 124 on
   CLI misuse. Corruption (Corrupt_page, Bad_snapshot) exits 2 via the
   top-level handler. *)
let run_fsck snap file xmark dblp seed strategies jobs fmt =
  with_par jobs @@ fun par ->
  let db =
    match snap with
    | Some path -> Persist.load path
    | None -> (
      let doc = load_doc file xmark dblp seed in
      match strategies with
      | [] -> Database.create ?par doc
      | ss -> Database.create ?par ~strategies:ss doc)
  in
  let report = Tm_check.Check.check_database db in
  (match fmt with
  | `Text -> print_endline (Tm_check.Check.report_to_string report)
  | `Json -> print_endline (Tm_check.Check.report_to_json report));
  if not (Tm_check.Check.is_clean report) then exit 1

let fsck_strategies_arg =
  Arg.(
    value
    & opt_all strategy_conv []
    & info [ "strategy"; "s" ] ~docv:"STRATEGY"
        ~doc:"Verify only these strategies' structures (repeatable; default: all).")

let fsck_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Report format: $(b,text) or $(b,json).")

let fsck_cmd =
  Cmd.v
    (Cmd.info "fsck" ~doc:"Verify index structure invariants (offline checker)")
    Term.(
      const run_fsck $ snap_arg $ file_arg $ xmark_arg $ dblp_arg $ seed_arg
      $ fsck_strategies_arg $ jobs_arg $ fsck_format_arg)

let () =
  let info =
    Cmd.info "twigql" ~version:"1.0.0"
      ~doc:"XML twig matching with relational index structures (Chen et al., ICDE 2005)"
  in
  let group =
    Cmd.group info
      [
        query_cmd;
        explain_cmd;
        plan_cmd;
        compare_cmd;
        metrics_cmd;
        trace_cmd;
        slow_cmd;
        serve_cmd;
        blackbox_cmd;
        info_cmd;
        generate_cmd;
        snapshot_cmd;
        wal_cmd;
        fsck_cmd;
      ]
  in
  (* Typed failure -> distinct exit codes, so scripts and CI can tell
     "corrupt data" (2) and "deadline expired" (3) from CLI misuse. *)
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception Persist.Bad_snapshot msg ->
    Printf.eprintf "twigql: bad snapshot: %s\n" msg;
    exit 2
  | exception Tm_storage.Pager.Corrupt_page { page; detail } ->
    Printf.eprintf "twigql: corrupt page %d: %s\n" page detail;
    exit 2
  | exception Durable.Recovery_error msg ->
    Printf.eprintf "twigql: recovery failed: %s\n" msg;
    exit 2
  | exception Executor.Timeout { ms; stats } ->
    Format.eprintf "twigql: query deadline of %.0f ms expired (partial stats: %a)@." ms
      Tm_exec.Stats.pp stats;
    exit 3
  | exception e ->
    Printf.eprintf "twigql: internal error: %s\n" (Printexc.to_string e);
    Printexc.print_backtrace stderr;
    exit 125
