(** Process-global plan cache keyed by (database generation, normalized
    twig shape); bounded FIFO, domain-safe. Generations are minted per
    database build and bumped on incremental index updates, so an index
    (re)build invalidates exactly that database's cached plans. *)

type stats = { hits : int; misses : int; invalidations : int; size : int }

val find : generation:int -> shape:string -> Plan.t option
(** A hit comes back with [Plan.cached = true]. Counts a hit or miss. *)

val store : generation:int -> shape:string -> Plan.t -> unit
(** Insert (or refresh) a plan, evicting oldest-first at capacity. *)

val invalidate : generation:int -> unit
(** Drop every plan cached for this generation. *)

val clear : unit -> unit
(** Drop everything (all generations); counters survive. *)

val capacity : unit -> int
val set_capacity : int -> unit
(** Default 256 plans. @raise Invalid_argument below 1. *)

val stats : unit -> stats
val reset_stats : unit -> unit
