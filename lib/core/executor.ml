(** Query execution: one physical plan template per indexing strategy,
    mirroring Section 5.1.2 of the paper.

    Every plan follows the same outline — cover the twig with its
    root-to-leaf linear paths (Section 2.3), evaluate each path to a
    binding relation over the twig's branch points plus the output
    node, and stitch the relations together with relational joins —
    but the strategies differ in exactly the ways the paper measures:

    - {b RP} (ROOTPATHS): one index lookup per linear path ([//] heads
      become prefix scans on the reversed schema path); branch-point
      ids come straight out of the stored IdLists; stitching uses
      sort-merge joins.
    - {b DP} (DATAPATHS): evaluates the most selective path as a
      FreeIndex lookup (head = virtual root), then drives
      index-nested-loop joins, probing the BoundIndex with each branch
      id (Section 3.3).
    - {b Edge}: value-index lookup at the leaf, then one join per step
      along the path (backward-link climbs; forward expansion for
      structure-only paths).
    - {b DG+Edge}: DataGuide lookup for structure, value index for the
      predicate, a join to intersect them, then backward-link climbs
      to reach the branch point.
    - {b IF+Edge}: like DG+Edge, but a single Index Fabric lookup
      serves (rooted path, value) pairs.
    - {b ASR}: one relation per rooted schema path; a [//] pattern
      visits one structure per matching path; tuples carry all ids, so
      no climbing is needed.
    - {b JI}: join-index pairs per subpath; intermediate ids require
      one backward/forward lookup per needed position, and [//]
      patterns visit one pair per matching subpath. *)

open Tm_xmldb
open Tm_index
open Tm_query
open Tm_exec

module Cancel = Tm_par.Cancel

(* Pool workers must serve pages at the same epoch as the domain that
   submitted the task: propagate the submitting domain's pin (captured
   at submit time) around every task body. Registration is idempotent
   in effect — capturing an absent pin restores an absent pin. *)
let () =
  Tm_par.Pool.register_propagator (fun () ->
      let pin = Tm_storage.Epoch.capture () in
      { Tm_par.Pool.wrap = (fun f -> Tm_storage.Epoch.restore pin f) })

exception Unknown_tag
(** A query tag absent from the data; the query answer is empty. *)

exception Timeout of { ms : float; stats : Stats.t }
(** The query's deadline expired; [stats] is the work done so far. *)

let () =
  Printexc.register_printer (function
    | Timeout { ms; _ } -> Some (Printf.sprintf "Executor.Timeout(deadline %.0f ms)" ms)
    | _ -> None)

exception Replan_abandoned
(** Internal: a path's actual cardinality blew its estimate past the
    {!Tm_plan.Planner.should_replan} threshold; the coordinator
    abandons the attempt (cancelling in-flight pool tasks through the
    attempt's cancellation token) and re-plans with the observed
    numbers. Never escapes {!run}. *)

type result = {
  ids : int list;
  stats : Stats.t;
  strategy : Database.strategy;  (** the strategy actually executed *)
  reason : string;  (** why (one line; "as requested" for explicit plans) *)
  fallbacks : (Database.strategy * string) list;
      (** strategies abandoned before [strategy], oldest first, each
          with why its index was unusable *)
  via_naive : bool;  (** true when every indexed strategy was unusable
                         and the naive matcher produced the answer *)
  plan : Tm_plan.Plan.t;
      (** the plan in effect when the answer was produced: cover with
          estimated rows, join order, cost comparison; after a
          mid-query replan this is the {e final} plan *)
  replans : int;  (** mid-query plan abandonments before the answer *)
  trace : Tm_obs.Obs.span option;  (** recorded when the obs sink is on *)
  trace_id : int;  (** process-unique query id (journal / log correlation) *)
}

(* Mirrors of the Stats counters in the obs sink (same handles, by name,
   as Tm_joins.Engine uses) so span deltas reconcile against Stats. *)
let c_rows_produced = Tm_obs.Obs.counter "exec.rows_produced"
let c_join_steps = Tm_obs.Obs.counter "exec.join_steps"
let c_fallbacks = Tm_obs.Obs.counter "executor.fallbacks"
let h_query_ms = Tm_obs.Obs.histogram "query.ms"
let row_buckets = [| 1.; 10.; 100.; 1_000.; 10_000.; 100_000. |]
let h_merge_ms = Tm_obs.Obs.histogram "join.merge.ms"
let h_hash_ms = Tm_obs.Obs.histogram "join.hash.ms"
let h_merge_rows = Tm_obs.Obs.histogram ~buckets:row_buckets "join.merge.rows"
let h_hash_rows = Tm_obs.Obs.histogram ~buckets:row_buckets "join.hash.rows"

(* ------------------------------------------------------------------ *)
(* Compiled linear paths                                               *)
(* ------------------------------------------------------------------ *)

type cpath = {
  pattern : Decompose.tag_pattern;  (** (axis, tag id) per step, root-anchored *)
  uids : int array;  (** twig uid per step *)
  value : string option;  (** equality predicate at the leaf *)
  range : Twig.range option;  (** inequality predicate at the leaf *)
  needed_idx : int list;  (** step indices bound into the relation, ascending *)
}

(* Twig range -> Family/Edge bound pairs. *)
let vbounds (r : Twig.range) =
  ( Option.map (fun (b : Twig.bound) -> (b.Twig.bval, b.Twig.binc)) r.Twig.rlo,
    Option.map (fun (b : Twig.bound) -> (b.Twig.bval, b.Twig.binc)) r.Twig.rhi )

let columns_of cp = Array.of_list (List.map (fun i -> cp.uids.(i)) cp.needed_idx)

let compile (db : Database.t) twig =
  let branch_uids = List.map (fun n -> n.Twig.uid) (Twig.branch_nodes twig) in
  let out_uid = (Twig.output_node twig).Twig.uid in
  let keep = out_uid :: branch_uids in
  Decompose.linear_paths twig
  |> List.map (fun (l : Decompose.linear) ->
         let arr = Array.of_list l.Decompose.steps in
         let pattern =
           Array.map
             (fun (s : Decompose.step) ->
               if String.equal s.Decompose.name "*" then (s.Decompose.axis, Decompose.wildcard)
               else
                 match Dictionary.find db.Database.dict s.Decompose.name with
                 | Some t -> (s.Decompose.axis, t)
                 | None -> raise Unknown_tag)
             arr
         in
         let uids = Array.map (fun (s : Decompose.step) -> s.Decompose.uid) arr in
         let needed_idx =
           List.init (Array.length arr) Fun.id
           |> List.filter (fun i -> List.mem uids.(i) keep)
         in
         let needed_idx = if needed_idx = [] then [ Array.length arr - 1 ] else needed_idx in
         { pattern; uids; value = l.Decompose.value; range = l.Decompose.range; needed_idx })

(* Rows from index hits: [positions] maps pattern step -> schema
   position; [id_at] maps schema position -> data node id. *)
let rows_of_match cp ~id_at positions =
  Array.of_list (List.map (fun i -> id_at positions.(i)) cp.needed_idx)

let relation_of_rows cp rows =
  Relation.distinct (Relation.create (columns_of cp) rows)

(* Schema probe for a root-anchored pattern. *)
let schema_probe_of pattern =
  if Decompose.is_pcsubpath pattern && fst pattern.(0) = Twig.Child then
    Family.Exact (Schema_path.of_list (Array.to_list (Array.map snd pattern)))
  else Family.Suffix (Schema_path.of_list (Array.to_list (Decompose.child_suffix pattern)))

(* ------------------------------------------------------------------ *)
(* Shared join pipeline                                                *)
(* ------------------------------------------------------------------ *)

(* One relational join, instrumented: Stats counters always, and — when
   the obs sink is on — a span plus per-algorithm latency / output-row
   histograms. Every join in every plan goes through here. *)
let join_pair ~(stats : Stats.t) ~kind a b =
  stats.Stats.join_steps <- stats.Stats.join_steps + 1;
  Tm_obs.Obs.incr c_join_steps;
  let rows = ref 0 in
  let on_result () =
    stats.Stats.rows_produced <- stats.Stats.rows_produced + 1;
    Tm_obs.Obs.incr c_rows_produced;
    incr rows
  in
  let do_join () =
    match kind with
    | `Merge -> Relation.merge_join ~on_result a b
    | `Hash -> Relation.hash_join ~on_result a b
  in
  if not (Tm_obs.Obs.enabled ()) then do_join ()
  else begin
    let name, h_ms, h_rows =
      match kind with
      | `Merge -> ("join:merge", h_merge_ms, h_merge_rows)
      | `Hash -> ("join:hash", h_hash_ms, h_hash_rows)
    in
    Tm_obs.Obs.with_span name (fun () ->
        let t0 = Monotonic_clock.now () in
        let out = do_join () in
        Tm_obs.Obs.observe h_ms
          (Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6);
        Tm_obs.Obs.observe h_rows (float_of_int !rows);
        Tm_obs.Obs.annotate "rows" (string_of_int !rows);
        out)
  end

let join_all ~(stats : Stats.t) ~kind relations =
  match relations with
  | [] -> invalid_arg "join_all: no relations"
  | r :: rest -> List.fold_left (fun acc r -> join_pair ~stats ~kind acc r) r rest

let finish ~stats ~out_uid relations =
  let joined = join_all ~stats ~kind:`Hash relations in
  Relation.column_values joined out_uid

(* The rendered form of a compiled path, e.g. [//a/b = "v"] — used by
   per-path spans and by {!explain}. *)
let path_label (db : Database.t) cp =
  let tags =
    Array.to_list cp.pattern
    |> List.map (fun (ax, t) ->
           (match ax with Twig.Child -> "/" | Twig.Descendant -> "//")
           ^ if t = Decompose.wildcard then "*" else Dictionary.name db.Database.dict t)
    |> String.concat ""
  in
  tags ^ match cp.value with Some v -> Printf.sprintf " = %S" v | None -> ""

(* Evaluate path [i] of the plan under a "path:N" span annotated with
   the path's pattern and output cardinality. *)
let eval_spanned (db : Database.t) i cp f =
  if not (Tm_obs.Obs.enabled ()) then f ()
  else
    Tm_obs.Obs.with_span
      ~meta:[ ("path", path_label db cp) ]
      (Printf.sprintf "path:%d" (i + 1))
      (fun () ->
        let rel = f () in
        if Tm_obs.Obs.in_trace () then
          Tm_obs.Obs.annotate "rows" (string_of_int (Relation.cardinality rel));
        rel)

(* Evaluate every compiled path to its binding relation — the Section
   5.1.2 per-PCsubpath lookups, which share no state and are the plans'
   natural unit of parallelism. With a pool of more than one job the
   evaluations fan out across domains: each task gets a private
   {!Stats.t} (merged back afterwards) and records its spans under a
   task-local trace whose root the coordinator adopts in path order, so
   [--analyze] shows the same "path:N" tree annotated with the domain
   that ran it. Relation order always matches [cpaths] order.

   [watch i rel] is invoked with each path's index and finished binding
   relation — the mid-query adaptivity probe. It may raise (abandoning
   the attempt); in pool mode the raise propagates out of the task and
   back through [Pool.map]. *)
let eval_paths ?par ?(cancel = Cancel.never) ?watch (db : Database.t) ~(stats : Stats.t) eval
    cpaths =
  let observe i rel = match watch with Some w -> w i rel | None -> () in
  let fan_out pool =
    let record = Tm_obs.Obs.enabled () in
    let results =
      Tm_par.Pool.map pool
        (fun (i, cp) ->
          (* Deadline check at task start: a task that begins after the
             deadline does no work; Pool.await carries the Cancelled
             exception back to the coordinator. *)
          Cancel.check cancel;
          let stats' = Stats.create () in
          let work () =
            let rel = eval ~stats:stats' cp in
            if Tm_obs.Obs.in_trace () then
              Tm_obs.Obs.annotate "rows" (string_of_int (Relation.cardinality rel));
            rel
          in
          if not record then begin
            let rel = work () in
            observe i rel;
            (rel, None, stats')
          end
          else begin
            let rel, span =
              Tm_obs.Obs.trace
                ~meta:
                  [
                    ("path", path_label db cp);
                    ("domain", string_of_int (Domain.self () :> int));
                  ]
                (Printf.sprintf "path:%d" (i + 1))
                work
            in
            observe i rel;
            (rel, span, stats')
          end)
        (List.mapi (fun i cp -> (i, cp)) cpaths)
    in
    List.map
      (fun (rel, span, stats') ->
        (match span with Some s -> Tm_obs.Obs.adopt s | None -> ());
        Stats.merge_into ~into:stats stats';
        rel)
      results
  in
  match par with
  | Some pool when Tm_par.Pool.jobs pool > 1 && List.length cpaths > 1 -> fan_out pool
  | _ ->
    List.mapi
      (fun i cp ->
        Cancel.check cancel;
        let rel = eval_spanned db i cp (fun () -> eval ~stats cp) in
        observe i rel;
        rel)
      cpaths

(* ------------------------------------------------------------------ *)
(* Selectivity estimation (used by DP and JI to pick the driver path)  *)
(* ------------------------------------------------------------------ *)

(* Both now live in the planner layer (Tm_plan.Estimate) so the cost
   model and the physical operators read the same statistics. *)
let catalog_matches catalog pattern = Tm_plan.Estimate.catalog_matches catalog pattern

let estimate (db : Database.t) cp =
  Tm_plan.Estimate.path_cardinality ~catalog:db.Database.catalog ~edge:db.Database.edge
    ~pattern:cp.pattern ~value:cp.value ~range:cp.range

(* ------------------------------------------------------------------ *)
(* ROOTPATHS / DATAPATHS free evaluation of a rooted linear path       *)
(* ------------------------------------------------------------------ *)

(* [head_offset]: 0 for rooted rows (idlist = [i1..ik]); used with
   DATAPATHS head rows where idlist excludes the head. *)
let eval_family_rooted fam ~(stats : Stats.t) ~head cp =
  stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
  let schema = schema_probe_of cp.pattern in
  let on_hit acc (hit : Family.hit) =
    stats.Stats.entries_scanned <- stats.Stats.entries_scanned + 1;
    let schema_tags = Array.of_list (Schema_path.to_list hit.Family.h_schema) in
    let ids = Array.of_list hit.Family.h_ids in
    let id_at p = ids.(p) in
    List.fold_left
      (fun acc positions -> rows_of_match cp ~id_at positions :: acc)
      acc
      (Decompose.match_all cp.pattern schema_tags)
  in
  let rows =
    match cp.range with
    | Some r ->
      let lo, hi = vbounds r in
      Family.scan_value_range fam ?head ~lo ~hi ~schema on_hit []
    | None -> Family.scan fam ?head ~value:cp.value ~schema on_hit []
  in
  relation_of_rows cp rows

let eval_rp fam ~stats cp = eval_family_rooted fam ~stats ~head:None cp
let eval_dp_free fam ~stats cp = eval_family_rooted fam ~stats ~head:(Some 0) cp

(* ------------------------------------------------------------------ *)
(* RP plan: one lookup per path, merge joins on branch points          *)
(* ------------------------------------------------------------------ *)

let run_rp ?par ?cancel ?watch (db : Database.t) fam ~stats ~out_uid cpaths =
  let relations =
    eval_paths ?par ?cancel ?watch db ~stats (fun ~stats cp -> eval_rp fam ~stats cp) cpaths
  in
  let joined = join_all ~stats ~kind:`Merge relations in
  Relation.column_values joined out_uid

(* ------------------------------------------------------------------ *)
(* DP plan: FreeIndex for the most selective path, then INLJ probes    *)
(* ------------------------------------------------------------------ *)

(* Probe DATAPATHS for the part of [cp] at or below step [idx_b],
   rooted at head id [h]. Returns rows over the needed columns at
   steps >= idx_b. *)
let dp_probe fam ~(stats : Stats.t) cp ~idx_b ~h =
  let n = Array.length cp.pattern in
  (* probe pattern: the head's own tag, then the steps below it *)
  let probe_pattern =
    Array.init (n - idx_b) (fun i ->
        if i = 0 then (Twig.Child, snd cp.pattern.(idx_b)) else cp.pattern.(idx_b + i))
  in
  let needed_below = List.filter (fun i -> i >= idx_b) cp.needed_idx in
  stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
  stats.Stats.inlj_probes <- stats.Stats.inlj_probes + 1;
  let schema = schema_probe_of probe_pattern in
  let on_hit acc (hit : Family.hit) =
    stats.Stats.entries_scanned <- stats.Stats.entries_scanned + 1;
    let schema_tags = Array.of_list (Schema_path.to_list hit.Family.h_schema) in
    let ids = Array.of_list hit.Family.h_ids in
    (* schema position 0 is the head itself; ids exclude the head *)
    let id_at p = if p = 0 then h else ids.(p - 1) in
    List.fold_left
      (fun acc positions ->
        Array.of_list (List.map (fun i -> id_at positions.(i - idx_b)) needed_below) :: acc)
      acc
      (Decompose.match_all probe_pattern schema_tags)
  in
  (match cp.range with
  | Some r ->
    let lo, hi = vbounds r in
    Family.scan_value_range fam ~head:h ~lo ~hi ~schema on_hit []
  | None -> Family.scan fam ~head:h ~value:cp.value ~schema on_hit [])
  |> fun rows ->
  let cols = Array.of_list (List.map (fun i -> cp.uids.(i)) needed_below) in
  Relation.distinct (Relation.create cols rows)

let deepest_shared_idx cp bound_cols =
  let rec go best i =
    if i >= Array.length cp.uids then best
    else if Array.exists (( = ) cp.uids.(i)) bound_cols then go (Some i) (i + 1)
    else go best (i + 1)
  in
  go None 0

(* Run the INLJ probes of one path, one per branch binding. With a
   pool, the bindings are fanned out in contiguous chunks: each chunk
   probes with its own Stats (merged back) and records its probe spans
   under a "probes" trace the coordinator adopts beneath the open
   "path:N" span — so analyze output still attributes every probe,
   now labelled with the domain that ran it. *)
let dp_probe_all ?par ?(cancel = Cancel.never) fam ~(stats : Stats.t) cp ~idx_b b_values =
  let sequential () =
    List.rev_map
      (fun h ->
        Cancel.check cancel;
        dp_probe fam ~stats cp ~idx_b ~h)
      b_values
  in
  let fan_out pool =
    let record = Tm_obs.Obs.enabled () in
    let results =
      Tm_par.Pool.map_chunked pool
        (fun hs ->
          (* One deadline check per probe chunk: cancellation latency is
             bounded by a chunk of probes, not the whole binding list. *)
          Cancel.check cancel;
          let stats' = Stats.create () in
          let work () = List.rev_map (fun h -> dp_probe fam ~stats:stats' cp ~idx_b ~h) hs in
          if not record then (work (), None, stats')
          else begin
            let rels, span =
              Tm_obs.Obs.trace
                ~meta:
                  [
                    ("domain", string_of_int (Domain.self () :> int));
                    ("probes", string_of_int (List.length hs));
                  ]
                "probes" work
            in
            (rels, span, stats')
          end)
        b_values
    in
    List.concat_map
      (fun (rels, span, stats') ->
        (match span with Some s -> Tm_obs.Obs.adopt s | None -> ());
        Stats.merge_into ~into:stats stats';
        rels)
      results
  in
  match par with
  | Some pool when Tm_par.Pool.jobs pool > 1 && List.length b_values > 1 -> fan_out pool
  | _ -> sequential ()

(* The join order of an INLJ-style plan: the plan's order when it
   covers exactly these paths (Force/Pin plans may carry none), else
   the estimate sort the executor always used. Elements are (original
   path index, cpath) so adaptivity watches can name the path the plan
   talks about. *)
let indexed_order (db : Database.t) ?order cpaths =
  let arr = Array.of_list cpaths in
  match order with
  | Some o when Array.length o = Array.length arr ->
    Array.to_list (Array.map (fun i -> (i, arr.(i))) o)
  | _ ->
    List.stable_sort
      (fun (_, a) (_, b) -> Int.compare (estimate db a) (estimate db b))
      (List.mapi (fun i cp -> (i, cp)) cpaths)

(* With [use_inlj = false] (an ablation, not a paper strategy), every
   path is evaluated as a FreeIndex lookup and stitched with hash
   joins — DATAPATHS reduced to ROOTPATHS-style planning, isolating the
   contribution of index-nested-loop joins to Figure 12(d). *)
let run_dp ?(use_inlj = true) ?par ?(cancel = Cancel.never) ?watch ?order (db : Database.t)
    fam ~stats ~out_uid cpaths =
  if not use_inlj then
    finish ~stats ~out_uid
      (eval_paths ?par ~cancel ?watch db ~stats
         (fun ~stats cp -> eval_dp_free fam ~stats cp)
         cpaths)
  else
  let observe i rel = match watch with Some w -> w i rel | None -> () in
  match indexed_order db ?order cpaths with
  | [] -> invalid_arg "run_dp: no paths"
  | (oi, first) :: rest ->
    Cancel.check cancel;
    let first_rel = eval_spanned db 0 first (fun () -> eval_dp_free fam ~stats first) in
    observe oi first_rel;
    let acc = ref first_rel in
    List.iteri
      (fun j (oi, cp) ->
        Cancel.check cancel;
        let i = j + 1 in
        let idx_b =
          match deepest_shared_idx cp (Relation.columns !acc) with
          | Some i -> i
          | None ->
            (* No shared bound column: evaluate free and hash join. *)
            -1
        in
        if idx_b < 0 then begin
          let r = eval_spanned db i cp (fun () -> eval_dp_free fam ~stats cp) in
          observe oi r;
          acc := join_pair ~stats ~kind:`Hash !acc r
        end
        else begin
          let b_uid = cp.uids.(idx_b) in
          let b_values = Relation.column_values !acc b_uid in
          let probe_rel =
            eval_spanned db i cp (fun () ->
                let probes = dp_probe_all ?par ~cancel fam ~stats cp ~idx_b b_values in
                List.fold_left
                  (fun rel r ->
                    Relation.create (Relation.columns r) (r.Relation.rows @ rel.Relation.rows))
                  (Relation.empty (Array.of_list (List.map (fun i -> cp.uids.(i))
                     (List.filter (fun i -> i >= idx_b) cp.needed_idx))))
                  probes)
          in
          acc := join_pair ~stats ~kind:`Hash !acc probe_rel
        end)
      rest;
    Relation.column_values !acc out_uid

(* ------------------------------------------------------------------ *)
(* Edge plan: per-step joins                                           *)
(* ------------------------------------------------------------------ *)

(* Bottom-up climb from [leaf] along [cp.pattern], enumerating all
   bindings of pattern steps to the leaf's ancestor chain. One backward
   lookup per level climbed (each is a join with the Edge table). *)
let edge_climb (db : Database.t) ~(stats : Stats.t) cp leaf =
  let edge = db.Database.edge in
  let n = Array.length cp.pattern in
  let parent node =
    stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
    Edge_table.parent_of edge node
  in
  (* bindings: (pattern idx -> node id) partial maps built leaf-up *)
  let results = ref [] in
  (* [go i node binding]: pattern.(i) is bound to [node]; try to bind
     pattern.(i-1..0) to ancestors of [node]. *)
  let rec go i node binding =
    if i = 0 then begin
      (* anchor check: Child root axis requires node's parent = 0 *)
      match fst cp.pattern.(0) with
      | Twig.Descendant -> results := binding :: !results
      | Twig.Child -> (
        match parent node with
        | Some (0, _, _) -> results := binding :: !results
        | _ -> ())
    end
    else
      match parent node with
      | None -> ()
      | Some (p, ptag, _) when p <> 0 -> (
        let axis, _ = cp.pattern.(i) in
        let want_tag = snd cp.pattern.(i - 1) in
        (match axis with
        | Twig.Child ->
          if Decompose.tag_matches want_tag ptag then go (i - 1) p ((i - 1, p) :: binding)
        | Twig.Descendant ->
          (* the ancestor may be any number of levels up: climb one and
             either bind here or keep climbing with the same step *)
          if Decompose.tag_matches want_tag ptag then go (i - 1) p ((i - 1, p) :: binding);
          go i p binding))
      | Some _ -> () (* reached a document root without binding all steps *)
  in
  (* verify the leaf's own tag *)
  (match Edge_table.parent_of edge leaf with
  | Some (_, _, tag) when Decompose.tag_matches (snd cp.pattern.(n - 1)) tag ->
    stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
    go (n - 1) leaf [ (n - 1, leaf) ]
  | _ -> ());
  !results

(* A Descendant step at i=0 with a document root: the node itself can be
   a document root; edge_climb's Child anchor handles roots via parent=0.
   For Descendant, any position is fine. *)

let edge_rows_of_bindings cp bindings =
  List.filter_map
    (fun binding ->
      let find i = List.assoc_opt i binding in
      let cols = List.map find cp.needed_idx in
      if List.for_all Option.is_some cols then
        Some (Array.of_list (List.map Option.get cols))
      else None)
    bindings

(* Top-down evaluation for structure-only paths. *)
let edge_topdown (db : Database.t) ~(stats : Stats.t) cp =
  let edge = db.Database.edge in
  let expand_children node tag =
    stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
    if tag = Decompose.wildcard then Edge_table.all_children edge ~parent:node
    else Edge_table.children_of edge ~parent:node ~tag
  in
  (* all strict descendants of [node] with tag [tag]: matching children
     via the forward link, then recurse into every child *)
  let rec descendants_with_tag node tag acc =
    let acc = List.rev_append (expand_children node tag) acc in
    stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
    List.fold_left
      (fun acc child -> descendants_with_tag child tag acc)
      acc
      (Edge_table.all_children edge ~parent:node)
  in
  let n = Array.length cp.pattern in
  let rec step i frontier =
    (* frontier: (node bound to pattern.(i-1), partial binding) *)
    if i = n then frontier
    else begin
      let axis, tag = cp.pattern.(i) in
      let next =
        List.concat_map
          (fun (node, binding) ->
            let nodes =
              match axis with
              | Twig.Child -> expand_children node tag
              | Twig.Descendant -> descendants_with_tag node tag []
            in
            List.map (fun c -> (c, (i, c) :: binding)) nodes)
          frontier
      in
      stats.Stats.join_steps <- stats.Stats.join_steps + 1;
      step (i + 1) next
    end
  in
  let final = step 0 [ (0, []) ] in
  List.map snd final

let eval_edge_path (db : Database.t) ~(stats : Stats.t) cp =
  let n = Array.length cp.pattern in
  let leaf_tag = snd cp.pattern.(n - 1) in
  (* filter top-down bindings by the leaf's Edge-tuple value *)
  let filter_leaf_value pred bindings =
    List.filter
      (fun binding ->
        match List.assoc_opt (n - 1) binding with
        | Some leaf ->
          stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
          (match Edge_table.node_value db.Database.edge leaf with
          | Some v -> pred v
          | None -> false)
        | None -> false)
      bindings
  in
  let bindings =
    match (cp.value, cp.range) with
    | Some v, _ when leaf_tag <> Decompose.wildcard ->
      stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
      let leaves = Edge_table.lookup_value db.Database.edge ~tag:leaf_tag ~value:v in
      List.concat_map (fun leaf -> edge_climb db ~stats cp leaf) leaves
    | None, Some r when leaf_tag <> Decompose.wildcard ->
      (* value-index range scan, then the usual bottom-up climbs *)
      stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
      let lo, hi = vbounds r in
      let leaves = Edge_table.lookup_value_range db.Database.edge ~tag:leaf_tag ~lo ~hi in
      List.concat_map (fun leaf -> edge_climb db ~stats cp leaf) leaves
    | Some v, _ ->
      (* wildcard leaf with a value predicate: no (tag, value) key
         exists, so expand top-down and filter on the Edge tuple *)
      filter_leaf_value (String.equal v) (edge_topdown db ~stats cp)
    | None, Some r -> filter_leaf_value (Twig.range_matches r) (edge_topdown db ~stats cp)
    | None, None -> edge_topdown db ~stats cp
  in
  relation_of_rows cp (edge_rows_of_bindings cp bindings)

let run_edge ?par ?cancel ?watch db ~stats ~out_uid cpaths =
  finish ~stats ~out_uid
    (eval_paths ?par ?cancel ?watch db ~stats
       (fun ~stats cp -> eval_edge_path db ~stats cp)
       cpaths)

(* ------------------------------------------------------------------ *)
(* DG+Edge and IF+Edge plans                                           *)
(* ------------------------------------------------------------------ *)

(* Climb from a leaf whose full rooted path is a known concrete catalog
   path of [path_len] tags; needed ids sit at known schema positions,
   so the climb is [path_len - 1 - min_needed_pos] backward lookups
   (the paper's "5-way join" when the branch point is 5 levels up). *)
let climb_known_path (db : Database.t) ~(stats : Stats.t) ~path_len ~needed_schema_pos leaf =
  let edge = db.Database.edge in
  let min_pos = List.fold_left min (path_len - 1) needed_schema_pos in
  let chain = Hashtbl.create 8 in
  Hashtbl.replace chain (path_len - 1) leaf;
  let rec up pos node =
    if pos > min_pos then begin
      stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
      match Edge_table.parent_of edge node with
      | Some (p, _, _) ->
        Hashtbl.replace chain (pos - 1) p;
        up (pos - 1) p
      | None -> ()
    end
  in
  up (path_len - 1) leaf;
  if List.for_all (Hashtbl.mem chain) needed_schema_pos then
    Some (List.map (Hashtbl.find chain) needed_schema_pos)
  else None

(* Evaluate one linear path via DataGuide or IndexFabric + Edge climbs.
   [structure_lookup] returns the instance leaf ids of a concrete
   rooted schema path (DG exact lookup); [value_leaf_ids] when the path
   has a value predicate. *)
let eval_guide_path (db : Database.t) ~(stats : Stats.t) ~guide ~fabric cp =
  let use_fabric = fabric <> None in
  let matches = catalog_matches db.Database.catalog cp.pattern in
  let leaf_tag = snd cp.pattern.(Array.length cp.pattern - 1) in
  let value_ids tag =
    stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
    let ids =
      match (cp.value, cp.range) with
      | Some v, _ -> Edge_table.lookup_value db.Database.edge ~tag ~value:v
      | None, Some r ->
        let lo, hi = vbounds r in
        Edge_table.lookup_value_range db.Database.edge ~tag ~lo ~hi
      | None, None -> []
    in
    let set = Hashtbl.create (List.length ids) in
    List.iter (fun i -> Hashtbl.replace set i ()) ids;
    set
  in
  let has_pred = cp.value <> None || cp.range <> None in
  let value_set =
    if not has_pred then None
    else if use_fabric && cp.range = None then
      None (* Index Fabric resolves value + path in one lookup *)
    else if leaf_tag = Decompose.wildcard then None (* per catalog path below *)
    else Some (value_ids leaf_tag)
  in
  let rows =
    List.concat_map
      (fun ((entry : Schema_catalog.entry), positions_list) ->
        (* leaf instances of this concrete rooted path *)
        let leaf_ids =
          if use_fabric && cp.value <> None then begin
            stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
            Family.scan (Option.get fabric) ~value:cp.value
              ~schema:(Family.Exact entry.Schema_catalog.path)
              (fun acc (hit : Family.hit) ->
                stats.Stats.entries_scanned <- stats.Stats.entries_scanned + 1;
                match hit.Family.h_ids with [ id ] -> id :: acc | _ -> acc)
              []
          end
          else if use_fabric && cp.range <> None then begin
            (* Index Fabric key order is (path, value): the range scan
               stays contiguous within this concrete path *)
            stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
            let lo, hi = vbounds (Option.get cp.range) in
            Family.scan_value_range (Option.get fabric) ~lo ~hi
              ~schema:(Family.Exact entry.Schema_catalog.path)
              (fun acc (hit : Family.hit) ->
                stats.Stats.entries_scanned <- stats.Stats.entries_scanned + 1;
                match hit.Family.h_ids with [ id ] -> id :: acc | _ -> acc)
              []
          end
          else begin
            stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
            let structural =
              Family.scan guide ~value:None
                ~schema:(Family.Exact entry.Schema_catalog.path)
                (fun acc (hit : Family.hit) ->
                  stats.Stats.entries_scanned <- stats.Stats.entries_scanned + 1;
                  match hit.Family.h_ids with [ id ] -> id :: acc | _ -> acc)
                []
            in
            match value_set with
            | Some set ->
              (* the DG (struct) |><| value-index join of Section 5.2.1 *)
              stats.Stats.join_steps <- stats.Stats.join_steps + 1;
              List.filter (Hashtbl.mem set) structural
            | None when has_pred && leaf_tag = Decompose.wildcard ->
              (* wildcard leaf: the concrete tag comes from the catalog
                 path this lookup enumerates *)
              let concrete =
                match List.rev (Schema_path.to_list entry.Schema_catalog.path) with
                | t :: _ -> t
                | [] -> assert false
              in
              stats.Stats.join_steps <- stats.Stats.join_steps + 1;
              List.filter (Hashtbl.mem (value_ids concrete)) structural
            | None -> structural
          end
        in
        (* climb to the needed positions along the known concrete path *)
        let path_len = Schema_path.length entry.Schema_catalog.path in
        List.concat_map
          (fun positions ->
            let needed_schema_pos = List.map (fun i -> positions.(i)) cp.needed_idx in
            List.filter_map
              (fun leaf ->
                climb_known_path db ~stats ~path_len ~needed_schema_pos leaf
                |> Option.map Array.of_list)
              leaf_ids)
          positions_list)
      matches
  in
  relation_of_rows cp rows

let run_guide ?par ?cancel ?watch db ~stats ~out_uid ~guide ~fabric cpaths =
  finish ~stats ~out_uid
    (eval_paths ?par ?cancel ?watch db ~stats
       (fun ~stats cp -> eval_guide_path db ~stats ~guide ~fabric cp)
       cpaths)

(* ------------------------------------------------------------------ *)
(* ASR plan                                                            *)
(* ------------------------------------------------------------------ *)

let eval_asr_path (db : Database.t) asrs ~(stats : Stats.t) cp =
  let matches = catalog_matches db.Database.catalog cp.pattern in
  let rows =
    List.concat_map
      (fun ((entry : Schema_catalog.entry), positions_list) ->
        stats.Stats.structures_accessed <- stats.Stats.structures_accessed + 1;
        stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
        let tuples =
          match cp.range with
          | Some r ->
            let lo, hi = vbounds r in
            Asr.scan_relation_range asrs ~path:entry.Schema_catalog.path ~lo ~hi
              (fun acc ids ->
                stats.Stats.entries_scanned <- stats.Stats.entries_scanned + 1;
                Array.of_list ids :: acc)
              []
          | None ->
            Asr.scan_relation asrs ~path:entry.Schema_catalog.path
              ?value:(match cp.value with Some v -> Some (Some v) | None -> Some None)
              (fun acc ids ->
                stats.Stats.entries_scanned <- stats.Stats.entries_scanned + 1;
                Array.of_list ids :: acc)
              []
        in
        List.concat_map
          (fun positions ->
            List.map (fun ids -> rows_of_match cp ~id_at:(fun p -> ids.(p)) positions) tuples)
          positions_list)
      matches
  in
  relation_of_rows cp rows

let run_asr ?par ?cancel ?watch db asrs ~stats ~out_uid cpaths =
  finish ~stats ~out_uid
    (eval_paths ?par ?cancel ?watch db ~stats
       (fun ~stats cp -> eval_asr_path db asrs ~stats cp)
       cpaths)

(* ------------------------------------------------------------------ *)
(* JI plan                                                             *)
(* ------------------------------------------------------------------ *)

(* First (driver) path: candidate leaves from the value index (or all
   pairs of the matching rooted subpaths), then one backward lookup per
   needed position per matching rooted path. *)
let eval_ji_driver (db : Database.t) ji ~(stats : Stats.t) cp =
  let matches = catalog_matches db.Database.catalog cp.pattern in
  let leaf_tag = snd cp.pattern.(Array.length cp.pattern - 1) in
  let leaf_candidates =
    match (cp.value, cp.range) with
    | Some v, _ when leaf_tag <> Decompose.wildcard ->
      stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
      Some (Edge_table.lookup_value db.Database.edge ~tag:leaf_tag ~value:v)
    | None, Some r when leaf_tag <> Decompose.wildcard ->
      stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
      let lo, hi = vbounds r in
      Some (Edge_table.lookup_value_range db.Database.edge ~tag:leaf_tag ~lo ~hi)
    | _ -> None
  in
  (* wildcard leaf with a predicate: filter streamed instances by their
     Edge-tuple value *)
  let value_ok leaf =
    if leaf_tag <> Decompose.wildcard then true
    else
      match (cp.value, cp.range) with
      | None, None -> true
      | _ ->
        stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
        (match Edge_table.node_value db.Database.edge leaf with
        | Some v -> (
          match (cp.value, cp.range) with
          | Some want, _ -> String.equal v want
          | None, Some r -> Twig.range_matches r v
          | None, None -> true)
        | None -> false)
  in
  let rows =
    List.concat_map
      (fun ((entry : Schema_catalog.entry), positions_list) ->
        let path = entry.Schema_catalog.path in
        let plen = Schema_path.length path in
        (* Join-index relations hold every occurrence of a tag sequence,
           not just root-anchored ones, so a rooted-path instance is a
           pair whose head is a document root of the path's first tag. *)
        let doc_roots =
          lazy
            (match Schema_path.to_list path with
            | tag :: _ ->
              stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
              let ids = Edge_table.children_of db.Database.edge ~parent:0 ~tag in
              let set = Hashtbl.create (List.length ids) in
              List.iter (fun i -> Hashtbl.replace set i ()) ids;
              set
            | [] -> Hashtbl.create 0)
        in
        let instances () =
          (* length-1 rooted paths have no join-index pair; their
             instances are the document roots of that tag *)
          if plen = 1 then
            Hashtbl.fold (fun id () acc -> id :: acc) (Lazy.force doc_roots) []
          else begin
            stats.Stats.structures_accessed <- stats.Stats.structures_accessed + 1;
            stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
            Join_index.all_pairs ji ~path
            |> List.filter_map (fun (h, leaf) ->
                   if Hashtbl.mem (Lazy.force doc_roots) h then Some leaf else None)
          end
        in
        let leaves =
          match leaf_candidates with
          | Some ids when plen > 1 ->
            (* keep leaves whose rooted path is this concrete path: the
               unique ancestor at the path's root position must be a
               document root *)
            stats.Stats.structures_accessed <- stats.Stats.structures_accessed + 1;
            List.filter
              (fun leaf ->
                stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
                List.exists
                  (fun h -> Hashtbl.mem (Lazy.force doc_roots) h)
                  (Join_index.backward_lookup ji ~path ~end_:leaf))
              ids
          | Some ids ->
            let roots = Lazy.force doc_roots in
            List.filter (Hashtbl.mem roots) ids
          | None -> List.filter value_ok (instances ())
        in
        let plen = Schema_path.length path in
        List.concat_map
          (fun positions ->
            let needed_schema_pos = List.map (fun i -> positions.(i)) cp.needed_idx in
            List.filter_map
              (fun leaf ->
                (* one backward lookup per needed interior position *)
                let resolve pos =
                  if pos = plen - 1 then Some leaf
                  else begin
                    stats.Stats.structures_accessed <- stats.Stats.structures_accessed + 1;
                    stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
                    match
                      Join_index.backward_lookup ji
                        ~path:(Schema_path.suffix path (plen - pos))
                        ~end_:leaf
                    with
                    | [ h ] -> Some h
                    | h :: _ -> Some h
                    | [] -> None
                  end
                in
                let ids = List.map resolve needed_schema_pos in
                if List.for_all Option.is_some ids then
                  Some (Array.of_list (List.map Option.get ids))
                else None)
              leaves)
          positions_list)
      matches
  in
  relation_of_rows cp rows

(* Subsequent path probed from branch ids: forward lookups along the
   matching materialized subpaths below the branch. *)
let eval_ji_probe (db : Database.t) ji ~(stats : Stats.t) cp ~idx_b ~b_values =
  let n = Array.length cp.pattern in
  let tag_b = snd cp.pattern.(idx_b) in
  let probe_pattern =
    Array.init (n - idx_b) (fun i ->
        if i = 0 then (Twig.Child, tag_b) else cp.pattern.(idx_b + i))
  in
  (* materialized subpath schemas matching the below-branch pattern *)
  let sub_matches p =
    Decompose.match_all probe_pattern (Array.of_list (Schema_path.to_list p)) <> []
  in
  let sub_schemas =
    if tag_b = Decompose.wildcard then
      Join_index.fold_paths ji (fun acc p -> if sub_matches p then p :: acc else acc) []
    else Join_index.subpaths_from ji ~head_tag:tag_b sub_matches
  in
  let leaf_tag = snd cp.pattern.(n - 1) in
  let value_set =
    if leaf_tag = Decompose.wildcard then None (* resolved per leaf via the Edge tuple *)
    else
      match (cp.value, cp.range) with
      | None, None -> None
      | Some v, _ ->
        stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
        let ids = Edge_table.lookup_value db.Database.edge ~tag:leaf_tag ~value:v in
        let set = Hashtbl.create (List.length ids) in
        List.iter (fun i -> Hashtbl.replace set i ()) ids;
        Some set
      | None, Some r ->
        stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
        let lo, hi = vbounds r in
        let ids = Edge_table.lookup_value_range db.Database.edge ~tag:leaf_tag ~lo ~hi in
        let set = Hashtbl.create (List.length ids) in
        List.iter (fun i -> Hashtbl.replace set i ()) ids;
        Some set
  in
  let leaf_value_ok leaf =
    if leaf_tag <> Decompose.wildcard then true
    else
      match (cp.value, cp.range) with
      | None, None -> true
      | _ ->
        stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
        (match Edge_table.node_value db.Database.edge leaf with
        | Some v -> (
          match (cp.value, cp.range) with
          | Some want, _ -> String.equal v want
          | None, Some r -> Twig.range_matches r v
          | None, None -> true)
        | None -> false)
  in
  let needed_below = List.filter (fun i -> i >= idx_b) cp.needed_idx in
  let rows =
    if Array.length probe_pattern = 1 then
      (* the path ends at the branch node itself: only its value
         predicate remains to check; needed_below = [idx_b] *)
      List.filter_map
        (fun b ->
          match value_set with
          | None -> if leaf_value_ok b then Some [| b |] else None
          | Some set -> if Hashtbl.mem set b then Some [| b |] else None)
        b_values
    else
    List.concat_map
      (fun b ->
        List.concat_map
          (fun sub ->
            stats.Stats.structures_accessed <- stats.Stats.structures_accessed + 1;
            stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
            stats.Stats.inlj_probes <- stats.Stats.inlj_probes + 1;
            let leaves = Join_index.forward_lookup ji ~path:sub ~start:b in
            let leaves =
              match value_set with
              | None -> List.filter leaf_value_ok leaves
              | Some set -> List.filter (Hashtbl.mem set) leaves
            in
            let slen = Schema_path.length sub in
            let positions_list =
              Decompose.match_all probe_pattern (Array.of_list (Schema_path.to_list sub))
            in
            List.concat_map
              (fun positions ->
                List.filter_map
                  (fun leaf ->
                    let resolve i =
                      let pos = positions.(i - idx_b) in
                      if pos = 0 then Some b
                      else if pos = slen - 1 then Some leaf
                      else begin
                        stats.Stats.structures_accessed <-
                          stats.Stats.structures_accessed + 1;
                        stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
                        match
                          Join_index.backward_lookup ji
                            ~path:(Schema_path.suffix sub (slen - pos))
                            ~end_:leaf
                        with
                        | h :: _ -> Some h
                        | [] -> None
                      end
                    in
                    let ids = List.map resolve needed_below in
                    if List.for_all Option.is_some ids then
                      Some (Array.of_list (List.map Option.get ids))
                    else None)
                  leaves)
              positions_list)
          sub_schemas)
      b_values
  in
  let cols = Array.of_list (List.map (fun i -> cp.uids.(i)) needed_below) in
  Relation.distinct (Relation.create cols rows)

let run_ji ?(cancel = Cancel.never) ?watch ?order (db : Database.t) ji ~stats ~out_uid cpaths =
  let observe i rel = match watch with Some w -> w i rel | None -> () in
  match indexed_order db ?order cpaths with
  | [] -> invalid_arg "run_ji: no paths"
  | (oi, first) :: rest ->
    Cancel.check cancel;
    let first_rel = eval_spanned db 0 first (fun () -> eval_ji_driver db ji ~stats first) in
    observe oi first_rel;
    let acc = ref first_rel in
    List.iteri
      (fun j (oi, cp) ->
        Cancel.check cancel;
        let i = j + 1 in
        match deepest_shared_idx cp (Relation.columns !acc) with
        | None ->
          let r = eval_spanned db i cp (fun () -> eval_ji_driver db ji ~stats cp) in
          observe oi r;
          acc := join_pair ~stats ~kind:`Hash !acc r
        | Some idx_b ->
          let b_values = Relation.column_values !acc cp.uids.(idx_b) in
          let probe_rel =
            eval_spanned db i cp (fun () -> eval_ji_probe db ji ~stats cp ~idx_b ~b_values)
          in
          acc := join_pair ~stats ~kind:`Hash !acc probe_rel)
      rest;
    Relation.column_values !acc out_uid

(* ------------------------------------------------------------------ *)
(* Cost-based strategy choice (a Lore-style optimizer, paper Section 6) *)
(* ------------------------------------------------------------------ *)

(* The planner's view of the compiled cover — the bridge from physical
   cpaths to [Tm_plan.Planner] inputs. *)
let planner_paths (db : Database.t) cpaths =
  List.map
    (fun cp ->
      {
        Tm_plan.Planner.i_label = path_label db cp;
        i_est = estimate db cp;
        i_len = Array.length cp.pattern;
      })
    cpaths

(* Plan a compiled twig through the cost model, the journal calibration
   and the (generation, shape) plan cache. [overrides] carries observed
   per-path cardinalities during a mid-query replan (bypasses the
   cache). *)
let plan_twig ?(overrides = []) (db : Database.t) ~shape cpaths =
  Tm_plan.Planner.plan ~overrides ~generation:(Database.generation db) ~shape
    ~built:(Database.built_strategies db)
    ~paths:(fun () -> planner_paths db cpaths)
    ()

(** Pick a strategy for [twig] from selectivity estimates — the
    optimizer integration the paper points at ("can thus be used with a
    Lore-style optimizer", Section 6). Returns the chosen strategy and
    a one-line justification; the full {!Tm_plan.Plan.t} comes back on
    every {!run} result. *)
let choose_plan (db : Database.t) twig =
  match compile db twig with
  | exception Unknown_tag -> (Database.RP, "unknown tag: empty result either way")
  | cpaths ->
    let p = plan_twig db ~shape:(Twig.shape twig) cpaths in
    (p.Tm_plan.Plan.strategy, p.Tm_plan.Plan.reason)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* Why an index-based strategy cannot answer this query — the typed
   [Index_unusable] classification behind graceful degradation. Any
   exception outside these classes (a genuine bug) propagates. *)
let classify_unusable = function
  | Database.Index_not_built s ->
    Some (Printf.sprintf "%s index not materialized" (Database.strategy_name s))
  | Tm_storage.Pager.Corrupt_page { page; detail } ->
    Some (Printf.sprintf "corrupt page %d (%s)" page detail)
  | Family.Unsupported msg -> Some ("lossy index variant: " ^ msg)
  | Tm_fault.Fault.Io_error { site; detail } ->
    Some (Printf.sprintf "I/O error at %s after retries (%s)" site detail)
  | _ -> None

(** Evaluate [twig] under [hint] ({!Tm_plan.Hint.Auto} — the cost-based
    planner, the default; [Force s] — one strategy, no adaptivity;
    [Pin p] — a previously obtained plan verbatim). [dp_use_inlj:false]
    disables index-nested-loop joins for DP (ablation). When the obs
    sink is on, the whole evaluation is recorded under a root span
    returned in [trace]. The result carries the {!Tm_plan.Plan.t} that
    produced the answer.

    {b Mid-query adaptivity} (Auto only): each path's finished binding
    relation is checked against the plan's estimate; a path blowing it
    past {!Tm_plan.Planner.should_replan} trips the attempt's
    cancellation token (stopping in-flight pool tasks), and the query
    is re-planned with the observed cardinality — at most
    {!Tm_plan.Planner.max_replans} times, counted in [replans] and the
    journal.

    {b Graceful degradation} (default): when the planned strategy's
    index is unusable — not materialized, a page fails its checksum
    ({!Pager.Corrupt_page}) or I/O keeps failing after the buffer
    pool's retries, or a lossy index variant rejects the query shape
    ({!Family.Unsupported}: [//] under Section 4.2 schema compression,
    or a Section 4.3-pruned head id) — the executor falls back through
    DP, RP and JI, and finally to the naive in-memory matcher, which
    depends on no index at all. Abandoned attempts are recorded in
    [fallbacks] (and in [reason] and the trace); the answer is always
    oracle-correct. [strict:true] disables all fallback and lets the
    first failure propagate typed.

    {b Deadlines}: [deadline_ms] arms a cancellation token checked
    between per-path evaluations and between INLJ probe chunks — on
    the coordinating domain and inside pool tasks alike. Expiry raises
    {!Timeout} carrying the stats of the work already done. Timeouts
    are never caught by fallback or replanning (a slow query is slow
    under every strategy).

    [cancel] is an ambient cancellation token (e.g. a serving layer's
    per-request deadline): it becomes the {e parent} of every
    attempt-scoped token, so tripping it — explicitly or by its own
    deadline — aborts the query with {!Timeout}, while the replan
    machinery cancelling an attempt token never propagates up into the
    caller's token. [deadline_ms] still bounds this call on its own;
    with both, whichever expires first wins.

    [pool] fans the per-path lookups (and DP probe batches) out across
    the given domain pool; [jobs] (used when [pool] is absent) spins up
    an ephemeral pool for just this query — convenient, but a domain
    spawn costs milliseconds, so callers issuing many queries should
    create one pool and pass it. JI plans always run sequentially
    (their probe chain threads bindings from path to path). *)
let run ?(dp_use_inlj = true) ?(hint = Tm_plan.Hint.Auto) ?(strict = false) ?cancel:parent
    ?deadline_ms ?pool ?jobs (db : Database.t) twig =
  let trace_id = Tm_obs.Journal.next_id () in
  let journal_on = Tm_obs.Journal.enabled () in
  let t_start = Monotonic_clock.now () in
  let latency_ms () =
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t_start) /. 1e6
  in
  let jstart =
    if journal_on then
      Some (Tm_obs.Obs.gc_snapshot (), Tm_storage.Buffer_pool.stats db.Database.pool)
    else None
  in
  let jobs_used =
    match pool with
    | Some p -> Tm_par.Pool.jobs p
    | None -> ( match jobs with Some j when j > 1 -> j | Some _ | None -> 1)
  in
  Tm_obs.Flight.emit_traced trace_id Tm_obs.Flight.Query_begin jobs_used 0 "";
  let shape = Twig.shape twig in
  (* Compile once; planning and every (re)plan attempt share the paths. *)
  let compiled = match compile db twig with
    | cpaths -> Some cpaths
    | exception Unknown_tag -> None
  in
  let initial_plan =
    match compiled with
    | None -> (
      match hint with
      | Tm_plan.Hint.Pin p -> p
      | Tm_plan.Hint.Force s -> Tm_plan.Plan.trivial ~shape ~strategy:s "as requested"
      | Tm_plan.Hint.Auto ->
        Tm_plan.Plan.trivial ~shape ~strategy:Database.RP
          "unknown tag: empty result either way")
    | Some cpaths -> (
      match hint with
      | Tm_plan.Hint.Pin p -> p
      | Tm_plan.Hint.Force s -> (
        match Tm_plan.Planner.forced ~shape ~paths:(planner_paths db cpaths) s with
        | p -> p
        | exception e -> (
          (* Estimation reads Edge-table statistics pages; a forced
             strategy can still run without them. *)
          match classify_unusable e with
          | Some _ when not strict -> Tm_plan.Plan.trivial ~shape ~strategy:s "as requested"
          | Some _ | None -> raise e))
      | Tm_plan.Hint.Auto -> (
        match plan_twig db ~shape cpaths with
        | p -> p
        | exception e -> (
          (* If the statistics pages are unusable, degrade to the RP
             default rather than dying in the planner (the fallback
             chain below still covers execution). *)
          match classify_unusable e with
          | Some why when not strict ->
            Tm_plan.Plan.trivial ~shape ~strategy:Database.RP
              ("planner statistics unusable: " ^ why)
          | Some _ | None -> raise e)))
  in
  let stats = Stats.create () in
  let fallbacks = ref [] in
  let note_fallback strategy why =
    fallbacks := (strategy, why) :: !fallbacks;
    Tm_obs.Obs.incr c_fallbacks;
    if Tm_obs.Obs.in_trace () then
      Tm_obs.Obs.annotate
        (Printf.sprintf "fallback:%s" (Database.strategy_name strategy))
        why
  in
  (* --- Mid-query adaptivity state (Auto hints only) --------------- *)
  let adaptive = match hint with Tm_plan.Hint.Auto -> true | _ -> false in
  let replans = ref 0 in
  let replan_notes = ref [] in
  (* Observed (path index, actual rows) pairs accumulated across
     replans; each replanning round feeds them back as overrides. *)
  let observed = ref [] in
  (* The blow-up that tripped the current attempt. Watches run inside
     pool tasks on other domains, and the abandonment may surface at
     the coordinator as [Cancelled] from a sibling task rather than
     [Replan_abandoned] itself — so this atomic, not the exception
     identity, is what distinguishes a replan from a deadline. *)
  let blown = Atomic.make None in
  let watch_for (plan : Tm_plan.Plan.t) cancel i rel =
    let cover = plan.Tm_plan.Plan.cover in
    if i < Array.length cover then begin
      let est = cover.(i).Tm_plan.Plan.p_est in
      let actual = Relation.cardinality rel in
      if Tm_plan.Planner.should_replan ~est ~actual then begin
        ignore (Atomic.compare_and_set blown None (Some (i, est, actual)));
        Cancel.cancel cancel;
        raise Replan_abandoned
      end
    end
  in
  (* The fallback chain: the planned strategy, then the paper's two
     primary plans and JI (complete indices with independent physical
     structures), then the index-free oracle. Every chain member that
     fails for a classified reason is recorded and skipped; anything
     else — including Timeout/Cancelled/Replan_abandoned — propagates
     immediately. *)
  let run_strategy par ~cancel ~watch ~order strategy ~out_uid cpaths =
    match Database.require db strategy with
    | Database.Built_rootpaths fam ->
      run_rp ?par ~cancel ?watch db fam ~stats ~out_uid cpaths
    | Database.Built_datapaths fam ->
      run_dp ~use_inlj:dp_use_inlj ?par ~cancel ?watch ~order db fam ~stats ~out_uid cpaths
    | Database.Built_edge -> run_edge ?par ~cancel ?watch db ~stats ~out_uid cpaths
    | Database.Built_dataguide guide ->
      run_guide ?par ~cancel ?watch db ~stats ~out_uid ~guide ~fabric:None cpaths
    | Database.Built_index_fabric { fabric; dataguide } ->
      run_guide ?par ~cancel ?watch db ~stats ~out_uid ~guide:dataguide
        ~fabric:(Some fabric) cpaths
    | Database.Built_asr asrs -> run_asr ?par ~cancel ?watch db asrs ~stats ~out_uid cpaths
    | Database.Built_ji ji -> run_ji ~cancel ?watch ~order db ji ~stats ~out_uid cpaths
  in
  let attempt_chain par ~cancel ~watch (plan : Tm_plan.Plan.t) ~out_uid cpaths =
    let requested = plan.Tm_plan.Plan.strategy in
    let order = plan.Tm_plan.Plan.join_order in
    let chain =
      requested
      :: List.filter
           (fun s -> not (Tm_plan.Strategy.equal s requested))
           [ Database.DP; Database.RP; Database.Ji ]
    in
    let rec go = function
      | [] ->
        (* Every indexed strategy was unusable: answer from the naive
           in-memory matcher, which touches no index pages at all. *)
        Cancel.check cancel;
        (Tm_query.Naive.query db.Database.doc twig, requested, true)
      | strategy :: rest -> (
        match run_strategy par ~cancel ~watch ~order strategy ~out_uid cpaths with
        | ids -> (ids, strategy, false)
        | exception e -> (
          match classify_unusable e with
          | Some why when not strict ->
            note_fallback strategy why;
            go rest
          | Some _ | None -> raise e))
    in
    go chain
  in
  (* One attempt = one cancellation token scoped to the remaining
     deadline budget, plus (while replans remain) a watch that trips it
     on a blown estimate. *)
  let run_attempt par (plan : Tm_plan.Plan.t) ~out_uid cpaths =
    let remaining =
      match deadline_ms with None -> None | Some ms -> Some (ms -. latency_ms ())
    in
    (match remaining with Some r when r <= 0.0 -> raise Cancel.Cancelled | _ -> ());
    (match parent with Some p -> Cancel.check p | None -> ());
    let watching =
      adaptive
      && !replans < Tm_plan.Planner.max_replans
      && Array.length plan.Tm_plan.Plan.cover > 1
    in
    (* Attempt tokens chain to the caller's [cancel] as parent: the
       request tripping cancels the attempt, but a replan cancelling
       this attempt token leaves the request token untouched. *)
    let cancel =
      match remaining with
      | Some r -> Cancel.with_deadline_ms ?parent r
      | None -> (
        if watching then Cancel.token ?parent ()
        else match parent with Some p -> p | None -> Cancel.never)
    in
    let watch = if watching then Some (watch_for plan cancel) else None in
    attempt_chain par ~cancel ~watch plan ~out_uid cpaths
  in
  let rec execute par (plan : Tm_plan.Plan.t) ~out_uid cpaths =
    match run_attempt par plan ~out_uid cpaths with
    | ids, strategy, via_naive -> (plan, ids, strategy, via_naive)
    | exception (Replan_abandoned | Cancel.Cancelled)
      when (match Atomic.get blown with Some _ -> true | None -> false) ->
      let i, est, actual =
        match Atomic.exchange blown None with Some b -> b | None -> assert false
      in
      incr replans;
      stats.Stats.replans <- stats.Stats.replans + 1;
      observed := (i, actual) :: List.remove_assoc i !observed;
      let note =
        Printf.sprintf "path %d returned %d rows against an estimate of %d" (i + 1)
          actual est
      in
      replan_notes := note :: !replan_notes;
      Tm_obs.Flight.emit Tm_obs.Flight.Replan !replans 0 note;
      if Tm_obs.Obs.in_trace () then
        Tm_obs.Obs.annotate (Printf.sprintf "replan:%d" !replans) note;
      let plan' =
        match plan_twig ~overrides:!observed db ~shape cpaths with
        | p -> p
        | exception e -> (
          match classify_unusable e with
          | Some _ when not strict -> plan (* keep the plan, watch expires below *)
          | Some _ | None -> raise e)
      in
      execute par plan' ~out_uid cpaths
  in
  let run_with par =
    let body () =
      match compiled with
      | None -> (initial_plan, [], initial_plan.Tm_plan.Plan.strategy, false)
      | Some cpaths ->
        let out_uid = (Twig.output_node twig).Twig.uid in
        let plan, ids, strategy, via_naive = execute par initial_plan ~out_uid cpaths in
        (plan, List.sort_uniq compare ids, strategy, via_naive)
    in
    Tm_obs.Obs.trace
      ~meta:
        [
          ("query", Twig.to_string twig);
          ("shape", shape);
          ("strategy", Database.strategy_name initial_plan.Tm_plan.Plan.strategy);
          ("reason", initial_plan.Tm_plan.Plan.reason);
          ("trace", string_of_int trace_id);
          ( "jobs",
            string_of_int (match par with Some p -> Tm_par.Pool.jobs p | None -> 1) );
        ]
      ("query:" ^ Database.strategy_name initial_plan.Tm_plan.Plan.strategy)
      body
  in
  let record_journal ~(plan : Tm_plan.Plan.t) ~strategy ~reason ~fallbacks ~via_naive ~rows
      ~ms outcome =
    match jstart with
    | None -> ()
    | Some (gc0, pool0) ->
      let p1 = Tm_storage.Buffer_pool.stats db.Database.pool in
      let reads = p1.Tm_storage.Buffer_pool.logical_reads - pool0.Tm_storage.Buffer_pool.logical_reads in
      let misses = p1.Tm_storage.Buffer_pool.misses - pool0.Tm_storage.Buffer_pool.misses in
      let hit_rate =
        if reads = 0 then None
        else Some (float_of_int (reads - misses) /. float_of_int reads)
      in
      Tm_obs.Journal.record
        {
          Tm_obs.Journal.j_id = trace_id;
          j_time = Unix.gettimeofday ();
          j_query = Twig.to_string twig;
          j_shape = shape;
          j_requested = Database.strategy_name initial_plan.Tm_plan.Plan.strategy;
          j_strategy = Database.strategy_name strategy;
          j_reason = reason;
          j_fallbacks =
            List.map (fun (s, why) -> (Database.strategy_name s, why)) fallbacks;
          j_via_naive = via_naive;
          j_rows = rows;
          j_est_rows =
            (if Array.length plan.Tm_plan.Plan.cover = 0 then None
             else Some plan.Tm_plan.Plan.est_rows);
          j_replans = !replans;
          j_latency_ms = ms;
          j_pool_hit_rate = hit_rate;
          j_jobs = jobs_used;
          j_txn = db.Database.last_txn;
          j_outcome = outcome;
          j_gc = Tm_obs.Obs.gc_since gc0;
        }
  in
  match
    (* Pin the pager epoch for the whole evaluation: a durable ingest
       committing mid-query publishes a new epoch, but every page this
       query (and its pool workers, via the registered propagator) reads
       is served at the pinned one — the result is consistently pre- or
       post-commit, never torn. *)
    Tm_storage.Epoch.with_pin db.Database.pager (fun () ->
        Tm_obs.Obs.with_context trace_id (fun () ->
            match pool with
            | Some p -> run_with (Some p)
            | None -> (
              match jobs with
              | Some j when j > 1 -> Tm_par.Pool.with_pool ~jobs:j (fun p -> run_with (Some p))
              | Some _ | None -> run_with None)))
  with
  | (final_plan, ids, strategy, via_naive), trace ->
    let fallbacks = List.rev !fallbacks in
    let reason = final_plan.Tm_plan.Plan.reason in
    let reason =
      match List.rev !replan_notes with
      | [] -> reason
      | notes -> Printf.sprintf "%s [%s]" reason (String.concat "; " notes)
    in
    let reason =
      match fallbacks with
      | [] -> reason
      | fs ->
        let steps =
          List.map
            (fun (s, why) -> Printf.sprintf "%s unusable (%s)" (Database.strategy_name s) why)
            fs
        in
        Printf.sprintf "%s; fell back to %s after: %s" reason
          (if via_naive then "naive matcher" else Database.strategy_name strategy)
          (String.concat "; " steps)
    in
    let ms = latency_ms () in
    let rows = List.length ids in
    Tm_obs.Obs.observe h_query_ms ms;
    Tm_obs.Flight.emit_traced trace_id Tm_obs.Flight.Query_end rows !replans "";
    record_journal ~plan:final_plan ~strategy ~reason ~fallbacks ~via_naive ~rows ~ms
      Tm_obs.Journal.Completed;
    {
      ids;
      stats;
      strategy;
      reason;
      fallbacks;
      via_naive;
      plan = final_plan;
      replans = !replans;
      trace;
      trace_id;
    }
  | exception Cancel.Cancelled ->
    let deadline =
      match deadline_ms with
      | Some ms -> ms
      | None -> (
        (* Cancelled through the ambient token: report its budget. *)
        match parent with
        | Some p -> Option.value (Cancel.deadline_ms p) ~default:0.0
        | None -> 0.0)
    in
    Tm_obs.Flight.emit_traced trace_id Tm_obs.Flight.Cancel_deadline
      (int_of_float deadline) 0 "";
    record_journal ~plan:initial_plan ~strategy:initial_plan.Tm_plan.Plan.strategy
      ~reason:initial_plan.Tm_plan.Plan.reason ~fallbacks:(List.rev !fallbacks)
      ~via_naive:false ~rows:0 ~ms:(latency_ms ())
      (Tm_obs.Journal.Timed_out deadline);
    raise (Timeout { ms = deadline; stats })
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    record_journal ~plan:initial_plan ~strategy:initial_plan.Tm_plan.Plan.strategy
      ~reason:initial_plan.Tm_plan.Plan.reason ~fallbacks:(List.rev !fallbacks)
      ~via_naive:false ~rows:0 ~ms:(latency_ms ())
      (Tm_obs.Journal.Failed (Printexc.to_string e));
    Printexc.raise_with_backtrace e bt

(** Evaluate under the cost-chosen strategy; {!run} with
    {!Tm_plan.Hint.Auto}, re-shaped for compatibility. *)
let run_auto (db : Database.t) twig =
  let r = run ~hint:Tm_plan.Hint.Auto db twig in
  (r, r.strategy, r.reason)

(* The physical shape of a strategy's plan, one or two lines. *)
let physical_description add (strategy : Database.strategy) =
  match strategy with
  | Database.RP ->
    add "  one ROOTPATHS lookup per path; extract branch ids from IdLists; sort-merge join"
  | Database.DP ->
    add "  FreeIndex lookup for the most selective path, then BoundIndex";
    add "  index-nested-loop probes per branch binding"
  | Database.Edge -> add "  value-index lookup per valued leaf; one backward-link join per step"
  | Database.DG_edge ->
    add "  DataGuide lookup per matching schema path + value-index join; backward-link climbs"
  | Database.IF_edge ->
    add "  Index Fabric (path,value) lookup per matching schema path; backward-link climbs"
  | Database.Asr ->
    add "  one relation scan per matching rooted schema path; ids taken from tuples"
  | Database.Ji ->
    add "  value-index lookup, then backward/forward join-index probes per matching subpath"

(** Human-readable plan for [twig] under [hint] (default: the planner's
    Auto choice, consulting — and filling — the plan cache). With
    [analyze:true], also executes the query with the obs sink on and
    appends the recorded trace tree — EXPLAIN ANALYZE. *)
let explain ?(analyze = false) ?(hint = Tm_plan.Hint.Auto) (db : Database.t) twig =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "query: %s" (Twig.to_string twig);
  let shape = Twig.shape twig in
  (match compile db twig with
  | exception Unknown_tag ->
    let strategy =
      match hint with
      | Tm_plan.Hint.Force s -> s
      | Tm_plan.Hint.Pin p -> p.Tm_plan.Plan.strategy
      | Tm_plan.Hint.Auto -> Database.RP
    in
    add "strategy: %s" (Database.strategy_name strategy);
    add "plan: empty (a query tag does not occur in the data)"
  | cpaths ->
    let plan =
      match hint with
      | Tm_plan.Hint.Pin p -> p
      | Tm_plan.Hint.Force s ->
        Tm_plan.Planner.forced ~shape ~paths:(planner_paths db cpaths) s
      | Tm_plan.Hint.Auto -> plan_twig db ~shape cpaths
    in
    Buffer.add_string buf (Tm_plan.Plan.to_string plan);
    physical_description (fun s -> add "%s" s) plan.Tm_plan.Plan.strategy);
  if analyze then begin
    let r = Tm_obs.Obs.with_enabled true (fun () -> run ~hint db twig) in
    add "";
    add "EXPLAIN ANALYZE: %d result%s" (List.length r.ids)
      (if List.length r.ids = 1 then "" else "s");
    (match r.trace with
    | Some tr -> Buffer.add_string buf (Tm_obs.Export.trace_to_string tr)
    | None -> ());
    add "stats: %s" (Fmt.str "%a" Stats.pp r.stats)
  end;
  Buffer.contents buf

(** Per-branch result size (the paper's Figures 7-8 column), measured
    with a ROOTPATHS lookup when available, else the naive matcher. *)
let branch_cardinality (db : Database.t) cp =
  (* count matches of the path itself (leaf bindings), not the distinct
     branch-point projection the executor would keep *)
  let cp = { cp with needed_idx = [ Array.length cp.pattern - 1 ] } in
  match Database.find_rootpaths db with
  | Some fam ->
    let stats = Stats.create () in
    Relation.cardinality (eval_family_rooted fam ~stats ~head:None cp)
  | None -> estimate db cp

(** The per-branch result sizes of a twig (one entry per linear path),
    reproducing the "Result Size Per Branch" column of Figures 7-8. *)
let path_cardinalities (db : Database.t) twig =
  match compile db twig with
  | exception Unknown_tag -> []
  | cpaths -> List.map (branch_cardinality db) cpaths
