(** A twig-indexed XML database: one document (forest), one shared
    storage substrate, and the seven indexing strategies of the paper's
    evaluation built side by side over it.

    Strategies (paper Section 5.1.2):
    - [RP]      — ROOTPATHS index, merge/hash-join plans
    - [DP]      — DATAPATHS index, index-nested-loop-join plans
    - [Edge]    — Edge table with value / forward-link / backward-link indices
    - [DG_edge] — simulated DataGuide for structure + Edge for values/climbs
    - [IF_edge] — simulated Index Fabric for (path, value) + Edge for climbs
    - [Asr]     — Access Support Relations (one relation per rooted schema path)
    - [Ji]      — Join Indices (two B+-trees per subpath schema path) *)

open Tm_storage
open Tm_xmldb
open Tm_index

(* The planner layer owns the strategy enum; this transparent
   re-export keeps [Database.RP] et al. valid for every existing
   caller while letting [Tm_plan] talk about strategies without
   depending on the core. *)
type strategy = Tm_plan.Strategy.t = RP | DP | Edge | DG_edge | IF_edge | Asr | Ji

let all_strategies = Tm_plan.Strategy.all
let strategy_name = Tm_plan.Strategy.name

(* Deprecated in favor of [Tm_plan.Hint.of_string]; kept for callers
   that need a strategy rather than a hint (sizing, ablations). *)
let strategy_of_string = Tm_plan.Strategy.of_string

type t = {
  doc : Tm_xml.Xml_tree.document;
  dict : Dictionary.t;
  catalog : Schema_catalog.t;
  pager : Pager.t;
  pool : Buffer_pool.t;
  edge : Edge_table.t;
  rootpaths : Family.t option;
  datapaths : Family.t option;
  dataguide : Family.t option;
  index_fabric : Family.t option;
  asr_rels : Asr.t option;
  ji : Join_index.t option;
  mutable next_id : int;  (** next node id for subtree insertion *)
  mutable generation : int;  (** index generation (plan-cache invalidation key) *)
  mutable last_txn : int;
      (** highest durably committed transaction id folded into this
          image (0 = never durably updated); maintained by the durable
          write path and marshalled with the snapshot so recovery knows
          which logged transactions are already applied *)
}

(* Generations are process-unique across databases, so the shared plan
   cache can never serve one database's plan to another. *)
let generation_counter = Atomic.make 1
let fresh_generation () = Atomic.fetch_and_add generation_counter 1

(** Build a database over [doc].

    @param strategies which index sets to materialize (default: all).
      The Edge table is always built — it is the base storage format
      (paper Section 5.1) and supplies the planner's value-frequency
      statistics.
    @param pool_capacity buffer-pool frames (default 4096, ~32 MB of
      8 KiB pages — scaled-down analogue of the paper's 40 MB pool).
    @param idlist_codec [`Delta] differential IdList encoding (default)
      or [`Raw] (Section 4.1 ablation) for ROOTPATHS/DATAPATHS.
    @param schema_compressed use the Section 4.2 dictionary-encoded
      schema-path keys for ROOTPATHS/DATAPATHS (disables [//]).
    @param head_filter Section 4.3 HeadId pruning predicate for
      DATAPATHS.
    @param par domain pool for parallel family-index construction
      (entry generation and sorting fan out; ASR/JI builds stay
      sequential). The built indices are byte-identical to a
      sequential build. *)
let create ?(strategies = all_strategies) ?(pool_capacity = 4096) ?(page_size = 8192)
    ?(checksums = true) ?(idlist_codec = `Delta) ?(schema_compressed = false) ?head_filter ?par
    doc =
  let pager = Pager.create ~page_size ~checksums () in
  let pool = Buffer_pool.create ~capacity:pool_capacity pager in
  let dict = Dictionary.create () in
  let catalog = Schema_catalog.build dict doc in
  let edge = Edge_table.build pool dict doc in
  let want s = List.mem s strategies in
  let build_family config =
    Family.build ~idlist_codec ?head_filter ?par ~pool ~dict ~catalog config doc
  in
  let rp_config = if schema_compressed then Family.rootpaths_schema_compressed else Family.rootpaths in
  let dp_config = if schema_compressed then Family.datapaths_schema_compressed else Family.datapaths in
  {
    doc;
    dict;
    catalog;
    pager;
    pool;
    edge;
    rootpaths = (if want RP then Some (build_family rp_config) else None);
    datapaths = (if want DP then Some (build_family dp_config) else None);
    (* IF+Edge plans fall back to the DataGuide for structure-only
       branches (the paper's "best of several plans" for Index Fabric),
       so requesting IF_edge also materializes the DataGuide. *)
    dataguide =
      (if want DG_edge || want IF_edge then Some (build_family Family.dataguide) else None);
    index_fabric = (if want IF_edge then Some (build_family Family.index_fabric) else None);
    asr_rels = (if want Asr then Some (Asr.build ~pool ~dict ~catalog doc) else None);
    ji = (if want Ji then Some (Join_index.build ~pool ~dict ~catalog doc) else None);
    next_id = doc.Tm_xml.Xml_tree.node_count;
    generation = fresh_generation ();
    last_txn = 0;
  }

(** The strategies whose index sets are materialized in [t]. *)
let built_strategies t =
  List.filter
    (fun s ->
      match s with
      | RP -> Option.is_some t.rootpaths
      | DP -> Option.is_some t.datapaths
      | Edge -> true
      | DG_edge -> Option.is_some t.dataguide
      | IF_edge -> Option.is_some t.index_fabric
      | Asr -> Option.is_some t.asr_rels
      | Ji -> Option.is_some t.ji)
    all_strategies

let find_rootpaths t = t.rootpaths
let find_datapaths t = t.datapaths
let find_dataguide t = t.dataguide
let find_index_fabric t = t.index_fabric
let find_asr_rels t = t.asr_rels
let find_ji t = t.ji

exception Index_not_built of strategy

let () =
  Printexc.register_printer (function
    | Index_not_built s ->
      Some
        (Printf.sprintf
           "Index_not_built(%s): the %s index set was not materialized for this database \
            (pass it in ~strategies to Database.create)"
           (strategy_name s) (strategy_name s))
    | _ -> None)

type built =
  | Built_rootpaths of Family.t
  | Built_datapaths of Family.t
  | Built_edge  (** the Edge table is part of every database *)
  | Built_dataguide of Family.t
  | Built_index_fabric of { fabric : Family.t; dataguide : Family.t }
  | Built_asr of Asr.t
  | Built_ji of Join_index.t

(* The one checked gateway from a strategy to its physical structures:
   callers destructure the result instead of dereferencing options. *)
let require t strategy =
  let need s = function Some x -> x | None -> raise (Index_not_built s) in
  match strategy with
  | RP -> Built_rootpaths (need RP t.rootpaths)
  | DP -> Built_datapaths (need DP t.datapaths)
  | Edge -> Built_edge
  | DG_edge -> Built_dataguide (need DG_edge t.dataguide)
  | IF_edge ->
    Built_index_fabric
      { fabric = need IF_edge t.index_fabric; dataguide = need IF_edge t.dataguide }
  | Asr -> Built_asr (need Asr t.asr_rels)
  | Ji -> Built_ji (need Ji t.ji)

(** Index space attributable to a strategy, in bytes (Figure 9's
    accounting: Edge-based strategies include the Edge table and its
    indices; RP/DP/ASR/JI are the index structures alone). *)
let strategy_size_bytes t strategy =
  match require t strategy with
  | Built_rootpaths f | Built_datapaths f -> Family.size_bytes f
  | Built_edge -> Edge_table.size_bytes t.edge
  | Built_dataguide f -> Edge_table.size_bytes t.edge + Family.size_bytes f
  | Built_index_fabric { fabric; _ } ->
    Edge_table.size_bytes t.edge + Family.size_bytes fabric
  | Built_asr a -> Asr.size_bytes a
  | Built_ji j -> Join_index.size_bytes j

(** Simulate a cold cache (drops every buffered page). *)
let drop_caches t = Buffer_pool.clear t.pool

let generation t = t.generation

(** The indexes changed (incremental update, rebuild): drop this
    database's cached plans and mint a fresh generation so stale plans
    cannot be served. *)
let note_index_change t =
  Tm_plan.Cache.invalidate ~generation:t.generation;
  t.generation <- fresh_generation ()

let document_stats t =
  let module T = Tm_xml.Xml_tree in
  ( T.element_count t.doc,
    T.value_count t.doc,
    T.depth t.doc,
    Schema_catalog.path_count t.catalog )
