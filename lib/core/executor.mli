(** Query execution: one physical plan template per indexing strategy
    (paper Section 5.1.2). Every plan covers the twig with its linear
    root-to-leaf paths, evaluates each to a binding relation over the
    branch points and the output node, and stitches the relations with
    relational joins — using exactly the access paths and join
    algorithms the paper attributes to each strategy. *)

exception Timeout of { ms : float; stats : Tm_exec.Stats.t }
(** Raised by {!run} when its [deadline_ms] expires: [ms] is the
    deadline that was set, [stats] the work completed before expiry. *)

type result = {
  ids : int list;  (** sorted distinct data-node ids of the output node *)
  stats : Tm_exec.Stats.t;
  strategy : Database.strategy;  (** the strategy actually executed *)
  reason : string;
      (** one-line justification ("as requested" for explicit plans,
          the optimizer's cost comparison under [`Auto]; extended with
          the fallback story when degradation occurred) *)
  fallbacks : (Database.strategy * string) list;
      (** strategies abandoned before [strategy] answered, oldest
          first, each with why its index was unusable (empty on the
          healthy path) *)
  via_naive : bool;
      (** [true] when every indexed strategy was unusable and the
          answer came from the naive in-memory matcher; [strategy] then
          holds the originally planned strategy *)
  trace : Tm_obs.Obs.span option;
      (** the query's span tree, recorded when the {!Tm_obs.Obs} sink
          is enabled ([None] otherwise) *)
  trace_id : int;
      (** process-unique query id, assigned unconditionally; the
          {!Tm_obs.Journal} entry (when journaling is on), the root
          span's [trace] meta, and warnings raised during execution
          all carry it *)
}

val run :
  ?dp_use_inlj:bool ->
  ?plan:[ `Strategy of Database.strategy | `Auto ] ->
  ?strict:bool ->
  ?deadline_ms:float ->
  ?pool:Tm_par.Pool.t ->
  ?jobs:int ->
  Database.t ->
  Tm_query.Twig.t ->
  result
(** Evaluate a twig under [plan]: an explicit strategy, or [`Auto]
    (default) for the cost-based {!choose_plan} choice. Query tags
    absent from the data yield an empty result. [dp_use_inlj:false]
    (default true) disables index-nested-loop joins for the DP
    strategy — an ablation isolating the Figure 12(d) effect.

    {b Graceful degradation} (default, [strict:false]): when the
    planned strategy's index is unusable — not materialized, corrupt
    ({!Tm_storage.Pager.Corrupt_page} from a checksum failure), failing
    I/O after the buffer pool's retries, or a lossy variant rejecting
    the query shape ({!Tm_index.Family.Unsupported}: [//] under Section
    4.2 schema compression, a Section 4.3-pruned head id) — execution
    falls back through DP, RP and JI to the naive in-memory matcher.
    Abandoned attempts are listed in [fallbacks] and narrated in
    [reason]; answers remain oracle-identical. With [strict:true] the
    first such failure propagates typed instead.

    [deadline_ms] arms a per-query deadline, checked between per-path
    evaluations and INLJ probe chunks (including inside pool tasks);
    expiry raises {!Timeout} with partial stats. Timeouts are never
    absorbed by fallback.

    [pool] fans the independent per-path index lookups (and DP's INLJ
    probe batches) out across a domain pool, joining the binding
    relations as they complete; results are identical to a sequential
    run. [jobs] (only consulted when [pool] is absent) creates an
    ephemeral pool for this one query — for repeated queries, create a
    {!Tm_par.Pool.t} once and pass [pool]. JI plans run sequentially.
    @raise Timeout when [deadline_ms] expires.
    @raise Tm_index.Family.Unsupported ([strict] only) when the
    strategy's index cannot answer the query shape.
    @raise Database.Index_not_built ([strict] only) when the strategy's
    index set was not materialized at {!Database.create} time.
    @raise Tm_storage.Pager.Corrupt_page ([strict] only) when an index
    page fails its checksum. *)

val path_cardinalities : Database.t -> Tm_query.Twig.t -> int list
(** Per-branch result sizes (the "Result Size Per Branch" column of
    Figures 7-8), one per linear path. *)

val choose_plan : Database.t -> Tm_query.Twig.t -> Database.strategy * string
(** Cost-based choice between the RP (merge join) and DP (INLJ) plans
    from the pre-collected selectivity statistics — the Lore-style
    optimizer integration of paper Section 6. Returns the strategy and
    a one-line justification. *)

val run_auto : Database.t -> Tm_query.Twig.t -> result * Database.strategy * string
(** Compatibility alias for [run ~plan:`Auto]; the strategy and reason
    are duplicated from the {!result}. Requires ROOTPATHS and DATAPATHS
    to be built. *)

val explain : ?analyze:bool -> Database.t -> Database.strategy -> Tm_query.Twig.t -> string
(** Human-readable plan description: the linear paths with selectivity
    estimates and the strategy's physical plan shape. With
    [analyze:true] the query is also executed with the obs sink
    enabled, and the recorded span tree (per-path and per-join timings,
    buffer-pool hit rates, row counts) plus the executor statistics are
    appended — EXPLAIN ANALYZE. *)
