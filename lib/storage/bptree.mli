(** Disk-oriented B+-tree over byte-string keys and payloads — the
    access method realizing every member of the paper's index family.

    - Duplicate keys are allowed; entries with equal keys are returned
      in key order by scans (payload order across leaf boundaries is
      unspecified; {!lookup_all} sorts).
    - Nodes live in fixed-size pages accessed through a {!Buffer_pool},
      so operations incur realistic page costs. A decoded-node cache
      avoids re-parsing buffered pages; I/O accounting is unaffected.
    - Leaves optionally front-code keys (prefix compression), the
      feature the paper credits for B+-tree space efficiency on path
      keys.
    - Deletion is lazy (no rebalancing).
    - Concurrent {e readers} are safe (the decode cache is locked and
      page reads go through the striped buffer pool); writes must not
      overlap any other access, as inserts mutate cached nodes in
      place. *)

type t

val create : ?prefix_compression:bool -> name:string -> Buffer_pool.t -> t
(** Empty tree. [prefix_compression] defaults to [true]. *)

val bulk_load :
  ?prefix_compression:bool ->
  ?fill:float ->
  name:string ->
  Buffer_pool.t ->
  (string * string) list ->
  t
(** Bottom-up build from entries sorted by (key, payload); leaves are
    packed to [fill] (default 0.9) of a page.
    @raise Invalid_argument on unsorted input or an oversized entry. *)

val name : t -> string
val entry_count : t -> int
val page_count : t -> int
val size_bytes : t -> int
val height : t -> int

val insert : t -> string -> string -> unit
(** Insert an entry. @raise Invalid_argument if the entry cannot fit in
    a quarter page. *)

val delete : t -> string -> string -> bool
(** Remove one entry equal to (key, payload); returns whether one was
    found. *)

val fold_range : t -> lo:string -> hi:string option -> ('a -> string -> string -> 'a) -> 'a -> 'a
(** Fold over entries with [lo <= key < hi] in key order ([hi = None]
    is unbounded). *)

val iter_range : t -> lo:string -> hi:string option -> (string -> string -> unit) -> unit

val fold_prefix : t -> prefix:string -> ('a -> string -> string -> 'a) -> 'a -> 'a
(** Fold over entries whose key starts with [prefix] — the B+-tree
    prefix scan behind the paper's reversed-schema-path [//] support. *)

val iter_prefix : t -> prefix:string -> (string -> string -> unit) -> unit

val lookup_all : t -> string -> string list
(** Sorted payloads of all entries with exactly this key. *)

val lookup_first : t -> string -> string option
val count_range : t -> lo:string -> hi:string option -> int
val count_prefix : t -> prefix:string -> int

val to_list : t -> (string * string) list
(** All entries in key order. *)

val check_invariants : t -> int
(** Walk the tree checking ordering, fanout and balance invariants;
    returns the entry count. @raise Failure on violation. Testing
    hook; {!Tm_check.Check} is the structured offline verifier. *)

(** {1 Raw page views}

    Fsck support: the offline verifier ({!Tm_check.Check}) must read
    what is actually stored, bypassing the decoded-node cache, and
    re-encode it to verify the front-coding round-trip. *)

type view =
  | Leaf_view of { entries : (string * string) array; next : int option (** next leaf page *) }
  | Internal_view of { keys : string array; children : int array }

val root_page : t -> int
val pool : t -> Buffer_pool.t

val page_image : t -> int -> string
(** The stored page image, as the pager holds it (zero-padded to the
    page size). @raise Invalid_argument on a bad page id. *)

val view_page : t -> int -> (view, string) result
(** Decode a stored page image afresh (no cache). [Error] carries the
    decoder's complaint for undecodable images. *)

val encode_view : t -> view -> string
(** Canonical encoding of a view under this tree's settings — what the
    page image must equal (up to zero padding) if storage is sound. *)
