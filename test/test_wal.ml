(* Tests for the durable write path: WAL frame codec, damaged-log
   scanning, logged transactions with crash recovery (a kill matrix at
   every frame boundary and mid-frame), group commit, checkpointing,
   and failpoint-driven commit poisoning. *)

open Twigmatch
module T = Tm_xml.Xml_tree
module Wal = Tm_wal.Wal
module Fault = Tm_fault.Fault
module Check = Tm_check.Check

let check = Alcotest.check

(* ---------- temp-directory and file helpers ---------- *)

let fresh_dir () =
  let path = Filename.temp_file "twigwal" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ---------- document and query helpers ---------- *)

let book_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem_text "title" "XML";
          T.elem "allauthors"
            [
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "poe" ];
              T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "doe" ];
            ];
          T.elem_text "year" "2000";
        ];
    ]

let find_id doc name =
  T.fold doc (fun acc n -> if T.label_name n = name && acc = None then Some n.T.id else acc) None
  |> Option.get

let run_ids db xpath =
  let twig = Tm_query.Xpath_parser.parse xpath in
  (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig).Executor.ids

let note_count db = List.length (run_ids db "//note")

(* Every built strategy agrees with the naive matcher on the recovered
   document. *)
let check_consistent db label =
  List.iter
    (fun xpath ->
      let twig = Tm_query.Xpath_parser.parse xpath in
      let expected = Tm_query.Naive.query db.Database.doc twig in
      List.iter
        (fun s ->
          check
            Alcotest.(list int)
            (Printf.sprintf "%s: %s under %s" label xpath (Database.strategy_name s))
            expected
            (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids)
        (Database.built_strategies db))
    [ "/book"; "//author[ln = 'doe']"; "//note"; "//fn"; "/book//v" ]

let assert_fsck_clean label db =
  let report = Check.check_database db in
  if not (Check.is_clean report) then
    Alcotest.failf "%s: fsck found violations:\n%s" label (Check.report_to_string report)

(* ---------- WAL frame codec and scanning ---------- *)

let fixture_frames =
  [
    Wal.Checkpoint 0;
    Wal.Begin 1;
    Wal.Op (1, "op-bytes \x00\xff binary");
    Wal.Page { txn = 1; page = 3; crc = 0xDEADBEE; image = String.init 64 Char.chr };
    Wal.Commit 1;
    Wal.Begin 2;
    Wal.Op (2, "");
    Wal.Commit 2;
  ]

let frame_pp fmt (f : Wal.frame) =
  match f with
  | Wal.Begin t -> Format.fprintf fmt "Begin %d" t
  | Wal.Op (t, p) -> Format.fprintf fmt "Op (%d, %S)" t p
  | Wal.Page { txn; page; crc; image } ->
    Format.fprintf fmt "Page {txn=%d; page=%d; crc=%d; %d image bytes}" txn page crc
      (String.length image)
  | Wal.Commit t -> Format.fprintf fmt "Commit %d" t
  | Wal.Checkpoint t -> Format.fprintf fmt "Checkpoint %d" t

let frame_t : Wal.frame Alcotest.testable = Alcotest.testable frame_pp ( = )

let encoded frames = String.concat "" (List.map Wal.encode_frame frames)

let test_codec_roundtrip () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "log" in
  let bytes = encoded fixture_frames in
  write_file path bytes;
  let s = Wal.scan path in
  check (Alcotest.list frame_t) "frames" fixture_frames s.Wal.frames;
  check Alcotest.(list int) "committed" [ 1; 2 ] s.Wal.committed;
  check Alcotest.bool "undamaged" false s.Wal.damaged;
  check Alcotest.int "valid bytes" (String.length bytes) s.Wal.valid_bytes;
  check Alcotest.int "committed bytes" (String.length bytes) s.Wal.committed_bytes

let test_missing_file_scans_empty () =
  with_dir @@ fun dir ->
  let s = Wal.scan (Filename.concat dir "absent") in
  check (Alcotest.list frame_t) "no frames" [] s.Wal.frames;
  check Alcotest.bool "undamaged" false s.Wal.damaged;
  check Alcotest.int "no bytes" 0 s.Wal.committed_bytes

let test_torn_tail_scan_and_truncate () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "log" in
  let bytes = encoded fixture_frames in
  (* Cut inside the last Commit frame: txn 2 loses its commit. *)
  write_file path (String.sub bytes 0 (String.length bytes - 5));
  let s = Wal.scan path in
  check Alcotest.bool "damaged" true s.Wal.damaged;
  check Alcotest.(list int) "only txn 1 committed" [ 1 ] s.Wal.committed;
  let full_prefix = encoded (List.filteri (fun i _ -> i < 5) fixture_frames) in
  check Alcotest.int "committed prefix ends at Commit 1" (String.length full_prefix)
    s.Wal.committed_bytes;
  (* Recovery's truncation leaves a clean log holding exactly the
     committed prefix. *)
  Wal.truncate path s.Wal.committed_bytes;
  let s2 = Wal.scan path in
  check Alcotest.bool "clean after truncate" false s2.Wal.damaged;
  check Alcotest.int "five frames survive" 5 (List.length s2.Wal.frames);
  check Alcotest.(list int) "committed unchanged" [ 1 ] s2.Wal.committed

let test_bitflip_stops_scan () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "log" in
  let bytes = encoded fixture_frames in
  (* Flip one bit inside the Page frame's image: txn 1's commit sits
     after the damage, so nothing is committed any more. *)
  let upto_page = String.length (encoded (List.filteri (fun i _ -> i < 3) fixture_frames)) in
  let b = Bytes.of_string bytes in
  let pos = upto_page + 20 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
  write_file path (Bytes.to_string b);
  let s = Wal.scan path in
  check Alcotest.bool "damaged" true s.Wal.damaged;
  check Alcotest.(list int) "no commits survive" [] s.Wal.committed;
  check Alcotest.int "valid prefix stops before the flipped frame" upto_page s.Wal.valid_bytes

(* ---------- logical-operation codec ---------- *)

let rec render (n : T.node) =
  match n.T.label with
  | T.Value v -> Printf.sprintf "=%S" v
  | T.Elem name | T.Attr name ->
    Printf.sprintf "%s%s(%s)"
      (match n.T.label with T.Attr _ -> "@" | _ -> "")
      name
      (String.concat "," (Array.to_list (Array.map render n.T.children)))

let test_op_codec_roundtrip () =
  let subtree =
    T.elem "a" [ T.attr "k" "v\x00w"; T.elem_text "b" "x"; T.elem "c" []; T.text "loose" ]
  in
  (match Durable.decode_op (Durable.encode_op (Durable.Insert { parent = 7; subtree })) with
  | Durable.Insert { parent; subtree = s } ->
    check Alcotest.int "parent" 7 parent;
    check Alcotest.string "subtree shape" (render subtree) (render s)
  | Durable.Delete _ -> Alcotest.fail "insert decoded as delete");
  (match Durable.decode_op (Durable.encode_op (Durable.Delete 42)) with
  | Durable.Delete id -> check Alcotest.int "delete id" 42 id
  | Durable.Insert _ -> Alcotest.fail "delete decoded as insert");
  match Durable.decode_op "garbage" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "garbage payload should be rejected"

(* ---------- durable transactions: roundtrip, recovery, checkpoint ---------- *)

let test_durable_roundtrip () =
  with_dir @@ fun dir ->
  let db = Database.create ~strategies:Database.[ RP; DP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  let book = find_id db.Database.doc "book" in
  let note i = T.elem "note" [ T.elem_text "v" (string_of_int i) ] in
  let id1 = Durable.insert_subtree d ~parent:book (note 1) in
  ignore (Durable.insert_subtree d ~parent:book (note 2));
  (* delete an original author (exercises the Delete op on replay) *)
  let jane_fn = run_ids db "//author[fn = 'jane']" in
  let removed = Durable.delete_subtree d (List.hd jane_fn) in
  check Alcotest.int "author + fn + ln removed" 3 removed;
  let before = run_ids db "//note" in
  Durable.close d;
  let d2, r = Durable.open_ dir in
  Fun.protect
    ~finally:(fun () -> Durable.close d2)
    (fun () ->
      let db2 = Durable.database d2 in
      check Alcotest.int "three txns replayed" 3 r.Durable.replayed;
      check Alcotest.int "none skipped" 0 r.Durable.skipped;
      check Alcotest.int "no tail discarded" 0 r.Durable.discarded_bytes;
      (* replay re-assigns ids deterministically: answers are id-identical *)
      check Alcotest.(list int) "note ids replay identically" before (run_ids db2 "//note");
      check Alcotest.bool "first insert id present" true (List.mem id1 before);
      check Alcotest.(list int) "deleted author stays gone" []
        (run_ids db2 "//author[fn = 'jane']");
      check Alcotest.int "last txn restored" 3 db2.Database.last_txn;
      check_consistent db2 "after recovery";
      assert_fsck_clean "after recovery" db2)

let test_group_commit_batch () =
  with_dir @@ fun dir ->
  let db = Database.create ~strategies:Database.[ RP; DP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  let book = find_id db.Database.doc "book" in
  let ids =
    Durable.batch d (fun () ->
        List.init 3 (fun i ->
            Durable.insert_subtree d ~parent:book
              (T.elem "note" [ T.elem_text "v" (string_of_int i) ])))
  in
  check Alcotest.int "three fresh ids" 3 (List.length (List.sort_uniq compare ids));
  Durable.close d;
  let d2, r = Durable.open_ dir in
  Fun.protect
    ~finally:(fun () -> Durable.close d2)
    (fun () ->
      check Alcotest.int "batched txns all recovered" 3 r.Durable.replayed;
      check Alcotest.int "notes recovered" 3 (note_count (Durable.database d2));
      assert_fsck_clean "after batched recovery" (Durable.database d2))

let test_checkpoint_truncates_and_is_idempotent () =
  with_dir @@ fun dir ->
  let db = Database.create ~strategies:Database.[ RP; DP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  let book = find_id db.Database.doc "book" in
  ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" "a"));
  ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" "b"));
  Durable.checkpoint d;
  Durable.checkpoint d;
  (* the log now holds only the checkpoint stamp *)
  (match (Wal.scan (Durable.wal_path dir)).Wal.frames with
  | [ Wal.Checkpoint 2 ] -> ()
  | frames -> Alcotest.failf "expected a lone Checkpoint 2, got %d frames" (List.length frames));
  ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" "c"));
  Durable.close d;
  let d2, r = Durable.open_ dir in
  Fun.protect
    ~finally:(fun () -> Durable.close d2)
    (fun () ->
      check Alcotest.int "only the post-checkpoint txn replays" 1 r.Durable.replayed;
      check Alcotest.int "all notes present" 3 (note_count (Durable.database d2));
      check Alcotest.int "txn ids continue across checkpoints" 3
        (Durable.database d2).Database.last_txn;
      assert_fsck_clean "after checkpoint + recovery" (Durable.database d2))

let test_recovery_skips_snapshotted_txns () =
  with_dir @@ fun dir ->
  let db = Database.create ~strategies:Database.[ RP; DP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  let book = find_id db.Database.doc "book" in
  ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" "a"));
  ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" "b"));
  (* Simulate a crash between a checkpoint's snapshot write and its log
     reset: the snapshot already contains both transactions the log
     still holds. *)
  Persist.save (Durable.database d) (Durable.snapshot_path dir);
  Durable.close d;
  let d2, r = Durable.open_ dir in
  Fun.protect
    ~finally:(fun () -> Durable.close d2)
    (fun () ->
      check Alcotest.int "nothing replayed" 0 r.Durable.replayed;
      check Alcotest.int "both txns recognized as snapshotted" 2 r.Durable.skipped;
      check Alcotest.int "no double-application" 2 (note_count (Durable.database d2));
      assert_fsck_clean "after skip recovery" (Durable.database d2))

(* ---------- crash matrix: every frame boundary and mid-frame ---------- *)

(* Simulate a kill at byte offset [cut] of the log by copying the
   directory with a truncated log, then recover and verify: the
   database is fsck-clean, agrees with the naive matcher, and holds
   exactly the transactions whose Commit frame is wholly inside the
   prefix. *)
let test_crash_matrix () =
  with_dir @@ fun dir ->
  let txns = 3 in
  let db = Database.create ~strategies:Database.[ RP; DP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  let book = find_id db.Database.doc "book" in
  for i = 1 to txns do
    ignore
      (Durable.insert_subtree d ~parent:book
         (T.elem "note" [ T.elem_text "v" (string_of_int i) ]))
  done;
  Durable.close d;
  let log = read_file (Durable.wal_path dir) in
  let scanned = Wal.scan (Durable.wal_path dir) in
  check Alcotest.bool "log is clean before the matrix" false scanned.Wal.damaged;
  check Alcotest.int "scan covers the whole log" (String.length log) scanned.Wal.valid_bytes;
  (* Frame layout: (start, end, commits completed by end). *)
  let _, layout =
    List.fold_left
      (fun (off, acc) f ->
        let fin = off + String.length (Wal.encode_frame f) in
        ((fin, (off, fin, f) :: acc) : int * _))
      (0, []) scanned.Wal.frames
  in
  let layout = List.rev layout in
  let commits_within cut =
    List.length
      (List.filter
         (fun (_, fin, f) -> fin <= cut && match f with Wal.Commit _ -> true | _ -> false)
         layout)
  in
  (* Cut points: the start of the log, every frame boundary, and a
     point inside every frame's header. *)
  let cuts =
    0
    :: List.concat_map (fun (start, fin, _) -> [ start + 3; fin ]) layout
    |> List.sort_uniq compare
    |> List.filter (fun c -> c < String.length log)
  in
  check Alcotest.bool "matrix has many cut points" true (List.length cuts > 3 * txns);
  List.iter
    (fun cut ->
      let expected = commits_within cut in
      let label = Printf.sprintf "cut at byte %d (%d committed)" cut expected in
      let dir2 = fresh_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir2)
        (fun () ->
          write_file (Durable.snapshot_path dir2)
            (read_file (Durable.snapshot_path dir));
          write_file (Durable.wal_path dir2) (String.sub log 0 cut);
          let d2, r = Durable.open_ dir2 in
          Fun.protect
            ~finally:(fun () -> Durable.close d2)
            (fun () ->
              let db2 = Durable.database d2 in
              check Alcotest.int (label ^ ": replayed") expected r.Durable.replayed;
              check Alcotest.int (label ^ ": notes") expected (note_count db2);
              check
                Alcotest.(list int)
                (label ^ ": oracle agrees")
                (Tm_query.Naive.query db2.Database.doc
                   (Tm_query.Xpath_parser.parse "//note"))
                (run_ids db2 "//note");
              assert_fsck_clean label db2;
              (* the recovered directory accepts new writes *)
              ignore (Durable.insert_subtree d2 ~parent:book (T.elem_text "note" "post"));
              check Alcotest.int (label ^ ": writable after recovery") (expected + 1)
                (note_count db2))))
    cuts

(* ---------- failpoints: commit crash poisons; reopen recovers ---------- *)

let test_commit_failpoint_poisons_then_recovers () =
  with_dir @@ fun dir ->
  let db = Database.create ~strategies:Database.[ RP; DP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  let book = find_id db.Database.doc "book" in
  ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" "a"));
  ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" "b"));
  Fun.protect ~finally:(fun () -> Fault.clear ()) @@ fun () ->
  Fault.inject ~site:"wal.commit" (Fault.Every 1);
  (* The crash point sits after the pages were dirtied, so the handle
     cannot roll back in-memory state: it poisons. *)
  (match Durable.insert_subtree d ~parent:book (T.elem_text "note" "c") with
  | exception Fault.Io_error _ -> ()
  | _ -> Alcotest.fail "armed wal.commit should fail the transaction");
  (match Durable.insert_subtree d ~parent:book (T.elem_text "note" "d") with
  | exception Durable.Poisoned _ -> ()
  | _ -> Alcotest.fail "poisoned handle should reject further writes");
  (match Durable.checkpoint d with
  | exception Durable.Poisoned _ -> ()
  | _ -> Alcotest.fail "poisoned handle should reject checkpoints");
  Fault.clear ();
  Durable.close d;
  (* Reopen: exactly the pre-crash commits survive. *)
  let d2, r = Durable.open_ dir in
  Fun.protect
    ~finally:(fun () -> Durable.close d2)
    (fun () ->
      let db2 = Durable.database d2 in
      check Alcotest.int "committed prefix replayed" 2 r.Durable.replayed;
      check Alcotest.int "uncommitted txn discarded" 2 (note_count db2);
      assert_fsck_clean "after commit-crash recovery" db2;
      ignore (Durable.insert_subtree d2 ~parent:book (T.elem_text "note" "e"));
      check Alcotest.int "fresh handle writes again" 3 (note_count db2))

let test_torn_append_recovers_to_prefix () =
  with_dir @@ fun dir ->
  let db = Database.create ~strategies:Database.[ RP; DP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  let book = find_id db.Database.doc "book" in
  ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" "a"));
  (* Tear the 4th appended frame from here on: some later transaction
     persists a damaged frame mid-log — the kind of log a real torn
     write leaves behind. *)
  Fun.protect ~finally:(fun () -> Fault.clear ()) @@ fun () ->
  Fault.inject ~action:Fault.Torn ~site:"wal.append" (Fault.After 3);
  (try
     for i = 2 to 4 do
       ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" (string_of_int i)))
     done
   with Fault.Io_error _ | Durable.Poisoned _ -> ());
  Fault.clear ();
  Durable.close d;
  let s = Wal.scan (Durable.wal_path dir) in
  check Alcotest.bool "the log really is damaged" true s.Wal.damaged;
  let d2, r = Durable.open_ dir in
  Fun.protect
    ~finally:(fun () -> Durable.close d2)
    (fun () ->
      let db2 = Durable.database d2 in
      check Alcotest.int "recovery = committed prefix of the valid log"
        (List.length s.Wal.committed) r.Durable.replayed;
      check Alcotest.int "notes match the committed prefix" (List.length s.Wal.committed)
        (note_count db2);
      check Alcotest.bool "damaged tail truncated" true (r.Durable.discarded_bytes > 0);
      assert_fsck_clean "after torn-append recovery" db2)

(* create must not wipe a directory that already holds a database: its
   log may carry committed transactions no checkpoint has folded in. *)
let test_create_refuses_existing_database () =
  with_dir @@ fun dir ->
  let db = Database.create ~strategies:Database.[ RP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  let book = find_id db.Database.doc "book" in
  ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" "precious"));
  Durable.close d;
  (match Durable.create ~dir (Database.create ~strategies:Database.[ RP ] (book_doc ())) with
  | exception Invalid_argument _ -> ()
  | d' ->
    Durable.close d';
    Alcotest.fail "create over an existing database must refuse");
  (* The refusal left the directory untouched: recovery still replays. *)
  let d2, r = Durable.open_ dir in
  check Alcotest.int "committed txn survives the refused create" 1 r.Durable.replayed;
  check Alcotest.int "note still present" 1 (note_count (Durable.database d2));
  Durable.close d2;
  (* Overwrite is explicit opt-in. *)
  let d3 =
    Durable.create ~force:true ~dir (Database.create ~strategies:Database.[ RP ] (book_doc ()))
  in
  check Alcotest.int "forced create starts fresh" 0 (note_count (Durable.database d3));
  Durable.close d3

(* A transaction that poisons the handle mid-batch must not void the
   durability of the batch's earlier, already-acknowledged commits: the
   closing group fsync still runs (best effort) and reopen replays
   exactly the committed prefix. *)
let test_batch_poison_still_syncs_earlier_commits () =
  with_dir @@ fun dir ->
  let db = Database.create ~strategies:Database.[ RP; DP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  let book = find_id db.Database.doc "book" in
  Fun.protect ~finally:(fun () -> Fault.clear ()) @@ fun () ->
  Fault.inject ~site:"wal.commit" (Fault.After 2);
  (match
     Durable.batch d (fun () ->
         for i = 1 to 3 do
           ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" (string_of_int i)))
         done)
   with
  | exception Fault.Io_error _ -> ()
  | () -> Alcotest.fail "third commit should hit the armed wal.commit failpoint");
  (match Durable.insert_subtree d ~parent:book (T.elem_text "note" "x") with
  | exception Durable.Poisoned _ -> ()
  | _ -> Alcotest.fail "handle should be poisoned after the mid-batch crash");
  Fault.clear ();
  Durable.close d;
  let d2, r = Durable.open_ dir in
  Fun.protect
    ~finally:(fun () -> Durable.close d2)
    (fun () ->
      check Alcotest.int "the two acknowledged txns recovered" 2 r.Durable.replayed;
      check Alcotest.int "their notes present" 2 (note_count (Durable.database d2));
      assert_fsck_clean "after mid-batch poison recovery" (Durable.database d2))

(* The batch-closing fsync itself failing poisons the handle: the
   acknowledged commits now have indeterminate durability, and the only
   safe continuation is a reopen. *)
let test_batch_sync_failure_poisons () =
  with_dir @@ fun dir ->
  let db = Database.create ~strategies:Database.[ RP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  let book = find_id db.Database.doc "book" in
  Fun.protect ~finally:(fun () -> Fault.clear ()) @@ fun () ->
  Fault.inject ~site:"wal.fsync" (Fault.Every 1);
  (match
     Durable.batch d (fun () ->
         for i = 1 to 2 do
           ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" (string_of_int i)))
         done)
   with
  | exception Fun.Finally_raised (Fault.Io_error _) -> ()
  | () -> Alcotest.fail "group fsync should hit the armed wal.fsync failpoint");
  (match Durable.insert_subtree d ~parent:book (T.elem_text "note" "x") with
  | exception Durable.Poisoned _ -> ()
  | _ -> Alcotest.fail "failed group fsync should poison the handle");
  Fault.clear ();
  Durable.close d;
  let d2, r = Durable.open_ dir in
  Fun.protect
    ~finally:(fun () -> Durable.close d2)
    (fun () ->
      check Alcotest.int "appended commits replayed after reopen" 2 r.Durable.replayed;
      assert_fsck_clean "after failed-group-fsync recovery" (Durable.database d2))

let test_clean_abort_keeps_handle_usable () =
  with_dir @@ fun dir ->
  let db = Database.create ~strategies:Database.[ RP; DP ] (book_doc ()) in
  let d = Durable.create ~dir db in
  let book = find_id db.Database.doc "book" in
  (* Validation failures strike before any page is dirtied: clean abort. *)
  (match Durable.insert_subtree d ~parent:0 (T.elem "x" []) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "virtual-root insert should be rejected");
  (match Durable.delete_subtree d 99999 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown-id delete should be rejected");
  ignore (Durable.insert_subtree d ~parent:book (T.elem_text "note" "ok"));
  Durable.close d;
  let d2, r = Durable.open_ dir in
  Fun.protect
    ~finally:(fun () -> Durable.close d2)
    (fun () ->
      check Alcotest.int "only the good txn recovered" 1 r.Durable.replayed;
      check Alcotest.int "one note" 1 (note_count (Durable.database d2));
      assert_fsck_clean "after clean aborts" (Durable.database d2))

let () =
  Alcotest.run "wal"
    [
      ( "frames",
        [
          Alcotest.test_case "codec roundtrip through scan" `Quick test_codec_roundtrip;
          Alcotest.test_case "missing file scans empty" `Quick test_missing_file_scans_empty;
          Alcotest.test_case "torn tail detected and truncated" `Quick
            test_torn_tail_scan_and_truncate;
          Alcotest.test_case "bitflip stops the scan" `Quick test_bitflip_stops_scan;
          Alcotest.test_case "op codec roundtrip" `Quick test_op_codec_roundtrip;
        ] );
      ( "durability",
        [
          Alcotest.test_case "logged txns replay identically" `Quick test_durable_roundtrip;
          Alcotest.test_case "group commit recovers whole batch" `Quick test_group_commit_batch;
          Alcotest.test_case "checkpoint truncates, idempotent" `Quick
            test_checkpoint_truncates_and_is_idempotent;
          Alcotest.test_case "snapshotted txns skipped on replay" `Quick
            test_recovery_skips_snapshotted_txns;
          Alcotest.test_case "clean aborts keep the handle usable" `Quick
            test_clean_abort_keeps_handle_usable;
          Alcotest.test_case "create refuses an existing database" `Quick
            test_create_refuses_existing_database;
          Alcotest.test_case "mid-batch poison keeps earlier commits durable" `Quick
            test_batch_poison_still_syncs_earlier_commits;
          Alcotest.test_case "failed group fsync poisons" `Quick test_batch_sync_failure_poisons;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "kill matrix at every frame boundary" `Slow test_crash_matrix;
          Alcotest.test_case "commit failpoint poisons, reopen recovers" `Quick
            test_commit_failpoint_poisons_then_recovers;
          Alcotest.test_case "torn append recovers to committed prefix" `Quick
            test_torn_append_recovers_to_prefix;
        ] );
    ]
