(** Generator for the 4-ary relation [(HeadId, SchemaPath, LeafValue,
    IdList)] of paper Section 3.1 (Figure 2), and its two adaptations:

    - {e root paths} (Figure 4): only rows whose head is the virtual
      root — every prefix of every root-to-leaf data path. This feeds
      ROOTPATHS.
    - {e all subpaths} (Figure 5): additionally one row per
      (ancestor-or-self head, descendant) pair. This feeds DATAPATHS.

    For a node with rooted tags [t1..tk] and ids [i1..ik], the rows are:
    head 0 (virtual root) with schema path [t1..tk] and id list
    [i1..ik]; and, when all subpaths are requested, for each j >= 1 a
    row with head [ij], schema path [tj..tk] (the head's own tag is
    included, as in Figure 2's "1 B null []"), and id list
    [i(j+1)..ik] (the head's id is excluded). Every row is emitted with
    LeafValue null, plus a duplicate carrying the value when the path
    ends at a node with a leaf value. *)

type row = {
  head : int;
  schema : Schema_path.t;
  value : string option;
  idlist : int list;
}

(** Root-path rows contributed by one node (a null row plus a value row
    when the node has a leaf value). *)
let node_root_rows (info : Shred.node_info) =
  let idlist = Array.to_list info.Shred.ids in
  let base = { head = 0; schema = info.Shred.path; value = None; idlist } in
  match info.Shred.value with None -> [ base ] | Some v -> [ base; { base with value = Some v } ]

(** All-subpath rows contributed by one node: the virtual-root row plus
    one per ancestor-or-self head, each with its value duplicate. *)
let node_all_rows (info : Shred.node_info) =
  let k = Array.length info.Shred.ids in
  let with_value base =
    match info.Shred.value with None -> [ base ] | Some v -> [ base; { base with value = Some v } ]
  in
  let rec go acc j =
    if j > k then List.rev acc
    else
      let head = info.Shred.ids.(j - 1) in
      let schema = Schema_path.suffix info.Shred.path (k - j + 1) in
      let idlist = Array.to_list (Array.sub info.Shred.ids j (k - j)) in
      go (List.rev_append (with_value { head; schema; value = None; idlist }) acc) (j + 1)
  in
  with_value { head = 0; schema = info.Shred.path; value = None; idlist = Array.to_list info.Shred.ids }
  @ go [] 1

(** Fold [f] over every root-path row of [doc] (heads are all 0). *)
let fold_root_rows doc dict f acc =
  Shred.fold_nodes doc dict
    (fun acc info -> List.fold_left f acc (node_root_rows info))
    acc

(** Fold [f] over every subpath row of [doc] (heads are 0 and every
    proper ancestor-or-self). Row count is Theta(nodes x depth): this is
    exactly the space-time tradeoff the paper studies. *)
let fold_all_rows doc dict f acc =
  Shred.fold_nodes doc dict
    (fun acc info -> List.fold_left f acc (node_all_rows info))
    acc

(** Materialize root-path rows as a list (tests, small inputs). *)
let root_rows doc dict = List.rev (fold_root_rows doc dict (fun acc r -> r :: acc) [])

let all_rows doc dict = List.rev (fold_all_rows doc dict (fun acc r -> r :: acc) [])
