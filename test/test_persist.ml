(* Tests for the framed v2 snapshot format: round-trips, atomicity of
   the save path (no stray temp files), frame verification, and
   rejection of truncated or bit-flipped files with a typed
   Bad_snapshot naming the damage — never a crash, hang, or a database
   silently built from garbage. *)

module Db = Twigmatch.Database
module Persist = Twigmatch.Persist
module Executor = Twigmatch.Executor

let check = Alcotest.check

let xmark ?(scale = 0.02) () =
  Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 11; scale }

let with_tmp_dir f =
  let dir = Filename.temp_file "twigmatch-test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let file_bytes path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let expect_bad_snapshot what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Bad_snapshot" what
  | exception Persist.Bad_snapshot _ -> ()

let leftover_tmp_files dir =
  List.filter (fun e -> Filename.check_suffix e ".tmp") (Array.to_list (Sys.readdir dir))

(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "db.snap" in
  let db = Db.create (xmark ()) in
  Persist.save db path;
  check (Alcotest.list Alcotest.string) "no temp files left" [] (leftover_tmp_files dir);
  let db' = Persist.load path in
  let twig = Tm_query.Xpath_parser.parse "//item[quantity = '2']/name" in
  List.iter
    (fun s ->
      let a = (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids in
      let b = (Executor.run ~hint:(Tm_plan.Hint.Force s) db' twig).Executor.ids in
      check (Alcotest.list Alcotest.int) (Db.strategy_name s ^ " ids survive reload") a b)
    (Db.built_strategies db)

let test_verify_reports_sections () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "db.snap" in
  Persist.save (Db.create ~strategies:[ Db.RP ] (xmark ())) path;
  let { Persist.sections } = Persist.verify path in
  check
    (Alcotest.list Alcotest.string)
    "section table" [ "meta"; "database" ]
    (List.map (fun s -> s.Persist.name) sections);
  List.iter
    (fun s -> check Alcotest.bool (s.Persist.name ^ " non-empty") true (s.Persist.length > 0))
    sections

(* Chop the file at every 1/8 boundary: whatever frame element the cut
   lands in, load and verify must reject with Bad_snapshot. *)
let test_truncation_rejected_everywhere () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "db.snap" in
  Persist.save (Db.create ~strategies:[ Db.RP ] (xmark ())) path;
  let whole = file_bytes path in
  let n = String.length whole in
  let cut = Filename.concat dir "cut.snap" in
  for i = 0 to 7 do
    let len = i * n / 8 in
    write_bytes cut (String.sub whole 0 len);
    expect_bad_snapshot (Printf.sprintf "load at %d/%d bytes" len n) (fun () ->
        Persist.load cut);
    expect_bad_snapshot (Printf.sprintf "verify at %d/%d bytes" len n) (fun () ->
        Persist.verify cut)
  done

(* One flipped bit anywhere in a section payload must fail that
   section's CRC before any unmarshalling. Spread the probes across the
   file (skipping the final byte-exact positions the frame fields
   occupy is unnecessary — damage there is caught by the magic/footer
   checks instead). *)
let test_bitflip_rejected () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "db.snap" in
  Persist.save (Db.create ~strategies:[ Db.RP ] (xmark ())) path;
  let whole = file_bytes path in
  let n = String.length whole in
  let flipped = Filename.concat dir "flip.snap" in
  List.iter
    (fun pos ->
      let b = Bytes.of_string whole in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x08));
      write_bytes flipped (Bytes.to_string b);
      expect_bad_snapshot (Printf.sprintf "bit flip at offset %d" pos) (fun () ->
          Persist.verify flipped);
      expect_bad_snapshot (Printf.sprintf "load with bit flip at offset %d" pos) (fun () ->
          ignore (Persist.load flipped)))
    [ 0; 3; n / 4; n / 2; (3 * n) / 4; n - 2 ]

let test_bad_snapshot_names_section () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "db.snap" in
  Persist.save (Db.create ~strategies:[ Db.RP ] (xmark ())) path;
  let whole = file_bytes path in
  (* flip a bit in the middle of the (large) database section payload *)
  let b = Bytes.of_string whole in
  let pos = String.length whole / 2 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
  write_bytes path (Bytes.to_string b);
  match Persist.verify path with
  | _ -> Alcotest.fail "expected Bad_snapshot"
  | exception Persist.Bad_snapshot msg ->
    check Alcotest.bool
      (Printf.sprintf "message %S names the database section" msg)
      true
      (let re = "database" in
       let lr = String.length re and lm = String.length msg in
       let rec find i = i + lr <= lm && (String.equal (String.sub msg i lr) re || find (i + 1)) in
       find 0)

let test_not_a_snapshot_rejected () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "not.snap" in
  write_bytes path "<?xml version=\"1.0\"?><site></site>";
  expect_bad_snapshot "xml file" (fun () -> Persist.load path);
  write_bytes path "";
  expect_bad_snapshot "empty file" (fun () -> Persist.load path)

(* A failed save must not leave the target or a temp file behind. The
   temp file is created in the target's own directory (so the final
   rename is same-filesystem); pointing at a missing directory makes
   that creation fail before anything is written. *)
let test_failed_save_leaves_no_tmp () =
  with_tmp_dir @@ fun dir ->
  let db = Db.create ~strategies:[ Db.RP ] (xmark ()) in
  let target = Filename.concat (Filename.concat dir "no-such-dir") "db.snap" in
  (match Persist.save db target with
  | () -> Alcotest.fail "save into a missing directory must fail"
  | exception Sys_error _ -> ());
  check Alcotest.bool "target not created" false (Sys.file_exists target);
  check (Alcotest.list Alcotest.string) "no temp files left" [] (leftover_tmp_files dir)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "persist"
    [
      ( "snapshot",
        [
          Alcotest.test_case "round trip" `Quick test_roundtrip;
          Alcotest.test_case "verify reports sections" `Quick test_verify_reports_sections;
          Alcotest.test_case "truncation rejected at 1/8 steps" `Quick
            test_truncation_rejected_everywhere;
          Alcotest.test_case "bit flips rejected" `Quick test_bitflip_rejected;
          Alcotest.test_case "bad snapshot names the section" `Quick
            test_bad_snapshot_names_section;
          Alcotest.test_case "non-snapshot files rejected" `Quick test_not_a_snapshot_rejected;
          Alcotest.test_case "failed save leaves no temp file" `Quick
            test_failed_save_leaves_no_tmp;
        ] );
    ]
