(** Counting semaphore: the bounded-admission primitive under the
    serving layer. A semaphore holds [capacity] permits; a connection
    (or any other unit of work) holds one permit from admission to
    completion, so [capacity] bounds the number simultaneously inside —
    executing or queued — and {!try_acquire} failing {e is} the
    load-shedding signal.

    Domain-safe (mutex + condition). {!acquire} blocks on the condition
    variable; the deadline-bounded variants ({!acquire_for},
    {!await_idle}) poll at ~1 ms granularity (stdlib [Condition] has no
    timed wait), which is plenty for admission-control decisions. *)

type t

val create : int -> t
(** A semaphore with that many permits (0 is allowed: every acquisition
    fails — a drained/closed gate).
    @raise Invalid_argument on a negative capacity. *)

val capacity : t -> int
val in_use : t -> int
val available : t -> int

val waiting : t -> int
(** Callers currently parked in {!acquire}/{!acquire_for}. *)

val try_acquire : t -> bool
(** Take a permit if one is free; never blocks. *)

val acquire : t -> unit
(** Block until a permit is free and take it. *)

val acquire_for : t -> timeout_ms:float -> bool
(** Take a permit, waiting up to [timeout_ms] (polled at ~1 ms);
    [false] on timeout. [timeout_ms <= 0] degrades to {!try_acquire}. *)

val release : t -> unit
(** Return a permit and wake one blocked acquirer.
    @raise Invalid_argument when no permit is held (a release/acquire
    pairing bug, not a recoverable condition). *)

val with_permit : t -> (unit -> 'a) -> 'a
(** {!acquire}, run, {!release} (also on exception). *)

val await_idle : ?timeout_ms:float -> t -> bool
(** Wait (polling) until every permit is free and no acquirer is
    parked — how graceful drain waits for in-flight requests. Returns
    [false] if [timeout_ms] elapsed first; without a timeout, waits
    indefinitely and returns [true]. *)
