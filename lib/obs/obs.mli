(** Observability substrate: a global metrics sink (counters and
    histograms) plus monotonic-clock spans recorded into per-query
    trace trees. Disabled by default; every recording entry point costs
    one boolean branch when off.

    Domain-safe: counters are atomic, histograms are mutex-guarded, and
    the active trace stack is domain-local (worker-domain trees are
    grafted into the coordinator's trace with {!adopt}). *)

(** {1 Sink control} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with the sink forced on/off, restoring the previous state. *)

(** {1 Counters}

    Counters are registered once by name (handles are memoized, so
    instrumented modules hold direct references and increments never
    hash). Values accumulate globally until {!reset}. *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val counters : unit -> (string * int) list
(** All registered counters in registration order. *)

(** {1 Histograms} *)

type histogram = {
  h_name : string;
  h_bounds : float array;  (** bucket upper bounds, ascending *)
  h_counts : int array;  (** per bucket, plus one overflow slot *)
  mutable h_sum : float;
  mutable h_count : int;
}

val default_buckets : float array
(** Latency-flavoured bounds in milliseconds. *)

val histogram : ?buckets:float array -> string -> histogram
val observe : histogram -> float -> unit
val histograms : unit -> histogram list

val reset : unit -> unit
(** Zero every registered counter and histogram. *)

(** {1 Gauges}

    A gauge is a registered thunk sampled at export time (journal
    depth, pool occupancy); nothing is recorded on the hot path, so
    gauges ignore the enabled flag. *)

val gauge : string -> (unit -> float) -> unit
(** Register a gauge (first registration of a name wins). *)

val gauges : unit -> (string * float) list
(** Sample every registered gauge, in registration order. A gauge whose
    thunk raises reads as [nan]. *)

(** {1 Trace context}

    The ambient trace id of the query being executed on this domain,
    carried across domain boundaries by {!Tm_par.Pool} so events
    recorded on worker domains are attributed to the right query.
    Independent of the enabled flag. *)

val with_context : int -> (unit -> 'a) -> 'a
(** Run with the ambient trace id set, restoring the previous value. *)

val context : unit -> int option
(** The ambient trace id, if any. *)

(** {1 Warnings}

    Structured warnings (rare, operationally important events such as a
    malformed [TWIGMATCH_FAILPOINTS] spec). Always recorded into a
    small bounded ring regardless of the enabled flag, and passed to
    the handler — stderr by default, replaceable so a server can
    surface them. *)

type warning = {
  w_time : float;  (** wall-clock seconds (Unix epoch) *)
  w_ctx : int option;  (** ambient trace id when the warning fired *)
  w_site : string;  (** emitting subsystem, e.g. ["fault.env"] *)
  w_msg : string;
}

val warn : site:string -> string -> unit

val warnings : unit -> warning list
(** The most recent warnings (bounded ring), oldest first. *)

val set_warn_handler : (warning -> unit) option -> unit
(** Replace the warning handler ([None] restores the stderr default).
    The handler runs outside the ring's lock on the warning domain. *)

(** {1 Spans and traces}

    A trace is a tree of named spans capturing wall-clock time and the
    deltas of every registered counter over each span's extent — how
    EXPLAIN ANALYZE attributes buffer-pool traffic and rows to
    individual plan operators. Spans are only recorded inside a
    {!trace} extent; {!with_span} outside one just runs its thunk. *)

(** GC activity over a span's extent ({!Gc.quick_stat} deltas; on
    OCaml 5 the allocation counters are per-domain, matching the
    domain-local trace stack). *)
type gc_delta = {
  g_minor_words : float;  (** words allocated in the minor heap *)
  g_major_words : float;  (** words allocated in / promoted to the major heap *)
  g_minor_gcs : int;  (** minor collections *)
  g_major_gcs : int;  (** major collection cycles *)
}

val gc_snapshot : unit -> gc_delta
(** The current cumulative GC counters (for callers computing their own
    extents, e.g. the journal's per-query deltas). *)

val gc_since : gc_delta -> gc_delta
(** Deltas of the GC counters since a {!gc_snapshot}. *)

type span = {
  s_name : string;
  mutable s_start_ns : int64;  (** monotonic-clock open time *)
  mutable s_elapsed_ns : int64;
  mutable s_meta : (string * string) list;  (** free-form annotations *)
  mutable s_counts : (string * int) list;  (** counter deltas over the span *)
  mutable s_gc : gc_delta option;  (** GC/allocation deltas over the span *)
  mutable s_children : span list;  (** execution order *)
}

val trace : ?meta:(string * string) list -> string -> (unit -> 'a) -> 'a * span option
(** Run under a fresh root span; [None] when the sink is disabled. *)

val with_span : ?meta:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Open a child span under the innermost open span for the duration of
    the thunk. No-op when disabled or outside a {!trace}. *)

val in_trace : unit -> bool
(** Whether a trace is being captured right now (lets callers skip
    building annotation strings that would be discarded). *)

val annotate : string -> string -> unit
(** Attach a key/value annotation to the innermost open span. *)

val adopt : span -> unit
(** Graft a finished span (typically a trace root captured on a worker
    domain) as a child of the innermost open span on this domain, in
    call order. No-op outside a {!trace}. *)

val elapsed_ms : span -> float

val span_count : string -> span -> int
(** Delta of a named counter over the span (0 when absent). *)

val pool_hit_rate : span -> float option
(** Buffer-pool hit rate over the span, when any pool traffic
    occurred. *)
