(** Incremental updates — the paper's Section 7 future work.

    Inserting or deleting a subtree must touch one index entry per
    (node, structure) pair: the Edge table and statistics, the schema
    catalog, every built family member (ROOTPATHS inserts all prefixes
    of the new paths, DATAPATHS all subpaths — the update cost the
    paper warns about), and the ASR / Join-Index baselines. The paper's
    own observation is used for lookups: the indexed ancestor chain
    (here: backward-link climbs) locates the affected rooted path in
    O(depth) probes rather than a document scan.

    Fresh nodes receive ids beyond every existing id. Ids serve only as
    identities in this system (joins compare them for equality), so
    insertion does not disturb pre-order properties queries rely on. *)

open Tm_xmldb
open Tm_index
module T = Tm_xml.Xml_tree

(* Rooted id chain of a node, via backward-link climbs (O(depth)). *)
let id_chain (db : Database.t) id =
  let rec climb acc id =
    if id = 0 then acc
    else
      match Edge_table.parent_of db.Database.edge id with
      | Some (p, _, _) -> climb (id :: acc) p
      | None -> invalid_arg (Printf.sprintf "Updates: unknown node id %d" id)
  in
  climb [] id

(* Tree nodes along a rooted id chain (root first). *)
let nodes_of_chain (db : Database.t) chain =
  let child_with_id (children : T.node array) id =
    match Array.find_opt (fun (c : T.node) -> c.T.id = id) children with
    | Some c -> c
    | None -> invalid_arg "Updates: tree out of sync with Edge table"
  in
  match chain with
  | [] -> []
  | root_id :: rest ->
    let root = child_with_id db.Database.doc.T.roots root_id in
    let rec descend acc node = function
      | [] -> List.rev (node :: acc)
      | id :: rest -> descend (node :: acc) (child_with_id node.T.children id) rest
    in
    descend [] root rest

(* Shred a (sub)tree anchored below known rooted tags/ids, producing one
   node_info per element/attribute node in document order. *)
let shred_subtree (db : Database.t) ~rev_tags ~rev_ids ~parent_id ~parent_tag node =
  let infos = ref [] in
  let rec go ~rev_tags ~rev_ids ~parent_id ~parent_tag (n : T.node) =
    match n.T.label with
    | T.Value _ -> ()
    | T.Elem name | T.Attr name ->
      let tag = Dictionary.intern db.Database.dict name in
      let rev_tags = tag :: rev_tags in
      let rev_ids = n.T.id :: rev_ids in
      infos :=
        {
          Shred.id = n.T.id;
          tag;
          parent_id;
          parent_tag;
          path = Schema_path.of_list (List.rev rev_tags);
          ids = Array.of_list (List.rev rev_ids);
          value = T.leaf_value n;
        }
        :: !infos;
      Array.iter (go ~rev_tags ~rev_ids ~parent_id:n.T.id ~parent_tag:tag) n.T.children
  in
  go ~rev_tags ~rev_ids ~parent_id ~parent_tag node;
  List.rev !infos

(* Apply one node's index maintenance across every built structure. *)
let apply (db : Database.t) ~insert info =
  let family f = if insert then Family.insert_node f info else Family.remove_node f info in
  if insert then Edge_table.insert_node db.Database.edge info
  else Edge_table.remove_node db.Database.edge info;
  if insert then Schema_catalog.record db.Database.catalog info
  else Schema_catalog.unrecord db.Database.catalog info;
  Option.iter family db.Database.rootpaths;
  Option.iter family db.Database.datapaths;
  Option.iter family db.Database.dataguide;
  Option.iter family db.Database.index_fabric;
  Option.iter
    (fun a -> if insert then Asr.insert_node a info else Asr.remove_node a info)
    db.Database.asr_rels;
  Option.iter
    (fun j -> if insert then Join_index.insert_node j info else Join_index.remove_node j info)
    db.Database.ji

(* Assign fresh ids to a subtree in pre-order; value leaves keep no_id. *)
let rec assign_ids (db : Database.t) (n : T.node) =
  match n.T.label with
  | T.Value _ -> n.T.id <- T.no_id
  | T.Elem _ | T.Attr _ ->
    n.T.id <- db.Database.next_id;
    db.Database.next_id <- db.Database.next_id + 1;
    Array.iter (assign_ids db) n.T.children

(** [insert_subtree db ~parent subtree] attaches [subtree] (built with
    {!Tm_xml.Xml_tree.elem} and friends; any ids it carries are
    discarded) as the last child of the node with id [parent], updates
    every built index, and returns the subtree root's new id.

    @raise Invalid_argument if [parent] is unknown or is the virtual
    root (insert a new document by building a new database). *)
let insert_subtree (db : Database.t) ~parent (subtree : T.node) =
  if parent = 0 then invalid_arg "Updates.insert_subtree: cannot attach at the virtual root";
  if T.is_value subtree then invalid_arg "Updates.insert_subtree: subtree root must be an element";
  let chain = id_chain db parent in
  let path_nodes = nodes_of_chain db chain in
  let parent_node =
    match List.rev path_nodes with n :: _ -> n | [] -> assert false
  in
  (* rooted context of the parent *)
  let rev_ids = List.rev chain in
  let rev_tags =
    List.rev_map
      (fun (n : T.node) -> Dictionary.intern db.Database.dict (T.label_name n))
      path_nodes
  in
  assign_ids db subtree;
  parent_node.T.children <- Array.append parent_node.T.children [| subtree |];
  let parent_tag = match rev_tags with t :: _ -> t | [] -> -1 in
  let infos = shred_subtree db ~rev_tags ~rev_ids ~parent_id:parent ~parent_tag subtree in
  List.iter (apply db ~insert:true) infos;
  Database.note_index_change db;
  subtree.T.id

(** [delete_subtree db id] detaches the node with id [id] (and its
    whole subtree) from the document and removes its entries from every
    built index. Returns the number of element/attribute nodes removed.

    @raise Invalid_argument if [id] is unknown or is a document root. *)
let delete_subtree (db : Database.t) id =
  let chain = id_chain db id in
  if List.length chain < 2 then
    invalid_arg "Updates.delete_subtree: cannot delete a document root";
  let path_nodes = nodes_of_chain db chain in
  let target, parent_node =
    match List.rev path_nodes with
    | t :: p :: _ -> (t, p)
    | _ -> assert false
  in
  (* rooted context of the target = chain/tags up to its parent *)
  let rev_ids = match List.rev chain with _ :: rest -> rest | [] -> [] in
  let rev_tags =
    match
      List.rev_map (fun (n : T.node) -> Dictionary.intern db.Database.dict (T.label_name n)) path_nodes
    with
    | _ :: rest -> rest
    | [] -> []
  in
  let parent_id = match rev_ids with p :: _ -> p | [] -> 0 in
  let parent_tag = match rev_tags with t :: _ -> t | [] -> -1 in
  let infos = shred_subtree db ~rev_tags ~rev_ids ~parent_id ~parent_tag target in
  List.iter (apply db ~insert:false) infos;
  parent_node.T.children <-
    Array.of_list
      (List.filter (fun (c : T.node) -> c != target) (Array.to_list parent_node.T.children));
  Database.note_index_change db;
  List.length infos
