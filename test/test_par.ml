(* Parallel-execution tests: the Tm_par pool itself, four domains
   hammering one shared read-only database, pool-backed execution vs
   sequential, and the parallel DATAPATHS build — each cross-checked
   with the offline verifier (fsck) where stored structures are
   involved. *)

open Twigmatch

(* Small but non-trivial XMark instance shared by the stress tests. *)
let xdoc =
  lazy (Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 42; scale = 0.05 })

let xdb = lazy (Database.create (Lazy.force xdoc))

let xmark_twigs =
  lazy
    (List.filter_map
       (fun (q : Tm_datasets.Workload.query) ->
         if q.Tm_datasets.Workload.dataset = Tm_datasets.Workload.Xmark then
           Some (q.Tm_datasets.Workload.name, Tm_datasets.Workload.parse q)
         else None)
       Tm_datasets.Workload.all)

let mixed_strategies = Database.[ RP; DP; Edge ]

let eval_all db =
  List.concat_map
    (fun s ->
      List.map
        (fun (_, twig) -> (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids)
        (Lazy.force xmark_twigs))
    mixed_strategies

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  Tm_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "map preserves input order" (List.map (fun x -> x * x) xs)
    (Tm_par.Pool.map pool (fun x -> x * x) xs)

let test_map_inline () =
  Tm_par.Pool.with_pool ~jobs:1 @@ fun pool ->
  Alcotest.(check int) "jobs=1 pool reports 1" 1 (Tm_par.Pool.jobs pool);
  Alcotest.(check (list int))
    "jobs=1 is List.map" [ 2; 4; 6 ]
    (Tm_par.Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_exception_propagation () =
  Tm_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  (match Tm_par.Pool.map pool (fun x -> if x = 5 then failwith "boom" else x) (List.init 10 Fun.id) with
  | _ -> Alcotest.fail "expected the task's exception to reach the caller"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg);
  (* the pool survives a failed batch *)
  Alcotest.(check (list int)) "pool usable after failure" [ 2; 4 ]
    (Tm_par.Pool.map pool (fun x -> 2 * x) [ 1; 2 ])

let test_chunk () =
  let xs = List.init 10 Fun.id in
  let cs = Tm_par.Pool.chunk ~pieces:3 xs in
  Alcotest.(check int) "3 pieces" 3 (List.length cs);
  Alcotest.(check (list int)) "concat restores the list" xs (List.concat cs);
  List.iter
    (fun c ->
      let n = List.length c in
      Alcotest.(check bool) "piece sizes differ by at most one" true (n = 3 || n = 4))
    cs;
  Alcotest.(check (list (list int)))
    "never more pieces than elements"
    [ [ 1 ]; [ 2 ] ]
    (Tm_par.Pool.chunk ~pieces:5 [ 1; 2 ]);
  Alcotest.(check (list (list int))) "empty input" [] (Tm_par.Pool.chunk ~pieces:4 [])

(* ------------------------------------------------------------------ *)
(* Shared-database stress                                              *)
(* ------------------------------------------------------------------ *)

(* Four domains run the full mixed workload (3 strategies x every XMark
   twig) for a fixed iteration budget against ONE database; every
   domain must observe exactly the sequential results on every
   iteration, and the stored structures must verify clean afterwards
   (the striped buffer pool and locked decode caches may not tear). *)
let test_hammer_shared_db () =
  let db = Lazy.force xdb in
  let baseline = eval_all db in
  let iterations = 10 in
  let hammer () =
    let ok = ref true in
    for _ = 1 to iterations do
      if eval_all db <> baseline then ok := false
    done;
    !ok
  in
  let domains = List.init 4 (fun _ -> Domain.spawn hammer) in
  let oks = List.map Domain.join domains in
  Alcotest.(check (list bool))
    "every domain observed the sequential results"
    [ true; true; true; true ]
    oks;
  let report = Tm_check.Check.check_database db in
  Alcotest.(check string) "fsck clean after concurrent reads" ""
    (if Tm_check.Check.is_clean report then "" else Tm_check.Check.report_to_string report)

(* Pool-backed execution (per-path fan-out inside the executor) returns
   the same ids as the sequential plan for every strategy and twig. *)
let test_pool_matches_sequential () =
  let db = Lazy.force xdb in
  Tm_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  List.iter
    (fun s ->
      List.iter
        (fun (name, twig) ->
          let seq = (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids in
          let par = (Executor.run ~pool ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids in
          Alcotest.(check (list int))
            (Printf.sprintf "%s under %s, jobs=4" name (Database.strategy_name s))
            seq par)
        (Lazy.force xmark_twigs))
    Database.all_strategies

(* ------------------------------------------------------------------ *)
(* Parallel index build                                                *)
(* ------------------------------------------------------------------ *)

(* Partition-and-merge DATAPATHS/ROOTPATHS construction must be
   indistinguishable from the sequential build: same stored size, same
   query answers, and fsck (which recomputes the expected entry
   multiset from the document) must pass on the parallel product. *)
let test_parallel_build_equals_sequential () =
  let doc = Lazy.force xdoc in
  let strategies = Database.[ RP; DP ] in
  Tm_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  let seq_db = Database.create ~strategies doc in
  let par_db = Database.create ~par:pool ~strategies doc in
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "%s stored size identical" (Database.strategy_name s))
        (Database.strategy_size_bytes seq_db s)
        (Database.strategy_size_bytes par_db s))
    strategies;
  List.iter
    (fun s ->
      List.iter
        (fun (name, twig) ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s under %s: parallel build answers" name (Database.strategy_name s))
            (Executor.run ~hint:(Tm_plan.Hint.Force s) seq_db twig).Executor.ids
            (Executor.run ~hint:(Tm_plan.Hint.Force s) par_db twig).Executor.ids)
        (Lazy.force xmark_twigs))
    strategies;
  let report = Tm_check.Check.check_database par_db in
  Alcotest.(check string) "fsck clean after parallel build" ""
    (if Tm_check.Check.is_clean report then "" else Tm_check.Check.report_to_string report)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_map_order;
          Alcotest.test_case "jobs=1 inline" `Quick test_map_inline;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "chunking" `Quick test_chunk;
        ] );
      ( "stress",
        [
          Alcotest.test_case "4 domains hammer one database" `Quick test_hammer_shared_db;
          Alcotest.test_case "pool execution = sequential" `Quick test_pool_matches_sequential;
        ] );
      ( "build",
        [
          Alcotest.test_case "parallel build = sequential build" `Quick
            test_parallel_build_equals_sequential;
        ] );
    ]
