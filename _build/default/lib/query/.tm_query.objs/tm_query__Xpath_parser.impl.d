lib/query/xpath_parser.ml: List Printf String Twig
