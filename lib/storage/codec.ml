(** Byte-level codecs used throughout the storage engine.

    Two families live here:
    - {e order-preserving} codecs for B+-tree keys (fixed-width big-endian
      integers, 0x00-separated components), so that lexicographic order of
      the encoded bytes equals the intended order of the decoded values;
    - {e compact} codecs for payloads (LEB128 varints, zigzag, and the
      differential encoding of id lists described in Section 4.1 of the
      paper). *)

(** {1 Varints (LEB128)} *)

let add_varint buf n =
  (* Unsigned LEB128; [n] must be non-negative. *)
  assert (n >= 0);
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let read_varint s pos =
  let rec go shift acc pos =
    let b = Char.code s.[pos] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then (acc, pos + 1) else go (shift + 7) acc (pos + 1)
  in
  go 0 0 pos

(** {1 Zigzag (signed -> unsigned)} *)

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (-(n land 1))

let add_signed_varint buf n = add_varint buf (zigzag n)

let read_signed_varint s pos =
  let v, pos = read_varint s pos in
  (unzigzag v, pos)

(** {1 Length-prefixed strings} *)

let add_lstring buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let read_lstring s pos =
  let len, pos = read_varint s pos in
  (String.sub s pos len, pos + len)

(** {1 Fixed-width big-endian integers (order-preserving)} *)

let add_u16 buf n =
  assert (n >= 0 && n < 0x10000);
  Buffer.add_char buf (Char.chr (n lsr 8));
  Buffer.add_char buf (Char.chr (n land 0xff))

let read_u16 s pos =
  ((Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1], pos + 2)

let add_u32 buf n =
  assert (n >= 0 && n <= 0xffffffff);
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let read_u32 s pos =
  let b i = Char.code s.[pos + i] in
  ((b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3, pos + 4)

let u32_to_string n =
  let buf = Buffer.create 4 in
  add_u32 buf n;
  Buffer.contents buf

(** {1 Differential encoding of id lists (paper Section 4.1)}

    Node ids along a data path are strongly correlated (each is close to
    its parent's id under depth-first numbering), so we store the first id
    as a varint and each subsequent id as a zigzag varint delta. *)

let add_idlist buf ids =
  add_varint buf (List.length ids);
  let rec go prev = function
    | [] -> ()
    | id :: rest ->
      add_signed_varint buf (id - prev);
      go id rest
  in
  go 0 ids

let read_idlist s pos =
  let n, pos = read_varint s pos in
  let rec go i prev acc pos =
    if i = n then (List.rev acc, pos)
    else
      let d, pos = read_signed_varint s pos in
      let id = prev + d in
      go (i + 1) id (id :: acc) pos
  in
  go 0 0 [] pos

let idlist_to_string ids =
  let buf = Buffer.create 16 in
  add_idlist buf ids;
  Buffer.contents buf

let idlist_of_string s = fst (read_idlist s 0)

(** Raw (non-differential) id list: one [u32] per id. Used by the
    compression ablation and by ASR relations, which the paper notes
    cannot delta-encode their id columns. *)

let add_idlist_raw buf ids =
  add_varint buf (List.length ids);
  List.iter (add_u32 buf) ids

let read_idlist_raw s pos =
  let n, pos = read_varint s pos in
  let rec go i acc pos =
    if i = n then (List.rev acc, pos)
    else
      let id, pos = read_u32 s pos in
      go (i + 1) (id :: acc) pos
  in
  go 0 [] pos

let idlist_raw_to_string ids =
  let buf = Buffer.create 16 in
  add_idlist_raw buf ids;
  Buffer.contents buf

let idlist_raw_of_string s = fst (read_idlist_raw s 0)

(** {1 Key composition}

    Composite keys are built from components separated by [0x00]. For the
    separator trick to preserve order, components that can contain
    arbitrary bytes must not contain [0x00]; tag designators are encoded
    to avoid it (see {!Xmldb.Dictionary}) and leaf values are escaped. *)

let key_sep = '\x00'

(** Escape a leaf value so it contains no 0x00/0x01 bytes and a non-null
    value is distinguishable from the null marker: null is encoded as the
    empty component, a present value as [0x02] followed by the escaped
    bytes ([0x01 0x02] for 0x00, [0x01 0x03] for 0x01). *)
let encode_value = function
  | None -> ""
  | Some v ->
    let buf = Buffer.create (String.length v + 1) in
    Buffer.add_char buf '\x02';
    String.iter
      (fun c ->
        match c with
        | '\x00' -> Buffer.add_string buf "\x01\x02"
        | '\x01' -> Buffer.add_string buf "\x01\x03"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

let decode_value s =
  if String.equal s "" then None
  else begin
    assert (s.[0] = '\x02');
    let buf = Buffer.create (String.length s) in
    let i = ref 1 in
    let n = String.length s in
    while !i < n do
      (if s.[!i] = '\x01' then begin
         incr i;
         match s.[!i] with
         | '\x02' -> Buffer.add_char buf '\x00'
         | '\x03' -> Buffer.add_char buf '\x01'
         | _ -> invalid_arg "Codec.decode_value: bad escape"
       end
       else Buffer.add_char buf s.[!i]);
      incr i
    done;
    Some (Buffer.contents buf)
  end

(** {1 CRC32 (IEEE 802.3, polynomial 0xEDB88320)}

    Table-driven, byte at a time — fast enough that checksumming an 8 KiB
    page is small next to decoding it. Used for per-page checksums in
    {!Pager} and the snapshot frame format in [Persist]. *)

(* Built eagerly at module init: a lazy block would be forced from
   every domain that checksums a page, and unsynchronized forcing races
   on OCaml 5. *)
let crc32_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32_update crc data pos len =
  let table = crc32_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get data i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 data = crc32_update 0 data 0 (Bytes.length data)
let crc32_string s = crc32 (Bytes.unsafe_of_string s)

let concat_key components = String.concat (String.make 1 key_sep) components

(** Comparator for (key, payload) entries — the bulk-load / B+-tree
    entry order (key, then payload), stated with typed comparisons. *)
let compare_kv (k1, p1) (k2, p2) =
  let c = String.compare k1 k2 in
  if c <> 0 then c else String.compare p1 p2

let split_key s = String.split_on_char key_sep s

(** Smallest string strictly greater than every string having [s] as a
    prefix, or [None] if no such string exists (all bytes are 0xff).
    Used to turn a prefix scan into a half-open range scan. *)
let prefix_successor s =
  let n = String.length s in
  let rec last_non_ff i = if i < 0 then -1 else if s.[i] <> '\xff' then i else last_non_ff (i - 1) in
  let i = last_non_ff (n - 1) in
  if i < 0 then None
  else begin
    let b = Bytes.of_string (String.sub s 0 (i + 1)) in
    Bytes.set b i (Char.chr (Char.code s.[i] + 1));
    Some (Bytes.to_string b)
  end
