(** Query-lifecycle journal: a process-global, fixed-capacity ring of
    structured completion events, one per {!Twigmatch.Executor.run}.

    Design mirrors the striped buffer pool: entries are partitioned
    over [trace id mod stripes] sub-rings, each behind its own mutex,
    so concurrent domains completing queries almost never contend.
    Recording when disabled costs exactly one atomic load (the
    executor's single guard branch); nothing is allocated. The ring
    overwrites oldest-first per stripe, so under steady traffic the
    journal always holds the most recent ~capacity completions — the
    fleet-style EXPLAIN history the paper's Section 6 evaluation reads
    off DB2's instrumentation one query at a time. *)

type outcome =
  | Completed
  | Timed_out of float  (** the expired deadline, ms *)
  | Failed of string  (** printable form of the escaping exception *)

type entry = {
  j_id : int;  (** trace id (process-unique, monotonically increasing) *)
  j_time : float;  (** wall-clock completion time (Unix epoch seconds) *)
  j_query : string;
  j_shape : string;  (** normalized twig shape (the planner's cache/calibration key) *)
  j_requested : string;  (** the planned strategy *)
  j_strategy : string;  (** the strategy that answered (= requested when healthy) *)
  j_reason : string;  (** planner justification, extended with the fallback story *)
  j_fallbacks : (string * string) list;  (** losing plans, oldest first, with why *)
  j_via_naive : bool;
  j_rows : int;
  j_est_rows : int option;  (** the plan's estimated result rows, when planned *)
  j_replans : int;  (** mid-query replans before the answer *)
  j_latency_ms : float;
  j_pool_hit_rate : float option;  (** buffer-pool hit rate over the query *)
  j_jobs : int;
  j_txn : int;
      (** last durably committed transaction folded into the database
          when the query ran (0 = a database never durably updated) *)
  j_outcome : outcome;
  j_gc : Obs.gc_delta;  (** GC/allocation deltas over the query *)
}

(* ------------------------------------------------------------------ *)
(* Trace ids                                                           *)
(* ------------------------------------------------------------------ *)

let next_trace_id = Atomic.make 1
let next_id () = Atomic.fetch_and_add next_trace_id 1

(* ------------------------------------------------------------------ *)
(* The striped ring                                                    *)
(* ------------------------------------------------------------------ *)

type stripe = {
  lock : Mutex.t;
  mutable ring : entry option array;
  mutable next : int;  (** entries ever written to this stripe *)
}

let stripes = 8
let default_capacity = 512

let make_stripes capacity =
  let per = max 1 ((capacity + stripes - 1) / stripes) in
  Array.init stripes (fun _ -> { lock = Mutex.create (); ring = Array.make per None; next = 0 })

let state = ref (make_stripes default_capacity) [@@analyze.guarded_by "state_lock"]
let state_lock = Mutex.create ()
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let capacity () =
  let s = !state in
  Array.fold_left (fun acc st -> acc + Array.length st.ring) 0 s

let enable ?capacity:cap () =
  (match cap with
  | None -> ()
  | Some c ->
    if c < 1 then invalid_arg "Journal.enable: capacity must be >= 1";
    Mutex.protect state_lock (fun () -> state := make_stripes c));
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let with_enabled on f =
  let saved = Atomic.get enabled_flag in
  Atomic.set enabled_flag on;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag saved) f

let clear () =
  Mutex.protect state_lock (fun () ->
      let s = !state in
      Array.iter
        (fun st ->
          Mutex.protect st.lock (fun () ->
              Array.fill st.ring 0 (Array.length st.ring) None;
              st.next <- 0))
        s)

let record e =
  if Atomic.get enabled_flag then begin
    let s = !state in
    let st = s.(e.j_id mod stripes) in
    Mutex.protect st.lock (fun () ->
        st.ring.(st.next mod Array.length st.ring) <- Some e;
        st.next <- st.next + 1)
  end

let fold f acc =
  let s = !state in
  Array.fold_left
    (fun acc st ->
      Mutex.protect st.lock (fun () ->
          Array.fold_left (fun acc e -> match e with Some e -> f acc e | None -> acc) acc st.ring))
    acc s

let entries () =
  fold (fun acc e -> e :: acc) [] |> List.sort (fun a b -> Int.compare a.j_id b.j_id)

let length () = fold (fun acc _ -> acc + 1) 0

let dropped () =
  let s = !state in
  Array.fold_left
    (fun acc st ->
      let d = Mutex.protect st.lock (fun () -> max 0 (st.next - Array.length st.ring)) in
      acc + d)
    0 s

(* Gauges so the scrape endpoints can watch the journal itself. *)
let () =
  Obs.gauge "journal.entries" (fun () -> float_of_int (length ()));
  Obs.gauge "journal.dropped" (fun () -> float_of_int (dropped ()))

(* ------------------------------------------------------------------ *)
(* Slow-query view                                                     *)
(* ------------------------------------------------------------------ *)

let slow_threshold = Atomic.make 10 (* milliseconds, integral for atomicity *)

let set_slow_threshold_ms ms =
  if ms < 0.0 then invalid_arg "Journal.set_slow_threshold_ms: negative threshold";
  Atomic.set slow_threshold (int_of_float ms)

let slow_threshold_ms () = float_of_int (Atomic.get slow_threshold)

(* Slowest first: the journal view an operator reads top-down. Timeouts
   and failures always qualify — a query that never finished is the
   slowest kind. *)
let slow ?threshold_ms () =
  let threshold = match threshold_ms with Some t -> t | None -> slow_threshold_ms () in
  fold
    (fun acc e ->
      let keep =
        match e.j_outcome with
        | Completed -> e.j_latency_ms >= threshold
        | Timed_out _ | Failed _ -> true
      in
      if keep then e :: acc else acc)
    []
  |> List.sort (fun a b -> Float.compare b.j_latency_ms a.j_latency_ms)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let outcome_name = function
  | Completed -> "completed"
  | Timed_out _ -> "timeout"
  | Failed _ -> "failed"

let entry_to_string e =
  let buf = Buffer.create 160 in
  Buffer.add_string buf
    (Printf.sprintf "#%d %8.2f ms  %-9s %s" e.j_id e.j_latency_ms
       (outcome_name e.j_outcome) e.j_query);
  Buffer.add_string buf (Printf.sprintf "  [%s" e.j_strategy);
  if not (String.equal e.j_strategy e.j_requested) || e.j_via_naive then
    Buffer.add_string buf (Printf.sprintf ", planned %s" e.j_requested);
  if e.j_via_naive then Buffer.add_string buf ", naive";
  Buffer.add_string buf (Printf.sprintf ", rows=%d" e.j_rows);
  (* Estimated vs actual rows — the "why was this plan mispicked"
     column: a large gap explains a slow entry better than the strategy
     name does. *)
  (match e.j_est_rows with
  | Some est when est <> e.j_rows ->
    Buffer.add_string buf (Printf.sprintf ", est=%d" est)
  | Some _ | None -> ());
  if e.j_replans > 0 then Buffer.add_string buf (Printf.sprintf ", replans=%d" e.j_replans);
  (match e.j_pool_hit_rate with
  | Some r -> Buffer.add_string buf (Printf.sprintf ", pool=%.1f%%" (100.0 *. r))
  | None -> ());
  if e.j_txn > 0 then Buffer.add_string buf (Printf.sprintf ", txn=%d" e.j_txn);
  Buffer.add_string buf "]";
  List.iter
    (fun (s, why) -> Buffer.add_string buf (Printf.sprintf "\n    lost plan %s: %s" s why))
    e.j_fallbacks;
  (match e.j_outcome with
  | Timed_out ms -> Buffer.add_string buf (Printf.sprintf "\n    deadline %.0f ms expired" ms)
  | Failed msg -> Buffer.add_string buf ("\n    error: " ^ msg)
  | Completed -> ());
  Buffer.contents buf

let json_of_float = Export.json_float
let json_of_string = Export.json_string

let entry_to_json e =
  let fallback (s, why) =
    Printf.sprintf "{\"strategy\":%s,\"why\":%s}" (json_of_string s) (json_of_string why)
  in
  let outcome =
    match e.j_outcome with
    | Completed -> Printf.sprintf "{\"kind\":\"completed\"}"
    | Timed_out ms -> Printf.sprintf "{\"kind\":\"timeout\",\"deadline_ms\":%s}" (json_of_float ms)
    | Failed msg -> Printf.sprintf "{\"kind\":\"failed\",\"error\":%s}" (json_of_string msg)
  in
  String.concat ""
    [
      "{";
      Printf.sprintf "\"id\":%d," e.j_id;
      Printf.sprintf "\"time\":%s," (json_of_float e.j_time);
      Printf.sprintf "\"query\":%s," (json_of_string e.j_query);
      Printf.sprintf "\"shape\":%s," (json_of_string e.j_shape);
      Printf.sprintf "\"requested\":%s," (json_of_string e.j_requested);
      Printf.sprintf "\"strategy\":%s," (json_of_string e.j_strategy);
      Printf.sprintf "\"reason\":%s," (json_of_string e.j_reason);
      Printf.sprintf "\"fallbacks\":[%s]," (String.concat "," (List.map fallback e.j_fallbacks));
      Printf.sprintf "\"via_naive\":%b," e.j_via_naive;
      Printf.sprintf "\"rows\":%d," e.j_rows;
      (match e.j_est_rows with
      | Some est -> Printf.sprintf "\"est_rows\":%d," est
      | None -> "\"est_rows\":null,");
      Printf.sprintf "\"replans\":%d," e.j_replans;
      Printf.sprintf "\"latency_ms\":%s," (json_of_float e.j_latency_ms);
      (match e.j_pool_hit_rate with
      | Some r -> Printf.sprintf "\"pool_hit_rate\":%s," (json_of_float r)
      | None -> "\"pool_hit_rate\":null,");
      Printf.sprintf "\"jobs\":%d," e.j_jobs;
      Printf.sprintf "\"txn\":%d," e.j_txn;
      Printf.sprintf "\"outcome\":%s," outcome;
      Printf.sprintf
        "\"gc\":{\"minor_words\":%s,\"major_words\":%s,\"minor_gcs\":%d,\"major_gcs\":%d}"
        (json_of_float e.j_gc.Obs.g_minor_words)
        (json_of_float e.j_gc.Obs.g_major_words)
        e.j_gc.Obs.g_minor_gcs e.j_gc.Obs.g_major_gcs;
      "}";
    ]

let to_json es = "[" ^ String.concat "," (List.map entry_to_json es) ^ "]"

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)
(* ------------------------------------------------------------------ *)

let env_var = "TWIGMATCH_JOURNAL"

(* TWIGMATCH_JOURNAL=1 (or any positive N, taken as the capacity)
   enables the journal at link time — how the CI leg proves the whole
   suite runs unchanged with journaling on. "0", "" or unset leave it
   off. *)
let install_env () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 1 -> enable ~capacity:n ()
    | Some 1 -> enable ()
    | Some _ -> ()
    | None ->
      Obs.warn ~site:"journal.env"
        (Printf.sprintf "ignoring %s=%S: expected a capacity (positive integer)" env_var s))

let () = install_env ()
