(** Tag/attribute-name dictionary: schema components are encoded as
    fixed-width 2-byte designators (paper Section 3.1), free of
    reserved bytes so they embed in composite B+-tree keys. *)

type t

val create : unit -> t
val tag_count : t -> int

val intern : t -> string -> int
(** Id for a name, allocating on first sight.
    @raise Invalid_argument (naming the offending tag) past
    {!max_tags}. *)

val find : t -> string -> int option
val name : t -> int -> string
(** @raise Invalid_argument on a bad id. *)

val designator : int -> string
(** The 2-byte designator; order-preserving in the id. *)

val of_designator : string -> int -> int
(** Decode the designator at an offset. *)

val max_tags : int
