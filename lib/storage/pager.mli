(** Simulated disk: a growable array of fixed-size pages with physical
    I/O accounting and per-page CRC32 checksums. Structured access
    should go through {!Buffer_pool}. A single internal mutex makes
    every operation domain-safe.

    Failpoint sites (see {!Tm_fault.Fault}): [pager.read],
    [pager.write], [pager.alloc]. Hooks fire before the physical
    counters move, so failed calls are not counted transfers. *)

exception Corrupt_page of { page : int; detail : string }
(** Raised when a page image fails its checksum on read, or when a read
    or write names an unallocated page id. *)

type t

val default_page_size : int
(** 8 KiB. *)

val create : ?page_size:int -> ?checksums:bool -> unit -> t
(** [checksums] (default [true]) controls per-page CRC32 maintenance
    and verification; disable it only to measure its overhead. *)

val page_size : t -> int

val checksums : t -> bool
(** Whether this pager maintains per-page checksums. *)

val page_count : t -> int

val size_bytes : t -> int
(** Total bytes occupied on the simulated disk. *)

val alloc : t -> int
(** Allocate a fresh zeroed page; returns its id. *)

val read : t -> int -> bytes
(** Physical read (counted on success); returns a copy of the page
    image, verified against the stored checksum.
    @raise Corrupt_page on an unallocated page id or checksum mismatch.
    @raise Tm_fault.Fault.Io_error when the [pager.read] failpoint
    fires with the [Fail] action. *)

val write : t -> int -> bytes -> unit
(** Physical write (counted); pads or truncates to the page size and
    records the checksum of the intended image (so an injected torn
    write is detected on the next read).
    @raise Corrupt_page on an unallocated page id. *)

val verify_page : t -> int -> bool
(** Offline integrity check: does the stored image match its checksum?
    Bypasses failpoints and I/O accounting. [true] when checksums are
    disabled; [false] for unallocated ids. *)

val unsafe_flip_bit : t -> page:int -> bit:int -> unit
(** Test hook: flip one bit of the stored page image in place, leaving
    the sidecar checksum stale — the corruption reads and fsck must
    detect. *)

val unsafe_flip_crc_bit : t -> page:int -> bit:int -> unit
(** Test hook: flip one bit of the stored checksum itself. *)

val reset_stats : t -> unit
val physical_reads : t -> int
val physical_writes : t -> int
