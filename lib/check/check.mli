(** Offline invariant verifier (fsck) for the index family.

    Walks the stored structures of a database — B+-tree pages read
    {e raw}, bypassing the decoded-node cache, so corruption the cache
    would mask is still seen — and reports typed violations with
    page/entry provenance:

    - {e B+-tree invariants}: in-node key ordering, leaf-chain ordering
      across pages, height/entry-count consistency, front-coding
      round-trip, no dangling page ids, no page cycles;
    - {e codec invariants}: delta-encoded IdList monotonicity and
      re-encode round-trip;
    - {e index-family semantics}, cross-checked against the edge table,
      region index and schema catalog: ROOTPATHS holds exactly the
      root-to-leaf prefixes, DATAPATHS the subpath closure,
      |IdList| = |SchemaPath| (paper Section 3.1), and stored id chains
      agree with parent/child edges and region containment;
    - {e heap-file pages}: header/record decodability and record
      counts.

    Check counters ([check.structures], [check.pages_checked],
    [check.entries_checked], [check.violations]) are recorded through
    {!Tm_obs.Obs}.

    The IdList-level rules assume no [id_keep] pruning was used at build
    time (none of {!Twigmatch.Database}'s configurations uses it); the
    multiset comparison against {!Tm_index.Family.expected_entries} is
    exact under every build option. *)

(** Violation classes. *)
type code =
  | Checksum  (** stored page image fails its CRC32, or reading it raised [Corrupt_page] *)
  | Page_bounds  (** page id outside the pager's allocated range *)
  | Page_cycle  (** a page reachable twice in one tree walk *)
  | Page_decode  (** stored page image does not decode *)
  | Key_order  (** in-node key order or separator-bound breach *)
  | Leaf_chain  (** broken next pointer / cross-leaf ordering *)
  | Balance  (** leaves at different depths, or recorded height wrong *)
  | Entry_count  (** recorded entry count disagrees with the walk *)
  | Roundtrip  (** re-encoding the decoded page differs from the image *)
  | Key_decode  (** entry key does not decode under the member layout *)
  | Idlist_codec  (** IdList payload fails decode or re-encode *)
  | Idlist_order  (** decoded ids not strictly increasing *)
  | Idlist_length  (** |IdList| inconsistent with |SchemaPath| *)
  | Missing_row  (** an expected 4-ary row is absent from the member *)
  | Extra_row  (** the member holds a row the document never produced *)
  | Edge_link  (** id chain contradicts parent/child edges or regions *)
  | Catalog  (** a rooted schema path missing from the schema catalog *)
  | Heap_corrupt  (** heap page undecodable or record count wrong *)

val code_name : code -> string
(** Stable snake_case name (used in text and JSON reports). *)

type location = {
  structure : string;  (** B+-tree or heap-file name *)
  page : int option;
  entry : int option;  (** slot within the page *)
  key : string option;  (** raw stored key, when one is implicated *)
}

type violation = { code : code; loc : location; detail : string }

type summary = { structures : int; pages : int; entries : int }
(** What was covered, for "checked how much?" accounting. *)

type report = { violations : violation list; summary : summary }

val is_clean : report -> bool

val check_pager : Tm_storage.Pager.t -> violation list
(** Page-image checksum verification only: every allocated page is
    re-read below the buffer pool and compared against its stored
    CRC32 ({!Tm_storage.Pager.verify_page}). Read-only — dirty frames
    still in the buffer pool are not flushed. *)

val check_tree : Tm_storage.Bptree.t -> violation list
(** Structural B+-tree checks only (raw page walk). *)

val check_heap : Tm_storage.Heap_file.t -> violation list
(** Heap-file page checks only. *)

val check_database : Twigmatch.Database.t -> report
(** Full verification of every structure the database materialized. *)

val report_to_string : report -> string
(** Human-readable report, one line per violation with provenance. *)

val report_to_json : report -> string
(** [{"clean":bool,"summary":{...},"violations":[...]}] — see the
    README for the schema. *)
