examples/index_tradeoffs.mli:
