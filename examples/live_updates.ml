(* Live updates + the cost-based optimizer.

     dune exec examples/live_updates.exe

   Walks the paper's Section 7 scenario end to end: start from the
   Figure 1 book, let the optimizer explain its plans, insert an author
   into the existing book (maintaining every index incrementally),
   query again, then delete and verify the database is back where it
   started. *)

open Twigmatch
module T = Tm_xml.Xml_tree

let query_str = "/book[title = 'XML']//author[fn = 'jane'][ln = 'doe']"

let show db twig label =
  let r, strategy, reason = Executor.run_auto db twig in
  Printf.printf "%s: %d matches under %s\n  (%s)\n" label (List.length r.Executor.ids)
    (Database.strategy_name strategy) reason;
  r.Executor.ids

let () =
  let doc =
    Tm_xml.Xml_parser.parse
      {|<book>
          <title>XML</title>
          <allauthors>
            <author><fn>jane</fn><ln>poe</ln></author>
            <author><fn>john</fn><ln>doe</ln></author>
          </allauthors>
          <year>2000</year>
        </book>|}
  in
  let db = Database.create doc in
  let twig = Tm_query.Xpath_parser.parse query_str in

  Printf.printf "== plan ==\n%s\n" (Executor.explain ~hint:(Tm_plan.Hint.Force Database.RP) db twig);

  (* 1. No jane doe yet. *)
  ignore (show db twig "before insert");

  (* 2. Insert one (the paper's Section 7 example), updating the Edge
     table, catalog, statistics, ROOTPATHS, DATAPATHS, DataGuide, Index
     Fabric, ASR and Join Indices incrementally. *)
  let allauthors =
    T.fold doc
      (fun acc n -> if T.label_name n = "allauthors" && acc = None then Some n.T.id else acc)
      None
    |> Option.get
  in
  let new_id =
    Updates.insert_subtree db ~parent:allauthors
      (T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ])
  in
  Printf.printf "\ninserted author as node %d\n" new_id;

  (* 3. Every strategy sees her. *)
  let ids = show db twig "after insert" in
  assert (ids = [ new_id ]);
  List.iter
    (fun s ->
      Printf.printf "  %-8s -> [%s]\n" (Database.strategy_name s)
        (String.concat ";" (List.map string_of_int (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids)))
    Database.all_strategies;

  (* 4. Range query over the updated data. *)
  let range = Tm_query.Xpath_parser.parse "//fn[. >= 'jane'][. <= 'john']" in
  Printf.printf "\n//fn in ['jane','john']: %d matches\n"
    (List.length (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db range).Executor.ids);

  (* 5. Delete and verify we are back to the initial answers. *)
  let removed = Updates.delete_subtree db new_id in
  Printf.printf "\ndeleted subtree (%d nodes)\n" removed;
  ignore (show db twig "after delete")
