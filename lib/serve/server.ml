(** A minimal HTTP/1.1 scrape-and-query endpoint over a loaded
    database, built on stdlib [Unix] sockets only — the long-running
    process the telemetry pipeline exists to observe.

    Request handling is separated from socket handling: {!handle} maps
    a (method, target) pair to a response with no I/O at all, so the
    endpoint surface is unit-testable without binding a port; {!create}
    / {!run} / {!stop} wrap it in a loopback listener. Connections are
    served one at a time on the calling domain — a scrape target, not a
    web server. *)

open Twigmatch

type response = { status : int; content_type : string; body : string }

let c_requests = Tm_obs.Obs.counter "serve.requests"
let h_request_ms = Tm_obs.Obs.histogram "serve.request.ms"

(* ------------------------------------------------------------------ *)
(* Target parsing                                                      *)
(* ------------------------------------------------------------------ *)

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let url_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '+' -> Buffer.add_char buf ' '
      | '%' when i + 2 < n -> (
        match (hex_value s.[i + 1], hex_value s.[i + 2]) with
        | Some h, Some l -> Buffer.add_char buf (Char.chr ((h * 16) + l))
        | _ ->
          Buffer.add_char buf '%';
          Buffer.add_char buf s.[i + 1];
          Buffer.add_char buf s.[i + 2])
      | c -> Buffer.add_char buf c);
      go (i + if s.[i] = '%' && i + 2 < n && Option.is_some (hex_value s.[i + 1]) && Option.is_some (hex_value s.[i + 2]) then 3 else 1)
    end
  in
  go 0;
  Buffer.contents buf

(* "/slow?threshold_ms=5&x=1" -> ("/slow", [("threshold_ms","5"); ("x","1")]) *)
let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some q ->
    let path = String.sub target 0 q in
    let rest = String.sub target (q + 1) (String.length target - q - 1) in
    let params =
      String.split_on_char '&' rest
      |> List.filter_map (fun kv ->
             if String.equal kv "" then None
             else
               match String.index_opt kv '=' with
               | None -> Some (url_decode kv, "")
               | Some e ->
                 Some
                   ( url_decode (String.sub kv 0 e),
                     url_decode (String.sub kv (e + 1) (String.length kv - e - 1)) ))
    in
    (path, params)

(* ------------------------------------------------------------------ *)
(* Endpoint bodies                                                     *)
(* ------------------------------------------------------------------ *)

let json = "application/json"
let text = "text/plain; charset=utf-8"
let respond status content_type body = { status; content_type; body }
let json_string = Tm_obs.Export.json_string
let json_float = Tm_obs.Export.json_float

(* Every catch-all below converts a failure into an HTTP body. Fatal
   runtime conditions must not be laundered into a 500 the client
   retries against a dying process — re-raise them first. *)
let reraise_if_fatal e = match e with Out_of_memory | Stack_overflow -> raise e | _ -> ()

(* A canary twig for /healthz: the root tag of the first catalogued
   rooted path, so the lookup touches the live index structures but
   stays O(document roots). *)
let default_canary (db : Database.t) =
  match Tm_xmldb.Schema_catalog.entries db.Database.catalog with
  | [] -> None
  | e :: _ -> (
    match Tm_xmldb.Schema_path.to_list e.Tm_xmldb.Schema_catalog.path with
    | t :: _ ->
      Some (Tm_query.Xpath_parser.parse ("/" ^ Tm_xmldb.Dictionary.name db.Database.dict t))
    | [] -> None)

let healthz ?canary (db : Database.t) =
  (* fsck-lite: pager-level page checks only (checksums, bounds,
     decodability) — milliseconds, unlike the full structural fsck *)
  let violations = Tm_check.Check.check_pager db.Database.pager in
  let canary = match canary with Some _ as c -> c | None -> default_canary db in
  let canary_outcome =
    match canary with
    | None -> Ok 0
    | Some twig -> (
      match Executor.run db twig with
      | r -> Ok (List.length r.Executor.ids)
      | exception e ->
        reraise_if_fatal e;
        Error (Printexc.to_string e))
  in
  match (violations, canary_outcome) with
  | [], Ok rows ->
    respond 200 json
      (Printf.sprintf "{\"status\":\"ok\",\"canary_rows\":%d,\"pager_violations\":0}" rows)
  | vs, outcome ->
    let canary_field =
      match outcome with
      | Ok rows -> Printf.sprintf "\"canary_rows\":%d" rows
      | Error msg -> Printf.sprintf "\"canary_error\":%s" (json_string msg)
    in
    respond 500 json
      (Printf.sprintf "{\"status\":\"unhealthy\",%s,\"pager_violations\":%d}" canary_field
         (List.length vs))

let warnings_json () =
  let one (w : Tm_obs.Obs.warning) =
    Printf.sprintf "{\"time\":%s,\"trace\":%s,\"site\":%s,\"msg\":%s}" (json_float w.Tm_obs.Obs.w_time)
      (match w.Tm_obs.Obs.w_ctx with Some id -> string_of_int id | None -> "null")
      (json_string w.Tm_obs.Obs.w_site) (json_string w.Tm_obs.Obs.w_msg)
  in
  "[" ^ String.concat "," (List.map one (Tm_obs.Obs.warnings ())) ^ "]"

let run_query (db : Database.t) params =
  match List.assoc_opt "q" params with
  | None | Some "" -> respond 400 json "{\"error\":\"missing q parameter\"}"
  | Some q -> (
    match Tm_query.Xpath_parser.parse q with
    | exception e ->
      reraise_if_fatal e;
      respond 400 json
        (Printf.sprintf "{\"error\":%s}" (json_string ("parse: " ^ Printexc.to_string e)))
    | twig -> (
      let hint =
        match List.assoc_opt "hint" params with
        | Some h -> Tm_plan.Hint.of_string h
        | None -> (
          match List.assoc_opt "s" params with
          | None -> Ok Tm_plan.Hint.Auto
          | Some s -> Tm_plan.Hint.of_string_compat ~site:"serve./query?s=" s)
      in
      let deadline_ms =
        Option.bind (List.assoc_opt "timeout_ms" params) float_of_string_opt
      in
      match hint with
      | Error msg -> respond 400 json (Printf.sprintf "{\"error\":%s}" (json_string msg))
      | Ok hint -> (
        match Executor.run ~hint ?deadline_ms db twig with
        | r ->
          respond 200 json
            (Printf.sprintf
               "{\"trace_id\":%d,\"strategy\":%s,\"reason\":%s,\"rows\":%d,\"replans\":%d,\"plan\":%s,\"ids\":[%s]}"
               r.Executor.trace_id
               (json_string (Database.strategy_name r.Executor.strategy))
               (json_string r.Executor.reason)
               (List.length r.Executor.ids)
               r.Executor.replans
               (Tm_plan.Plan.to_json r.Executor.plan)
               (String.concat "," (List.map string_of_int r.Executor.ids)))
        (* The HTTP edge is the sanctioned end of the typed-error chain:
           past here there is no caller left to degrade gracefully. *)
        | exception Executor.Timeout { ms; _ } ->
          (respond 503 json
             (Printf.sprintf "{\"error\":\"deadline of %s ms expired\"}" (json_float ms))
          [@analyze.boundary])
        | exception Tm_storage.Pager.Corrupt_page { page; detail } ->
          (respond 500 json
             (Printf.sprintf "{\"error\":%s}"
                (json_string (Printf.sprintf "corrupt page %d: %s" page detail)))
          [@analyze.boundary]))))

(* /plan?q=XPATH[&hint=...] — the planner's choice as JSON, without
   executing the query. *)
let plan_query (db : Database.t) params =
  match List.assoc_opt "q" params with
  | None | Some "" -> respond 400 json "{\"error\":\"missing q parameter\"}"
  | Some q -> (
    match Tm_query.Xpath_parser.parse q with
    | exception e ->
      reraise_if_fatal e;
      respond 400 json
        (Printf.sprintf "{\"error\":%s}" (json_string ("parse: " ^ Printexc.to_string e)))
    | twig -> (
      let hint =
        match List.assoc_opt "hint" params with
        | Some h -> Tm_plan.Hint.of_string h
        | None -> Ok Tm_plan.Hint.Auto
      in
      match hint with
      | Error msg -> respond 400 json (Printf.sprintf "{\"error\":%s}" (json_string msg))
      | Ok hint -> (
        match Executor.explain ~hint db twig with
        | text ->
          respond 200 json
            (Printf.sprintf "{\"query\":%s,\"explain\":%s}" (json_string q) (json_string text))
        | exception e ->
          reraise_if_fatal e;
          respond 500 json
            (Printf.sprintf "{\"error\":%s}" (json_string (Printexc.to_string e))))))

let index_body =
  String.concat "\n"
    [
      "twigql serve endpoints:";
      "  /metrics              Prometheus text metrics";
      "  /healthz              canary lookup + pager fsck-lite";
      "  /journal              query-lifecycle journal (JSON)";
      "  /slow[?threshold_ms=N]  slow-query log (JSON, slowest first)";
      "  /warnings             structured warnings (JSON)";
      "  /query?q=XPATH[&hint=auto|STRATEGY][&timeout_ms=N]  run a twig query";
      "                        (s=STRATEGY still accepted, deprecated)";
      "  /plan?q=XPATH[&hint=auto|STRATEGY]  explain the chosen plan (JSON)";
      "";
    ]

let handle ?canary (db : Database.t) ~meth ~target =
  Tm_obs.Obs.incr c_requests;
  let t0 = if Tm_obs.Obs.enabled () then Unix.gettimeofday () else 0.0 in
  let path, params = split_target target in
  let dispatch () =
    if not (String.equal meth "GET") then
      respond 405 text "method not allowed\n"
    else
      match path with
      | "/" -> respond 200 text index_body
      | "/metrics" -> respond 200 text (Tm_obs.Export.metrics_to_prometheus ())
      | "/healthz" -> healthz ?canary db
      | "/journal" -> respond 200 json (Tm_obs.Journal.to_json (Tm_obs.Journal.entries ()))
      | "/slow" ->
        let threshold_ms =
          Option.bind (List.assoc_opt "threshold_ms" params) float_of_string_opt
        in
        respond 200 json (Tm_obs.Journal.to_json (Tm_obs.Journal.slow ?threshold_ms ()))
      | "/warnings" -> respond 200 json (warnings_json ())
      | "/query" -> run_query db params
      | "/plan" -> plan_query db params
      | _ -> respond 404 text "not found\n"
  in
  let response =
    try dispatch ()
    with e ->
      reraise_if_fatal e;
      respond 500 json (Printf.sprintf "{\"error\":%s}" (json_string (Printexc.to_string e)))
  in
  if t0 > 0.0 then Tm_obs.Obs.observe h_request_ms ((Unix.gettimeofday () -. t0) *. 1e3);
  response

(* ------------------------------------------------------------------ *)
(* The socket server                                                   *)
(* ------------------------------------------------------------------ *)

type t = {
  db : Database.t;
  canary : Tm_query.Twig.t option;
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
}

let port t = t.port

let create ?port:(want_port = 0) ?canary db =
  let canary = match canary with Some c -> Some c | None -> default_canary db in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, want_port));
     Unix.listen sock 16
   with e ->
     Unix.close sock;
     raise e);
  let port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> want_port
  in
  { db; canary; sock; port; stopping = Atomic.make false }

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

(* Read until the end of the request headers (or EOF / a size cap —
   requests here are one GET line plus a few headers). *)
let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf < 16384 then begin
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        (* header terminator seen? *)
        let rec find i =
          if i + 3 >= String.length s then false
          else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then
            true
          else find (i + 1)
        in
        if not (find 0) then go ()
      end
    end
  in
  go ();
  Buffer.contents buf

let serve_connection t fd =
  let request = read_request fd in
  let request_line =
    match String.index_opt request '\r' with
    | Some i -> String.sub request 0 i
    | None -> request
  in
  let response =
    match String.split_on_char ' ' request_line with
    | meth :: target :: _ -> handle ?canary:t.canary t.db ~meth ~target
    | _ -> { status = 400; content_type = text; body = "bad request\n" }
  in
  write_all fd
    (Printf.sprintf "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       response.status (reason_phrase response.status) response.content_type
       (String.length response.body) response.body)

let run t =
  let rec loop () =
    match Unix.accept t.sock with
    | client, _ ->
      (try Fun.protect ~finally:(fun () -> Unix.close client) (fun () -> serve_connection t client)
       with e ->
         reraise_if_fatal e;
         if not (Atomic.get t.stopping) then
           Tm_obs.Obs.warn ~site:"serve.connection" (Printexc.to_string e));
      if not (Atomic.get t.stopping) then loop ()
    | exception Unix.Unix_error (_, _, _) when Atomic.get t.stopping -> ()
  in
  loop ()

let stop t =
  Atomic.set t.stopping true;
  (* Closing the listening socket makes a blocked [accept] fail, which
     the loop reads as shutdown. *)
  try Unix.close t.sock with Unix.Unix_error (_, _, _) -> ()
