lib/xmldb/path_relation.mli: Dictionary Schema_path Shred Tm_xml
