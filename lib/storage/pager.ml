(** Simulated disk: a growable array of fixed-size pages.

    The pager is the bottom of the storage stack. It hands out page ids,
    stores raw page images, and counts {e physical} reads and writes.
    All structured access should go through {!Buffer_pool}, which adds
    caching and counts {e logical} accesses; the gap between the two is
    the simulated I/O that the benchmark harness reports.

    Every page carries a CRC32 (unless checksums are disabled at
    creation), recomputed on write and verified on read, so corruption —
    whether injected through a [pager.read]/[pager.write] failpoint or
    planted by a test — surfaces as a typed {!Corrupt_page} naming the
    page rather than as garbage decoded downstream. The checksum lives
    in a sidecar array, not inside the page image, mirroring the
    out-of-band page headers real engines use; page payloads keep the
    full page to themselves.

    A single mutex serialises every operation, making the pager safe to
    share across domains. The lock covers little work (an array slot
    swap plus a [Bytes.copy]), and the buffer pool absorbs most traffic
    before it reaches the pager, so contention here is not the
    bottleneck it would be on a real disk. *)

exception Corrupt_page of { page : int; detail : string }

let () =
  Printexc.register_printer (function
    | Corrupt_page { page; detail } ->
      Some (Printf.sprintf "Corrupt_page(page %d: %s)" page detail)
    | _ -> None)

(* Observability mirrors of the physical I/O counters, plus byte
   volumes (every transfer moves exactly one page image). *)
let c_reads = Tm_obs.Obs.counter "pager.physical_reads"
let c_writes = Tm_obs.Obs.counter "pager.physical_writes"
let c_read_bytes = Tm_obs.Obs.counter "pager.read_bytes"
let c_write_bytes = Tm_obs.Obs.counter "pager.write_bytes"

(* Failpoint sites (see {!Tm_fault.Fault}). Hooks fire before the
   physical counters move, so a failed call is not a counted transfer
   and a retried success counts exactly once — tests asserting exact
   physical-read counts stay deterministic under an injected fault leg. *)
let site_read = "pager.read"
let site_write = "pager.write"
let site_alloc = "pager.alloc"

(* A page-level transaction: one writer domain installs copy-on-write
   page versions tagged with a reserved (not yet published) epoch. The
   pre-image of every page first touched in the transaction is pushed
   onto that page's version chain, so epoch-pinned readers keep seeing
   the last committed image until {!commit_txn} publishes the epoch.
   Structures above the pager (B+-trees, heap files) stage their
   metadata and register a participant callback to publish or drop it
   when the transaction ends. *)
type txn = {
  t_epoch : int;  (** reserved epoch; published on commit *)
  t_writer : int;  (** [Domain.self] of the (single) writer *)
  t_dirty : (int, unit) Hashtbl.t;  (** pages written (including allocs) *)
  mutable t_participants : (committed:bool -> unit) list;
}

type t = {
  page_size : int;
  checksums : bool;
  lock : Lock.t;
  mutable pages : bytes array; (* backing store, grown geometrically *)
  mutable crcs : int array; (* sidecar CRC32 per page (unused when checksums off) *)
  mutable versions : (int * bytes * int) list array;
      (* per page: superseded (epoch, image, crc), newest first *)
  mutable page_epochs : int array; (* epoch that wrote the current image *)
  mutable n_pages : int;
  mutable epoch : int; (* last published commit epoch *)
  versioned : (int, unit) Hashtbl.t; (* page ids with a non-empty version chain *)
  pins : (int, int) Hashtbl.t; (* pinned epoch -> pin count *)
  txn : txn option Atomic.t;
  snapshot_work : int Atomic.t;
      (* versioned-page count + active-txn flag: a lock-free hint that
         lets the read fast path skip all epoch bookkeeping *)
  mutable physical_reads : int;
  mutable physical_writes : int;
}

let default_page_size = 8192

let create ?(page_size = default_page_size) ?(checksums = true) () =
  {
    page_size;
    checksums;
    lock = Lock.create Lock.Inner;
    pages = Array.make 64 Bytes.empty;
    crcs = Array.make 64 0;
    versions = Array.make 64 [];
    page_epochs = Array.make 64 0;
    n_pages = 0;
    epoch = 0;
    versioned = Hashtbl.create 16;
    pins = Hashtbl.create 8;
    txn = Atomic.make None;
    snapshot_work = Atomic.make 0;
    physical_reads = 0;
    physical_writes = 0;
  }

let locked t f = Lock.with_lock t.lock f

let page_size t = t.page_size
let checksums t = t.checksums
let page_count t = locked t (fun () -> t.n_pages)

(** Total bytes occupied on the simulated disk. *)
let size_bytes t = page_count t * t.page_size

let grow t needed =
  if needed > Array.length t.pages then begin
    let cap = max needed (2 * Array.length t.pages) in
    let pages = Array.make cap Bytes.empty in
    let crcs = Array.make cap 0 in
    let versions = Array.make cap [] in
    let page_epochs = Array.make cap 0 in
    Array.blit t.pages 0 pages 0 t.n_pages;
    Array.blit t.crcs 0 crcs 0 t.n_pages;
    Array.blit t.versions 0 versions 0 t.n_pages;
    Array.blit t.page_epochs 0 page_epochs 0 t.n_pages;
    t.pages <- pages;
    t.crcs <- crcs;
    t.versions <- versions;
    t.page_epochs <- page_epochs
  end

(* The active transaction, provided the calling domain is its writer.
   Everything txn-specific in [alloc]/[write] keys off this: other
   domains (and all callers outside a transaction) take the plain
   path. *)
let txn_if_writer t =
  match Atomic.get t.txn with
  | Some tx when tx.t_writer = (Domain.self () :> int) -> Some tx
  | Some _ | None -> None

(* Computed eagerly at module init: a [lazy] here would be forced from
   whichever domain allocates first, and unsynchronized forcing races. *)
let crc_of_zero_page = Codec.crc32 (Bytes.make default_page_size '\x00')

(** Allocate a fresh zeroed page; returns its id. *)
let alloc t =
  Tm_fault.Fault.guard site_alloc;
  locked t (fun () ->
      grow t (t.n_pages + 1);
      let id = t.n_pages in
      t.pages.(id) <- Bytes.make t.page_size '\x00';
      if t.checksums then
        t.crcs.(id) <-
          (if t.page_size = default_page_size then crc_of_zero_page else Codec.crc32 t.pages.(id));
      (match txn_if_writer t with
      | Some tx ->
        (* Pages born inside a transaction have no pre-image; on abort
           they are simply re-zeroed (their ids stay allocated). *)
        Hashtbl.replace tx.t_dirty id ();
        t.page_epochs.(id) <- tx.t_epoch
      | None -> t.page_epochs.(id) <- t.epoch);
      t.n_pages <- id + 1;
      id)

let check_id t id =
  if id < 0 || id >= t.n_pages then
    raise (Corrupt_page { page = id; detail = "unallocated page id" })

(** Physical read: returns a copy of the page image, verified against the
    stored checksum. Only successful reads are counted. *)
let read t id =
  let data, crc =
    locked t (fun () ->
        check_id t id;
        (Bytes.copy t.pages.(id), t.crcs.(id)))
  in
  (* The failpoint may raise (Fail) or corrupt the copy (Torn/Bitflip);
     a corrupted copy then fails the checksum below, exactly as a bad
     sector would. *)
  let data = Tm_fault.Fault.apply ~site:site_read data in
  if t.checksums && Codec.crc32 data <> crc then
    raise (Corrupt_page { page = id; detail = "checksum mismatch on read" });
  locked t (fun () -> t.physical_reads <- t.physical_reads + 1);
  Tm_obs.Obs.incr c_reads;
  Tm_obs.Obs.add c_read_bytes t.page_size;
  data

(** Physical write: stores a copy of [data] (padded/truncated to page
    size). The stored checksum is always that of the {e intended} image:
    a torn/bit-flipped injected write therefore persists bytes that no
    longer match their CRC, and the damage is detected on the next
    read — the torn-write crash model. *)
let write t id data =
  let page = Bytes.make t.page_size '\x00' in
  let len = min (Bytes.length data) t.page_size in
  Bytes.blit data 0 page 0 len;
  let crc = if t.checksums then Codec.crc32 page else 0 in
  let page = Tm_fault.Fault.apply ~site:site_write page in
  locked t (fun () ->
      check_id t id;
      (match txn_if_writer t with
      | Some tx ->
        (* First touch in this transaction: push the committed image
           onto the version chain so epoch-pinned readers keep a
           consistent view, then tag the page with the reserved epoch. *)
        if not (Hashtbl.mem tx.t_dirty id) then begin
          Hashtbl.replace tx.t_dirty id ();
          if t.page_epochs.(id) < tx.t_epoch then begin
            t.versions.(id) <- (t.page_epochs.(id), t.pages.(id), t.crcs.(id)) :: t.versions.(id);
            if not (Hashtbl.mem t.versioned id) then begin
              Hashtbl.replace t.versioned id ();
              Atomic.incr t.snapshot_work
            end
          end
        end;
        t.page_epochs.(id) <- tx.t_epoch
      | None -> t.page_epochs.(id) <- t.epoch);
      t.physical_writes <- t.physical_writes + 1;
      t.pages.(id) <- page;
      t.crcs.(id) <- crc);
  Tm_obs.Obs.incr c_writes;
  Tm_obs.Obs.add c_write_bytes t.page_size

(** Offline integrity check: does the stored image still match its
    checksum? Bypasses failpoints and I/O accounting (it is the fsck
    path, not a query path). Always true when checksums are disabled;
    false for unallocated ids. *)
let verify_page t id =
  locked t (fun () ->
      if id < 0 || id >= t.n_pages then false
      else if not t.checksums then true
      else Codec.crc32 t.pages.(id) = t.crcs.(id))
[@@analyze.no_failpoint "fsck path: integrity checks must see the store as it is, not as injected"]

(** Test hooks: plant corruption directly in the backing store, without
    touching the sidecar checksum — the states fsck and the read path
    must detect. *)
let unsafe_flip_bit t ~page ~bit =
  locked t (fun () ->
      check_id t page;
      let img = t.pages.(page) in
      let byte = bit / 8 mod Bytes.length img in
      Bytes.set img byte (Char.chr (Char.code (Bytes.get img byte) lxor (1 lsl (bit mod 8)))))
[@@analyze.no_failpoint "test hook: plants the corruption failpoints are meant to simulate"]

let unsafe_flip_crc_bit t ~page ~bit =
  locked t (fun () ->
      check_id t page;
      t.crcs.(page) <- t.crcs.(page) lxor (1 lsl (bit mod 32)))
[@@analyze.no_failpoint "test hook: plants the corruption failpoints are meant to simulate"]

let reset_stats t =
  locked t (fun () ->
      t.physical_reads <- 0;
      t.physical_writes <- 0)

let physical_reads t = locked t (fun () -> t.physical_reads)
let physical_writes t = locked t (fun () -> t.physical_writes)

(* ------------------------------------------------------------------ *)
(* Epochs, snapshot reads and page-level transactions                  *)
(* ------------------------------------------------------------------ *)

let current_epoch t = locked t (fun () -> t.epoch)
let snapshot_active t = Atomic.get t.snapshot_work > 0

let epoch_of_page t id =
  locked t (fun () ->
      check_id t id;
      t.page_epochs.(id))
[@@analyze.no_failpoint "epoch metadata only; page bytes are not touched"]

let in_txn t = Option.is_some (Atomic.get t.txn)
let in_txn_writer t = Option.is_some (txn_if_writer t)

(** Snapshot read: the newest image of [id] whose epoch is [<= epoch].
    Serves the current image when it qualifies, else walks the version
    chain. Raises {!Corrupt_page} if no version covers the requested
    epoch (a pin taken before the versions were pruned away — callers
    must hold a registered pin, see {!pin}). *)
let read_at t ~epoch id =
  let data, crc =
    locked t (fun () ->
        check_id t id;
        if t.page_epochs.(id) <= epoch then (Bytes.copy t.pages.(id), t.crcs.(id))
        else
          match List.find_opt (fun (ve, _, _) -> ve <= epoch) t.versions.(id) with
          | Some (_, img, vcrc) -> (Bytes.copy img, vcrc)
          | None ->
            raise (Corrupt_page { page = id; detail = "no page version at pinned epoch" }))
  in
  let data = Tm_fault.Fault.apply ~site:site_read data in
  if t.checksums && Codec.crc32 data <> crc then
    raise (Corrupt_page { page = id; detail = "checksum mismatch on snapshot read" });
  locked t (fun () -> t.physical_reads <- t.physical_reads + 1);
  Tm_obs.Obs.incr c_reads;
  Tm_obs.Obs.add c_read_bytes t.page_size;
  data

(* Drop versions of [id] no pin can reach: for each pinned epoch the
   newest version at or below it (when the current image is above it)
   stays; everything else goes. The current {e published} epoch counts
   as an implicit pin: while an uncommitted transaction has overwritten
   the page (page epoch above [t.epoch]), the last committed image
   lives only in the chain, and a reader may still {!pin} at [t.epoch]
   and need it — an unpin-triggered prune must not discard it. Caller
   holds the pager lock. *)
let prune_versions_locked t id =
  match t.versions.(id) with
  | [] -> ()
  | vs ->
    let keep_for p acc =
      if t.page_epochs.(id) <= p then acc
      else
        match List.find_opt (fun (ve, _, _) -> ve <= p) vs with
        | Some (ve, _, _) -> ve :: acc
        | None -> acc
    in
    let keep = Hashtbl.fold (fun p _ acc -> keep_for p acc) t.pins (keep_for t.epoch []) in
    let vs' = List.filter (fun (ve, _, _) -> List.exists (fun k -> k = ve) keep) vs in
    t.versions.(id) <- vs';
    if List.length vs' = 0 && Hashtbl.mem t.versioned id then begin
      Hashtbl.remove t.versioned id;
      Atomic.decr t.snapshot_work
    end
[@@analyze.no_failpoint "version-chain GC: no live page bytes are read or written"]

(** Register a snapshot pin at the current published epoch; returns the
    pinned epoch. Version chains reachable from a registered pin are
    kept alive until {!unpin}. *)
let pin t =
  let e =
    locked t (fun () ->
        let e = t.epoch in
        Hashtbl.replace t.pins e (1 + Option.value ~default:0 (Hashtbl.find_opt t.pins e));
        e)
  in
  Tm_obs.Flight.emit Tm_obs.Flight.Epoch_pin e 0 "";
  e

let unpin t e =
  let reclaimed =
    locked t (fun () ->
        (match Hashtbl.find_opt t.pins e with
        | Some n when n > 1 -> Hashtbl.replace t.pins e (n - 1)
        | Some _ -> Hashtbl.remove t.pins e
        | None -> ());
        let before = Hashtbl.length t.versioned in
        if before > 0 then begin
          (* Re-prune every versioned page against the remaining pins;
             with no pins left this clears all chains. *)
          let ids = Hashtbl.fold (fun id () acc -> id :: acc) t.versioned [] in
          List.iter (fun id -> prune_versions_locked t id) ids
        end;
        before - Hashtbl.length t.versioned)
  in
  Tm_obs.Flight.emit Tm_obs.Flight.Epoch_unpin e 0 "";
  if reclaimed > 0 then Tm_obs.Flight.emit Tm_obs.Flight.Epoch_prune e reclaimed ""

(** Drop every version chain unconditionally. Only legal with no
    registered pins (checkpoint/recovery quiescence); with pins
    present it degrades to a prune. *)
let clear_versions t =
  let epoch, reclaimed =
    locked t (fun () ->
        let ids = Hashtbl.fold (fun id () acc -> id :: acc) t.versioned [] in
        let before = List.length ids in
        if Hashtbl.length t.pins = 0 then
          List.iter
            (fun id ->
              t.versions.(id) <- [];
              Hashtbl.remove t.versioned id;
              Atomic.decr t.snapshot_work)
            ids
        else List.iter (fun id -> prune_versions_locked t id) ids;
        (t.epoch, before - Hashtbl.length t.versioned))
  in
  if reclaimed > 0 then Tm_obs.Flight.emit Tm_obs.Flight.Epoch_prune epoch reclaimed ""
[@@analyze.no_failpoint "version-chain GC: no live page bytes are read or written"]

let begin_txn t =
  let e =
    locked t (fun () ->
        (match Atomic.get t.txn with
        | Some _ -> invalid_arg "Pager.begin_txn: a transaction is already active"
        | None -> ());
        let tx =
          {
            t_epoch = t.epoch + 1;
            t_writer = (Domain.self () :> int);
            t_dirty = Hashtbl.create 32;
            t_participants = [];
          }
        in
        Atomic.set t.txn (Some tx);
        Atomic.incr t.snapshot_work;
        tx.t_epoch)
  in
  Tm_obs.Flight.emit Tm_obs.Flight.Txn_begin e 0 "";
  e

(** Register a commit/abort callback on the active transaction. Runs
    after the epoch flips (commit) or the pre-images are restored
    (abort), outside the pager lock — participants may touch the pager
    and their own locks freely. *)
let add_participant t f =
  match txn_if_writer t with
  | Some tx -> tx.t_participants <- f :: tx.t_participants
  | None -> invalid_arg "Pager.add_participant: no transaction, or not the writer domain"

(** True while the active transaction has performed no page writes —
    an abort at this point fully restores state (used for clean
    validation-failure aborts). Participants do not count: their
    staging is abortable by construction (abort runs them with
    [committed:false]), and read-only probes may register one just to
    keep decoded nodes writer-private. *)
let txn_clean t =
  match txn_if_writer t with
  | Some tx -> Hashtbl.length tx.t_dirty = 0
  | None -> invalid_arg "Pager.txn_clean: no transaction, or not the writer domain"

(** The pages written by the active transaction, as
    [(page, image, crc32-of-image)] sorted by page id — the redo
    records a WAL logs before commit. The CRC is computed from the
    image itself (not the sidecar), so it is meaningful even with
    checksums disabled. *)
let txn_dirty t =
  match txn_if_writer t with
  | None -> invalid_arg "Pager.txn_dirty: no transaction, or not the writer domain"
  | Some tx ->
    locked t (fun () ->
        Hashtbl.fold
          (fun id () acc -> (id, Bytes.copy t.pages.(id), Codec.crc32 t.pages.(id)) :: acc)
          tx.t_dirty [])
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
[@@analyze.no_failpoint "txn bookkeeping: images are logged to the WAL, not transferred as I/O"]

(** CRC32 of the current image of [id], computed from the bytes (not
    the sidecar) — the recovery cross-check against logged page CRCs. *)
let image_crc t id =
  locked t (fun () ->
      check_id t id;
      Codec.crc32 t.pages.(id))
[@@analyze.no_failpoint "integrity cross-check: reads the store as it is, like verify_page"]

(** Publish the transaction's epoch: one field write under the lock
    flips every page it touched from "invisible to new readers" to
    "current". Version chains of touched pages are pruned against the
    live pins, then participants run with [~committed:true]. *)
let commit_txn t =
  let participants, epoch, dirty =
    locked t (fun () ->
        match Atomic.get t.txn with
        | None -> invalid_arg "Pager.commit_txn: no active transaction"
        | Some tx ->
          t.epoch <- tx.t_epoch;
          Hashtbl.iter (fun id () -> prune_versions_locked t id) tx.t_dirty;
          Atomic.set t.txn None;
          Atomic.decr t.snapshot_work;
          (tx.t_participants, tx.t_epoch, Hashtbl.length tx.t_dirty))
  in
  Tm_obs.Flight.emit Tm_obs.Flight.Txn_commit epoch dirty "";
  Tm_obs.Flight.emit Tm_obs.Flight.Epoch_publish epoch 0 "";
  List.iter (fun f -> f ~committed:true) participants

(** Restore every touched page to its pre-transaction image (pages
    allocated inside the transaction are re-zeroed), discard the
    reserved epoch, and run participants with [~committed:false].
    Returns the touched page ids so callers can invalidate caches
    layered above. *)
let abort_txn t =
  let participants, dirty =
    locked t (fun () ->
        match Atomic.get t.txn with
        | None -> invalid_arg "Pager.abort_txn: no active transaction"
        | Some tx ->
          Hashtbl.iter
            (fun id () ->
              if t.page_epochs.(id) = tx.t_epoch then begin
                match t.versions.(id) with
                | (ve, img, vcrc) :: rest ->
                  t.pages.(id) <- img;
                  t.crcs.(id) <- vcrc;
                  t.page_epochs.(id) <- ve;
                  t.versions.(id) <- rest;
                  if List.length rest = 0 && Hashtbl.mem t.versioned id then begin
                    Hashtbl.remove t.versioned id;
                    Atomic.decr t.snapshot_work
                  end
                | [] ->
                  (* Allocated (or already pruned clean) inside the
                     transaction: reset to the zero page it was born as. *)
                  t.pages.(id) <- Bytes.make t.page_size '\x00';
                  t.crcs.(id) <-
                    (if not t.checksums then 0
                     else if t.page_size = default_page_size then crc_of_zero_page
                     else Codec.crc32 t.pages.(id));
                  t.page_epochs.(id) <- t.epoch
              end)
            tx.t_dirty;
          Atomic.set t.txn None;
          Atomic.decr t.snapshot_work;
          ((tx.t_participants, tx.t_epoch), Hashtbl.fold (fun id () acc -> id :: acc) tx.t_dirty []))
  in
  let participants, epoch = participants in
  Tm_obs.Flight.emit Tm_obs.Flight.Txn_abort epoch (List.length dirty) "";
  List.iter (fun f -> f ~committed:false) participants;
  dirty
[@@analyze.no_failpoint "txn rollback: restores pre-images captured by a faultable write"]
