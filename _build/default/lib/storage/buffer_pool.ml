(** LRU buffer pool over a {!Pager}.

    Mirrors the paper's experimental setup (Section 5.1.1: a fixed-size
    buffer pool with the OS cache disabled): every page access is a
    logical read; accesses that miss the pool cost a simulated I/O
    (a physical {!Pager.read}); dirty pages are written back on eviction
    and on {!flush_all}. Capacity is a number of frames. *)

(* Observability mirrors of the pool's own stats: gated on the global
   sink so per-query spans can attribute cache behaviour to operators. *)
let c_hits = Tm_obs.Obs.counter "buffer_pool.hits"
let c_misses = Tm_obs.Obs.counter "buffer_pool.misses"
let c_evictions = Tm_obs.Obs.counter "buffer_pool.evictions"

type frame = { mutable data : bytes; mutable dirty : bool }

type t = {
  pager : Pager.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t; (* page id -> frame *)
  (* LRU order: most-recently-used at the front of [order]; we keep a
     sequence number per page and scan for the minimum on eviction, which
     is O(capacity) but capacity is small and eviction infrequent at our
     scales. A doubly-linked list would be the production choice; the
     simple scheme keeps the invariants obvious. *)
  last_used : (int, int) Hashtbl.t;
  mutable clock : int;
  mutable logical_reads : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 1024) pager =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  {
    pager;
    capacity;
    frames = Hashtbl.create (2 * capacity);
    last_used = Hashtbl.create (2 * capacity);
    clock = 0;
    logical_reads = 0;
    misses = 0;
    evictions = 0;
  }

let pager t = t.pager
let capacity t = t.capacity

let touch t id =
  t.clock <- t.clock + 1;
  Hashtbl.replace t.last_used id t.clock

let evict_one t =
  (* Find the least-recently-used resident page and write it back if dirty. *)
  let victim = ref (-1) and best = ref max_int in
  Hashtbl.iter
    (fun id seq ->
      if seq < !best then begin
        best := seq;
        victim := id
      end)
    t.last_used;
  let id = !victim in
  assert (id >= 0);
  (match Hashtbl.find_opt t.frames id with
  | Some fr when fr.dirty -> Pager.write t.pager id fr.data
  | _ -> ());
  Hashtbl.remove t.frames id;
  Hashtbl.remove t.last_used id;
  t.evictions <- t.evictions + 1;
  Tm_obs.Obs.incr c_evictions

let find_frame t id =
  match Hashtbl.find_opt t.frames id with
  | Some fr ->
    touch t id;
    Tm_obs.Obs.incr c_hits;
    fr
  | None ->
    t.misses <- t.misses + 1;
    Tm_obs.Obs.incr c_misses;
    if Hashtbl.length t.frames >= t.capacity then evict_one t;
    let fr = { data = Pager.read t.pager id; dirty = false } in
    Hashtbl.replace t.frames id fr;
    touch t id;
    fr

(** Read a page through the pool. The returned bytes must not be mutated;
    use {!write} to modify a page. *)
let read t id =
  t.logical_reads <- t.logical_reads + 1;
  (find_frame t id).data

(** Replace a page's contents through the pool (write-back caching). *)
let write t id data =
  t.logical_reads <- t.logical_reads + 1;
  (* Avoid a pointless physical read when overwriting a non-resident page. *)
  (match Hashtbl.find_opt t.frames id with
  | Some fr ->
    touch t id;
    fr.data <- data;
    fr.dirty <- true
  | None ->
    if Hashtbl.length t.frames >= t.capacity then evict_one t;
    Hashtbl.replace t.frames id { data; dirty = true };
    touch t id)

(** Allocate a fresh page (through the pager) and cache it as dirty. *)
let alloc t =
  let id = Pager.alloc t.pager in
  write t id (Bytes.make (Pager.page_size t.pager) '\x00');
  id

let flush_all t =
  Hashtbl.iter
    (fun id fr ->
      if fr.dirty then begin
        Pager.write t.pager id fr.data;
        fr.dirty <- false
      end)
    t.frames

(** Drop every cached frame (after writing dirty ones back), simulating a
    cold cache for benchmark runs. *)
let clear t =
  flush_all t;
  Hashtbl.reset t.frames;
  Hashtbl.reset t.last_used

type stats = { logical_reads : int; misses : int; evictions : int }

let stats (t : t) : stats =
  { logical_reads = t.logical_reads; misses = t.misses; evictions = t.evictions }

let reset_stats (t : t) =
  t.logical_reads <- 0;
  t.misses <- 0;
  t.evictions <- 0
