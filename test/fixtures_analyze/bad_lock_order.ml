(* Fixture: two toplevel mutexes acquired in both orders — the
   lock-order pass must report an a/b cycle. *)

let a = Mutex.create ()
let b = Mutex.create ()
let ab () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))
let ba () = Mutex.protect b (fun () -> Mutex.protect a (fun () -> ()))
