lib/exec/relation.mli:
