lib/core/database.ml: Asr Buffer_pool Dictionary Edge_table Family Join_index List Pager Printexc Printf Schema_catalog String Tm_index Tm_storage Tm_xml Tm_xmldb
