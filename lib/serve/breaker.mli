(** Circuit breaker guarding a handler that keeps failing for
    storage-class reasons ({!Tm_storage.Pager.Corrupt_page},
    {!Tm_fault.Fault.Io_error}, {!Twigmatch.Durable.Poisoned}).

    Closed until [failure_threshold] consecutive failures, then Open
    for a cooldown (rejections carry the remaining cooldown as a
    Retry-After hint). After the cooldown it half-opens and {!admit}s
    exactly one probe request: {!success} closes the breaker,
    {!failure} re-opens it with the cooldown doubled up to
    [max_cooldown_ms]. Domain-safe; decisions are O(1) under one
    mutex. *)

type t

val create : ?failure_threshold:int -> ?cooldown_ms:float -> ?max_cooldown_ms:float -> unit -> t
(** Defaults: 5 consecutive failures trip; 1 s cooldown doubling to a
    30 s cap.
    @raise Invalid_argument on a threshold < 1 or a non-positive /
    inverted cooldown range. *)

type decision = Allow | Reject of { retry_after_ms : float }

val admit : t -> decision
(** Consult the breaker before running the handler. An [Allow] from an
    open-then-cooled breaker is the half-open probe: the caller must
    report {!success} or {!failure} for it, or the breaker stays
    half-open rejecting everyone. *)

val success : t -> unit
(** The handler answered: reset the failure count (and close the
    breaker if it was half-open). *)

val failure : ?cls:string -> t -> unit
(** The handler failed with a breaker-class error: count it (Closed),
    or re-open with doubled cooldown (Half-open probe failure). [cls]
    names the failure class (e.g. ["corrupt-page"], ["poisoned"]) and
    is carried on the warning and flight event an open emits. *)

val state : t -> [ `Closed | `Open | `Half_open ]
val trips : t -> int
(** Times the breaker transitioned to Open since creation. *)
