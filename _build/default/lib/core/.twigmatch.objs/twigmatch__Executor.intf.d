lib/core/executor.mli: Database Tm_exec Tm_obs Tm_query
