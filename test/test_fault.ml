(* Tests for Tm_fault (the failpoint registry) and its consumers: the
   pager's checksum + fault hooks, the buffer pool's bounded retries,
   per-query deadlines, and the executor's graceful-degradation chain.

   The registry is process-global and armed from TWIGMATCH_FAILPOINTS
   at module init, so every test starts from [Fault.clear ()] and every
   test that arms a site clears it before returning. *)

open Tm_storage
module Fault = Tm_fault.Fault
module Db = Twigmatch.Database
module Executor = Twigmatch.Executor

let check = Alcotest.check

let with_clear f =
  Fault.clear ();
  Fun.protect ~finally:(fun () -> Fault.clear ()) f

let xmark ?(scale = 0.05) () =
  Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 7; scale }

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_valid () =
  match Fault.parse "pager.read=every:3;a.b=prob:0.5,torn;c=after:2,delay:5" with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok specs ->
    check Alcotest.int "3 specs" 3 (List.length specs);
    (match specs with
    | [ s1; s2; s3 ] ->
      check Alcotest.string "site 1" "pager.read" s1.Fault.site;
      check Alcotest.bool "every:3" true (s1.Fault.trigger = Fault.Every 3);
      check Alcotest.bool "fail is the default action" true (s1.Fault.action = Fault.Fail);
      check Alcotest.bool "prob:0.5" true (s2.Fault.trigger = Fault.Prob 0.5);
      check Alcotest.bool "torn" true (s2.Fault.action = Fault.Torn);
      check Alcotest.bool "after:2" true (s3.Fault.trigger = Fault.After 2);
      check Alcotest.bool "delay:5" true (s3.Fault.action = Fault.Delay_ms 5)
    | _ -> Alcotest.fail "unreachable")

let test_parse_malformed () =
  List.iter
    (fun s ->
      match Fault.parse s with
      | Ok _ -> Alcotest.failf "expected a parse error for %S" s
      | Error _ -> ())
    [
      "pager.read";            (* no '=' *)
      "pager.read=often:3";    (* unknown mode *)
      "pager.read=every:x";    (* non-numeric arg *)
      "pager.read=every:0";    (* every must be >= 1 *)
      "pager.read=prob:1.5";   (* probability out of range *)
      "pager.read=every:2,explode"; (* unknown action *)
      "=every:2";              (* empty site *)
    ]

let test_parse_empty_and_spaces () =
  check Alcotest.bool "empty string is an empty list" true (Fault.parse "" = Ok []);
  match Fault.parse " pager.read=every:2 ; ; " with
  | Ok [ s ] -> check Alcotest.string "trimmed site" "pager.read" s.Fault.site
  | Ok _ | Error _ -> Alcotest.fail "expected exactly one spec from a spacey list"

(* ------------------------------------------------------------------ *)
(* Triggers                                                            *)
(* ------------------------------------------------------------------ *)

let count_fires site n =
  let fired = ref 0 in
  for _ = 1 to n do
    if Fault.fire site <> None then incr fired
  done;
  !fired

let test_every_n () =
  with_clear @@ fun () ->
  Fault.inject ~site:"t.every" (Fault.Every 3);
  check Alcotest.int "fires on calls 3,6,9" 3 (count_fires "t.every" 9);
  check Alcotest.int "calls counted" 9 (Fault.calls "t.every");
  check Alcotest.int "hits counted" 3 (Fault.hits "t.every")

let test_after_k () =
  with_clear @@ fun () ->
  Fault.inject ~site:"t.after" (Fault.After 2);
  check Alcotest.int "fires on calls 3,4,5" 3 (count_fires "t.after" 5)

let test_prob_extremes () =
  with_clear @@ fun () ->
  Fault.inject ~site:"t.never" (Fault.Prob 0.0);
  check Alcotest.int "prob 0 never fires" 0 (count_fires "t.never" 100);
  Fault.inject ~site:"t.always" (Fault.Prob 1.0);
  check Alcotest.int "prob 1 always fires" 100 (count_fires "t.always" 100)

let test_unarmed_and_rearm () =
  with_clear @@ fun () ->
  check Alcotest.bool "unarmed site never fires" true (Fault.fire "t.unarmed" = None);
  check Alcotest.int "unarmed calls are 0" 0 (Fault.calls "t.unarmed");
  Fault.inject ~site:"t.re" (Fault.Every 1);
  ignore (count_fires "t.re" 4);
  Fault.inject ~site:"t.re" (Fault.Every 1);
  check Alcotest.int "re-arming resets counters" 0 (Fault.calls "t.re");
  check Alcotest.int "one armed spec, not two" 1 (List.length (Fault.active ()))

let test_bad_triggers_rejected () =
  List.iter
    (fun t ->
      match Fault.inject ~site:"t.bad" t with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [ Fault.Every 0; Fault.After (-1); Fault.Prob (-0.1); Fault.Prob 1.1 ]

let test_apply_never_mutates () =
  with_clear @@ fun () ->
  let original = Bytes.of_string "The quick brown fox jumps over the lazy dog" in
  let pristine = Bytes.copy original in
  Fault.inject ~site:"t.torn" ~action:Fault.Torn (Fault.After 0);
  let torn = Fault.apply ~site:"t.torn" original in
  check Alcotest.bool "torn differs" false (Bytes.equal torn original);
  check Alcotest.bool "input untouched by torn" true (Bytes.equal original pristine);
  Fault.inject ~site:"t.flip" ~action:Fault.Bitflip (Fault.After 0);
  let flipped = Fault.apply ~site:"t.flip" original in
  check Alcotest.bool "bitflip differs" false (Bytes.equal flipped original);
  check Alcotest.bool "input untouched by bitflip" true (Bytes.equal original pristine)

let test_guard_raises () =
  with_clear @@ fun () ->
  Fault.inject ~site:"t.guard" (Fault.After 0);
  match Fault.guard "t.guard" with
  | () -> Alcotest.fail "expected Io_error"
  | exception Fault.Io_error { site; _ } -> check Alcotest.string "site" "t.guard" site

(* ------------------------------------------------------------------ *)
(* Pager and buffer pool under faults                                  *)
(* ------------------------------------------------------------------ *)

let make_pool n =
  let pager = Pager.create () in
  let pool = Buffer_pool.create ~capacity:64 pager in
  let ids =
    List.init n (fun i ->
        let id = Buffer_pool.alloc pool in
        let payload = Printf.sprintf "page-%03d" i in
        Buffer_pool.write pool id (Bytes.of_string payload);
        (id, payload))
  in
  Buffer_pool.clear pool;
  (pool, ids)

(* Every 2nd pager read fails: each faulted fault-in succeeds on its
   retry (the schedule is global, so the retry lands on an odd call). *)
let test_retry_recovers () =
  with_clear @@ fun () ->
  let pool, ids = make_pool 10 in
  Fault.inject ~site:"pager.read" (Fault.Every 2);
  List.iter
    (fun (id, payload) ->
      let data = Buffer_pool.read pool id in
      check Alcotest.string "payload survives retries" payload
        (Bytes.to_string (Bytes.sub data 0 (String.length payload))))
    ids;
  Fault.clear ();
  let s = Buffer_pool.stats pool in
  check Alcotest.bool "some reads were retried" true (s.Buffer_pool.retries > 0)

(* Every pager read fails: the bounded retry gives up and the typed
   error reaches the caller instead of a hang or a crash. *)
let test_retry_exhaustion () =
  with_clear @@ fun () ->
  let pool, ids = make_pool 1 in
  let id = fst (List.hd ids) in
  Fault.inject ~site:"pager.read" (Fault.After 0);
  (match Buffer_pool.read pool id with
  | _ -> Alcotest.fail "expected Io_error after retry exhaustion"
  | exception Fault.Io_error { site; _ } -> check Alcotest.string "site" "pager.read" site);
  Fault.clear ();
  let s = Buffer_pool.stats pool in
  check Alcotest.int "max_attempts - 1 retries" (Buffer_pool.max_attempts - 1)
    s.Buffer_pool.retries

(* A torn read is not an I/O error at the pager layer — it is returned
   bytes that no longer match the stored checksum. *)
let test_torn_read_is_corrupt_page () =
  with_clear @@ fun () ->
  let pager = Pager.create () in
  let id = Pager.alloc pager in
  (* fill the whole page: a torn (half-zeroed) copy must actually
     differ from the stored image *)
  Pager.write pager id (Bytes.make (Pager.page_size pager) 'x');
  Fault.inject ~site:"pager.read" ~action:Fault.Torn (Fault.After 0);
  (match Pager.read pager id with
  | _ -> Alcotest.fail "expected Corrupt_page from a torn read"
  | exception Pager.Corrupt_page { page; _ } -> check Alcotest.int "page id" id page);
  Fault.clear ();
  (* the stored bytes were never damaged: a clean read round-trips *)
  check Alcotest.string "stored page intact" "x"
    (String.make 1 (Bytes.get (Pager.read pager id) 0))

let test_evict_failpoint_survived () =
  with_clear @@ fun () ->
  let pager = Pager.create () in
  let pool = Buffer_pool.create ~capacity:4 pager in
  let ids =
    List.init 32 (fun i ->
        let id = Buffer_pool.alloc pool in
        Buffer_pool.write pool id (Bytes.of_string (string_of_int i));
        id)
  in
  Fault.inject ~site:"buffer_pool.evict" (Fault.Every 3);
  (* far more reads than capacity: evictions happen constantly and a
     third of them fault, yet every read returns the right bytes *)
  List.iteri
    (fun i id ->
      check Alcotest.string "read survives evict faults" (string_of_int i)
        (let d = Buffer_pool.read pool id in
         Bytes.to_string (Bytes.sub d 0 (String.length (string_of_int i)))))
    ids;
  Fault.clear ();
  check Alcotest.bool "retries recorded" true ((Buffer_pool.stats pool).Buffer_pool.retries > 0)

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

let workload name = Tm_datasets.Workload.parse (Tm_datasets.Workload.find name)

let test_deadline_expires_under_pool () =
  let db = Db.create ~strategies:[ Db.RP ] (xmark ()) in
  let twig = workload "Q9x" in
  Tm_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  match Executor.run ~hint:(Tm_plan.Hint.Force Db.RP) ~deadline_ms:0.0001 ~pool db twig with
  | _ -> Alcotest.fail "expected Timeout"
  | exception Executor.Timeout { ms; stats = _ } ->
    check (Alcotest.float 1e-9) "deadline echoed" 0.0001 ms

let test_generous_deadline_answers () =
  let db = Db.create ~strategies:[ Db.RP ] (xmark ()) in
  let twig = workload "Q9x" in
  let expected = Tm_query.Naive.query db.Db.doc twig in
  let r = Executor.run ~hint:(Tm_plan.Hint.Force Db.RP) ~deadline_ms:60_000.0 db twig in
  check (Alcotest.list Alcotest.int) "ids under a generous deadline" expected r.Executor.ids;
  check Alcotest.int "no fallbacks" 0 (List.length r.Executor.fallbacks)

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                *)
(* ------------------------------------------------------------------ *)

(* Section 4.3 head pruning leaves ROOTPATHS whole (its rows head at the
   root) but makes DATAPATHS reject every nonzero-head branch probe:
   the canonical "index is lossy here" degradation. *)
let pruned_db () = Db.create ~strategies:[ Db.RP; Db.DP ] ~head_filter:(fun _ -> false) (xmark ())

let test_fallback_matches_oracle () =
  let db = pruned_db () in
  List.iter
    (fun name ->
      let twig = workload name in
      let expected = Tm_query.Naive.query db.Db.doc twig in
      let r = Executor.run ~hint:(Tm_plan.Hint.Force Db.DP) db twig in
      check (Alcotest.list Alcotest.int) (name ^ " ids match the oracle") expected r.Executor.ids;
      check Alcotest.bool (name ^ " recorded a fallback") true (r.Executor.fallbacks <> []);
      check Alcotest.string (name ^ " answered by RP") "RP"
        (Db.strategy_name r.Executor.strategy);
      check Alcotest.bool (name ^ " not naive") false r.Executor.via_naive)
    [ "Q10x"; "Q11x" ]

let test_strict_propagates () =
  let db = pruned_db () in
  let twig = workload "Q10x" in
  match Executor.run ~hint:(Tm_plan.Hint.Force Db.DP) ~strict:true db twig with
  | _ -> Alcotest.fail "expected Unsupported under --strict"
  | exception Tm_index.Family.Unsupported _ -> ()

let test_missing_index_falls_back () =
  let db = Db.create ~strategies:[ Db.RP ] (xmark ()) in
  let twig = workload "Q9x" in
  let expected = Tm_query.Naive.query db.Db.doc twig in
  let r = Executor.run ~hint:(Tm_plan.Hint.Force Db.DP) db twig in
  check (Alcotest.list Alcotest.int) "ids via RP" expected r.Executor.ids;
  check Alcotest.bool "DP listed as abandoned" true
    (List.exists (fun (s, _) -> s = Db.DP) r.Executor.fallbacks)

let test_naive_last_resort () =
  (* only the Edge table exists; DP -> RP -> JI are all unusable *)
  let db = Db.create ~strategies:[] (xmark ~scale:0.01 ()) in
  let twig = workload "Q9x" in
  let expected = Tm_query.Naive.query db.Db.doc twig in
  let r = Executor.run ~hint:(Tm_plan.Hint.Force Db.DP) db twig in
  check (Alcotest.list Alcotest.int) "naive ids" expected r.Executor.ids;
  check Alcotest.bool "via_naive" true r.Executor.via_naive;
  check Alcotest.int "three strategies abandoned" 3 (List.length r.Executor.fallbacks)

(* Corrupt DP's index directly — flip one stored bit in its root page
   behind the caches — while RP in the same pager stays whole. The
   executor must classify the Corrupt_page and answer through the
   fallback chain with oracle ids; --strict must surface it. *)
let test_corrupt_dp_page_falls_back () =
  let db = Db.create ~strategies:[ Db.RP; Db.DP ] (xmark ()) in
  let twig = workload "Q10x" in
  let expected = Tm_query.Naive.query db.Db.doc twig in
  let dp_tree = Tm_index.Family.tree (Option.get db.Db.datapaths) in
  let root = Bptree.root_page dp_tree in
  Db.drop_caches db;
  Pager.unsafe_flip_bit db.Db.pager ~page:root ~bit:321;
  let r = Executor.run ~hint:(Tm_plan.Hint.Force Db.DP) db twig in
  check (Alcotest.list Alcotest.int) "oracle ids despite corruption" expected r.Executor.ids;
  check Alcotest.bool "DP abandoned" true
    (List.exists (fun (s, _) -> s = Db.DP) r.Executor.fallbacks);
  match Executor.run ~hint:(Tm_plan.Hint.Force Db.DP) ~strict:true db twig with
  | _ -> Alcotest.fail "strict must surface the corruption"
  | exception (Pager.Corrupt_page _ | Fault.Io_error _) -> ()

(* ------------------------------------------------------------------ *)

let () =
  Fault.clear ();
  Alcotest.run "tm_fault"
    [
      ( "parse",
        [
          Alcotest.test_case "valid specs" `Quick test_parse_valid;
          Alcotest.test_case "malformed specs" `Quick test_parse_malformed;
          Alcotest.test_case "empty and spaces" `Quick test_parse_empty_and_spaces;
        ] );
      ( "triggers",
        [
          Alcotest.test_case "every N" `Quick test_every_n;
          Alcotest.test_case "after K" `Quick test_after_k;
          Alcotest.test_case "prob extremes" `Quick test_prob_extremes;
          Alcotest.test_case "unarmed and re-arm" `Quick test_unarmed_and_rearm;
          Alcotest.test_case "bad triggers rejected" `Quick test_bad_triggers_rejected;
          Alcotest.test_case "apply never mutates" `Quick test_apply_never_mutates;
          Alcotest.test_case "guard raises" `Quick test_guard_raises;
        ] );
      ( "storage",
        [
          Alcotest.test_case "retry recovers" `Quick test_retry_recovers;
          Alcotest.test_case "retry exhaustion" `Quick test_retry_exhaustion;
          Alcotest.test_case "torn read is Corrupt_page" `Quick test_torn_read_is_corrupt_page;
          Alcotest.test_case "evict failpoint survived" `Quick test_evict_failpoint_survived;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "expires under jobs=4" `Quick test_deadline_expires_under_pool;
          Alcotest.test_case "generous deadline answers" `Quick test_generous_deadline_answers;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "pruned DP matches oracle" `Quick test_fallback_matches_oracle;
          Alcotest.test_case "strict propagates" `Quick test_strict_propagates;
          Alcotest.test_case "missing index falls back" `Quick test_missing_index_falls_back;
          Alcotest.test_case "naive last resort" `Quick test_naive_last_resort;
          Alcotest.test_case "corrupt DP page falls back" `Quick test_corrupt_dp_page_falls_back;
        ] );
    ]
