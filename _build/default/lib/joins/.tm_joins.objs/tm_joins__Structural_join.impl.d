lib/joins/structural_join.ml: List Region Tm_xmldb
