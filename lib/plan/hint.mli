(** The typed planning request accepted by [Executor.run]. *)

type t =
  | Auto  (** cost-based planner decides (the default) *)
  | Force of Strategy.t  (** execute this strategy, no adaptivity *)
  | Pin of Plan.t  (** execute a previously obtained plan verbatim *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Accepts ["auto"], a bare strategy name (parsed as [Force]), or
    ["force:<strategy>"]. [Pin] has no string form. *)

val of_string_compat : site:string -> string -> (t, string) result
(** Like {!of_string}, but emits an [Obs.warn] deprecation warning on
    success — the compat shim behind legacy [--strategy] flags. *)
