(** Per-PCsubpath cardinality estimation from the schema catalog and
    the Edge table's pre-collected value statistics (paper Section
    5.1.1) — the planner's input, also used by the executor to order
    INLJ driver paths.

    The [plan.estimate] failpoint deterministically skews every
    estimate three orders of magnitude low when armed, so tests and
    benchmarks can provoke the >10x mid-query replan trigger without
    hand-crafting pathological data. *)

open Tm_xmldb
open Tm_query

let failpoint = "plan.estimate"

let catalog_matches catalog (pattern : Decompose.tag_pattern) =
  Schema_catalog.entries catalog
  |> List.filter_map (fun (e : Schema_catalog.entry) ->
         match
           Decompose.match_all pattern
             (Array.of_list (Schema_path.to_list e.Schema_catalog.path))
         with
         | [] -> None
         | positions -> Some (e, positions))

let vbounds (r : Twig.range) =
  ( Option.map (fun (b : Twig.bound) -> (b.Twig.bval, b.Twig.binc)) r.Twig.rlo,
    Option.map (fun (b : Twig.bound) -> (b.Twig.bval, b.Twig.binc)) r.Twig.rhi )

let path_cardinality ~catalog ~edge ~(pattern : Decompose.tag_pattern) ~value
    ~(range : Twig.range option) =
  let leaf_tag = snd pattern.(Array.length pattern - 1) in
  let raw =
    match (value, range) with
    | Some v, _ when not (Int.equal leaf_tag Decompose.wildcard) ->
      Edge_table.value_cardinality edge ~tag:leaf_tag ~value:v
    | None, Some r when not (Int.equal leaf_tag Decompose.wildcard) ->
      let lo, hi = vbounds r in
      Edge_table.range_cardinality edge ~tag:leaf_tag ~lo ~hi
    | _ ->
      List.fold_left
        (fun acc ((e : Schema_catalog.entry), _) -> acc + e.Schema_catalog.instance_count)
        0
        (catalog_matches catalog pattern)
  in
  match Tm_fault.Fault.fire failpoint with
  | Some _ -> max 1 (raw / 1024)
  | None -> raw
