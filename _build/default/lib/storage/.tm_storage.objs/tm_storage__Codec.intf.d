lib/storage/codec.mli: Buffer
