(** Simulated disk: a growable array of fixed-size pages with physical
    I/O accounting. Structured access should go through {!Buffer_pool}.
    A single internal mutex makes every operation domain-safe. *)

type t

val default_page_size : int
(** 8 KiB. *)

val create : ?page_size:int -> unit -> t
val page_size : t -> int
val page_count : t -> int

val size_bytes : t -> int
(** Total bytes occupied on the simulated disk. *)

val alloc : t -> int
(** Allocate a fresh zeroed page; returns its id. *)

val read : t -> int -> bytes
(** Physical read (counted); returns a copy of the page image.
    @raise Invalid_argument on an unallocated page id. *)

val write : t -> int -> bytes -> unit
(** Physical write (counted); pads or truncates to the page size. *)

val reset_stats : t -> unit
val physical_reads : t -> int
val physical_writes : t -> int
