(** Stack-based structural (containment) semi-join after the Stack-Tree
    family of Al-Khalifa et al. — reference [34]/[1] of the paper. Both
    inputs are start-sorted candidate lists; one merge pass with a stack
    of open ancestors runs in O(|anc| + |desc| + output). *)

type axis = Child | Descendant

val semijoin :
  Tm_xmldb.Region.t -> axis:axis -> ancs:int list -> descs:int list -> int list * int list
(** [(ancs with a matching desc, descs with a matching anc)], both
    start-sorted. [Child] requires adjacent levels; containment is
    strict (no self-pairs). *)

val join :
  Tm_xmldb.Region.t -> axis:axis -> ancs:int list -> descs:int list -> (int * int) list
(** All (anc, desc) pairs — the full structural join (testing aid; the
    engines only need semi-joins). *)
