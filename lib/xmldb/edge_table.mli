(** The Edge table storage format with the paper's three "Edge"
    baseline indices (Section 5.1.2): Lore value index, forward link,
    backward link — the degenerate (length-one-path) members of the
    index family. *)

type t

val build : Tm_storage.Buffer_pool.t -> Dictionary.t -> Tm_xml.Xml_tree.document -> t
val node_count : t -> int

val lookup_value : t -> tag:int -> value:string -> int list
(** Ids of nodes with this tag and leaf value (value-index lookup). *)

val value_cardinality : t -> tag:int -> value:string -> int
(** O(1) from pre-collected statistics (paper Section 5.1.1). *)

val lookup_value_range :
  t -> tag:int -> lo:(string * bool) option -> hi:(string * bool) option -> int list
(** Ids of nodes with this tag whose leaf value lies in the
    lexicographic range (bounds are (value, inclusive); [None] open) —
    one contiguous value-index range scan. *)

val range_cardinality :
  t -> tag:int -> lo:(string * bool) option -> hi:(string * bool) option -> int
(** Range selectivity from the pre-collected statistics. *)

val children_of : t -> parent:int -> tag:int -> int list
(** Forward-link lookup. [parent = 0] is the virtual root. *)

val all_children : t -> parent:int -> int list
(** All children regardless of tag (forward-index prefix scan). *)

val parent_of : t -> int -> (int * int * int) option
(** Backward-link lookup: [(parent_id, parent_tag, own_tag)];
    [parent_tag = -1] under the virtual root. *)

val node_record : t -> int -> (int * int * int * string option) option
(** The full Edge tuple: parent id, parent tag, own tag, leaf value. *)

val node_value : t -> int -> string option
(** Leaf value of a node (one backward-link lookup). *)

val insert_node : t -> Shred.node_info -> unit
(** Incremental maintenance: index one new node. *)

val remove_node : t -> Shred.node_info -> unit
(** Un-index a node; its heap record remains as a tombstone. *)

val size_bytes : t -> int
(** Heap + the three indices (the Figure 9 "Edge" column). *)

val heap_size_bytes : t -> int

(** {1 Raw structure access (fsck support)} *)

val indices : t -> Tm_storage.Bptree.t list
(** The value, forward-link and backward-link B+-trees. *)

val heap : t -> Tm_storage.Heap_file.t
(** The base-relation heap file. *)
