lib/datasets/dblp_gen.mli: Tm_xml
