(** Deterministic seeding for the qcheck suites.

    [QCHECK_SEED] is honored when set (the same contract as
    {!QCheck_alcotest}); otherwise the seed defaults to 42 so plain
    [dune runtest] is reproducible — upstream's fallback is
    [Random.self_init], which makes a CI failure unreplayable after
    the fact. The effective seed is announced once on stderr so any
    failing run can be replayed with [QCHECK_SEED=<seed> dune
    runtest]. *)

val value : int
(** The effective seed. *)

val rand : unit -> Random.State.t
(** A fresh generator state seeded with {!value}, announcing the seed
    on first use. Each call restarts the sequence, so one test's
    failure reproduces regardless of which other tests ran before
    it. *)

val to_alcotest : ?verbose:bool -> ?long:bool -> QCheck2.Test.t -> unit Alcotest.test_case
(** {!QCheck_alcotest.to_alcotest} pinned to {!rand}. *)
