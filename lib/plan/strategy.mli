(** The seven indexing strategies (paper Section 5.1.2) as a
    planner-level enum; [Database.strategy] re-exports it transparently,
    so [Strategy.RP] and [Database.RP] are the same constructor. *)

type t = RP | DP | Edge | DG_edge | IF_edge | Asr | Ji

val all : t list
val name : t -> string

val rank : t -> int
(** Dense 0-based rank; also the planner's tie-break preference order
    (RP before DP before JI, then the Edge-family strategies). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val mem : t -> t list -> bool
(** Typed membership test (no polymorphic comparison). *)

val of_string : string -> (t, string) result
(** Accepts the canonical names ([RP], [DG+Edge], ...) and the
    lower-case / long spellings ([rp], [rootpaths], [dataguide], ...). *)
