(** Disk-oriented B+-tree over byte-string keys and payloads.

    This is the access method the whole paper rests on: every member of
    the index family (Section 3) is realized as a B+-tree over an
    order-preserving key encoding. Properties:

    - duplicate keys are allowed (entries with equal keys are kept in
      payload order, so scans are deterministic);
    - nodes are serialized into fixed-size pages and accessed through a
      {!Buffer_pool}, so lookups and scans incur realistic page costs;
    - range scans are half-open [[lo, hi)]; prefix scans (the engine of
      the paper's reverse-schema-path trick for [//] queries) are range
      scans up to {!Codec.prefix_successor};
    - leaves optionally use front-coding of keys (prefix compression),
      which the paper cites as what makes B+-trees space-competitive for
      path keys on DB2;
    - sorted inputs can be bulk-loaded bottom-up. *)

type node =
  | Leaf of { mutable entries : (string * string) array; mutable next : int (* page id + 1; 0 = none *) }
  | Internal of { mutable keys : string array; mutable children : int array }
      (* |children| = |keys| + 1; keys.(i) is the smallest key reachable
         under children.(i+1). *)

(* Tree-level metadata, kept immutable and swapped wholesale: readers
   load one pointer and get a consistent (root, counts, height) set,
   and a transactional writer stages a private copy that is published
   by the same single pointer write at commit. *)
type meta = { root : int; n_entries : int; n_pages : int; height : int }

(* Writer-private transaction state: the staged metadata plus a private
   decoded-node table. Inside a transaction the writer must never hand
   out nodes from the shared decode cache — [insert]/[delete] mutate
   node records in place before re-encoding, and a shared node would
   leak those mutations to concurrent epoch-pinned readers. *)
type staged = { mutable s_meta : meta; s_nodes : (int, node) Hashtbl.t }

type t = {
  pool : Buffer_pool.t;
  page_size : int;
  prefix_compression : bool;
  mutable meta : meta;
  mutable staged : staged option;
  name : string;
  (* Decoded-node cache. Page I/O accounting still goes through the
     buffer pool on every access; this only memoizes the *parse* of a
     page image into a node, the way a real engine operates directly on
     the buffered page rather than re-deserializing it. Entries are
     validated by a per-page version bumped on every write. The lock
     covers only table lookups and stores (decoding happens outside it),
     making concurrent READERS safe; concurrent writers must run inside
     a pager transaction (see [staged] above) — a bare writer mutates
     cached nodes in place and is only legal with no concurrent
     readers. *)
  cache_lock : Lock.t;
  decoded : (int, int * node) Hashtbl.t;
  versions : (int, int) Hashtbl.t;
}

(* True iff the calling domain is the pager transaction's writer: the
   signal to route metadata and decoded nodes through [staged]. *)
let in_txn_writer t = Buffer_pool.in_txn_writer t.pool

(* Lazily create the staged state and register the participant that
   publishes (commit) or drops (abort) it when the transaction ends.
   Only trees actually touched by a transaction ever register. *)
let ensure_staged t =
  match t.staged with
  | Some s -> s
  | None ->
    let s = { s_meta = t.meta; s_nodes = Hashtbl.create 32 } in
    t.staged <- Some s;
    Buffer_pool.add_participant t.pool (fun ~committed ->
        (match t.staged with
        | Some s when committed -> t.meta <- s.s_meta
        | Some s ->
          (* Abort: the pager restored the pre-images, but an unpinned
             reader racing the transaction may have sampled the
             already-bumped cache version, decoded the uncommitted
             bytes, and stored them under it — [read_node]'s
             sample-before-read only protects against writes that
             happen after the sample. Bump past that version and evict,
             so post-abort readers re-decode from the restored bytes;
             a racing store under the old version can then never be
             served. Pages the transaction only read are bumped too —
             harmless, they just re-decode once. *)
          Lock.with_lock t.cache_lock (fun () ->
              Hashtbl.iter
                (fun id _ ->
                  Hashtbl.replace t.versions id
                    (1 + Option.value ~default:0 (Hashtbl.find_opt t.versions id));
                  Hashtbl.remove t.decoded id)
                s.s_nodes)
        | None -> ());
        t.staged <- None);
    s

let m t = if in_txn_writer t then (ensure_staged t).s_meta else t.meta

let set_m t f =
  if in_txn_writer t then begin
    let s = ensure_staged t in
    s.s_meta <- f s.s_meta
  end
  else t.meta <- f t.meta

let max_entry_size t = t.page_size / 4

(* ------------------------------------------------------------------ *)
(* Node serialization                                                  *)
(* ------------------------------------------------------------------ *)

let shared_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let encode_leaf t entries next =
  let buf = Buffer.create t.page_size in
  Buffer.add_char buf 'L';
  Codec.add_u16 buf (Array.length entries);
  Codec.add_u32 buf next;
  let prev = ref "" in
  Array.iter
    (fun (k, p) ->
      let shared = if t.prefix_compression then shared_prefix_len !prev k else 0 in
      Codec.add_varint buf shared;
      Codec.add_lstring buf (String.sub k shared (String.length k - shared));
      Codec.add_lstring buf p;
      prev := k)
    entries;
  Buffer.contents buf

let encode_internal keys children =
  let buf = Buffer.create 256 in
  Buffer.add_char buf 'I';
  Codec.add_u16 buf (Array.length keys);
  Codec.add_u32 buf children.(0);
  Array.iteri
    (fun i k ->
      Codec.add_lstring buf k;
      Codec.add_u32 buf children.(i + 1))
    keys;
  Buffer.contents buf

let encode_node t = function
  | Leaf l -> encode_leaf t l.entries l.next
  | Internal n -> encode_internal n.keys n.children

let decode_node s =
  match s.[0] with
  | 'L' ->
    let count, pos = Codec.read_u16 s 1 in
    let next, pos = Codec.read_u32 s pos in
    let entries = Array.make count ("", "") in
    let pos = ref pos in
    let prev = ref "" in
    for i = 0 to count - 1 do
      let shared, p = Codec.read_varint s !pos in
      let suffix, p = Codec.read_lstring s p in
      let payload, p = Codec.read_lstring s p in
      let key = String.sub !prev 0 shared ^ suffix in
      entries.(i) <- (key, payload);
      prev := key;
      pos := p
    done;
    Leaf { entries; next }
  | 'I' ->
    let count, pos = Codec.read_u16 s 1 in
    let child0, pos = Codec.read_u32 s pos in
    let keys = Array.make count "" in
    let children = Array.make (count + 1) child0 in
    let pos = ref pos in
    for i = 0 to count - 1 do
      let k, p = Codec.read_lstring s !pos in
      let c, p = Codec.read_u32 s p in
      keys.(i) <- k;
      children.(i + 1) <- c;
      pos := p
    done;
    Internal { keys; children }
  | c -> invalid_arg (Printf.sprintf "Bptree.decode_node: bad tag %C" c)

let c_node_visits = Tm_obs.Obs.counter "bptree.node_visits"
let c_node_decodes = Tm_obs.Obs.counter "bptree.node_decodes"

let read_node t id =
  (* Sample the cache version BEFORE the page bytes: a concurrent
     writer that changes the page after this sample also bumps the
     version past [v0], so an entry stored under [v0] can never alias
     bytes newer than it. (Sampling after the read is racy the other
     way: a node decoded from pre-commit bytes could be cached under
     the post-commit version and served, stale, forever.) *)
  let v0 =
    if in_txn_writer t then 0
    else
      Lock.with_lock t.cache_lock (fun () ->
          Option.value ~default:0 (Hashtbl.find_opt t.versions id))
  in
  (* the buffer-pool read happens unconditionally so that logical reads
     and misses are accounted exactly as without the decode cache *)
  let bytes, stale = Buffer_pool.read_versioned t.pool id in
  Tm_obs.Obs.incr c_node_visits;
  if in_txn_writer t then begin
    (* Transaction writer: never hand out a shared cached node (callers
       mutate nodes in place); decode into the private staged table. *)
    let s = ensure_staged t in
    match Hashtbl.find_opt s.s_nodes id with
    | Some node -> node
    | None ->
      Tm_obs.Obs.incr c_node_decodes;
      let node = decode_node (Bytes.to_string bytes) in
      Hashtbl.replace s.s_nodes id node;
      node
  end
  else if stale then begin
    (* Epoch-pinned snapshot read: the bytes are a superseded version,
       so they must bypass the (current-version-keyed) decode cache
       entirely. *)
    Tm_obs.Obs.incr c_node_decodes;
    decode_node (Bytes.to_string bytes)
  end
  else begin
    let cached =
      Lock.with_lock t.cache_lock (fun () ->
          match Hashtbl.find_opt t.decoded id with
          | Some (v, node) when v = v0 -> Some node
          | _ -> None)
    in
    match cached with
    | Some node -> node
    | None ->
      Tm_obs.Obs.incr c_node_decodes;
      (* Decode outside the lock: concurrent readers missing on different
         pages parse in parallel; racing decoders of the same page just
         store the same node twice. *)
      let node = decode_node (Bytes.to_string bytes) in
      Lock.with_lock t.cache_lock (fun () -> Hashtbl.replace t.decoded id (v0, node));
      node
  end

(* Store an already-encoded node image and refresh the decode cache. *)
let commit_node t id node encoded =
  Buffer_pool.write t.pool id (Bytes.of_string encoded);
  if in_txn_writer t then begin
    (* Keep the fresh node writer-private; for the shared cache, bump
       the version and evict the stale entry so post-commit readers
       re-decode from the (then published) page bytes. *)
    let s = ensure_staged t in
    Hashtbl.replace s.s_nodes id node;
    Lock.with_lock t.cache_lock (fun () ->
        let v = 1 + Option.value ~default:0 (Hashtbl.find_opt t.versions id) in
        Hashtbl.replace t.versions id v;
        Hashtbl.remove t.decoded id)
  end
  else
    Lock.with_lock t.cache_lock (fun () ->
        let v = 1 + Option.value ~default:0 (Hashtbl.find_opt t.versions id) in
        Hashtbl.replace t.versions id v;
        Hashtbl.replace t.decoded id (v, node))

let write_node t id node = commit_node t id node (encode_node t node)

let alloc_page t =
  set_m t (fun mt -> { mt with n_pages = mt.n_pages + 1 });
  Buffer_pool.alloc t.pool

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?(prefix_compression = true) ~name pool =
  let page_size = Pager.page_size (Buffer_pool.pager pool) in
  let t =
    {
      pool;
      page_size;
      prefix_compression;
      meta = { root = -1; n_entries = 0; n_pages = 0; height = 1 };
      staged = None;
      name;
      cache_lock = Lock.create Lock.Outer;
      decoded = Hashtbl.create 256;
      versions = Hashtbl.create 256;
    }
  in
  let root = alloc_page t in
  write_node t root (Leaf { entries = [||]; next = 0 });
  set_m t (fun mt -> { mt with root });
  t

let name t = t.name
let entry_count t = (m t).n_entries
let page_count t = (m t).n_pages
let size_bytes t = (m t).n_pages * t.page_size
let height t = (m t).height

(* ------------------------------------------------------------------ *)
(* Search helpers                                                      *)
(* ------------------------------------------------------------------ *)

(* Index of the child to descend into for [key]: the first [i] with
   key <= keys.(i). Equality descends LEFT because duplicate keys may
   span a leaf boundary (the separator is the right leaf's first key);
   a scan starting in the left leaf reaches the right duplicates via
   the next pointer. *)
let child_index keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare key keys.(mid) <= 0 then hi := mid else lo := mid + 1
  done;
  !lo

(* First entry index with entry key >= [key]. *)
let lower_bound entries key =
  let lo = ref 0 and hi = ref (Array.length entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let k, _ = entries.(mid) in
    if String.compare k key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)
(* ------------------------------------------------------------------ *)

let array_insert arr i x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 i;
  Array.blit arr i out (i + 1) (n - i);
  out

(* Insert position among duplicates: after all entries with the same key
   and payload <= the new payload, giving (key, payload) order. *)
let insert_position entries key payload =
  let i = ref (lower_bound entries key) in
  let n = Array.length entries in
  while
    !i < n
    &&
    let k, p = entries.(!i) in
    String.compare k key = 0 && String.compare p payload <= 0
  do
    incr i
  done;
  !i

type split = No_split | Split of string * int (* separator key, new right page *)

let rec insert_at t page key payload =
  match read_node t page with
  | Leaf l ->
    let i = insert_position l.entries key payload in
    l.entries <- array_insert l.entries i (key, payload);
    let encoded = encode_leaf t l.entries l.next in
    if String.length encoded <= t.page_size then begin
      commit_node t page (Leaf l) encoded;
      No_split
    end
    else begin
      let n = Array.length l.entries in
      let mid = n / 2 in
      let left = Array.sub l.entries 0 mid in
      let right = Array.sub l.entries mid (n - mid) in
      let right_page = alloc_page t in
      write_node t right_page (Leaf { entries = right; next = l.next });
      write_node t page (Leaf { entries = left; next = right_page + 1 });
      Split (fst right.(0), right_page)
    end
  | Internal node ->
    let ci = child_index node.keys key in
    (match insert_at t node.children.(ci) key payload with
    | No_split -> No_split
    | Split (sep, right_page) ->
      let keys = array_insert node.keys ci sep in
      let children = array_insert node.children (ci + 1) right_page in
      let encoded = encode_internal keys children in
      if String.length encoded <= t.page_size then begin
        commit_node t page (Internal { keys; children }) encoded;
        No_split
      end
      else begin
        let n = Array.length keys in
        let mid = n / 2 in
        let sep_up = keys.(mid) in
        let left_keys = Array.sub keys 0 mid in
        let right_keys = Array.sub keys (mid + 1) (n - mid - 1) in
        let left_children = Array.sub children 0 (mid + 1) in
        let right_children = Array.sub children (mid + 1) (n - mid) in
        let right_page = alloc_page t in
        write_node t right_page (Internal { keys = right_keys; children = right_children });
        write_node t page (Internal { keys = left_keys; children = left_children });
        Split (sep_up, right_page)
      end)

let insert t key payload =
  let entry_size = String.length key + String.length payload + 16 in
  if entry_size > max_entry_size t then
    invalid_arg
      (Printf.sprintf "Bptree.insert(%s): entry of %d bytes exceeds max %d" t.name entry_size
         (max_entry_size t));
  (match insert_at t (m t).root key payload with
  | No_split -> ()
  | Split (sep, right_page) ->
    let new_root = alloc_page t in
    write_node t new_root
      (Internal { keys = [| sep |]; children = [| (m t).root; right_page |] });
    set_m t (fun mt -> { mt with root = new_root; height = mt.height + 1 }));
  set_m t (fun mt -> { mt with n_entries = mt.n_entries + 1 })

(* ------------------------------------------------------------------ *)
(* Deletion                                                            *)
(* ------------------------------------------------------------------ *)

let array_remove arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

(* Lazy deletion: the entry is removed from its leaf but no rebalancing
   happens (underfull and even empty leaves are legal; scans walk the
   next-pointer chain regardless). This matches the common commercial
   practice of deferring structure maintenance to reorganization. *)
let rec delete_from_leaf t page key payload =
  match read_node t page with
  | Internal _ -> assert false
  | Leaf l ->
    let n = Array.length l.entries in
    let rec find i =
      if i >= n then None
      else
        let k, p = l.entries.(i) in
        let c = String.compare k key in
        if c > 0 then None
        else if c = 0 && String.equal p payload then Some i
        else find (i + 1)
    in
    (match find (lower_bound l.entries key) with
    | Some i ->
      l.entries <- array_remove l.entries i;
      write_node t page (Leaf l);
      true
    | None ->
      (* duplicates may continue in the next leaf *)
      if l.next = 0 then false
      else begin
        let next = l.next - 1 in
        match read_node t next with
        | Leaf nl
          when Array.length nl.entries = 0
               || String.compare (fst nl.entries.(0)) key <= 0 ->
          delete_from_leaf t next key payload
        | _ -> false
      end)

(** Remove one entry equal to ([key], [payload]); returns whether an
    entry was found. *)
let delete t key payload =
  let rec descend page =
    match read_node t page with
    | Leaf _ -> page
    | Internal node -> descend node.children.(child_index node.keys key)
  in
  let leaf = descend (m t).root in
  let found = delete_from_leaf t leaf key payload in
  if found then set_m t (fun mt -> { mt with n_entries = mt.n_entries - 1 });
  found

(* ------------------------------------------------------------------ *)
(* Scans                                                               *)
(* ------------------------------------------------------------------ *)

let rec find_leaf t page key =
  match read_node t page with
  | Leaf _ as l -> (page, l)
  | Internal node -> find_leaf t node.children.(child_index node.keys key) key

(** [fold_range t ~lo ~hi f acc] folds [f] over all entries with
    [lo <= key < hi] in key order. [hi = None] means unbounded above. *)
let fold_range t ~lo ~hi f acc =
  let below_hi k = match hi with None -> true | Some h -> String.compare k h < 0 in
  let rec walk_leaf l acc i =
    match l with
    | Internal _ -> assert false
    | Leaf leaf ->
      let n = Array.length leaf.entries in
      let rec entries acc i =
        if i >= n then
          if leaf.next = 0 then acc
          else
            let next_page = leaf.next - 1 in
            walk_leaf (read_node t next_page) acc 0
        else
          let k, p = leaf.entries.(i) in
          if below_hi k then entries (f acc k p) (i + 1) else acc
      in
      entries acc i
  in
  let _, leaf = find_leaf t (m t).root lo in
  match leaf with
  | Internal _ -> assert false
  | Leaf l -> walk_leaf leaf acc (lower_bound l.entries lo)

let iter_range t ~lo ~hi f = fold_range t ~lo ~hi (fun () k p -> f k p) ()

(** All entries whose key starts with [prefix], in key order. *)
let fold_prefix t ~prefix f acc =
  fold_range t ~lo:prefix ~hi:(Codec.prefix_successor prefix) f acc

let iter_prefix t ~prefix f = fold_prefix t ~prefix (fun () k p -> f k p) ()

(** Payloads of all entries with exactly [key], sorted. (Duplicate
    entries are key-ordered in the tree but their payload order across
    leaf boundaries is unspecified, so we sort for determinism.) *)
let lookup_all t key =
  List.sort String.compare
    (fold_range t ~lo:key ~hi:(Codec.prefix_successor key)
       (fun acc k p -> if String.equal k key then p :: acc else acc)
       [])

let lookup_first t key =
  match lookup_all t key with [] -> None | p :: _ -> Some p

let count_range t ~lo ~hi = fold_range t ~lo ~hi (fun acc _ _ -> acc + 1) 0
let count_prefix t ~prefix = fold_prefix t ~prefix (fun acc _ _ -> acc + 1) 0

let to_list t = List.rev (fold_range t ~lo:"" ~hi:None (fun acc k p -> (k, p) :: acc) [])

(* ------------------------------------------------------------------ *)
(* Bulk loading                                                        *)
(* ------------------------------------------------------------------ *)

(** [bulk_load ?prefix_compression ~name pool entries] builds a tree
    bottom-up from [entries], which must be sorted by (key, payload).
    Leaves are packed to a ~90% fill factor. *)
let bulk_load ?(prefix_compression = true) ?(fill = 0.9) ~name pool entries =
  let t = create ~prefix_compression ~name pool in
  let budget = int_of_float (fill *. float_of_int t.page_size) in
  (* Pack leaves greedily. We approximate the encoded size incrementally:
     exact enough because we re-check against the real encoding. *)
  let leaves = ref [] in
  let current = ref [] in
  let current_size = ref 16 in
  let current_count = ref 0 in
  let first_keys = ref [] in
  let flush_leaf () =
    if !current_count > 0 then begin
      let arr = Array.of_list (List.rev !current) in
      let page = alloc_page t in
      leaves := page :: !leaves;
      first_keys := fst arr.(0) :: !first_keys;
      (* next pointers are fixed up after all leaves exist *)
      write_node t page (Leaf { entries = arr; next = 0 });
      current := [];
      current_size := 16;
      current_count := 0
    end
  in
  let last_key = ref None in
  List.iter
    (fun (k, p) ->
      (match !last_key with
      | Some prev when String.compare prev k > 0 ->
        invalid_arg (Printf.sprintf "Bptree.bulk_load(%s): input not sorted" name)
      | _ -> ());
      let shared =
        match !last_key with
        | Some prev when prefix_compression && !current_count > 0 -> shared_prefix_len prev k
        | _ -> 0
      in
      last_key := Some k;
      let esize = String.length k - shared + String.length p + 12 in
      if esize > max_entry_size t then
        invalid_arg (Printf.sprintf "Bptree.bulk_load(%s): oversized entry (%d bytes)" name esize);
      if !current_size + esize > budget then flush_leaf ();
      current := (k, p) :: !current;
      current_size := !current_size + esize;
      current_count := !current_count + 1;
      set_m t (fun mt -> { mt with n_entries = mt.n_entries + 1 }))
    entries;
  flush_leaf ();
  let leaf_pages = Array.of_list (List.rev !leaves) in
  let leaf_keys = Array.of_list (List.rev !first_keys) in
  let n_leaves = Array.length leaf_pages in
  if n_leaves = 0 then t
  else begin
    (* Link the leaf chain. *)
    for i = 0 to n_leaves - 1 do
      match read_node t leaf_pages.(i) with
      | Leaf l ->
        l.next <- (if i + 1 < n_leaves then leaf_pages.(i + 1) + 1 else 0);
        write_node t leaf_pages.(i) (Leaf { entries = l.entries; next = l.next })
      | Internal _ -> assert false
    done;
    (* Build internal levels bottom-up. Each internal node takes as many
       children as fit in a page. *)
    let rec build_level pages keys height =
      if Array.length pages = 1 then
        set_m t (fun mt -> { mt with root = pages.(0); height })
      else begin
        let parents = ref [] and parent_keys = ref [] in
        let i = ref 0 in
        let n = Array.length pages in
        while !i < n do
          (* Greedily extend a parent while the encoding fits. *)
          let child_list = ref [ pages.(!i) ] in
          let key_list = ref [] in
          let start_key = keys.(!i) in
          incr i;
          let fits () =
            let ks = Array.of_list (List.rev !key_list) in
            let cs = Array.of_list (List.rev !child_list) in
            String.length (encode_internal ks cs) <= budget
          in
          let continue = ref true in
          while !continue && !i < n do
            key_list := keys.(!i) :: !key_list;
            child_list := pages.(!i) :: !child_list;
            if fits () then incr i
            else begin
              key_list := List.tl !key_list;
              child_list := List.tl !child_list;
              continue := false
            end
          done;
          let ks = Array.of_list (List.rev !key_list) in
          let cs = Array.of_list (List.rev !child_list) in
          let page = alloc_page t in
          write_node t page (Internal { keys = ks; children = cs });
          parents := page :: !parents;
          parent_keys := start_key :: !parent_keys
        done;
        build_level
          (Array.of_list (List.rev !parents))
          (Array.of_list (List.rev !parent_keys))
          (height + 1)
      end
    in
    (* The initial empty-leaf root page is wasted; acceptable bookkeeping. *)
    build_level leaf_pages leaf_keys 1;
    t
  end

(* ------------------------------------------------------------------ *)
(* Raw page views (fsck support)                                       *)
(* ------------------------------------------------------------------ *)

type view =
  | Leaf_view of { entries : (string * string) array; next : int option (* page id *) }
  | Internal_view of { keys : string array; children : int array }

let root_page t = (m t).root
let pool t = t.pool

(** The stored image of [page] (exactly as the pager holds it). *)
let page_image t page = Bytes.to_string (Buffer_pool.read t.pool page)

(** Decode the stored image of [page] afresh, bypassing the decoded-node
    cache: an offline checker must see what is actually on the page, not
    what the tree last parsed from it. *)
let view_page t page =
  match Buffer_pool.read t.pool page with
  | exception Invalid_argument m -> Error m
  | bytes -> (
    match decode_node (Bytes.to_string bytes) with
    | Leaf l ->
      Ok (Leaf_view { entries = l.entries; next = (if l.next = 0 then None else Some (l.next - 1)) })
    | Internal n -> Ok (Internal_view { keys = n.keys; children = n.children })
    | exception Invalid_argument m -> Error m
    | exception Failure m -> Error m)

(** Re-encode a view with this tree's settings (page tag, front-coding):
    the canonical image the round-trip invariant compares against. *)
let encode_view t = function
  | Leaf_view { entries; next } ->
    encode_leaf t entries (match next with None -> 0 | Some p -> p + 1)
  | Internal_view { keys; children } -> encode_internal keys children

(* ------------------------------------------------------------------ *)
(* Invariant checking (used by tests)                                  *)
(* ------------------------------------------------------------------ *)

(** Walk the whole tree checking ordering and fanout invariants; returns
    the number of entries seen. Raises [Failure] on violation. *)
let check_invariants t =
  let rec go page lo hi depth =
    match read_node t page with
    | Leaf l ->
      Array.iter
        (fun (k, _) ->
          (match lo with
          | Some l when String.compare k l < 0 -> failwith "leaf key below lower bound"
          | _ -> ());
          (* duplicates may equal the separator on either side *)
          match hi with
          | Some h when String.compare k h > 0 -> failwith "leaf key above upper bound"
          | _ -> ())
        l.entries;
      let sorted = ref true in
      Array.iteri
        (fun i (k, _) -> if i > 0 && String.compare (fst l.entries.(i - 1)) k > 0 then sorted := false)
        l.entries;
      if not !sorted then failwith "leaf entries unsorted";
      (Array.length l.entries, depth)
    | Internal node ->
      if Array.length node.children <> Array.length node.keys + 1 then failwith "bad fanout";
      let total = ref 0 in
      let leaf_depth = ref (-1) in
      Array.iteri
        (fun i child ->
          let lo' = if i = 0 then lo else Some node.keys.(i - 1) in
          let hi' = if i = Array.length node.keys then hi else Some node.keys.(i) in
          let n, d = go child lo' hi' (depth + 1) in
          total := !total + n;
          if !leaf_depth = -1 then leaf_depth := d
          else if !leaf_depth <> d then failwith "leaves at different depths")
        node.children;
      (!total, !leaf_depth)
  in
  let n, _ = go (m t).root None None 1 in
  if n <> (m t).n_entries then
    failwith (Printf.sprintf "entry count mismatch: counted %d, recorded %d" n (m t).n_entries);
  n
